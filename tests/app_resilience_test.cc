// Application resilience layer unit tests (ctest label: "app").
//
// These drive the client/server/auditor state machines without a network:
// FrameChannel accepts a null TCP sender, so the tests play the wire by
// feeding OnDeliverTotal by hand — delivery timing (and therefore timeouts,
// retries, and duplicates) is exactly what each test scripts.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/sim/event_loop.h"
#include "src/workload/app_resilience.h"
#include "src/workload/frame_channel.h"

namespace juggler {
namespace {

// Re-delivers everything sent on `ch` every `period`, until `until`. All
// frames on a channel are `bytes_per_frame` long in these tests, so the
// cumulative total is frames_sent * size.
void ArmPump(EventLoop* loop, FrameChannel* ch, uint64_t bytes_per_frame, TimeNs period,
             TimeNs until) {
  if (loop->now() + period > until) {
    return;
  }
  loop->Schedule(period, [loop, ch, bytes_per_frame, period, until] {
    ch->OnDeliverTotal(ch->frames_sent() * bytes_per_frame);
    ArmPump(loop, ch, bytes_per_frame, period, until);
  });
}

TEST(FrameChannelTest, PopsHeadersInSendOrderAsDeliveryTotalSweeps) {
  FrameChannel ch(nullptr);
  std::vector<FrameHeader> got;
  ch.set_on_frame([&](const FrameHeader& h) { got.push_back(h); });

  FrameHeader h;
  h.request_id = 1;
  ch.SendFrame(100, h);
  h.request_id = 2;
  ch.SendFrame(1, h);
  h.request_id = 3;
  ch.SendFrame(50, h);
  EXPECT_EQ(ch.frames_sent(), 3u);

  ch.OnDeliverTotal(99);  // frame 1 not fully in order yet
  EXPECT_TRUE(got.empty());
  ch.OnDeliverTotal(100);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].request_id, 1u);
  EXPECT_EQ(got[0].bytes, 100u);
  ch.OnDeliverTotal(101);  // the 1-byte frame
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[1].request_id, 2u);
  ch.OnDeliverTotal(151);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[2].request_id, 3u);
  EXPECT_EQ(ch.frames_delivered(), 3u);

  ch.OnDeliverTotal(151);  // idempotent: no double pops
  EXPECT_EQ(got.size(), 3u);
}

AppWorkloadOptions RpcOptions() {
  AppWorkloadOptions opt;
  opt.kind = AppWorkloadKind::kRpc;
  opt.sessions = 1;
  opt.requests_per_session = 5;
  opt.request_bytes = 100;
  opt.response_bytes = 200;
  opt.issue_interval = Ms(1);
  return opt;
}

TEST(AppClientSessionTest, PromptResponsesCompleteEveryRequestWithoutRetries) {
  EventLoop loop;
  AppWorkloadOptions opt = RpcOptions();
  AppIntegrityAuditor auditor("test");
  FrameChannel c2s(nullptr);
  AppClientSession client(&loop, opt, 0, &c2s, &auditor, nullptr, 42);
  // A server that executes and answers instantly at delivery time.
  c2s.set_on_frame([&](const FrameHeader& h) {
    auditor.OnExecute(h.token);
    FrameHeader reply = h;
    reply.kind = FrameKind::kResponse;
    client.OnResponseFrame(reply);
  });
  ArmPump(&loop, &c2s, opt.request_bytes, Us(200), Ms(100));

  client.Start();
  loop.RunUntil(Ms(100));

  EXPECT_TRUE(client.Done());
  EXPECT_EQ(client.stats().issued, 5u);
  EXPECT_EQ(client.stats().ok, 5u);
  EXPECT_EQ(client.stats().retries, 0u);
  EXPECT_EQ(client.stats().forced_terminal, 0u);
  AuditLog log;
  EXPECT_TRUE(auditor.FinalCheck(&log));
  EXPECT_TRUE(log.clean());
}

// The central correctness property: a retry re-sends the SAME idempotency
// token, the server executes once and suppresses the duplicate, and the
// client treats the second response gracefully.
TEST(AppProtocolTest, SlowDeliveryRetriesAreDeduplicatedByToken) {
  EventLoop loop;
  AppWorkloadOptions opt = RpcOptions();
  opt.requests_per_session = 3;
  opt.retry.attempt_timeout = Ms(2);
  opt.retry.backoff_base = Us(100);
  opt.retry.backoff_max = Us(400);
  opt.retry.jitter_pct = 0;
  AppIntegrityAuditor auditor("test");
  FrameChannel c2s(nullptr);
  FrameChannel s2c(nullptr);
  AppServer server(opt, &c2s, &s2c, &auditor, nullptr, loop.now_ptr());
  AppClientSession client(&loop, opt, 0, &c2s, &auditor, nullptr, 7);
  s2c.set_on_frame([&](const FrameHeader& h) { client.OnResponseFrame(h); });
  // Requests take 5ms to arrive — past the 2ms attempt timeout, so every
  // request is retried at least once before the server ever sees it, and
  // then BOTH copies arrive.
  ArmPump(&loop, &c2s, opt.request_bytes, Ms(5), Ms(200));
  ArmPump(&loop, &s2c, opt.response_bytes, Ms(5), Ms(200));

  client.Start();
  loop.RunUntil(Ms(200));

  EXPECT_TRUE(client.Done());
  EXPECT_EQ(client.stats().issued, 3u);
  EXPECT_EQ(client.stats().ok, 3u);
  EXPECT_GE(client.stats().retries, 3u);  // every request timed out its 1st attempt
  EXPECT_EQ(server.stats().executions, 3u);
  EXPECT_GE(server.stats().duplicates_suppressed, 3u);
  EXPECT_GE(client.stats().duplicate_responses, 1u);
  AuditLog log;
  EXPECT_TRUE(auditor.FinalCheck(&log)) << (log.messages().empty() ? "" : log.messages().front());
  EXPECT_TRUE(log.clean());
}

// The planted bug: rotating the token per attempt makes the dedup table
// blind, the server executes the same logical request twice, and the
// auditor must say so.
TEST(AppProtocolTest, StaleTokenPlantProducesDuplicateExecutionViolation) {
  EventLoop loop;
  AppWorkloadOptions opt = RpcOptions();
  opt.requests_per_session = 3;
  opt.retry.attempt_timeout = Ms(2);
  opt.retry.backoff_base = Us(100);
  opt.retry.backoff_max = Us(400);
  opt.retry.jitter_pct = 0;
  opt.plant_stale_token = true;
  AppIntegrityAuditor auditor("test");
  FrameChannel c2s(nullptr);
  FrameChannel s2c(nullptr);
  AppServer server(opt, &c2s, &s2c, &auditor, nullptr, loop.now_ptr());
  AppClientSession client(&loop, opt, 0, &c2s, &auditor, nullptr, 7);
  s2c.set_on_frame([&](const FrameHeader& h) { client.OnResponseFrame(h); });
  ArmPump(&loop, &c2s, opt.request_bytes, Ms(5), Ms(200));
  ArmPump(&loop, &s2c, opt.response_bytes, Ms(5), Ms(200));

  client.Start();
  loop.RunUntil(Ms(200));

  EXPECT_TRUE(client.Done());
  EXPECT_EQ(server.stats().duplicates_suppressed, 0u);  // dedup never fires
  EXPECT_GT(server.stats().executions, client.stats().issued);
  AuditLog log;
  EXPECT_FALSE(auditor.FinalCheck(&log));
  ASSERT_FALSE(log.messages().empty());
  bool found = false;
  for (const auto& m : log.messages()) {
    if (m.find("duplicate execution") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << log.messages().front();
}

TEST(AppClientSessionTest, NoServerExhaustsRetryBudgetThenAborts) {
  EventLoop loop;
  AppWorkloadOptions opt = RpcOptions();
  opt.requests_per_session = 2;
  opt.retry.attempt_timeout = Ms(2);
  opt.retry.max_attempts = 3;
  opt.retry.deadline = Ms(100);
  AppIntegrityAuditor auditor("test");
  FrameChannel c2s(nullptr);
  AppClientSession client(&loop, opt, 0, &c2s, &auditor, nullptr, 9);
  client.Start();
  loop.RunUntil(Ms(200));

  EXPECT_TRUE(client.Done());
  EXPECT_EQ(client.stats().aborted, 2u);
  EXPECT_EQ(client.stats().timeouts, 0u);
  EXPECT_EQ(client.stats().attempts, 6u);  // 3 per request, then explicit Aborted
  AuditLog log;
  EXPECT_TRUE(auditor.FinalCheck(&log));  // graceful failure is not a violation
}

TEST(AppClientSessionTest, NoServerDeadlineProducesExplicitTimeout) {
  EventLoop loop;
  AppWorkloadOptions opt = RpcOptions();
  opt.requests_per_session = 2;
  opt.retry.attempt_timeout = Ms(2);
  opt.retry.max_attempts = 1000;  // budget never binds; the deadline does
  opt.retry.deadline = Ms(20);
  AppIntegrityAuditor auditor("test");
  FrameChannel c2s(nullptr);
  AppClientSession client(&loop, opt, 0, &c2s, &auditor, nullptr, 9);
  client.Start();
  loop.RunUntil(Ms(100));

  EXPECT_TRUE(client.Done());
  EXPECT_EQ(client.stats().timeouts, 2u);
  EXPECT_EQ(client.stats().aborted, 0u);
  AuditLog log;
  EXPECT_TRUE(auditor.FinalCheck(&log));
}

TEST(AppClientSessionTest, SameSeedIsDeterministicUnderJitteredBackoff) {
  AppStats runs[2];
  uint64_t events[2];
  for (int i = 0; i < 2; ++i) {
    EventLoop loop;
    AppWorkloadOptions opt = RpcOptions();
    opt.retry.attempt_timeout = Ms(1);
    opt.retry.max_attempts = 6;
    opt.retry.jitter_pct = 50;
    AppIntegrityAuditor auditor("test");
    FrameChannel c2s(nullptr);
    AppClientSession client(&loop, opt, 0, &c2s, &auditor, nullptr, 1234);
    client.Start();
    loop.RunUntil(Ms(400));
    EXPECT_TRUE(client.Done());
    runs[i] = client.stats();
    events[i] = loop.executed_events();
  }
  EXPECT_EQ(events[0], events[1]);
  EXPECT_EQ(runs[0].issued, runs[1].issued);
  EXPECT_EQ(runs[0].attempts, runs[1].attempts);
  EXPECT_EQ(runs[0].retries, runs[1].retries);
  EXPECT_EQ(runs[0].aborted, runs[1].aborted);
  EXPECT_EQ(runs[0].timeouts, runs[1].timeouts);
}

TEST(AppClientSessionTest, ForceFinishLeavesNothingPending) {
  EventLoop loop;
  AppWorkloadOptions opt = RpcOptions();
  AppIntegrityAuditor auditor("test");
  FrameChannel c2s(nullptr);
  AppClientSession client(&loop, opt, 0, &c2s, &auditor, nullptr, 3);
  client.Start();
  loop.RunUntil(Ms(3));  // a few requests issued, none answered
  EXPECT_FALSE(client.Done());

  client.ForceFinish();
  EXPECT_TRUE(client.Done());
  EXPECT_GT(client.stats().forced_terminal, 0u);
  EXPECT_EQ(client.stats().forced_terminal, client.stats().aborted);
  AuditLog log;
  EXPECT_TRUE(auditor.FinalCheck(&log));  // forced outcomes are terminal
}

TEST(AppIntegrityAuditorTest, FlagsHungRequestsAndUnknownTokens) {
  {
    AppIntegrityAuditor auditor("hung");
    auditor.OnIssue(1);
    auditor.OnAttempt(1, 0x101);
    AuditLog log;
    EXPECT_FALSE(auditor.FinalCheck(&log));
    ASSERT_FALSE(log.messages().empty());
    EXPECT_NE(log.messages().front().find("hung"), std::string::npos);
  }
  {
    AppIntegrityAuditor auditor("unknown");
    auditor.OnExecute(0xdead);
    AuditLog log;
    EXPECT_FALSE(auditor.FinalCheck(&log));
    ASSERT_FALSE(log.messages().empty());
    EXPECT_NE(log.messages().front().find("no client"), std::string::npos);
  }
}

AppWorkloadOptions BulkOptions() {
  AppWorkloadOptions opt;
  opt.kind = AppWorkloadKind::kBulkTransfer;
  opt.sessions = 1;
  opt.chunk_bytes = 1000;
  opt.transfer_bytes_per_session = 4000;  // 4 chunks
  opt.retry.attempt_timeout = Ms(2);
  opt.retry.max_attempts = 3;
  return opt;
}

TEST(AppClientSessionTest, BulkTransferIssuesChunksSequentially) {
  EventLoop loop;
  AppWorkloadOptions opt = BulkOptions();
  AppIntegrityAuditor auditor("bulk");
  FrameChannel c2s(nullptr);
  AppClientSession client(&loop, opt, 0, &c2s, &auditor, nullptr, 5);
  std::vector<uint64_t> chunk_order;
  c2s.set_on_frame([&](const FrameHeader& h) {
    chunk_order.push_back(h.arg);
    auditor.OnExecute(h.token);
    FrameHeader reply = h;
    reply.kind = FrameKind::kChunkAck;
    client.OnResponseFrame(reply);
  });
  ArmPump(&loop, &c2s, opt.chunk_bytes, Us(500), Ms(100));

  client.Start();
  loop.RunUntil(Ms(100));

  EXPECT_TRUE(client.Done());
  EXPECT_EQ(client.stats().issued, 4u);
  EXPECT_EQ(client.stats().ok, 4u);
  ASSERT_EQ(chunk_order.size(), 4u);
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(chunk_order[i], i);  // strictly resumable: next only after ack
  }
}

TEST(AppClientSessionTest, BulkTransferDegradesGracefullyWhenAChunkDies) {
  EventLoop loop;
  AppWorkloadOptions opt = BulkOptions();
  AppIntegrityAuditor auditor("bulk");
  FrameChannel c2s(nullptr);
  AppClientSession client(&loop, opt, 0, &c2s, &auditor, nullptr, 5);
  // Dead server: chunk 0 exhausts its budget; chunks 1..3 are never issued.
  client.Start();
  loop.RunUntil(Ms(200));

  EXPECT_TRUE(client.Done());
  EXPECT_EQ(client.stats().issued, 1u);
  EXPECT_EQ(client.stats().aborted, 1u);
  EXPECT_EQ(client.stats().ok, 0u);
  AuditLog log;
  EXPECT_TRUE(auditor.FinalCheck(&log));
}

// Replication commit barrier, driven by hand the way AppHarness drives it:
// a chunk advances only when every replica acked it; one replica failing
// aborts the remainder on all of them.
TEST(AppClientSessionTest, ReplicationChunkAdvancesOnlyOnGroupCommit) {
  EventLoop loop;
  AppWorkloadOptions opt = BulkOptions();
  opt.kind = AppWorkloadKind::kReplication;
  opt.sessions = 2;
  AppIntegrityAuditor auditor("repl");
  FrameChannel out0(nullptr);
  FrameChannel out1(nullptr);
  AppClientSession s0(&loop, opt, 0, &out0, &auditor, nullptr, 11);
  AppClientSession s1(&loop, opt, 1, &out1, &auditor, nullptr, 11);
  std::vector<AppClientSession*> group = {&s0, &s1};
  std::map<uint64_t, uint32_t> acks;
  auto on_done = [&](uint64_t chunk, bool ok) {
    if (!ok) {
      for (auto* s : group) s->AbortRemaining();
      return;
    }
    if (++acks[chunk] == group.size()) {
      for (auto* s : group) s->ReleaseChunk(chunk);
    }
  };
  s0.set_on_chunk_done(on_done);
  s1.set_on_chunk_done(on_done);
  // Replica 0 acks instantly; replica 1 acks on delivery (pumped): the
  // barrier must hold replica 0 at each chunk until replica 1 catches up.
  auto serve = [&](AppClientSession* c, const FrameHeader& h) {
    auditor.OnExecute(h.token);
    FrameHeader reply = h;
    reply.kind = FrameKind::kChunkAck;
    c->OnResponseFrame(reply);
  };
  out0.set_on_frame([&](const FrameHeader& h) { serve(&s0, h); });
  out1.set_on_frame([&](const FrameHeader& h) { serve(&s1, h); });
  ArmPump(&loop, &out0, opt.chunk_bytes, Us(100), Ms(100));
  ArmPump(&loop, &out1, opt.chunk_bytes, Us(700), Ms(100));

  s0.Start();
  s1.Start();
  loop.RunUntil(Ms(100));

  EXPECT_TRUE(s0.Done());
  EXPECT_TRUE(s1.Done());
  EXPECT_EQ(s0.stats().ok, 4u);
  EXPECT_EQ(s1.stats().ok, 4u);
  AuditLog log;
  EXPECT_TRUE(auditor.FinalCheck(&log));
}

TEST(AppClientSessionTest, ReplicationFailureAbortsTheWholeGroup) {
  EventLoop loop;
  AppWorkloadOptions opt = BulkOptions();
  opt.kind = AppWorkloadKind::kReplication;
  opt.sessions = 2;
  AppIntegrityAuditor auditor("repl");
  FrameChannel out0(nullptr);
  FrameChannel out1(nullptr);
  AppClientSession s0(&loop, opt, 0, &out0, &auditor, nullptr, 11);
  AppClientSession s1(&loop, opt, 1, &out1, &auditor, nullptr, 11);
  std::vector<AppClientSession*> group = {&s0, &s1};
  std::map<uint64_t, uint32_t> acks;
  auto on_done = [&](uint64_t chunk, bool ok) {
    if (!ok) {
      for (auto* s : group) s->AbortRemaining();
      return;
    }
    if (++acks[chunk] == group.size()) {
      for (auto* s : group) s->ReleaseChunk(chunk);
    }
  };
  s0.set_on_chunk_done(on_done);
  s1.set_on_chunk_done(on_done);
  // Replica 0 is served; replica 1's server is dead.
  out0.set_on_frame([&](const FrameHeader& h) {
    auditor.OnExecute(h.token);
    FrameHeader reply = h;
    reply.kind = FrameKind::kChunkAck;
    s0.OnResponseFrame(reply);
  });
  ArmPump(&loop, &out0, opt.chunk_bytes, Us(100), Ms(200));

  s0.Start();
  s1.Start();
  loop.RunUntil(Ms(200));

  EXPECT_TRUE(s0.Done());
  EXPECT_TRUE(s1.Done());
  EXPECT_EQ(s1.stats().aborted, 1u);   // chunk 0 died on the dead replica
  EXPECT_LE(s0.stats().issued, 2u);    // group degraded: no runaway issuance
  AuditLog log;
  EXPECT_TRUE(auditor.FinalCheck(&log));
}

}  // namespace
}  // namespace juggler
