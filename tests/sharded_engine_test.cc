// Sharded engine: lookahead-window correctness, cross-shard packet
// recycling, and the headline guarantee — chaos digests are byte-identical
// no matter how many workers multiplex the shard domains.

#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>
#include <vector>

#include "src/packet/packet.h"
#include "src/scenario/chaos_scenario.h"
#include "src/scenario/topologies.h"
#include "src/sim/shard_mailbox.h"
#include "src/sim/sharded_engine.h"
#include "src/util/thread_budget.h"
#include "src/util/time.h"

namespace juggler {
namespace {

// The 1-CPU CI box would clamp every run to one worker and never exercise
// the threaded path; the budget override keeps the thread count honest to
// the requested shard counts.
class ShardedEngineTest : public ::testing::Test {
 protected:
  void SetUp() override { setenv("JUGGLER_THREADS", "8", 1); }
  void TearDown() override { unsetenv("JUGGLER_THREADS"); }
};

struct CollectorSink : PacketSink {
  EventLoop* loop;
  std::vector<TimeNs> arrivals;
  explicit CollectorSink(EventLoop* l) : loop(l) {}
  void Accept(PacketPtr) override { arrivals.push_back(loop->now()); }
};

// Regression: a packet emitted at time t crossing with latency L arrives at
// exactly t + L == the lookahead horizon of the window that emitted it. The
// envelope must survive the barrier (not be dropped as stale) and execute in
// the next window at precisely that timestamp.
TEST_F(ShardedEngineTest, ArrivalExactlyAtLookaheadHorizonIsDelivered) {
  const TimeNs kLatency = Us(3);
  ShardedEngine engine(2);
  ShardDomain* a = engine.AddDomain("a");
  ShardDomain* b = engine.AddDomain("b");
  RemoteEndpoint* ep = engine.Connect(a, b, kLatency);
  CollectorSink sink(&b->loop());
  ep->set_sink(&sink);

  // Window 1: m = 0, horizon = 0 + L. The emission at t=0 arrives at exactly
  // the horizon; a second emission mid-window lands past it.
  a->loop().ScheduleAt(0, [&] { ep->Accept(AllocPacket()); });
  a->loop().ScheduleAt(Us(1), [&] { ep->Deliver(AllocPacket(), Us(10)); });
  engine.Run(Ms(1));

  ASSERT_EQ(sink.arrivals.size(), 2u);
  EXPECT_EQ(sink.arrivals[0], kLatency);           // == first window's horizon
  EXPECT_EQ(sink.arrivals[1], Us(1) + kLatency + Us(10));
  EXPECT_EQ(engine.stats().crossings, 2u);
  EXPECT_GE(engine.stats().windows, 2u);
  EXPECT_EQ(b->loop().now(), Ms(1));  // clocks pinned to the deadline
}

// A ping-pong chain across domains: every hop lands exactly on a window
// horizon, for many windows in a row, under real worker threads.
TEST_F(ShardedEngineTest, HorizonPingPongAcrossThreads) {
  const TimeNs kLatency = Us(5);
  ShardedEngine engine(2);
  ShardDomain* a = engine.AddDomain("a");
  ShardDomain* b = engine.AddDomain("b");
  RemoteEndpoint* to_b = engine.Connect(a, b, kLatency);
  RemoteEndpoint* to_a = engine.Connect(b, a, kLatency);

  struct Echo : PacketSink {
    RemoteEndpoint* reply;
    int hops = 0;
    void Accept(PacketPtr p) override {
      ++hops;
      reply->Accept(std::move(p));
    }
  };
  Echo on_b;
  on_b.reply = to_a;
  Echo on_a;
  on_a.reply = to_b;
  to_b->set_sink(&on_b);
  to_a->set_sink(&on_a);

  a->loop().ScheduleAt(0, [&] { to_b->Accept(AllocPacket()); });
  engine.Run(Us(100));  // 20 hops of 5us each

  EXPECT_EQ(on_b.hops + on_a.hops, 20);
  EXPECT_EQ(engine.stats().workers, 2u);
}

// Cross-thread recycling: storage released on a foreign thread returns to
// its origin pool's return stack and is reused by the next Acquire.
TEST(PacketPoolCrossThread, RemoteReleaseRecyclesToOrigin) {
  PacketPool pool{PacketPool::CrossThreadReturnTag{}};
  Packet* storage = pool.Acquire();
  EXPECT_EQ(storage->pool_origin, &pool);
  std::thread([p = PacketPtr(storage)]() mutable { p.reset(); }).join();
  EXPECT_EQ(pool.free_size(), 0u);  // parked on the return stack, not free_
  Packet* again = pool.Acquire();
  EXPECT_EQ(again, storage);
  EXPECT_EQ(pool.recycled(), 1u);
  pool.Release(again);
}

// A clone keeps its own storage's pool bookkeeping, not the source's.
TEST(PacketPoolCrossThread, CloneKeepsOwnOrigin) {
  PacketPool pool{PacketPool::CrossThreadReturnTag{}};
  PacketPtr src(pool.Acquire());
  src->seq = 42;
  PacketPtr dup = ClonePacket(*src);  // thread-ambient storage
  EXPECT_EQ(dup->seq, Seq(42));
  EXPECT_EQ(dup->pool_origin, nullptr);
  EXPECT_EQ(src->pool_origin, &pool);
}

TEST(ThreadBudgetTest, EnvOverrideAndNestedDegradation) {
  setenv("JUGGLER_THREADS", "3", 1);
  EXPECT_EQ(ThreadBudget::Total(), 3u);
  const size_t outer = ThreadBudget::Acquire(5);
  EXPECT_EQ(outer, 3u);
  // Budget exhausted: an inner layer still gets its own calling thread.
  const size_t inner = ThreadBudget::Acquire(4);
  EXPECT_EQ(inner, 1u);
  ThreadBudget::Release(inner);
  ThreadBudget::Release(outer);
  EXPECT_EQ(ThreadBudget::InUse(), 0u);
  unsetenv("JUGGLER_THREADS");
  EXPECT_GE(ThreadBudget::Total(), 1u);
}

// The tentpole guarantee: the worker count is a pure performance knob.
// Chaos digests fold every observable counter of the run (delivery, faults,
// retransmits, GRO behavior); they must be byte-identical for 1, 2 and 8
// shards, under both a link-flap schedule and a checksum-drop (corruption)
// schedule, for both engines.
void ExpectShardCountInvariant(FaultFamily family) {
  ChaosOptions opt;
  opt.family = family;
  opt.seed = 7;
  opt.shards = 1;
  const ChaosResult base = RunChaos(opt);
  EXPECT_TRUE(base.ok) << FaultFamilyName(family);
  for (size_t shards : {size_t{2}, size_t{8}}) {
    opt.shards = shards;
    const ChaosResult r = RunChaos(opt);
    EXPECT_TRUE(r.ok) << FaultFamilyName(family) << " shards=" << shards;
    EXPECT_EQ(r.juggler.digest, base.juggler.digest)
        << FaultFamilyName(family) << " shards=" << shards;
    EXPECT_EQ(r.baseline.digest, base.baseline.digest)
        << FaultFamilyName(family) << " shards=" << shards;
    EXPECT_EQ(r.juggler.shard_windows, base.juggler.shard_windows);
    EXPECT_EQ(r.juggler.shard_crossings, base.juggler.shard_crossings);
    EXPECT_EQ(r.juggler.shard_events, base.juggler.shard_events);
  }
}

TEST_F(ShardedEngineTest, ChaosDigestInvariantUnderLinkFlap) {
  ExpectShardCountInvariant(FaultFamily::kLinkFlap);
}

TEST_F(ShardedEngineTest, ChaosDigestInvariantUnderChecksumDrops) {
  ExpectShardCountInvariant(FaultFamily::kCorrupt);
}

// Batch-dispatch determinism: handing a poll round to GRO as one
// ReceiveBatch (the production path, with fold short-cuts) must be
// observably identical to the packet-by-packet reference loop — byte-equal
// digests for both engines, at every shard count, under a reordering-heavy
// fault mix. Any fold that changes a flush decision, a stat, or a cost
// shows up here as a digest split.
TEST_F(ShardedEngineTest, ChaosDigestInvariantUnderPerPacketDispatch) {
  ChaosOptions opt;
  opt.family = FaultFamily::kMixed;
  opt.seed = 11;
  for (size_t shards : {size_t{1}, size_t{2}, size_t{8}}) {
    opt.shards = shards;
    opt.per_packet_dispatch = false;
    const ChaosResult batched = RunChaos(opt);
    EXPECT_TRUE(batched.ok) << "batched shards=" << shards;
    opt.per_packet_dispatch = true;
    const ChaosResult per_packet = RunChaos(opt);
    EXPECT_TRUE(per_packet.ok) << "per-packet shards=" << shards;
    EXPECT_EQ(batched.juggler.digest, per_packet.juggler.digest)
        << "juggler batched vs per-packet, shards=" << shards;
    EXPECT_EQ(batched.baseline.digest, per_packet.baseline.digest)
        << "baseline batched vs per-packet, shards=" << shards;
  }
}

// ------------------------------------------------ Bounded mailboxes ------

TEST(ShardMailboxTest, CapacityBoundsBufferAndCountsOverflow) {
  ShardMailbox box;
  EXPECT_EQ(box.capacity(), ShardMailbox::kDefaultCapacity);
  box.set_capacity(4);
  for (int i = 0; i < 10; ++i) {
    box.Push(AllocPacket(), /*arrival=*/i, /*sink=*/nullptr);
  }
  // Four buffered, six shed at the fuse; the rejected packets recycle to
  // the pool like any other wire loss (no leak under ASan).
  EXPECT_EQ(box.buffer().size(), 4u);
  EXPECT_EQ(box.high_watermark(), 4u);
  EXPECT_EQ(box.overflow_drops(), 6u);

  // A drained mailbox accepts again; the high watermark is sticky.
  box.Clear();
  box.Push(AllocPacket(), 0, nullptr);
  EXPECT_EQ(box.buffer().size(), 1u);
  EXPECT_EQ(box.high_watermark(), 4u);
  EXPECT_EQ(box.overflow_drops(), 6u);

  box.set_capacity(0);  // 0 restores the default fuse
  EXPECT_EQ(box.capacity(), ShardMailbox::kDefaultCapacity);
  box.Clear();
}

TEST_F(ShardedEngineTest, TinyMailboxCapacityDegradesVisibly) {
  // With the per-pair fuse forced down to one envelope, crossings overflow
  // and are counted — the run degrades (TCP sees the shed envelopes as
  // loss) instead of buffering without bound, and the stats surface it.
  ChaosOptions opt;
  opt.seed = 3;
  opt.family = FaultFamily::kDropBurst;
  opt.transfer_bytes = 200'000;
  opt.time_limit = Ms(200);
  opt.shards = 2;
  opt.shard_mailbox_capacity = 1;
  const ChaosEngineResult starved = RunChaosEngine(opt, /*use_juggler=*/true);
  EXPECT_LE(starved.shard_mailbox_hwm, 1u);
  EXPECT_GT(starved.shard_mailbox_overflows, 0u);

  // Control: the default fuse never trips on a healthy run.
  opt.shard_mailbox_capacity = 0;
  opt.time_limit = Ms(800);
  const ChaosEngineResult healthy = RunChaosEngine(opt, /*use_juggler=*/true);
  EXPECT_TRUE(healthy.completed);
  EXPECT_EQ(healthy.shard_mailbox_overflows, 0u);
  EXPECT_GT(healthy.shard_mailbox_hwm, 0u);
  EXPECT_LT(healthy.shard_mailbox_hwm, ShardMailbox::kDefaultCapacity);
}

}  // namespace
}  // namespace juggler
