// Overload-resilience tests: bounded-resource operation under incast,
// flow-churn, and memory brown-out pressure.
//
// The contract under test (ISSUE 9 tentpole):
//   * hard capacity caps never abort — PacketPool::TryAcquire sheds with a
//     typed refusal counter, NIC rings tail-drop, the gro_table evicts;
//   * every shed packet is visible in metrics (the drop conservation law:
//     pool refusals == the sum of per-layer drop counters — checked inside
//     OverloadAuditor::FinalCheck, so "zero violations with nonzero
//     refusals" is the conservation proof);
//   * the stack recovers after pressure ends (occupancy back under the
//     watermark, gro_table drained, throughput restored) and leaks nothing
//     (sharded teardown measures outstanding pool packets exactly);
//   * every overload scenario is deterministic and shard-invariant: the
//     digest is byte-identical for any worker count N >= 1.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/fault/fault_json.h"
#include "src/fault/overload.h"
#include "src/forensics/scenario_spec.h"
#include "src/net/link.h"
#include "src/packet/packet.h"
#include "src/scenario/chaos_scenario.h"
#include "src/sim/event_loop.h"
#include "src/tcp/tcp_endpoint.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace juggler {
namespace {

// One pressure window riding a bulk transfer — the shape every chaos-level
// test here starts from. Kept identical across tests so digests computed in
// different tests cross-check each other.
ChaosOptions BaseOverloadOptions(OverloadKind kind, size_t shards, size_t pool_cap = 4'096) {
  ChaosOptions opt;
  opt.seed = 1;
  opt.family = FaultFamily::kDropBurst;
  opt.transfer_bytes = 1'500'000;
  opt.shards = shards;
  opt.overload.pool_capacity = pool_cap;
  OverloadWindow w;
  w.kind = kind;
  w.start = Ms(5);
  w.end = Ms(15);
  w.flows = 96;
  w.packets_per_flow = 4;
  w.burst_interval = Us(150);
  w.cap_pct = 25;
  opt.overload.windows.push_back(w);
  return opt;
}

constexpr OverloadKind kAllKinds[] = {OverloadKind::kIncast, OverloadKind::kChurn,
                                      OverloadKind::kBrownout};

// ---------------------------------------------------------------------------
// Graceful degradation: every stack survives every pressure kind.

TEST(OverloadChaosTest, StackMatrixSurvivesEveryPressureKind) {
  for (StackKind stack : {StackKind::kJuggler, StackKind::kVanilla, StackKind::kPresto}) {
    for (OverloadKind kind : kAllKinds) {
      const ChaosOptions opt = BaseOverloadOptions(kind, /*shards=*/0);
      const ChaosEngineResult r = RunChaosEngineStack(opt, stack);
      EXPECT_TRUE(r.completed) << r.engine << " under " << OverloadKindName(kind);
      EXPECT_EQ(r.violations, 0u) << r.engine << " under " << OverloadKindName(kind)
                                  << (r.violation_messages.empty()
                                          ? ""
                                          : ": " + r.violation_messages.front());
      if (kind != OverloadKind::kBrownout) {
        EXPECT_GT(r.overload.injected_packets, 0u);
      } else {
        EXPECT_GT(r.overload.brownouts, 0u);
        EXPECT_EQ(r.overload.brownouts, r.overload.cap_restores);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Shard invariance: the digest is byte-identical for any worker count, and
// full teardown proves zero leaked pool packets.

TEST(OverloadChaosTest, DigestInvariantAcrossShardCounts) {
  for (OverloadKind kind : kAllKinds) {
    uint64_t digest1 = 0;
    for (size_t shards : {size_t{1}, size_t{2}, size_t{8}}) {
      const ChaosOptions opt = BaseOverloadOptions(kind, shards);
      const ChaosEngineResult r = RunChaosEngineStack(opt, StackKind::kJuggler);
      ASSERT_TRUE(r.completed) << OverloadKindName(kind) << " shards=" << shards;
      ASSERT_EQ(r.violations, 0u) << OverloadKindName(kind) << " shards=" << shards;
      EXPECT_EQ(r.overload_pool_leaked, 0) << OverloadKindName(kind) << " shards=" << shards;
      if (shards == 1) {
        digest1 = r.digest;
      } else {
        EXPECT_EQ(r.digest, digest1)
            << OverloadKindName(kind) << ": shards=" << shards << " diverged from shards=1";
      }
    }
  }
}

TEST(OverloadChaosTest, DigestIsReproducibleAndSensitive) {
  const ChaosOptions opt = BaseOverloadOptions(OverloadKind::kChurn, /*shards=*/1);
  const ChaosEngineResult a = RunChaosEngineStack(opt, StackKind::kJuggler);
  const ChaosEngineResult b = RunChaosEngineStack(opt, StackKind::kJuggler);
  EXPECT_EQ(a.digest, b.digest);
  ChaosOptions changed = opt;
  changed.overload.windows[0].flows += 1;
  const ChaosEngineResult c = RunChaosEngineStack(changed, StackKind::kJuggler);
  EXPECT_NE(a.digest, c.digest) << "overload intensity must feed the digest";
}

// ---------------------------------------------------------------------------
// Drop conservation under a cap tight enough that the storm is refused
// thousands of times: zero violations IS the conservation proof, because
// FinalCheck cross-checks pool refusals against the per-layer drop counters
// and flags any shed packet that went unaccounted.

TEST(OverloadChaosTest, TightCapShedsVisiblyAndConserves) {
  const ChaosOptions opt = BaseOverloadOptions(OverloadKind::kIncast, /*shards=*/1,
                                               /*pool_cap=*/96);
  const ChaosEngineResult r = RunChaosEngineStack(opt, StackKind::kJuggler);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.violations, 0u) << (r.violation_messages.empty()
                                      ? ""
                                      : r.violation_messages.front());
  EXPECT_GT(r.overload_pool_exhausted, 1'000u) << "cap=96 must actually refuse the storm";
  EXPECT_EQ(r.overload_pool_leaked, 0);
  EXPECT_LE(r.overload_peak_pool, 96u + 64u)
      << "occupancy must stay near the cap (remote-release slack only)";

  // The same tight-cap run is still shard-invariant: refusal verdicts
  // depend on occupancy, which reconciles only at deterministic points.
  ChaosOptions opt8 = opt;
  opt8.shards = 8;
  const ChaosEngineResult r8 = RunChaosEngineStack(opt8, StackKind::kJuggler);
  EXPECT_EQ(r8.digest, r.digest);
  EXPECT_EQ(r8.overload_pool_exhausted, r.overload_pool_exhausted);
}

TEST(OverloadChaosTest, RingCapTailDropsAreCountedNotFatal) {
  ChaosOptions opt = BaseOverloadOptions(OverloadKind::kIncast, /*shards=*/1);
  opt.overload.ring_capacity = 16;
  const ChaosEngineResult r = RunChaosEngineStack(opt, StackKind::kJuggler);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.violations, 0u);
  EXPECT_GT(r.overload_ring_drops, 0u) << "a 16-slot ring must tail-drop the storm";
}

// ---------------------------------------------------------------------------
// Recovery contract.

// Regression: the workload can finish while pressure windows are still
// open. The run must keep draining until the last window closes before the
// auditor asserts quiescence — mid-storm gro_table buffering is legitimate
// transient state, not a leak.
TEST(OverloadChaosTest, PressureOutlivingTheWorkloadStaysClean) {
  for (size_t shards : {size_t{0}, size_t{2}}) {
    ChaosOptions opt = BaseOverloadOptions(OverloadKind::kChurn, shards);
    opt.transfer_bytes = 150'000;  // finishes well before the window's Ms(15) end
    const ChaosEngineResult r = RunChaosEngineStack(opt, StackKind::kJuggler);
    EXPECT_TRUE(r.completed) << "shards=" << shards;
    EXPECT_EQ(r.violations, 0u)
        << "shards=" << shards
        << (r.violation_messages.empty() ? "" : ": " + r.violation_messages.front());
    EXPECT_GE(r.finish_time, Ms(15)) << "run must outlast the pressure window";
    EXPECT_EQ(r.overload.windows_started, r.overload.windows_ended);
  }
}

// Legacy (shards=0) runs cap the long-lived thread-local pool; after the
// run the cap must be fully restored or every later test in this process
// inherits a stale bound.
TEST(OverloadChaosTest, ThreadPoolCapacityRestoredAfterLegacyRun) {
  const size_t before = PacketPool::ThreadLocal().capacity();
  const ChaosOptions opt = BaseOverloadOptions(OverloadKind::kBrownout, /*shards=*/0);
  const ChaosEngineResult r = RunChaosEngineStack(opt, StackKind::kJuggler);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(PacketPool::ThreadLocal().capacity(), before);
}

// ---------------------------------------------------------------------------
// Observability: the per-run metrics snapshot is worker-count invariant.

TEST(OverloadChaosTest, MetricsSnapshotIsShardInvariant) {
  ChaosOptions opt = BaseOverloadOptions(OverloadKind::kIncast, /*shards=*/1);
  opt.obs.metrics = true;
  const ChaosEngineResult r1 = RunChaosEngineStack(opt, StackKind::kJuggler);
  opt.shards = 2;
  const ChaosEngineResult r2 = RunChaosEngineStack(opt, StackKind::kJuggler);
  ASSERT_TRUE(r1.obs.metrics_enabled);
  ASSERT_TRUE(r2.obs.metrics_enabled);
  EXPECT_EQ(r1.obs.MetricsJson().Dump(2), r2.obs.MetricsJson().Dump(2));
}

// ---------------------------------------------------------------------------
// Satellite: overload pressure against an unbounded link is a setup bug.

TEST(OverloadChaosTest, UnboundedLinkIsFlaggedAsSetupBug) {
  EventLoop loop;
  LinkConfig bounded;
  bounded.queue_limit_bytes = 1'000'000;
  LinkConfig unbounded;
  unbounded.queue_limit_bytes = 0;
  Link good(&loop, "good", bounded, nullptr);
  Link bad(&loop, "bad", unbounded, nullptr);
  AuditLog log;
  CheckLinksBounded({&good}, "t", &log);
  EXPECT_EQ(log.violations(), 0u);
  CheckLinksBounded({&good, &bad, nullptr}, "t", &log);
  EXPECT_EQ(log.violations(), 1u);
  ASSERT_FALSE(log.messages().empty());
  EXPECT_NE(log.messages().front().find("bad"), std::string::npos);
}

// ---------------------------------------------------------------------------
// PacketPool: the bounded-resource primitive itself.

TEST(OverloadPoolTest, TryAcquireRefusesAtCapWithoutAborting) {
  PacketPool pool;
  pool.set_capacity(4);
  std::vector<Packet*> live;
  for (int i = 0; i < 4; ++i) {
    Packet* p = pool.TryAcquire();
    ASSERT_NE(p, nullptr);
    live.push_back(p);
  }
  EXPECT_EQ(pool.TryAcquire(), nullptr);
  EXPECT_EQ(pool.TryAcquire(), nullptr);
  EXPECT_EQ(pool.exhausted(), 2u);
  EXPECT_EQ(pool.outstanding(), 4u);
  pool.Release(live.back());
  live.pop_back();
  Packet* again = pool.TryAcquire();
  EXPECT_NE(again, nullptr) << "a release must reopen the cap";
  live.push_back(again);
  for (Packet* p : live) {
    pool.Release(p);
  }
  EXPECT_EQ(pool.outstanding(), 0u);
}

TEST(OverloadPoolTest, OutstandingClampsWhenReleasesExceedAcquires) {
  // An unstamped packet allocated from one pool but released into another
  // pool's ledger skews released past acquired. The occupancy view must
  // clamp at zero instead of wrapping to "infinitely full" — the wrap turns
  // a bookkeeping skew into a permanent allocation refusal.
  PacketPool source;
  PacketPool sink;
  Packet* p = source.Acquire();
  sink.Release(p);  // sink's ledger: 0 acquired, 1 released
  EXPECT_EQ(sink.outstanding(), 0u);
  sink.set_capacity(1);
  Packet* q = sink.TryAcquire();
  EXPECT_NE(q, nullptr) << "clamped occupancy must not refuse below the cap";
  sink.Release(q);
  EXPECT_EQ(source.outstanding(), 1u) << "the source still counts its live packet";
}

TEST(OverloadPoolTest, RemoteReleasesFoldOnlyAtReconcile) {
  // Stamped pool: a release on a thread whose ambient pool differs goes to
  // the origin's cross-thread return stack, and is counted against
  // occupancy only at ReconcileRemoteReleases() — the deterministic fold
  // point the shard-invariant refusal verdicts rely on.
  PacketPool origin{PacketPool::CrossThreadReturnTag{}};
  PacketPool other;
  Packet* p = origin.Acquire();
  EXPECT_EQ(origin.outstanding(), 1u);
  PacketPool* prev = PacketPool::SwapThreadPool(&other);
  PacketPool::ReleaseToThreadPool(p);  // origin != ambient: remote return
  PacketPool::SwapThreadPool(prev);
  EXPECT_EQ(origin.outstanding(), 1u) << "remote release invisible before reconcile";
  origin.ReconcileRemoteReleases();
  EXPECT_EQ(origin.outstanding(), 0u);
  EXPECT_EQ(origin.released(), 1u);
}

TEST(OverloadPoolTest, FactoryTryMakeKeepsIdSequenceDenseAcrossRefusals) {
  PacketPool capped;
  capped.set_capacity(1);
  PacketPool* prev = PacketPool::SwapThreadPool(&capped);
  PacketFactory factory;
  PacketPtr first = factory.TryMake();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->id, 0u);
  EXPECT_EQ(factory.TryMake(), nullptr);
  EXPECT_EQ(factory.TryMake(), nullptr);
  first.reset();
  PacketPtr second = factory.TryMake();
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->id, 1u) << "refusals must not consume ids";
  second.reset();
  PacketPool::SwapThreadPool(prev);
  EXPECT_EQ(capped.exhausted(), 2u);
}

// ---------------------------------------------------------------------------
// TCP persist timer: receive-side overload can close the advertised window
// to zero (the app-core backlog ate the whole rcv_buf). The sender must
// probe — with one already-ACKed byte, RFC 1122 style — instead of sleeping
// forever, because the receiver only ACKs on arriving data.

Segment PacketToSegment(const Packet& p) {
  Segment s;
  s.flow = p.flow;
  s.seq = p.seq;
  s.payload_len = p.payload_len;
  s.mtu_count = p.payload_len > 0 ? 1 : 0;
  s.flags = p.flags;
  s.ack_seq = p.ack_seq;
  s.ack_rwnd = p.ack_rwnd;
  s.sent_time = p.sent_time;
  return s;
}

// Minimal pipe: each wire packet becomes a one-packet segment after a fixed
// delay (the tcp_test harness, trimmed to what this test needs).
class PipeSink : public PacketSink {
 public:
  PipeSink(EventLoop* loop, TimeNs delay) : loop_(loop), delay_(delay) {}
  void set_target(TcpEndpoint* target) { target_ = target; }
  void Accept(PacketPtr packet) override {
    const Segment s = PacketToSegment(*packet);
    loop_->Schedule(delay_, [this, s] { target_->OnSegment(s); });
  }

 private:
  EventLoop* loop_;
  TimeNs delay_;
  TcpEndpoint* target_ = nullptr;
};

TEST(OverloadTcpTest, ZeroWindowProbeBreaksReceiveSideStall) {
  EventLoop loop;
  PacketFactory factory;
  PipeSink a_to_b(&loop, Us(10));
  PipeSink b_to_a(&loop, Us(10));
  NicTx a_nic(&loop, &factory, NicTxConfig{}, &a_to_b);
  NicTx b_nic(&loop, &factory, NicTxConfig{}, &b_to_a);
  const FiveTuple flow = TestFlow();
  TcpEndpoint a(&loop, TcpConfig{}, flow, &a_nic);
  TcpEndpoint b(&loop, TcpConfig{}, flow.Reversed(), &b_nic);
  a_to_b.set_target(&b);
  b_to_a.set_target(&a);

  // Receive-side overload: pressure >= rcv_buf closes the advertised window
  // to zero the moment the first ACK goes out.
  bool pressured = true;
  b.set_rwnd_pressure([&] { return pressured ? uint64_t{6'000'000} : uint64_t{0}; });

  a.Send(300'000);
  loop.RunUntil(Ms(200));
  EXPECT_LT(b.bytes_delivered(), 300'000u) << "the zero window must gate the transfer";
  EXPECT_GT(a.sender_stats().zero_window_probes, 0u)
      << "a stalled sender with zero inflight must be probing";

  // Pressure subsides. The next probe's DSACK ACK carries the reopened
  // window and the transfer completes — no data arrival was needed to
  // unblock it.
  pressured = false;
  loop.RunUntil(Ms(800));
  EXPECT_EQ(b.bytes_delivered(), 300'000u);
  EXPECT_EQ(a.bytes_acked(), 300'000u);
}

TEST(OverloadTcpTest, ProbesStopOnceWindowReopens) {
  EventLoop loop;
  PacketFactory factory;
  PipeSink a_to_b(&loop, Us(10));
  PipeSink b_to_a(&loop, Us(10));
  NicTx a_nic(&loop, &factory, NicTxConfig{}, &a_to_b);
  NicTx b_nic(&loop, &factory, NicTxConfig{}, &b_to_a);
  const FiveTuple flow = TestFlow();
  TcpEndpoint a(&loop, TcpConfig{}, flow, &a_nic);
  TcpEndpoint b(&loop, TcpConfig{}, flow.Reversed(), &b_nic);
  a_to_b.set_target(&b);
  b_to_a.set_target(&a);

  bool pressured = true;
  b.set_rwnd_pressure([&] { return pressured ? uint64_t{6'000'000} : uint64_t{0}; });
  a.Send(100'000);
  loop.RunUntil(Ms(100));
  pressured = false;
  loop.RunUntil(Ms(500));
  ASSERT_EQ(b.bytes_delivered(), 100'000u);
  const uint64_t probes_at_completion = a.sender_stats().zero_window_probes;
  loop.RunUntil(Ms(1'000));
  EXPECT_EQ(a.sender_stats().zero_window_probes, probes_at_completion)
      << "no probes after the transfer completed";
}

// ---------------------------------------------------------------------------
// Serialization: OverloadWindow JSON, ScenarioSpec fields, sampler
// determinism — what lets the fuzzer carry overload scenarios in repro
// bundles and the shrinker edit them.

TEST(OverloadJsonTest, WindowRoundTripsThroughJson) {
  OverloadWindow w;
  w.start = Ms(7);
  w.end = Ms(19);
  w.kind = OverloadKind::kChurn;
  w.flows = 77;
  w.packets_per_flow = 3;
  w.burst_interval = Us(123);
  w.cap_pct = 33;
  OverloadWindow back;
  std::string error;
  ASSERT_TRUE(OverloadWindowFromJson(OverloadWindowToJson(w), &back, &error)) << error;
  EXPECT_TRUE(w == back);

  std::vector<OverloadWindow> windows = {w, w};
  windows[1].kind = OverloadKind::kBrownout;
  std::vector<OverloadWindow> windows_back;
  ASSERT_TRUE(OverloadWindowsFromJson(OverloadWindowsToJson(windows), &windows_back, &error))
      << error;
  ASSERT_EQ(windows_back.size(), 2u);
  EXPECT_TRUE(windows[0] == windows_back[0]);
  EXPECT_TRUE(windows[1] == windows_back[1]);
}

TEST(OverloadJsonTest, WindowRejectsUnknownKind) {
  Json j = OverloadWindowToJson(OverloadWindow{});
  j.Set("kind", Json::Str("tsunami"));
  OverloadWindow out;
  std::string error;
  EXPECT_FALSE(OverloadWindowFromJson(j, &out, &error));
  EXPECT_FALSE(error.empty());
}

TEST(OverloadSpecTest, SpecCarriesOverloadIntoChaosOptions) {
  ScenarioSpec spec;
  OverloadWindow w;
  w.start = Ms(6);
  w.end = Ms(11);
  w.kind = OverloadKind::kIncast;
  spec.overload_windows.push_back(w);
  spec.overload_pool_capacity = 2'222;
  spec.overload_ring_capacity = 128;
  const ChaosOptions opt = spec.ToChaosOptions();
  ASSERT_EQ(opt.overload.windows.size(), 1u);
  EXPECT_TRUE(opt.overload.windows[0] == w);
  EXPECT_EQ(opt.overload.pool_capacity, 2'222u);
  EXPECT_EQ(opt.overload.ring_capacity, 128u);
}

TEST(OverloadSpecTest, SampledOverloadSpecsAreDeterministicAndWellFormed) {
  SampleLimits limits;
  limits.overload_prob = 1.0;
  Rng r1(77);
  Rng r2(77);
  for (int i = 0; i < 16; ++i) {
    const ScenarioSpec s1 = SampleScenarioSpec(&r1, limits);
    const ScenarioSpec s2 = SampleScenarioSpec(&r2, limits);
    ASSERT_EQ(s1.ToJson().Dump(2), s2.ToJson().Dump(2)) << "spec " << i;
    ASSERT_FALSE(s1.overload_windows.empty()) << "overload_prob=1 must emit windows";
    for (const OverloadWindow& w : s1.overload_windows) {
      EXPECT_LT(w.start, w.end);
      EXPECT_GE(w.flows, 1u);
      EXPECT_GE(w.packets_per_flow, 1u);
      EXPECT_GT(w.burst_interval, 0);
      EXPECT_GE(w.cap_pct, 1u);
      EXPECT_LE(w.cap_pct, 100u);
      EXPECT_LT(w.end, s1.time_limit / 2) << "the tail must stay pressure-free";
    }
    EXPECT_GE(s1.overload_pool_capacity, 1'024u);

    // Round trip through JSON, byte-stably, with the overload block intact.
    Json parsed;
    std::string error;
    ASSERT_TRUE(Json::Parse(s1.ToJson().Dump(2), &parsed, &error)) << error;
    ScenarioSpec back;
    ASSERT_TRUE(ScenarioSpec::FromJson(parsed, &back, &error)) << error;
    EXPECT_EQ(back.ToJson().Dump(2), s1.ToJson().Dump(2));
  }

  // The overload draw must come from its own seed-derived stream: turning
  // it off shifts no other field of the sampled spec.
  SampleLimits no_ovl = limits;
  no_ovl.overload_prob = 0.0;
  Rng r3(77);
  const ScenarioSpec with = [&] {
    Rng r(77);
    return SampleScenarioSpec(&r, limits);
  }();
  const ScenarioSpec without = SampleScenarioSpec(&r3, no_ovl);
  EXPECT_TRUE(without.overload_windows.empty());
  EXPECT_EQ(with.seed, without.seed);
  EXPECT_EQ(with.transfer_bytes, without.transfer_bytes);
  EXPECT_EQ(static_cast<int>(with.family), static_cast<int>(without.family));
  EXPECT_EQ(with.max_flows, without.max_flows);
}

}  // namespace
}  // namespace juggler
