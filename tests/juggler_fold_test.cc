// Batch-fold equivalence: ReceiveBatch's folded fast path must be
// observably identical to per-packet Receive — same segments (every field),
// same charged CPU cost, same stats — for ANY input, because a batch
// boundary is a NIC artifact, not a protocol event. Two engines are fed the
// same stream, one per-packet and one in poll-round batches, and compared
// exactly.
//
// The directed cases pin the fold's admission edges: multi-run batches,
// cross-flow interleaving (per-flow run cursors), PSH mid-run, metadata
// changes, sub-MSS packets against the head-run flush bound, duplicates,
// and merge-cap overshoot. The randomized sweep then walks the space of
// reorderings, batch sizes and payload mixes.

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "src/core/juggler.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace juggler {
namespace {

std::unique_ptr<GroHarness> MakeHarness(const JugglerConfig& config) {
  return std::make_unique<GroHarness>(
      [config](const CpuCostModel* c) { return std::make_unique<Juggler>(c, config); });
}

// Every observable Segment field. first_rx/last_rx/sent_time included: the
// fold must reproduce per-packet timestamp bookkeeping, not just byte math.
void ExpectSegmentsIdentical(const std::vector<Segment>& a, const std::vector<Segment>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("segment " + std::to_string(i));
    EXPECT_EQ(a[i].flow, b[i].flow);
    EXPECT_EQ(a[i].seq, b[i].seq);
    EXPECT_EQ(a[i].payload_len, b[i].payload_len);
    EXPECT_EQ(a[i].mtu_count, b[i].mtu_count);
    EXPECT_EQ(a[i].flags, b[i].flags);
    EXPECT_EQ(a[i].ack_seq, b[i].ack_seq);
    EXPECT_EQ(a[i].ack_rwnd, b[i].ack_rwnd);
    EXPECT_EQ(a[i].ce_mark, b[i].ce_mark);
    EXPECT_EQ(a[i].first_rx_time, b[i].first_rx_time);
    EXPECT_EQ(a[i].last_rx_time, b[i].last_rx_time);
    EXPECT_EQ(a[i].sent_time, b[i].sent_time);
  }
}

void ExpectStatsIdentical(const Juggler& a, const Juggler& b) {
  const GroStats& ga = a.stats();
  const GroStats& gb = b.stats();
  EXPECT_EQ(ga.packets_in, gb.packets_in);
  EXPECT_EQ(ga.acks_in, gb.acks_in);
  EXPECT_EQ(ga.data_packets_in, gb.data_packets_in);
  EXPECT_EQ(ga.ooo_packets, gb.ooo_packets);
  EXPECT_EQ(ga.segments_out, gb.segments_out);
  EXPECT_EQ(ga.data_segments_out, gb.data_segments_out);
  EXPECT_EQ(ga.mtus_out, gb.mtus_out);
  EXPECT_EQ(ga.evictions, gb.evictions);
  for (int r = 0; r < static_cast<int>(FlushReason::kReasonCount); ++r) {
    EXPECT_EQ(ga.flush_by_reason[r], gb.flush_by_reason[r]) << "flush reason " << r;
  }
  const JugglerStats& ja = a.juggler_stats();
  const JugglerStats& jb = b.juggler_stats();
  EXPECT_EQ(ja.flows_created, jb.flows_created);
  EXPECT_EQ(ja.duplicate_packets, jb.duplicate_packets);
  EXPECT_EQ(ja.buffered_bytes_in, jb.buffered_bytes_in);
  EXPECT_EQ(ja.buffered_bytes_out, jb.buffered_bytes_out);
  EXPECT_EQ(ja.evicted_bytes, jb.evicted_bytes);
  EXPECT_EQ(ja.loss_recovery_entries, jb.loss_recovery_entries);
  EXPECT_EQ(ja.loss_recovery_exits, jb.loss_recovery_exits);
  for (int f = 0; f <= kFlowPhaseCount; ++f) {
    for (int t = 0; t < kFlowPhaseCount; ++t) {
      EXPECT_EQ(ja.phase_transitions[f][t], jb.phase_transitions[f][t])
          << "phase edge " << f << " -> " << t;
    }
  }
  for (int p = 0; p < kFlowPhaseCount; ++p) {
    EXPECT_EQ(ja.enqueued_bytes_by_phase[p], jb.enqueued_bytes_by_phase[p]) << "phase " << p;
    EXPECT_EQ(ja.flushed_bytes_by_phase[p], jb.flushed_bytes_by_phase[p]) << "phase " << p;
  }
}

// Clone of the stream for the second engine. Clones share simulation state
// but not pool bookkeeping.
std::vector<PacketPtr> CloneStream(const std::vector<PacketPtr>& stream) {
  std::vector<PacketPtr> out;
  out.reserve(stream.size());
  for (const PacketPtr& p : stream) {
    out.push_back(ClonePacket(*p));
  }
  return out;
}

// Feeds `stream` to two engines: per-packet vs batches of `batch_size`.
// Poll rounds (PollComplete + timer check + time advance) happen at batch
// boundaries in both, so the only difference is the delivery API.
void RunEquivalence(std::vector<PacketPtr> stream, size_t batch_size,
                    const JugglerConfig& config = JugglerConfig{}) {
  std::vector<PacketPtr> batched_stream = CloneStream(stream);
  auto per_packet = MakeHarness(config);
  auto batched = MakeHarness(config);

  TimeNs cost_per_packet = 0;
  TimeNs cost_batched = 0;
  for (size_t base = 0; base < stream.size(); base += batch_size) {
    const size_t n = std::min(batch_size, stream.size() - base);
    for (size_t i = 0; i < n; ++i) {
      cost_per_packet += per_packet->Receive(std::move(stream[base + i]));
    }
    cost_batched += batched->ReceiveBatch(batched_stream.data() + base, n);
    for (GroHarness* h : {per_packet.get(), batched.get()}) {
      h->Advance(Us(3));
      h->PollComplete();
      h->MaybeFireTimer();
    }
    // Same-sized prefixes must already agree; comparing per round localizes
    // a divergence to the batch that caused it.
    ASSERT_EQ(per_packet->delivered().size(), batched->delivered().size())
        << "diverged in batch starting at packet " << base;
  }
  for (GroHarness* h : {per_packet.get(), batched.get()}) {
    for (int i = 0; i < 10; ++i) {
      h->Advance(Ms(1));
      h->PollComplete();
      h->MaybeFireTimer();
    }
  }

  EXPECT_EQ(cost_per_packet, cost_batched) << "charged CPU cost diverged";
  ExpectSegmentsIdentical(per_packet->delivered(), batched->delivered());
  ExpectStatsIdentical(*static_cast<Juggler*>(per_packet->engine()),
                       *static_cast<Juggler*>(batched->engine()));
}

// ---- directed cases ----

TEST(JugglerFoldTest, InOrderSingleFlowRun) {
  std::vector<PacketPtr> stream;
  for (uint32_t i = 0; i < 64; ++i) {
    stream.push_back(MakeDataPacket(TestFlow(), i * kMss, kMss));
  }
  RunEquivalence(std::move(stream), 16);
}

TEST(JugglerFoldTest, CrossFlowInterleavedBatches) {
  // Round-robin across 4 flows: each batch holds 4 interleaved runs, the
  // pattern the per-flow run cursor exists for.
  std::vector<PacketPtr> stream;
  for (uint32_t i = 0; i < 32; ++i) {
    for (uint16_t f = 1; f <= 4; ++f) {
      stream.push_back(MakeDataPacket(TestFlow(f, 9), i * kMss, kMss));
    }
  }
  RunEquivalence(std::move(stream), 16);
}

TEST(JugglerFoldTest, MultiRunBatchAfterReorder) {
  // A displaced packet splits the flow into two buffered runs; subsequent
  // batches extend both. The fold must track run identity, not just tails.
  std::vector<PacketPtr> stream;
  const FiveTuple flow = TestFlow();
  stream.push_back(MakeDataPacket(flow, 0 * kMss, kMss));
  stream.push_back(MakeDataPacket(flow, 5 * kMss, kMss));  // opens run 2
  for (uint32_t i = 6; i < 12; ++i) {
    stream.push_back(MakeDataPacket(flow, i * kMss, kMss));  // extends run 2
  }
  for (uint32_t i = 1; i < 5; ++i) {
    stream.push_back(MakeDataPacket(flow, i * kMss, kMss));  // fills the hole
  }
  for (uint32_t i = 12; i < 40; ++i) {
    stream.push_back(MakeDataPacket(flow, i * kMss, kMss));
  }
  RunEquivalence(std::move(stream), 8);
}

TEST(JugglerFoldTest, PshMidBatchFlushesIdentically) {
  std::vector<PacketPtr> stream;
  for (uint32_t i = 0; i < 48; ++i) {
    const uint8_t flags = (i % 11 == 7) ? (kFlagAck | kFlagPsh) : kFlagAck;
    stream.push_back(MakeDataPacket(TestFlow(), i * kMss, kMss, flags));
  }
  RunEquivalence(std::move(stream), 16);
}

TEST(JugglerFoldTest, MetadataChangeMidBatch) {
  // An options-token change mid-run refuses the merge per Table 2; the fold
  // must stop at exactly the same packet.
  std::vector<PacketPtr> stream;
  for (uint32_t i = 0; i < 48; ++i) {
    PacketPtr p = MakeDataPacket(TestFlow(), i * kMss, kMss);
    p->options_token = i / 10;  // changes every 10 packets
    stream.push_back(std::move(p));
  }
  RunEquivalence(std::move(stream), 16);
}

TEST(JugglerFoldTest, SubMssPacketsHitHeadFlushBoundIdentically) {
  // Per-packet Receive flushes the head run when payload + kMss > max; with
  // sub-MSS packets a naive fold bound (payload + len < max) accumulates
  // past that point and moves the segment boundary. Regression for exactly
  // that divergence.
  std::vector<PacketPtr> stream;
  Seq seq = 0;
  for (uint32_t i = 0; i < 400; ++i) {
    const uint32_t len = (i % 3 == 0) ? 700 : kMss;  // mixed sub-MSS / full
    stream.push_back(MakeDataPacket(TestFlow(), seq, len));
    seq += len;
  }
  RunEquivalence(std::move(stream), 32);
}

TEST(JugglerFoldTest, DuplicatesAndOverlapsMidBatch) {
  std::vector<PacketPtr> stream;
  const FiveTuple flow = TestFlow();
  for (uint32_t i = 0; i < 32; ++i) {
    stream.push_back(MakeDataPacket(flow, i * kMss, kMss));
    if (i % 7 == 3) {
      stream.push_back(MakeDataPacket(flow, (i / 2) * kMss, kMss));  // dup
    }
  }
  RunEquivalence(std::move(stream), 8);
}

TEST(JugglerFoldTest, PureAcksInterleaved) {
  std::vector<PacketPtr> stream;
  const FiveTuple flow = TestFlow();
  for (uint32_t i = 0; i < 48; ++i) {
    stream.push_back(MakeDataPacket(flow, i * kMss, kMss));
    if (i % 5 == 2) {
      stream.push_back(MakeAckPacket(flow.Reversed(), i * kMss));
    }
  }
  RunEquivalence(std::move(stream), 16);
}

TEST(JugglerFoldTest, MergeCapRunsFoldIdentically) {
  // More than kMaxTsoPayload of back-to-back data: both paths must cut
  // segments at the same byte.
  std::vector<PacketPtr> stream;
  for (uint32_t i = 0; i < 3 * 45 + 7; ++i) {
    stream.push_back(MakeDataPacket(TestFlow(), i * kMss, kMss));
  }
  RunEquivalence(std::move(stream), 64);
}

// ---- randomized sweep ----

struct FoldSweepParams {
  uint64_t seed;
  uint32_t window;      // reorder displacement
  size_t batch_size;
  uint32_t num_flows;
  bool sub_mss;
};

class JugglerFoldSweepTest : public ::testing::TestWithParam<FoldSweepParams> {};

TEST_P(JugglerFoldSweepTest, BatchedDeliveryIsObservablyPerPacket) {
  const FoldSweepParams p = GetParam();
  Rng rng(p.seed);

  // Per-flow sequences of (seq, len), displaced within the window, then
  // interleaved round-robin with occasional flag/metadata noise.
  const uint32_t packets_per_flow = 240;
  std::vector<std::vector<std::pair<Seq, uint32_t>>> flows(p.num_flows);
  for (auto& f : flows) {
    Seq seq = 0;
    std::vector<std::pair<Seq, uint32_t>> in_order;
    for (uint32_t i = 0; i < packets_per_flow; ++i) {
      const uint32_t len =
          p.sub_mss && rng.NextBool(0.3)
              ? 200 + static_cast<uint32_t>(rng.NextDouble() * (kMss - 200))
              : kMss;
      in_order.emplace_back(seq, len);
      seq += len;
    }
    // Windowed displacement, as in the property tests.
    std::vector<std::pair<double, size_t>> keyed;
    for (size_t i = 0; i < in_order.size(); ++i) {
      keyed.emplace_back(static_cast<double>(i) + rng.NextDouble() * p.window, i);
    }
    std::stable_sort(keyed.begin(), keyed.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [key, index] : keyed) {
      f.push_back(in_order[index]);
    }
  }

  std::vector<PacketPtr> stream;
  for (uint32_t i = 0; i < packets_per_flow; ++i) {
    for (uint32_t f = 0; f < p.num_flows; ++f) {
      const auto [seq, len] = flows[f][i];
      const uint8_t flags =
          rng.NextBool(0.03) ? (kFlagAck | kFlagPsh) : kFlagAck;
      PacketPtr pkt = MakeDataPacket(TestFlow(static_cast<uint16_t>(f + 1), 9), seq, len,
                                     flags);
      if (rng.NextBool(0.02)) {
        pkt->ce_mark = true;
      }
      stream.push_back(std::move(pkt));
    }
  }
  RunEquivalence(std::move(stream), p.batch_size);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, JugglerFoldSweepTest,
    ::testing::Values(FoldSweepParams{1, 0, 64, 1, false},   // pure fast path
                      FoldSweepParams{2, 0, 64, 6, false},   // cross-flow folds
                      FoldSweepParams{3, 4, 16, 3, false},   // light reorder
                      FoldSweepParams{4, 25, 32, 4, false},  // multi-run folds
                      FoldSweepParams{5, 0, 64, 2, true},    // sub-MSS, in order
                      FoldSweepParams{6, 12, 48, 5, true},   // sub-MSS + reorder
                      FoldSweepParams{7, 80, 8, 8, true},    // extreme reorder
                      FoldSweepParams{8, 3, 1, 4, false}),   // batch of one
    [](const ::testing::TestParamInfo<FoldSweepParams>& info) {
      const FoldSweepParams& p = info.param;
      return "seed" + std::to_string(p.seed) + "_w" + std::to_string(p.window) + "_b" +
             std::to_string(p.batch_size) + "_f" + std::to_string(p.num_flows) +
             (p.sub_mss ? "_submss" : "");
    });

}  // namespace
}  // namespace juggler
