// Observability tests: the metrics registry and flight recorder in
// isolation, then the end-to-end determinism properties the tentpole
// promises — metrics and traces byte-identical across --shards={1,2,8},
// a checked-in golden trace for the Fig. 12/13 coalescing-timeout
// scenario, and the mailbox-pressure regression (overflow drops routed
// through the registry so repro bundles capture them).

#include <cstdlib>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "src/core/juggler.h"
#include "src/gro/baseline_gro.h"
#include "src/nic/rx_driver.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/scenario/chaos_scenario.h"
#include "tests/test_util.h"

namespace juggler {
namespace {

// ---------------------------------------------------------------- metrics --

TEST(Log2HistogramTest, BucketBoundaries) {
  Log2Histogram h;
  h.Record(0);  // bucket 0
  h.Record(1);  // bucket 1
  h.Record(2);  // bucket 2
  h.Record(3);  // bucket 2
  h.Record(4);  // bucket 3
  h.Record(7);  // bucket 3
  h.Record(8);  // bucket 4
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_EQ(h.buckets[1], 1u);
  EXPECT_EQ(h.buckets[2], 2u);
  EXPECT_EQ(h.buckets[3], 2u);
  EXPECT_EQ(h.buckets[4], 1u);
  EXPECT_EQ(h.count, 7u);
  EXPECT_EQ(h.sum, 25u);
  // The giant-value clamp: everything above 2^62 lands in the last bucket.
  Log2Histogram top;
  top.Record(~uint64_t{0});
  EXPECT_EQ(top.buckets[Log2Histogram::kBuckets - 1], 1u);
}

TEST(MetricsRegistryTest, CountersGaugesAndMerge) {
  MetricsRegistry a;
  a.AddCounter("gro.flush", "juggler/size_limit", 3);
  a.AddCounter("gro.flush", "juggler/size_limit", 2);
  a.SetGauge("sim.lookahead_ns", "", 10);
  a.MaxGauge("sim.mailbox_high_watermark", "", 4);
  a.MaxGauge("sim.mailbox_high_watermark", "", 2);  // lower: ignored
  EXPECT_EQ(a.CounterValue("gro.flush", "juggler/size_limit"), 5u);
  EXPECT_EQ(a.GaugeValue("sim.mailbox_high_watermark", ""), 4u);
  EXPECT_EQ(a.CounterValue("gro.flush", "missing", 77), 77u);

  MetricsRegistry b;
  b.AddCounter("gro.flush", "juggler/size_limit", 10);
  b.MaxGauge("sim.mailbox_high_watermark", "", 9);
  a.MergeFrom(b);
  EXPECT_EQ(a.CounterValue("gro.flush", "juggler/size_limit"), 15u);
  EXPECT_EQ(a.GaugeValue("sim.mailbox_high_watermark", ""), 9u);
}

TEST(MetricsRegistryTest, JsonIsDeterministicAndOrdered) {
  // Insert in scrambled order; serialization must not depend on it.
  MetricsRegistry a;
  a.AddCounter("z.last", "", 1);
  a.AddCounter("a.first", "beta", 2);
  a.AddCounter("a.first", "alpha", 3);
  MetricsRegistry b;
  b.AddCounter("a.first", "alpha", 3);
  b.AddCounter("z.last", "", 1);
  b.AddCounter("a.first", "beta", 2);
  EXPECT_EQ(a.ToJson().Dump(1), b.ToJson().Dump(1));
  const std::string dump = a.ToJson().Dump(1);
  EXPECT_LT(dump.find("a.first/alpha"), dump.find("a.first/beta"));
  EXPECT_LT(dump.find("a.first/beta"), dump.find("z.last"));
}

// ---------------------------------------------------------------- recorder --

TEST(FlightRecorderTest, RingOverwriteCountsDropped) {
  FlightRecorder rec(/*shard=*/3, /*capacity=*/4);
  for (int i = 0; i < 6; ++i) {
    rec.Record(i * 10, TraceKind::kGroFlush, static_cast<uint64_t>(i));
  }
  EXPECT_EQ(rec.recorded(), 6u);
  EXPECT_EQ(rec.dropped(), 2u);
  const auto events = rec.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest surviving first: events 2..5.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].a, static_cast<uint64_t>(i + 2));
    EXPECT_EQ(events[i].time, (i + 2) * 10);
    EXPECT_EQ(events[i].shard, 3u);
  }
}

TEST(FlightRecorderTest, MergeSortsByTimeShardSeq) {
  FlightRecorder r0(0), r1(1);
  r0.Record(100, TraceKind::kGroFlush, 1);
  r0.Record(300, TraceKind::kGroFlush, 2);
  r1.Record(100, TraceKind::kGroFlush, 3);  // same time as r0's first
  r1.Record(200, TraceKind::kGroFlush, 4);
  const auto merged = MergeTraces({&r0, &r1});
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].a, 1u);  // t=100 shard 0
  EXPECT_EQ(merged[1].a, 3u);  // t=100 shard 1
  EXPECT_EQ(merged[2].a, 4u);  // t=200
  EXPECT_EQ(merged[3].a, 2u);  // t=300
  for (size_t i = 1; i < merged.size(); ++i) {
    const auto& p = merged[i - 1];
    const auto& q = merged[i];
    EXPECT_TRUE(p.time < q.time || (p.time == q.time && p.shard < q.shard) ||
                (p.time == q.time && p.shard == q.shard && p.seq < q.seq));
  }
}

// ----------------------------------------------------- shard determinism --

ChaosOptions ObsChaosOptions(size_t shards) {
  ChaosOptions opt;
  opt.seed = 7;
  opt.family = FaultFamily::kDelaySpike;
  opt.transfer_bytes = 400'000;
  opt.shards = shards;
  opt.obs.metrics = true;
  opt.obs.trace = true;
  return opt;
}

TEST(ObsDeterminismTest, MetricsAndTraceByteIdenticalAcrossShardCounts) {
  const ChaosEngineResult one = RunChaosEngine(ObsChaosOptions(1), /*use_juggler=*/true);
  ASSERT_TRUE(one.completed);
  ASSERT_FALSE(one.obs.metrics.empty());
  ASSERT_FALSE(one.obs.events.empty());
  const std::string metrics1 = one.obs.MetricsJson().Dump(1);
  const std::string trace1 = one.obs.TraceJson(ChaosTraceNamer()).Dump(1);

  for (size_t shards : {size_t{2}, size_t{8}}) {
    const ChaosEngineResult r = RunChaosEngine(ObsChaosOptions(shards), /*use_juggler=*/true);
    EXPECT_EQ(r.digest, one.digest) << "digest diverged at shards=" << shards;
    EXPECT_EQ(r.obs.MetricsJson().Dump(1), metrics1)
        << "metrics JSON not byte-identical at shards=" << shards;
    EXPECT_EQ(r.obs.TraceJson(ChaosTraceNamer()).Dump(1), trace1)
        << "trace JSON not byte-identical at shards=" << shards;
  }
}

TEST(ObsDeterminismTest, MergedEventsAreSortedByTimeShardSeq) {
  const ChaosEngineResult r = RunChaosEngine(ObsChaosOptions(2), /*use_juggler=*/true);
  ASSERT_GT(r.obs.events.size(), 1u);
  for (size_t i = 1; i < r.obs.events.size(); ++i) {
    const TraceEvent& p = r.obs.events[i - 1];
    const TraceEvent& q = r.obs.events[i];
    const bool ordered = p.time < q.time || (p.time == q.time && p.shard < q.shard) ||
                         (p.time == q.time && p.shard == q.shard && p.seq < q.seq);
    ASSERT_TRUE(ordered) << "event " << i << " out of (time, shard, seq) order";
  }
}

TEST(ObsDeterminismTest, LegacyEngineCollectsObsToo) {
  const ChaosEngineResult r = RunChaosEngine(ObsChaosOptions(0), /*use_juggler=*/true);
  EXPECT_TRUE(r.obs.metrics_enabled);
  EXPECT_TRUE(r.obs.trace_enabled);
  EXPECT_FALSE(r.obs.metrics.empty());
  EXPECT_FALSE(r.obs.events.empty());
}

// ------------------------------------------------------- mailbox pressure --

TEST(ObsDeterminismTest, MailboxPressureRoutedThroughRegistry) {
  // A deliberately tiny inter-shard mailbox: the fuse sheds envelopes, and
  // BOTH the raw result fields and the published metrics must agree on how
  // many — this is the counter repro bundles pick up.
  ChaosOptions opt = ObsChaosOptions(2);
  opt.transfer_bytes = 200'000;
  opt.shard_mailbox_capacity = 2;
  const ChaosEngineResult r = RunChaosEngine(opt, /*use_juggler=*/true);
  EXPECT_GT(r.shard_mailbox_overflows, 0u) << "capacity 2 should overflow";
  EXPECT_EQ(r.obs.metrics.CounterValue("sim.mailbox_overflow_drops", ""),
            r.shard_mailbox_overflows);
  EXPECT_EQ(r.obs.metrics.GaugeValue("sim.mailbox_high_watermark", ""),
            static_cast<uint64_t>(r.shard_mailbox_hwm));

  // And with a sane fuse the high-watermark is nonzero while overflows stay
  // zero — the gauge is live, not a constant.
  ChaosOptions sane = ObsChaosOptions(2);
  sane.transfer_bytes = 200'000;
  const ChaosEngineResult ok = RunChaosEngine(sane, /*use_juggler=*/true);
  EXPECT_EQ(ok.obs.metrics.CounterValue("sim.mailbox_overflow_drops", ""), 0u);
  EXPECT_GT(ok.obs.metrics.GaugeValue("sim.mailbox_high_watermark", ""), 0u);
}

// ------------------------------------------------------------ golden trace --

#ifndef JUGGLER_TEST_GOLDEN_DIR
#define JUGGLER_TEST_GOLDEN_DIR "tests/golden"
#endif

// The Fig. 12/13 coalescing scenario, scripted: in-sequence data held past
// inseq_timeout, then a hole held past ofo_timeout (entering loss recovery),
// then the retransmission that fills it, a PSH flush and a pure ACK. Every
// timestamp is hand-advanced, so the trace is bit-stable across machines.
Json GoldenScenarioTrace() {
  FlightRecorder recorder(/*shard=*/0, /*capacity=*/256);
  GroHarness h([](const CpuCostModel* costs) {
    return std::make_unique<Juggler>(costs, JugglerConfig{});
  });
  h.AttachRecorder(&recorder);
  const FiveTuple flow = TestFlow();

  // Fig. 12: three merged MTUs wait out the 15us inseq_timeout.
  for (int i = 0; i < 3; ++i) {
    h.Receive(MakeDataPacket(flow, static_cast<Seq>(i) * kMss, kMss));
  }
  h.Advance(Us(20));
  h.PollComplete();

  // Fig. 13: a run beyond a hole waits out the 50us ofo_timeout.
  h.Receive(MakeDataPacket(flow, 5 * kMss, kMss));
  h.Advance(Us(60));
  h.PollComplete();

  // The retransmission fills the hole: loss recovery exits.
  h.Receive(MakeDataPacket(flow, 3 * kMss, kMss));
  // Eager PSH flush, then a pure ACK straight through.
  h.Receive(MakeDataPacket(flow, 6 * kMss, kMss, kFlagAck | kFlagPsh));
  h.Receive(MakeAckPacket(flow, 7 * kMss));

  Json full = TraceToJson(recorder.Snapshot(), recorder.dropped(), ChaosTraceNamer());
  // Golden files carry only the build-independent parts: otherData embeds
  // the compiler version string.
  Json stripped = Json::Object();
  stripped.Set("traceEvents", *full.Find("traceEvents"));
  stripped.Set("displayTimeUnit", *full.Find("displayTimeUnit"));
  return stripped;
}

TEST(GoldenTraceTest, CoalescingScenarioMatchesCheckedInTrace) {
  const std::string golden_path =
      std::string(JUGGLER_TEST_GOLDEN_DIR) + "/coalescing_trace.json";
  const std::string current = GoldenScenarioTrace().Dump(1) + "\n";

  if (std::getenv("JUGGLER_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    out << current;
    GTEST_SKIP() << "regenerated " << golden_path;
  }

  std::ifstream in(golden_path);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path
                         << " (regenerate with JUGGLER_REGEN_GOLDEN=1)";
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), current)
      << "the coalescing-timeout trace changed; if intentional, regenerate with\n"
         "  JUGGLER_REGEN_GOLDEN=1 ./obs_test --gtest_filter='GoldenTraceTest.*'";
}

TEST(GoldenTraceTest, GoldenScenarioEmitsTheExpectedFlushReasons) {
  // Independent of the byte-exact golden: the scenario must keep exercising
  // inseq_timeout, ofo_timeout, seq_before_next, flags and pure_ack — the
  // trace's value is WHICH labelled events it shows a reader.
  const Json trace = GoldenScenarioTrace();
  const Json* events = trace.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::set<std::string> reasons;
  int phase_events = 0;
  for (const Json& e : events->items()) {
    std::string name;
    ASSERT_TRUE(e.GetString("name", &name));
    if (name == "gro_flush") {
      const Json* args = e.Find("args");
      ASSERT_NE(args, nullptr);
      std::string reason;
      ASSERT_TRUE(args->GetString("reason", &reason));
      reasons.insert(reason);
    } else if (name == "phase") {
      ++phase_events;
    }
  }
  for (const char* want :
       {"inseq_timeout", "ofo_timeout", "seq_before_next", "flags", "pure_ack"}) {
    EXPECT_TRUE(reasons.count(want) != 0)
        << "golden scenario no longer emits a '" << want << "' flush";
  }
  EXPECT_GE(phase_events, 4) << "golden scenario lost its phase-machine transitions";
}

// ------------------------------------------- COREC hand-off golden trace --

class DiscardSink : public SegmentSink {
 public:
  void OnSegment(Segment) override {}
};

// A compact scripted COREC run: 20 packets against 3 consumers with
// 8-descriptor claim windows, so the third consumer's short window (4
// packets) commits out of order, parks behind the incomplete head windows
// (a recorded stall), and the hand-off stage then releases the contiguous
// runs to GRO in ring order. Everything is a pure simulation of fixed cost
// constants, so the trace is bit-stable across machines.
Json CorecHandoffTrace() {
  EventLoop loop;
  CpuCostModel costs;
  FlightRecorder recorder(/*shard=*/0, /*capacity=*/256);
  DiscardSink sink;
  NicRxConfig cfg;
  cfg.driver = RxDriverKind::kCorec;
  cfg.corec_consumers = 3;
  cfg.corec_claim_window = 8;
  cfg.recorder = &recorder;
  std::unique_ptr<RxDriver> nic = MakeRxDriver(
      &loop, &costs, cfg,
      [](const CpuCostModel* c) -> std::unique_ptr<GroEngine> {
        return std::make_unique<StandardGro>(c);
      },
      &sink);
  const FiveTuple flow = TestFlow();
  for (int i = 0; i < 20; ++i) {
    nic->Accept(MakeDataPacket(flow, static_cast<Seq>(i) * kMss, kMss));
  }
  loop.Run();

  Json full = TraceToJson(recorder.Snapshot(), recorder.dropped(), ChaosTraceNamer());
  Json stripped = Json::Object();
  stripped.Set("traceEvents", *full.Find("traceEvents"));
  stripped.Set("displayTimeUnit", *full.Find("displayTimeUnit"));
  return stripped;
}

TEST(GoldenTraceTest, CorecHandoffMatchesCheckedInTrace) {
  const std::string golden_path =
      std::string(JUGGLER_TEST_GOLDEN_DIR) + "/corec_handoff_trace.json";
  const std::string current = CorecHandoffTrace().Dump(1) + "\n";

  if (std::getenv("JUGGLER_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    out << current;
    GTEST_SKIP() << "regenerated " << golden_path;
  }

  std::ifstream in(golden_path);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path
                         << " (regenerate with JUGGLER_REGEN_GOLDEN=1)";
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), current)
      << "the COREC hand-off trace changed; if intentional, regenerate with\n"
         "  JUGGLER_REGEN_GOLDEN=1 ./obs_test --gtest_filter='GoldenTraceTest.*'";
}

TEST(GoldenTraceTest, CorecScenarioEmitsClaimCommitStallHandoff) {
  // Independent of the byte-exact golden: the scenario must keep showing a
  // reader the full claim -> out-of-order commit -> stall -> in-order
  // hand-off lifecycle.
  const Json trace = CorecHandoffTrace();
  const Json* events = trace.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::set<std::string> names;
  for (const Json& e : events->items()) {
    std::string name;
    ASSERT_TRUE(e.GetString("name", &name));
    names.insert(name);
  }
  for (const char* want : {"corec_claim", "corec_commit", "corec_stall", "corec_handoff"}) {
    EXPECT_TRUE(names.count(want) != 0)
        << "COREC golden scenario no longer emits a '" << want << "' event";
  }
}

TEST(ObsDeterminismTest, CorecCountersShardInvariantAndOutOfDigest) {
  // The COREC claim/commit/hand-off counters join the metrics registry only:
  // byte-identical across shard counts, and collecting them never moves the
  // run digest (obs must not perturb reproducibility).
  ChaosOptions opt = ObsChaosOptions(1);
  opt.rx_driver = RxDriverKind::kCorec;
  const ChaosEngineResult one = RunChaosEngine(opt, /*use_juggler=*/true);
  ASSERT_TRUE(one.completed);
  const std::string metrics1 = one.obs.MetricsJson().Dump(1);
  EXPECT_NE(metrics1.find("nic.corec_claims"), std::string::npos)
      << "COREC families missing from the published metrics";
  EXPECT_GT(one.obs.metrics.CounterValue("nic.corec_handoff_runs", "receiver"), 0u);

  for (size_t shards : {size_t{2}, size_t{8}}) {
    ChaosOptions o = ObsChaosOptions(shards);
    o.rx_driver = RxDriverKind::kCorec;
    const ChaosEngineResult r = RunChaosEngine(o, /*use_juggler=*/true);
    EXPECT_EQ(r.digest, one.digest) << "digest diverged at shards=" << shards;
    EXPECT_EQ(r.obs.MetricsJson().Dump(1), metrics1)
        << "COREC metrics not byte-identical at shards=" << shards;
  }

  ChaosOptions dark = ObsChaosOptions(1);
  dark.rx_driver = RxDriverKind::kCorec;
  dark.obs = ObsConfig{};  // metrics + trace off
  const ChaosEngineResult no_obs = RunChaosEngine(dark, /*use_juggler=*/true);
  EXPECT_EQ(no_obs.digest, one.digest) << "collecting COREC counters moved the digest";
  EXPECT_EQ(no_obs.stream_digest, one.stream_digest);
}

}  // namespace
}  // namespace juggler
