// TCP substrate tests, run over a minimal "pipe" network that converts each
// wire packet into a one-packet segment after a fixed delay (optionally
// dropping or permuting) — TCP logic in isolation from NIC/GRO.

#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "src/sim/event_loop.h"
#include "src/tcp/tcp_endpoint.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace juggler {
namespace {

Segment PacketToSegment(const Packet& p) {
  Segment s;
  s.flow = p.flow;
  s.seq = p.seq;
  s.payload_len = p.payload_len;
  s.mtu_count = p.payload_len > 0 ? 1 : 0;
  s.flags = p.flags;
  s.ack_seq = p.ack_seq;
  s.ack_rwnd = p.ack_rwnd;
  s.sent_time = p.sent_time;
  return s;
}

// Delivers each packet to a TcpEndpoint after `delay`; drop_fn may eat it.
class PipeSink : public PacketSink {
 public:
  PipeSink(EventLoop* loop, TimeNs delay) : loop_(loop), delay_(delay) {}

  void set_target(TcpEndpoint* target) { target_ = target; }
  void set_drop_fn(std::function<bool(const Packet&)> fn) { drop_fn_ = std::move(fn); }
  void set_extra_delay_fn(std::function<TimeNs(const Packet&)> fn) {
    extra_delay_fn_ = std::move(fn);
  }

  void Accept(PacketPtr packet) override {
    ++packets_;
    if (drop_fn_ && drop_fn_(*packet)) {
      ++drops_;
      return;
    }
    const TimeNs extra = extra_delay_fn_ ? extra_delay_fn_(*packet) : 0;
    const Segment s = PacketToSegment(*packet);
    loop_->Schedule(delay_ + extra, [this, s] { target_->OnSegment(s); });
  }

  uint64_t packets() const { return packets_; }
  uint64_t drops() const { return drops_; }

 private:
  EventLoop* loop_;
  TimeNs delay_;
  TcpEndpoint* target_ = nullptr;
  std::function<bool(const Packet&)> drop_fn_;
  std::function<TimeNs(const Packet&)> extra_delay_fn_;
  uint64_t packets_ = 0;
  uint64_t drops_ = 0;
};

struct TcpHarness {
  explicit TcpHarness(TimeNs one_way_delay = Us(10), TcpConfig config = {}) {
    a_to_b_pipe = std::make_unique<PipeSink>(&loop, one_way_delay);
    b_to_a_pipe = std::make_unique<PipeSink>(&loop, one_way_delay);
    a_nic = std::make_unique<NicTx>(&loop, &factory, NicTxConfig{}, a_to_b_pipe.get());
    b_nic = std::make_unique<NicTx>(&loop, &factory, NicTxConfig{}, b_to_a_pipe.get());
    const FiveTuple flow = TestFlow();
    a = std::make_unique<TcpEndpoint>(&loop, config, flow, a_nic.get());
    b = std::make_unique<TcpEndpoint>(&loop, config, flow.Reversed(), b_nic.get());
    a_to_b_pipe->set_target(b.get());
    b_to_a_pipe->set_target(a.get());
  }

  EventLoop loop;
  PacketFactory factory;
  std::unique_ptr<PipeSink> a_to_b_pipe;
  std::unique_ptr<PipeSink> b_to_a_pipe;
  std::unique_ptr<NicTx> a_nic;
  std::unique_ptr<NicTx> b_nic;
  std::unique_ptr<TcpEndpoint> a;
  std::unique_ptr<TcpEndpoint> b;
};

TEST(TcpTest, TransfersExactByteCount) {
  TcpHarness h;
  h.a->Send(1'000'000);
  h.loop.RunUntil(Ms(100));
  EXPECT_EQ(h.b->bytes_delivered(), 1'000'000u);
  EXPECT_EQ(h.a->bytes_acked(), 1'000'000u);
  EXPECT_EQ(h.a->backlog_bytes(), 0u);
}

TEST(TcpTest, DeliveryCallbackMonotonic) {
  TcpHarness h;
  uint64_t last = 0;
  bool monotonic = true;
  h.b->set_on_deliver([&](uint64_t total) {
    monotonic &= total >= last;
    last = total;
  });
  h.a->Send(500'000);
  h.loop.RunUntil(Ms(50));
  EXPECT_TRUE(monotonic);
  EXPECT_EQ(last, 500'000u);
}

TEST(TcpTest, SlowStartGrowsCwnd) {
  TcpHarness h;
  const uint32_t initial = h.a->cwnd();
  h.a->Send(2'000'000);
  h.loop.RunUntil(Ms(10));
  EXPECT_GT(h.a->cwnd(), initial);
}

TEST(TcpTest, RecoversFromSingleLoss) {
  TcpHarness h;
  uint64_t count = 0;
  h.a_to_b_pipe->set_drop_fn([&count](const Packet& p) {
    return p.payload_len > 0 && ++count == 50;  // drop the 50th data packet
  });
  h.a->Send(1'000'000);
  h.loop.RunUntil(Ms(100));
  EXPECT_EQ(h.b->bytes_delivered(), 1'000'000u);
  EXPECT_GE(h.a->sender_stats().fast_retransmits + h.a->sender_stats().rtos, 1u);
}

TEST(TcpTest, FastRetransmitOnTripleDupAck) {
  TcpHarness h;
  uint64_t count = 0;
  h.a_to_b_pipe->set_drop_fn([&count](const Packet& p) {
    return p.payload_len > 0 && ++count == 20;
  });
  h.a->Send(2'000'000);
  h.loop.RunUntil(Ms(100));
  EXPECT_EQ(h.b->bytes_delivered(), 2'000'000u);
  // With plenty of packets in flight behind the loss, fast retransmit (not
  // RTO) should do the recovery.
  EXPECT_GE(h.a->sender_stats().fast_retransmits, 1u);
  EXPECT_EQ(h.a->sender_stats().rtos, 0u);
}

TEST(TcpTest, RtoRecoversTailLoss) {
  TcpHarness h;
  bool armed = true;
  h.a_to_b_pipe->set_drop_fn([&](const Packet& p) {
    // Drop the very last data packet of the message (tail loss: no dupacks).
    if (armed && p.payload_len > 0 && p.seq + p.payload_len == 100'000u) {
      armed = false;
      return true;
    }
    return false;
  });
  h.a->Send(100'000);
  h.loop.RunUntil(Ms(200));
  EXPECT_EQ(h.b->bytes_delivered(), 100'000u);
  EXPECT_GE(h.a->sender_stats().rtos, 1u);
}

TEST(TcpTest, SurvivesHeavyRandomLoss) {
  TcpHarness h;
  Rng rng(3);
  h.a_to_b_pipe->set_drop_fn(
      [&rng](const Packet& p) { return p.payload_len > 0 && rng.NextBool(0.05); });
  h.a->Send(500'000);
  h.loop.RunUntil(Sec(2));
  EXPECT_EQ(h.b->bytes_delivered(), 500'000u);
}

TEST(TcpTest, ReorderingTriggersSpuriousRetransmits) {
  // The §1 pathology: delay every 5th packet by 200us; the receiver emits
  // dup ACK storms and the sender retransmits needlessly.
  TcpHarness h;
  uint64_t count = 0;
  h.a_to_b_pipe->set_extra_delay_fn([&count](const Packet& p) -> TimeNs {
    if (p.payload_len == 0) {
      return 0;
    }
    return (++count % 5 == 0) ? Us(200) : 0;
  });
  h.a->Send(3'000'000);
  h.loop.RunUntil(Sec(1));
  EXPECT_EQ(h.b->bytes_delivered(), 3'000'000u);
  EXPECT_GT(h.a->sender_stats().fast_retransmits, 0u);
  EXPECT_GT(h.b->receiver_stats().ooo_segments_in, 0u);
}

TEST(TcpTest, HigherDupackThresholdToleratesReordering) {
  // The classic TCP-side mitigation (§6): raising dupthresh suppresses the
  // spurious retransmits (but does nothing for the CPU cost — that is the
  // point of fixing GRO instead).
  TcpConfig config;
  // Above the worst case: one 64KB TSO burst arrives together, so a hole at
  // its head collects up to 44 duplicate ACKs from the rest of the burst.
  config.dupack_threshold = 50;
  // Pace to 1Gb/s so at most ~one burst lands within the 200us displacement.
  config.pacing_rate_bps = 1 * kGbps;
  TcpHarness h(Us(10), config);
  uint64_t count = 0;
  h.a_to_b_pipe->set_extra_delay_fn([&count](const Packet& p) -> TimeNs {
    if (p.payload_len == 0) {
      return 0;
    }
    return (++count % 5 == 0) ? Us(200) : 0;
  });
  h.a->Send(3'000'000);
  h.loop.RunUntil(Sec(1));
  EXPECT_EQ(h.b->bytes_delivered(), 3'000'000u);
  EXPECT_EQ(h.a->sender_stats().fast_retransmits, 0u);
}

TEST(TcpTest, ThroughputTracksRttAndWindow) {
  // Sanity: a 2MB transfer over a 100us RTT with 3MB max cwnd finishes in a
  // handful of RTTs.
  TcpHarness h(Us(50));
  h.a->Send(2'000'000);
  h.loop.RunUntil(Ms(20));
  EXPECT_EQ(h.b->bytes_delivered(), 2'000'000u);
}

TEST(TcpTest, PacingLimitsRate) {
  TcpConfig config;
  config.pacing_rate_bps = 1 * kGbps;
  TcpHarness h(Us(10), config);
  h.a->Send(10'000'000);
  h.loop.RunUntil(Ms(10));
  // At 1Gb/s, 10ms moves at most ~1.25MB (plus one burst of slack).
  EXPECT_LT(h.b->bytes_delivered(), 1'400'000u);
  EXPECT_GT(h.b->bytes_delivered(), 800'000u);
}

TEST(TcpTest, RwndPressureThrottlesSender) {
  TcpHarness h(Ms(1));  // long RTT so the shrunken window visibly gates rate
  // Receiver advertises a window shrunk by a constant 5.9MB of "backlog"
  // (rcv_buf is 6MB): effective window ~100KB.
  h.b->set_rwnd_pressure([] { return static_cast<uint64_t>(5'900'000); });
  h.a->Send(4'000'000);
  h.loop.RunUntil(Ms(2));
  // In-flight never exceeds the advertised window (plus the initial burst
  // sent before the first ACK arrived).
  EXPECT_LT(h.a->bytes_acked() + 200'000, 4'000'000u);
  h.loop.RunUntil(Ms(400));
  EXPECT_EQ(h.b->bytes_delivered(), 4'000'000u);  // still completes
}

TEST(TcpTest, RttEstimateConverges) {
  TcpHarness h(Us(100));
  h.a->Send(1'000'000);
  h.loop.RunUntil(Ms(50));
  // One-way 100us -> RTT 200us (plus tiny processing).
  EXPECT_GE(h.a->srtt(), Us(195));
  EXPECT_LE(h.a->srtt(), Us(300));
}

TEST(TcpTest, AckPerSegmentAccounting) {
  TcpHarness h;
  h.a->Send(100'000);
  h.loop.RunUntil(Ms(50));
  // One ACK per delivered segment (pipe gives one segment per MTU packet).
  EXPECT_EQ(h.b->receiver_stats().acks_sent, h.b->receiver_stats().segments_in);
  EXPECT_GE(h.a->sender_stats().acks_in, h.b->receiver_stats().acks_sent - 2);
}

TEST(TcpTest, DuplicateDataIgnoredByReceiver) {
  TcpHarness h;
  h.a->Send(50'000);
  h.loop.RunUntil(Ms(50));
  const uint64_t delivered = h.b->bytes_delivered();
  // Replay an old segment.
  Segment s;
  s.flow = TestFlow();
  s.seq = 0;
  s.payload_len = kMss;
  s.mtu_count = 1;
  s.flags = kFlagAck;
  h.b->OnSegment(s);
  h.loop.RunUntil(Ms(60));
  EXPECT_EQ(h.b->bytes_delivered(), delivered);
  EXPECT_GE(h.b->receiver_stats().old_segments_in, 1u);
}

}  // namespace
}  // namespace juggler
