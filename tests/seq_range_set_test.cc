#include <gtest/gtest.h>

#include "src/util/rng.h"
#include "src/util/seq_range_set.h"

namespace juggler {
namespace {

TEST(SeqRangeSetTest, InsertDisjoint) {
  SeqRangeSet s;
  s.Insert(10, 20);
  s.Insert(30, 40);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.ranges()[0], (SeqRangeSet::Range{10, 20}));
  EXPECT_EQ(s.ranges()[1], (SeqRangeSet::Range{30, 40}));
  EXPECT_EQ(s.TotalBytes(), 20u);
}

TEST(SeqRangeSetTest, InsertMergesOverlap) {
  SeqRangeSet s;
  s.Insert(10, 20);
  s.Insert(15, 30);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.ranges()[0], (SeqRangeSet::Range{10, 30}));
}

TEST(SeqRangeSetTest, InsertMergesAdjacent) {
  SeqRangeSet s;
  s.Insert(10, 20);
  s.Insert(20, 30);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.ranges()[0], (SeqRangeSet::Range{10, 30}));
}

TEST(SeqRangeSetTest, InsertBridgesMultiple) {
  SeqRangeSet s;
  s.Insert(10, 20);
  s.Insert(30, 40);
  s.Insert(50, 60);
  s.Insert(15, 55);  // swallows the middle, bridges ends
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.ranges()[0], (SeqRangeSet::Range{10, 60}));
}

TEST(SeqRangeSetTest, EmptyRangeIgnored) {
  SeqRangeSet s;
  s.Insert(10, 10);
  s.Insert(10, 9);  // backwards
  EXPECT_TRUE(s.empty());
}

TEST(SeqRangeSetTest, Covers) {
  SeqRangeSet s;
  s.Insert(10, 20);
  s.Insert(30, 40);
  EXPECT_TRUE(s.Covers(10));
  EXPECT_TRUE(s.Covers(19));
  EXPECT_FALSE(s.Covers(20));  // half-open
  EXPECT_FALSE(s.Covers(25));
  EXPECT_TRUE(s.Covers(35));
  EXPECT_FALSE(s.Covers(40));
}

TEST(SeqRangeSetTest, ClipBelowErasesAndTrims) {
  SeqRangeSet s;
  s.Insert(10, 20);
  s.Insert(30, 40);
  s.ClipBelow(15);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.ranges()[0], (SeqRangeSet::Range{15, 20}));
  s.ClipBelow(25);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.ranges()[0], (SeqRangeSet::Range{30, 40}));
  s.ClipBelow(100);
  EXPECT_TRUE(s.empty());
}

TEST(SeqRangeSetTest, NextHoleFindsGaps) {
  SeqRangeSet s;
  s.Insert(10, 20);
  s.Insert(30, 40);
  Seq hs = 0;
  Seq he = 0;
  ASSERT_TRUE(s.NextHole(5, &hs, &he));
  EXPECT_EQ(hs, 5u);
  EXPECT_EQ(he, 10u);
  ASSERT_TRUE(s.NextHole(10, &hs, &he));  // inside a range: skip past it
  EXPECT_EQ(hs, 20u);
  EXPECT_EQ(he, 30u);
  ASSERT_TRUE(s.NextHole(25, &hs, &he));
  EXPECT_EQ(hs, 25u);
  EXPECT_EQ(he, 30u);
  // Past the last range: no hole (nothing SACKed above).
  EXPECT_FALSE(s.NextHole(35, &hs, &he));
  EXPECT_FALSE(s.NextHole(100, &hs, &he));
}

TEST(SeqRangeSetTest, DrainFromAdvancesThroughLeadingRanges) {
  SeqRangeSet s;
  s.Insert(10, 20);
  s.Insert(20, 30);  // merged with above
  s.Insert(40, 50);
  EXPECT_EQ(s.DrainFrom(10), 30u);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.DrainFrom(35), 35u);  // gap before 40: cursor unchanged
  EXPECT_EQ(s.DrainFrom(45), 50u);  // overlapping range consumed
  EXPECT_TRUE(s.empty());
}

TEST(SeqRangeSetTest, MaxEnd) {
  SeqRangeSet s;
  EXPECT_EQ(s.max_end(), 0u);
  s.Insert(10, 20);
  s.Insert(40, 50);
  EXPECT_EQ(s.max_end(), 50u);
}

TEST(SeqRangeSetTest, WrapAroundRanges) {
  SeqRangeSet s;
  const Seq near_max = 0xffffff00u;
  s.Insert(near_max, near_max + 0x200);  // wraps past zero
  EXPECT_TRUE(s.Covers(0x40));
  EXPECT_TRUE(s.Covers(near_max + 1));
  s.Insert(near_max + 0x200, near_max + 0x300);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.TotalBytes(), 0x300u);
  s.ClipBelow(near_max + 0x100);
  EXPECT_EQ(s.TotalBytes(), 0x200u);
}

TEST(SeqRangeSetTest, RandomizedAgainstReference) {
  // Property check against a simple byte-set reference model.
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    SeqRangeSet s;
    bool ref[512] = {};
    for (int op = 0; op < 200; ++op) {
      const Seq start = static_cast<Seq>(rng.NextBounded(480));
      const Seq end = start + 1 + static_cast<Seq>(rng.NextBounded(30));
      s.Insert(start, end);
      for (Seq b = start; b < end; ++b) {
        ref[b] = true;
      }
    }
    uint64_t ref_total = 0;
    for (Seq b = 0; b < 512; ++b) {
      EXPECT_EQ(s.Covers(b), ref[b]) << "byte " << b;
      ref_total += ref[b] ? 1 : 0;
    }
    EXPECT_EQ(s.TotalBytes(), ref_total);
    // Ranges must be sorted, disjoint, non-adjacent.
    for (size_t i = 0; i + 1 < s.ranges().size(); ++i) {
      EXPECT_TRUE(SeqBefore(s.ranges()[i].second, s.ranges()[i + 1].first));
    }
  }
}

}  // namespace
}  // namespace juggler
