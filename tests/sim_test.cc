#include <gtest/gtest.h>

#include <vector>

#include "src/sim/event_loop.h"

namespace juggler {
namespace {

TEST(EventLoopTest, RunsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.Schedule(30, [&] { order.push_back(3); });
  loop.Schedule(10, [&] { order.push_back(1); });
  loop.Schedule(20, [&] { order.push_back(2); });
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30);
}

TEST(EventLoopTest, TiesBreakFifo) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  loop.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(EventLoopTest, NestedScheduling) {
  EventLoop loop;
  std::vector<TimeNs> times;
  loop.Schedule(10, [&] {
    times.push_back(loop.now());
    loop.Schedule(5, [&] { times.push_back(loop.now()); });
  });
  loop.Run();
  EXPECT_EQ(times, (std::vector<TimeNs>{10, 15}));
}

TEST(EventLoopTest, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  const TimerId id = loop.Schedule(10, [&] { ran = true; });
  loop.Cancel(id);
  loop.Run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(loop.executed_events(), 0u);
}

TEST(EventLoopTest, CancelInvalidIdIsNoop) {
  EventLoop loop;
  loop.Cancel(kInvalidTimerId);
  loop.Cancel(9999);
  loop.Run();
}

TEST(EventLoopTest, CancelOneOfMany) {
  EventLoop loop;
  std::vector<int> order;
  loop.Schedule(10, [&] { order.push_back(1); });
  const TimerId id = loop.Schedule(20, [&] { order.push_back(2); });
  loop.Schedule(30, [&] { order.push_back(3); });
  loop.Cancel(id);
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventLoopTest, RunUntilStopsAtDeadline) {
  EventLoop loop;
  std::vector<int> order;
  loop.Schedule(10, [&] { order.push_back(1); });
  loop.Schedule(100, [&] { order.push_back(2); });
  loop.RunUntil(50);
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(loop.now(), 50);
  EXPECT_EQ(loop.pending_events(), 1u);
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventLoopTest, RunUntilAdvancesClockWhenQueueEmpty) {
  EventLoop loop;
  loop.RunUntil(1000);
  EXPECT_EQ(loop.now(), 1000);
}

TEST(EventLoopTest, RunStepsBounded) {
  EventLoop loop;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    loop.Schedule(i + 1, [&] { ++count; });
  }
  EXPECT_EQ(loop.RunSteps(4), 4u);
  EXPECT_EQ(count, 4);
}

TEST(EventLoopTest, StopInsideCallback) {
  EventLoop loop;
  int count = 0;
  loop.Schedule(1, [&] {
    ++count;
    loop.Stop();
  });
  loop.Schedule(2, [&] { ++count; });
  loop.Run();
  EXPECT_EQ(count, 1);
  loop.Run();  // resumes
  EXPECT_EQ(count, 2);
}

TEST(EventLoopTest, ReschedulingTimerPattern) {
  // The pattern every component uses: re-arm from inside the callback.
  EventLoop loop;
  int fires = 0;
  std::function<void()> tick = [&] {
    if (++fires < 5) {
      loop.Schedule(10, tick);
    }
  };
  loop.Schedule(10, tick);
  loop.Run();
  EXPECT_EQ(fires, 5);
  EXPECT_EQ(loop.now(), 50);
}

TEST(EventLoopTest, ManyEventsStress) {
  EventLoop loop;
  uint64_t sum = 0;
  for (int i = 0; i < 100000; ++i) {
    loop.Schedule(i % 997, [&sum] { ++sum; });
  }
  loop.Run();
  EXPECT_EQ(sum, 100000u);
}

TEST(EventLoopTest, ScheduleCancelCyclesStayBounded) {
  // Regression: cancelled timers used to linger in the heap forever, so a
  // schedule/cancel-heavy component (TCP re-arming its RTO on every ACK)
  // grew the loop's memory without bound. The heap must compact itself.
  EventLoop loop;
  for (int i = 0; i < 1'000'000; ++i) {
    loop.Cancel(loop.Schedule(1'000'000'000, [] {}));
    // Live entries stay small; the heap may hold dead entries only up to the
    // compaction threshold.
    ASSERT_EQ(loop.pending_timer_ids(), 0u);
    ASSERT_LT(loop.pending_events(), 3000u);
  }
  loop.Run();
  EXPECT_EQ(loop.pending_events(), 0u);
}

TEST(EventLoopTest, ScheduleFireCyclesStayBounded) {
  EventLoop loop;
  uint64_t fires = 0;
  for (int i = 0; i < 1'000'000; ++i) {
    loop.Schedule(1, [&fires] { ++fires; });
    loop.Run();
    ASSERT_EQ(loop.pending_events(), 0u);
    ASSERT_EQ(loop.pending_timer_ids(), 0u);
  }
  EXPECT_EQ(fires, 1'000'000u);
}

TEST(EventLoopTest, MixedCancelAndFireKeepsHeapCompact) {
  // Interleaved live and dead timers: half fire, half are cancelled, with
  // the cancelled ones always further in the future (the worst case for a
  // lazy-deletion heap, since the dead entries sink to the bottom).
  EventLoop loop;
  uint64_t fires = 0;
  for (int round = 0; round < 1000; ++round) {
    std::vector<TimerId> doomed;
    doomed.reserve(500);
    for (int i = 0; i < 500; ++i) {
      loop.Schedule(1, [&fires] { ++fires; });
      doomed.push_back(loop.Schedule(1'000'000'000, [] {}));
    }
    for (TimerId id : doomed) {
      loop.Cancel(id);
    }
    loop.RunUntil(loop.now() + 2);
    ASSERT_EQ(loop.pending_timer_ids(), 0u);
    ASSERT_LT(loop.pending_events(), 3000u);
  }
  EXPECT_EQ(fires, 500'000u);
}

}  // namespace
}  // namespace juggler
