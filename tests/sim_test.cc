#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "src/sim/event_loop.h"
#include "src/sim/sweep_runner.h"

namespace juggler {
namespace {

TEST(EventLoopTest, RunsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.Schedule(30, [&] { order.push_back(3); });
  loop.Schedule(10, [&] { order.push_back(1); });
  loop.Schedule(20, [&] { order.push_back(2); });
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30);
}

TEST(EventLoopTest, TiesBreakFifo) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  loop.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(EventLoopTest, NestedScheduling) {
  EventLoop loop;
  std::vector<TimeNs> times;
  loop.Schedule(10, [&] {
    times.push_back(loop.now());
    loop.Schedule(5, [&] { times.push_back(loop.now()); });
  });
  loop.Run();
  EXPECT_EQ(times, (std::vector<TimeNs>{10, 15}));
}

TEST(EventLoopTest, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  const TimerId id = loop.Schedule(10, [&] { ran = true; });
  loop.Cancel(id);
  loop.Run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(loop.executed_events(), 0u);
}

TEST(EventLoopTest, CancelInvalidIdIsNoop) {
  EventLoop loop;
  loop.Cancel(kInvalidTimerId);
  loop.Cancel(9999);
  loop.Run();
}

TEST(EventLoopTest, CancelOneOfMany) {
  EventLoop loop;
  std::vector<int> order;
  loop.Schedule(10, [&] { order.push_back(1); });
  const TimerId id = loop.Schedule(20, [&] { order.push_back(2); });
  loop.Schedule(30, [&] { order.push_back(3); });
  loop.Cancel(id);
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventLoopTest, RunUntilStopsAtDeadline) {
  EventLoop loop;
  std::vector<int> order;
  loop.Schedule(10, [&] { order.push_back(1); });
  loop.Schedule(100, [&] { order.push_back(2); });
  loop.RunUntil(50);
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(loop.now(), 50);
  EXPECT_EQ(loop.pending_events(), 1u);
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventLoopTest, RunUntilAdvancesClockWhenQueueEmpty) {
  EventLoop loop;
  loop.RunUntil(1000);
  EXPECT_EQ(loop.now(), 1000);
}

TEST(EventLoopTest, RunStepsBounded) {
  EventLoop loop;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    loop.Schedule(i + 1, [&] { ++count; });
  }
  EXPECT_EQ(loop.RunSteps(4), 4u);
  EXPECT_EQ(count, 4);
}

TEST(EventLoopTest, StopInsideCallback) {
  EventLoop loop;
  int count = 0;
  loop.Schedule(1, [&] {
    ++count;
    loop.Stop();
  });
  loop.Schedule(2, [&] { ++count; });
  loop.Run();
  EXPECT_EQ(count, 1);
  loop.Run();  // resumes
  EXPECT_EQ(count, 2);
}

TEST(EventLoopTest, ReschedulingTimerPattern) {
  // The pattern every component uses: re-arm from inside the callback.
  EventLoop loop;
  int fires = 0;
  std::function<void()> tick = [&] {
    if (++fires < 5) {
      loop.Schedule(10, tick);
    }
  };
  loop.Schedule(10, tick);
  loop.Run();
  EXPECT_EQ(fires, 5);
  EXPECT_EQ(loop.now(), 50);
}

TEST(EventLoopTest, ManyEventsStress) {
  EventLoop loop;
  uint64_t sum = 0;
  for (int i = 0; i < 100000; ++i) {
    loop.Schedule(i % 997, [&sum] { ++sum; });
  }
  loop.Run();
  EXPECT_EQ(sum, 100000u);
}

TEST(EventLoopTest, ScheduleCancelCyclesStayBounded) {
  // Regression: cancelled timers used to linger in the heap forever, so a
  // schedule/cancel-heavy component (TCP re-arming its RTO on every ACK)
  // grew the loop's memory without bound. The heap must compact itself.
  EventLoop loop;
  for (int i = 0; i < 1'000'000; ++i) {
    loop.Cancel(loop.Schedule(1'000'000'000, [] {}));
    // Live entries stay small; the heap may hold dead entries only up to the
    // compaction threshold.
    ASSERT_EQ(loop.pending_timer_ids(), 0u);
    ASSERT_LT(loop.pending_events(), 3000u);
  }
  loop.Run();
  EXPECT_EQ(loop.pending_events(), 0u);
}

TEST(EventLoopTest, ScheduleFireCyclesStayBounded) {
  EventLoop loop;
  uint64_t fires = 0;
  for (int i = 0; i < 1'000'000; ++i) {
    loop.Schedule(1, [&fires] { ++fires; });
    loop.Run();
    ASSERT_EQ(loop.pending_events(), 0u);
    ASSERT_EQ(loop.pending_timer_ids(), 0u);
  }
  EXPECT_EQ(fires, 1'000'000u);
}

TEST(EventLoopTest, MixedCancelAndFireKeepsHeapCompact) {
  // Interleaved live and dead timers: half fire, half are cancelled, with
  // the cancelled ones always further in the future (the worst case for a
  // lazy-deletion heap, since the dead entries sink to the bottom).
  EventLoop loop;
  uint64_t fires = 0;
  for (int round = 0; round < 1000; ++round) {
    std::vector<TimerId> doomed;
    doomed.reserve(500);
    for (int i = 0; i < 500; ++i) {
      loop.Schedule(1, [&fires] { ++fires; });
      doomed.push_back(loop.Schedule(1'000'000'000, [] {}));
    }
    for (TimerId id : doomed) {
      loop.Cancel(id);
    }
    loop.RunUntil(loop.now() + 2);
    ASSERT_EQ(loop.pending_timer_ids(), 0u);
    ASSERT_LT(loop.pending_events(), 3000u);
  }
  EXPECT_EQ(fires, 500'000u);
}

TEST(EventLoopTest, SameTimestampFifoSurvivesCompaction) {
  // Heap compaction rebuilds the heap in place; it must preserve the
  // scheduling-order tie-break for events at equal timestamps. Interleave
  // each live timer with enough far-future cancellations that dead entries
  // dominate and compaction provably runs mid-sequence.
  EventLoop loop;
  std::vector<int> order;
  constexpr int kLive = 200;
  for (int i = 0; i < kLive; ++i) {
    loop.ScheduleAt(1'000'000, [&order, i] { order.push_back(i); });
    std::vector<TimerId> doomed;
    for (int d = 0; d < 50; ++d) {
      doomed.push_back(loop.Schedule(2'000'000'000, [] {}));
    }
    for (TimerId id : doomed) {
      loop.Cancel(id);
    }
  }
  // 10000 cancellations went through, but the heap retains at most the
  // compaction threshold of dead entries: compaction provably ran.
  EXPECT_LE(loop.pending_events(), static_cast<size_t>(kLive) + 1024);
  loop.Run();
  ASSERT_EQ(order.size(), static_cast<size_t>(kLive));
  for (int i = 0; i < kLive; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i) << "FIFO order broken at " << i;
  }
}

TEST(EventLoopTest, CancelledSlotReuseInvalidatesStaleId) {
  // Cancelling frees the slot for reuse; the generation bump must make the
  // stale id inert so a late Cancel cannot kill the slot's new occupant.
  EventLoop loop;
  uint64_t fires = 0;
  const TimerId stale = loop.Schedule(10, [&fires] { ++fires; });
  loop.Cancel(stale);
  EXPECT_FALSE(loop.IsPending(stale));

  const TimerId live = loop.Schedule(10, [&fires] { ++fires; });
  ASSERT_NE(live, stale);  // same slot, new generation
  loop.Cancel(stale);      // stale id: must be a no-op
  EXPECT_TRUE(loop.IsPending(live));
  loop.Run();
  EXPECT_EQ(fires, 1u);

  // After firing, both ids are dead; cancelling either is still a no-op.
  loop.Cancel(live);
  loop.Cancel(stale);
  EXPECT_EQ(loop.pending_timer_ids(), 0u);
}

TEST(EventLoopTest, ThrowingCallbackIsAnnotatedAndLoopSurvives) {
  // A callback that throws must surface as EventLoopCallbackError carrying
  // the loop's position (simulated time, event count, pending timers) — and
  // the loop must stay consistent so a catching caller can keep running.
  EventLoop loop;
  int ran = 0;
  loop.Schedule(10, [&ran] { ++ran; });
  loop.Schedule(20, [] { throw std::runtime_error("boom"); });
  loop.Schedule(30, [&ran] { ++ran; });
  loop.Schedule(40, [&ran] { ++ran; });
  std::string what;
  try {
    loop.Run();
    FAIL() << "expected EventLoopCallbackError";
  } catch (const EventLoopCallbackError& e) {
    what = e.what();
  }
  EXPECT_NE(what.find("boom"), std::string::npos) << what;
  EXPECT_NE(what.find("t=20ns"), std::string::npos) << what;
  EXPECT_NE(what.find("event #2"), std::string::npos) << what;
  EXPECT_NE(what.find("2 pending timers"), std::string::npos) << what;

  // The throwing timer's slot was released; the remaining events still run.
  EXPECT_EQ(loop.pending_timer_ids(), 2u);
  loop.Run();
  EXPECT_EQ(ran, 3);
  EXPECT_EQ(loop.now(), 40);
}

TEST(EventLoopTest, NestedLoopErrorIsNotReannotated) {
  // A callback that itself runs an inner loop: the inner annotation (with
  // the inner loop's position) must pass through the outer loop unchanged.
  EventLoop outer;
  outer.Schedule(100, [] {
    EventLoop inner;
    inner.Schedule(7, [] { throw std::runtime_error("deep"); });
    inner.Run();
  });
  std::string what;
  try {
    outer.Run();
    FAIL() << "expected EventLoopCallbackError";
  } catch (const EventLoopCallbackError& e) {
    what = e.what();
  }
  EXPECT_NE(what.find("t=7ns"), std::string::npos) << what;
  EXPECT_EQ(what.find("t=100ns"), std::string::npos) << what;  // no double wrap
}

TEST(SweepRunnerTest, WorkerCountRespectsBounds) {
  EXPECT_EQ(SweepWorkerCount(/*num_points=*/10, /*num_threads=*/4), 4u);
  EXPECT_EQ(SweepWorkerCount(/*num_points=*/2, /*num_threads=*/8), 2u);
  EXPECT_GE(SweepWorkerCount(/*num_points=*/100, /*num_threads=*/0), 1u);
  EXPECT_EQ(SweepWorkerCount(/*num_points=*/1, /*num_threads=*/0), 1u);
}

TEST(SweepRunnerTest, ResultsIndexedByPoint) {
  const std::vector<size_t> r = RunSweep(64, [](size_t i) { return i * i; },
                                         /*num_threads=*/4);
  ASSERT_EQ(r.size(), 64u);
  for (size_t i = 0; i < r.size(); ++i) {
    EXPECT_EQ(r[i], i * i);
  }
}

TEST(SweepRunnerTest, ParallelMatchesSequentialSimulation) {
  // Each point runs its own EventLoop to completion; the per-point result
  // must be a pure function of the point index regardless of worker count.
  auto point = [](size_t i) {
    EventLoop loop;
    uint64_t acc = 0;
    for (uint64_t k = 0; k < 100; ++k) {
      loop.Schedule(static_cast<TimeNs>((k * (i + 1)) % 37),
                    [&acc, k, i] { acc = acc * 31 + k + i; });
    }
    loop.Run();
    return acc;
  };
  const std::vector<uint64_t> sequential = RunSweep(32, point, /*num_threads=*/1);
  const std::vector<uint64_t> parallel = RunSweep(32, point, /*num_threads=*/4);
  EXPECT_EQ(sequential, parallel);
}

}  // namespace
}  // namespace juggler
