// Application workloads over the full chaos stack (ctest label: "app").
//
// The stack matrix {juggler, vanilla, presto} x {rpc, bulk-transfer,
// incast} runs under mixed faults and must end with zero auditor
// violations and zero hung requests — the app layer's graceful-degradation
// contract holds no matter which GRO engine sits underneath. A second
// group pins determinism: the same app spec digests bit-identically across
// reruns and across sharded worker counts.

#include <gtest/gtest.h>

#include <string>

#include "src/scenario/chaos_scenario.h"

namespace juggler {
namespace {

AppWorkloadOptions SmallWorkload(AppWorkloadKind kind) {
  AppWorkloadOptions app;
  app.kind = kind;
  app.sessions = 2;
  app.requests_per_session = 6;
  app.response_bytes = 12'288;
  app.chunk_bytes = 49'152;
  app.transfer_bytes_per_session = 3 * app.chunk_bytes;
  return app;
}

std::string CellName(StackKind stack, AppWorkloadKind kind, uint64_t seed) {
  return std::string(StackKindName(stack)) + "/" + AppWorkloadKindName(kind) + " seed " +
         std::to_string(seed);
}

void ExpectClean(const ChaosEngineResult& r, const std::string& cell) {
  EXPECT_TRUE(r.completed) << cell << ": " << r.app.forced_terminal << " hung of "
                           << r.app.issued << " issued";
  EXPECT_EQ(r.violations, 0u) << cell << ": "
                              << (r.violation_messages.empty() ? ""
                                                               : r.violation_messages.front());
  EXPECT_GT(r.app.issued, 0u) << cell;
  EXPECT_EQ(r.app.forced_terminal, 0u) << cell;
  // Every issued request reached exactly one terminal outcome.
  EXPECT_EQ(r.app.ok + r.app.timeouts + r.app.aborted, r.app.issued) << cell;
}

void RunMatrixForStack(StackKind stack) {
  for (AppWorkloadKind kind :
       {AppWorkloadKind::kRpc, AppWorkloadKind::kBulkTransfer, AppWorkloadKind::kIncast}) {
    for (uint64_t seed = 1; seed <= 2; ++seed) {
      ChaosOptions opt;
      opt.seed = seed;
      opt.family = FaultFamily::kMixed;
      opt.app = SmallWorkload(kind);
      const ChaosEngineResult r = RunChaosEngineStack(opt, stack);
      ExpectClean(r, CellName(stack, kind, seed));
    }
  }
}

TEST(AppChaosTest, JugglerMatrixIsClean) { RunMatrixForStack(StackKind::kJuggler); }

TEST(AppChaosTest, VanillaMatrixIsClean) { RunMatrixForStack(StackKind::kVanilla); }

TEST(AppChaosTest, PrestoMatrixIsClean) { RunMatrixForStack(StackKind::kPresto); }

TEST(AppChaosTest, ReplicationCommitBarrierSurvivesChaos) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    ChaosOptions opt;
    opt.seed = seed;
    opt.family = FaultFamily::kMixed;
    opt.app = SmallWorkload(AppWorkloadKind::kReplication);
    opt.app.sessions = 3;
    const ChaosEngineResult r = RunChaosEngine(opt, /*use_juggler=*/true);
    ExpectClean(r, CellName(StackKind::kJuggler, AppWorkloadKind::kReplication, seed));
  }
}

TEST(AppChaosTest, RunChaosDifferentialOkForAppWorkloads) {
  ChaosOptions opt;
  opt.seed = 4;
  opt.family = FaultFamily::kDropBurst;
  opt.app = SmallWorkload(AppWorkloadKind::kRpc);
  const ChaosResult r = RunChaos(opt);
  EXPECT_TRUE(r.ok) << "juggler: "
                    << (r.juggler.violation_messages.empty()
                            ? "ok"
                            : r.juggler.violation_messages.front())
                    << "; baseline: "
                    << (r.baseline.violation_messages.empty()
                            ? "ok"
                            : r.baseline.violation_messages.front());
  EXPECT_TRUE(r.streams_match);  // vacuously true for app runs, by contract
}

// Fault pressure must actually reach the retry machinery: link flaps
// blackhole the response path for up to 12ms — longer than the attempt
// timeout — so attempts time out and retry, and the server-side dedup path
// answers the duplicates. Otherwise the matrix proves nothing about
// resilience. (Drop bursts don't qualify: TCP's fast retransmit recovers
// them well inside any sane attempt timeout.)
TEST(AppChaosTest, FaultsExerciseRetriesAndDedup) {
  uint64_t retries = 0;
  uint64_t dedup = 0;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    ChaosOptions opt;
    opt.seed = seed;
    opt.family = FaultFamily::kLinkFlap;
    opt.app = SmallWorkload(AppWorkloadKind::kRpc);
    opt.app.retry.attempt_timeout = Ms(2);
    const ChaosEngineResult r = RunChaosEngine(opt, /*use_juggler=*/true);
    ExpectClean(r, CellName(StackKind::kJuggler, AppWorkloadKind::kRpc, seed));
    retries += r.app.retries;
    dedup += r.app.duplicates_suppressed;
  }
  EXPECT_GT(retries, 0u);
  EXPECT_GT(dedup, 0u);
}

TEST(AppChaosTest, SameSeedSameDigest) {
  for (AppWorkloadKind kind : {AppWorkloadKind::kRpc, AppWorkloadKind::kBulkTransfer}) {
    ChaosOptions opt;
    opt.seed = 17;
    opt.family = FaultFamily::kMixed;
    opt.app = SmallWorkload(kind);
    const ChaosEngineResult a = RunChaosEngine(opt, /*use_juggler=*/true);
    const ChaosEngineResult b = RunChaosEngine(opt, /*use_juggler=*/true);
    EXPECT_EQ(a.digest, b.digest) << AppWorkloadKindName(kind);
  }
}

// The sharded determinism contract extends to app workloads: worker count
// must not leak into the digest (client and server sides run in different
// shard domains, so this exercises the auditor's commuting updates and the
// frame ledger's cross-thread handoff).
TEST(AppChaosTest, DigestInvariantAcrossShardCounts) {
  for (AppWorkloadKind kind :
       {AppWorkloadKind::kRpc, AppWorkloadKind::kBulkTransfer, AppWorkloadKind::kIncast}) {
    ChaosOptions opt;
    opt.seed = 23;
    opt.family = FaultFamily::kMixed;
    opt.app = SmallWorkload(kind);
    opt.shards = 1;
    const ChaosEngineResult one = RunChaosEngine(opt, /*use_juggler=*/true);
    opt.shards = 2;
    const ChaosEngineResult two = RunChaosEngine(opt, /*use_juggler=*/true);
    EXPECT_EQ(one.digest, two.digest) << AppWorkloadKindName(kind);
    ExpectClean(one, CellName(StackKind::kJuggler, kind, 23));
    ExpectClean(two, CellName(StackKind::kJuggler, kind, 23));
  }
}

// App counters surface through the metrics registry, including the
// per-connection TCP snapshots the satellite PublishStats added.
TEST(AppChaosTest, MetricsCarryAppAndPerConnectionTcpCounters) {
  ChaosOptions opt;
  opt.seed = 2;
  opt.family = FaultFamily::kMixed;
  opt.app = SmallWorkload(AppWorkloadKind::kRpc);
  opt.obs.metrics = true;
  const ChaosEngineResult r = RunChaosEngine(opt, /*use_juggler=*/true);
  EXPECT_EQ(r.violations, 0u);
  const MetricsRegistry& m = r.obs.metrics;
  EXPECT_EQ(m.CounterValue("app.issued", "client"), r.app.issued);
  EXPECT_EQ(m.CounterValue("app.executions", "server"),
            r.app.executions);
  // One TCP snapshot per connection, under the conn<N> labels.
  EXPECT_GT(m.CounterValue("tcp.bytes_sent", "conn0/a_to_b") +
                m.CounterValue("tcp.bytes_sent", "conn0/b_to_a"),
            0u);
  EXPECT_GT(m.CounterValue("tcp.bytes_sent", "conn1/a_to_b") +
                m.CounterValue("tcp.bytes_sent", "conn1/b_to_a"),
            0u);
}

}  // namespace
}  // namespace juggler
