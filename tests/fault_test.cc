// Unit tests for the fault-injection layer: FaultStage fault classes and
// determinism, FaultTimeline windowing, link failure modeling (SetDown/SetUp
// and runtime degradation, LinkFlapper), NIC checksum validation of
// corrupted frames, the StreamIntegrityChecker, and the JugglerAuditor.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/juggler.h"
#include "src/fault/audit_log.h"
#include "src/fault/fault_stage.h"
#include "src/fault/juggler_auditor.h"
#include "src/fault/link_flapper.h"
#include "src/fault/stream_integrity.h"
#include "src/net/link.h"
#include "src/net/stages.h"
#include "src/nic/nic_rx.h"
#include "src/scenario/gro_factories.h"
#include "src/sim/event_loop.h"
#include "tests/test_util.h"

namespace juggler {
namespace {

// Collects packets with their arrival times.
class CollectorSink : public PacketSink {
 public:
  explicit CollectorSink(EventLoop* loop) : loop_(loop) {}

  void Accept(PacketPtr packet) override {
    arrival_times.push_back(loop_ != nullptr ? loop_->now() : 0);
    packets.push_back(std::move(packet));
  }

  std::vector<TimeNs> arrival_times;
  std::vector<PacketPtr> packets;

 private:
  EventLoop* loop_;
};

// ---------------------------------------------------------- FaultStage ----

TEST(FaultStageTest, PassThroughWithEmptyTimeline) {
  CollectorSink sink(nullptr);
  FaultStage stage(nullptr, "f", FaultTimeline{}, 1, &sink);
  for (int i = 0; i < 100; ++i) {
    stage.Accept(MakeDataPacket(TestFlow(), static_cast<Seq>(i) * kMss, kMss));
  }
  EXPECT_EQ(sink.packets.size(), 100u);
  EXPECT_EQ(stage.stats().passed, 100u);
  EXPECT_EQ(stage.drops(), 0u);
}

TEST(FaultStageTest, SameSeedSameFaultPattern) {
  FaultProfile p;
  p.drop_prob = 0.1;
  p.dup_prob = 0.1;
  p.corrupt_prob = 0.05;
  auto run = [&](uint64_t seed) {
    CollectorSink sink(nullptr);
    FaultStage stage(nullptr, "f", FaultTimeline::Always(p), seed, &sink);
    for (int i = 0; i < 2000; ++i) {
      stage.Accept(MakeDataPacket(TestFlow(), static_cast<Seq>(i) * kMss, kMss));
    }
    std::vector<Seq> out;
    for (const auto& pk : sink.packets) {
      out.push_back(pk->seq);
    }
    return std::make_pair(out, stage.stats());
  };
  auto [out_a, stats_a] = run(42);
  auto [out_b, stats_b] = run(42);
  auto [out_c, stats_c] = run(43);
  EXPECT_EQ(out_a, out_b);
  EXPECT_EQ(stats_a.drops, stats_b.drops);
  EXPECT_EQ(stats_a.duplicates, stats_b.duplicates);
  EXPECT_EQ(stats_a.corruptions, stats_b.corruptions);
  EXPECT_NE(out_a, out_c);  // different seed, different pattern
}

TEST(FaultStageTest, DuplicateEmitsIdenticalCopyAfterOriginal) {
  FaultProfile p;
  p.dup_prob = 1.0;
  CollectorSink sink(nullptr);
  FaultStage stage(nullptr, "f", FaultTimeline::Always(p), 1, &sink);
  stage.Accept(MakeDataPacket(TestFlow(), 7 * kMss, kMss));
  ASSERT_EQ(sink.packets.size(), 2u);
  EXPECT_EQ(sink.packets[0]->seq, 7 * kMss);
  EXPECT_EQ(sink.packets[1]->seq, 7 * kMss);
  EXPECT_EQ(sink.packets[1]->payload_len, kMss);
  EXPECT_EQ(stage.stats().duplicates, 1u);
}

TEST(FaultStageTest, CorruptMarksButStillForwards) {
  FaultProfile p;
  p.corrupt_prob = 1.0;
  CollectorSink sink(nullptr);
  FaultStage stage(nullptr, "f", FaultTimeline::Always(p), 1, &sink);
  stage.Accept(MakeDataPacket(TestFlow(), 0, kMss));
  ASSERT_EQ(sink.packets.size(), 1u);
  EXPECT_TRUE(sink.packets[0]->corrupted);
  EXPECT_EQ(stage.stats().corruptions, 1u);
}

TEST(FaultStageTest, TruncateShortensAndMarksCorrupted) {
  FaultProfile p;
  p.truncate_prob = 1.0;
  CollectorSink sink(nullptr);
  FaultStage stage(nullptr, "f", FaultTimeline::Always(p), 1, &sink);
  stage.Accept(MakeDataPacket(TestFlow(), 0, kMss));
  ASSERT_EQ(sink.packets.size(), 1u);
  EXPECT_LT(sink.packets[0]->payload_len, kMss);
  EXPECT_GE(sink.packets[0]->payload_len, 1u);
  EXPECT_TRUE(sink.packets[0]->corrupted);
  EXPECT_EQ(stage.stats().truncations, 1u);
}

TEST(FaultStageTest, BurstDropsConsecutivePackets) {
  FaultProfile p;
  p.burst_prob = 1.0;  // first packet starts a burst...
  p.burst_len_min = 4;
  p.burst_len_max = 4;
  CollectorSink sink(nullptr);
  FaultStage stage(nullptr, "f", FaultTimeline::Always(p), 1, &sink);
  for (int i = 0; i < 4; ++i) {
    stage.Accept(MakeDataPacket(TestFlow(), static_cast<Seq>(i) * kMss, kMss));
  }
  // ...and the burst swallows exactly burst_len packets.
  EXPECT_EQ(sink.packets.size(), 0u);
  EXPECT_EQ(stage.stats().bursts_started, 1u);
  EXPECT_EQ(stage.stats().drops, 4u);
  EXPECT_EQ(stage.stats().burst_drops, 4u);
}

TEST(FaultStageTest, DelaySpikeReordersPastSuccessor) {
  EventLoop loop;
  FaultProfile p;
  p.delay_prob = 1.0;
  p.delay_min = Us(100);
  p.delay_max = Us(100);
  FaultTimeline timeline;
  timeline.Add(0, Us(1), p);  // only the first packet is delayed
  CollectorSink sink(&loop);
  FaultStage stage(&loop, "f", std::move(timeline), 1, &sink);
  stage.Accept(MakeDataPacket(TestFlow(), 0, kMss));
  loop.RunUntil(Us(50));
  stage.Accept(MakeDataPacket(TestFlow(), kMss, kMss));
  loop.Run();
  ASSERT_EQ(sink.packets.size(), 2u);
  EXPECT_EQ(sink.packets[0]->seq, kMss);  // undelayed packet overtook
  EXPECT_EQ(sink.packets[1]->seq, 0u);
  EXPECT_EQ(sink.arrival_times[1], Us(100));
  EXPECT_EQ(stage.stats().delayed, 1u);
}

TEST(FaultStageTest, TimelineWindowsGateFaults) {
  EventLoop loop;
  FaultProfile p;
  p.drop_prob = 1.0;
  FaultTimeline timeline;
  timeline.Add(Us(10), Us(20), p);
  CollectorSink sink(&loop);
  FaultStage stage(&loop, "f", std::move(timeline), 1, &sink);
  auto send_at = [&](TimeNs when, Seq seq) {
    loop.RunUntil(when);
    stage.Accept(MakeDataPacket(TestFlow(), seq, kMss));
  };
  send_at(Us(5), 0);          // before the window: passes
  send_at(Us(15), kMss);      // inside: dropped
  send_at(Us(25), 2 * kMss);  // after: passes
  ASSERT_EQ(sink.packets.size(), 2u);
  EXPECT_EQ(sink.packets[0]->seq, 0u);
  EXPECT_EQ(sink.packets[1]->seq, 2 * kMss);
  EXPECT_EQ(stage.drops(), 1u);
}

TEST(FaultStageTest, LastMatchingWindowWins) {
  FaultProfile quiet;  // all-zero profile overlaying a drop-everything one
  FaultProfile noisy;
  noisy.drop_prob = 1.0;
  FaultTimeline timeline;
  timeline.Add(0, Us(100), noisy);
  timeline.Add(0, Us(100), quiet);
  EventLoop loop;
  CollectorSink sink(&loop);
  FaultStage stage(&loop, "f", std::move(timeline), 1, &sink);
  stage.Accept(MakeDataPacket(TestFlow(), 0, kMss));
  EXPECT_EQ(sink.packets.size(), 1u);
}

TEST(FaultStageTest, DropStageAliasKeepsBehavior) {
  // The folded DropStage must still be a clockless uniform dropper with the
  // drops() accessor (bench/fig14 and the topology builders rely on it).
  CollectorSink sink(nullptr);
  DropStage stage(0.5, 99, &sink);
  for (int i = 0; i < 1000; ++i) {
    stage.Accept(MakeDataPacket(TestFlow(), static_cast<Seq>(i) * kMss, kMss));
  }
  EXPECT_EQ(stage.drops() + sink.packets.size(), 1000u);
  EXPECT_GT(stage.drops(), 350u);
  EXPECT_LT(stage.drops(), 650u);
}

// ------------------------------------------- NIC checksum validation ------

TEST(NicChecksumTest, CorruptedFrameDiscardedAtNic) {
  EventLoop loop;
  CpuCostModel costs;
  class NullSegSink : public SegmentSink {
   public:
    void OnSegment(Segment) override {}
  } seg_sink;
  NicRxConfig cfg;
  NicRx nic(&loop, &costs, cfg, MakeStandardGroFactory(), &seg_sink);
  auto good = MakeDataPacket(TestFlow(), 0, kMss);
  auto bad = MakeDataPacket(TestFlow(), kMss, kMss);
  bad->corrupted = true;
  nic.Accept(std::move(good));
  nic.Accept(std::move(bad));
  loop.Run();
  EXPECT_EQ(nic.stats().packets_in, 2u);
  EXPECT_EQ(nic.stats().checksum_drops, 1u);
  // Only the clean frame reached GRO.
  EXPECT_EQ(nic.TotalGroStats().packets_in, 1u);
}

// ------------------------------------------------------- Link failures ----

PacketPtr WirePacket(Seq seq) { return MakeDataPacket(TestFlow(), seq, kMss); }

TEST(LinkFailureTest, DownBlackholesArrivalsAndUpResumes) {
  EventLoop loop;
  CollectorSink sink(&loop);
  LinkConfig cfg;
  cfg.propagation_delay = 0;
  Link link(&loop, "l", cfg, &sink);
  link.SetDown();
  EXPECT_TRUE(link.is_down());
  link.Accept(WirePacket(0));
  loop.Run();
  EXPECT_EQ(sink.packets.size(), 0u);
  EXPECT_EQ(link.stats().down_drops, 1u);
  EXPECT_EQ(link.stats().down_transitions, 1u);
  link.SetUp();
  EXPECT_FALSE(link.is_down());
  link.Accept(WirePacket(kMss));
  loop.Run();
  ASSERT_EQ(sink.packets.size(), 1u);
  EXPECT_EQ(sink.packets[0]->seq, kMss);
}

TEST(LinkFailureTest, QueuedPacketsSurviveDownWindow) {
  EventLoop loop;
  CollectorSink sink(&loop);
  LinkConfig cfg;
  cfg.rate_bps = 10 * kGbps;
  cfg.propagation_delay = 0;
  Link link(&loop, "l", cfg, &sink);
  // Two packets: the first is in flight when the link goes down; the second
  // waits in the queue across the outage and drains after SetUp.
  link.Accept(WirePacket(0));
  link.Accept(WirePacket(kMss));
  link.SetDown();
  loop.RunUntil(Us(50));
  EXPECT_LE(sink.packets.size(), 1u);  // in-flight frame may complete
  link.SetUp();
  loop.Run();
  EXPECT_EQ(sink.packets.size(), 2u);
  EXPECT_EQ(link.stats().drops, 0u);
}

TEST(LinkFailureTest, RuntimeRateDegradationSlowsSerialization) {
  EventLoop loop;
  CollectorSink sink(&loop);
  LinkConfig cfg;
  cfg.rate_bps = 10 * kGbps;
  cfg.propagation_delay = 0;
  Link link(&loop, "l", cfg, &sink);
  link.Accept(WirePacket(0));
  loop.Run();
  const TimeNs fast = sink.arrival_times[0];
  link.set_rate_bps(1 * kGbps);
  const TimeNs start = loop.now();
  link.Accept(WirePacket(kMss));
  loop.Run();
  const TimeNs slow = sink.arrival_times[1] - start;
  // 10x the serialization time, modulo the ceiling in SerializationTime.
  EXPECT_GE(slow, 10 * fast - 9);
  EXPECT_LE(slow, 10 * fast);
}

TEST(LinkFailureTest, SetDownIdempotent) {
  EventLoop loop;
  CollectorSink sink(&loop);
  Link link(&loop, "l", LinkConfig{}, &sink);
  link.SetDown();
  link.SetDown();
  link.SetUp();
  link.SetUp();
  EXPECT_EQ(link.stats().down_transitions, 1u);
  EXPECT_FALSE(link.is_down());
}

TEST(LinkValidationDeathTest, RedMaxFillMustExceedMinFill) {
  EventLoop loop;
  CollectorSink sink(&loop);
  LinkConfig cfg;
  cfg.red = true;
  cfg.queue_limit_bytes = 100000;
  cfg.red_min_fill = 0.9;
  cfg.red_max_fill = 0.25;  // inverted ramp
  EXPECT_DEATH(Link(&loop, "l", cfg, &sink), "red_max_fill");
}

TEST(LinkValidationDeathTest, RedFillsMustBeFractions) {
  EventLoop loop;
  CollectorSink sink(&loop);
  LinkConfig cfg;
  cfg.red = true;
  cfg.queue_limit_bytes = 100000;
  cfg.red_max_fill = 1.5;  // not a fill fraction
  EXPECT_DEATH(Link(&loop, "l", cfg, &sink), "red_max_fill");
}

TEST(LinkValidationDeathTest, EcnThresholdMustBeFraction) {
  EventLoop loop;
  CollectorSink sink(&loop);
  LinkConfig cfg;
  cfg.ecn = true;
  cfg.queue_limit_bytes = 100000;
  cfg.ecn_threshold_fill = -0.1;
  EXPECT_DEATH(Link(&loop, "l", cfg, &sink), "ecn_threshold_fill");
}

TEST(LinkFlapperTest, SchedulesDownAndUpWindows) {
  EventLoop loop;
  CollectorSink sink(&loop);
  LinkConfig cfg;
  cfg.propagation_delay = 0;
  Link link(&loop, "l", cfg, &sink);
  LinkFlapper flapper(&loop, &link, {FlapWindow{Us(10), Us(20), 0, 0}});
  flapper.Start();
  loop.RunUntil(Us(15));
  EXPECT_TRUE(link.is_down());
  loop.RunUntil(Us(25));
  EXPECT_FALSE(link.is_down());
  EXPECT_EQ(flapper.flaps_started(), 1u);
  EXPECT_EQ(flapper.flaps_finished(), 1u);
}

TEST(LinkFlapperTest, BrownOutDegradesAndRestoresRate) {
  EventLoop loop;
  CollectorSink sink(&loop);
  LinkConfig cfg;
  cfg.rate_bps = 10 * kGbps;
  Link link(&loop, "l", cfg, &sink);
  LinkFlapper flapper(&loop, &link, {FlapWindow{Us(10), Us(20), 1 * kGbps, 0}});
  flapper.Start();
  loop.RunUntil(Us(15));
  EXPECT_FALSE(link.is_down());
  EXPECT_EQ(link.rate_bps(), 1 * kGbps);
  loop.RunUntil(Us(25));
  EXPECT_EQ(link.rate_bps(), 10 * kGbps);
}

TEST(LinkFlapperTest, RandomWindowsAreOrderedAndBounded) {
  Rng rng(5);
  auto windows =
      LinkFlapper::MakeRandomWindows(&rng, Ms(100), 5, Us(100), Us(500), true, 10 * kGbps);
  ASSERT_EQ(windows.size(), 5u);
  TimeNs prev_up = 0;
  for (const auto& w : windows) {
    EXPECT_GE(w.down_at, prev_up);  // non-overlapping
    EXPECT_GE(w.up_at - w.down_at, Us(100));
    EXPECT_LE(w.up_at - w.down_at, Us(500));
    EXPECT_EQ(w.degraded_rate_bps, 0);
    prev_up = w.up_at;
  }
}

// ------------------------------------- Timeline windowing edge cases ------

TEST(FaultTimelineTest, OverlappingWindowsLastAddedWins) {
  FaultProfile background;
  background.drop_prob = 0.25;
  FaultProfile episode;
  episode.drop_prob = 1.0;
  FaultTimeline t;
  t.Add(0, Ms(10), background);
  t.Add(Ms(2), Ms(3), episode);  // sharper overlay inside the broad window
  EXPECT_DOUBLE_EQ(t.ActiveAt(Ms(1))->drop_prob, 0.25);
  EXPECT_DOUBLE_EQ(t.ActiveAt(Ms(2))->drop_prob, 1.0);
  EXPECT_DOUBLE_EQ(t.ActiveAt(Ms(3) - 1)->drop_prob, 1.0);
  EXPECT_DOUBLE_EQ(t.ActiveAt(Ms(3))->drop_prob, 0.25);  // [start, end)
  EXPECT_EQ(t.ActiveAt(Ms(10)), nullptr);
}

TEST(FaultTimelineTest, ZeroDurationWindowIsInert) {
  FaultProfile p;
  p.drop_prob = 1.0;
  FaultTimeline t;
  t.Add(Ms(5), Ms(5), p);
  EXPECT_EQ(t.ActiveAt(Ms(5) - 1), nullptr);
  EXPECT_EQ(t.ActiveAt(Ms(5)), nullptr);  // [start, start) covers nothing
  EXPECT_EQ(t.ActiveAt(Ms(5) + 1), nullptr);

  // Through a stage: a packet landing exactly on the empty window passes.
  EventLoop loop;
  CollectorSink sink(&loop);
  FaultStage stage(&loop, "f", t, 1, &sink);
  for (int i = 0; i < 10; ++i) {
    loop.ScheduleAt(Ms(5) + i - 5, [&stage, i] {
      stage.Accept(MakeDataPacket(TestFlow(), static_cast<Seq>(i) * kMss, kMss));
    });
  }
  loop.Run();
  EXPECT_EQ(sink.packets.size(), 10u);
  EXPECT_EQ(stage.drops(), 0u);
}

TEST(FaultStageTest, WindowsEntirelyInThePastNeverFire) {
  // The whole schedule predates the traffic: every packet must pass. This is
  // the shrinker's common intermediate state — workload shortened below the
  // first fault window.
  EventLoop loop;
  CollectorSink sink(&loop);
  FaultProfile p;
  p.drop_prob = 1.0;
  p.burst_prob = 1.0;
  FaultTimeline t;
  t.Add(Us(10), Us(20), p);
  t.Add(Us(30), Us(40), p);
  FaultStage stage(&loop, "f", t, 7, &sink);
  for (int i = 0; i < 20; ++i) {
    loop.ScheduleAt(Ms(1) + i * Us(10), [&stage, i] {
      stage.Accept(MakeDataPacket(TestFlow(), static_cast<Seq>(i) * kMss, kMss));
    });
  }
  loop.Run();
  EXPECT_EQ(sink.packets.size(), 20u);
  EXPECT_EQ(stage.drops(), 0u);
  EXPECT_EQ(stage.stats().bursts_started, 0u);
}

TEST(FaultStageTest, BurstContinuesPastWindowEnd) {
  // A drop burst models one physical event; the timeline window closing
  // mid-burst must not resurrect the tail of the burst.
  EventLoop loop;
  CollectorSink sink(&loop);
  FaultProfile p;
  p.burst_prob = 1.0;
  p.burst_len_min = 4;
  p.burst_len_max = 4;
  FaultTimeline t;
  t.Add(0, Us(10), p);
  FaultStage stage(&loop, "f", t, 1, &sink);
  // One packet inside the window triggers the burst; five more arrive after
  // the window closed. The burst swallows the next three of them, the final
  // two pass.
  for (int i = 0; i < 6; ++i) {
    const TimeNs at = i == 0 ? Us(5) : Us(20) + i * Us(10);
    loop.ScheduleAt(at, [&stage, i] {
      stage.Accept(MakeDataPacket(TestFlow(), static_cast<Seq>(i) * kMss, kMss));
    });
  }
  loop.Run();
  EXPECT_EQ(stage.stats().bursts_started, 1u);
  EXPECT_EQ(stage.stats().burst_drops, 4u);
  EXPECT_EQ(stage.stats().drops, 4u);
  EXPECT_EQ(sink.packets.size(), 2u);
}

TEST(LinkFlapperTest, SimulationEndingMidFlapLeavesLinkDown) {
  // A run whose time limit lands inside a flap window observes the link
  // down with the flap started but unfinished — the state forensics sees
  // when a chaos run times out mid-outage. Resuming the loop restores it.
  EventLoop loop;
  CollectorSink sink(&loop);
  LinkConfig cfg;
  cfg.propagation_delay = 0;
  Link link(&loop, "l", cfg, &sink);
  LinkFlapper flapper(&loop, &link, {FlapWindow{Us(10), Us(30), 0, 0}});
  flapper.Start();
  loop.RunUntil(Us(20));  // deadline inside [down_at, up_at)
  EXPECT_TRUE(link.is_down());
  EXPECT_EQ(flapper.flaps_started(), 1u);
  EXPECT_EQ(flapper.flaps_finished(), 0u);
  loop.Run();  // the pending SetUp still fires
  EXPECT_FALSE(link.is_down());
  EXPECT_EQ(flapper.flaps_finished(), 1u);
}

// -------------------------------------------- StreamIntegrityChecker ------

Segment DataSegment(Seq seq, uint32_t len) {
  Segment s;
  s.flow = TestFlow();
  s.seq = seq;
  s.payload_len = len;
  return s;
}

TEST(StreamIntegrityTest, CleanStreamPasses) {
  AuditLog log;
  StreamIntegrityChecker checker("t", &log);
  checker.set_expected_bytes(3 * kMss);
  for (int i = 0; i < 3; ++i) {
    checker.OnSegment(DataSegment(static_cast<Seq>(i) * kMss, kMss));
    checker.OnDeliverTotal(static_cast<uint64_t>(i + 1) * kMss);
  }
  EXPECT_TRUE(checker.FinalCheck());
  EXPECT_TRUE(log.clean());
}

TEST(StreamIntegrityTest, NonMonotoneDeliveryFlagged) {
  AuditLog log;
  StreamIntegrityChecker checker("t", &log);
  checker.OnDeliverTotal(2 * kMss);
  checker.OnDeliverTotal(kMss);  // rollback
  EXPECT_EQ(log.violations(), 1u);
  checker.OnDeliverTotal(kMss);  // repeat (double delivery)
  EXPECT_EQ(log.violations(), 2u);
}

TEST(StreamIntegrityTest, OverDeliveryFlagged) {
  AuditLog log;
  StreamIntegrityChecker checker("t", &log);
  checker.set_expected_bytes(kMss);
  checker.OnDeliverTotal(2 * kMss);  // more bytes than were ever sent
  EXPECT_FALSE(log.clean());
}

TEST(StreamIntegrityTest, IncompleteDeliveryFailsFinalCheck) {
  AuditLog log;
  StreamIntegrityChecker checker("t", &log);
  checker.set_expected_bytes(2 * kMss);
  checker.OnSegment(DataSegment(0, kMss));
  checker.OnDeliverTotal(kMss);
  EXPECT_FALSE(checker.FinalCheck());
  EXPECT_FALSE(log.clean());
}

TEST(StreamIntegrityTest, CoverageGapFailsFinalCheck) {
  AuditLog log;
  StreamIntegrityChecker checker("t", &log);
  checker.set_expected_bytes(3 * kMss);
  // TCP's counter claims everything arrived, but GRO never surfaced the
  // middle segment: the tap coverage has a hole.
  checker.OnSegment(DataSegment(0, kMss));
  checker.OnSegment(DataSegment(2 * kMss, kMss));
  checker.OnDeliverTotal(3 * kMss);
  EXPECT_FALSE(checker.FinalCheck());
}

TEST(StreamIntegrityTest, RetransmissionOverlapIsLegal) {
  AuditLog log;
  StreamIntegrityChecker checker("t", &log);
  checker.set_expected_bytes(2 * kMss);
  checker.OnSegment(DataSegment(0, kMss));
  checker.OnSegment(DataSegment(0, kMss));  // retransmit reaches TCP: fine
  checker.OnSegment(DataSegment(kMss, kMss));
  checker.OnDeliverTotal(2 * kMss);
  EXPECT_TRUE(checker.FinalCheck());
}

// ------------------------------------------------------ JugglerAuditor ----

GroHarness MakeAuditedJuggler(AuditLog* log, JugglerConfig config = {}) {
  return GroHarness([log, config](const CpuCostModel* c) {
    return std::make_unique<JugglerAuditor>(std::make_unique<Juggler>(c, config), log);
  });
}

TEST(JugglerAuditorTest, CleanOnInOrderTraffic) {
  AuditLog log;
  GroHarness h = MakeAuditedJuggler(&log);
  for (int i = 0; i < 45; ++i) {
    h.Receive(MakeDataPacket(TestFlow(), static_cast<Seq>(i) * kMss, kMss));
  }
  h.PollComplete();
  auto* auditor = static_cast<JugglerAuditor*>(h.engine());
  EXPECT_GT(auditor->audits(), 0u);
  EXPECT_TRUE(log.clean());
}

TEST(JugglerAuditorTest, CleanAcrossReorderingTimeoutsAndEviction) {
  AuditLog log;
  JugglerConfig config;
  config.max_flows = 4;
  config.inseq_timeout = Us(15);
  config.ofo_timeout = Us(50);
  GroHarness h = MakeAuditedJuggler(&log, config);
  // Out-of-order arrivals with holes across many flows on a tiny table:
  // exercises build-up, active merging, loss recovery, and all three
  // eviction classes, auditing structure after every poll and timer.
  for (int round = 0; round < 30; ++round) {
    for (uint16_t f = 0; f < 8; ++f) {
      const Seq base = static_cast<Seq>(round) * 4 * kMss;
      h.Receive(MakeDataPacket(TestFlow(f, 1), base + 2 * kMss, kMss));
      h.Receive(MakeDataPacket(TestFlow(f, 1), base, kMss));
      if (round % 3 != 0) {  // leave a hole every third round
        h.Receive(MakeDataPacket(TestFlow(f, 1), base + kMss, kMss));
      }
    }
    h.Advance(Us(20));
    h.PollComplete();
    h.MaybeFireTimer();
    h.Advance(Us(40));
    h.MaybeFireTimer();
  }
  auto* auditor = static_cast<JugglerAuditor*>(h.engine());
  EXPECT_GT(auditor->inner()->juggler_stats().evictions_inactive +
                auditor->inner()->juggler_stats().evictions_active +
                auditor->inner()->juggler_stats().evictions_loss,
            0u);
  EXPECT_TRUE(log.clean()) << (log.messages().empty() ? "" : log.messages().front());
}

TEST(JugglerAuditorTest, StatsMirrorInnerEngine) {
  AuditLog log;
  GroHarness h = MakeAuditedJuggler(&log);
  for (int i = 0; i < 10; ++i) {
    h.Receive(MakeDataPacket(TestFlow(), static_cast<Seq>(i) * kMss, kMss));
  }
  h.PollComplete();
  auto* auditor = static_cast<JugglerAuditor*>(h.engine());
  // The wrapper's GroStats must track the inner engine's so NicRx's
  // aggregated accounting does not lose the audited engine's counters.
  EXPECT_EQ(h.engine()->stats().packets_in, auditor->inner()->stats().packets_in);
  EXPECT_EQ(h.engine()->stats().segments_out, auditor->inner()->stats().segments_out);
  EXPECT_GT(h.engine()->stats().packets_in, 0u);
}

TEST(AuditLogTest, CountsUnboundedMessagesBounded) {
  AuditLog log;
  for (int i = 0; i < 200; ++i) {
    log.Violation("t", "v" + std::to_string(i));
  }
  EXPECT_EQ(log.violations(), 200u);
  EXPECT_EQ(log.messages().size(), AuditLog::kMaxMessages);
  EXPECT_FALSE(log.clean());
  log.Clear();
  EXPECT_TRUE(log.clean());
}

// Juggler::Audit() itself: the view reflects the engine's structure.
TEST(JugglerAuditViewTest, ViewMatchesListsAndBytes) {
  JugglerConfig config;
  GroHarness h([config](const CpuCostModel* c) {
    return std::make_unique<Juggler>(c, config);
  });
  auto* jug = static_cast<Juggler*>(h.engine());
  // Flow 1 holds a run beyond a hole (stays buffered after the in-sequence
  // flush); flow 2 flushes clean and goes inactive.
  h.Receive(MakeDataPacket(TestFlow(1, 1), 0, kMss));
  h.Receive(MakeDataPacket(TestFlow(1, 1), 2 * kMss, kMss));
  h.Receive(MakeDataPacket(TestFlow(2, 1), 0, kMss));
  h.Advance(Us(20));
  h.PollComplete();
  const Juggler::AuditView view = jug->Audit();
  EXPECT_EQ(view.table_size, 2u);
  EXPECT_EQ(view.active_len + view.inactive_len + view.loss_len, view.table_size);
  uint64_t held = 0;
  for (const auto& f : view.flows) {
    EXPECT_NE(f.list, Juggler::ListId::kNone);
    held += f.buffered_bytes;
  }
  EXPECT_EQ(held, static_cast<uint64_t>(kMss));  // the un-flushed hole run
  EXPECT_EQ(view.buffered_bytes_in, view.buffered_bytes_out + held);
}

}  // namespace
}  // namespace juggler
