// Edge cases of the EventLoop's hierarchical timer wheel: overflow beyond
// the top level, cancellation after a cascade has moved an entry, Shutdown
// with resources riding wheel slots, re-arm storms at a single deadline, and
// the generation-tag liveness invariants. The baseline ordering semantics
// live in sim_test.cc; these tests pin the machinery the wheel added.

#include <gtest/gtest.h>

#include <vector>

#include "src/packet/packet.h"
#include "src/sim/event_loop.h"
#include "src/util/time.h"

namespace juggler {
namespace {

// 64^6 ns: the span of the six-level wheel. Anything scheduled farther out
// waits in the overflow list until the wheel drains to it.
constexpr TimeNs kWheelSpan = 1LL << (EventLoop::kWheelLevels * EventLoop::kWheelLevelBits);

TEST(TimerWheelTest, FarFutureBeyondTopLevelFiresInOrder) {
  EventLoop loop;
  std::vector<int> order;
  // Three events past the wheel span (overflow list), interleaved with two
  // inside it, scheduled shuffled.
  loop.ScheduleAt(2 * kWheelSpan + 7, [&] { order.push_back(4); });
  loop.ScheduleAt(100, [&] { order.push_back(1); });
  loop.ScheduleAt(3 * kWheelSpan, [&] { order.push_back(5); });
  loop.ScheduleAt(kWheelSpan + 5, [&] { order.push_back(3); });
  loop.ScheduleAt(Ms(1), [&] { order.push_back(2); });
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_EQ(loop.now(), 3 * kWheelSpan);
  EXPECT_EQ(loop.pending_events(), 0u);
  EXPECT_EQ(loop.pending_timer_ids(), 0u);
}

TEST(TimerWheelTest, OverflowRebucketsRepeatedly) {
  // Each firing drains the wheel completely, forcing the overflow list to
  // re-bucket for the next one — and re-overflow events still too far out.
  EventLoop loop;
  std::vector<TimeNs> fired;
  for (int i = 1; i <= 4; ++i) {
    loop.ScheduleAt(i * kWheelSpan + i, [&, i] { fired.push_back(loop.now()); });
  }
  loop.Run();
  ASSERT_EQ(fired.size(), 4u);
  for (int i = 1; i <= 4; ++i) {
    EXPECT_EQ(fired[static_cast<size_t>(i - 1)], i * kWheelSpan + i);
  }
}

TEST(TimerWheelTest, CancelledOverflowEntryNeverFires) {
  EventLoop loop;
  bool cancelled_ran = false;
  bool kept_ran = false;
  const TimerId doomed = loop.ScheduleAt(2 * kWheelSpan, [&] { cancelled_ran = true; });
  loop.ScheduleAt(2 * kWheelSpan + 1, [&] { kept_ran = true; });
  // Force the staged entries into the overflow list before cancelling, so
  // the cancel can't take the pop-the-newest staging fast path.
  loop.next_event_time();
  loop.Cancel(doomed);
  loop.Run();
  EXPECT_FALSE(cancelled_ran);
  EXPECT_TRUE(kept_ran);
  EXPECT_EQ(loop.now(), 2 * kWheelSpan + 1);
}

TEST(TimerWheelTest, CancelAfterCascadeStillPreventsExecution) {
  // RunUntil drags the wheel base forward, cascading the level-1 bucket that
  // holds the victims into the due heap; cancelling afterwards must still
  // win, including for an entry buried mid-heap (lazy dead-entry skip).
  EventLoop loop;
  std::vector<int> order;
  loop.Schedule(10, [&] { order.push_back(0); });
  const TimerId doomed = loop.Schedule(70, [&] { order.push_back(1); });
  loop.Schedule(71, [&] { order.push_back(2); });
  loop.Schedule(72, [&] { order.push_back(3); });
  loop.RunUntil(64);  // fires t=10; harvest cascades the t=70..72 bucket
  EXPECT_TRUE(loop.IsPending(doomed));
  loop.Cancel(doomed);
  EXPECT_FALSE(loop.IsPending(doomed));
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 3}));
}

TEST(TimerWheelTest, ShutdownFreesPacketsRidingWheelSlots) {
  // Timers carry PacketPtr captures at every horizon: staging, the due span,
  // a mid-level bucket, and the overflow list. Shutdown must release all of
  // them back to the pool immediately — not leak them in wheel slots.
  PacketPool& pool = PacketPool::ThreadLocal();
  // Warm the freelist so every Acquire below recycles (keeps the arithmetic
  // exact: no fresh allocations mid-test).
  {
    std::vector<PacketPtr> warm;
    for (int i = 0; i < 8; ++i) {
      warm.push_back(AllocPacket());
    }
  }
  const size_t free_before = pool.free_size();
  EventLoop loop;
  const TimeNs horizons[] = {5, 1000, Ms(3), kWheelSpan + 1};
  for (TimeNs when : horizons) {
    PacketPtr p = AllocPacket();
    loop.ScheduleAt(when, [p = std::move(p)] { (void)p; });
  }
  // Drain staging for all but the last so the captures sit in the due heap,
  // a wheel bucket and overflow; the last stays staged.
  EXPECT_EQ(pool.free_size(), free_before - 4);
  loop.Shutdown();
  EXPECT_EQ(pool.free_size(), free_before);  // every packet returned
  EXPECT_EQ(loop.pending_events(), 0u);
  EXPECT_EQ(loop.pending_timer_ids(), 0u);
  // The loop stays usable after Shutdown.
  bool ran = false;
  loop.Schedule(1, [&] { ran = true; });
  loop.Run();
  EXPECT_TRUE(ran);
}

TEST(TimerWheelTest, ReArmStormAtOneDeadlineStaysBounded) {
  // The RTO idiom, concentrated: one deadline re-armed 100k times. The
  // cancel must pop the entry it just staged, so the pending-entry count
  // stays O(1) instead of O(re-arms).
  EventLoop loop;
  const TimeNs deadline = Ms(5);
  TimerId armed = kInvalidTimerId;
  int fired = 0;
  for (int i = 0; i < 100'000; ++i) {
    loop.Cancel(armed);
    armed = loop.ScheduleAt(deadline, [&] { ++fired; });
  }
  EXPECT_LE(loop.pending_events(), 2u);
  EXPECT_EQ(loop.pending_timer_ids(), 1u);
  loop.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.now(), deadline);
}

TEST(TimerWheelTest, ReArmStormAcrossDrainsCompacts) {
  // Same storm, but next_event_time() periodically files the armed entry
  // into the due heap, so the subsequent cancel can't take the fast path.
  // Compaction must keep dead entries from accumulating without bound.
  EventLoop loop;
  const TimeNs deadline = Ms(5);
  TimerId armed = kInvalidTimerId;
  int fired = 0;
  for (int i = 0; i < 100'000; ++i) {
    loop.Cancel(armed);
    armed = loop.ScheduleAt(deadline, [&] { ++fired; });
    loop.next_event_time();  // drain staging: the entry now sits in due_
  }
  EXPECT_LE(loop.pending_events(), 3000u);  // compaction floor, not 100k
  loop.Run();
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheelTest, GenerationTagOutlivesCascades) {
  // An id stays pending while its entry migrates staging -> bucket -> due,
  // and goes stale the instant the callback runs.
  EventLoop loop;
  const TimerId id = loop.ScheduleAt(70, [] {});
  EXPECT_TRUE(loop.IsPending(id));  // staged
  loop.next_event_time();
  EXPECT_TRUE(loop.IsPending(id));  // filed in a wheel bucket
  loop.RunUntil(69);
  EXPECT_TRUE(loop.IsPending(id));  // cascaded into the due heap
  loop.Run();
  EXPECT_FALSE(loop.IsPending(id));  // fired
  loop.Cancel(id);                   // stale cancel: must be a no-op
  EXPECT_EQ(loop.executed_events(), 1u);
}

TEST(TimerWheelTest, FiredSlotReuseInvalidatesStaleId) {
  // After a timer fires, its slot is recycled for the next Schedule. The
  // stale id's generation no longer matches, so cancelling it must not kill
  // the new tenant.
  EventLoop loop;
  bool second_ran = false;
  const TimerId first = loop.Schedule(1, [] {});
  loop.Run();
  const TimerId second = loop.Schedule(1, [&] { second_ran = true; });
  EXPECT_NE(first, second);
  loop.Cancel(first);  // stale: generations differ even in the same slot
  EXPECT_TRUE(loop.IsPending(second));
  loop.Run();
  EXPECT_TRUE(second_ran);
}

TEST(TimerWheelTest, SameDeadlineFifoAcrossContainers) {
  // Ties break by scheduling order even when the contenders reach the due
  // heap by different routes: one filed directly (due span), one cascaded
  // from a bucket, one re-bucketed from overflow.
  EventLoop loop;
  std::vector<int> order;
  const TimeNs when = 2 * kWheelSpan + 10;
  loop.ScheduleAt(when, [&] { order.push_back(0); });  // via overflow
  loop.next_event_time();
  loop.ScheduleAt(when, [&] { order.push_back(1); });  // staged later
  loop.ScheduleAt(when, [&] { order.push_back(2); });
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace juggler
