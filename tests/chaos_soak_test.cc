// Differential chaos tests (ctest label: "chaos").
//
// Each test drives the same bulk transfer through Juggler (with structural
// invariant auditing) and through standard GRO under one fault family, over
// several seeds, and requires: both transfers complete, zero invariant
// violations, and byte-identical delivered streams. A final test pins the
// determinism contract: the same seed must reproduce a bit-identical run.
//
// The 20-seed-per-family acceptance soak lives in bench/chaos_soak; these
// tests keep a representative slice of it in the default `ctest` run.

#include <gtest/gtest.h>

#include <vector>

#include "src/scenario/chaos_scenario.h"
#include "src/sim/sweep_runner.h"

namespace juggler {
namespace {

constexpr int kSeedsPerFamily = 4;

void RunFamily(FaultFamily family) {
  for (int s = 0; s < kSeedsPerFamily; ++s) {
    ChaosOptions opt;
    opt.seed = 1 + static_cast<uint64_t>(s);
    opt.family = family;
    const ChaosResult r = RunChaos(opt);
    EXPECT_TRUE(r.juggler.completed)
        << FaultFamilyName(family) << " seed " << opt.seed << ": juggler delivered "
        << r.juggler.bytes_delivered << " of " << opt.transfer_bytes;
    EXPECT_TRUE(r.baseline.completed)
        << FaultFamilyName(family) << " seed " << opt.seed << ": baseline delivered "
        << r.baseline.bytes_delivered << " of " << opt.transfer_bytes;
    EXPECT_EQ(r.juggler.violations, 0u)
        << FaultFamilyName(family) << " seed " << opt.seed << ": "
        << (r.juggler.violation_messages.empty() ? "" : r.juggler.violation_messages.front());
    EXPECT_EQ(r.baseline.violations, 0u)
        << FaultFamilyName(family) << " seed " << opt.seed << ": "
        << (r.baseline.violation_messages.empty() ? ""
                                                  : r.baseline.violation_messages.front());
    EXPECT_TRUE(r.streams_match)
        << FaultFamilyName(family) << " seed " << opt.seed << ": juggler "
        << r.juggler.bytes_delivered << " vs baseline " << r.baseline.bytes_delivered;
    EXPECT_GT(r.juggler.audits, 0u) << "auditor never ran";
  }
}

TEST(ChaosSoakTest, DropBursts) { RunFamily(FaultFamily::kDropBurst); }

TEST(ChaosSoakTest, Duplication) { RunFamily(FaultFamily::kDuplicate); }

TEST(ChaosSoakTest, Corruption) { RunFamily(FaultFamily::kCorrupt); }

TEST(ChaosSoakTest, DelaySpikes) { RunFamily(FaultFamily::kDelaySpike); }

TEST(ChaosSoakTest, LinkFlaps) { RunFamily(FaultFamily::kLinkFlap); }

TEST(ChaosSoakTest, MixedFaults) { RunFamily(FaultFamily::kMixed); }

TEST(ChaosSoakTest, CorruptionRunsSeeChecksumDrops) {
  // The corruption family must actually exercise the NIC's checksum
  // validation path (otherwise the family tests nothing).
  uint64_t total_checksum_drops = 0;
  for (int s = 0; s < kSeedsPerFamily; ++s) {
    ChaosOptions opt;
    opt.seed = 1 + static_cast<uint64_t>(s);
    opt.family = FaultFamily::kCorrupt;
    total_checksum_drops += RunChaos(opt).juggler.checksum_drops;
  }
  EXPECT_GT(total_checksum_drops, 0u);
}

TEST(ChaosSoakTest, SameSeedBitIdenticalDigest) {
  for (FaultFamily family :
       {FaultFamily::kDropBurst, FaultFamily::kDelaySpike, FaultFamily::kLinkFlap,
        FaultFamily::kMixed}) {
    ChaosOptions opt;
    opt.seed = 11;
    opt.family = family;
    const ChaosResult r1 = RunChaos(opt);
    const ChaosResult r2 = RunChaos(opt);
    EXPECT_EQ(r1.juggler.digest, r2.juggler.digest) << FaultFamilyName(family);
    EXPECT_EQ(r1.baseline.digest, r2.baseline.digest) << FaultFamilyName(family);
    EXPECT_EQ(r1.juggler.finish_time, r2.juggler.finish_time) << FaultFamilyName(family);
  }
}

TEST(ChaosSoakTest, DigestsIdenticalAcrossSweepThreads) {
  // The parallel sweep runner gives every worker thread its own PacketPool
  // and each point builds its own world, so a chaos run's digest must not
  // depend on which thread (or how warm a pool) executed it. Run the same
  // points sequentially and on a multi-threaded sweep; bit-identical digests
  // are required.
  const FaultFamily families[] = {FaultFamily::kDropBurst, FaultFamily::kDuplicate,
                                  FaultFamily::kDelaySpike};
  auto point = [&families](size_t i) {
    ChaosOptions opt;
    opt.seed = 11;
    opt.family = families[i];
    return RunChaos(opt);
  };
  const std::vector<ChaosResult> sequential = RunSweep(3, point, /*num_threads=*/1);
  const std::vector<ChaosResult> threaded = RunSweep(3, point, /*num_threads=*/3);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(sequential[i].juggler.digest, threaded[i].juggler.digest)
        << FaultFamilyName(families[i]);
    EXPECT_EQ(sequential[i].baseline.digest, threaded[i].baseline.digest)
        << FaultFamilyName(families[i]);
    EXPECT_EQ(sequential[i].juggler.finish_time, threaded[i].juggler.finish_time)
        << FaultFamilyName(families[i]);
  }
}

TEST(ChaosSoakTest, DifferentSeedsDifferentFaultPatterns) {
  ChaosOptions a;
  a.seed = 3;
  a.family = FaultFamily::kDropBurst;
  ChaosOptions b = a;
  b.seed = 4;
  EXPECT_NE(RunChaos(a).juggler.digest, RunChaos(b).juggler.digest);
}

}  // namespace
}  // namespace juggler
