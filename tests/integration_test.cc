// End-to-end tests over the assembled stack: host -> link -> reorder ->
// NIC -> GRO -> TCP -> app, on the paper's topologies. These validate the
// causal chains the benches measure, at smoke-test scale.

#include <gtest/gtest.h>

#include "src/qos/priority_controller.h"
#include "src/scenario/gro_factories.h"
#include "src/scenario/topologies.h"
#include "src/workload/message_stream.h"
#include "src/workload/rpc_generator.h"

namespace juggler {
namespace {

HostConfig BaseHost() {
  HostConfig hc;
  hc.rx.int_coalesce = Us(125);
  hc.gro_factory = MakeStandardGroFactory();
  return hc;
}

// ------------------------------------------------------------- NetFPGA ----

TEST(NetFpgaIntegrationTest, InOrderTransferCompletes) {
  SimWorld world;
  NetFpgaOptions opt;
  opt.reorder_delay = 0;  // both lanes equal: no reordering
  opt.sender = BaseHost();
  opt.receiver = BaseHost();
  NetFpgaTestbed t = BuildNetFpga(&world, opt);
  EndpointPair pair = ConnectHosts(t.sender, t.receiver, 1000, 2000);
  pair.a_to_b->Send(2'000'000);
  world.loop.RunUntil(Ms(50));
  EXPECT_EQ(pair.b_to_a->bytes_delivered(), 2'000'000u);
  EXPECT_EQ(t.receiver->stray_segments(), 0u);
}

TEST(NetFpgaIntegrationTest, JugglerHidesReorderingFromTcp) {
  SimWorld world;
  NetFpgaOptions opt;
  opt.reorder_delay = Us(250);
  opt.sender = BaseHost();
  opt.receiver = BaseHost();
  JugglerConfig jcfg;
  jcfg.inseq_timeout = Us(52);
  jcfg.ofo_timeout = Us(300);
  opt.receiver.gro_factory = MakeJugglerFactory(jcfg);
  NetFpgaTestbed t = BuildNetFpga(&world, opt);
  EndpointPair pair = ConnectHosts(t.sender, t.receiver, 1000, 2000);
  pair.a_to_b->SendForever();
  world.loop.RunUntil(Ms(100));
  // TCP saw (almost) no reordering — the paper's "hides almost all of the
  // reordering" — and no spurious retransmits.
  EXPECT_EQ(pair.a_to_b->sender_stats().fast_retransmits, 0u);
  EXPECT_LE(pair.b_to_a->receiver_stats().ooo_segments_in, 5u);
  // And the flow runs near line rate: >= 8.5Gb/s of goodput on the 10G link.
  const double gbps = ToGbps(RateBps(
      static_cast<int64_t>(pair.b_to_a->bytes_delivered()), world.loop.now()));
  EXPECT_GT(gbps, 8.5);
}

TEST(NetFpgaIntegrationTest, VanillaSuffersUnderReordering) {
  SimWorld world;
  NetFpgaOptions opt;
  opt.reorder_delay = Us(250);
  opt.sender = BaseHost();
  opt.receiver = BaseHost();  // standard GRO
  NetFpgaTestbed t = BuildNetFpga(&world, opt);
  EndpointPair pair = ConnectHosts(t.sender, t.receiver, 1000, 2000);
  pair.a_to_b->SendForever();
  world.loop.RunUntil(Ms(100));
  // The vanilla stack sees out-of-order segments and fast-retransmits
  // spuriously (250us of reordering vs 125us of coalescing absorption).
  EXPECT_GT(pair.b_to_a->receiver_stats().ooo_segments_in, 0u);
  EXPECT_GT(pair.a_to_b->sender_stats().fast_retransmits, 0u);
}

TEST(NetFpgaIntegrationTest, JugglerBatchesBetterThanVanillaUnderReordering) {
  auto run = [](NicRx::GroFactory factory) {
    SimWorld world;
    NetFpgaOptions opt;
    opt.reorder_delay = Us(250);
    opt.sender = BaseHost();
    opt.receiver = BaseHost();
    opt.receiver.gro_factory = std::move(factory);
    NetFpgaTestbed t = BuildNetFpga(&world, opt);
    EndpointPair pair = ConnectHosts(t.sender, t.receiver, 1000, 2000);
    pair.a_to_b->SendForever();
    world.loop.RunUntil(Ms(50));
    return t.receiver->nic_rx()->TotalGroStats().AvgBatchingExtent();
  };
  JugglerConfig jcfg;
  jcfg.inseq_timeout = Us(52);
  jcfg.ofo_timeout = Us(300);
  const double juggler_batch = run(MakeJugglerFactory(jcfg));
  const double vanilla_batch = run(MakeStandardGroFactory());
  EXPECT_GT(juggler_batch, 3 * vanilla_batch);
  EXPECT_GT(juggler_batch, 20.0);
}

TEST(NetFpgaIntegrationTest, DropsRecoveredThroughJuggler) {
  SimWorld world;
  NetFpgaOptions opt;
  opt.reorder_delay = Us(250);
  opt.drop_prob = 0.001;
  opt.sender = BaseHost();
  opt.receiver = BaseHost();
  opt.receiver.gro_factory = MakeJugglerFactory();
  NetFpgaTestbed t = BuildNetFpga(&world, opt);
  EndpointPair pair = ConnectHosts(t.sender, t.receiver, 1000, 2000);
  pair.a_to_b->Send(5'000'000);
  world.loop.RunUntil(Sec(1));
  EXPECT_EQ(pair.b_to_a->bytes_delivered(), 5'000'000u);
  EXPECT_GT(t.drop->drops(), 0u);
}

TEST(NetFpgaIntegrationTest, MessageLatencyMeasured) {
  SimWorld world;
  NetFpgaOptions opt;
  opt.reorder_delay = 0;
  opt.sender = BaseHost();
  opt.receiver = BaseHost();
  opt.receiver.gro_factory = MakeJugglerFactory();
  NetFpgaTestbed t = BuildNetFpga(&world, opt);
  EndpointPair pair = ConnectHosts(t.sender, t.receiver, 1000, 2000);
  PercentileSampler latency_us;
  MessageStream stream(&world.loop, pair.a_to_b, pair.b_to_a, &latency_us);
  RpcGeneratorConfig gcfg;
  gcfg.message_bytes = 10'000;
  gcfg.messages_per_sec = 2000;
  gcfg.stop_time = Ms(50);
  OpenLoopRpcGenerator gen(&world.loop, gcfg, {&stream});
  gen.Start();
  world.loop.RunUntil(Ms(100));
  EXPECT_GT(gen.generated(), 50u);
  EXPECT_EQ(stream.completed(), gen.generated());
  EXPECT_GT(latency_us.Percentile(50), 0.0);
  EXPECT_LT(latency_us.Percentile(99), 5000.0);
}

// ---------------------------------------------------------------- Clos ----

TEST(ClosIntegrationTest, PerPacketSprayWithJugglerDeliversAll) {
  SimWorld world;
  ClosOptions opt;
  opt.hosts_per_tor = 4;
  opt.lb = LbPolicy::kPerPacket;
  opt.host_template = BaseHost();
  opt.host_template.gro_factory = MakeJugglerFactory();
  ClosTestbed t = BuildClos(&world, opt);
  std::vector<EndpointPair> pairs;
  for (size_t i = 0; i < 4; ++i) {
    pairs.push_back(ConnectHosts(t.left_hosts[i], t.right_hosts[i], 1000, 2000));
    pairs.back().a_to_b->Send(1'000'000);
  }
  world.loop.RunUntil(Ms(100));
  for (const auto& pair : pairs) {
    EXPECT_EQ(pair.b_to_a->bytes_delivered(), 1'000'000u);
  }
}

TEST(ClosIntegrationTest, EcmpDoesNotReorder) {
  SimWorld world;
  ClosOptions opt;
  opt.hosts_per_tor = 4;
  opt.lb = LbPolicy::kEcmp;
  opt.host_template = BaseHost();
  ClosTestbed t = BuildClos(&world, opt);
  EndpointPair pair = ConnectHosts(t.left_hosts[0], t.right_hosts[0], 1000, 2000);
  pair.a_to_b->Send(3'000'000);
  world.loop.RunUntil(Ms(100));
  EXPECT_EQ(pair.b_to_a->bytes_delivered(), 3'000'000u);
  EXPECT_EQ(pair.b_to_a->receiver_stats().ooo_segments_in, 0u);
}

TEST(ClosIntegrationTest, PerPacketBalancesUplinksEvenly) {
  SimWorld world;
  ClosOptions opt;
  opt.hosts_per_tor = 4;
  opt.lb = LbPolicy::kPerPacket;
  opt.host_template = BaseHost();
  opt.host_template.gro_factory = MakeJugglerFactory();
  ClosTestbed t = BuildClos(&world, opt);
  EndpointPair pair = ConnectHosts(t.left_hosts[0], t.right_hosts[0], 1000, 2000);
  pair.a_to_b->Send(2'000'000);
  world.loop.RunUntil(Ms(100));
  const uint64_t up0 = t.tor_a_uplinks[0]->stats().packets_tx;
  const uint64_t up1 = t.tor_a_uplinks[1]->stats().packets_tx;
  EXPECT_GT(up0, 0u);
  EXPECT_GT(up1, 0u);
  const double ratio = static_cast<double>(up0) / static_cast<double>(up0 + up1);
  EXPECT_NEAR(ratio, 0.5, 0.05);
}

// ------------------------------------------------------------ Dumbbell ----

TEST(DumbbellIntegrationTest, PriorityControllerMeetsGuarantee) {
  SimWorld world;
  DumbbellOptions opt;
  opt.host_template = BaseHost();
  opt.host_template.gro_factory = MakeJugglerFactory();
  // One RX queue + app core per flow, as on the paper's hosts.
  opt.host_template.rx.num_queues = 8;
  opt.host_template.num_app_cores = 8;
  DumbbellTestbed t = BuildDumbbell(&world, opt);

  EndpointPair target = ConnectHosts(t.sender1, t.receiver1, 1000, 2000);
  std::vector<EndpointPair> antagonists;
  for (uint16_t i = 0; i < 7; ++i) {
    antagonists.push_back(ConnectHosts(t.sender2, t.receiver2, 3000 + i, 4000 + i));
    antagonists.back().a_to_b->SendForever();
  }
  target.a_to_b->SendForever();

  PriorityControllerConfig pcfg;
  pcfg.target_rate_bps = 20 * kGbps;
  pcfg.line_rate_bps = 40 * kGbps;
  PriorityController controller(&world.loop, pcfg, target.a_to_b);
  controller.Start();

  // Let the control loop and cwnd ramp settle, then measure over 100ms. The
  // controller lifts the flow well above its ~5Gb/s fair share toward the
  // 20Gb/s guarantee (the converged equilibrium in this substrate sits a few
  // Gb/s under the target; see EXPERIMENTS.md on Figs. 1/18).
  world.loop.RunUntil(Ms(200));
  const uint64_t start_bytes = target.b_to_a->bytes_delivered();
  world.loop.RunUntil(Ms(300));
  const double gbps = ToGbps(
      RateBps(static_cast<int64_t>(target.b_to_a->bytes_delivered() - start_bytes), Ms(100)));
  EXPECT_GT(gbps, 12.0);
  EXPECT_LT(gbps, 28.0);
  EXPECT_GT(controller.p(), 0.5);
}

TEST(DumbbellIntegrationTest, WithoutGuaranteeFlowsShareFairly) {
  SimWorld world;
  DumbbellOptions opt;
  opt.host_template = BaseHost();
  opt.host_template.gro_factory = MakeJugglerFactory();
  opt.host_template.rx.num_queues = 8;
  opt.host_template.num_app_cores = 8;
  DumbbellTestbed t = BuildDumbbell(&world, opt);
  EndpointPair target = ConnectHosts(t.sender1, t.receiver1, 1000, 2000);
  std::vector<EndpointPair> antagonists;
  for (uint16_t i = 0; i < 7; ++i) {
    antagonists.push_back(ConnectHosts(t.sender2, t.receiver2, 3000 + i, 4000 + i));
    antagonists.back().a_to_b->SendForever();
  }
  target.a_to_b->SendForever();
  world.loop.RunUntil(Ms(100));
  // 8 flows on a 40G bottleneck: the target should be far from 20G.
  const double gbps = ToGbps(
      RateBps(static_cast<int64_t>(target.b_to_a->bytes_delivered()), world.loop.now()));
  EXPECT_LT(gbps, 15.0);
  EXPECT_GT(gbps, 1.0);
}

}  // namespace
}  // namespace juggler
