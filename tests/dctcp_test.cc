// ECN marking, DCTCP feedback, flowlet load balancing and SRPT marking —
// the paper's §2 extension points, built on the same substrate.

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "src/net/link.h"
#include "src/net/load_balancer.h"
#include "src/qos/srpt_prioritizer.h"
#include "src/scenario/gro_factories.h"
#include "src/scenario/sampler.h"
#include "src/scenario/topologies.h"
#include "src/stats/stats.h"
#include "tests/test_util.h"

namespace juggler {
namespace {

class CollectorSink : public PacketSink {
 public:
  void Accept(PacketPtr p) override { packets.push_back(std::move(p)); }
  std::vector<PacketPtr> packets;
};

TEST(EcnTest, MarksAboveThreshold) {
  EventLoop loop;
  PacketFactory f;
  CollectorSink sink;
  LinkConfig cfg;
  cfg.rate_bps = 1 * kGbps;
  cfg.queue_limit_bytes = 100 * (kMss + kPerPacketWireOverhead);
  cfg.ecn = true;
  cfg.ecn_threshold_fill = 0.15;
  Link link(&loop, "l", cfg, &sink);
  for (Seq s = 0; s < 60; ++s) {
    PacketPtr p = f.Make();
    p->flow = TestFlow();
    p->seq = s * kMss;
    p->payload_len = kMss;
    link.Accept(std::move(p));
  }
  loop.Run();
  ASSERT_EQ(sink.packets.size(), 60u);
  // Early arrivals (queue below 15%) unmarked; later ones marked.
  EXPECT_FALSE(sink.packets[0]->ce_mark);
  EXPECT_TRUE(sink.packets[40]->ce_mark);
  EXPECT_GT(link.stats().ecn_marks, 20u);
}

TEST(EcnTest, PureAcksNotMarked) {
  EventLoop loop;
  PacketFactory f;
  CollectorSink sink;
  LinkConfig cfg;
  cfg.rate_bps = 1 * kGbps;
  cfg.queue_limit_bytes = 10'000;
  cfg.ecn = true;
  cfg.ecn_threshold_fill = 0.0;
  Link link(&loop, "l", cfg, &sink);
  for (int i = 0; i < 20; ++i) {
    PacketPtr p = f.Make();
    p->flow = TestFlow();
    p->flags = kFlagAck;
    link.Accept(std::move(p));
  }
  loop.Run();
  for (const auto& p : sink.packets) {
    EXPECT_FALSE(p->ce_mark);
  }
}

TEST(DctcpTest, KeepsQueueShallow) {
  // Bulk flow into an ECN bottleneck: DCTCP should hold the standing queue
  // near the marking threshold; Reno/CUBIC fills until RED/limit.
  auto run = [](bool dctcp) {
    SimWorld world;
    // Hand-built: sender host -> bottleneck link (ECN) -> receiver host.
    Fabric fabric;
    LatchSink* to_sender = fabric.AddLatch();
    LinkConfig rev;
    rev.rate_bps = 10 * kGbps;
    Link* rev_link = fabric.AddLink(&world.loop, "rev", rev, to_sender);
    HostConfig hc;
    hc.gro_factory = MakeStandardGroFactory();
    hc.tcp.dctcp = dctcp;
    // Low interrupt moderation keeps the RTT (and so the BDP) small relative
    // to the marking threshold — DCTCP's K must sit above ~0.2 BDP to avoid
    // underutilisation.
    hc.rx.int_coalesce = Us(20);
    hc.ip = 2;
    hc.name = "rcv";
    Host* rcv = fabric.AddHost(&world, hc, rev_link);
    LinkConfig fwd;
    fwd.rate_bps = 10 * kGbps;
    fwd.queue_limit_bytes = 500'000;
    fwd.ecn = true;
    Link* fwd_link = fabric.AddLink(&world.loop, "fwd", fwd, rcv->wire_in());
    hc.ip = 1;
    hc.name = "snd";
    Host* snd = fabric.AddHost(&world, hc, fwd_link);
    to_sender->set_target(snd->wire_in());
    EndpointPair pair = ConnectHosts(snd, rcv, 1000, 2000);
    pair.a_to_b->SendForever();
    PercentileSampler queue_bytes;
    PeriodicTask sampler(&world.loop, Us(100), Ms(100),
                         [&] { queue_bytes.Add(static_cast<double>(fwd_link->queued_bytes())); });
    world.loop.RunUntil(Ms(100));
    struct Out {
      double p95_queue;
      double gbps;
      double alpha;
      uint64_t marks;
    };
    return Out{queue_bytes.Percentile(95),
               ToGbps(RateBps(static_cast<int64_t>(pair.b_to_a->bytes_delivered()),
                              world.loop.now())),
               pair.a_to_b->dctcp_alpha(), fwd_link->stats().ecn_marks};
  };
  const auto dctcp = run(true);
  const auto reno = run(false);
  // DCTCP sustains throughput with a much shallower queue.
  EXPECT_GT(dctcp.gbps, 8.5);
  EXPECT_GT(dctcp.marks, 0u);
  EXPECT_GT(dctcp.alpha, 0.0);
  EXPECT_LT(dctcp.p95_queue, reno.p95_queue * 0.6);
}

TEST(FlowletLbTest, BurstsStayTogether) {
  LoadBalancer lb(LbPolicy::kFlowlet, 4, 9);
  lb.set_flowlet_gap(Us(100));
  Packet p;
  p.flow = TestFlow();
  p.sent_time = Us(1);
  const size_t first = lb.PickPath(p);
  // Back-to-back packets (sub-gap spacing): same path.
  for (int i = 2; i <= 50; ++i) {
    p.sent_time = Us(i);
    EXPECT_EQ(lb.PickPath(p), first);
  }
}

TEST(FlowletLbTest, GapStartsNewFlowlet) {
  LoadBalancer lb(LbPolicy::kFlowlet, 16, 9);
  lb.set_flowlet_gap(Us(100));
  Packet p;
  p.flow = TestFlow();
  std::set<size_t> paths;
  TimeNs t = Us(1);
  for (int burst = 0; burst < 64; ++burst) {
    p.sent_time = t;
    paths.insert(lb.PickPath(p));
    t += Ms(1);  // > gap: re-hash
  }
  EXPECT_GT(paths.size(), 4u);  // re-hashed many times across 16 paths
}

TEST(FlowletLbTest, FlowsIndependent) {
  LoadBalancer lb(LbPolicy::kFlowlet, 2, 9);
  lb.set_flowlet_gap(Us(100));
  Packet a;
  a.flow = TestFlow(1, 1);
  Packet b;
  b.flow = TestFlow(2, 2);
  a.sent_time = Us(1);
  b.sent_time = Us(1);
  lb.PickPath(a);
  const size_t b_path = lb.PickPath(b);
  // Packets of b keep their path even while a churns.
  for (int i = 2; i < 20; ++i) {
    a.sent_time = Us(i);
    lb.PickPath(a);
    b.sent_time = Us(i);
    EXPECT_EQ(lb.PickPath(b), b_path);
  }
}

TEST(SrptTest, MarksHighWhenNearCompletion) {
  EventLoop loop;
  PacketFactory f;
  class NullWire : public PacketSink {
    void Accept(PacketPtr) override {}
  } wire;
  NicTx nic(&loop, &f, NicTxConfig{}, &wire);
  TcpConfig cfg;
  TcpEndpoint conn(&loop, cfg, TestFlow(), &nic);
  SrptPrioritizer srpt(&conn, 100'000);
  // Large backlog: low priority.
  conn.Send(5'000'000);
  EXPECT_EQ(srpt.Mark(), Priority::kLow);
  // Near completion (small remaining backlog): high priority.
  loop.RunUntil(Ms(1));
  // Drain the backlog artificially by letting the (black-holed) sends go
  // out; backlog shrinks as the window opens... instead test directly with
  // a fresh small-send connection.
  TcpEndpoint small(&loop, cfg, TestFlow(7, 7), &nic);
  SrptPrioritizer srpt_small(&small, 100'000);
  small.Send(10'000);
  EXPECT_EQ(srpt_small.Mark(), Priority::kHigh);
}

}  // namespace
}  // namespace juggler
