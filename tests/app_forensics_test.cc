// App-layer forensics, end to end (ctest label: "fuzz").
//
// The acceptance path for the application resilience layer: a known app
// protocol defect — retries minting fresh idempotency tokens instead of
// reusing the request's, so the server's dedup table cannot recognize the
// duplicate — is planted behind a test-only flag. The fuzz supervisor must
// find it as a "duplicate execution" auditor violation, the shrinker must
// reduce the workload, and the written bundle must replay to the identical
// signature, twice. Alongside: the executor's report carries the app
// counters (absent-tolerantly, so pre-app reports still parse).

#include <gtest/gtest.h>

#include <string>

#include "src/forensics/fuzz_supervisor.h"
#include "src/forensics/repro_bundle.h"
#include "src/forensics/spec_executor.h"
#include "src/util/json.h"

namespace juggler {
namespace {

// Pinned empirically: with plant_app_stale_token armed (link-flap pressure,
// 2 ms attempt timeout) the first sampled specs retry and trip the auditor.
constexpr uint64_t kAppPlantSeed = 7;

TEST(AppForensicsTest, ReportCarriesAppCounters) {
  SpecRunReport rep;
  rep.ok = false;
  rep.violations = 1;
  rep.app_issued = 12;
  rep.app_retries = 5;
  rep.app_timeouts = 1;
  rep.app_executions = 11;
  rep.app_duplicates_suppressed = 4;
  SpecRunReport back;
  std::string error;
  ASSERT_TRUE(SpecRunReport::FromJson(rep.ToJson(), &back, &error)) << error;
  EXPECT_EQ(back.app_issued, 12u);
  EXPECT_EQ(back.app_retries, 5u);
  EXPECT_EQ(back.app_timeouts, 1u);
  EXPECT_EQ(back.app_executions, 11u);
  EXPECT_EQ(back.app_duplicates_suppressed, 4u);

  // Pre-app reports carry no app keys; they must still parse, to zeros.
  Json old_report = SpecRunReport().ToJson();
  Json pruned = Json::Object();
  for (const auto& member : old_report.members()) {
    if (member.first.rfind("app_", 0) != 0) {
      pruned.Set(member.first, member.second);
    }
  }
  ASSERT_TRUE(SpecRunReport::FromJson(pruned, &back, &error)) << error;
  EXPECT_EQ(back.app_issued, 0u);
  EXPECT_EQ(back.app_duplicates_suppressed, 0u);
}

TEST(AppForensicsTest, InProcessRunReportsAppEvidence) {
  ScenarioSpec spec;
  spec.seed = 5;
  spec.family = FaultFamily::kLinkFlap;
  spec.app.kind = AppWorkloadKind::kRpc;
  spec.app.sessions = 2;
  spec.app.requests_per_session = 6;
  spec.app.response_bytes = 12'288;
  spec.app.retry.attempt_timeout = Ms(2);
  const SpecRunReport rep = RunSpecInProcess(spec);
  EXPECT_TRUE(rep.ok) << (rep.violation_messages.empty() ? "not ok"
                                                         : rep.violation_messages.front());
  EXPECT_EQ(rep.app_issued, 2u * 6u);
  EXPECT_GT(rep.app_executions, 0u);
  // Link flaps outlast the 2 ms attempt timeout, so the retry machinery
  // demonstrably worked — and the dedup table absorbed the duplicates.
  EXPECT_GT(rep.app_retries, 0u);
  EXPECT_GT(rep.app_duplicates_suppressed, 0u);
}

TEST(AppForensicsEndToEndTest, FuzzerFindsShrinksAndReplaysStaleTokenBug) {
  const std::string out_dir = testing::TempDir() + "juggler_app_bundles";

  FuzzOptions opt;
  opt.seed = kAppPlantSeed;
  opt.num_specs = 3;
  opt.timeout_ms = 60'000;
  opt.plant_app_stale_token = true;  // arm the app-layer planted defect
  opt.out_dir = out_dir;
  opt.shrink = true;
  opt.shrink_options.max_runs = 40;
  opt.shrink_options.timeout_ms = 60'000;

  const FuzzReport report = RunFuzz(opt);
  ASSERT_GE(report.findings.size(), 1u) << "supervisor failed to find the planted app bug";

  // The stale token makes the server execute one logical request twice.
  const FuzzFinding* found = nullptr;
  for (const FuzzFinding& f : report.findings) {
    if (f.signature.kind == SignatureKind::kInvariantViolation &&
        f.signature.detail.find("duplicate execution") != std::string::npos) {
      found = &f;
      break;
    }
  }
  ASSERT_NE(found, nullptr) << "no duplicate-execution finding among "
                            << report.findings.size() << " findings";

  // The shrunk spec still carries the app workload (the bug lives there),
  // and the shrinker made real progress on it.
  EXPECT_TRUE(found->shrunk.app.enabled());
  EXPECT_TRUE(found->shrunk.app.plant_stale_token);
  EXPECT_GT(found->shrink_accepted, 0);
  EXPECT_LE(found->shrunk.app.sessions * found->shrunk.app.RequestsPerSession(),
            found->spec.app.sessions * found->spec.app.RequestsPerSession());

  // The bundle replays deterministically: identical signature, twice.
  ASSERT_FALSE(found->bundle_path.empty());
  ReproBundle bundle;
  std::string error;
  ASSERT_TRUE(ReadBundleFile(found->bundle_path, &bundle, &error)) << error;
  EXPECT_TRUE(bundle.signature == found->signature);
  for (int i = 0; i < 2; ++i) {
    const ReplayResult replay = ReplayBundle(bundle, /*timeout_ms=*/60'000);
    EXPECT_TRUE(replay.reproduced)
        << "replay " << i << " observed " << SignatureKindName(replay.observed.kind) << ": "
        << replay.observed.detail;
    EXPECT_EQ(replay.observed.fingerprint, bundle.signature.fingerprint);
    // The replayed run's evidence shows the retry machinery at work.
    EXPECT_GT(replay.outcome.report.app_retries, 0u);
  }
}

}  // namespace
}  // namespace juggler
