#include <gtest/gtest.h>

#include "src/gro/segment_builder.h"
#include "src/packet/packet.h"
#include "tests/test_util.h"

namespace juggler {
namespace {

TEST(FiveTupleTest, EqualityAndReverse) {
  const FiveTuple t = TestFlow(10, 20);
  EXPECT_EQ(t, t);
  const FiveTuple r = t.Reversed();
  EXPECT_EQ(r.src_ip, t.dst_ip);
  EXPECT_EQ(r.src_port, t.dst_port);
  EXPECT_EQ(r.Reversed(), t);
  EXPECT_NE(r.Hash(), t.Hash());
}

TEST(FiveTupleTest, HashSpreadsPorts) {
  const uint64_t h1 = TestFlow(1000, 80).Hash();
  const uint64_t h2 = TestFlow(1001, 80).Hash();
  EXPECT_NE(h1, h2);
}

TEST(PacketTest, PureAckDetection) {
  auto ack = MakeAckPacket(TestFlow(), 500);
  EXPECT_TRUE(ack->is_pure_ack());
  auto data = MakeDataPacket(TestFlow(), 0, 100);
  EXPECT_FALSE(data->is_pure_ack());
  EXPECT_EQ(data->end_seq(), 100u);
  EXPECT_EQ(data->wire_bytes(), 100 + kPerPacketWireOverhead);
}

TEST(PacketTest, FactoryAssignsUniqueIds) {
  PacketFactory f;
  auto a = f.Make();
  auto b = f.Make();
  EXPECT_NE(a->id, b->id);
  EXPECT_EQ(f.allocated(), 2u);
}

TEST(PacketPoolTest, RecyclesStorage) {
  PacketPool& pool = PacketPool::ThreadLocal();
  pool.Trim();  // earlier tests may have left releases on the freelist
  const uint64_t acquired_before = pool.acquired();
  const uint64_t recycled_before = pool.recycled();

  Packet* raw;
  {
    PacketPtr p = AllocPacket();
    raw = p.get();
  }  // released back to the pool
  EXPECT_GE(pool.free_size(), 1u);

  // LIFO freelist: the very next acquire reuses the just-released storage.
  PacketPtr q = AllocPacket();
  EXPECT_EQ(q.get(), raw);
  EXPECT_EQ(pool.acquired(), acquired_before + 2);
  EXPECT_EQ(pool.recycled(), recycled_before + 1);
}

// Dirties every field of `p` so a lazy reset would be caught.
void DirtyAllFields(Packet* p) {
  p->id = 0xdeadbeef;
  p->flow = FiveTuple{1, 2, 3, 4, 17};
  p->seq = 99;
  p->payload_len = 1448;
  p->flags = kFlagAck | kFlagPsh | kFlagFin;
  p->ack_seq = 77;
  p->ack_rwnd = 65535;
  p->sack.Add(10, 20);
  p->sack.Add(30, 40);
  p->ece = true;
  p->options_token = 5;
  p->ce_mark = true;
  p->corrupted = true;
  p->priority = Priority::kHigh;
  p->tso_id = 42;
  p->sent_time = 123;
  p->nic_rx_time = 456;
}

TEST(PacketPoolTest, RecycledPacketMatchesDefaultConstructed) {
  // Pins the memset-plus-fixups reset in PacketPool::Acquire: a recycled
  // packet must be indistinguishable from `Packet{}` in every field. If a
  // non-zero default is ever added to Packet without a matching fixup in
  // Acquire, this test fails.
  Packet* raw;
  {
    PacketPtr p = AllocPacket();
    DirtyAllFields(p.get());
    raw = p.get();
  }
  PacketPtr q = AllocPacket();
  ASSERT_EQ(q.get(), raw);  // storage actually recycled

  const Packet fresh{};
  EXPECT_EQ(q->id, fresh.id);
  EXPECT_EQ(q->flow, fresh.flow);
  EXPECT_EQ(q->flow.protocol, 6);  // non-zero default, fixed up after memset
  EXPECT_EQ(q->seq, fresh.seq);
  EXPECT_EQ(q->payload_len, fresh.payload_len);
  EXPECT_EQ(q->flags, fresh.flags);
  EXPECT_EQ(q->ack_seq, fresh.ack_seq);
  EXPECT_EQ(q->ack_rwnd, fresh.ack_rwnd);
  EXPECT_EQ(q->sack.count, fresh.sack.count);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(q->sack.start[i], fresh.sack.start[i]);
    EXPECT_EQ(q->sack.end[i], fresh.sack.end[i]);
  }
  EXPECT_EQ(q->ece, fresh.ece);
  EXPECT_EQ(q->options_token, fresh.options_token);
  EXPECT_EQ(q->ce_mark, fresh.ce_mark);
  EXPECT_EQ(q->corrupted, fresh.corrupted);
  EXPECT_EQ(q->priority, fresh.priority);  // non-zero default (kLow), fixed up
  EXPECT_EQ(q->tso_id, fresh.tso_id);
  EXPECT_EQ(q->sent_time, fresh.sent_time);
  EXPECT_EQ(q->nic_rx_time, fresh.nic_rx_time);
}

TEST(PacketPoolTest, ClonePacketCopiesAllFields) {
  PacketPtr src = AllocPacket();
  DirtyAllFields(src.get());
  PacketPtr copy = ClonePacket(*src);
  EXPECT_NE(copy.get(), src.get());
  EXPECT_EQ(copy->id, src->id);
  EXPECT_EQ(copy->flow, src->flow);
  EXPECT_EQ(copy->seq, src->seq);
  EXPECT_EQ(copy->payload_len, src->payload_len);
  EXPECT_EQ(copy->flags, src->flags);
  EXPECT_EQ(copy->priority, src->priority);
  EXPECT_EQ(copy->tso_id, src->tso_id);
  EXPECT_EQ(copy->sack.count, src->sack.count);
}

TEST(PacketPoolTest, TrimFreesStorageKeepsStats) {
  PacketPool& pool = PacketPool::ThreadLocal();
  { PacketPtr p = AllocPacket(); }
  ASSERT_GE(pool.free_size(), 1u);
  const uint64_t acquired = pool.acquired();
  pool.Trim();
  EXPECT_EQ(pool.free_size(), 0u);
  EXPECT_EQ(pool.acquired(), acquired);
  // The pool still serves (now freshly allocated) packets after a trim.
  PacketPtr p = AllocPacket();
  EXPECT_NE(p.get(), nullptr);
}

TEST(PacketPoolTest, ReleaseStormCompactsToBoundedFreelist) {
  // A release storm — many packets freed with nobody acquiring — must not
  // leave the freelist holding the storm's worth of storage. The watermark
  // policy frees down to max(floor/2, recent demand) once the list crosses
  // the watermark, so after any storm the retained storage is bounded by
  // ~2x the floor, independent of storm size.
  PacketPool& pool = PacketPool::ThreadLocal();
  pool.Trim();  // reset watermark + demand accounting to a known state
  const size_t floor = pool.compact_watermark();
  const uint64_t freed_before = pool.compact_freed();

  const size_t storm = 4 * floor;
  std::vector<PacketPtr> held;
  held.reserve(storm);
  for (size_t i = 0; i < storm; ++i) {
    held.push_back(AllocPacket());
  }
  held.clear();  // the storm: every release lands on the freelist

  EXPECT_LT(pool.free_size(), 2 * floor) << "freelist retained the storm";
  EXPECT_GT(pool.compact_freed(), freed_before) << "compaction never fired";
  // The pool still serves packets normally afterwards.
  PacketPtr p = AllocPacket();
  EXPECT_NE(p.get(), nullptr);
  pool.Trim();
}

TEST(PacketPoolTest, BusySteadyStateNeverCompacts) {
  // Acquire/release churn where the freelist keeps turning over is demand,
  // not a storm: compaction must not fire and throw away storage that is
  // about to be reused.
  PacketPool& pool = PacketPool::ThreadLocal();
  pool.Trim();
  const uint64_t freed_before = pool.compact_freed();
  for (int round = 0; round < 200; ++round) {
    std::vector<PacketPtr> batch;
    for (int i = 0; i < 64; ++i) {
      batch.push_back(AllocPacket());
    }
    batch.clear();
  }
  EXPECT_EQ(pool.compact_freed(), freed_before);
  pool.Trim();
}

TEST(PacketPoolTest, ReleaseBatchRecyclesAndConsumes) {
  PacketPool& pool = PacketPool::ThreadLocal();
  pool.Trim();
  const uint64_t recycled_before = pool.recycled();

  std::vector<PacketPtr> batch;
  for (int i = 0; i < 32; ++i) {
    batch.push_back(AllocPacket());
  }
  batch[7].reset();  // partially consumed batches carry null entries
  const size_t free_before = pool.free_size();
  PacketPool::ReleaseBatch(batch.data(), batch.size());
  EXPECT_EQ(pool.free_size(), free_before + 31);
  for (const PacketPtr& p : batch) {
    EXPECT_EQ(p.get(), nullptr) << "ReleaseBatch must null every entry";
  }
  // The released storage actually recycles.
  PacketPtr p = AllocPacket();
  EXPECT_EQ(pool.recycled(), recycled_before + 1);
  p.reset();
  pool.Trim();
}

TEST(PacketPoolTest, ReleaseBatchRoutesStampedPacketsToOrigin) {
  // Mixed-origin batch: ambient (unstamped) packets recycle locally, while
  // packets stamped by a CrossThreadReturnTag pool that is NOT the ambient
  // pool take the remote Treiber path back to their origin — even when the
  // releasing thread is the same OS thread (shard domains swap pools, not
  // threads).
  PacketPool origin{PacketPool::CrossThreadReturnTag{}};
  PacketPool& ambient = PacketPool::ThreadLocal();
  ambient.Trim();

  std::vector<PacketPtr> batch;
  PacketPool* prev = PacketPool::SwapThreadPool(&origin);
  for (int i = 0; i < 8; ++i) {
    batch.push_back(AllocPacket());  // stamped with &origin
  }
  PacketPool::SwapThreadPool(prev);
  for (int i = 0; i < 8; ++i) {
    batch.push_back(AllocPacket());  // ambient, unstamped
  }
  for (const PacketPtr& p : batch) {
    ASSERT_NE(p.get(), nullptr);
  }

  const size_t ambient_before = ambient.free_size();
  PacketPool::ReleaseBatch(batch.data(), batch.size());
  EXPECT_EQ(ambient.free_size(), ambient_before + 8) << "ambient packets recycle locally";
  EXPECT_EQ(origin.free_size(), 0u) << "remote returns park on the stack until drained";

  // The origin drains its return stack on demand: 8 acquisitions come back
  // recycled, not fresh.
  prev = PacketPool::SwapThreadPool(&origin);
  const uint64_t recycled_before = origin.recycled();
  std::vector<PacketPtr> again;
  for (int i = 0; i < 8; ++i) {
    again.push_back(AllocPacket());
  }
  EXPECT_EQ(origin.recycled(), recycled_before + 8);
  again.clear();
  PacketPool::SwapThreadPool(prev);
}

TEST(PacketPoolTest, RemoteReturnChurnStaysBoundedAndRecycles) {
  // Sustained cross-pool churn: every round hands packets out of the origin
  // pool and releases them while another pool is ambient. The origin must
  // recycle all of them (no allocation leak into the ambient pool) and the
  // freelists must not grow with the number of rounds.
  PacketPool origin{PacketPool::CrossThreadReturnTag{}};
  PacketPool& ambient = PacketPool::ThreadLocal();
  ambient.Trim();
  const size_t ambient_baseline = ambient.free_size();

  uint64_t fresh_after_warmup = 0;
  for (int round = 0; round < 50; ++round) {
    std::vector<PacketPtr> batch;
    PacketPool* prev = PacketPool::SwapThreadPool(&origin);
    for (int i = 0; i < 64; ++i) {
      batch.push_back(AllocPacket());
    }
    PacketPool::SwapThreadPool(prev);
    batch.clear();  // released with ambient pool current -> remote return
    if (round == 0) {
      fresh_after_warmup = origin.acquired() - origin.recycled();
    }
  }
  // After the first round primed the return stack, later rounds recycle:
  // the origin never allocated more than ~2 rounds' worth of storage.
  EXPECT_LE(origin.acquired() - origin.recycled(), fresh_after_warmup + 64);
  EXPECT_EQ(ambient.free_size(), ambient_baseline)
      << "stamped packets leaked into the ambient pool";
}

TEST(SegmentBuilderTest, StartFromPacket) {
  SegmentBuilder b;
  EXPECT_TRUE(b.empty());
  b.Start(*MakeDataPacket(TestFlow(), 1000, kMss));
  EXPECT_FALSE(b.empty());
  EXPECT_EQ(b.start_seq(), 1000u);
  EXPECT_EQ(b.end_seq(), 1000u + kMss);
  EXPECT_EQ(b.mtu_count(), 1u);
}

TEST(SegmentBuilderTest, MergesContiguous) {
  SegmentBuilder b;
  b.Start(*MakeDataPacket(TestFlow(), 0, kMss));
  EXPECT_EQ(b.TryMerge(*MakeDataPacket(TestFlow(), kMss, kMss), kMaxTsoPayload),
            SegmentBuilder::MergeResult::kMerged);
  EXPECT_EQ(b.payload_len(), 2 * kMss);
  EXPECT_EQ(b.mtu_count(), 2u);
}

TEST(SegmentBuilderTest, RefusesGap) {
  SegmentBuilder b;
  b.Start(*MakeDataPacket(TestFlow(), 0, kMss));
  EXPECT_EQ(b.TryMerge(*MakeDataPacket(TestFlow(), 2 * kMss, kMss), kMaxTsoPayload),
            SegmentBuilder::MergeResult::kRefusedOoo);
  EXPECT_EQ(b.payload_len(), kMss);  // unchanged
}

TEST(SegmentBuilderTest, RefusesMetaMismatch) {
  SegmentBuilder b;
  b.Start(*MakeDataPacket(TestFlow(), 0, kMss));
  auto p = MakeDataPacket(TestFlow(), kMss, kMss);
  p->options_token = 99;
  EXPECT_EQ(b.TryMerge(*p, kMaxTsoPayload), SegmentBuilder::MergeResult::kRefusedMeta);
  auto q = MakeDataPacket(TestFlow(), kMss, kMss);
  q->ce_mark = true;
  EXPECT_EQ(b.TryMerge(*q, kMaxTsoPayload), SegmentBuilder::MergeResult::kRefusedMeta);
}

TEST(SegmentBuilderTest, SizeLimit) {
  SegmentBuilder b;
  b.Start(*MakeDataPacket(TestFlow(), 0, kMss));
  Seq next = kMss;
  for (int i = 0; i < 43; ++i) {
    EXPECT_EQ(b.TryMerge(*MakeDataPacket(TestFlow(), next, kMss), kMaxTsoPayload),
              SegmentBuilder::MergeResult::kMerged);
    next += kMss;
  }
  // 45th MTU fills the segment exactly: merged but final.
  EXPECT_EQ(b.TryMerge(*MakeDataPacket(TestFlow(), next, kMss), kMaxTsoPayload),
            SegmentBuilder::MergeResult::kMergedFinal);
  next += kMss;
  EXPECT_EQ(b.payload_len(), kMaxTsoPayload);
  // 46th does not fit.
  EXPECT_EQ(b.TryMerge(*MakeDataPacket(TestFlow(), next, kMss), kMaxTsoPayload),
            SegmentBuilder::MergeResult::kRefusedSize);
}

TEST(SegmentBuilderTest, PshMarksFinalAndNeedsFlush) {
  SegmentBuilder b;
  b.Start(*MakeDataPacket(TestFlow(), 0, kMss));
  EXPECT_FALSE(b.needs_flush());
  EXPECT_EQ(b.TryMerge(*MakeDataPacket(TestFlow(), kMss, kMss, kFlagAck | kFlagPsh),
                       kMaxTsoPayload),
            SegmentBuilder::MergeResult::kMergedFinal);
  EXPECT_TRUE((b.segment().flags & kFlagPsh) != 0);
}

TEST(SegmentBuilderTest, StartWithPshNeedsFlush) {
  SegmentBuilder b;
  b.Start(*MakeDataPacket(TestFlow(), 0, 150, kFlagAck | kFlagPsh));
  EXPECT_TRUE(b.needs_flush());
}

TEST(SegmentBuilderTest, TakeResets) {
  SegmentBuilder b;
  b.Start(*MakeDataPacket(TestFlow(), 100, kMss));
  const Segment s = b.Take();
  EXPECT_EQ(s.seq, 100u);
  EXPECT_EQ(s.payload_len, kMss);
  EXPECT_TRUE(b.empty());
}

TEST(SegmentBuilderTest, AppendJoinsRuns) {
  SegmentBuilder a;
  a.Start(*MakeDataPacket(TestFlow(), 0, kMss));
  SegmentBuilder b;
  b.Start(*MakeDataPacket(TestFlow(), kMss, kMss, kFlagAck | kFlagPsh));
  a.Append(std::move(b));
  EXPECT_EQ(a.payload_len(), 2 * kMss);
  EXPECT_EQ(a.mtu_count(), 2u);
  EXPECT_TRUE(a.needs_flush());
}

TEST(SegmentBuilderTest, TracksRxTimes) {
  SegmentBuilder b;
  b.Start(*MakeDataPacket(TestFlow(), 0, kMss, kFlagAck, /*rx_time=*/100));
  b.TryMerge(*MakeDataPacket(TestFlow(), kMss, kMss, kFlagAck, /*rx_time=*/250), kMaxTsoPayload);
  EXPECT_EQ(b.segment().first_rx_time, 100);
  EXPECT_EQ(b.segment().last_rx_time, 250);
}

TEST(SegmentBuilderTest, LatestAckWins) {
  SegmentBuilder b;
  auto p1 = MakeDataPacket(TestFlow(), 0, kMss);
  p1->ack_seq = 10;
  b.Start(*p1);
  auto p2 = MakeDataPacket(TestFlow(), kMss, kMss);
  p2->ack_seq = 20;
  b.TryMerge(*p2, kMaxTsoPayload);
  EXPECT_EQ(b.segment().ack_seq, 20u);
}

TEST(SegmentBuilderTest, WrapAroundMerge) {
  SegmentBuilder b;
  const Seq near_wrap = 0xffffffffu - kMss + 1;
  b.Start(*MakeDataPacket(TestFlow(), near_wrap, kMss));
  EXPECT_EQ(b.end_seq(), 0u);  // wrapped
  EXPECT_EQ(b.TryMerge(*MakeDataPacket(TestFlow(), 0, kMss), kMaxTsoPayload),
            SegmentBuilder::MergeResult::kMerged);
  EXPECT_EQ(b.end_seq(), kMss);
}

}  // namespace
}  // namespace juggler
