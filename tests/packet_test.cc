#include <gtest/gtest.h>

#include "src/gro/segment_builder.h"
#include "src/packet/packet.h"
#include "tests/test_util.h"

namespace juggler {
namespace {

TEST(FiveTupleTest, EqualityAndReverse) {
  const FiveTuple t = TestFlow(10, 20);
  EXPECT_EQ(t, t);
  const FiveTuple r = t.Reversed();
  EXPECT_EQ(r.src_ip, t.dst_ip);
  EXPECT_EQ(r.src_port, t.dst_port);
  EXPECT_EQ(r.Reversed(), t);
  EXPECT_NE(r.Hash(), t.Hash());
}

TEST(FiveTupleTest, HashSpreadsPorts) {
  const uint64_t h1 = TestFlow(1000, 80).Hash();
  const uint64_t h2 = TestFlow(1001, 80).Hash();
  EXPECT_NE(h1, h2);
}

TEST(PacketTest, PureAckDetection) {
  auto ack = MakeAckPacket(TestFlow(), 500);
  EXPECT_TRUE(ack->is_pure_ack());
  auto data = MakeDataPacket(TestFlow(), 0, 100);
  EXPECT_FALSE(data->is_pure_ack());
  EXPECT_EQ(data->end_seq(), 100u);
  EXPECT_EQ(data->wire_bytes(), 100 + kPerPacketWireOverhead);
}

TEST(PacketTest, FactoryAssignsUniqueIds) {
  PacketFactory f;
  auto a = f.Make();
  auto b = f.Make();
  EXPECT_NE(a->id, b->id);
  EXPECT_EQ(f.allocated(), 2u);
}

TEST(SegmentBuilderTest, StartFromPacket) {
  SegmentBuilder b;
  EXPECT_TRUE(b.empty());
  b.Start(*MakeDataPacket(TestFlow(), 1000, kMss));
  EXPECT_FALSE(b.empty());
  EXPECT_EQ(b.start_seq(), 1000u);
  EXPECT_EQ(b.end_seq(), 1000u + kMss);
  EXPECT_EQ(b.mtu_count(), 1u);
}

TEST(SegmentBuilderTest, MergesContiguous) {
  SegmentBuilder b;
  b.Start(*MakeDataPacket(TestFlow(), 0, kMss));
  EXPECT_EQ(b.TryMerge(*MakeDataPacket(TestFlow(), kMss, kMss), kMaxTsoPayload),
            SegmentBuilder::MergeResult::kMerged);
  EXPECT_EQ(b.payload_len(), 2 * kMss);
  EXPECT_EQ(b.mtu_count(), 2u);
}

TEST(SegmentBuilderTest, RefusesGap) {
  SegmentBuilder b;
  b.Start(*MakeDataPacket(TestFlow(), 0, kMss));
  EXPECT_EQ(b.TryMerge(*MakeDataPacket(TestFlow(), 2 * kMss, kMss), kMaxTsoPayload),
            SegmentBuilder::MergeResult::kRefusedOoo);
  EXPECT_EQ(b.payload_len(), kMss);  // unchanged
}

TEST(SegmentBuilderTest, RefusesMetaMismatch) {
  SegmentBuilder b;
  b.Start(*MakeDataPacket(TestFlow(), 0, kMss));
  auto p = MakeDataPacket(TestFlow(), kMss, kMss);
  p->options_token = 99;
  EXPECT_EQ(b.TryMerge(*p, kMaxTsoPayload), SegmentBuilder::MergeResult::kRefusedMeta);
  auto q = MakeDataPacket(TestFlow(), kMss, kMss);
  q->ce_mark = true;
  EXPECT_EQ(b.TryMerge(*q, kMaxTsoPayload), SegmentBuilder::MergeResult::kRefusedMeta);
}

TEST(SegmentBuilderTest, SizeLimit) {
  SegmentBuilder b;
  b.Start(*MakeDataPacket(TestFlow(), 0, kMss));
  Seq next = kMss;
  for (int i = 0; i < 43; ++i) {
    EXPECT_EQ(b.TryMerge(*MakeDataPacket(TestFlow(), next, kMss), kMaxTsoPayload),
              SegmentBuilder::MergeResult::kMerged);
    next += kMss;
  }
  // 45th MTU fills the segment exactly: merged but final.
  EXPECT_EQ(b.TryMerge(*MakeDataPacket(TestFlow(), next, kMss), kMaxTsoPayload),
            SegmentBuilder::MergeResult::kMergedFinal);
  next += kMss;
  EXPECT_EQ(b.payload_len(), kMaxTsoPayload);
  // 46th does not fit.
  EXPECT_EQ(b.TryMerge(*MakeDataPacket(TestFlow(), next, kMss), kMaxTsoPayload),
            SegmentBuilder::MergeResult::kRefusedSize);
}

TEST(SegmentBuilderTest, PshMarksFinalAndNeedsFlush) {
  SegmentBuilder b;
  b.Start(*MakeDataPacket(TestFlow(), 0, kMss));
  EXPECT_FALSE(b.needs_flush());
  EXPECT_EQ(b.TryMerge(*MakeDataPacket(TestFlow(), kMss, kMss, kFlagAck | kFlagPsh),
                       kMaxTsoPayload),
            SegmentBuilder::MergeResult::kMergedFinal);
  EXPECT_TRUE((b.segment().flags & kFlagPsh) != 0);
}

TEST(SegmentBuilderTest, StartWithPshNeedsFlush) {
  SegmentBuilder b;
  b.Start(*MakeDataPacket(TestFlow(), 0, 150, kFlagAck | kFlagPsh));
  EXPECT_TRUE(b.needs_flush());
}

TEST(SegmentBuilderTest, TakeResets) {
  SegmentBuilder b;
  b.Start(*MakeDataPacket(TestFlow(), 100, kMss));
  const Segment s = b.Take();
  EXPECT_EQ(s.seq, 100u);
  EXPECT_EQ(s.payload_len, kMss);
  EXPECT_TRUE(b.empty());
}

TEST(SegmentBuilderTest, AppendJoinsRuns) {
  SegmentBuilder a;
  a.Start(*MakeDataPacket(TestFlow(), 0, kMss));
  SegmentBuilder b;
  b.Start(*MakeDataPacket(TestFlow(), kMss, kMss, kFlagAck | kFlagPsh));
  a.Append(std::move(b));
  EXPECT_EQ(a.payload_len(), 2 * kMss);
  EXPECT_EQ(a.mtu_count(), 2u);
  EXPECT_TRUE(a.needs_flush());
}

TEST(SegmentBuilderTest, TracksRxTimes) {
  SegmentBuilder b;
  b.Start(*MakeDataPacket(TestFlow(), 0, kMss, kFlagAck, /*rx_time=*/100));
  b.TryMerge(*MakeDataPacket(TestFlow(), kMss, kMss, kFlagAck, /*rx_time=*/250), kMaxTsoPayload);
  EXPECT_EQ(b.segment().first_rx_time, 100);
  EXPECT_EQ(b.segment().last_rx_time, 250);
}

TEST(SegmentBuilderTest, LatestAckWins) {
  SegmentBuilder b;
  auto p1 = MakeDataPacket(TestFlow(), 0, kMss);
  p1->ack_seq = 10;
  b.Start(*p1);
  auto p2 = MakeDataPacket(TestFlow(), kMss, kMss);
  p2->ack_seq = 20;
  b.TryMerge(*p2, kMaxTsoPayload);
  EXPECT_EQ(b.segment().ack_seq, 20u);
}

TEST(SegmentBuilderTest, WrapAroundMerge) {
  SegmentBuilder b;
  const Seq near_wrap = 0xffffffffu - kMss + 1;
  b.Start(*MakeDataPacket(TestFlow(), near_wrap, kMss));
  EXPECT_EQ(b.end_seq(), 0u);  // wrapped
  EXPECT_EQ(b.TryMerge(*MakeDataPacket(TestFlow(), 0, kMss), kMaxTsoPayload),
            SegmentBuilder::MergeResult::kMerged);
  EXPECT_EQ(b.end_seq(), kMss);
}

}  // namespace
}  // namespace juggler
