// Property tests: Juggler is fed randomized permutations of a packet stream
// and must uphold its core invariants.
//
//  P1 (no loss, no duplication): with unique input packets, every payload
//     byte is delivered exactly once — for ANY arrival order, any table
//     size, any timeout configuration. Evictions flush, never drop.
//  P2 (best-effort ordering): when the reordering window fits inside
//     ofo_timeout and the gro_table never overflows, delivered segments are
//     strictly in sequence order — the transport sees zero reordering.
//  P3 (bounded state): the flow table never exceeds max_flows, regardless of
//     how many flows the input touches.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <tuple>
#include <utility>
#include <vector>

#include "src/core/juggler.h"
#include "src/obs/flight_recorder.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace juggler {
namespace {

// Displace each element of [0, n) by up to `window` positions.
std::vector<uint32_t> WindowedShuffle(uint32_t n, uint32_t window, Rng* rng) {
  std::vector<std::pair<double, uint32_t>> keyed;
  keyed.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    const double jitter = window == 0 ? 0.0 : rng->NextDouble() * static_cast<double>(window);
    keyed.emplace_back(static_cast<double>(i) + jitter, i);
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<uint32_t> out;
  out.reserve(n);
  for (const auto& [key, index] : keyed) {
    out.push_back(index);
  }
  return out;
}

// Validates delivered segments cover [0, n*kMss) exactly once; returns the
// number of ordering violations (segment starting before the previous end).
struct CoverageResult {
  bool exact = false;
  uint32_t order_violations = 0;
};

CoverageResult CheckCoverage(const std::vector<Segment>& delivered, uint64_t total_bytes) {
  CoverageResult result;
  std::map<uint64_t, uint64_t> ranges;  // start -> end, must not overlap
  Seq prev_end = 0;
  bool first = true;
  for (const auto& s : delivered) {
    if (s.payload_len == 0) {
      continue;
    }
    if (!first && SeqBefore(s.seq, prev_end)) {
      ++result.order_violations;
    }
    first = false;
    prev_end = SeqMax(prev_end, s.end_seq());
    const uint64_t start = s.seq;  // test streams stay below 2^32
    const uint64_t end = start + s.payload_len;
    auto [it, inserted] = ranges.emplace(start, end);
    if (!inserted) {
      return result;  // duplicate start: not exact
    }
  }
  // Ranges must tile [0, total_bytes) with no gaps or overlaps.
  uint64_t cursor = 0;
  for (const auto& [start, end] : ranges) {
    if (start != cursor) {
      return result;
    }
    cursor = end;
  }
  result.exact = cursor == total_bytes;
  return result;
}

struct PropertyParams {
  uint64_t seed;
  uint32_t window;      // reorder displacement, in packets
  size_t table_size;
  uint32_t num_flows;
};

class JugglerPropertyTest : public ::testing::TestWithParam<PropertyParams> {};

TEST_P(JugglerPropertyTest, NoLossNoDuplicationUnderAnyReordering) {
  const PropertyParams p = GetParam();
  JugglerConfig config;
  config.max_flows = p.table_size;
  GroHarness h(
      [config](const CpuCostModel* c) { return std::make_unique<Juggler>(c, config); });
  Rng rng(p.seed);

  const uint32_t packets_per_flow = 300;
  // Interleave flows round-robin, each flow's packets windowed-shuffled.
  std::vector<std::vector<uint32_t>> orders;
  for (uint32_t f = 0; f < p.num_flows; ++f) {
    orders.push_back(WindowedShuffle(packets_per_flow, p.window, &rng));
  }
  size_t max_table = 0;
  for (uint32_t i = 0; i < packets_per_flow; ++i) {
    for (uint32_t f = 0; f < p.num_flows; ++f) {
      const Seq seq = orders[f][i] * kMss;
      h.Receive(MakeDataPacket(TestFlow(static_cast<uint16_t>(f + 1), 9), seq, kMss));
      max_table = std::max(max_table, static_cast<Juggler*>(h.engine())->flow_table_size());
    }
    // A polling round every few packets, with time advancing.
    if (i % 4 == 3) {
      h.Advance(Us(3));
      h.PollComplete();
      h.MaybeFireTimer();
    }
  }
  // Drain: let every timeout fire.
  for (int i = 0; i < 10; ++i) {
    h.Advance(Ms(1));
    h.PollComplete();
    h.MaybeFireTimer();
  }

  // P3: bounded state.
  EXPECT_LE(max_table, p.table_size);

  // P1: per-flow exact coverage.
  std::map<uint16_t, std::vector<Segment>> by_flow;
  for (const auto& s : h.delivered()) {
    by_flow[s.flow.src_port].push_back(s);
  }
  ASSERT_EQ(by_flow.size(), p.num_flows);
  for (const auto& [port, segments] : by_flow) {
    const CoverageResult cov =
        CheckCoverage(segments, static_cast<uint64_t>(packets_per_flow) * kMss);
    EXPECT_TRUE(cov.exact) << "flow " << port << " coverage not exact";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, JugglerPropertyTest,
    ::testing::Values(
        PropertyParams{1, 0, 64, 1},     // in-order baseline
        PropertyParams{2, 3, 64, 1},     // light reorder
        PropertyParams{3, 20, 64, 1},    // heavy reorder
        PropertyParams{4, 100, 64, 1},   // extreme reorder
        PropertyParams{5, 20, 64, 8},    // multi-flow
        PropertyParams{6, 20, 4, 8},     // table thrashing (evictions)
        PropertyParams{7, 50, 2, 16},    // severe thrashing
        PropertyParams{8, 7, 1, 4},      // degenerate single-entry table
        PropertyParams{9, 200, 8, 4},    // reorder beyond ofo window
        PropertyParams{10, 35, 16, 12}),
    [](const ::testing::TestParamInfo<PropertyParams>& info) {
      const PropertyParams& p = info.param;
      return "seed" + std::to_string(p.seed) + "_w" + std::to_string(p.window) + "_t" +
             std::to_string(p.table_size) + "_f" + std::to_string(p.num_flows);
    });

class JugglerOrderingTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JugglerOrderingTest, HidesReorderingWhenWindowFitsTimeouts) {
  // P2: ample table + ofo_timeout larger than the reordering extent ->
  // strictly in-order delivery, no loss-recovery transitions.
  JugglerConfig config;
  config.max_flows = 64;
  config.ofo_timeout = Ms(10);
  GroHarness h(
      [config](const CpuCostModel* c) { return std::make_unique<Juggler>(c, config); });
  Rng rng(GetParam());

  const uint32_t n = 2000;
  const std::vector<uint32_t> order = WindowedShuffle(n, 30, &rng);
  const FiveTuple flow = TestFlow();
  for (uint32_t i = 0; i < n; ++i) {
    h.Receive(MakeDataPacket(flow, order[i] * kMss, kMss));
    if (i % 8 == 7) {
      h.Advance(Us(2));
      h.PollComplete();
      h.MaybeFireTimer();
    }
  }
  h.Advance(Ms(20));
  h.PollComplete();
  h.MaybeFireTimer();

  const CoverageResult cov = CheckCoverage(h.delivered(), static_cast<uint64_t>(n) * kMss);
  EXPECT_TRUE(cov.exact);
  EXPECT_EQ(cov.order_violations, 0u);
  const auto* engine = static_cast<Juggler*>(h.engine());
  EXPECT_EQ(engine->juggler_stats().ofo_timeout_events, 0u);
  EXPECT_EQ(engine->juggler_stats().loss_recovery_entries, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JugglerOrderingTest, ::testing::Range<uint64_t>(1, 13));

class JugglerLossTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JugglerLossTest, LostPacketsFlushRestViaOfoTimeout) {
  // Drop some packets from the stream entirely: Juggler must flush the rest
  // (TCP needs the holes visible to recover) and enter loss recovery.
  JugglerConfig config;
  GroHarness h(
      [config](const CpuCostModel* c) { return std::make_unique<Juggler>(c, config); });
  Rng rng(GetParam());

  const uint32_t n = 500;
  const FiveTuple flow = TestFlow();
  uint64_t delivered_expected = 0;
  for (uint32_t i = 0; i < n; ++i) {
    if (rng.NextBool(0.02)) {
      continue;  // lost on the wire
    }
    delivered_expected += kMss;
    h.Receive(MakeDataPacket(flow, i * kMss, kMss));
    if (i % 8 == 7) {
      h.Advance(Us(3));
      h.PollComplete();
      h.MaybeFireTimer();
    }
  }
  for (int i = 0; i < 10; ++i) {
    h.Advance(Us(100));
    h.PollComplete();
    h.MaybeFireTimer();
  }
  EXPECT_EQ(TotalPayload(h.delivered()), delivered_expected);
  EXPECT_GT(static_cast<Juggler*>(h.engine())->juggler_stats().ofo_timeout_events, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JugglerLossTest, ::testing::Range<uint64_t>(1, 9));

// P4 (phase machine, §4 / Figure 5): every phase transition the flight
// recorder captures must be an edge of the paper's phase diagram, the trace
// must agree with the phase_transitions[][] counters, and the per-phase byte
// split must conserve payload (enqueued = flushed + evicted + held, with
// held = 0 after a full drain).
class JugglerPhaseMachineTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JugglerPhaseMachineTest, TraceTransitionsArePermittedFigure5Edges) {
  // Permitted edges, as (from, to) with kFlowPhaseNone = creation.
  const std::set<std::pair<int, int>> permitted = {
      {kFlowPhaseNone, static_cast<int>(FlowPhase::kBuildUp)},
      {static_cast<int>(FlowPhase::kBuildUp), static_cast<int>(FlowPhase::kActiveMerge)},
      {static_cast<int>(FlowPhase::kBuildUp), static_cast<int>(FlowPhase::kPostMerge)},
      {static_cast<int>(FlowPhase::kBuildUp), static_cast<int>(FlowPhase::kLossRecovery)},
      {static_cast<int>(FlowPhase::kActiveMerge), static_cast<int>(FlowPhase::kPostMerge)},
      {static_cast<int>(FlowPhase::kActiveMerge),
       static_cast<int>(FlowPhase::kLossRecovery)},
      {static_cast<int>(FlowPhase::kPostMerge), static_cast<int>(FlowPhase::kActiveMerge)},
      {static_cast<int>(FlowPhase::kLossRecovery),
       static_cast<int>(FlowPhase::kActiveMerge)},
  };

  // A stream nasty enough to visit every phase: heavy reordering (loss
  // recovery), a small table (evictions + reincarnations), several flows.
  JugglerConfig config;
  config.max_flows = 4;
  GroHarness h(
      [config](const CpuCostModel* c) { return std::make_unique<Juggler>(c, config); });
  FlightRecorder recorder(/*shard=*/0, /*capacity=*/1u << 18);
  h.AttachRecorder(&recorder);
  Rng rng(GetParam());

  const uint32_t packets_per_flow = 200;
  const uint32_t num_flows = 8;
  std::vector<std::vector<uint32_t>> orders;
  for (uint32_t f = 0; f < num_flows; ++f) {
    orders.push_back(WindowedShuffle(packets_per_flow, 40, &rng));
  }
  for (uint32_t i = 0; i < packets_per_flow; ++i) {
    for (uint32_t f = 0; f < num_flows; ++f) {
      h.Receive(MakeDataPacket(TestFlow(static_cast<uint16_t>(f + 1), 9),
                               orders[f][i] * kMss, kMss));
    }
    if (i % 4 == 3) {
      h.Advance(Us(3));
      h.PollComplete();
      h.MaybeFireTimer();
    }
  }
  for (int i = 0; i < 10; ++i) {
    h.Advance(Ms(1));
    h.PollComplete();
    h.MaybeFireTimer();
  }

  const auto* engine = static_cast<Juggler*>(h.engine());
  const JugglerStats& stats = engine->juggler_stats();

  // Every recorded transition is a permitted edge, and the trace tally
  // matches the stats counters edge-for-edge (the recorder never filled, so
  // nothing was overwritten).
  ASSERT_EQ(recorder.dropped(), 0u) << "recorder capacity too small for this stream";
  uint64_t traced[kFlowPhaseCount + 1][kFlowPhaseCount] = {};
  uint64_t phase_event_count = 0;
  for (const TraceEvent& e : recorder.Snapshot()) {
    if (e.kind != TraceKind::kPhase) {
      continue;
    }
    ++phase_event_count;
    const int from = static_cast<int>(e.a);
    const int to = static_cast<int>(e.b);
    ASSERT_GE(from, 0);
    ASSERT_LE(from, kFlowPhaseNone);
    ASSERT_GE(to, 0);
    ASSERT_LT(to, kFlowPhaseCount);
    EXPECT_TRUE(permitted.count({from, to}) != 0)
        << "forbidden phase transition " << from << " -> " << to;
    ++traced[from][to];
  }
  EXPECT_GT(phase_event_count, 0u) << "stream never exercised the phase machine";
  uint64_t loss_entries_traced = 0;
  for (int from = 0; from <= kFlowPhaseCount; ++from) {
    for (int to = 0; to < kFlowPhaseCount; ++to) {
      EXPECT_EQ(traced[from][to], stats.phase_transitions[from][to])
          << "trace/stats disagree on edge " << from << " -> " << to;
      if (to == static_cast<int>(FlowPhase::kLossRecovery)) {
        loss_entries_traced += traced[from][to];
      }
    }
  }
  EXPECT_EQ(loss_entries_traced, stats.loss_recovery_entries);
  EXPECT_EQ(traced[kFlowPhaseNone][static_cast<int>(FlowPhase::kBuildUp)],
            stats.flows_created);

  // Packet conservation, split by phase. After the drain every OOO queue is
  // empty, so held = 0 and the books must balance exactly.
  uint64_t held = 0;
  for (const auto& flow : engine->Audit().flows) {
    held += flow.buffered_bytes;
  }
  ASSERT_EQ(held, 0u) << "drain left buffered payload behind";
  uint64_t enqueued = 0;
  uint64_t flushed = 0;
  for (int phase = 0; phase < kFlowPhaseCount; ++phase) {
    enqueued += stats.enqueued_bytes_by_phase[phase];
    flushed += stats.flushed_bytes_by_phase[phase];
  }
  EXPECT_EQ(stats.buffered_bytes_in, enqueued);
  EXPECT_EQ(stats.buffered_bytes_out, flushed + stats.evicted_bytes);
  EXPECT_EQ(enqueued, flushed + stats.evicted_bytes) << "per-phase conservation violated";
  // The post-merge phase holds an empty queue by definition: nothing can be
  // enqueued to it (arrivals transition the flow out first).
  EXPECT_EQ(stats.enqueued_bytes_by_phase[static_cast<int>(FlowPhase::kPostMerge)], 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JugglerPhaseMachineTest, ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace juggler
