// Shared helpers for unit tests: packet construction and a standalone GRO
// harness that drives an engine the way the NIC would (context wiring,
// segment collection, manual timer bookkeeping) without a simulator.

#ifndef JUGGLER_TESTS_TEST_UTIL_H_
#define JUGGLER_TESTS_TEST_UTIL_H_

#include <memory>
#include <utility>
#include <vector>

#include "src/cpu/cost_model.h"
#include "src/gro/gro_engine.h"
#include "src/packet/packet.h"
#include "src/util/time.h"

namespace juggler {

inline FiveTuple TestFlow(uint16_t src_port = 1000, uint16_t dst_port = 2000) {
  FiveTuple t;
  t.src_ip = 0x0a000001;
  t.dst_ip = 0x0a000002;
  t.src_port = src_port;
  t.dst_port = dst_port;
  return t;
}

inline PacketPtr MakeDataPacket(const FiveTuple& flow, Seq seq, uint32_t len,
                                uint8_t flags = kFlagAck, TimeNs rx_time = 0) {
  PacketPtr p = AllocPacket();
  p->flow = flow;
  p->seq = seq;
  p->payload_len = len;
  p->flags = flags;
  p->nic_rx_time = rx_time;
  return p;
}

inline PacketPtr MakeAckPacket(const FiveTuple& flow, Seq ack, uint32_t rwnd = 1 << 20) {
  PacketPtr p = AllocPacket();
  p->flow = flow;
  p->seq = 0;
  p->payload_len = 0;
  p->flags = kFlagAck;
  p->ack_seq = ack;
  p->ack_rwnd = rwnd;
  return p;
}

// Drives a GroEngine directly: the test controls the clock, observes
// delivered segments, and fires the engine's timer by hand.
class GroHarness : public GroHost {
 public:
  // `make` is a factory (const CpuCostModel*) -> std::unique_ptr<GroEngine>;
  // the harness owns the cost model the engine points at.
  template <typename MakeFn>
  explicit GroHarness(MakeFn make) : engine_(make(&costs_)) {
    GroEngine::Context ctx;
    ctx.now = &now_;
    ctx.host = this;
    engine_->set_context(ctx);
  }

  void GroDeliver(Segment s) override { delivered_.push_back(std::move(s)); }
  void GroArmTimer(TimeNs when) override { armed_timer_ = when; }

  void set_now(TimeNs t) { now_ = t; }
  void Advance(TimeNs dt) { now_ += dt; }

  TimeNs Receive(PacketPtr p) {
    p->nic_rx_time = now_;
    return engine_->Receive(std::move(p));
  }
  // Batch delivery, as NicRx::DoPoll hands a poll round off. Stamps rx
  // times like Receive; the engine consumes (nulls) the pointers.
  TimeNs ReceiveBatch(PacketPtr* packets, size_t count) {
    for (size_t i = 0; i < count; ++i) {
      packets[i]->nic_rx_time = now_;
    }
    return engine_->ReceiveBatch(packets, count);
  }
  TimeNs PollComplete() { return engine_->PollComplete(); }

  // Fires the armed timer if its deadline has passed.
  bool MaybeFireTimer() {
    if (armed_timer_ == GroEngine::kNoTimer || armed_timer_ > now_) {
      return false;
    }
    armed_timer_ = GroEngine::kNoTimer;
    engine_->OnTimer();
    return true;
  }

  // Re-wires the engine's context with a flight recorder attached (tests of
  // the observability hooks). Null detaches again.
  void AttachRecorder(FlightRecorder* recorder) {
    GroEngine::Context ctx;
    ctx.now = &now_;
    ctx.host = this;
    ctx.recorder = recorder;
    engine_->set_context(ctx);
  }

  GroEngine* engine() { return engine_.get(); }
  const std::vector<Segment>& delivered() const { return delivered_; }
  std::vector<Segment> TakeDelivered() { return std::exchange(delivered_, {}); }
  TimeNs armed_timer() const { return armed_timer_; }

  const CpuCostModel* costs() const { return &costs_; }

 private:
  CpuCostModel costs_;
  std::unique_ptr<GroEngine> engine_;
  TimeNs now_ = 0;
  std::vector<Segment> delivered_;
  TimeNs armed_timer_ = GroEngine::kNoTimer;
};

// Total payload bytes across delivered segments.
inline uint64_t TotalPayload(const std::vector<Segment>& segments) {
  uint64_t total = 0;
  for (const auto& s : segments) {
    total += s.payload_len;
  }
  return total;
}

}  // namespace juggler

#endif  // JUGGLER_TESTS_TEST_UTIL_H_
