// FlushReasonAudit: every Table-2 flush condition, driven individually.
//
// For each engine x reason pair in the expected coverage matrix below, a
// dedicated scenario drives exactly that flush condition through a bare
// GroHarness and the test asserts that
//
//   * the engine's flush_by_reason counter for the targeted reason moved,
//   * no reason OUTSIDE the engine's permitted set ever fired, and
//   * PublishGroStats mirrors every per-reason count into the metrics
//     registry under the exact "label/reason" key the dashboards use.
//
// The coverage loops at the bottom fail loudly — naming the engine and the
// reason — when a permitted reason has no scenario or a scenario stops
// exercising its reason, so the matrix cannot silently rot. The union of
// the three engines' permitted sets must cover all of Table 2.

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "src/core/juggler.h"
#include "src/gro/baseline_gro.h"
#include "src/gro/presto_gro.h"
#include "src/obs/metrics.h"
#include "tests/test_util.h"

namespace juggler {
namespace {

using Drive = std::function<void(GroHarness&)>;
using DriveMap = std::map<FlushReason, Drive>;
using Factory = std::function<std::unique_ptr<GroEngine>(const CpuCostModel*)>;

// ----------------------------------------------------------------- matrix --

// Which Table-2 reasons each engine is ALLOWED to emit. Everything else
// firing is a bug (e.g. Juggler must never flush kPollEnd — surviving poll
// boundaries is its whole point; standard GRO has no timers, so neither
// timeout reason may ever appear in its stats).
const std::set<FlushReason> kJugglerAllowed = {
    FlushReason::kSeqBeforeNext, FlushReason::kSizeLimit,  FlushReason::kFlags,
    FlushReason::kInseqTimeout,  FlushReason::kOfoTimeout, FlushReason::kEviction,
    FlushReason::kPureAck,
};
const std::set<FlushReason> kStandardAllowed = {
    FlushReason::kPollEnd,    FlushReason::kFlags,        FlushReason::kSizeLimit,
    FlushReason::kOutOfOrder, FlushReason::kMetaMismatch, FlushReason::kPureAck,
};
const std::set<FlushReason> kPrestoAllowed = {
    FlushReason::kSeqBeforeNext, FlushReason::kSizeLimit, FlushReason::kMetaMismatch,
    FlushReason::kPollEnd,       FlushReason::kOfoTimeout, FlushReason::kPureAck,
    FlushReason::kFlags,
};

PacketPtr WithCeMark(PacketPtr p) {
  p->ce_mark = true;
  return p;
}

// Feed `n` in-order MSS packets starting at seq 0.
void FeedInOrder(GroHarness& h, int n) {
  const FiveTuple flow = TestFlow();
  for (int i = 0; i < n; ++i) {
    h.Receive(MakeDataPacket(flow, static_cast<Seq>(i) * kMss, kMss));
  }
}

// ---------------------------------------------------------------- drivers --

DriveMap JugglerDrives() {
  DriveMap d;
  d[FlushReason::kPureAck] = [](GroHarness& h) {
    h.Receive(MakeAckPacket(TestFlow(), 0));
  };
  // Table 2 row 3: PSH forces eager delivery of the merged run.
  d[FlushReason::kFlags] = [](GroHarness& h) {
    h.Receive(MakeDataPacket(TestFlow(), 0, kMss, kFlagAck | kFlagPsh));
  };
  // Table 2 row 2: 45 merged MTUs hit the 64KB segment cap.
  d[FlushReason::kSizeLimit] = [](GroHarness& h) { FeedInOrder(h, 45); };
  // Table 2 row 1: a sequence number below seq_next after the flow left
  // build-up is treated as a retransmission and bypasses the queue.
  d[FlushReason::kSeqBeforeNext] = [](GroHarness& h) {
    const FiveTuple flow = TestFlow();
    h.Receive(MakeDataPacket(flow, 0, kMss, kFlagAck | kFlagPsh));  // flushes; exits build-up
    h.Receive(MakeDataPacket(flow, 0, kMss));                       // now before seq_next
  };
  // Table 2 row 5: in-sequence data held past inseq_timeout.
  d[FlushReason::kInseqTimeout] = [](GroHarness& h) {
    h.Receive(MakeDataPacket(TestFlow(), 0, kMss));
    h.Advance(Us(20));  // > the 15us default
    h.PollComplete();
  };
  // Table 2 row 6: a hole at the head of the queue outlives ofo_timeout.
  d[FlushReason::kOfoTimeout] = [](GroHarness& h) {
    const FiveTuple flow = TestFlow();
    h.Receive(MakeDataPacket(flow, 0, kMss, kFlagAck | kFlagPsh));  // seq_next -> kMss
    h.Receive(MakeDataPacket(flow, 3 * kMss, kMss));                // hole at kMss
    h.Advance(Us(60));  // > the 50us default
    h.PollComplete();
  };
  // Table 2 row 7 (section 4.3): table full, victim's queue drains upward.
  d[FlushReason::kEviction] = [](GroHarness& h) {
    h.Receive(MakeDataPacket(TestFlow(1000), 0, kMss));  // buffered, not ready
    h.Receive(MakeDataPacket(TestFlow(2000), 0, kMss));  // needs the only slot
  };
  return d;
}

DriveMap StandardDrives() {
  DriveMap d;
  d[FlushReason::kPureAck] = [](GroHarness& h) {
    h.Receive(MakeAckPacket(TestFlow(), 0));
  };
  d[FlushReason::kFlags] = [](GroHarness& h) {
    h.Receive(MakeDataPacket(TestFlow(), 0, kMss, kFlagAck | kFlagPsh));
  };
  d[FlushReason::kSizeLimit] = [](GroHarness& h) { FeedInOrder(h, 45); };
  // The section-3 batching collapse: any gap flushes the held segment.
  d[FlushReason::kOutOfOrder] = [](GroHarness& h) {
    const FiveTuple flow = TestFlow();
    h.Receive(MakeDataPacket(flow, 0, kMss));
    h.Receive(MakeDataPacket(flow, 2 * kMss, kMss));
  };
  // Table 2 row 4: a CE-mark boundary splits the merge.
  d[FlushReason::kMetaMismatch] = [](GroHarness& h) {
    const FiveTuple flow = TestFlow();
    h.Receive(MakeDataPacket(flow, 0, kMss));
    h.Receive(WithCeMark(MakeDataPacket(flow, kMss, kMss)));
  };
  d[FlushReason::kPollEnd] = [](GroHarness& h) {
    h.Receive(MakeDataPacket(TestFlow(), 0, kMss));
    h.PollComplete();
  };
  return d;
}

DriveMap PrestoDrives() {
  DriveMap d;
  d[FlushReason::kPureAck] = [](GroHarness& h) {
    h.Receive(MakeAckPacket(TestFlow(), 0));
  };
  // Presto has no PSH-eager path of its own; SYN/FIN still deliver directly.
  d[FlushReason::kFlags] = [](GroHarness& h) {
    h.Receive(MakeDataPacket(TestFlow(), 0, kMss, kFlagSyn));
  };
  d[FlushReason::kSizeLimit] = [](GroHarness& h) { FeedInOrder(h, 45); };
  d[FlushReason::kSeqBeforeNext] = [](GroHarness& h) {
    const FiveTuple flow = TestFlow();
    h.Receive(MakeDataPacket(flow, kMss, kMss));  // expected learns kMss..2*kMss
    h.Receive(MakeDataPacket(flow, 0, kMss));     // before expected
  };
  d[FlushReason::kMetaMismatch] = [](GroHarness& h) {
    const FiveTuple flow = TestFlow();
    h.Receive(MakeDataPacket(flow, 0, kMss));
    h.Receive(WithCeMark(MakeDataPacket(flow, kMss, kMss)));
  };
  d[FlushReason::kPollEnd] = [](GroHarness& h) {
    h.Receive(MakeDataPacket(TestFlow(), 0, kMss));
    h.PollComplete();
  };
  // Presto's coarse poll-completion OOO timeout.
  d[FlushReason::kOfoTimeout] = [](GroHarness& h) {
    const FiveTuple flow = TestFlow();
    h.Receive(MakeDataPacket(flow, 0, kMss));
    h.Receive(MakeDataPacket(flow, 3 * kMss, kMss));  // buffered OOO run
    h.Advance(Ms(2));                                 // > the 1ms default
    h.PollComplete();
  };
  return d;
}

// ----------------------------------------------------------------- runner --

void RunAudit(const std::string& label, const Factory& factory, const DriveMap& drives,
              const std::set<FlushReason>& allowed) {
  // Every permitted reason must have a scenario, and vice versa: the drive
  // map IS the executable statement of the engine's Table-2 coverage.
  for (FlushReason r : allowed) {
    EXPECT_TRUE(drives.count(r) != 0)
        << label << ": permitted flush reason '" << FlushReasonName(r)
        << "' has NO audit scenario — the coverage matrix has a hole";
  }
  for (const auto& [r, drive] : drives) {
    EXPECT_TRUE(allowed.count(r) != 0)
        << label << ": scenario exists for '" << FlushReasonName(r)
        << "' but the matrix says this engine never emits it";
  }

  for (const auto& [target, drive] : drives) {
    GroHarness h(factory);
    drive(h);
    const GroStats& stats = h.engine()->stats();

    EXPECT_GE(stats.flush_by_reason[static_cast<int>(target)], 1u)
        << label << ": the scenario for '" << FlushReasonName(target)
        << "' completed without a single flush labelled with that reason";

    for (int i = 0; i < static_cast<int>(FlushReason::kReasonCount); ++i) {
      const FlushReason r = static_cast<FlushReason>(i);
      if (allowed.count(r) == 0) {
        EXPECT_EQ(stats.flush_by_reason[i], 0u)
            << label << ": scenario for '" << FlushReasonName(target)
            << "' made the engine emit forbidden reason '" << FlushReasonName(r) << "'";
      }
    }

    // The registry mirror: each per-reason count appears under exactly
    // "<label>/<reason>", and reasons that never fired are absent (0).
    MetricsRegistry registry;
    PublishGroStats(stats, label, &registry);
    for (int i = 0; i < static_cast<int>(FlushReason::kReasonCount); ++i) {
      const FlushReason r = static_cast<FlushReason>(i);
      EXPECT_EQ(registry.CounterValue("gro.flush", label + "/" + FlushReasonName(r)),
                stats.flush_by_reason[i])
          << label << ": gro.flush/" << FlushReasonName(r)
          << " in the registry disagrees with the engine's own counter";
    }
  }
}

Factory JugglerFactory(size_t max_flows = 64) {
  return [max_flows](const CpuCostModel* costs) {
    JugglerConfig config;
    config.max_flows = max_flows;
    return std::make_unique<Juggler>(costs, config);
  };
}

TEST(FlushReasonAudit, Juggler) {
  DriveMap drives = JugglerDrives();
  // The eviction scenario needs its own one-slot table; run it separately
  // and audit the rest with the default config.
  Drive evict = drives[FlushReason::kEviction];
  drives.erase(FlushReason::kEviction);

  std::set<FlushReason> allowed = kJugglerAllowed;
  allowed.erase(FlushReason::kEviction);
  RunAudit("juggler", JugglerFactory(), drives, allowed);

  DriveMap evict_only;
  evict_only[FlushReason::kEviction] = evict;
  RunAudit("juggler", JugglerFactory(/*max_flows=*/1), evict_only,
           {FlushReason::kEviction});
}

TEST(FlushReasonAudit, StandardGro) {
  RunAudit("baseline",
           [](const CpuCostModel* costs) { return std::make_unique<StandardGro>(costs); },
           StandardDrives(), kStandardAllowed);
}

TEST(FlushReasonAudit, PrestoGro) {
  RunAudit("presto",
           [](const CpuCostModel* costs) {
             return std::make_unique<PrestoGro>(costs, PrestoGroConfig{});
           },
           PrestoDrives(), kPrestoAllowed);
}

// The three engines together must exercise every row of Table 2: a reason no
// engine is permitted to emit would mean the taxonomy carries dead labels
// (or an engine's matrix entry silently shrank).
TEST(FlushReasonAudit, UnionCoversEveryReason) {
  std::set<FlushReason> covered;
  covered.insert(kJugglerAllowed.begin(), kJugglerAllowed.end());
  covered.insert(kStandardAllowed.begin(), kStandardAllowed.end());
  covered.insert(kPrestoAllowed.begin(), kPrestoAllowed.end());
  for (int i = 0; i < static_cast<int>(FlushReason::kReasonCount); ++i) {
    const FlushReason r = static_cast<FlushReason>(i);
    EXPECT_TRUE(covered.count(r) != 0)
        << "flush reason '" << FlushReasonName(r)
        << "' is exercised by NO engine in the audit matrix";
  }
}

}  // namespace
}  // namespace juggler
