// Unit tests for the Juggler engine: the five-phase life cycle (Table 1),
// the flush conditions (Table 2), the worked examples of Figures 6-8, and
// the eviction policy of §4.3.

#include <gtest/gtest.h>

#include <memory>

#include "src/core/juggler.h"
#include "tests/test_util.h"

namespace juggler {
namespace {

GroHarness MakeJuggler(JugglerConfig config = {}) {
  return GroHarness(
      [config](const CpuCostModel* c) { return std::make_unique<Juggler>(c, config); });
}

Juggler* Engine(GroHarness& h) { return static_cast<Juggler*>(h.engine()); }

// ---------------------------------------------------------------- basics --

TEST(JugglerTest, InOrderBurstMergesLikeGro) {
  GroHarness h = MakeJuggler();
  const FiveTuple flow = TestFlow();
  for (int i = 0; i < 10; ++i) {
    h.Receive(MakeDataPacket(flow, static_cast<Seq>(i) * kMss, kMss));
  }
  EXPECT_TRUE(h.delivered().empty());
  // Held across the poll boundary (unlike standard GRO)...
  h.PollComplete();
  EXPECT_TRUE(h.delivered().empty());
  // ...until inseq_timeout passes.
  h.Advance(Us(20));
  h.PollComplete();
  ASSERT_EQ(h.delivered().size(), 1u);
  EXPECT_EQ(h.delivered()[0].payload_len, 10 * kMss);
  EXPECT_EQ(h.delivered()[0].mtu_count, 10u);
}

TEST(JugglerTest, InOrderFastPathCostsSameAsGro) {
  // §5.1.1: identical to standard GRO on in-order traffic — per-packet cost
  // must be exactly gro_per_packet once the flow exists.
  GroHarness h = MakeJuggler();
  const FiveTuple flow = TestFlow();
  h.Receive(MakeDataPacket(flow, 0, kMss));
  for (int i = 1; i < 20; ++i) {
    const TimeNs cost = h.Receive(MakeDataPacket(flow, static_cast<Seq>(i) * kMss, kMss));
    EXPECT_EQ(cost, h.costs()->gro_per_packet);
  }
}

TEST(JugglerTest, ReorderedPacketsDeliveredInOrder) {
  GroHarness h = MakeJuggler();
  const FiveTuple flow = TestFlow();
  const Seq order[] = {0, 2, 1, 4, 3, 5};
  for (Seq s : order) {
    h.Receive(MakeDataPacket(flow, s * kMss, kMss));
  }
  h.Advance(Us(20));
  h.PollComplete();
  ASSERT_EQ(h.delivered().size(), 1u);
  EXPECT_EQ(h.delivered()[0].seq, 0u);
  EXPECT_EQ(h.delivered()[0].payload_len, 6 * kMss);
}

TEST(JugglerTest, SizeLimitFlushesEagerly) {
  GroHarness h = MakeJuggler();
  const FiveTuple flow = TestFlow();
  for (uint32_t i = 0; i < 45; ++i) {
    h.Receive(MakeDataPacket(flow, i * kMss, kMss));
  }
  // Table 2 row 2: full 64KB segment flushes without waiting for a timeout.
  ASSERT_EQ(h.delivered().size(), 1u);
  EXPECT_EQ(h.delivered()[0].payload_len, kMaxTsoPayload);
}

TEST(JugglerTest, PshFlushesEagerly) {
  GroHarness h = MakeJuggler();
  const FiveTuple flow = TestFlow();
  h.Receive(MakeDataPacket(flow, 0, kMss));
  h.Receive(MakeDataPacket(flow, kMss, 150, kFlagAck | kFlagPsh));
  ASSERT_EQ(h.delivered().size(), 1u);
  EXPECT_EQ(h.delivered()[0].payload_len, kMss + 150);
}

TEST(JugglerTest, PureAckBypassesFlowTable) {
  GroHarness h = MakeJuggler();
  h.Receive(MakeAckPacket(TestFlow(), 77));
  ASSERT_EQ(h.delivered().size(), 1u);
  EXPECT_EQ(Engine(h)->flow_table_size(), 0u);
}

// ----------------------------------------------------------- life cycle --

TEST(JugglerTest, PhaseProgressionBuildUpToPostMerge) {
  GroHarness h = MakeJuggler();
  const FiveTuple flow = TestFlow();
  h.Receive(MakeDataPacket(flow, 0, kMss));
  EXPECT_EQ(Engine(h)->active_list_len(), 1u);  // build-up is in active list
  EXPECT_EQ(Engine(h)->inactive_list_len(), 0u);
  h.Advance(Us(20));
  h.PollComplete();  // inseq_timeout -> first flush -> post-merge
  EXPECT_EQ(h.delivered().size(), 1u);
  EXPECT_EQ(Engine(h)->active_list_len(), 0u);
  EXPECT_EQ(Engine(h)->inactive_list_len(), 1u);
}

TEST(JugglerTest, PostMergeFlowReactivatesOnNewData) {
  GroHarness h = MakeJuggler();
  const FiveTuple flow = TestFlow();
  h.Receive(MakeDataPacket(flow, 0, kMss));
  h.Advance(Us(20));
  h.PollComplete();
  EXPECT_EQ(Engine(h)->inactive_list_len(), 1u);
  h.Receive(MakeDataPacket(flow, kMss, kMss));  // reverse edge of §4.2.4
  EXPECT_EQ(Engine(h)->active_list_len(), 1u);
  EXPECT_EQ(Engine(h)->inactive_list_len(), 0u);
}

TEST(JugglerTest, BuildUpSeqNextGoesBackwards) {
  // Remark 1 / Figure 6 setup: first packet of a re-entering flow is likely
  // out of order; seq_next must learn the true minimum.
  GroHarness h = MakeJuggler();
  const FiveTuple flow = TestFlow();
  h.Receive(MakeDataPacket(flow, 3 * kMss, kMss));  // "packet 3" first
  h.Receive(MakeDataPacket(flow, 5 * kMss, kMss));
  h.Receive(MakeDataPacket(flow, 2 * kMss, kMss));  // seq_next moves back
  EXPECT_TRUE(h.delivered().empty());               // nothing flushed early
  h.Advance(Us(20));
  h.PollComplete();
  // Flushes the contiguous prefix [2,4) as one segment; 5 stays buffered.
  ASSERT_EQ(h.delivered().size(), 1u);
  EXPECT_EQ(h.delivered()[0].seq, 2 * kMss);
  EXPECT_EQ(h.delivered()[0].payload_len, 2 * kMss);
  EXPECT_EQ(Engine(h)->juggler_stats().seq_next_backward_moves, 1u);
  EXPECT_EQ(Engine(h)->active_list_len(), 1u);  // active merging (5 buffered)
}

TEST(JugglerTest, BuildUpDisabledFlushesEarlyPackets) {
  // Ablation: without the build-up phase, packet 2 (before the pinned
  // seq_next of 3) is flushed as a presumed retransmission.
  JugglerConfig config;
  config.enable_buildup_phase = false;
  GroHarness h = MakeJuggler(config);
  const FiveTuple flow = TestFlow();
  h.Receive(MakeDataPacket(flow, 3 * kMss, kMss));
  h.Receive(MakeDataPacket(flow, 2 * kMss, kMss));
  ASSERT_EQ(h.delivered().size(), 1u);
  EXPECT_EQ(h.delivered()[0].seq, 2 * kMss);
}

TEST(JugglerTest, Figure6RetransmissionNotBuffered) {
  GroHarness h = MakeJuggler();
  const FiveTuple flow = TestFlow();
  // Build up with 3, 5, 2 (in units of MSS).
  h.Receive(MakeDataPacket(flow, 3 * kMss, kMss));
  h.Receive(MakeDataPacket(flow, 5 * kMss, kMss));
  h.Receive(MakeDataPacket(flow, 2 * kMss, kMss));
  h.Advance(Us(20));
  h.PollComplete();  // flush [2,4): seq_next = 4, active merging
  h.TakeDelivered();
  // Retransmitted packet 1 arrives: before seq_next, flushed immediately.
  h.Receive(MakeDataPacket(flow, 1 * kMss, kMss));
  ASSERT_EQ(h.delivered().size(), 1u);
  EXPECT_EQ(h.delivered()[0].seq, 1 * kMss);
  EXPECT_EQ(h.delivered()[0].mtu_count, 1u);
  EXPECT_EQ(
      h.engine()->stats().flush_by_reason[static_cast<int>(FlushReason::kSeqBeforeNext)], 1u);
}

TEST(JugglerTest, OfoTimeoutEntersLossRecovery) {
  GroHarness h = MakeJuggler();
  const FiveTuple flow = TestFlow();
  // Establish seq_next = 0 by flushing packet 0.
  h.Receive(MakeDataPacket(flow, 0, kMss));
  h.Advance(Us(20));
  h.PollComplete();
  h.TakeDelivered();
  // Hole at kMss: packets 2, 3, 5 buffered.
  h.Receive(MakeDataPacket(flow, 2 * kMss, kMss));
  h.Receive(MakeDataPacket(flow, 3 * kMss, kMss));
  h.Receive(MakeDataPacket(flow, 5 * kMss, kMss));
  h.PollComplete();
  EXPECT_TRUE(h.delivered().empty());
  EXPECT_EQ(Engine(h)->loss_list_len(), 0u);
  h.Advance(Us(60));  // > ofo_timeout (50us)
  h.PollComplete();
  // Everything flushed (two runs: [2,4) and [5,6)); flow in loss recovery.
  EXPECT_EQ(h.delivered().size(), 2u);
  EXPECT_EQ(Engine(h)->loss_list_len(), 1u);
  EXPECT_EQ(Engine(h)->juggler_stats().ofo_timeout_events, 1u);
}

TEST(JugglerTest, Figure7LossRecoveryRoundTrip) {
  GroHarness h = MakeJuggler();
  const FiveTuple flow = TestFlow();
  // seq_next = 1 (in MSS units), packets 2, 3, 5 in the OOO queue.
  h.Receive(MakeDataPacket(flow, 0, kMss));
  h.Advance(Us(20));
  h.PollComplete();
  h.TakeDelivered();
  h.Receive(MakeDataPacket(flow, 2 * kMss, kMss));
  h.Receive(MakeDataPacket(flow, 3 * kMss, kMss));
  h.Receive(MakeDataPacket(flow, 5 * kMss, kMss));
  h.Advance(Us(60));
  h.PollComplete();  // ofo_timeout: flush all, lost_seq = 1*kMss, seq_next = 6*kMss
  h.TakeDelivered();
  ASSERT_EQ(Engine(h)->loss_list_len(), 1u);
  // Packets 7 and 6 arrive: buffered / merged (6 == seq_next).
  h.Receive(MakeDataPacket(flow, 7 * kMss, kMss));
  h.Receive(MakeDataPacket(flow, 6 * kMss, kMss));
  EXPECT_EQ(Engine(h)->loss_list_len(), 1u);  // still in loss recovery
  // Packet 1 fills the hole: flushed directly, flow back to active list —
  // even though packet 4 never arrived (best-effort).
  h.Receive(MakeDataPacket(flow, 1 * kMss, kMss));
  EXPECT_EQ(Engine(h)->loss_list_len(), 0u);
  EXPECT_EQ(Engine(h)->active_list_len(), 1u);
  EXPECT_EQ(Engine(h)->juggler_stats().loss_recovery_exits, 1u);
  ASSERT_EQ(h.delivered().size(), 1u);
  EXPECT_EQ(h.delivered()[0].seq, 1 * kMss);
}

// -------------------------------------------------------------- timeouts --

TEST(JugglerTest, InseqTimeoutHonoredViaTimer) {
  JugglerConfig config;
  config.inseq_timeout = Us(15);
  GroHarness h = MakeJuggler(config);
  const FiveTuple flow = TestFlow();
  h.Receive(MakeDataPacket(flow, 0, kMss));
  h.PollComplete();  // arms the hrtimer
  EXPECT_NE(h.armed_timer(), GroEngine::kNoTimer);
  EXPECT_EQ(h.armed_timer(), Us(15));
  h.Advance(Us(15));
  EXPECT_TRUE(h.MaybeFireTimer());
  ASSERT_EQ(h.delivered().size(), 1u);
}

TEST(JugglerTest, OfoTimeoutUsesLongerDeadline) {
  JugglerConfig config;
  config.inseq_timeout = Us(15);
  config.ofo_timeout = Us(50);
  GroHarness h = MakeJuggler(config);
  const FiveTuple flow = TestFlow();
  h.Receive(MakeDataPacket(flow, 0, kMss));
  h.Advance(Us(20));
  h.PollComplete();
  h.TakeDelivered();
  h.Receive(MakeDataPacket(flow, 2 * kMss, kMss));  // hole at kMss
  h.PollComplete();
  // Deadline is flush_timestamp + ofo_timeout, not inseq_timeout.
  EXPECT_EQ(h.armed_timer(), Us(20) + Us(50));
}

TEST(JugglerTest, HoldsAcrossPollsUntilTimeout) {
  GroHarness h = MakeJuggler();
  const FiveTuple flow = TestFlow();
  h.Receive(MakeDataPacket(flow, 0, kMss));
  for (int poll = 0; poll < 3; ++poll) {
    h.Advance(Us(4));
    h.PollComplete();
    EXPECT_TRUE(h.delivered().empty());
    h.Receive(MakeDataPacket(flow, static_cast<Seq>(poll + 1) * kMss, kMss));
  }
  h.Advance(Us(15));
  h.PollComplete();
  ASSERT_EQ(h.delivered().size(), 1u);
  EXPECT_EQ(h.delivered()[0].mtu_count, 4u);  // merged across 4 polls
}

// -------------------------------------------------------------- eviction --

TEST(JugglerTest, TableBoundedAndInactiveEvictedFirst) {
  JugglerConfig config;
  config.max_flows = 4;
  GroHarness h = MakeJuggler(config);
  // Four flows, all flushed into post-merge (inactive).
  for (uint16_t i = 0; i < 4; ++i) {
    h.Receive(MakeDataPacket(TestFlow(i, 1), 0, kMss));
  }
  h.Advance(Us(20));
  h.PollComplete();
  EXPECT_EQ(Engine(h)->inactive_list_len(), 4u);
  // A fifth flow arrives: the oldest inactive flow is evicted.
  h.Receive(MakeDataPacket(TestFlow(100, 1), 0, kMss));
  EXPECT_EQ(Engine(h)->flow_table_size(), 4u);
  EXPECT_EQ(Engine(h)->juggler_stats().evictions_inactive, 1u);
  EXPECT_EQ(h.engine()->stats().evictions, 1u);
}

TEST(JugglerTest, ActiveEvictedFifoWhenNoInactive) {
  JugglerConfig config;
  config.max_flows = 2;
  GroHarness h = MakeJuggler(config);
  // Two flows with buffered holes: both stay in the active list.
  h.Receive(MakeDataPacket(TestFlow(1, 1), 5 * kMss, kMss));
  h.Receive(MakeDataPacket(TestFlow(2, 1), 5 * kMss, kMss));
  EXPECT_EQ(Engine(h)->active_list_len(), 2u);
  h.Receive(MakeDataPacket(TestFlow(3, 1), 0, kMss));
  EXPECT_EQ(Engine(h)->flow_table_size(), 2u);
  EXPECT_EQ(Engine(h)->juggler_stats().evictions_active, 1u);
  // The evicted flow's buffered packet was flushed, not dropped.
  bool found = false;
  for (const auto& s : h.delivered()) {
    found |= s.seq == 5 * kMss;
  }
  EXPECT_TRUE(found);
}

TEST(JugglerTest, LossRecoveryEvictedOnlyAsLastResort) {
  JugglerConfig config;
  config.max_flows = 2;
  config.ofo_timeout = Us(10);
  GroHarness h = MakeJuggler(config);
  // Drive both flows into loss recovery.
  for (uint16_t i = 1; i <= 2; ++i) {
    h.Receive(MakeDataPacket(TestFlow(i, 1), 0, kMss));
  }
  h.Advance(Us(20));
  h.PollComplete();
  h.TakeDelivered();
  for (uint16_t i = 1; i <= 2; ++i) {
    h.Receive(MakeDataPacket(TestFlow(i, 1), 3 * kMss, kMss));  // holes
  }
  h.Advance(Us(20));
  h.PollComplete();  // ofo timeout -> loss recovery for both
  EXPECT_EQ(Engine(h)->loss_list_len(), 2u);
  h.Receive(MakeDataPacket(TestFlow(9, 1), 0, kMss));
  EXPECT_EQ(Engine(h)->flow_table_size(), 2u);
  EXPECT_EQ(Engine(h)->juggler_stats().evictions_loss, 1u);
}

TEST(JugglerTest, NoDataLossAcrossEvictionChurn) {
  // Hammer a tiny table with many flows; every payload byte must still come
  // out exactly once (eviction flushes, never drops).
  JugglerConfig config;
  config.max_flows = 4;
  GroHarness h = MakeJuggler(config);
  uint64_t sent = 0;
  for (int round = 0; round < 50; ++round) {
    for (uint16_t f = 0; f < 16; ++f) {
      h.Receive(MakeDataPacket(TestFlow(f, 1), static_cast<Seq>(round) * kMss, kMss));
      sent += kMss;
    }
    h.Advance(Us(5));
    h.PollComplete();
  }
  h.Advance(Ms(1));
  h.PollComplete();
  // Evict everything left by overflowing the table.
  for (uint16_t f = 100; f < 105; ++f) {
    h.Receive(MakeDataPacket(TestFlow(f, 1), 0, kMss));
    sent += kMss;
  }
  h.Advance(Ms(1));
  h.PollComplete();
  EXPECT_EQ(TotalPayload(h.delivered()), sent);
}

// ------------------------------------------------------------ edge cases --

TEST(JugglerTest, DuplicateOfBufferedPacketDeliveredDirect) {
  GroHarness h = MakeJuggler();
  const FiveTuple flow = TestFlow();
  h.Receive(MakeDataPacket(flow, 0, kMss));
  h.Advance(Us(20));
  h.PollComplete();
  h.TakeDelivered();
  h.Receive(MakeDataPacket(flow, 2 * kMss, kMss));
  h.Receive(MakeDataPacket(flow, 2 * kMss, kMss));  // exact duplicate
  ASSERT_EQ(h.delivered().size(), 1u);              // passed up for TCP to dedup
  EXPECT_EQ(Engine(h)->juggler_stats().duplicate_packets, 1u);
}

TEST(JugglerTest, MetaMismatchSplitsRuns) {
  GroHarness h = MakeJuggler();
  const FiveTuple flow = TestFlow();
  h.Receive(MakeDataPacket(flow, 0, kMss));
  auto p = MakeDataPacket(flow, kMss, kMss);
  p->ce_mark = true;
  h.Receive(std::move(p));
  h.Advance(Us(20));
  h.PollComplete();
  ASSERT_EQ(h.delivered().size(), 2u);  // contiguous but unmergeable
  EXPECT_FALSE(h.delivered()[0].ce_mark);
  EXPECT_TRUE(h.delivered()[1].ce_mark);
}

TEST(JugglerTest, WrapAroundSequenceSpace) {
  GroHarness h = MakeJuggler();
  const FiveTuple flow = TestFlow();
  const Seq start = 0xffffffffu - 2 * kMss + 1;  // two MTUs before wrap
  h.Receive(MakeDataPacket(flow, start, kMss));
  h.Receive(MakeDataPacket(flow, start + 2 * kMss, kMss));  // past the wrap
  h.Receive(MakeDataPacket(flow, start + kMss, kMss));      // fills the gap
  h.Advance(Us(20));
  h.PollComplete();
  ASSERT_EQ(h.delivered().size(), 1u);
  EXPECT_EQ(h.delivered()[0].seq, start);
  EXPECT_EQ(h.delivered()[0].payload_len, 3 * kMss);
}

TEST(JugglerTest, TimerDisarmedWhenIdle) {
  GroHarness h = MakeJuggler();
  const FiveTuple flow = TestFlow();
  h.Receive(MakeDataPacket(flow, 0, kMss));
  h.Advance(Us(20));
  h.PollComplete();  // flow flushed to post-merge; nothing pending
  EXPECT_EQ(h.armed_timer(), GroEngine::kNoTimer);
}

TEST(JugglerTest, SynFinDeliveredDirect) {
  GroHarness h = MakeJuggler();
  const FiveTuple flow = TestFlow();
  h.Receive(MakeDataPacket(flow, 0, 0, kFlagSyn));
  ASSERT_EQ(h.delivered().size(), 1u);
  EXPECT_EQ(Engine(h)->flow_table_size(), 0u);
}

TEST(JugglerTest, OooQueueRunsCoalesce) {
  // Runs that become contiguous coalesce, keeping the queue short — the
  // frags[]-style merging that bounds search cost (§3.2).
  GroHarness h = MakeJuggler();
  const FiveTuple flow = TestFlow();
  h.Receive(MakeDataPacket(flow, 0, kMss));
  h.Advance(Us(20));
  h.PollComplete();
  h.TakeDelivered();
  // Hole at kMss, then runs at 2,4,6; then 3 and 5 join them all.
  h.Receive(MakeDataPacket(flow, 2 * kMss, kMss));
  h.Receive(MakeDataPacket(flow, 4 * kMss, kMss));
  h.Receive(MakeDataPacket(flow, 6 * kMss, kMss));
  h.Receive(MakeDataPacket(flow, 3 * kMss, kMss));
  h.Receive(MakeDataPacket(flow, 5 * kMss, kMss));
  // Fill the hole: the whole [1,7) range must flush as ONE segment.
  h.Receive(MakeDataPacket(flow, kMss, kMss));
  h.Advance(Us(20));
  h.PollComplete();
  ASSERT_EQ(h.delivered().size(), 1u);
  EXPECT_EQ(h.delivered()[0].payload_len, 6 * kMss);
  EXPECT_EQ(h.delivered()[0].mtu_count, 6u);
}

TEST(JugglerTest, EvictionPrecedenceWithAllThreeClassesPresent) {
  // §4.3's full order in one table: with inactive, active, and loss-recovery
  // flows all present, evictions must consume every inactive flow first,
  // then actives in FIFO order, and touch loss recovery only when it is all
  // that remains.
  JugglerConfig config;
  config.max_flows = 3;
  config.ofo_timeout = Us(10);
  GroHarness h = MakeJuggler(config);
  // Flow 1 -> loss recovery: establish seq_next, open a hole, let ofo fire.
  h.Receive(MakeDataPacket(TestFlow(1, 1), 0, kMss));
  h.Advance(Us(20));
  h.PollComplete();
  h.Receive(MakeDataPacket(TestFlow(1, 1), 3 * kMss, kMss));  // hole at kMss
  h.Advance(Us(20));
  h.PollComplete();
  ASSERT_EQ(Engine(h)->loss_list_len(), 1u);
  // Flow 2 -> inactive (flushed clean); flow 3 -> active (buffered run).
  h.Receive(MakeDataPacket(TestFlow(2, 1), 0, kMss));
  h.Advance(Us(20));
  h.PollComplete();
  h.Receive(MakeDataPacket(TestFlow(3, 1), 5 * kMss, kMss));
  ASSERT_EQ(Engine(h)->inactive_list_len(), 1u);
  ASSERT_EQ(Engine(h)->active_list_len(), 1u);
  ASSERT_EQ(Engine(h)->flow_table_size(), 3u);
  // Arrival 4: evicts the inactive flow, never the active or loss one.
  h.Receive(MakeDataPacket(TestFlow(4, 1), 5 * kMss, kMss));
  EXPECT_EQ(Engine(h)->juggler_stats().evictions_inactive, 1u);
  EXPECT_EQ(Engine(h)->juggler_stats().evictions_active, 0u);
  EXPECT_EQ(Engine(h)->juggler_stats().evictions_loss, 0u);
  // Arrival 5: no inactive flows remain; the OLDEST active (flow 3) goes.
  h.Receive(MakeDataPacket(TestFlow(5, 1), 5 * kMss, kMss));
  EXPECT_EQ(Engine(h)->juggler_stats().evictions_active, 1u);
  // Arrivals 6, 7: actives keep draining FIFO; loss recovery untouched.
  h.Receive(MakeDataPacket(TestFlow(6, 1), 5 * kMss, kMss));
  h.Receive(MakeDataPacket(TestFlow(7, 1), 5 * kMss, kMss));
  EXPECT_EQ(Engine(h)->juggler_stats().evictions_active, 3u);
  EXPECT_EQ(Engine(h)->juggler_stats().evictions_loss, 0u);
  // Drive the surviving flows 6 and 7 into loss recovery too: flush their
  // runs (establishing seq_next), open holes, let ofo fire.
  h.Advance(Us(20));
  h.PollComplete();  // flows 6, 7 flush -> inactive
  h.Receive(MakeDataPacket(TestFlow(6, 1), 8 * kMss, kMss));  // hole at 6*kMss
  h.Receive(MakeDataPacket(TestFlow(7, 1), 8 * kMss, kMss));
  h.Advance(Us(20));
  h.PollComplete();
  ASSERT_EQ(Engine(h)->loss_list_len(), 3u);
  // Arrival 8: only loss-recovery flows remain; §3.3's strict memory bound
  // now forces one out — the last resort.
  h.Receive(MakeDataPacket(TestFlow(8, 1), 0, kMss));
  EXPECT_EQ(Engine(h)->juggler_stats().evictions_loss, 1u);
  EXPECT_EQ(Engine(h)->flow_table_size(), 3u);
}

TEST(JugglerTest, EvictionFlushesEveryBufferedByte) {
  // FlushAll on eviction: the conservation counters must balance — every
  // payload byte that entered an OOO queue leaves through a delivery, even
  // for flows force-evicted with holes still open.
  JugglerConfig config;
  config.max_flows = 2;
  GroHarness h = MakeJuggler(config);
  // Each flow buffers three discontiguous runs, then eviction churn kicks
  // every flow out in turn.
  for (uint16_t f = 1; f <= 6; ++f) {
    for (Seq run = 1; run <= 5; run += 2) {
      h.Receive(MakeDataPacket(TestFlow(f, 1), run * kMss, kMss));
    }
  }
  h.PollComplete();
  const JugglerStats& stats = Engine(h)->juggler_stats();
  EXPECT_EQ(stats.evictions_active, 4u);
  EXPECT_EQ(stats.buffered_bytes_in, 6u * 3u * kMss);
  // The two live flows still hold their runs; everything else flushed.
  const Juggler::AuditView view = Engine(h)->Audit();
  uint64_t held = 0;
  for (const auto& flow : view.flows) {
    held += flow.buffered_bytes;
  }
  EXPECT_EQ(held, 2u * 3u * kMss);
  EXPECT_EQ(stats.buffered_bytes_out, stats.buffered_bytes_in - held);
  // And the evicted flows' bytes reached the host as segments.
  EXPECT_EQ(TotalPayload(h.delivered()), 4u * 3u * kMss);
}

}  // namespace
}  // namespace juggler
