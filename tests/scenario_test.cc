// Host assembly and topology-builder tests: segment demux, app-core
// pinning and backpressure, RED behaviour, periodic sampling, and the
// wiring invariants of the three experiment topologies.

#include <gtest/gtest.h>

#include <memory>

#include "src/scenario/gro_factories.h"
#include "src/scenario/sampler.h"
#include "src/scenario/topologies.h"
#include "tests/test_util.h"

namespace juggler {
namespace {

NetFpgaOptions TwoHostOptions() {
  NetFpgaOptions opt;
  opt.link_rate_bps = 10 * kGbps;
  opt.reorder_delay = 0;
  opt.sender.gro_factory = MakeStandardGroFactory();
  opt.receiver = opt.sender;
  return opt;
}

TEST(HostTest, DemuxRoutesToCorrectEndpoint) {
  SimWorld world;
  NetFpgaTestbed t = BuildNetFpga(&world, TwoHostOptions());
  EndpointPair c1 = ConnectHosts(t.sender, t.receiver, 1000, 2000);
  EndpointPair c2 = ConnectHosts(t.sender, t.receiver, 1001, 2000);
  c1.a_to_b->Send(100'000);
  c2.a_to_b->Send(50'000);
  world.loop.RunUntil(Ms(50));
  EXPECT_EQ(c1.b_to_a->bytes_delivered(), 100'000u);
  EXPECT_EQ(c2.b_to_a->bytes_delivered(), 50'000u);
  EXPECT_EQ(t.receiver->stray_segments(), 0u);
  EXPECT_EQ(t.sender->stray_segments(), 0u);
}

TEST(HostTest, StraySegmentsCounted) {
  SimWorld world;
  NetFpgaTestbed t = BuildNetFpga(&world, TwoHostOptions());
  // No endpoint registered: inject a segment for an unknown flow.
  Segment s;
  s.flow = TestFlow();
  s.payload_len = 100;
  s.mtu_count = 1;
  s.flags = kFlagAck;
  t.receiver->OnSegment(s);
  world.loop.Run();
  EXPECT_EQ(t.receiver->stray_segments(), 1u);
}

TEST(HostTest, FlowsPinToStableAppCores) {
  SimWorld world;
  NetFpgaOptions opt = TwoHostOptions();
  opt.receiver.num_app_cores = 4;
  opt.receiver.rx.num_queues = 4;
  NetFpgaTestbed t = BuildNetFpga(&world, TwoHostOptions());
  // app_core_for is deterministic per flow.
  const FiveTuple inbound = TestFlow();
  EXPECT_EQ(t.receiver->app_core_for(inbound), t.receiver->app_core_for(inbound));
}

TEST(HostTest, AppCoreChargedForDeliveredSegments) {
  SimWorld world;
  NetFpgaTestbed t = BuildNetFpga(&world, TwoHostOptions());
  EndpointPair pair = ConnectHosts(t.sender, t.receiver, 1000, 2000);
  pair.a_to_b->Send(1'000'000);
  world.loop.RunUntil(Ms(50));
  EXPECT_GT(t.receiver->app_core()->busy_ns(), 0);
  // Sender's app core only processed ACKs: far cheaper.
  EXPECT_GT(t.receiver->app_core()->busy_ns(), t.sender->app_core()->busy_ns());
}

TEST(HostTest, PendingRxBytesDrainToZero) {
  SimWorld world;
  NetFpgaTestbed t = BuildNetFpga(&world, TwoHostOptions());
  EndpointPair pair = ConnectHosts(t.sender, t.receiver, 1000, 2000);
  pair.a_to_b->Send(500'000);
  world.loop.RunUntil(Ms(100));
  EXPECT_EQ(t.receiver->pending_rx_bytes(), 0u);
}

TEST(TopologyTest, ClosRoutesAllPairs) {
  SimWorld world;
  ClosOptions opt;
  opt.hosts_per_tor = 4;
  opt.host_template.gro_factory = MakeJugglerFactory();
  ClosTestbed t = BuildClos(&world, opt);
  // Every left->right pair can exchange data.
  std::vector<EndpointPair> pairs;
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      pairs.push_back(ConnectHosts(t.left_hosts[i], t.right_hosts[j],
                                   static_cast<uint16_t>(1000 + j), 2000));
      pairs.back().a_to_b->Send(10'000);
    }
  }
  world.loop.RunUntil(Ms(100));
  for (const auto& pair : pairs) {
    EXPECT_EQ(pair.b_to_a->bytes_delivered(), 10'000u);
  }
  EXPECT_EQ(t.tor_a->dropped_no_route(), 0u);
  EXPECT_EQ(t.tor_b->dropped_no_route(), 0u);
}

TEST(TopologyTest, ClosRightToLeftWorksToo) {
  SimWorld world;
  ClosOptions opt;
  opt.hosts_per_tor = 2;
  opt.host_template.gro_factory = MakeJugglerFactory();
  ClosTestbed t = BuildClos(&world, opt);
  EndpointPair pair = ConnectHosts(t.right_hosts[0], t.left_hosts[1], 1000, 2000);
  pair.a_to_b->Send(100'000);
  world.loop.RunUntil(Ms(50));
  EXPECT_EQ(pair.b_to_a->bytes_delivered(), 100'000u);
}

TEST(TopologyTest, DumbbellCrossTraffic) {
  SimWorld world;
  DumbbellOptions opt;
  opt.host_template.gro_factory = MakeJugglerFactory();
  DumbbellTestbed t = BuildDumbbell(&world, opt);
  EndpointPair a = ConnectHosts(t.sender1, t.receiver2, 1000, 2000);
  EndpointPair b = ConnectHosts(t.sender2, t.receiver1, 1001, 2000);
  a.a_to_b->Send(200'000);
  b.a_to_b->Send(200'000);
  world.loop.RunUntil(Ms(50));
  EXPECT_EQ(a.b_to_a->bytes_delivered(), 200'000u);
  EXPECT_EQ(b.b_to_a->bytes_delivered(), 200'000u);
}

TEST(TopologyTest, NetFpgaReorderOnlyForwardPath) {
  SimWorld world;
  NetFpgaOptions opt = TwoHostOptions();
  opt.reorder_delay = Us(500);
  opt.receiver.gro_factory = MakeJugglerFactory(JugglerConfig{
      .inseq_timeout = Us(52), .ofo_timeout = Us(600)});
  NetFpgaTestbed t = BuildNetFpga(&world, opt);
  EndpointPair pair = ConnectHosts(t.sender, t.receiver, 1000, 2000);
  pair.a_to_b->Send(2'000'000);
  world.loop.RunUntil(Ms(100));
  EXPECT_EQ(pair.b_to_a->bytes_delivered(), 2'000'000u);
  EXPECT_GT(t.reorder->packets_through(), 1000u);
}

TEST(PeriodicTaskTest, FiresUntilStopTime) {
  EventLoop loop;
  int fires = 0;
  PeriodicTask task(&loop, Ms(1), Ms(10), [&] { ++fires; });
  loop.Run();
  EXPECT_EQ(fires, 10);
  EXPECT_LE(loop.now(), Ms(10));
}

TEST(RedTest, DropsRampWithOccupancy) {
  EventLoop loop;
  PacketFactory f;
  class Sink : public PacketSink {
   public:
    void Accept(PacketPtr) override {}
  } sink;
  LinkConfig cfg;
  cfg.rate_bps = 1 * kGbps;
  cfg.queue_limit_bytes = 200 * (kMss + kPerPacketWireOverhead);
  cfg.red = true;
  cfg.red_seed = 5;
  Link link(&loop, "l", cfg, &sink);
  // Flood: occupancy climbs through the RED band; some but not all drop.
  for (int i = 0; i < 400; ++i) {
    PacketPtr p = f.Make();
    p->flow = TestFlow();
    p->payload_len = kMss;
    link.Accept(std::move(p));
  }
  EXPECT_GT(link.stats().red_drops, 0u);
  EXPECT_LT(link.stats().red_drops, 400u);
  loop.Run();
}

TEST(GroFactoryTest, EachFactoryMakesDistinctEngines) {
  CpuCostModel costs;
  auto j = MakeJugglerFactory()( &costs);
  auto s = MakeStandardGroFactory()(&costs);
  auto n = MakeNoGroFactory()(&costs);
  auto l = MakeLinkedListGroFactory()(&costs);
  auto p = MakePrestoGroFactory()(&costs);
  EXPECT_EQ(j->name(), "juggler");
  EXPECT_EQ(s->name(), "standard_gro");
  EXPECT_EQ(n->name(), "no_gro");
  EXPECT_EQ(l->name(), "linkedlist_gro");
  EXPECT_EQ(p->name(), "presto_gro");
}

}  // namespace
}  // namespace juggler
