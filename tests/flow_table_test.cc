// FlowTable<T> unit tests: the open-addressing + slab-value container under
// every GRO engine's per-flow state. Pins the properties the engines lean
// on — pointer stability across rehash, insertion-order iteration,
// tombstone reuse, clock eviction, and the resident-bytes accounting the
// perf_scale bench reports.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/gro/flow_table.h"
#include "tests/test_util.h"

namespace juggler {
namespace {

// A value type that counts its constructions and destructions, so leaks and
// double-destroys in the slab lifecycle are visible.
struct Counted {
  static int live;
  int payload = 0;
  Counted() { ++live; }
  ~Counted() { --live; }
};
int Counted::live = 0;

TEST(FlowTableTest, FindOrCreateThenFind) {
  FlowTable<int> table;
  EXPECT_TRUE(table.empty());
  auto [value, created] = table.FindOrCreate(TestFlow(1, 1));
  EXPECT_TRUE(created);
  *value = 42;
  auto [again, created2] = table.FindOrCreate(TestFlow(1, 1));
  EXPECT_FALSE(created2);
  EXPECT_EQ(again, value);
  EXPECT_EQ(*table.Find(TestFlow(1, 1)), 42);
  EXPECT_EQ(table.Find(TestFlow(2, 2)), nullptr);
  EXPECT_EQ(table.size(), 1u);
}

TEST(FlowTableTest, PointersStableAcrossRehash) {
  // Engines memoize T* (Juggler's last_entry_, intrusive phase lists), so
  // growing the slot array must never move a value.
  FlowTable<int> table;
  std::vector<int*> pointers;
  for (uint16_t i = 0; i < 1000; ++i) {
    int* v = &table[TestFlow(i, 1)];
    *v = i;
    pointers.push_back(v);
  }
  EXPECT_EQ(table.size(), 1000u);
  for (uint16_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(pointers[i], table.Find(TestFlow(i, 1)));
    EXPECT_EQ(*pointers[i], i);
  }
}

TEST(FlowTableTest, ForEachVisitsInInsertionOrder) {
  FlowTable<int> table;
  for (uint16_t i = 0; i < 100; ++i) {
    table[TestFlow(i, 1)] = i;
  }
  table.Erase(TestFlow(50, 1));
  table[TestFlow(50, 1)] = 500;  // re-insert: moves to the back
  std::vector<int> seen;
  table.ForEach([&](const FiveTuple&, int& v) { seen.push_back(v); });
  ASSERT_EQ(seen.size(), 100u);
  for (int i = 0; i < 99; ++i) {
    EXPECT_EQ(seen[static_cast<size_t>(i)], i < 50 ? i : i + 1);
  }
  EXPECT_EQ(seen.back(), 500);
}

TEST(FlowTableTest, EraseDestroysAndReusesStorage) {
  FlowTable<Counted> table;
  for (uint16_t i = 0; i < 10; ++i) {
    table[TestFlow(i, 1)];
  }
  EXPECT_EQ(Counted::live, 10);
  EXPECT_TRUE(table.Erase(TestFlow(3, 1)));
  EXPECT_FALSE(table.Erase(TestFlow(3, 1)));  // already gone
  EXPECT_EQ(Counted::live, 9);
  EXPECT_EQ(table.Find(TestFlow(3, 1)), nullptr);
  // The freed record is reused in place by the next insert.
  table[TestFlow(99, 1)];
  EXPECT_EQ(Counted::live, 10);
  table.Clear();
  EXPECT_EQ(Counted::live, 0);
  EXPECT_TRUE(table.empty());
}

TEST(FlowTableTest, ClearThenReuse) {
  FlowTable<int> table;
  for (uint16_t i = 0; i < 200; ++i) {
    table[TestFlow(i, 1)] = i;
  }
  table.Clear();
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.Find(TestFlow(5, 1)), nullptr);
  table[TestFlow(5, 1)] = 55;
  EXPECT_EQ(*table.Find(TestFlow(5, 1)), 55);
  EXPECT_EQ(table.size(), 1u);
}

TEST(FlowTableTest, ChurnThroughTombstonesKeepsLookupsCorrect) {
  // Insert/erase cycling leaves tombstones; the table must rebuild rather
  // than degrade, and collided keys must stay reachable through them.
  FlowTable<int> table;
  for (int round = 0; round < 50; ++round) {
    for (uint16_t i = 0; i < 64; ++i) {
      table[TestFlow(i, static_cast<uint16_t>(round))] = round * 1000 + i;
    }
    for (uint16_t i = 0; i < 64; ++i) {
      ASSERT_TRUE(table.Erase(TestFlow(i, static_cast<uint16_t>(round))));
    }
  }
  EXPECT_TRUE(table.empty());
  table[TestFlow(7, 7)] = 77;
  EXPECT_EQ(*table.Find(TestFlow(7, 7)), 77);
}

TEST(FlowTableTest, ClockCandidateSecondChance) {
  FlowTable<int> table;
  for (uint16_t i = 0; i < 4; ++i) {
    table[TestFlow(i, 1)] = i;
  }
  // Every entry was just created (referenced). The first sweep clears all
  // bits and wraps; the candidate is the oldest entry.
  const FiveTuple* victim = table.ClockCandidate();
  ASSERT_NE(victim, nullptr);
  EXPECT_EQ(victim->src_port, 0u);  // TestFlow(0, 1)
  // A Find() hit re-references entry 1; the hand (still at entry 0) skips it
  // on the next pass and names entry 2... after evicting 0 first.
  table.Find(TestFlow(1, 1));
  ASSERT_TRUE(table.Erase(*victim));
  const FiveTuple* next = table.ClockCandidate();
  ASSERT_NE(next, nullptr);
  EXPECT_EQ(next->src_port, 2u);  // TestFlow(2, 1): entry 1 got its second chance
}

TEST(FlowTableTest, ClockCandidateEmptyAndSingle) {
  FlowTable<int> table;
  EXPECT_EQ(table.ClockCandidate(), nullptr);
  table[TestFlow(1, 1)] = 1;
  const FiveTuple* only = table.ClockCandidate();
  ASSERT_NE(only, nullptr);
  EXPECT_EQ(only->src_port, 1u);
}

TEST(FlowTableTest, CapacityBoundedEvictionLoop) {
  // The usage pattern of a bounded GRO table: evict the clock's candidate
  // before each insert past the cap. The table never exceeds the cap and
  // recently-touched flows survive.
  constexpr size_t kCap = 32;
  FlowTable<int> table;
  for (uint16_t i = 0; i < 500; ++i) {
    if (table.size() >= kCap) {
      const FiveTuple* victim = table.ClockCandidate();
      ASSERT_NE(victim, nullptr);
      ASSERT_TRUE(table.Erase(*victim));
    }
    table[TestFlow(i, 1)] = i;
    EXPECT_LE(table.size(), kCap);
  }
  EXPECT_EQ(table.size(), kCap);
}

TEST(FlowTableTest, ResidentBytesGrowsWithFlowsNotChurn) {
  FlowTable<int> table;
  const size_t empty_bytes = table.resident_bytes();
  for (uint16_t i = 0; i < 1000; ++i) {
    table[TestFlow(i, 1)] = i;
  }
  const size_t full_bytes = table.resident_bytes();
  EXPECT_GT(full_bytes, empty_bytes);
  // Churning the same keys must not grow the footprint further: storage is
  // recycled, not leaked.
  for (int round = 0; round < 5; ++round) {
    for (uint16_t i = 0; i < 1000; ++i) {
      table.Erase(TestFlow(i, 1));
      table[TestFlow(i, 1)] = i;
    }
  }
  EXPECT_EQ(table.resident_bytes(), full_bytes);
}

TEST(FlowTableTest, PrefetchIsSafeForAbsentAndPresentKeys) {
  FlowTable<int> table;
  table.Prefetch(TestFlow(1, 1));  // miss: must not fault or insert
  EXPECT_TRUE(table.empty());
  table[TestFlow(1, 1)] = 7;
  table.Prefetch(TestFlow(1, 1));
  EXPECT_EQ(*table.Find(TestFlow(1, 1)), 7);
}

TEST(FlowTableTest, EraseDuringForEachOfCurrentEntry) {
  FlowTable<int> table;
  for (uint16_t i = 0; i < 20; ++i) {
    table[TestFlow(i, 1)] = i;
  }
  table.ForEach([&](const FiveTuple& key, int& v) {
    if (v % 2 == 0) {
      table.Erase(key);
    }
  });
  EXPECT_EQ(table.size(), 10u);
  std::vector<int> seen;
  table.ForEach([&](const FiveTuple&, int& v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<int>{1, 3, 5, 7, 9, 11, 13, 15, 17, 19}));
}

// Overload satellite: a churn flood of never-touched stray flows must not
// push a hot working set out of a capacity-bounded table. Clock is an LRU
// approximation, not exact LRU: the very first sweep finds every bit set,
// clears the whole ring and evicts the hand's starting entry — legitimately
// a hot flow. After that transient the hot set (re-referenced every round,
// faster than the hand revolves) is never touched again; the ~2000 steady-
// state victims are all strays. A GRO engine re-creates an evicted hot flow
// on its next packet, so the test does too, and bounds total hot casualties
// by the transient.
TEST(FlowTableTest, HotSetSurvivesChurnFloodAfterFirstSweepTransient) {
  constexpr size_t kCap = 32;
  constexpr uint16_t kHot = 8;
  FlowTable<int> table;
  for (uint16_t i = 0; i < kHot; ++i) {
    table[TestFlow(i, 1)] = i;
  }
  size_t hot_evictions = 0;
  size_t stray_evictions = 0;
  for (uint16_t stray = 0; stray < 2'000; ++stray) {
    table[TestFlow(stray, 9)] = -1;  // dst_port 9: one packet, never again
    for (uint16_t i = 0; i < kHot; ++i) {
      if (table.Find(TestFlow(i, 1)) == nullptr) {
        table[TestFlow(i, 1)] = i;  // next packet of the hot flow re-creates it
      }
    }
    while (table.size() > kCap) {
      const FiveTuple* victim = table.ClockCandidate();
      ASSERT_NE(victim, nullptr);
      (victim->dst_port == 9 ? stray_evictions : hot_evictions)++;
      ASSERT_TRUE(table.Erase(*victim));
    }
  }
  EXPECT_LE(hot_evictions, kHot) << "hot flows must only fall to the first-sweep transient";
  EXPECT_GE(stray_evictions, 1'900u);
  for (uint16_t i = 0; i < kHot; ++i) {
    EXPECT_NE(table.Find(TestFlow(i, 1)), nullptr) << "hot flow " << i << " missing at end";
  }
}

// Overload satellite: eviction must be deterministic — two tables fed the
// identical operation sequence yield the identical victim sequence. The
// sharded engine's digest invariance rests on this: under brown-out cap
// pressure every shard must pick the same victims at the same points.
TEST(FlowTableTest, VictimOrderIsDeterministicAcrossInstances) {
  auto run = [] {
    FlowTable<int> table;
    std::vector<FiveTuple> victims;
    uint64_t rng = 0x9E3779B97F4A7C15ull;
    for (int op = 0; op < 4'000; ++op) {
      rng = rng * 6364136223846793005ull + 1442695040888963407ull;
      const uint16_t port = static_cast<uint16_t>((rng >> 33) % 257);
      table[TestFlow(port, 1)] = op;
      if (table.size() > 64) {
        const FiveTuple* victim = table.ClockCandidate();
        victims.push_back(*victim);
        table.Erase(*victim);
      }
    }
    return victims;
  };
  const std::vector<FiveTuple> a = run();
  const std::vector<FiveTuple> b = run();
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a[i] == b[i]) << "victim " << i << " diverged";
  }
}

// Overload satellite: with eviction holding the live count at a bound, the
// table's memory footprint reaches a ceiling and stays there — unbounded
// churn must not translate into unbounded slot-array or slab growth.
TEST(FlowTableTest, ResidentBytesReachCeilingUnderBoundedEviction) {
  constexpr size_t kCap = 128;
  FlowTable<int> table;
  size_t high_water = 0;
  for (uint32_t i = 0; i < 50'000; ++i) {
    table[TestFlow(static_cast<uint16_t>(i & 0xFFFF), static_cast<uint16_t>(i >> 16))] = 1;
    while (table.size() > kCap) {
      const FiveTuple* victim = table.ClockCandidate();
      ASSERT_NE(victim, nullptr);
      ASSERT_TRUE(table.Erase(*victim));
    }
    if (i == 1'000) {
      high_water = table.resident_bytes();  // warmed up: rehash history settled
    }
    if (i > 1'000) {
      ASSERT_LE(table.resident_bytes(), high_water)
          << "footprint grew after warm-up at op " << i;
    }
  }
  EXPECT_EQ(table.size(), kCap);
}

}  // namespace
}  // namespace juggler
