#include <gtest/gtest.h>

#include <vector>

#include "src/cpu/cost_model.h"
#include "src/cpu/cpu_core.h"
#include "src/sim/event_loop.h"

namespace juggler {
namespace {

TEST(CpuCoreTest, WorkCompletesAfterCost) {
  EventLoop loop;
  CpuCore core(&loop, "test");
  TimeNs done_at = -1;
  core.Submit(100, [&] { done_at = loop.now(); });
  loop.Run();
  EXPECT_EQ(done_at, 100);
  EXPECT_EQ(core.busy_ns(), 100);
}

TEST(CpuCoreTest, FifoOrderPreserved) {
  EventLoop loop;
  CpuCore core(&loop, "test");
  std::vector<int> order;
  core.Submit(50, [&] { order.push_back(1); });
  core.Submit(10, [&] { order.push_back(2); });
  core.Submit(0, [&] { order.push_back(3); });
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 60);
}

TEST(CpuCoreTest, QueueingDelaysWork) {
  EventLoop loop;
  CpuCore core(&loop, "test");
  TimeNs second_done = -1;
  core.Submit(100, [] {});
  loop.Schedule(50, [&] {
    // Submitted at t=50 while the core is busy until t=100.
    core.Submit(30, [&] { second_done = loop.now(); });
    EXPECT_EQ(core.backlog_ns(), 50 + 30);
  });
  loop.Run();
  EXPECT_EQ(second_done, 130);
}

TEST(CpuCoreTest, IdleGapNotCountedBusy) {
  EventLoop loop;
  CpuCore core(&loop, "test");
  core.Submit(100, [] {});
  loop.Schedule(500, [&] { core.Submit(100, [] {}); });
  loop.Run();
  EXPECT_EQ(core.busy_ns(), 200);
  EXPECT_EQ(loop.now(), 600);
}

TEST(CpuUsageMeterTest, UtilizationOverWindow) {
  EventLoop loop;
  CpuCore core(&loop, "test");
  CpuUsageMeter meter(&core);
  meter.Reset(loop.now());
  core.Submit(250, [] {});
  loop.RunUntil(1000);
  EXPECT_DOUBLE_EQ(meter.Utilization(loop.now()), 0.25);
}

TEST(CpuUsageMeterTest, SaturationClampsToOne) {
  EventLoop loop;
  CpuCore core(&loop, "test");
  CpuUsageMeter meter(&core);
  meter.Reset(0);
  // Oversubscribe: 3000ns of work in a 1000ns window (busy_ns accrues at
  // submission, so the meter would read >1 without the clamp).
  core.Submit(3000, [] {});
  loop.RunUntil(1000);
  EXPECT_DOUBLE_EQ(meter.Utilization(1000), 1.0);
}

TEST(CostModelTest, AppSegmentCostScalesWithBytes) {
  CpuCostModel costs;
  const TimeNs small = costs.AppSegmentCost(1448);
  const TimeNs large = costs.AppSegmentCost(45 * 1448);
  EXPECT_GT(large, small);
  // Within truncation error of the per-byte linear model.
  EXPECT_NEAR(static_cast<double>(large - small), costs.tcp_per_byte * 44 * 1448, 2.0);
}

TEST(CostModelTest, BatchingReducesPerByteCpu) {
  // The core claim behind GRO: one 45-MTU segment costs far less than 45
  // one-MTU segments.
  CpuCostModel costs;
  const TimeNs batched = costs.AppSegmentCost(45 * 1448);
  const TimeNs unbatched = 45 * costs.AppSegmentCost(1448);
  EXPECT_LT(batched * 3, unbatched);
}

}  // namespace
}  // namespace juggler
