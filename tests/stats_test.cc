#include <gtest/gtest.h>

#include <cmath>

#include "src/stats/stats.h"
#include "src/stats/table_printer.h"
#include "src/util/rng.h"

namespace juggler {
namespace {

TEST(PercentileSamplerTest, ExactSmallSet) {
  PercentileSampler s;
  for (double v : {5.0, 1.0, 3.0, 2.0, 4.0}) {
    s.Add(v);
  }
  EXPECT_DOUBLE_EQ(s.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 3.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 5.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 5.0);
  EXPECT_EQ(s.count(), 5u);
}

TEST(PercentileSamplerTest, EmptyIsZero) {
  PercentileSampler s;
  EXPECT_DOUBLE_EQ(s.Percentile(99), 0.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_TRUE(s.empty());
}

TEST(PercentileSamplerTest, InterpolatesBetweenPoints) {
  PercentileSampler s;
  s.Add(0.0);
  s.Add(10.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(s.Percentile(25), 2.5);
}

TEST(PercentileSamplerTest, P99OfUniform) {
  PercentileSampler s;
  Rng rng(5);
  for (int i = 0; i < 100000; ++i) {
    s.Add(rng.NextDouble() * 100.0);
  }
  EXPECT_NEAR(s.Percentile(99), 99.0, 0.5);
  EXPECT_NEAR(s.Mean(), 50.0, 0.5);
  EXPECT_NEAR(s.StdDev(), 100.0 / std::sqrt(12.0), 0.5);
}

TEST(PercentileSamplerTest, ReservoirKeepsDistribution) {
  PercentileSampler s(1024);  // force reservoir mode
  Rng rng(6);
  for (int i = 0; i < 200000; ++i) {
    s.Add(rng.NextDouble() * 100.0);
  }
  EXPECT_EQ(s.count(), 200000u);
  EXPECT_NEAR(s.Percentile(50), 50.0, 5.0);
  // Mean/extremes are exact regardless of sampling.
  EXPECT_NEAR(s.Mean(), 50.0, 0.5);
  EXPECT_LT(s.Max(), 100.0);
}

TEST(PercentileSamplerTest, ClearResets) {
  PercentileSampler s;
  s.Add(1.0);
  s.Clear();
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.Percentile(50), 0.0);
}

TEST(HistogramTest, BinningAndClamping) {
  Histogram h(0, 10, 10);
  h.Add(0.5);
  h.Add(5.5);
  h.Add(-3.0);   // clamps to first bin
  h.Add(100.0);  // clamps to last bin
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(HistogramTest, Cdf) {
  Histogram h(0, 10, 10);
  for (int i = 0; i < 10; ++i) {
    h.Add(i + 0.5);
  }
  EXPECT_NEAR(h.CdfAt(5.0), 0.5, 1e-9);
  EXPECT_NEAR(h.CdfAt(10.0), 1.0, 1e-9);
}

TEST(TimeSeriesTest, BinsAndRates) {
  TimeSeries ts(0, Ms(1), 10);
  ts.Add(Us(500), 100.0);
  ts.Add(Us(900), 50.0);
  ts.Add(Ms(5), 200.0);
  ts.Add(Ms(100), 999.0);  // out of range: ignored
  ts.Add(-5, 999.0);       // before start: ignored
  EXPECT_DOUBLE_EQ(ts.bin_sum(0), 150.0);
  EXPECT_DOUBLE_EQ(ts.bin_sum(5), 200.0);
  // 150 units in 1ms = 150000 units/sec.
  EXPECT_DOUBLE_EQ(ts.bin_rate(0), 150000.0);
  EXPECT_EQ(ts.bin_start(5), Ms(5));
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer_name", "2.50"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer_name"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  // Each row ends without trailing spaces.
  EXPECT_EQ(out.find(" \n"), std::string::npos);
}

TEST(TablePrinterTest, NumFormatting) {
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Num(2.0, 0), "2");
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"1"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find('1'), std::string::npos);
}

}  // namespace
}  // namespace juggler
