#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/util/intrusive_list.h"
#include "src/util/rng.h"
#include "src/util/seq.h"
#include "src/util/time.h"

namespace juggler {
namespace {

// ---- time ----

TEST(TimeTest, UnitConversions) {
  EXPECT_EQ(Us(15), 15'000);
  EXPECT_EQ(Ms(2), 2'000'000);
  EXPECT_EQ(Sec(1), 1'000'000'000);
  EXPECT_DOUBLE_EQ(ToUs(Us(52)), 52.0);
  EXPECT_DOUBLE_EQ(ToSec(Sec(3)), 3.0);
}

TEST(TimeTest, SerializationTimeAt10G) {
  // 1500 bytes at 10Gb/s = 1.2us.
  EXPECT_EQ(SerializationTime(1500, 10 * kGbps), 1200);
}

TEST(TimeTest, SerializationTimeRoundsUp) {
  // 1 byte at 3 Gb/s = 8/3 ns -> 3 ns.
  EXPECT_EQ(SerializationTime(1, 3 * kGbps), 3);
}

TEST(TimeTest, RateBps) {
  EXPECT_DOUBLE_EQ(RateBps(1'250'000'000, Sec(1)), 10e9);
  EXPECT_DOUBLE_EQ(RateBps(100, 0), 0.0);
}

// ---- seq ----

TEST(SeqTest, BasicOrdering) {
  EXPECT_TRUE(SeqBefore(1, 2));
  EXPECT_FALSE(SeqBefore(2, 2));
  EXPECT_TRUE(SeqAfter(3, 2));
  EXPECT_TRUE(SeqBeforeEq(2, 2));
  EXPECT_TRUE(SeqAfterEq(2, 2));
}

TEST(SeqTest, WrapAround) {
  const Seq near_max = 0xfffffff0u;
  const Seq wrapped = 0x10u;
  EXPECT_TRUE(SeqBefore(near_max, wrapped));
  EXPECT_TRUE(SeqAfter(wrapped, near_max));
  EXPECT_EQ(SeqDelta(near_max, wrapped), 0x20);
  EXPECT_EQ(SeqMax(near_max, wrapped), wrapped);
  EXPECT_EQ(SeqMin(near_max, wrapped), near_max);
}

TEST(SeqTest, InRangeAcrossWrap) {
  EXPECT_TRUE(SeqInRange(0x5, 0xfffffff0u, 0x10));
  EXPECT_FALSE(SeqInRange(0x20, 0xfffffff0u, 0x10));
  EXPECT_TRUE(SeqInRange(0xfffffff5u, 0xfffffff0u, 0x10));
}

TEST(SeqTest, DeltaIsSigned) {
  EXPECT_EQ(SeqDelta(10, 4), -6);
  EXPECT_EQ(SeqDelta(4, 10), 6);
}

// ---- rng ----

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.NextU64() == b.NextU64() ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BoundedStaysInBounds) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng.NextBounded(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(11);
  bool hit_lo = false;
  bool hit_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= v == -3;
    hit_hi |= v == 3;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextExponential(5.0);
  }
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    hits += rng.NextBool(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ForkIndependence) {
  Rng a(21);
  Rng b = a.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.NextU64() == b.NextU64() ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

// ---- intrusive list ----

struct Item {
  int value = 0;
  IntrusiveListNode list_node;
};

using ItemList = IntrusiveList<Item, &Item::list_node>;

TEST(IntrusiveListTest, PushPopOrder) {
  ItemList list;
  Item a{1, {}}, b{2, {}}, c{3, {}};
  EXPECT_TRUE(list.empty());
  list.PushBack(&a);
  list.PushBack(&b);
  list.PushFront(&c);
  EXPECT_EQ(list.size(), 3u);
  EXPECT_EQ(list.front(), &c);
  EXPECT_EQ(list.back(), &b);
  EXPECT_EQ(list.PopFront(), &c);
  EXPECT_EQ(list.PopFront(), &a);
  EXPECT_EQ(list.PopFront(), &b);
  EXPECT_EQ(list.PopFront(), nullptr);
  EXPECT_TRUE(list.empty());
}

TEST(IntrusiveListTest, RemoveMiddle) {
  ItemList list;
  Item a{1, {}}, b{2, {}}, c{3, {}};
  list.PushBack(&a);
  list.PushBack(&b);
  list.PushBack(&c);
  list.Remove(&b);
  EXPECT_EQ(list.size(), 2u);
  EXPECT_FALSE(ItemList::IsLinked(&b));
  EXPECT_TRUE(ItemList::IsLinked(&a));
  std::vector<int> order;
  for (Item* item : list) {
    order.push_back(item->value);
  }
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(IntrusiveListTest, MoveBetweenLists) {
  ItemList x;
  ItemList y;
  Item a{1, {}};
  x.PushBack(&a);
  x.Remove(&a);
  y.PushBack(&a);
  EXPECT_TRUE(x.empty());
  EXPECT_EQ(y.front(), &a);
}

TEST(IntrusiveListTest, NextOfSupportsRemovalLoop) {
  ItemList list;
  Item items[5];
  for (int i = 0; i < 5; ++i) {
    items[i].value = i;
    list.PushBack(&items[i]);
  }
  // Remove even values while iterating.
  Item* it = list.front();
  while (it != nullptr) {
    Item* next = list.NextOf(it);
    if (it->value % 2 == 0) {
      list.Remove(it);
    }
    it = next;
  }
  std::vector<int> order;
  for (Item* item : list) {
    order.push_back(item->value);
  }
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

}  // namespace
}  // namespace juggler
