// Seeded fuzz smoke (ctest -L fuzz): a short supervisor run over randomized
// scenarios with NO planted defects must produce zero findings — the stack
// survives everything the sampler throws at it — and finish well inside the
// 60s budget. A finding here is a real regression: the printed bundle JSON
// is the repro.

#include <gtest/gtest.h>

#include "src/forensics/fuzz_supervisor.h"
#include "src/forensics/repro_bundle.h"

namespace juggler {
namespace {

TEST(FuzzSmokeTest, SeededSweepIsClean) {
  FuzzOptions opt;
  opt.seed = 20260805;
  opt.num_specs = 12;
  opt.timeout_ms = 45'000;
  opt.shrink = false;  // nothing to shrink on a clean tree; keep the smoke fast
  opt.verbose = false;

  const FuzzReport report = RunFuzz(opt);
  EXPECT_EQ(report.specs_run, 12);
  for (const FuzzFinding& f : report.findings) {
    ReproBundle bundle;
    bundle.spec = f.spec;
    bundle.signature = f.signature;
    ADD_FAILURE() << "unexpected " << SignatureKindName(f.signature.kind) << ": "
                  << f.signature.detail << "\nrepro bundle:\n"
                  << bundle.ToJson().Dump(2);
  }
  EXPECT_EQ(report.failures, 0);
}

// Same contract with the application layer riding every spec: app_prob 1.0
// forces an RPC / bulk-transfer / incast / replication workload (drawn from
// each spec's seed) onto every sampled scenario. Zero findings means the
// retry/deadline/backoff state machines degrade gracefully — no hung
// requests, no auditor violations — under everything the sampler throws.
TEST(FuzzSmokeTest, SeededAppWorkloadSweepIsClean) {
  FuzzOptions opt;
  opt.seed = 20260808;
  opt.num_specs = 8;
  opt.timeout_ms = 45'000;
  opt.limits.app_prob = 1.0;
  opt.shrink = false;
  opt.verbose = false;

  const FuzzReport report = RunFuzz(opt);
  EXPECT_EQ(report.specs_run, 8);
  for (const FuzzFinding& f : report.findings) {
    ReproBundle bundle;
    bundle.spec = f.spec;
    bundle.signature = f.signature;
    ADD_FAILURE() << "unexpected " << SignatureKindName(f.signature.kind) << ": "
                  << f.signature.detail << "\nrepro bundle:\n"
                  << bundle.ToJson().Dump(2);
  }
  EXPECT_EQ(report.failures, 0);
}

}  // namespace
}  // namespace juggler
