#include <gtest/gtest.h>

#include <memory>

#include "src/gro/baseline_gro.h"
#include "src/gro/presto_gro.h"
#include "tests/test_util.h"

namespace juggler {
namespace {

GroHarness MakeStandard() {
  return GroHarness([](const CpuCostModel* c) { return std::make_unique<StandardGro>(c); });
}

GroHarness MakeNo() {
  return GroHarness([](const CpuCostModel* c) { return std::make_unique<NoGro>(c); });
}

GroHarness MakeLinked() {
  return GroHarness([](const CpuCostModel* c) { return std::make_unique<LinkedListGro>(c); });
}

GroHarness MakePresto() {
  return GroHarness(
      [](const CpuCostModel* c) { return std::make_unique<PrestoGro>(c, PrestoGroConfig{}); });
}

TEST(NoGroTest, DeliversEveryPacketIndividually) {
  GroHarness h = MakeNo();
  const FiveTuple flow = TestFlow();
  for (int i = 0; i < 5; ++i) {
    h.Receive(MakeDataPacket(flow, static_cast<Seq>(i) * kMss, kMss));
  }
  h.PollComplete();
  EXPECT_EQ(h.delivered().size(), 5u);
  EXPECT_EQ(h.engine()->stats().segments_out, 5u);
}

TEST(StandardGroTest, MergesInOrderBurst) {
  GroHarness h = MakeStandard();
  const FiveTuple flow = TestFlow();
  for (int i = 0; i < 10; ++i) {
    h.Receive(MakeDataPacket(flow, static_cast<Seq>(i) * kMss, kMss));
  }
  EXPECT_TRUE(h.delivered().empty());  // held until poll end
  h.PollComplete();
  ASSERT_EQ(h.delivered().size(), 1u);
  EXPECT_EQ(h.delivered()[0].payload_len, 10 * kMss);
  EXPECT_EQ(h.delivered()[0].mtu_count, 10u);
  EXPECT_EQ(h.engine()->stats().AvgBatchingExtent(), 10.0);
}

TEST(StandardGroTest, OutOfOrderPacketFlushesHeldSegment) {
  GroHarness h = MakeStandard();
  const FiveTuple flow = TestFlow();
  h.Receive(MakeDataPacket(flow, 0, kMss));
  h.Receive(MakeDataPacket(flow, kMss, kMss));
  // Gap: packet 3 skipped, packet 4 arrives.
  h.Receive(MakeDataPacket(flow, 3 * kMss, kMss));
  ASSERT_EQ(h.delivered().size(), 1u);  // the [0,2) segment flushed
  EXPECT_EQ(h.delivered()[0].payload_len, 2 * kMss);
  EXPECT_EQ(h.engine()->stats().ooo_packets, 1u);
  h.PollComplete();
  EXPECT_EQ(h.delivered().size(), 2u);
}

TEST(StandardGroTest, AlternatingReorderKillsBatching) {
  // The §3 pathology: every other packet out of sequence -> every arrival
  // flushes.
  GroHarness h = MakeStandard();
  const FiveTuple flow = TestFlow();
  const Seq seqs[] = {0, 2, 1, 4, 3, 6, 5, 8, 7, 9};
  for (Seq s : seqs) {
    h.Receive(MakeDataPacket(flow, s * kMss, kMss));
  }
  h.PollComplete();
  EXPECT_GE(h.delivered().size(), 8u);
  EXPECT_LT(h.engine()->stats().AvgBatchingExtent(), 1.5);
}

TEST(StandardGroTest, SizeLimitFlushesAt64K) {
  GroHarness h = MakeStandard();
  const FiveTuple flow = TestFlow();
  for (uint32_t i = 0; i < 46; ++i) {
    h.Receive(MakeDataPacket(flow, i * kMss, kMss));
  }
  // 45 MTUs fill one segment; the 46th starts a new one.
  ASSERT_EQ(h.delivered().size(), 1u);
  EXPECT_EQ(h.delivered()[0].payload_len, kMaxTsoPayload);
  h.PollComplete();
  EXPECT_EQ(h.delivered().size(), 2u);
}

TEST(StandardGroTest, PshFlushesImmediately) {
  GroHarness h = MakeStandard();
  const FiveTuple flow = TestFlow();
  h.Receive(MakeDataPacket(flow, 0, kMss));
  h.Receive(MakeDataPacket(flow, kMss, kMss, kFlagAck | kFlagPsh));
  ASSERT_EQ(h.delivered().size(), 1u);
  EXPECT_EQ(h.delivered()[0].payload_len, 2 * kMss);
}

TEST(StandardGroTest, PureAcksPassThrough) {
  GroHarness h = MakeStandard();
  h.Receive(MakeAckPacket(TestFlow(), 1000));
  ASSERT_EQ(h.delivered().size(), 1u);
  EXPECT_EQ(h.delivered()[0].payload_len, 0u);
  EXPECT_EQ(h.delivered()[0].ack_seq, 1000u);
  EXPECT_EQ(h.engine()->stats().acks_in, 1u);
}

TEST(StandardGroTest, FlowsAreIndependent) {
  GroHarness h = MakeStandard();
  const FiveTuple f1 = TestFlow(1, 1);
  const FiveTuple f2 = TestFlow(2, 2);
  h.Receive(MakeDataPacket(f1, 0, kMss));
  h.Receive(MakeDataPacket(f2, 5000, kMss));
  h.Receive(MakeDataPacket(f1, kMss, kMss));
  h.PollComplete();
  EXPECT_EQ(h.delivered().size(), 2u);
}

TEST(StandardGroTest, MetaMismatchSplitsSegments) {
  GroHarness h = MakeStandard();
  const FiveTuple flow = TestFlow();
  h.Receive(MakeDataPacket(flow, 0, kMss));
  auto p = MakeDataPacket(flow, kMss, kMss);
  p->ce_mark = true;  // CE transition cannot be merged away
  h.Receive(std::move(p));
  ASSERT_EQ(h.delivered().size(), 1u);
  h.PollComplete();
  EXPECT_EQ(h.delivered().size(), 2u);
  EXPECT_TRUE(h.delivered()[1].ce_mark);
}

TEST(LinkedListGroTest, BatchesDespiteReorder) {
  GroHarness h = MakeLinked();
  const FiveTuple flow = TestFlow();
  const Seq seqs[] = {0, 2, 1, 4, 3};
  for (Seq s : seqs) {
    h.Receive(MakeDataPacket(flow, s * kMss, kMss));
  }
  EXPECT_TRUE(h.delivered().empty());  // chained, not flushed
  h.PollComplete();
  // Delivered as runs in arrival order; order correction is TCP's problem.
  EXPECT_GE(h.delivered().size(), 2u);
  EXPECT_EQ(TotalPayload(h.delivered()), 5u * kMss);
}

TEST(LinkedListGroTest, CostsMoreThanStandardInOrder) {
  // §3.1: linked-list batching costs ~50% more CPU even on in-order traffic.
  GroHarness std_h = MakeStandard();
  GroHarness ll_h = MakeLinked();
  const FiveTuple flow = TestFlow();
  TimeNs std_cost = 0;
  TimeNs ll_cost = 0;
  for (int i = 0; i < 100; ++i) {
    std_cost += std_h.Receive(MakeDataPacket(flow, static_cast<Seq>(i) * kMss, kMss));
    ll_cost += ll_h.Receive(MakeDataPacket(flow, static_cast<Seq>(i) * kMss, kMss));
  }
  EXPECT_GT(ll_cost, std_cost * 5 / 4);
}

TEST(PrestoGroTest, ReordersAcrossRuns) {
  GroHarness h = MakePresto();
  const FiveTuple flow = TestFlow();
  h.Receive(MakeDataPacket(flow, 0, kMss));
  h.Receive(MakeDataPacket(flow, 2 * kMss, kMss));  // early
  h.Receive(MakeDataPacket(flow, kMss, kMss));      // fills the gap
  h.PollComplete();
  ASSERT_EQ(h.delivered().size(), 1u);
  EXPECT_EQ(h.delivered()[0].payload_len, 3 * kMss);
}

TEST(PrestoGroTest, FlowTableGrowsWithoutBound) {
  // The §3.3 criticism: Presto keeps state for every connection it sees.
  GroHarness h = MakePresto();
  auto* presto = static_cast<PrestoGro*>(h.engine());
  for (uint16_t i = 0; i < 500; ++i) {
    h.Receive(MakeDataPacket(TestFlow(i, 1), 0, kMss));
    h.PollComplete();
  }
  EXPECT_EQ(presto->flow_table_size(), 500u);
}

TEST(PrestoGroTest, OooFlushedAfterCoarseTimeout) {
  GroHarness h = MakePresto();
  const FiveTuple flow = TestFlow();
  h.Receive(MakeDataPacket(flow, 0, kMss));
  h.PollComplete();
  h.TakeDelivered();
  h.Receive(MakeDataPacket(flow, 2 * kMss, kMss));  // hole at kMss
  h.PollComplete();
  EXPECT_TRUE(h.delivered().empty());
  h.Advance(Ms(2));  // beyond the 1ms coarse timeout
  h.PollComplete();
  ASSERT_EQ(h.delivered().size(), 1u);
  EXPECT_EQ(h.delivered()[0].seq, 2 * kMss);
}

TEST(PrestoGroTest, OooBufferSurvivesSequenceWrap) {
  // Regression: the OOO buffer used to be keyed by raw sequence number, so a
  // run buffered just past the 2^32 wrap (tiny uint32_t) sorted BEFORE a run
  // buffered just under it (huge uint32_t). DrainContiguous inspects
  // map.begin() and stops when its start doesn't match `expected`, so the
  // mis-sorted post-wrap run stalled the drain even though the pre-wrap run
  // was contiguous. Keying by offset from ooo_base restores serial order.
  GroHarness h = MakePresto();
  const FiveTuple flow = TestFlow();
  const Seq start = static_cast<Seq>(0) - 3 * kMss;  // 3 MTUs shy of the wrap

  h.Receive(MakeDataPacket(flow, start, kMss));
  h.PollComplete();
  h.TakeDelivered();
  // expected is now start + kMss; leave a one-packet hole there.

  // Buffer the post-wrap run first so the two runs cannot coalesce on
  // insert, then the pre-wrap run that the hole-fill must drain first.
  h.Receive(MakeDataPacket(flow, 0, kMss));                            // post-wrap
  h.Receive(MakeDataPacket(flow, static_cast<Seq>(0) - kMss, kMss));  // pre-wrap
  EXPECT_TRUE(h.delivered().empty());

  h.Receive(MakeDataPacket(flow, start + kMss, kMss));  // fills the hole
  h.PollComplete();
  ASSERT_EQ(h.delivered().size(), 1u);
  EXPECT_EQ(h.delivered()[0].seq, start + kMss);
  EXPECT_EQ(h.delivered()[0].payload_len, 3 * kMss);  // hole + both runs

  // Nothing left riding the coarse timeout: the buffer fully drained.
  h.TakeDelivered();
  h.Advance(Ms(2));
  h.PollComplete();
  EXPECT_TRUE(h.delivered().empty());
}

TEST(PrestoGroTest, RetransmissionPassesThrough) {
  GroHarness h = MakePresto();
  const FiveTuple flow = TestFlow();
  h.Receive(MakeDataPacket(flow, 10 * kMss, kMss));
  h.PollComplete();
  h.TakeDelivered();
  h.Receive(MakeDataPacket(flow, 0, kMss));  // before expected
  ASSERT_EQ(h.delivered().size(), 1u);
  EXPECT_EQ(h.delivered()[0].seq, 0u);
}

}  // namespace
}  // namespace juggler
