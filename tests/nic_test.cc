#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/juggler.h"
#include "src/gro/baseline_gro.h"
#include "src/nic/nic_rx.h"
#include "src/nic/nic_tx.h"
#include "src/sim/event_loop.h"
#include "tests/test_util.h"

namespace juggler {
namespace {

class SegmentCollector : public SegmentSink {
 public:
  explicit SegmentCollector(EventLoop* loop) : loop_(loop) {}
  void OnSegment(Segment segment) override {
    times.push_back(loop_->now());
    segments.push_back(std::move(segment));
  }
  std::vector<Segment> segments;
  std::vector<TimeNs> times;

 private:
  EventLoop* loop_;
};

class PacketCollector : public PacketSink {
 public:
  void Accept(PacketPtr p) override { packets.push_back(std::move(p)); }
  std::vector<PacketPtr> packets;
};

NicRx::GroFactory StandardFactory() {
  return [](const CpuCostModel* c) -> std::unique_ptr<GroEngine> {
    return std::make_unique<StandardGro>(c);
  };
}

NicRx::GroFactory JugglerFactory(JugglerConfig config = {}) {
  return [config](const CpuCostModel* c) -> std::unique_ptr<GroEngine> {
    return std::make_unique<Juggler>(c, config);
  };
}

PacketPtr Wire(PacketFactory* f, Seq seq, uint32_t len = kMss) {
  PacketPtr p = f->Make();
  p->flow = TestFlow();
  p->seq = seq;
  p->payload_len = len;
  p->flags = kFlagAck;
  return p;
}

// ---- NicRx ----

TEST(NicRxTest, FirstPacketInterruptsImmediately) {
  EventLoop loop;
  PacketFactory f;
  CpuCostModel costs;
  SegmentCollector sink(&loop);
  NicRxConfig cfg;
  NicRx nic(&loop, &costs, cfg, StandardFactory(), &sink);
  nic.Accept(Wire(&f, 0));
  loop.Run();
  // Delivered after (zero wait) + poll overhead + per-packet costs.
  ASSERT_EQ(sink.segments.size(), 1u);
  EXPECT_LT(sink.times[0], Us(5));
  EXPECT_EQ(nic.stats().interrupts, 1u);
}

TEST(NicRxTest, InterruptModerationBatches) {
  EventLoop loop;
  PacketFactory f;
  CpuCostModel costs;
  SegmentCollector sink(&loop);
  NicRxConfig cfg;
  cfg.int_coalesce = Us(100);
  NicRx nic(&loop, &costs, cfg, StandardFactory(), &sink);
  // 50 packets spaced 1us (line-rate-ish): the first interrupt fires at t=0
  // and NAPI stays in polling mode while packets keep landing, so the whole
  // burst is one or two polling sessions and GRO merges it into large
  // segments (45-MTU cap).
  for (Seq s = 0; s < 50; ++s) {
    loop.Schedule(s * Us(1), [&nic, &f, s] { nic.Accept(Wire(&f, s * kMss)); });
  }
  loop.Run();
  EXPECT_LE(nic.stats().interrupts, 2u);
  // GRO flushes per poll round, so the burst splits across a handful of
  // rounds — far fewer segments than packets.
  EXPECT_LE(sink.segments.size(), 25u);
  EXPECT_EQ(TotalPayload(sink.segments), 50u * kMss);
}

TEST(NicRxTest, ChargesRxCore) {
  EventLoop loop;
  PacketFactory f;
  CpuCostModel costs;
  SegmentCollector sink(&loop);
  NicRxConfig cfg;
  NicRx nic(&loop, &costs, cfg, StandardFactory(), &sink);
  for (Seq s = 0; s < 10; ++s) {
    nic.Accept(Wire(&f, s * kMss));
  }
  loop.Run();
  // At least driver+gro per packet plus poll overhead.
  EXPECT_GE(nic.rx_core(0)->busy_ns(),
            10 * (costs.driver_per_packet + costs.gro_per_packet) + costs.napi_poll_overhead);
}

TEST(NicRxTest, SegmentsDeliveredAfterCpuWork) {
  EventLoop loop;
  PacketFactory f;
  CpuCostModel costs;
  SegmentCollector sink(&loop);
  NicRxConfig cfg;
  NicRx nic(&loop, &costs, cfg, StandardFactory(), &sink);
  nic.Accept(Wire(&f, 0));
  loop.Run();
  ASSERT_EQ(sink.times.size(), 1u);
  EXPECT_GE(sink.times[0], costs.napi_poll_overhead + costs.driver_per_packet);
}

TEST(NicRxTest, RingOverflowDrops) {
  EventLoop loop;
  PacketFactory f;
  CpuCostModel costs;
  SegmentCollector sink(&loop);
  NicRxConfig cfg;
  cfg.ring_capacity = 8;
  cfg.int_coalesce = Ms(10);  // hold off polling so the ring fills
  NicRx nic(&loop, &costs, cfg, StandardFactory(), &sink);
  nic.Accept(Wire(&f, 0));  // first interrupt fires immediately though
  loop.RunSteps(1);
  // Now stuff the ring between polls.
  for (Seq s = 1; s < 20; ++s) {
    nic.Accept(Wire(&f, s * kMss));
  }
  EXPECT_GT(nic.stats().ring_drops, 0u);
}

TEST(NicRxTest, RssSpreadsFlowsAcrossQueues) {
  EventLoop loop;
  PacketFactory f;
  CpuCostModel costs;
  SegmentCollector sink(&loop);
  NicRxConfig cfg;
  cfg.num_queues = 4;
  NicRx nic(&loop, &costs, cfg, StandardFactory(), &sink);
  for (uint16_t port = 0; port < 64; ++port) {
    PacketPtr p = f.Make();
    p->flow = TestFlow(port, 80);
    p->payload_len = kMss;
    p->flags = kFlagAck;
    nic.Accept(std::move(p));
  }
  loop.Run();
  int queues_used = 0;
  for (size_t q = 0; q < 4; ++q) {
    queues_used += nic.gro(q)->stats().packets_in > 0 ? 1 : 0;
  }
  EXPECT_EQ(queues_used, 4);
  EXPECT_EQ(sink.segments.size() > 0, true);
}

TEST(NicRxTest, ForceQueuePinsAllFlows) {
  EventLoop loop;
  PacketFactory f;
  CpuCostModel costs;
  SegmentCollector sink(&loop);
  NicRxConfig cfg;
  cfg.num_queues = 4;
  cfg.force_queue = 2;
  NicRx nic(&loop, &costs, cfg, StandardFactory(), &sink);
  for (uint16_t port = 0; port < 16; ++port) {
    PacketPtr p = f.Make();
    p->flow = TestFlow(port, 80);
    p->payload_len = kMss;
    p->flags = kFlagAck;
    nic.Accept(std::move(p));
  }
  loop.Run();
  EXPECT_EQ(nic.gro(2)->stats().packets_in, 16u);
  EXPECT_EQ(nic.gro(0)->stats().packets_in, 0u);
}

TEST(NicRxTest, JugglerTimerFiresThroughNic) {
  // The hrtimer path: in-sequence data held by Juggler must flush via the
  // NIC-armed timer even if no further packets or polls happen.
  EventLoop loop;
  PacketFactory f;
  CpuCostModel costs;
  SegmentCollector sink(&loop);
  NicRxConfig cfg;
  JugglerConfig jcfg;
  jcfg.inseq_timeout = Us(15);
  NicRx nic(&loop, &costs, cfg, JugglerFactory(jcfg), &sink);
  nic.Accept(Wire(&f, 0));
  loop.Run();  // runs until the timer fires and the flush completes
  ASSERT_EQ(sink.segments.size(), 1u);
  EXPECT_GE(sink.times[0], Us(15));
  EXPECT_LT(sink.times[0], Us(40));
}

TEST(NicRxTest, JugglerReorderAbsorbedInsideOnePoll) {
  EventLoop loop;
  PacketFactory f;
  CpuCostModel costs;
  SegmentCollector sink(&loop);
  NicRxConfig cfg;
  NicRx nic(&loop, &costs, cfg, JugglerFactory(), &sink);
  const Seq order[] = {0, 2, 1, 4, 3, 5};
  for (Seq s : order) {
    nic.Accept(Wire(&f, s * kMss));
  }
  loop.Run();
  ASSERT_EQ(sink.segments.size(), 1u);  // one in-order segment
  EXPECT_EQ(sink.segments[0].payload_len, 6 * kMss);
}

// ---- NAPI edge cases ----

TEST(NicRxTest, BudgetExhaustionMidBatchSplitsPollRounds) {
  // 20 packets against an 8-packet budget: the NAPI loop must cut the batch
  // at the budget boundary, count the exhaustion, re-poll, and still deliver
  // every byte (budget caps latency per round, never drops).
  EventLoop loop;
  PacketFactory f;
  CpuCostModel costs;
  SegmentCollector sink(&loop);
  NicRxConfig cfg;
  cfg.napi_budget = 8;
  cfg.int_coalesce = Ms(10);  // one interrupt; the burst drains via re-polls
  NicRx nic(&loop, &costs, cfg, StandardFactory(), &sink);
  nic.Accept(Wire(&f, 0));
  loop.RunSteps(1);  // first interrupt fired; now stuff the ring between polls
  for (Seq s = 1; s < 20; ++s) {
    nic.Accept(Wire(&f, s * kMss));
  }
  loop.Run();
  EXPECT_GT(nic.stats().napi_budget_exhausted, 0u);
  EXPECT_GT(nic.stats().polls, 2u) << "a 20-packet ring cannot drain in <= 2 rounds of 8";
  EXPECT_EQ(nic.stats().ring_drops, 0u);
  EXPECT_EQ(TotalPayload(sink.segments), 20u * kMss);
}

TEST(NicRxTest, CoalesceTimerFiresAtBatchBoundary) {
  // A packet landing inside the coalescing window arms the deferred
  // interrupt; a second batch arriving exactly at that deadline must ride
  // the armed interrupt (not arm another, not get stranded).
  EventLoop loop;
  PacketFactory f;
  CpuCostModel costs;
  SegmentCollector sink(&loop);
  NicRxConfig cfg;
  cfg.int_coalesce = Us(100);
  NicRx nic(&loop, &costs, cfg, StandardFactory(), &sink);
  nic.Accept(Wire(&f, 0));  // interrupt at t=0
  // Arrives after the first poll session ended but inside tau0: deferred.
  loop.Schedule(Us(40), [&] { nic.Accept(Wire(&f, 1 * kMss)); });
  // A batch landing exactly at the armed deadline (t = 100us).
  for (Seq s = 2; s < 6; ++s) {
    loop.Schedule(Us(100), [&nic, &f, s] { nic.Accept(Wire(&f, s * kMss)); });
  }
  loop.Run();
  EXPECT_GT(nic.stats().coalesce_arms, 0u) << "the 40us packet must defer behind tau0";
  EXPECT_EQ(nic.stats().interrupts, 2u)
      << "the boundary batch must ride the armed interrupt";
  EXPECT_EQ(TotalPayload(sink.segments), 6u * kMss);
}

TEST(NicRxTest, RingTailDropInterleavedWithPerPacketDispatch) {
  // Tail drops with the per-packet reference arm on: the dropped packets
  // vanish at the ring (counted), and everything the ring accepted is
  // delivered through the one-packet-at-a-time GRO path — byte-identical
  // accounting to the batched arm.
  auto run = [](bool per_packet) {
    EventLoop loop;
    PacketFactory f;
    CpuCostModel costs;
    SegmentCollector sink(&loop);
    NicRxConfig cfg;
    cfg.ring_capacity = 8;
    cfg.int_coalesce = Ms(10);
    cfg.per_packet_dispatch = per_packet;
    NicRx nic(&loop, &costs, cfg, StandardFactory(), &sink);
    nic.Accept(Wire(&f, 0));
    loop.RunSteps(1);
    for (Seq s = 1; s < 20; ++s) {
      nic.Accept(Wire(&f, s * kMss));
    }
    loop.Run();
    EXPECT_GT(nic.stats().ring_drops, 0u);
    EXPECT_EQ(TotalPayload(sink.segments),
              (nic.stats().packets_in - nic.stats().ring_drops) * kMss)
        << "per_packet=" << per_packet;
    return std::make_pair(nic.stats().ring_drops, TotalPayload(sink.segments));
  };
  const auto batched = run(false);
  const auto per_packet = run(true);
  EXPECT_EQ(batched, per_packet) << "dispatch mode must not change drop accounting";
}

// ---- CorecRx ----

NicRxConfig CorecConfig() {
  NicRxConfig cfg;
  cfg.driver = RxDriverKind::kCorec;
  return cfg;
}

TEST(CorecRxTest, ReorderAbsorbedThroughHandoff) {
  // The concurrent claim/commit machinery must hand GRO the ring order:
  // Juggler then absorbs the wire reorder exactly as it does behind NAPI.
  EventLoop loop;
  PacketFactory f;
  CpuCostModel costs;
  SegmentCollector sink(&loop);
  std::unique_ptr<RxDriver> nic =
      MakeRxDriver(&loop, &costs, CorecConfig(), JugglerFactory(), &sink);
  const Seq order[] = {0, 2, 1, 4, 3, 5};
  for (Seq s : order) {
    nic->Accept(Wire(&f, s * kMss));
  }
  loop.Run();
  ASSERT_EQ(sink.segments.size(), 1u);
  EXPECT_EQ(sink.segments[0].payload_len, 6 * kMss);
  ASSERT_NE(nic->corec_stats(), nullptr);
  EXPECT_EQ(nic->corec_stats()->claimed_packets, 6u);
}

TEST(CorecRxTest, OutOfOrderCommitsAreCountedAndReordered) {
  // 40 packets against 4 consumers x 16-descriptor windows: the third
  // consumer's short window (8 packets) completes before the first two
  // 16-packet windows, so its commit is out of order, its slots park behind
  // the incomplete head (a stall), and the hand-off stage must still feed
  // GRO the full burst in ring order.
  EventLoop loop;
  PacketFactory f;
  CpuCostModel costs;
  SegmentCollector sink(&loop);
  std::unique_ptr<RxDriver> nic =
      MakeRxDriver(&loop, &costs, CorecConfig(), StandardFactory(), &sink);
  for (Seq s = 0; s < 40; ++s) {
    nic->Accept(Wire(&f, s * kMss));
  }
  loop.Run();
  const CorecRxStats& cs = *nic->corec_stats();
  EXPECT_EQ(cs.claimed_packets, 40u);
  EXPECT_EQ(cs.claims, cs.commits) << "every claimed window must commit";
  EXPECT_GT(cs.ooo_commits, 0u) << "the short window must complete first";
  EXPECT_GT(cs.handoff_stalls, 0u);
  EXPECT_GE(cs.ooo_depth_max, 1u);
  EXPECT_EQ(cs.wedged, 0u);
  EXPECT_EQ(TotalPayload(sink.segments), 40u * kMss) << "nothing may strand in the slots";
}

TEST(CorecRxTest, MatchesRssDeliveryByteForByte) {
  auto run = [](NicRxConfig cfg) {
    EventLoop loop;
    PacketFactory f;
    CpuCostModel costs;
    SegmentCollector sink(&loop);
    std::unique_ptr<RxDriver> nic =
        MakeRxDriver(&loop, &costs, cfg, JugglerFactory(), &sink);
    for (Seq s = 0; s < 30; ++s) {
      nic->Accept(Wire(&f, s * kMss));
    }
    loop.Run();
    return TotalPayload(sink.segments);
  };
  EXPECT_EQ(run(NicRxConfig{}), run(CorecConfig()));
}

TEST(CorecRxTest, WedgePlantStallsHandoffPermanently) {
  // debug_corec_wedge_depth = 1: the first stall (completed slots parked
  // behind an incomplete head window) wedges the hand-off stage for good —
  // claimed packets never reach GRO again. This is the defect the
  // rx-conformance forensics tests hunt end to end.
  EventLoop loop;
  PacketFactory f;
  CpuCostModel costs;
  SegmentCollector sink(&loop);
  NicRxConfig cfg = CorecConfig();
  cfg.debug_corec_wedge_depth = 1;
  std::unique_ptr<RxDriver> nic =
      MakeRxDriver(&loop, &costs, cfg, StandardFactory(), &sink);
  for (Seq s = 0; s < 40; ++s) {
    nic->Accept(Wire(&f, s * kMss));
  }
  loop.Run();
  EXPECT_EQ(nic->corec_stats()->wedged, 1u);
  EXPECT_LT(TotalPayload(sink.segments), 40u * kMss)
      << "a wedged hand-off cannot have delivered the full burst";
}

TEST(CorecRxTest, ParseAndNameRoundTrip) {
  RxDriverKind kind = RxDriverKind::kRss;
  EXPECT_TRUE(ParseRxDriverKind("corec", &kind));
  EXPECT_EQ(kind, RxDriverKind::kCorec);
  EXPECT_TRUE(ParseRxDriverKind("rss", &kind));
  EXPECT_EQ(kind, RxDriverKind::kRss);
  EXPECT_FALSE(ParseRxDriverKind("napi", &kind));
  EXPECT_STREQ(RxDriverKindName(RxDriverKind::kCorec), "corec");
  EXPECT_STREQ(RxDriverKindName(RxDriverKind::kRss), "rss");
}

// ---- NicTx ----

TEST(NicTxTest, SegmentsBurstIntoMtus) {
  EventLoop loop;
  PacketFactory f;
  PacketCollector wire;
  NicTx tx(&loop, &f, NicTxConfig{}, &wire);
  TsoBurst burst;
  burst.flow = TestFlow();
  burst.seq = 1000;
  burst.len = 3 * kMss + 100;
  burst.flags = kFlagAck | kFlagPsh;
  tx.SendBurst(burst);
  ASSERT_EQ(wire.packets.size(), 4u);
  EXPECT_EQ(wire.packets[0]->seq, 1000u);
  EXPECT_EQ(wire.packets[1]->seq, 1000u + kMss);
  EXPECT_EQ(wire.packets[3]->payload_len, 100u);
  // PSH only on the last packet.
  EXPECT_EQ(wire.packets[0]->flags & kFlagPsh, 0);
  EXPECT_NE(wire.packets[3]->flags & kFlagPsh, 0);
  // All packets share the burst's tso_id.
  EXPECT_EQ(wire.packets[0]->tso_id, wire.packets[3]->tso_id);
}

TEST(NicTxTest, DistinctBurstsGetDistinctTsoIds) {
  EventLoop loop;
  PacketFactory f;
  PacketCollector wire;
  NicTx tx(&loop, &f, NicTxConfig{}, &wire);
  TsoBurst burst;
  burst.flow = TestFlow();
  burst.len = kMss;
  tx.SendBurst(burst);
  burst.seq = kMss;
  tx.SendBurst(burst);
  EXPECT_NE(wire.packets[0]->tso_id, wire.packets[1]->tso_id);
}

TEST(NicTxTest, MarkerSetsPerPacketPriority) {
  EventLoop loop;
  PacketFactory f;
  PacketCollector wire;
  NicTx tx(&loop, &f, NicTxConfig{}, &wire);
  int calls = 0;
  std::function<Priority()> marker = [&calls] {
    return (calls++ % 2 == 0) ? Priority::kHigh : Priority::kLow;
  };
  TsoBurst burst;
  burst.flow = TestFlow();
  burst.len = 4 * kMss;
  burst.marker = &marker;
  tx.SendBurst(burst);
  ASSERT_EQ(wire.packets.size(), 4u);
  EXPECT_EQ(wire.packets[0]->priority, Priority::kHigh);
  EXPECT_EQ(wire.packets[1]->priority, Priority::kLow);
  EXPECT_EQ(calls, 4);
}

TEST(NicTxTest, RateLimiterSpacesPackets) {
  EventLoop loop;
  PacketFactory f;
  PacketCollector wire;
  NicTxConfig cfg;
  cfg.rate_limit_bps = 1 * kGbps;
  NicTx tx(&loop, &f, cfg, &wire);
  TsoBurst burst;
  burst.flow = TestFlow();
  burst.len = 10 * kMss;
  tx.SendBurst(burst);
  EXPECT_EQ(wire.packets.size(), 1u);  // only the first goes out now
  loop.Run();
  EXPECT_EQ(wire.packets.size(), 10u);
  // 10 wire packets at 1Gb/s: ~ (1448+90)*8*10 ns total.
  EXPECT_GE(loop.now(), SerializationTime(9 * (kMss + kPerPacketWireOverhead), cfg.rate_limit_bps));
}

TEST(NicTxTest, SendAckIsPureAck) {
  EventLoop loop;
  PacketFactory f;
  PacketCollector wire;
  NicTx tx(&loop, &f, NicTxConfig{}, &wire);
  tx.SendAck(TestFlow(), 100, 5000, 1 << 20, Priority::kHigh);
  ASSERT_EQ(wire.packets.size(), 1u);
  EXPECT_TRUE(wire.packets[0]->is_pure_ack());
  EXPECT_EQ(wire.packets[0]->ack_seq, 5000u);
  EXPECT_EQ(wire.packets[0]->ack_rwnd, 1u << 20);
  EXPECT_EQ(wire.packets[0]->priority, Priority::kHigh);
}

}  // namespace
}  // namespace juggler
