// Unit tests for the QoS controller's control law and the workload
// generators, using a stub connection (no network).

#include <gtest/gtest.h>

#include <memory>

#include "src/qos/priority_controller.h"
#include "src/workload/message_stream.h"
#include "src/workload/rpc_generator.h"
#include "tests/test_util.h"

namespace juggler {
namespace {

// A NicTx wired to a black hole, so endpoints can exist without a network.
struct NullWire : PacketSink {
  void Accept(PacketPtr) override {}
};

struct StubConnection {
  StubConnection() : nic(&loop, &factory, NicTxConfig{}, &wire) {
    endpoint = std::make_unique<TcpEndpoint>(&loop, TcpConfig{}, TestFlow(), &nic);
  }
  EventLoop loop;
  PacketFactory factory;
  NullWire wire;
  NicTx nic;
  std::unique_ptr<TcpEndpoint> endpoint;
};

TEST(PriorityControllerTest, PRisesWhenBelowTarget) {
  StubConnection c;
  PriorityControllerConfig cfg;
  cfg.target_rate_bps = 20 * kGbps;
  cfg.line_rate_bps = 40 * kGbps;
  cfg.alpha = 0.1;
  PriorityController controller(&c.loop, cfg, c.endpoint.get());
  controller.Start();
  // No ACKs arrive -> measured rate 0 -> p += alpha * 0.5 each period.
  c.loop.RunUntil(5 * cfg.update_period + Us(1));
  EXPECT_NEAR(controller.p(), 5 * 0.1 * 0.5, 1e-9);
}

TEST(PriorityControllerTest, PClampedToOne) {
  StubConnection c;
  PriorityControllerConfig cfg;
  cfg.target_rate_bps = 40 * kGbps;
  cfg.line_rate_bps = 40 * kGbps;
  cfg.alpha = 1.0;
  PriorityController controller(&c.loop, cfg, c.endpoint.get());
  controller.Start();
  c.loop.RunUntil(Ms(10));
  EXPECT_DOUBLE_EQ(controller.p(), 1.0);
}

TEST(PriorityControllerTest, MarkerFrequencyTracksP) {
  StubConnection c;
  PriorityControllerConfig cfg;
  cfg.target_rate_bps = 20 * kGbps;
  cfg.line_rate_bps = 40 * kGbps;
  cfg.alpha = 1.0;  // p jumps to 0.5 after one period
  PriorityController controller(&c.loop, cfg, c.endpoint.get());
  controller.Start();
  c.loop.RunUntil(cfg.update_period + Us(1));
  EXPECT_NEAR(controller.p(), 0.5, 1e-9);
  // The marking frequency itself is validated statistically end-to-end in
  // the dumbbell integration test.
}

TEST(PriorityControllerTest, StopHaltsUpdates) {
  StubConnection c;
  PriorityControllerConfig cfg;
  PriorityController controller(&c.loop, cfg, c.endpoint.get());
  controller.Start();
  c.loop.RunUntil(2 * cfg.update_period + Us(1));
  const double p = controller.p();
  controller.Stop();
  c.loop.RunUntil(Ms(10));
  EXPECT_DOUBLE_EQ(controller.p(), p);
}

TEST(MessageStreamTest, CompletionRequiresAllBytes) {
  StubConnection c;
  PercentileSampler lat;
  // Sender and receiver are the same endpoint here: we drive delivery by
  // calling the receiver's deliver callback through OnSegment data.
  StubConnection peer;
  MessageStream stream(&c.loop, c.endpoint.get(), peer.endpoint.get(), &lat);
  stream.SendMessage(10'000);
  EXPECT_EQ(stream.sent(), 1u);
  EXPECT_EQ(stream.completed(), 0u);
  // Feed the peer endpoint the full 10KB in-order.
  Segment s;
  s.flow = TestFlow();
  s.seq = 0;
  s.payload_len = 10'000;
  s.mtu_count = 7;
  s.flags = kFlagAck;
  peer.endpoint->OnSegment(s);
  EXPECT_EQ(stream.completed(), 1u);
  EXPECT_EQ(stream.outstanding(), 0u);
  EXPECT_EQ(lat.count(), 1u);
}

TEST(MessageStreamTest, PartialDeliveryDoesNotComplete) {
  StubConnection c;
  StubConnection peer;
  PercentileSampler lat;
  MessageStream stream(&c.loop, c.endpoint.get(), peer.endpoint.get(), &lat);
  stream.SendMessage(10'000);
  Segment s;
  s.flow = TestFlow();
  s.seq = 0;
  s.payload_len = 5'000;
  s.mtu_count = 4;
  s.flags = kFlagAck;
  peer.endpoint->OnSegment(s);
  EXPECT_EQ(stream.completed(), 0u);
  s.seq = 5'000;
  peer.endpoint->OnSegment(s);
  EXPECT_EQ(stream.completed(), 1u);
}

TEST(MessageStreamTest, BackToBackMessagesCompleteInOrder) {
  StubConnection c;
  StubConnection peer;
  PercentileSampler lat;
  MessageStream stream(&c.loop, c.endpoint.get(), peer.endpoint.get(), &lat);
  for (int i = 0; i < 3; ++i) {
    stream.SendMessage(1000);
  }
  Segment s;
  s.flow = TestFlow();
  s.seq = 0;
  s.payload_len = 2'500;  // 2.5 messages
  s.mtu_count = 2;
  s.flags = kFlagAck;
  peer.endpoint->OnSegment(s);
  EXPECT_EQ(stream.completed(), 2u);
  EXPECT_EQ(stream.outstanding(), 1u);
}

// A zero-length message occupies no extent in the byte stream, so no
// delivery callback can ever sweep past it: it must complete on the spot,
// without perturbing the completion order of real messages around it.
TEST(MessageStreamTest, ZeroLengthMessageCompletesImmediately) {
  StubConnection c;
  StubConnection peer;
  PercentileSampler lat;
  MessageStream stream(&c.loop, c.endpoint.get(), peer.endpoint.get(), &lat);
  stream.SendMessage(1'000);
  stream.SendMessage(0);
  EXPECT_EQ(stream.sent(), 2u);
  EXPECT_EQ(stream.completed(), 1u);  // the empty one, instantly
  EXPECT_EQ(lat.count(), 1u);
  Segment s;
  s.flow = TestFlow();
  s.seq = 0;
  s.payload_len = 1'000;
  s.mtu_count = 1;
  s.flags = kFlagAck;
  peer.endpoint->OnSegment(s);
  EXPECT_EQ(stream.completed(), 2u);
  EXPECT_EQ(stream.outstanding(), 0u);
}

// A message boundary split across two GRO flushes arriving in reverse
// order: the second half lands first (out of order, no in-order progress),
// then the first half arrives and one delivery callback sweeps the whole
// message. Completion must fire exactly once, at the sweep.
TEST(MessageStreamTest, BoundarySplitAcrossReorderedFlushes) {
  StubConnection c;
  StubConnection peer;
  PercentileSampler lat;
  MessageStream stream(&c.loop, c.endpoint.get(), peer.endpoint.get(), &lat);
  stream.SendMessage(10'000);
  Segment tail;
  tail.flow = TestFlow();
  tail.seq = 5'000;  // second half first: buffered out of order
  tail.payload_len = 5'000;
  tail.mtu_count = 4;
  tail.flags = kFlagAck;
  peer.endpoint->OnSegment(tail);
  EXPECT_EQ(stream.completed(), 0u);
  Segment head = tail;
  head.seq = 0;  // fills the gap; in-order point jumps to 10'000
  peer.endpoint->OnSegment(head);
  EXPECT_EQ(stream.completed(), 1u);
  EXPECT_EQ(lat.count(), 1u);
}

// After Close() the application is gone: retransmissions still draining
// out of the network must not complete messages, only be counted, and
// further sends are dropped.
TEST(MessageStreamTest, DeliveryAfterCloseIsLateNotCompleted) {
  StubConnection c;
  StubConnection peer;
  PercentileSampler lat;
  MessageStream stream(&c.loop, c.endpoint.get(), peer.endpoint.get(), &lat);
  stream.SendMessage(2'000);
  stream.Close();
  EXPECT_TRUE(stream.closed());
  stream.SendMessage(3'000);  // dropped, not queued
  EXPECT_EQ(stream.sent(), 1u);
  Segment s;
  s.flow = TestFlow();
  s.seq = 0;
  s.payload_len = 2'000;
  s.mtu_count = 2;
  s.flags = kFlagAck;
  peer.endpoint->OnSegment(s);
  EXPECT_EQ(stream.completed(), 0u);
  EXPECT_GE(stream.late_deliveries(), 1u);
  EXPECT_EQ(lat.count(), 0u);
}

TEST(RpcGeneratorTest, PoissonRateIsApproximatelyRight) {
  StubConnection c;
  StubConnection peer;
  MessageStream stream(&c.loop, c.endpoint.get(), peer.endpoint.get(), nullptr);
  RpcGeneratorConfig cfg;
  cfg.message_bytes = 150;
  cfg.messages_per_sec = 10'000;
  cfg.stop_time = Ms(100);
  cfg.seed = 3;
  OpenLoopRpcGenerator gen(&c.loop, cfg, {&stream});
  gen.Start();
  c.loop.RunUntil(Ms(100));
  // Expect ~1000 messages +- 15%.
  EXPECT_NEAR(static_cast<double>(gen.generated()), 1000.0, 150.0);
  EXPECT_EQ(stream.sent(), gen.generated());
}

TEST(RpcGeneratorTest, StopsAtStopTime) {
  StubConnection c;
  StubConnection peer;
  MessageStream stream(&c.loop, c.endpoint.get(), peer.endpoint.get(), nullptr);
  RpcGeneratorConfig cfg;
  cfg.messages_per_sec = 1000;
  cfg.stop_time = Ms(10);
  OpenLoopRpcGenerator gen(&c.loop, cfg, {&stream});
  gen.Start();
  c.loop.RunUntil(Ms(10));
  const uint64_t at_stop = gen.generated();
  EXPECT_GT(at_stop, 0u);
  c.loop.RunUntil(Ms(100));
  EXPECT_EQ(gen.generated(), at_stop);  // no arrivals past stop_time
}

TEST(RpcGeneratorTest, MultiplexesAcrossStreams) {
  StubConnection c;
  StubConnection peer;
  std::vector<std::unique_ptr<MessageStream>> streams;
  std::vector<MessageStream*> raw;
  for (int i = 0; i < 8; ++i) {
    streams.push_back(
        std::make_unique<MessageStream>(&c.loop, c.endpoint.get(), peer.endpoint.get(), nullptr));
    raw.push_back(streams.back().get());
  }
  RpcGeneratorConfig cfg;
  cfg.messages_per_sec = 50'000;
  cfg.stop_time = Ms(20);
  OpenLoopRpcGenerator gen(&c.loop, cfg, raw);
  gen.Start();
  c.loop.RunUntil(Ms(20));
  int used = 0;
  for (const auto& s : streams) {
    used += s->sent() > 0 ? 1 : 0;
  }
  EXPECT_EQ(used, 8);
}

}  // namespace
}  // namespace juggler
