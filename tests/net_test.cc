#include <gtest/gtest.h>

#include <vector>

#include "src/net/link.h"
#include "src/net/load_balancer.h"
#include "src/net/stages.h"
#include "src/net/switch.h"
#include "src/sim/event_loop.h"
#include "tests/test_util.h"

namespace juggler {
namespace {

// Collects packets with their arrival times.
class CollectorSink : public PacketSink {
 public:
  explicit CollectorSink(EventLoop* loop) : loop_(loop) {}

  void Accept(PacketPtr packet) override {
    arrival_times.push_back(loop_->now());
    packets.push_back(std::move(packet));
  }

  std::vector<TimeNs> arrival_times;
  std::vector<PacketPtr> packets;

 private:
  EventLoop* loop_;
};

PacketPtr WirePacket(PacketFactory* f, Seq seq, uint32_t len = kMss,
                     Priority prio = Priority::kLow) {
  PacketPtr p = f->Make();
  p->flow = TestFlow();
  p->seq = seq;
  p->payload_len = len;
  p->priority = prio;
  return p;
}

// ---- Link ----

TEST(LinkTest, SerializesAtRate) {
  EventLoop loop;
  PacketFactory f;
  CollectorSink sink(&loop);
  LinkConfig cfg;
  cfg.rate_bps = 10 * kGbps;
  cfg.propagation_delay = 0;
  Link link(&loop, "l", cfg, &sink);
  link.Accept(WirePacket(&f, 0));
  link.Accept(WirePacket(&f, kMss));
  loop.Run();
  ASSERT_EQ(sink.packets.size(), 2u);
  const TimeNs ser = SerializationTime(kMss + kPerPacketWireOverhead, cfg.rate_bps);
  EXPECT_EQ(sink.arrival_times[0], ser);
  EXPECT_EQ(sink.arrival_times[1], 2 * ser);
}

TEST(LinkTest, PropagationDelayAdds) {
  EventLoop loop;
  PacketFactory f;
  CollectorSink sink(&loop);
  LinkConfig cfg;
  cfg.rate_bps = 10 * kGbps;
  cfg.propagation_delay = Us(5);
  Link link(&loop, "l", cfg, &sink);
  link.Accept(WirePacket(&f, 0));
  loop.Run();
  const TimeNs ser = SerializationTime(kMss + kPerPacketWireOverhead, cfg.rate_bps);
  EXPECT_EQ(sink.arrival_times[0], ser + Us(5));
}

TEST(LinkTest, FifoOrderPreserved) {
  EventLoop loop;
  PacketFactory f;
  CollectorSink sink(&loop);
  LinkConfig cfg;
  Link link(&loop, "l", cfg, &sink);
  for (Seq s = 0; s < 20; ++s) {
    link.Accept(WirePacket(&f, s * kMss));
  }
  loop.Run();
  ASSERT_EQ(sink.packets.size(), 20u);
  for (Seq s = 0; s < 20; ++s) {
    EXPECT_EQ(sink.packets[s]->seq, s * kMss);
  }
}

TEST(LinkTest, DropTailAtLimit) {
  EventLoop loop;
  PacketFactory f;
  CollectorSink sink(&loop);
  LinkConfig cfg;
  cfg.rate_bps = 1 * kGbps;
  cfg.queue_limit_bytes = 3 * (kMss + kPerPacketWireOverhead);
  Link link(&loop, "l", cfg, &sink);
  for (Seq s = 0; s < 10; ++s) {
    link.Accept(WirePacket(&f, s * kMss));
  }
  loop.Run();
  EXPECT_GT(link.stats().drops, 0u);
  EXPECT_EQ(sink.packets.size() + link.stats().drops, 10u);
  // The limit bounds the waiting queue; the packet being serialized is
  // additionally counted in occupancy.
  EXPECT_LE(link.stats().max_queue_bytes,
            cfg.queue_limit_bytes + kMss + kPerPacketWireOverhead);
}

TEST(LinkTest, StrictPriorityServesHighFirst) {
  EventLoop loop;
  PacketFactory f;
  CollectorSink sink(&loop);
  LinkConfig cfg;
  cfg.rate_bps = 1 * kGbps;
  cfg.num_priorities = 2;
  Link link(&loop, "l", cfg, &sink);
  // Fill with low-priority, then one high-priority: high must jump ahead of
  // all queued low packets (but not the one already serializing).
  for (Seq s = 0; s < 5; ++s) {
    link.Accept(WirePacket(&f, s * kMss, kMss, Priority::kLow));
  }
  link.Accept(WirePacket(&f, 100 * kMss, kMss, Priority::kHigh));
  loop.Run();
  ASSERT_EQ(sink.packets.size(), 6u);
  EXPECT_EQ(sink.packets[1]->seq, 100 * kMss);  // high right after in-flight
}

TEST(LinkTest, ByteAccounting) {
  EventLoop loop;
  PacketFactory f;
  CollectorSink sink(&loop);
  LinkConfig cfg;
  Link link(&loop, "l", cfg, &sink);
  link.Accept(WirePacket(&f, 0, 1000));
  loop.Run();
  EXPECT_EQ(link.stats().packets_tx, 1u);
  EXPECT_EQ(link.stats().bytes_tx, 1000u + kPerPacketWireOverhead);
  EXPECT_EQ(link.queued_bytes(), 0);
}

// ---- ReorderStage ----

TEST(ReorderStageTest, SingleLaneNoReorder) {
  EventLoop loop;
  PacketFactory f;
  CollectorSink sink(&loop);
  ReorderStage stage(&loop, {Us(10)}, 1, &sink);
  for (Seq s = 0; s < 10; ++s) {
    stage.Accept(WirePacket(&f, s * kMss));
  }
  loop.Run();
  for (Seq s = 0; s < 10; ++s) {
    EXPECT_EQ(sink.packets[s]->seq, s * kMss);
    EXPECT_EQ(sink.arrival_times[s], Us(10));
  }
}

TEST(ReorderStageTest, TwoLanesReorderByDelayDelta) {
  EventLoop loop;
  PacketFactory f;
  CollectorSink sink(&loop);
  ReorderStage stage(&loop, {0, Us(100)}, 7, &sink);
  // Send packets spaced 1us apart; those on lane 1 arrive ~100us late.
  for (Seq s = 0; s < 200; ++s) {
    loop.Schedule(s * Us(1), [&stage, &f, s] { stage.Accept(WirePacket(&f, s * kMss)); });
  }
  loop.Run();
  ASSERT_EQ(sink.packets.size(), 200u);
  uint32_t ooo = 0;
  Seq max_seen = 0;
  for (const auto& p : sink.packets) {
    if (SeqBefore(p->seq, max_seen)) {
      ++ooo;
    }
    max_seen = SeqMax(max_seen, p->seq);
  }
  EXPECT_GT(ooo, 50u);  // heavy reordering
}

TEST(ReorderStageTest, LanePreservesFifo) {
  EventLoop loop;
  PacketFactory f;
  CollectorSink sink(&loop);
  // One lane with a large delay: still FIFO.
  ReorderStage stage(&loop, {Us(500)}, 3, &sink);
  stage.Accept(WirePacket(&f, 0));
  loop.RunUntil(Us(499));
  stage.Accept(WirePacket(&f, kMss));
  loop.Run();
  EXPECT_EQ(sink.packets[0]->seq, 0u);
  EXPECT_EQ(sink.packets[1]->seq, kMss);
}

// ---- DropStage ----

TEST(DropStageTest, DropsAtConfiguredRate) {
  EventLoop loop;
  PacketFactory f;
  CollectorSink sink(&loop);
  DropStage stage(0.1, 11, &sink);
  for (int i = 0; i < 10000; ++i) {
    stage.Accept(WirePacket(&f, 0));
  }
  EXPECT_NEAR(static_cast<double>(stage.drops()), 1000.0, 120.0);
  EXPECT_EQ(sink.packets.size() + stage.drops(), 10000u);
}

TEST(DropStageTest, ZeroProbabilityDropsNothing) {
  EventLoop loop;
  PacketFactory f;
  CollectorSink sink(&loop);
  DropStage stage(0.0, 11, &sink);
  for (int i = 0; i < 1000; ++i) {
    stage.Accept(WirePacket(&f, 0));
  }
  EXPECT_EQ(stage.drops(), 0u);
}

// ---- LoadBalancer ----

TEST(LoadBalancerTest, EcmpIsFlowSticky) {
  LoadBalancer lb(LbPolicy::kEcmp, 4);
  Packet p;
  p.flow = TestFlow();
  const size_t first = lb.PickPath(p);
  for (int i = 0; i < 100; ++i) {
    p.seq += kMss;
    p.tso_id = static_cast<uint64_t>(i);
    EXPECT_EQ(lb.PickPath(p), first);
  }
}

TEST(LoadBalancerTest, EcmpSpreadsFlows) {
  LoadBalancer lb(LbPolicy::kEcmp, 4);
  std::vector<int> counts(4, 0);
  for (uint16_t port = 0; port < 400; ++port) {
    Packet p;
    p.flow = TestFlow(port, 80);
    ++counts[lb.PickPath(p)];
  }
  for (int c : counts) {
    EXPECT_GT(c, 50);
  }
}

TEST(LoadBalancerTest, PerPacketRoundRobins) {
  LoadBalancer lb(LbPolicy::kPerPacketRR, 3);
  Packet p;
  p.flow = TestFlow();
  EXPECT_EQ(lb.PickPath(p), 0u);
  EXPECT_EQ(lb.PickPath(p), 1u);
  EXPECT_EQ(lb.PickPath(p), 2u);
  EXPECT_EQ(lb.PickPath(p), 0u);
}

TEST(LoadBalancerTest, PerPacketSpraysUniformly) {
  LoadBalancer lb(LbPolicy::kPerPacket, 3, /*seed=*/5);
  Packet p;
  p.flow = TestFlow();
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 3000; ++i) {
    ++counts[lb.PickPath(p)];
  }
  for (int c : counts) {
    EXPECT_GT(c, 850);
    EXPECT_LT(c, 1150);
  }
}

TEST(LoadBalancerTest, PerTsoKeepsFlowcellsTogether) {
  LoadBalancer lb(LbPolicy::kPerTso, 4);
  Packet p;
  p.flow = TestFlow();
  p.tso_id = 42;
  const size_t path = lb.PickPath(p);
  for (int i = 0; i < 50; ++i) {
    p.seq += kMss;
    EXPECT_EQ(lb.PickPath(p), path);
  }
  // Different flowcells spread.
  std::vector<int> counts(4, 0);
  for (uint64_t id = 0; id < 400; ++id) {
    p.tso_id = id;
    ++counts[lb.PickPath(p)];
  }
  for (int c : counts) {
    EXPECT_GT(c, 50);
  }
}

TEST(LoadBalancerTest, SinglePathAlwaysZero) {
  LoadBalancer lb(LbPolicy::kPerPacket, 1);
  Packet p;
  EXPECT_EQ(lb.PickPath(p), 0u);
  EXPECT_EQ(lb.PickPath(p), 0u);
}

// ---- Switch ----

TEST(SwitchTest, RoutesByDestination) {
  EventLoop loop;
  PacketFactory f;
  CollectorSink a(&loop);
  CollectorSink b(&loop);
  Switch sw("sw", LbPolicy::kEcmp);
  sw.AddRoute(1, &a);
  sw.AddRoute(2, &b);
  PacketPtr p1 = WirePacket(&f, 0);
  p1->flow.dst_ip = 1;
  PacketPtr p2 = WirePacket(&f, 0);
  p2->flow.dst_ip = 2;
  sw.Accept(std::move(p1));
  sw.Accept(std::move(p2));
  EXPECT_EQ(a.packets.size(), 1u);
  EXPECT_EQ(b.packets.size(), 1u);
  EXPECT_EQ(sw.forwarded(), 2u);
}

TEST(SwitchTest, DefaultRouteUsesUplinks) {
  EventLoop loop;
  PacketFactory f;
  CollectorSink up0(&loop);
  CollectorSink up1(&loop);
  Switch sw("sw", LbPolicy::kPerPacketRR);
  sw.AddUplink(&up0);
  sw.AddUplink(&up1);
  for (int i = 0; i < 10; ++i) {
    PacketPtr p = WirePacket(&f, 0);
    p->flow.dst_ip = 99;  // no exact route
    sw.Accept(std::move(p));
  }
  EXPECT_EQ(up0.packets.size(), 5u);
  EXPECT_EQ(up1.packets.size(), 5u);
}

TEST(SwitchTest, NoRouteCountsDrop) {
  EventLoop loop;
  PacketFactory f;
  Switch sw("sw", LbPolicy::kEcmp);
  PacketPtr p = WirePacket(&f, 0);
  p->flow.dst_ip = 5;
  sw.Accept(std::move(p));
  EXPECT_EQ(sw.dropped_no_route(), 1u);
}

}  // namespace
}  // namespace juggler
