// Failure-forensics pipeline tests: spec serialization, signature
// classification, watchdogged isolation, and the planted-bug end-to-end
// (supervisor finds it, shrinker minimizes it, bundle replays it).

#include <gtest/gtest.h>

#include <string>

#include "src/forensics/failure_signature.h"
#include "src/forensics/fuzz_supervisor.h"
#include "src/forensics/repro_bundle.h"
#include "src/forensics/scenario_spec.h"
#include "src/forensics/shrinker.h"
#include "src/forensics/spec_executor.h"
#include "src/util/json.h"
#include "src/util/rng.h"
#include "src/util/subprocess.h"

namespace juggler {
namespace {

// Seeds pinned empirically: with the planted flush-skew defect armed, these
// make the supervisor / shrinker hit the conservation violation quickly.
constexpr uint64_t kPlantedFuzzSeed = 3;
constexpr uint64_t kPlantedShrinkSeed = 17;

// ------------------------------------------------------------------ JSON --

TEST(JsonTest, RoundTripsExactIntegers) {
  Json j = Json::Object();
  j.Set("big", Json::Uint(18446744073709551615ULL));
  j.Set("neg", Json::Int(-9223372036854775807LL));
  j.Set("frac", Json::Double(0.25));
  j.Set("flag", Json::Bool(true));
  j.Set("name", Json::Str("x\n\"y\""));
  Json parsed;
  std::string error;
  ASSERT_TRUE(Json::Parse(j.Dump(), &parsed, &error)) << error;
  EXPECT_EQ(parsed.Find("big")->AsUint(), 18446744073709551615ULL);
  EXPECT_EQ(parsed.Find("neg")->AsInt(), -9223372036854775807LL);
  EXPECT_DOUBLE_EQ(parsed.Find("frac")->AsDouble(), 0.25);
  EXPECT_TRUE(parsed.Find("flag")->AsBool());
  EXPECT_EQ(parsed.Find("name")->AsString(), "x\n\"y\"");
  // Member order is preserved, so Dump is deterministic.
  EXPECT_EQ(j.Dump(), parsed.Dump());
}

TEST(JsonTest, RejectsMalformedInput) {
  Json out;
  std::string error;
  EXPECT_FALSE(Json::Parse("{\"a\": }", &out, &error));
  EXPECT_FALSE(Json::Parse("[1, 2,]", &out, &error));
  EXPECT_FALSE(Json::Parse("", &out, &error));
  EXPECT_FALSE(Json::Parse("{\"a\": 1} trailing", &out, &error));
}

// ---------------------------------------------------------------- Spec ----

TEST(ScenarioSpecTest, JsonRoundTripIsByteStable) {
  Rng rng(7);
  SampleLimits limits;
  for (int i = 0; i < 20; ++i) {
    ScenarioSpec spec = SampleScenarioSpec(&rng, limits);
    if (i % 2 == 0) {
      spec.Materialize();  // exercise explicit timelines too
    }
    const std::string text = spec.ToJson().Dump(2);
    Json parsed;
    std::string error;
    ASSERT_TRUE(Json::Parse(text, &parsed, &error)) << error;
    ScenarioSpec back;
    ASSERT_TRUE(ScenarioSpec::FromJson(parsed, &back, &error)) << error;
    EXPECT_EQ(back.ToJson().Dump(2), text) << "spec " << i;
  }
}

TEST(ScenarioSpecTest, MaterializePreservesTheRun) {
  // Freezing the derived schedules into explicit form must not change the
  // run: digests before and after materialization are identical.
  ScenarioSpec spec;
  spec.seed = 11;
  spec.family = FaultFamily::kMixed;
  spec.transfer_bytes = 600'000;
  ScenarioSpec frozen = spec;
  frozen.Materialize();
  EXPECT_GT(frozen.TimelineEvents(), 0u);
  const SpecRunReport a = RunSpecInProcess(spec);
  const SpecRunReport b = RunSpecInProcess(frozen);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_TRUE(a.ok);
  EXPECT_TRUE(b.ok);
}

TEST(ScenarioSpecTest, FromJsonRejectsBadDocuments) {
  ScenarioSpec out;
  std::string error;
  Json not_object = Json::Array();
  EXPECT_FALSE(ScenarioSpec::FromJson(not_object, &out, &error));

  ScenarioSpec good;
  Json bad_family = good.ToJson();
  bad_family.Set("family", Json::Str("nope"));
  EXPECT_FALSE(ScenarioSpec::FromJson(bad_family, &out, &error));

  Json bad_range = good.ToJson();
  bad_range.Set("transfer_bytes", Json::Uint(0));
  EXPECT_FALSE(ScenarioSpec::FromJson(bad_range, &out, &error));

  Json bad_kind = good.ToJson();
  bad_kind.Set("seed", Json::Str("one"));
  EXPECT_FALSE(ScenarioSpec::FromJson(bad_kind, &out, &error));

  ScenarioSpec with_app;
  with_app.app.kind = AppWorkloadKind::kRpc;
  Json bad_app_kind = with_app.ToJson();
  bad_app_kind.Set("app_kind", Json::Str("nope"));
  EXPECT_FALSE(ScenarioSpec::FromJson(bad_app_kind, &out, &error));

  Json bad_app_range = with_app.ToJson();
  bad_app_range.Set("app_max_attempts", Json::Uint(0));
  EXPECT_FALSE(ScenarioSpec::FromJson(bad_app_range, &out, &error));
}

// App-workload fields ride the spec only when a workload is enabled:
// pre-app specs (and raw-transfer specs) serialize without any app_* key,
// and enabled workloads round-trip byte-stably including the planted flag.
TEST(ScenarioSpecTest, AppWorkloadFieldsRoundTrip) {
  ScenarioSpec raw;
  EXPECT_EQ(raw.ToJson().Dump().find("app_"), std::string::npos);

  ScenarioSpec spec;
  spec.app.kind = AppWorkloadKind::kBulkTransfer;
  spec.app.sessions = 3;
  spec.app.requests_per_session = 7;
  spec.app.response_bytes = 9'999;
  spec.app.chunk_bytes = 32'768;
  spec.app.transfer_bytes_per_session = 3 * 32'768;
  spec.app.issue_interval = Ms(3);
  spec.app.retry.attempt_timeout = Ms(3);
  spec.app.retry.max_attempts = 4;
  spec.app.retry.jitter_pct = 35;
  spec.app.plant_stale_token = true;

  const std::string text = spec.ToJson().Dump(2);
  Json parsed;
  std::string error;
  ASSERT_TRUE(Json::Parse(text, &parsed, &error)) << error;
  ScenarioSpec back;
  ASSERT_TRUE(ScenarioSpec::FromJson(parsed, &back, &error)) << error;
  EXPECT_EQ(back.app.kind, AppWorkloadKind::kBulkTransfer);
  EXPECT_EQ(back.app.sessions, 3u);
  EXPECT_EQ(back.app.retry.max_attempts, 4u);
  EXPECT_TRUE(back.app.plant_stale_token);
  EXPECT_EQ(back.ToJson().Dump(2), text);
}

// The receive-driver axis rides the spec byte-stably: default (rss) specs
// serialize without the key at all — historical bundles keep their exact
// bytes — and corec specs (with or without the wedge plant) round-trip.
TEST(ScenarioSpecTest, RxDriverFieldRoundTrips) {
  ScenarioSpec rss;
  EXPECT_EQ(rss.ToJson().Dump().find("rx_driver"), std::string::npos);
  EXPECT_EQ(rss.ToJson().Dump().find("plant_corec_wedge"), std::string::npos);

  ScenarioSpec spec;
  spec.rx_driver = RxDriverKind::kCorec;
  spec.plant_corec_wedge = true;
  const std::string text = spec.ToJson().Dump(2);
  EXPECT_NE(text.find("\"rx_driver\": \"corec\""), std::string::npos);
  Json parsed;
  std::string error;
  ASSERT_TRUE(Json::Parse(text, &parsed, &error)) << error;
  ScenarioSpec back;
  ASSERT_TRUE(ScenarioSpec::FromJson(parsed, &back, &error)) << error;
  EXPECT_EQ(back.rx_driver, RxDriverKind::kCorec);
  EXPECT_TRUE(back.plant_corec_wedge);
  EXPECT_EQ(back.ToJson().Dump(2), text);

  // An unknown driver name is a hard parse error, not a silent rss.
  Json bad = spec.ToJson();
  bad.Set("rx_driver", Json::Str("napi"));
  EXPECT_FALSE(ScenarioSpec::FromJson(bad, &back, &error));
}

// The sampler draws the driver from its own seed-derived stream: flipping
// corec_prob between 0 and 1 flips rx_driver and NOTHING else, so pinned
// fuzz seeds keep sampling the exact specs they always did.
TEST(ScenarioSpecTest, SamplerDrawsRxDriverIndependently) {
  SampleLimits always;
  always.corec_prob = 1.0;
  SampleLimits never;
  never.corec_prob = 0.0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng_a(seed), rng_b(seed);
    ScenarioSpec with = SampleScenarioSpec(&rng_a, always);
    ScenarioSpec without = SampleScenarioSpec(&rng_b, never);
    EXPECT_EQ(with.rx_driver, RxDriverKind::kCorec);
    EXPECT_EQ(without.rx_driver, RxDriverKind::kRss);
    with.rx_driver = RxDriverKind::kRss;  // neutralize the one allowed delta
    EXPECT_EQ(with.ToJson().Dump(2), without.ToJson().Dump(2))
        << "corec_prob perturbed another sampled field at seed " << seed;
  }
}

// Unknown-field safety: members this build does not recognize survive a
// parse/serialize round trip verbatim, and re-serialization is a fixed
// point — so bundles written by newer builds keep replaying here, and
// re-writing one never churns its bytes.
TEST(ScenarioSpecTest, UnknownFieldsArePreservedByteStably) {
  ScenarioSpec spec;
  spec.app.kind = AppWorkloadKind::kRpc;
  Json doc = spec.ToJson();
  doc.Set("future_knob", Json::Uint(7));
  Json future_obj = Json::Object();
  future_obj.Set("nested", Json::Str("opaque"));
  doc.Set("future_obj", std::move(future_obj));

  ScenarioSpec back;
  std::string error;
  ASSERT_TRUE(ScenarioSpec::FromJson(doc, &back, &error)) << error;
  const std::string once = back.ToJson().Dump(2);
  EXPECT_NE(once.find("future_knob"), std::string::npos);
  EXPECT_NE(once.find("\"nested\""), std::string::npos);

  Json reparsed;
  ScenarioSpec again;
  ASSERT_TRUE(Json::Parse(once, &reparsed, &error)) << error;
  ASSERT_TRUE(ScenarioSpec::FromJson(reparsed, &again, &error)) << error;
  EXPECT_EQ(again.ToJson().Dump(2), once);
}

// ----------------------------------------------------------- Signatures --

TEST(FailureSignatureTest, NormalizationCollapsesDigitRuns) {
  const FailureSignature a = MakeSignature(
      SignatureKind::kInvariantViolation, "byte conservation broken: in 152 vs out 153 + held 0");
  const FailureSignature b = MakeSignature(
      SignatureKind::kInvariantViolation, "byte conservation broken: in 7 vs out 8 + held 99");
  EXPECT_EQ(a.detail, "byte conservation broken: in # vs out # + held #");
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_TRUE(a == b);

  // Different kind, same detail -> different fingerprint.
  const FailureSignature c = MakeSignature(SignatureKind::kCrashSignal, "in 152 vs out 153");
  EXPECT_NE(a.fingerprint, c.fingerprint);

  // Multi-line detail keeps only the first line.
  const FailureSignature d = MakeSignature(SignatureKind::kException, "line one\nline two");
  EXPECT_EQ(d.detail, "line one");
}

TEST(FailureSignatureTest, JsonRoundTrip) {
  const FailureSignature sig = MakeSignature(SignatureKind::kDeadlockTimeout, "after 1500ms");
  FailureSignature back;
  std::string error;
  ASSERT_TRUE(FailureSignature::FromJson(sig.ToJson(), &back, &error)) << error;
  EXPECT_TRUE(sig == back);
  EXPECT_EQ(back.kind, SignatureKind::kDeadlockTimeout);
}

// ------------------------------------------------------------- Executor --

TEST(SpecExecutorTest, CleanSpecClassifiesClean) {
  ScenarioSpec spec;  // defaults: the classic mixed-family recipe, seed 1
  spec.transfer_bytes = 400'000;
  ExecOptions exec;
  exec.timeout_ms = 60'000;
  const SpecOutcome outcome = ExecuteSpec(spec, exec);
  EXPECT_EQ(outcome.signature.kind, SignatureKind::kClean) << outcome.signature.detail;
  EXPECT_TRUE(outcome.report.ok);
  EXPECT_TRUE(outcome.report.completed);
  EXPECT_NE(outcome.report.digest, 0u);
}

TEST(SpecExecutorTest, ChildReportIsDeterministic) {
  ScenarioSpec spec;
  spec.seed = 5;
  spec.family = FaultFamily::kDropBurst;
  spec.transfer_bytes = 400'000;
  ExecOptions exec;
  exec.timeout_ms = 60'000;
  const SpecOutcome a = ExecuteSpec(spec, exec);
  const SpecOutcome b = ExecuteSpec(spec, exec);
  EXPECT_EQ(a.report.digest, b.report.digest);
  EXPECT_EQ(a.signature.fingerprint, b.signature.fingerprint);
}

TEST(SpecExecutorTest, WatchdogKillsWedgedChildAndClassifiesDeadlock) {
  // The planted infinite loop must be SIGKILLed at the deadline and land in
  // the deadlock-timeout bucket — without stalling this suite.
  ScenarioSpec spec;
  spec.plant_wedge = true;
  ExecOptions exec;
  exec.timeout_ms = 1'000;
  const SpecOutcome outcome = ExecuteSpec(spec, exec);
  EXPECT_EQ(outcome.signature.kind, SignatureKind::kDeadlockTimeout);
  EXPECT_TRUE(outcome.child.timed_out);
  EXPECT_GE(outcome.child.wall_ms, 900);
  EXPECT_LT(outcome.child.wall_ms, 30'000);
}

TEST(SpecExecutorTest, CrashingChildClassifiesCrashSignal) {
  // A JUG_CHECK failure aborts the child; the parent must classify the
  // signal death, not hang or misreport. num_windows < 1 trips the check
  // inside MakeChaosTimeline.
  ScenarioSpec spec;
  spec.num_windows = 1;
  spec.transfer_bytes = 100'000;
  // Build a spec whose child aborts: explicit faults cleared, then force
  // the derived path with an illegal window count by corrupting after
  // validation (simulates a code bug, not a bad bundle).
  spec.num_windows = 0;
  ExecOptions exec;
  exec.timeout_ms = 30'000;
  const SpecOutcome outcome = ExecuteSpec(spec, exec);
  EXPECT_EQ(outcome.signature.kind, SignatureKind::kCrashSignal);
  EXPECT_TRUE(outcome.child.crashed());
}

// -------------------------------------------------- Planted bug, E2E -----

// The acceptance path: a known defect is planted behind a test-only config
// hook (an off-by-one in the Table-2 row-6 ofo-timeout flush accounting),
// the fuzz supervisor must find it, the shrinker must cut the timeline to
// <= 3 events, and the written bundle must replay to the identical
// signature, twice.
TEST(ForensicsEndToEndTest, SupervisorFindsShrinksAndReplaysPlantedBug) {
  const std::string out_dir = testing::TempDir() + "juggler_forensics_bundles";

  FuzzOptions opt;
  opt.seed = kPlantedFuzzSeed;
  opt.num_specs = 8;
  opt.timeout_ms = 60'000;
  opt.plant_flush_skew = true;  // arm the planted defect in every spec
  opt.out_dir = out_dir;
  opt.shrink = true;
  opt.shrink_options.max_runs = 120;
  opt.shrink_options.timeout_ms = 60'000;

  const FuzzReport report = RunFuzz(opt);
  ASSERT_GE(report.findings.size(), 1u) << "supervisor failed to find the planted bug";

  // The planted bug breaks the auditor's conservation law.
  const FuzzFinding* found = nullptr;
  for (const FuzzFinding& f : report.findings) {
    if (f.signature.kind == SignatureKind::kInvariantViolation &&
        f.signature.detail.find("conservation") != std::string::npos) {
      found = &f;
      break;
    }
  }
  ASSERT_NE(found, nullptr) << "no conservation-law finding among "
                            << report.findings.size() << " findings";

  // Shrunk to a minimal recipe.
  EXPECT_LE(found->shrunk.TimelineEvents(), 3u);
  EXPECT_GT(found->shrink_accepted, 0);

  // The bundle replays deterministically: identical signature, twice.
  ASSERT_FALSE(found->bundle_path.empty());
  ReproBundle bundle;
  std::string error;
  ASSERT_TRUE(ReadBundleFile(found->bundle_path, &bundle, &error)) << error;
  EXPECT_TRUE(bundle.signature == found->signature);
  for (int i = 0; i < 2; ++i) {
    const ReplayResult replay = ReplayBundle(bundle, /*timeout_ms=*/60'000);
    EXPECT_TRUE(replay.reproduced) << "replay " << i << " observed "
                                   << SignatureKindName(replay.observed.kind) << ": "
                                   << replay.observed.detail;
    EXPECT_EQ(replay.observed.fingerprint, bundle.signature.fingerprint);
  }
}

// The shrinker must reject candidates that fail *differently*: shrinking a
// planted-skew failure never drifts into e.g. a transfer-incomplete
// signature.
TEST(ForensicsEndToEndTest, ShrinkPreservesSignatureIdentity) {
  ScenarioSpec spec;
  spec.seed = kPlantedShrinkSeed;
  spec.family = FaultFamily::kDropBurst;
  spec.transfer_bytes = 600'000;
  spec.plant_flush_skew = true;

  ExecOptions exec;
  exec.timeout_ms = 60'000;
  const SpecOutcome original = ExecuteSpec(spec, exec);
  ASSERT_EQ(original.signature.kind, SignatureKind::kInvariantViolation)
      << original.signature.detail;

  ShrinkOptions sopt;
  sopt.max_runs = 80;
  sopt.timeout_ms = 60'000;
  const ShrinkResult shrunk = ShrinkSpec(spec, original.signature, sopt);
  EXPECT_LE(shrunk.spec.TimelineEvents(), spec.TimelineEvents());

  // The minimized spec still reproduces the *same* failure.
  const SpecOutcome replay = ExecuteSpec(shrunk.spec, exec);
  EXPECT_EQ(replay.signature.fingerprint, original.signature.fingerprint);
}

// ------------------------------------------------------------- Bundles ---

TEST(ReproBundleTest, FileRoundTrip) {
  ReproBundle bundle;
  bundle.spec.seed = 42;
  bundle.spec.family = FaultFamily::kCorrupt;
  bundle.spec.Materialize();
  bundle.signature = MakeSignature(SignatureKind::kInvariantViolation, "in 1 vs out 2");
  bundle.notes = "unit test";

  const std::string path = testing::TempDir() + "juggler_bundle_roundtrip.json";
  std::string error;
  ASSERT_TRUE(WriteBundleFile(bundle, path, &error)) << error;
  ReproBundle back;
  ASSERT_TRUE(ReadBundleFile(path, &back, &error)) << error;
  EXPECT_TRUE(back.signature == bundle.signature);
  EXPECT_EQ(back.notes, "unit test");
  EXPECT_EQ(back.spec.ToJson().Dump(), bundle.spec.ToJson().Dump());
}

TEST(ReproBundleTest, RejectsCorruptFiles) {
  const std::string path = testing::TempDir() + "juggler_bundle_corrupt.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("{\"version\": 1, \"notes\": \"x\"", f);  // truncated
  std::fclose(f);
  ReproBundle out;
  std::string error;
  EXPECT_FALSE(ReadBundleFile(path, &out, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(ReadBundleFile(testing::TempDir() + "nope_does_not_exist.json", &out, &error));
}

// ----------------------------------------------------------- Subprocess --

TEST(SubprocessTest, CapturesReportAndStderr) {
  const ChildResult r = RunChildWithWatchdog(
      [](int report_fd) {
        WriteAll(report_fd, "hello report");
        std::fputs("hello stderr\n", stderr);
      },
      5'000);
  ASSERT_TRUE(r.forked);
  EXPECT_TRUE(r.exited);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.report, "hello report");
  EXPECT_NE(r.stderr_text.find("hello stderr"), std::string::npos);
  EXPECT_FALSE(r.timed_out);
}

TEST(SubprocessTest, ThrowingChildExits97) {
  const ChildResult r =
      RunChildWithWatchdog([](int) { throw std::runtime_error("child boom"); }, 5'000);
  ASSERT_TRUE(r.forked);
  EXPECT_TRUE(r.exited);
  EXPECT_EQ(r.exit_code, 97);
}

}  // namespace
}  // namespace juggler
