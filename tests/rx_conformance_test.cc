// Differential receive-path conformance matrix (ctest label: "rxpath").
//
// The driver seam's contract: which receive architecture a host runs —
// RSS multi-queue + NAPI (NicRx) or the COREC-style concurrent single-queue
// claim/commit driver (CorecRx) — may change poll boundaries, flush timing
// and per-run digests, but must NEVER change the byte stream TCP hands the
// application. These tests pin that as a matrix:
//
//   {fig-12/13/14-style reordering scenarios, chaos families, overload}
//     x {rss, corec}
//     x {juggler, vanilla, presto}
//
// asserting for every cell: the transfer completes, zero invariant
// violations, and the TCP-level stream digest (position-derived content of
// every in-order byte delivered, plus any delivery anomalies the integrity
// checker saw) is byte-identical across drivers. On top of the matrix:
// per-driver determinism, shard-count invariance for COREC, per-packet
// dispatch equivalence, drop conservation under overload caps on both
// drivers, and the planted COREC wedge end-to-end (the fuzzer finds it, the
// shrinker keeps the corec axis, the bundle replays it).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/forensics/fuzz_supervisor.h"
#include "src/forensics/repro_bundle.h"
#include "src/forensics/scenario_spec.h"
#include "src/forensics/spec_executor.h"
#include "src/scenario/chaos_scenario.h"

namespace juggler {
namespace {

constexpr StackKind kStacks[] = {StackKind::kJuggler, StackKind::kVanilla,
                                 StackKind::kPresto};

struct NamedScenario {
  const char* name;
  ChaosOptions opt;
};

ChaosOptions BaseOptions(uint64_t seed, FaultFamily family) {
  ChaosOptions opt;
  opt.seed = seed;
  opt.family = family;
  opt.transfer_bytes = 600'000;
  return opt;
}

// The matrix rows. The first three are scripted reordering scenarios in the
// spirit of the paper's Fig. 12-14 sweeps (no injected faults — an
// explicitly empty timeline leaves only the multi-path reordering the
// topology always applies — with the reorder delay and the Table-2 timeouts
// varied); the rest are seeded chaos families.
std::vector<NamedScenario> ConformanceScenarios() {
  std::vector<NamedScenario> out;

  NamedScenario fig12{"fig12_pure_reorder", BaseOptions(21, FaultFamily::kDropBurst)};
  fig12.opt.use_explicit_faults = true;  // empty timeline: reordering only
  out.push_back(fig12);

  NamedScenario fig13{"fig13_deep_reorder", BaseOptions(22, FaultFamily::kDropBurst)};
  fig13.opt.use_explicit_faults = true;
  fig13.opt.reorder_delay = Us(600);
  fig13.opt.ofo_timeout = Us(700);
  out.push_back(fig13);

  NamedScenario fig14{"fig14_tight_coalesce", BaseOptions(23, FaultFamily::kDropBurst)};
  fig14.opt.use_explicit_faults = true;
  fig14.opt.int_coalesce = Us(30);
  fig14.opt.inseq_timeout = Us(20);
  out.push_back(fig14);

  out.push_back({"chaos_mixed", BaseOptions(7, FaultFamily::kMixed)});
  out.push_back({"chaos_drop_burst", BaseOptions(11, FaultFamily::kDropBurst)});
  return out;
}

ChaosEngineResult RunCell(ChaosOptions opt, RxDriverKind driver, StackKind stack) {
  opt.rx_driver = driver;
  return RunChaosEngineStack(opt, stack);
}

void ExpectClean(const ChaosEngineResult& r, const std::string& where) {
  EXPECT_TRUE(r.completed) << where << ": delivered " << r.bytes_delivered;
  EXPECT_EQ(r.violations, 0u)
      << where << ": "
      << (r.violation_messages.empty() ? "" : r.violation_messages.front());
  EXPECT_NE(r.stream_digest, 0u) << where << ": stream digest never computed";
}

// ---------------------------------------------------------------- matrix --

TEST(RxConformanceTest, StreamDigestIdenticalAcrossDriversForEveryStack) {
  for (const NamedScenario& s : ConformanceScenarios()) {
    for (StackKind stack : kStacks) {
      const std::string where = std::string(s.name) + "/" + StackKindName(stack);
      const ChaosEngineResult rss = RunCell(s.opt, RxDriverKind::kRss, stack);
      const ChaosEngineResult corec = RunCell(s.opt, RxDriverKind::kCorec, stack);
      ExpectClean(rss, where + "/rss");
      ExpectClean(corec, where + "/corec");
      EXPECT_EQ(rss.bytes_delivered, corec.bytes_delivered) << where;
      EXPECT_EQ(rss.stream_digest, corec.stream_digest)
          << where << ": drivers disagreed on the TCP-level byte stream";
    }
  }
}

// ---------------------------------------------------------- determinism --

TEST(RxConformanceTest, PerDriverRunsAreBitIdentical) {
  ChaosOptions opt = BaseOptions(5, FaultFamily::kMixed);
  for (RxDriverKind driver : {RxDriverKind::kRss, RxDriverKind::kCorec}) {
    const ChaosEngineResult a = RunCell(opt, driver, StackKind::kJuggler);
    const ChaosEngineResult b = RunCell(opt, driver, StackKind::kJuggler);
    EXPECT_EQ(a.digest, b.digest) << RxDriverKindName(driver);
    EXPECT_EQ(a.stream_digest, b.stream_digest) << RxDriverKindName(driver);
    EXPECT_EQ(a.finish_time, b.finish_time) << RxDriverKindName(driver);
  }
}

TEST(RxConformanceTest, CorecDigestInvariantAcrossShardCounts) {
  // The sharded engine's determinism contract extends to the COREC driver:
  // every worker count N >= 1 produces the identical run, concurrency of the
  // claim/commit consumers notwithstanding.
  uint64_t digest1 = 0, stream1 = 0;
  for (size_t shards : {size_t{1}, size_t{2}, size_t{8}}) {
    ChaosOptions opt = BaseOptions(9, FaultFamily::kDelaySpike);
    opt.shards = shards;
    const ChaosEngineResult r = RunCell(opt, RxDriverKind::kCorec, StackKind::kJuggler);
    ExpectClean(r, "corec shards=" + std::to_string(shards));
    if (shards == 1) {
      digest1 = r.digest;
      stream1 = r.stream_digest;
    } else {
      EXPECT_EQ(r.digest, digest1) << "shards=" << shards << " diverged from shards=1";
      EXPECT_EQ(r.stream_digest, stream1) << "shards=" << shards;
    }
  }
}

TEST(RxConformanceTest, CorecPerPacketDispatchIsObservationallyIdentical) {
  // The batched GRO fold and the per-packet reference arm must be
  // indistinguishable through the COREC hand-off too — same digest, same
  // stream, same finish time.
  ChaosOptions opt = BaseOptions(13, FaultFamily::kDuplicate);
  const ChaosEngineResult batched = RunCell(opt, RxDriverKind::kCorec, StackKind::kJuggler);
  opt.per_packet_dispatch = true;
  const ChaosEngineResult per_packet = RunCell(opt, RxDriverKind::kCorec, StackKind::kJuggler);
  ExpectClean(batched, "corec batched");
  ExpectClean(per_packet, "corec per-packet");
  EXPECT_EQ(batched.digest, per_packet.digest);
  EXPECT_EQ(batched.stream_digest, per_packet.stream_digest);
  EXPECT_EQ(batched.finish_time, per_packet.finish_time);
}

// ------------------------------------------------------------- overload --

TEST(RxConformanceTest, OverloadDropConservationOnBothDrivers) {
  // A tight pool cap under an incast storm: both drivers must shed visibly
  // (refusals counted), conserve every drop (zero violations IS the proof —
  // the overload auditor cross-checks refusals against per-layer drop
  // counters), finish the transfer, and agree on the stream.
  ChaosOptions opt = BaseOptions(17, FaultFamily::kDropBurst);
  opt.shards = 1;  // sharded teardown measures pool leaks exactly
  opt.overload.pool_capacity = 96;
  OverloadWindow incast;
  incast.kind = OverloadKind::kIncast;
  incast.start = Ms(5);
  incast.end = Ms(15);
  incast.flows = 96;
  incast.packets_per_flow = 4;
  incast.burst_interval = Us(150);
  opt.overload.windows.push_back(incast);

  const ChaosEngineResult rss = RunCell(opt, RxDriverKind::kRss, StackKind::kJuggler);
  const ChaosEngineResult corec = RunCell(opt, RxDriverKind::kCorec, StackKind::kJuggler);
  for (const auto* r : {&rss, &corec}) {
    const std::string where =
        std::string("overload/") + (r == &rss ? "rss" : "corec");
    ExpectClean(*r, where);
    EXPECT_GT(r->overload_pool_exhausted, 0u) << where << ": cap=96 never refused";
    EXPECT_EQ(r->overload_pool_leaked, 0) << where;
  }
  EXPECT_EQ(rss.stream_digest, corec.stream_digest)
      << "overload pressure must not make the drivers disagree on the stream";
}

// ------------------------------------------------- COREC counters live ---

TEST(RxConformanceTest, CorecCountersAreLiveAndConsistent) {
  ChaosOptions opt = BaseOptions(3, FaultFamily::kMixed);
  opt.obs.metrics = true;
  const ChaosEngineResult r = RunCell(opt, RxDriverKind::kCorec, StackKind::kJuggler);
  ExpectClean(r, "corec metrics run");
  // The receiver-side claim/commit machinery must actually have run: claims
  // and hand-off runs nonzero, and every claimed packet either reached GRO
  // or was still in flight at teardown (no silent loss).
  const uint64_t claims = r.obs.metrics.CounterValue("nic.corec_claims", "receiver");
  const uint64_t commits = r.obs.metrics.CounterValue("nic.corec_commits", "receiver");
  const uint64_t runs = r.obs.metrics.CounterValue("nic.corec_handoff_runs", "receiver");
  EXPECT_GT(claims, 0u);
  EXPECT_EQ(claims, commits) << "every claimed window must commit";
  EXPECT_GT(runs, 0u);
  EXPECT_EQ(r.obs.metrics.CounterValue("nic.corec_wedged", "receiver"), 0u)
      << "the wedge plant is off; nothing may wedge";
  // RSS runs must not publish COREC families at all.
  ChaosOptions rss_opt = opt;
  const ChaosEngineResult rss = RunCell(rss_opt, RxDriverKind::kRss, StackKind::kJuggler);
  EXPECT_EQ(rss.obs.metrics.CounterValue("nic.corec_claims", "receiver", 77u), 77u);
}

// ----------------------------------------- planted COREC wedge, E2E ------

// A COREC-only defect with a known identity: the in-order hand-off stage
// wedges permanently at its first out-of-order stall
// (NicRxConfig::debug_corec_wedge_depth). The forensics pipeline must find
// it, shrink it WITHOUT losing the corec axis (SimplifyRxDriver's rss
// candidate completes cleanly, so it must be rejected), and replay the
// bundle to the identical fingerprint, twice.
TEST(RxConformanceForensicsTest, PlantedCorecWedgeIsFoundShrunkAndReplayed) {
  const std::string out_dir = testing::TempDir() + "juggler_rxpath_bundles";

  FuzzOptions opt;
  opt.seed = 3;
  opt.num_specs = 6;
  opt.timeout_ms = 60'000;
  opt.plant_corec_wedge = true;
  opt.out_dir = out_dir;
  opt.shrink = true;
  opt.shrink_options.max_runs = 120;
  opt.shrink_options.timeout_ms = 60'000;

  const FuzzReport report = RunFuzz(opt);
  ASSERT_GE(report.findings.size(), 1u) << "fuzzer failed to find the planted wedge";

  const FuzzFinding* found = nullptr;
  for (const FuzzFinding& f : report.findings) {
    if (f.signature.kind == SignatureKind::kInvariantViolation) {
      found = &f;
      break;
    }
  }
  ASSERT_NE(found, nullptr) << "no invariant-violation finding among "
                            << report.findings.size() << " findings";

  // The minimal repro keeps the defect's axes: the corec driver and the
  // plant survive shrinking, and the timeline is small.
  EXPECT_EQ(found->shrunk.rx_driver, RxDriverKind::kCorec)
      << "SimplifyRxDriver dropped the corec axis from a corec-only bug";
  EXPECT_TRUE(found->shrunk.plant_corec_wedge);
  EXPECT_LE(found->shrunk.TimelineEvents(), 3u);

  ASSERT_FALSE(found->bundle_path.empty());
  ReproBundle bundle;
  std::string error;
  ASSERT_TRUE(ReadBundleFile(found->bundle_path, &bundle, &error)) << error;
  EXPECT_TRUE(bundle.signature == found->signature);
  for (int i = 0; i < 2; ++i) {
    const ReplayResult replay = ReplayBundle(bundle, /*timeout_ms=*/60'000);
    EXPECT_TRUE(replay.reproduced)
        << "replay " << i << " observed " << SignatureKindName(replay.observed.kind)
        << ": " << replay.observed.detail;
    EXPECT_EQ(replay.observed.fingerprint, bundle.signature.fingerprint);
  }
}

// The wedge in isolation: a corec spec with the plant armed classifies as an
// invariant violation (the stream oracle fires on the stalled transfer), and
// the identical spec on rss is clean — the defect really is driver-local,
// which is exactly what SimplifyRxDriver exploits.
TEST(RxConformanceForensicsTest, WedgeFailsOnCorecOnly) {
  ScenarioSpec spec;
  // Delay spikes park packets and release them as a burst deeper than one
  // claim window, which is what makes consumer windows unequal — a smaller
  // later window commits first, the hand-off stalls, and the plant fires.
  spec.seed = 3;
  spec.family = FaultFamily::kDelaySpike;
  spec.transfer_bytes = 600'000;
  spec.rx_driver = RxDriverKind::kCorec;
  spec.plant_corec_wedge = true;

  ExecOptions exec;
  exec.timeout_ms = 60'000;
  const SpecOutcome corec = ExecuteSpec(spec, exec);
  EXPECT_EQ(corec.signature.kind, SignatureKind::kInvariantViolation)
      << corec.signature.detail;

  ScenarioSpec rss = spec;
  rss.rx_driver = RxDriverKind::kRss;  // plant is meaningless off corec
  const SpecOutcome clean = ExecuteSpec(rss, exec);
  EXPECT_EQ(clean.signature.kind, SignatureKind::kClean) << clean.signature.detail;
}

}  // namespace
}  // namespace juggler
