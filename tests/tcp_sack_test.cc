// SACK, DSACK and retransmission-timer behaviours of the TCP substrate —
// including regression tests for two bugs the figure benches exposed:
// RTO postponement by dupACK-clocked sends, and unbounded dupACK inflation.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "src/sim/event_loop.h"
#include "src/tcp/tcp_endpoint.h"
#include "tests/test_util.h"

namespace juggler {
namespace {

Segment PacketToSegment(const Packet& p) {
  Segment s;
  s.flow = p.flow;
  s.seq = p.seq;
  s.payload_len = p.payload_len;
  s.mtu_count = p.payload_len > 0 ? 1 : 0;
  s.flags = p.flags;
  s.ack_seq = p.ack_seq;
  s.ack_rwnd = p.ack_rwnd;
  s.sack = p.sack;
  s.sent_time = p.sent_time;
  return s;
}

class PipeSink : public PacketSink {
 public:
  PipeSink(EventLoop* loop, TimeNs delay) : loop_(loop), delay_(delay) {}
  void set_target(TcpEndpoint* target) { target_ = target; }
  void set_drop_fn(std::function<bool(const Packet&)> fn) { drop_fn_ = std::move(fn); }

  void Accept(PacketPtr packet) override {
    last_sack = packet->sack;
    if (drop_fn_ && drop_fn_(*packet)) {
      return;
    }
    const Segment s = PacketToSegment(*packet);
    loop_->Schedule(delay_, [this, s] { target_->OnSegment(s); });
  }

  SackBlocks last_sack;

 private:
  EventLoop* loop_;
  TimeNs delay_;
  TcpEndpoint* target_ = nullptr;
  std::function<bool(const Packet&)> drop_fn_;
};

struct Harness {
  explicit Harness(TimeNs delay = Us(10), TcpConfig config = {})
      : a_pipe(&loop, delay),
        b_pipe(&loop, delay),
        a_nic(&loop, &factory, NicTxConfig{}, &a_pipe),
        b_nic(&loop, &factory, NicTxConfig{}, &b_pipe) {
    const FiveTuple flow = TestFlow();
    a = std::make_unique<TcpEndpoint>(&loop, config, flow, &a_nic);
    b = std::make_unique<TcpEndpoint>(&loop, config, flow.Reversed(), &b_nic);
    a_pipe.set_target(b.get());
    b_pipe.set_target(a.get());
  }
  EventLoop loop;
  PacketFactory factory;
  PipeSink a_pipe;  // a -> b (data)
  PipeSink b_pipe;  // b -> a (ACKs)
  NicTx a_nic;
  NicTx b_nic;
  std::unique_ptr<TcpEndpoint> a;
  std::unique_ptr<TcpEndpoint> b;
};

TEST(TcpSackTest, ReceiverAdvertisesSackBlocks) {
  Harness h;
  // Deliver a segment past a hole directly to the receiver.
  Segment s;
  s.flow = TestFlow();
  s.seq = 5000;
  s.payload_len = 1000;
  s.mtu_count = 1;
  s.flags = kFlagAck;
  h.b->OnSegment(s);
  h.loop.Run();
  ASSERT_GE(h.b_pipe.last_sack.count, 1);
  EXPECT_EQ(h.b_pipe.last_sack.start[0], 5000u);
  EXPECT_EQ(h.b_pipe.last_sack.end[0], 6000u);
}

TEST(TcpSackTest, SackRecoveryRetransmitsWholeHole) {
  // Drop an entire 45-packet TSO burst; SACK recovery must resend the hole
  // as one burst rather than one MSS per RTT.
  Harness h;
  uint64_t count = 0;
  h.a_pipe.set_drop_fn([&](const Packet& p) {
    if (p.payload_len == 0) {
      return false;
    }
    ++count;
    // Drop the 50th..94th data transmissions (a full TSO worth, once).
    return count >= 50 && count < 95;
  });
  h.a->Send(2'000'000);
  h.loop.RunUntil(Ms(50));
  EXPECT_EQ(h.b->bytes_delivered(), 2'000'000u);
  // Recovery should be dominated by fast retransmit, not a string of RTOs.
  EXPECT_LE(h.a->sender_stats().rtos, 1u);
  EXPECT_GE(h.a->sender_stats().retransmitted_bytes, 44u * kMss);
}

TEST(TcpSackTest, DsackDetectionRaisesThreshold) {
  Harness h;
  // Reorder-like injury: duplicate delivery after a retransmission.
  // Simulate directly: sender retransmits (we force via drops), and the
  // "lost" original arrives later as a duplicate -> receiver DSACKs.
  std::vector<Packet> held;
  uint64_t count = 0;
  h.a_pipe.set_drop_fn([&](const Packet& p) {
    if (p.payload_len > 0 && ++count == 10) {
      held.push_back(p);  // delay the 10th data packet
      return true;
    }
    return false;
  });
  h.a->Send(200'000);
  h.loop.RunUntil(Ms(30));  // loss recovered via retransmission by now
  const int threshold_before = h.a->effective_dupack_threshold();
  // The held original finally arrives: fully duplicate.
  for (const Packet& p : held) {
    h.b->OnSegment(PacketToSegment(p));
  }
  h.loop.RunUntil(Ms(60));
  EXPECT_GE(h.a->sender_stats().spurious_retransmits_detected, 1u);
  EXPECT_GT(h.a->effective_dupack_threshold(), threshold_before);
}

TEST(TcpSackTest, RtoResetsAdaptiveThreshold) {
  TcpConfig config;
  Harness h(Us(10), config);
  h.a->Send(100'000);
  h.loop.RunUntil(Ms(20));
  // Force the adaptive threshold up via the DSACK path.
  Segment dup;
  dup.flow = TestFlow();
  dup.seq = 0;
  dup.payload_len = kMss;
  dup.mtu_count = 1;
  dup.flags = kFlagAck;
  h.b->OnSegment(dup);  // duplicate of delivered data -> DSACK
  h.loop.RunUntil(Ms(25));
  // Now cause a genuine timeout: drop everything for a while.
  bool blackhole = true;
  h.a_pipe.set_drop_fn([&](const Packet&) { return blackhole; });
  h.a->Send(50'000);
  h.loop.RunUntil(Ms(100));
  blackhole = false;
  h.loop.RunUntil(Ms(400));
  EXPECT_GE(h.a->sender_stats().rtos, 1u);
  EXPECT_EQ(h.a->effective_dupack_threshold(), config.dupack_threshold);
  EXPECT_EQ(h.b->bytes_delivered(), 150'000u);
}

TEST(TcpSackTest, RtoNotPostponedByOngoingSends) {
  // Regression: a lost retransmission must be retried ~RTO after the fast
  // retransmit even while dupACK-clocked sends continue. (The bug: ArmRto on
  // every transmission kept pushing the timer forever.)
  TcpConfig config;
  config.initial_rto = Ms(10);
  config.max_rto = Ms(16);
  Harness h(Us(10), config);
  uint64_t count = 0;
  int rtx_seen = 0;
  h.a_pipe.set_drop_fn([&](const Packet& p) {
    if (p.payload_len == 0) {
      return false;
    }
    ++count;
    if (count == 20) {
      return true;  // original loss
    }
    // Drop the first retransmission of that hole (seq below the frontier
    // and previously seen): identify crudely by the retransmit being the
    // first out-of-frontier-order send.
    if (p.seq + p.payload_len <= 20 * kMss && count > 20 && ++rtx_seen == 1) {
      return true;
    }
    return false;
  });
  // Keep a steady open-loop trickle so sends continue throughout.
  for (int i = 0; i < 200; ++i) {
    h.loop.Schedule(i * Us(200), [&h] { h.a->Send(kMss); });
  }
  h.loop.RunUntil(Ms(120));
  EXPECT_EQ(h.b->bytes_delivered(), 200u * kMss);
  // The hole healed via timeout well within the run; total time far less
  // than the 40ms+ horizon means no indefinite postponement.
  EXPECT_GE(h.a->sender_stats().rtos, 1u);
}

TEST(TcpSackTest, InflationBoundedDuringStalledRecovery) {
  // Regression: while recovery is stalled (retransmission lost), incoming
  // dupACKs must not inflate cwnd without bound.
  TcpConfig config;
  config.initial_rto = Ms(50);  // keep the stall alive for a while
  Harness h(Us(10), config);
  uint64_t count = 0;
  int below_frontier = 0;
  h.a_pipe.set_drop_fn([&](const Packet& p) {
    if (p.payload_len == 0) {
      return false;
    }
    ++count;
    if (count == 5) {
      return true;
    }
    if (p.seq + p.payload_len <= 5 * kMss && count > 5 && ++below_frontier <= 3) {
      return true;  // swallow the first few retransmissions
    }
    return false;
  });
  for (int i = 0; i < 150; ++i) {
    h.loop.Schedule(i * Us(100), [&h] { h.a->Send(kMss); });
  }
  h.loop.RunUntil(Ms(30));  // still inside the stalled recovery
  EXPECT_LT(h.a->cwnd(), 1'000'000u);
  h.loop.RunUntil(Ms(300));
  EXPECT_EQ(h.b->bytes_delivered(), 150u * kMss);
}

TEST(TcpSackTest, SackBlocksCapAtThree) {
  Harness h;
  // Create four separate holes at the receiver.
  for (Seq start : {Seq{10000}, Seq{20000}, Seq{30000}, Seq{40000}}) {
    Segment s;
    s.flow = TestFlow();
    s.seq = start;
    s.payload_len = 500;
    s.mtu_count = 1;
    s.flags = kFlagAck;
    h.b->OnSegment(s);
  }
  h.loop.Run();
  EXPECT_EQ(h.b_pipe.last_sack.count, 3);
}

}  // namespace
}  // namespace juggler
