// TCP transport substrate.
//
// A TcpEndpoint is one side of a connection: a NewReno+SACK sender (slow
// start, AIMD congestion avoidance, 3-dupACK fast retransmit, SACK
// scoreboard driving hole retransmission during recovery, RTO with Karn's
// rule) plus a receiver (sequence reassembly, cumulative ACKs with up to 3
// SACK blocks, immediate duplicate ACKs for out-of-order segments,
// receive-window advertisement).
//
// This is deliberately the stack whose pathologies the paper studies:
// duplicate ACKs from reordered arrivals trigger spurious fast retransmits
// and halve cwnd, and every delivered segment costs app-core time — so a
// GRO layer that fails to batch or reorder shows up as both throughput loss
// and CPU burn, exactly as in §5.1.1.
//
// Segment input arrives via OnSegment() after the host has charged app-core
// time for it. Packet output goes through a NicTx. The endpoint never
// allocates payload bytes: data is (sequence, length) accounting.

#ifndef JUGGLER_SRC_TCP_TCP_ENDPOINT_H_
#define JUGGLER_SRC_TCP_TCP_ENDPOINT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/nic/nic_tx.h"
#include "src/obs/metrics.h"
#include "src/sim/event_loop.h"
#include "src/util/flat_fifo.h"
#include "src/util/seq.h"
#include "src/util/seq_range_set.h"

namespace juggler {

struct TcpConfig {
  uint32_t mss = kMss;
  uint32_t init_cwnd = 10 * kMss;
  uint32_t max_cwnd = 3'000'000;
  uint32_t rcv_buf = 6'000'000;
  // Duplicate ACKs before fast retransmit. 3 is standard; raising it is the
  // classic TCP-side reordering mitigation (§6, RR-TCP et al.).
  int dupack_threshold = 3;
  // Multiplicative-decrease factor on fast retransmit. 0.5 is classic Reno;
  // 0.7 matches CUBIC (the Linux default in the paper's era) and keeps the
  // sawtooth mean close to the path's fair rate.
  double md_beta = 0.7;
  // Linux-style adaptive reordering detection: when a DSACK reveals that a
  // fast retransmit was spurious (the "lost" packet was merely late), the
  // effective threshold grows, up to this cap. An RTO resets it. Set the cap
  // to dupack_threshold to disable adaptation.
  int max_dupack_threshold = 256;
  TimeNs min_rto = Ms(2);
  TimeNs max_rto = Ms(200);
  // RTO before the first RTT sample; generous so slow control paths don't
  // fire spurious timeouts at startup.
  TimeNs initial_rto = Ms(50);
  // Optional per-connection send-rate cap (leaky bucket over bursts).
  int64_t pacing_rate_bps = 0;
  // DCTCP congestion control: scale cwnd by the EWMA fraction of CE-marked
  // bytes once per window instead of halving on loss signals alone. Needs
  // ECN-marking switch ports (LinkConfig::ecn).
  bool dctcp = false;
  double dctcp_g = 1.0 / 16.0;
};

struct TcpSenderStats {
  uint64_t bytes_sent = 0;
  uint64_t bytes_acked = 0;
  uint64_t acks_in = 0;
  uint64_t dupacks_in = 0;
  uint64_t fast_retransmits = 0;
  uint64_t rtos = 0;
  uint64_t retransmitted_bytes = 0;
  uint64_t spurious_retransmits_detected = 0;  // via DSACK
  // RTOs that fired while a previous RTO's recovery was still in progress:
  // each one doubled an already-backed-off timer (Karn exponential backoff
  // escalating). The first timeout of an episode counts in `rtos` only.
  uint64_t rto_backoffs = 0;
  // Persist-timer probes sent against a peer advertising a zero window
  // (receive-side overload: the app-core backlog ate the whole rcv_buf).
  // Without these the window-reopen ACK has no trigger and the connection
  // deadlocks with an empty event loop.
  uint64_t zero_window_probes = 0;
};

// Snapshot TCP endpoint stats into `registry` under `label` (the flow, e.g.
// "a_to_b"): dupACK and spurious-retransmit counters are the paper's §5
// reordering-visible-to-TCP signals.
struct TcpReceiverStats;
void PublishTcpStats(const TcpSenderStats& sender, const TcpReceiverStats& receiver,
                     const std::string& label, MetricsRegistry* registry);

struct TcpReceiverStats {
  uint64_t segments_in = 0;
  uint64_t ooo_segments_in = 0;  // arrived past rcv_nxt: a hole existed
  uint64_t old_segments_in = 0;  // entirely below rcv_nxt (dup/rtx)
  uint64_t acks_sent = 0;
  uint64_t bytes_delivered = 0;
};

class TcpEndpoint {
 public:
  // `local` is the five-tuple this endpoint transmits with (its packets'
  // flow); incoming data arrives on local.Reversed().
  TcpEndpoint(EventLoop* loop, const TcpConfig& config, const FiveTuple& local, NicTx* nic);

  // ---- application interface ----

  // Queue bytes for transmission.
  void Send(uint64_t bytes);

  // Endless data: the sender always has a full window to send (bulk flows).
  void SendForever();

  // Called with the new total of in-order bytes delivered, every time the
  // in-order point advances. Message framing layers live here.
  void set_on_deliver(std::function<void(uint64_t total_bytes)> cb) {
    on_deliver_ = std::move(cb);
  }

  // Observation-only tap invoked with every segment handed to this endpoint,
  // before any processing. The fault layer's StreamIntegrityChecker uses it
  // to account for exactly which byte ranges GRO delivered up the stack.
  void set_segment_tap(std::function<void(const Segment&)> tap) {
    segment_tap_ = std::move(tap);
  }

  // Per-packet priority marking (dynamic prioritization, §2.1).
  void set_priority_marker(std::function<Priority()> marker);

  // Adjust the leaky-bucket send-rate cap at runtime (0 disables).
  void set_pacing_rate(int64_t bps) { config_.pacing_rate_bps = bps; }

  // Receive-window backpressure hook: extra bytes (beyond this connection's
  // reassembly buffer) to subtract from the advertised window — the host
  // wires this to its app-core backlog.
  void set_rwnd_pressure(std::function<uint64_t()> fn) { rwnd_pressure_ = std::move(fn); }

  // ---- stack interface ----

  // A merged segment for this connection (data, ACK, or both).
  void OnSegment(const Segment& segment);

  const FiveTuple& local_flow() const { return local_; }

  // Per-connection snapshot into `registry` under `label`: both halves'
  // counters (PublishTcpStats) plus instantaneous gauges (cwnd, srtt). The
  // app-resilience layer publishes one per connection so application-level
  // retries can be correlated with this connection's transport retransmits.
  void PublishStats(const std::string& label, MetricsRegistry* registry) const;

  const TcpSenderStats& sender_stats() const { return snd_stats_; }
  const TcpReceiverStats& receiver_stats() const { return rcv_stats_; }
  uint64_t bytes_acked() const { return snd_stats_.bytes_acked; }
  uint64_t bytes_delivered() const { return rcv_stats_.bytes_delivered; }
  uint32_t cwnd() const { return cwnd_; }
  TimeNs srtt() const { return srtt_; }
  uint64_t backlog_bytes() const { return backlog_bytes_; }
  int effective_dupack_threshold() const { return effective_dupack_threshold_; }
  double dctcp_alpha() const { return dctcp_alpha_; }

 private:
  // ---- sender ----
  void MaybeSend();
  void SendBurstNow(Seq seq, uint32_t len, bool is_retransmit);
  void ProcessAck(Seq ack, uint32_t rwnd, const SackBlocks& sack, bool ece);
  // DCTCP per-window alpha update and multiplicative decrease.
  void UpdateDctcp(uint32_t acked, bool ece);
  void EnterFastRetransmit();
  // During recovery: retransmit the next SACK-identified hole (a whole TSO
  // burst at a time), or one MSS at snd_una when no SACK info exists.
  void MaybeRetransmitHole();
  void OnRto();
  // Post-RTO (CA_Loss-style) recovery: resend the next un-SACKed chunk of
  // [snd_una, rto_recover_) under the returning ACK clock, go-back-N style.
  void ResendAfterRto();
  // Restart the retransmission timer (cum-ACK advance, loss events).
  void ArmRto();
  // Arm only if not already running (RFC 6298 rule 5.1, on new data sent).
  // Re-arming on every transmission would let a lost retransmission's
  // timeout be postponed forever by ongoing dupACK-clocked sends.
  void ArmRtoIfUnarmed();
  void CancelRto();
  // Persist timer (RFC 1122 §4.2.2.17): armed when data is waiting, nothing
  // is in flight, and the peer advertises a zero window — the one state with
  // no other pending timer. Each firing retransmits the last already-ACKed
  // byte; the peer's DSACK reply carries its current window.
  void MaybeArmPersist();
  void OnPersistTimer();
  void CancelPersist();
  void SendWindowProbe();
  void UpdateRttEstimate(TimeNs sample);
  uint32_t InflightBytes() const { return static_cast<uint32_t>(SeqDelta(snd_una_, snd_nxt_)); }

  // ---- receiver ----
  void ProcessData(const Segment& segment);
  uint32_t AdvertisedWindow() const;
  // Sends a cumulative ACK with SACK blocks; a non-empty [dsack_start,
  // dsack_end) range is reported as a leading DSACK block; `ece` echoes a
  // CE mark back to the sender (DCTCP feedback).
  void SendAckNow(Seq dsack_start = 0, Seq dsack_end = 0, bool ece = false);

  EventLoop* loop_;
  TcpConfig config_;
  FiveTuple local_;
  NicTx* nic_;

  // Sender state.
  Seq snd_una_ = 0;
  Seq snd_nxt_ = 0;
  uint64_t backlog_bytes_ = 0;
  bool infinite_backlog_ = false;
  uint32_t cwnd_;
  uint32_t ssthresh_ = 0xffffffff;
  uint32_t peer_rwnd_;
  int dupacks_ = 0;
  bool in_recovery_ = false;
  Seq recover_ = 0;
  bool in_rto_recovery_ = false;
  Seq rto_recover_ = 0;
  // DCTCP state: EWMA of the marked fraction, per-window byte counters.
  double dctcp_alpha_ = 0.0;
  uint64_t dctcp_window_acked_ = 0;
  uint64_t dctcp_window_marked_ = 0;
  Seq dctcp_window_end_ = 0;
  // SACK scoreboard: peer-reported received ranges above snd_una_.
  SeqRangeSet sacked_;
  // Retransmission cursor within the current recovery episode, so each hole
  // is retransmitted once rather than on every duplicate ACK.
  Seq rtx_next_ = 0;
  // Ranges we have retransmitted recently; a DSACK inside one of these means
  // the retransmit was spurious (reordering, not loss).
  SeqRangeSet rtx_ranges_;
  int effective_dupack_threshold_;
  TimerId rto_timer_ = kInvalidTimerId;
  TimeNs srtt_ = 0;
  TimeNs rttvar_ = 0;
  TimeNs rto_;
  TimerId pacing_timer_ = kInvalidTimerId;
  TimeNs pacing_next_free_ = 0;
  TimerId persist_timer_ = kInvalidTimerId;
  TimeNs persist_backoff_ = 0;  // 0 = start from the current RTO next time
  // (end_seq, send_time) of in-flight bursts for RTT sampling; cleared on
  // any retransmission (Karn's algorithm). FlatFifo, not std::deque: a
  // deque's map block plus first node cost ~600 heap bytes per endpoint
  // even when idle, which dominated bytes-per-connection at the 1M-flow
  // scale point; an idle FlatFifo owns no heap.
  FlatFifo<std::pair<Seq, TimeNs>> send_times_;
  std::function<Priority()> marker_;

  // Receiver state.
  Seq rcv_nxt_ = 0;
  // Out-of-order byte ranges [start, end) awaiting reassembly.
  SeqRangeSet ooo_;
  std::function<void(uint64_t)> on_deliver_;
  std::function<void(const Segment&)> segment_tap_;
  std::function<uint64_t()> rwnd_pressure_;

  TcpSenderStats snd_stats_;
  TcpReceiverStats rcv_stats_;
};

}  // namespace juggler

#endif  // JUGGLER_SRC_TCP_TCP_ENDPOINT_H_
