#include "src/tcp/tcp_endpoint.h"

#include <algorithm>

#include "src/util/logging.h"

namespace juggler {

TcpEndpoint::TcpEndpoint(EventLoop* loop, const TcpConfig& config, const FiveTuple& local,
                         NicTx* nic)
    : loop_(loop),
      config_(config),
      local_(local),
      nic_(nic),
      cwnd_(config.init_cwnd),
      peer_rwnd_(config.rcv_buf),
      effective_dupack_threshold_(config.dupack_threshold),
      rto_(config.initial_rto) {}

namespace {
// How far below snd_una a DSACK may refer to a remembered retransmission.
constexpr uint32_t kDsackHorizon = 8 * 1024 * 1024;
}  // namespace

void TcpEndpoint::set_priority_marker(std::function<Priority()> marker) {
  marker_ = std::move(marker);
}

void TcpEndpoint::Send(uint64_t bytes) {
  backlog_bytes_ += bytes;
  MaybeSend();
}

void TcpEndpoint::SendForever() {
  infinite_backlog_ = true;
  MaybeSend();
}

// ---------------------------------------------------------------- sender --

void TcpEndpoint::MaybeSend() {
  while (true) {
    const uint32_t window = std::min(cwnd_, peer_rwnd_);
    const uint32_t inflight = InflightBytes();
    if (inflight >= window) {
      MaybeArmPersist();
      return;
    }
    uint64_t can_send = window - inflight;
    if (!infinite_backlog_) {
      can_send = std::min<uint64_t>(can_send, backlog_bytes_);
    }
    const uint32_t len = static_cast<uint32_t>(std::min<uint64_t>(can_send, kMaxTsoPayload));
    if (len == 0) {
      return;
    }
    if (config_.pacing_rate_bps > 0) {
      const TimeNs now = loop_->now();
      if (pacing_next_free_ > now) {
        if (pacing_timer_ == kInvalidTimerId) {
          pacing_timer_ = loop_->ScheduleAt(pacing_next_free_, [this] {
            pacing_timer_ = kInvalidTimerId;
            MaybeSend();
          });
        }
        return;
      }
      pacing_next_free_ =
          now + SerializationTime(len + kPerPacketWireOverhead * ((len + kMss - 1) / kMss),
                                  config_.pacing_rate_bps);
    }
    SendBurstNow(snd_nxt_, len, /*is_retransmit=*/false);
    snd_nxt_ += len;
    if (!infinite_backlog_) {
      backlog_bytes_ -= len;
    }
    snd_stats_.bytes_sent += len;
    send_times_.emplace_back(snd_nxt_, loop_->now());
    ArmRtoIfUnarmed();
  }
}

void TcpEndpoint::SendBurstNow(Seq seq, uint32_t len, bool is_retransmit) {
  TsoBurst burst;
  burst.flow = local_;
  burst.seq = seq;
  burst.len = len;
  burst.flags = kFlagAck;
  // PSH when this transmission empties the send queue — how Linux marks the
  // end of available data. Bulk flows therefore rarely set it.
  const bool empties = !infinite_backlog_ && backlog_bytes_ == len;
  if (is_retransmit ||
      (empties && SeqDelta(snd_una_, seq) + static_cast<int32_t>(len) >=
                      SeqDelta(snd_una_, snd_nxt_))) {
    burst.flags |= kFlagPsh;
  }
  if (is_retransmit) {
    snd_stats_.retransmitted_bytes += len;
    send_times_.clear();  // Karn: no RTT samples across retransmissions
    rtx_ranges_.Insert(seq, seq + len);
  }
  burst.ack_seq = rcv_nxt_;
  burst.ack_rwnd = AdvertisedWindow();
  burst.marker = marker_ ? &marker_ : nullptr;
  nic_->SendBurst(burst);
}

void TcpEndpoint::ProcessAck(Seq ack, uint32_t rwnd, const SackBlocks& sack, bool ece) {
  ++snd_stats_.acks_in;
  peer_rwnd_ = rwnd;
  if (rwnd > 0) {
    persist_backoff_ = 0;
    if (persist_timer_ != kInvalidTimerId) {
      // Window reopened (typically the reply to a probe). This ACK advances
      // no data, so the cum-ACK branch's MaybeSend below won't run — resume
      // transmission here.
      CancelPersist();
      MaybeSend();
    }
  }
  // A leading block entirely below the cumulative ACK is a DSACK (RFC 2883):
  // the peer received duplicate data. If we retransmitted that range, the
  // retransmit was spurious — the original was merely reordered — so raise
  // the effective dupACK threshold, as Linux's reordering detection does.
  if (sack.count > 0 && SeqBeforeEq(sack.end[0], ack)) {
    rtx_ranges_.ClipBelow(snd_una_ - kDsackHorizon);
    if (rtx_ranges_.Covers(sack.start[0])) {
      ++snd_stats_.spurious_retransmits_detected;
      effective_dupack_threshold_ =
          std::min(config_.max_dupack_threshold, effective_dupack_threshold_ * 2);
    }
  }
  // Merge SACK blocks into the scoreboard (clipped to outstanding data).
  for (uint8_t i = 0; i < sack.count; ++i) {
    const Seq s = SeqMax(sack.start[i], snd_una_);
    if (SeqBefore(s, sack.end[i]) && SeqBeforeEq(sack.end[i], snd_nxt_)) {
      sacked_.Insert(s, sack.end[i]);
    }
  }
  if (SeqAfter(ack, snd_nxt_)) {
    ack = snd_nxt_;  // corrupted/ancient ACK beyond what we sent: clamp
  }
  if (SeqAfter(ack, snd_una_)) {
    const uint32_t acked = static_cast<uint32_t>(SeqDelta(snd_una_, ack));
    snd_una_ = ack;
    sacked_.ClipBelow(snd_una_);
    if (SeqBefore(rtx_next_, snd_una_)) {
      rtx_next_ = snd_una_;
    }
    snd_stats_.bytes_acked += acked;
    dupacks_ = 0;

    // RTT sample from the newest fully-acked burst.
    TimeNs sample = -1;
    while (!send_times_.empty() && SeqBeforeEq(send_times_.front().first, ack)) {
      sample = loop_->now() - send_times_.front().second;
      send_times_.pop_front();
    }
    if (sample >= 0) {
      UpdateRttEstimate(sample);
    }
    if (config_.dctcp) {
      UpdateDctcp(acked, ece);
    }

    if (in_rto_recovery_) {
      if (SeqAfterEq(snd_una_, rto_recover_)) {
        in_rto_recovery_ = false;
      } else {
        ResendAfterRto();
      }
    }
    if (in_recovery_) {
      if (SeqAfterEq(ack, recover_)) {
        in_recovery_ = false;
        cwnd_ = ssthresh_;
      } else {
        // Partial ACK: keep filling holes (SACK) / resend at snd_una_.
        MaybeRetransmitHole();
      }
    } else if (cwnd_ < ssthresh_) {
      cwnd_ = std::min(config_.max_cwnd, cwnd_ + acked);  // slow start
    } else {
      const uint64_t inc =
          static_cast<uint64_t>(config_.mss) * acked / std::max<uint32_t>(cwnd_, 1);
      cwnd_ = static_cast<uint32_t>(
          std::min<uint64_t>(config_.max_cwnd, cwnd_ + std::max<uint64_t>(inc, 1)));
    }

    if (snd_una_ == snd_nxt_) {
      CancelRto();
      rto_ = std::clamp(std::max(2 * srtt_, srtt_ + 4 * rttvar_), config_.min_rto,
                        config_.max_rto);
    } else {
      ArmRto();
    }
    MaybeSend();
    return;
  }
  if (ack == snd_una_ && SeqAfter(snd_nxt_, snd_una_)) {
    ++snd_stats_.dupacks_in;
    ++dupacks_;
    // SACK-based loss detection (RFC 6675 flavour): when the peer has SACKed
    // at least DupThresh segments' worth of data above the hole, the hole is
    // lost — no need to wait for DupThresh separate duplicate ACKs. This
    // matters behind GRO: large merged segments produce few ACKs, so a
    // counting-only rule would push recovery onto the RTO.
    const bool sack_loss =
        !sacked_.empty() &&
        sacked_.TotalBytes() >=
            static_cast<uint64_t>(effective_dupack_threshold_) * config_.mss;
    if (!in_recovery_ && !in_rto_recovery_ &&
        (dupacks_ >= effective_dupack_threshold_ || sack_loss)) {
      EnterFastRetransmit();
    } else if (in_recovery_) {
      // Window inflation, bounded: one MSS per dupACK up to twice ssthresh.
      // (Unbounded inflation would blow the window open if recovery stalls
      // on a lost retransmission.)
      if (cwnd_ < 2 * ssthresh_) {
        cwnd_ = std::min(config_.max_cwnd, cwnd_ + config_.mss);
      }
      MaybeRetransmitHole();
      MaybeSend();
    }
  }
}

void TcpEndpoint::UpdateDctcp(uint32_t acked, bool ece) {
  dctcp_window_acked_ += acked;
  if (ece) {
    dctcp_window_marked_ += acked;
  }
  if (SeqBefore(snd_una_, dctcp_window_end_)) {
    return;  // still inside the current observation window
  }
  if (dctcp_window_acked_ > 0) {
    const double frac = static_cast<double>(dctcp_window_marked_) /
                        static_cast<double>(dctcp_window_acked_);
    dctcp_alpha_ = (1.0 - config_.dctcp_g) * dctcp_alpha_ + config_.dctcp_g * frac;
    if (frac > 0.0 && !in_recovery_ && !in_rto_recovery_) {
      // DCTCP decrease: proportional to the congestion extent.
      cwnd_ = std::max(2 * config_.mss,
                       static_cast<uint32_t>(cwnd_ * (1.0 - dctcp_alpha_ / 2.0)));
      ssthresh_ = cwnd_;
    }
  }
  dctcp_window_acked_ = 0;
  dctcp_window_marked_ = 0;
  dctcp_window_end_ = snd_nxt_;
}

void TcpEndpoint::EnterFastRetransmit() {
  ++snd_stats_.fast_retransmits;
  const uint32_t inflight = InflightBytes();
  ssthresh_ = std::max(static_cast<uint32_t>(inflight * config_.md_beta), 2 * config_.mss);
  recover_ = snd_nxt_;
  in_recovery_ = true;
  cwnd_ = ssthresh_ + 3 * config_.mss;
  rtx_next_ = snd_una_;
  MaybeRetransmitHole();
  ArmRto();
}

void TcpEndpoint::MaybeRetransmitHole() {
  if (snd_una_ == snd_nxt_) {
    return;
  }
  if (sacked_.empty()) {
    // No SACK information: classic NewReno — one MSS at snd_una_, once.
    if (SeqAfter(rtx_next_, snd_una_)) {
      return;
    }
    const uint32_t len =
        std::min(config_.mss, static_cast<uint32_t>(SeqDelta(snd_una_, snd_nxt_)));
    SendBurstNow(snd_una_, len, /*is_retransmit=*/true);
    rtx_next_ = snd_una_ + len;
    return;
  }
  // SACK recovery: retransmit the next unfilled hole below the highest
  // SACKed byte, a whole (up to 64KB) burst at a time — a fully lost TSO
  // burst heals in one round trip instead of one MSS per RTT.
  const Seq from = SeqAfter(rtx_next_, snd_una_) ? rtx_next_ : snd_una_;
  Seq hole_start = 0;
  Seq hole_end = 0;
  if (!sacked_.NextHole(from, &hole_start, &hole_end)) {
    return;
  }
  const uint32_t len = static_cast<uint32_t>(
      std::min<int64_t>(SeqDelta(hole_start, hole_end), kMaxTsoPayload));
  SendBurstNow(hole_start, len, /*is_retransmit=*/true);
  rtx_next_ = hole_start + len;
}

void TcpEndpoint::OnRto() {
  rto_timer_ = kInvalidTimerId;
  if (snd_una_ == snd_nxt_) {
    return;  // nothing outstanding
  }
  ++snd_stats_.rtos;
  if (in_rto_recovery_) {
    ++snd_stats_.rto_backoffs;  // consecutive timeout: the backoff escalated
  }
  ssthresh_ = std::max(InflightBytes() / 2, 2 * config_.mss);
  cwnd_ = config_.mss;
  in_recovery_ = false;
  dupacks_ = 0;
  rtx_next_ = snd_una_;
  // Everything outstanding is presumed lost; resend it progressively under
  // the returning ACK clock (go-back-N, skipping SACKed ranges).
  in_rto_recovery_ = true;
  rto_recover_ = snd_nxt_;
  // A genuine timeout invalidates the learned reordering extent.
  effective_dupack_threshold_ = config_.dupack_threshold;
  ResendAfterRto();
  rto_ = std::min(config_.max_rto, rto_ * 2);  // exponential backoff
  ArmRto();
}

void TcpEndpoint::ResendAfterRto() {
  Seq from = SeqAfter(rtx_next_, snd_una_) ? rtx_next_ : snd_una_;
  from = sacked_.SkipCovered(from);
  if (SeqAfterEq(from, rto_recover_)) {
    return;  // everything up to the loss point is resent or SACKed
  }
  // Bound the burst at the next SACKed range (no need to resend those).
  Seq bound = rto_recover_;
  for (const auto& [start, end] : sacked_.ranges()) {
    if (SeqAfter(start, from)) {
      bound = SeqMin(bound, start);
      break;
    }
  }
  const uint32_t window = std::max(cwnd_, config_.mss);
  const uint32_t len = static_cast<uint32_t>(std::min<int64_t>(
      SeqDelta(from, bound), std::min<uint32_t>(kMaxTsoPayload, window)));
  SendBurstNow(from, len, /*is_retransmit=*/true);
  rtx_next_ = from + len;
}

void TcpEndpoint::ArmRto() {
  CancelRto();
  rto_timer_ = loop_->Schedule(rto_, [this] { OnRto(); });
}

void TcpEndpoint::ArmRtoIfUnarmed() {
  if (rto_timer_ == kInvalidTimerId) {
    ArmRto();
  }
}

void TcpEndpoint::CancelRto() {
  if (rto_timer_ != kInvalidTimerId) {
    loop_->Cancel(rto_timer_);
    rto_timer_ = kInvalidTimerId;
  }
}

void TcpEndpoint::MaybeArmPersist() {
  if (persist_timer_ != kInvalidTimerId || peer_rwnd_ != 0) {
    return;
  }
  if (InflightBytes() != 0 || (!infinite_backlog_ && backlog_bytes_ == 0)) {
    return;  // the RTO covers in-flight data; no data means nothing to probe for
  }
  if (persist_backoff_ == 0) {
    persist_backoff_ = rto_;
  }
  persist_timer_ = loop_->Schedule(persist_backoff_, [this] { OnPersistTimer(); });
}

void TcpEndpoint::OnPersistTimer() {
  persist_timer_ = kInvalidTimerId;
  if (peer_rwnd_ != 0 || InflightBytes() != 0 ||
      (!infinite_backlog_ && backlog_bytes_ == 0)) {
    persist_backoff_ = 0;
    MaybeSend();
    return;
  }
  ++snd_stats_.zero_window_probes;
  SendWindowProbe();
  persist_backoff_ = std::min(config_.max_rto, persist_backoff_ * 2);
  persist_timer_ = loop_->Schedule(persist_backoff_, [this] { OnPersistTimer(); });
}

void TcpEndpoint::CancelPersist() {
  if (persist_timer_ != kInvalidTimerId) {
    loop_->Cancel(persist_timer_);
    persist_timer_ = kInvalidTimerId;
  }
}

void TcpEndpoint::SendWindowProbe() {
  // One already-ACKed byte (snd_nxt_ - 1): ProcessData classifies it as fully
  // duplicate and answers with a DSACK ACK carrying the current window. Sent
  // outside the retransmit bookkeeping — no Karn reset, no rtx_ranges_ entry,
  // so the reply is never misread as a spurious-retransmit signal.
  TsoBurst burst;
  burst.flow = local_;
  burst.seq = snd_nxt_ - 1;
  burst.len = 1;
  burst.flags = kFlagAck;
  burst.ack_seq = rcv_nxt_;
  burst.ack_rwnd = AdvertisedWindow();
  burst.marker = marker_ ? &marker_ : nullptr;
  nic_->SendBurst(burst);
}

void TcpEndpoint::UpdateRttEstimate(TimeNs sample) {
  if (srtt_ == 0) {
    srtt_ = sample;
    rttvar_ = sample / 2;
  } else {
    const TimeNs err = sample > srtt_ ? sample - srtt_ : srtt_ - sample;
    rttvar_ = (3 * rttvar_ + err) / 4;
    srtt_ = (7 * srtt_ + sample) / 8;
  }
  // RFC6298 shape, with a 2x-SRTT floor: rttvar decays to ~0 on steady
  // paths, and a window-limited sender's ACK clock arrives in RTT-spaced
  // bursts — an RTO equal to SRTT would fire spuriously every window.
  rto_ = std::clamp(std::max(2 * srtt_, srtt_ + 4 * rttvar_), config_.min_rto, config_.max_rto);
}

// -------------------------------------------------------------- receiver --

void TcpEndpoint::OnSegment(const Segment& segment) {
  if (segment_tap_) {
    segment_tap_(segment);
  }
  if (segment.payload_len > 0) {
    ProcessData(segment);
  }
  if ((segment.flags & kFlagAck) != 0) {
    ProcessAck(segment.ack_seq, segment.ack_rwnd, segment.sack, segment.ece);
  }
}

void TcpEndpoint::ProcessData(const Segment& segment) {
  ++rcv_stats_.segments_in;
  Seq start = segment.seq;
  const Seq end = segment.end_seq();

  if (SeqBeforeEq(end, rcv_nxt_)) {
    ++rcv_stats_.old_segments_in;
    // Fully duplicate data: acknowledge with a DSACK block (RFC 2883) so the
    // sender can tell reordering from loss.
    SendAckNow(segment.seq, end, segment.ce_mark);
    return;
  }
  if (SeqBefore(start, rcv_nxt_)) {
    start = rcv_nxt_;  // partial overlap with delivered data
  }

  if (start == rcv_nxt_) {
    rcv_nxt_ = ooo_.DrainFrom(end);
    const uint64_t before = rcv_stats_.bytes_delivered;
    rcv_stats_.bytes_delivered = before + static_cast<uint64_t>(SeqDelta(start, rcv_nxt_));
    if (on_deliver_) {
      on_deliver_(rcv_stats_.bytes_delivered);
    }
  } else {
    ++rcv_stats_.ooo_segments_in;
    ooo_.Insert(start, end);
  }
  // Immediate ACK per delivered segment; holes produce duplicate ACKs —
  // this is the ACK storm the paper measures ("15 times more ACKs").
  // CE marks echo back per segment (DCTCP receiver behaviour).
  SendAckNow(0, 0, segment.ce_mark);
}

uint32_t TcpEndpoint::AdvertisedWindow() const {
  uint64_t used = ooo_.TotalBytes();
  if (rwnd_pressure_) {
    used += rwnd_pressure_();
  }
  if (used >= config_.rcv_buf) {
    return 0;
  }
  return config_.rcv_buf - static_cast<uint32_t>(used);
}

void TcpEndpoint::SendAckNow(Seq dsack_start, Seq dsack_end, bool ece) {
  ++rcv_stats_.acks_sent;
  const Priority priority = marker_ ? marker_() : Priority::kLow;
  SackBlocks sack;
  if (SeqBefore(dsack_start, dsack_end)) {
    sack.Add(dsack_start, dsack_end);  // DSACK rides as the first block
  }
  for (const auto& [start, end] : ooo_.ranges()) {
    if (sack.count == 3) {
      break;
    }
    sack.Add(start, end);
  }
  nic_->SendAck(local_, snd_nxt_, rcv_nxt_, AdvertisedWindow(), priority, sack, ece);
}

void PublishTcpStats(const TcpSenderStats& sender, const TcpReceiverStats& receiver,
                     const std::string& label, MetricsRegistry* registry) {
  registry->AddCounter("tcp.bytes_sent", label, sender.bytes_sent);
  registry->AddCounter("tcp.bytes_acked", label, sender.bytes_acked);
  registry->AddCounter("tcp.acks_in", label, sender.acks_in);
  registry->AddCounter("tcp.dupacks_in", label, sender.dupacks_in);
  registry->AddCounter("tcp.fast_retransmits", label, sender.fast_retransmits);
  registry->AddCounter("tcp.rtos", label, sender.rtos);
  registry->AddCounter("tcp.retransmitted_bytes", label, sender.retransmitted_bytes);
  registry->AddCounter("tcp.spurious_retransmits", label,
                       sender.spurious_retransmits_detected);
  registry->AddCounter("tcp.rto_backoffs", label, sender.rto_backoffs);
  registry->AddCounter("tcp.zero_window_probes", label, sender.zero_window_probes);
  registry->AddCounter("tcp.segments_in", label, receiver.segments_in);
  registry->AddCounter("tcp.ooo_segments_in", label, receiver.ooo_segments_in);
  registry->AddCounter("tcp.old_segments_in", label, receiver.old_segments_in);
  registry->AddCounter("tcp.acks_sent", label, receiver.acks_sent);
  registry->AddCounter("tcp.bytes_delivered", label, receiver.bytes_delivered);
}

void TcpEndpoint::PublishStats(const std::string& label, MetricsRegistry* registry) const {
  PublishTcpStats(snd_stats_, rcv_stats_, label, registry);
  registry->SetGauge("tcp.cwnd", label, cwnd_);
  registry->SetGauge("tcp.srtt_us", label, static_cast<uint64_t>(ToUs(srtt_)));
}

}  // namespace juggler
