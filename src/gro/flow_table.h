// Cache-conscious flow table shared by every GRO engine.
//
// All four engines (standard, linked-list, Presto, Juggler) key per-flow
// state by FiveTuple and touch that state once or more per received packet,
// so the lookup is hot-path by construction. The std::unordered_map they
// used to share costs a pointer chase per lookup (bucket -> node), puts the
// key and the value behind that chase, and iterates in an order that is an
// artifact of the hash function — awkward for an engine whose deliveries
// must replay identically across shard counts.
//
// FlowTable<T> replaces it with:
//
//  * Open addressing, linear probing, power-of-two capacity. A probe step
//    reads one 32-byte Slot {hash, key, record index} — two slots per cache
//    line, and the common hit resolves on the first slot with one 64-bit
//    hash compare. The value is NOT in the slot, so probing never drags
//    flow state through the cache.
//  * Slab-backed values. Records live in fixed 64-entry chunks that are
//    never moved or freed until Clear()/destruction, so T* stays stable
//    across inserts, erases and rehashes — Juggler links FlowEntry into
//    intrusive phase lists and memoizes the last-hit entry, both of which
//    require pinned addresses. Erased records go on a freelist and are
//    reused in place (placement new).
//  * Deterministic iteration. Records carry insertion-order links;
//    ForEach() visits flows in creation order, independent of hash values
//    and capacity history. Per-RX-queue packet streams are identical for
//    every shard count, so creation order — and therefore poll-complete
//    flush order — is too.
//  * Clock eviction (the cachetable second-chance idiom). Every lookup hit
//    sets the record's reference bit; ClockCandidate() sweeps the insertion
//    ring from a persistent hand, clearing set bits and stopping at the
//    first cold entry. Capacity-bounded users evict what the clock names;
//    Juggler keeps the paper's own phase-list policy and simply never asks.
//
// Not thread safe; one table per RX queue, like the engines that own them.

#ifndef JUGGLER_SRC_GRO_FLOW_TABLE_H_
#define JUGGLER_SRC_GRO_FLOW_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/packet/packet.h"
#include "src/util/logging.h"

namespace juggler {

template <typename T>
class FlowTable {
 public:
  FlowTable() { Rehash(kMinSlots); }
  ~FlowTable() { Clear(); }
  FlowTable(const FlowTable&) = delete;
  FlowTable& operator=(const FlowTable&) = delete;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Pointer to the flow's state, or nullptr. A hit marks the record
  // recently-used for the clock.
  T* Find(const FiveTuple& key) {
    const uint32_t rec = FindRecord(key);
    if (rec == kNil) {
      return nullptr;
    }
    Record& r = RecordAt(rec);
    r.referenced = true;
    return r.value();
  }

  const T* Find(const FiveTuple& key) const {
    const uint32_t rec = FindRecord(key);
    return rec == kNil ? nullptr : RecordAt(rec).value();
  }

  // The flow's state, default-constructing it on first sight. `second` is
  // true when the entry was created by this call.
  std::pair<T*, bool> FindOrCreate(const FiveTuple& key) {
    const uint64_t hash = key.Hash();
    uint32_t slot = ProbeFor(key, hash);
    if (slots_[slot].rec != kNilRec && slots_[slot].rec != kTombRec) {
      Record& r = RecordAt(slots_[slot].rec);
      r.referenced = true;
      return {r.value(), false};
    }
    if ((size_ + tombstones_ + 1) * 8 >= slots_.size() * 7) {
      // Live entries past half capacity: double. Otherwise the load is
      // tombstone bloat — rebuild at the same size to purge it.
      Rehash(size_ * 2 >= slots_.size() ? slots_.size() * 2 : slots_.size());
      slot = ProbeFor(key, hash);
    }
    const uint32_t rec = AcquireRecord();
    Record& r = RecordAt(rec);
    ::new (static_cast<void*>(r.storage)) T();
    r.key = key;
    r.referenced = true;
    LinkBack(rec);
    if (slots_[slot].rec == kTombRec) {
      --tombstones_;
    }
    slots_[slot] = Slot{hash, key, rec};
    ++size_;
    return {RecordAt(rec).value(), true};
  }

  T& operator[](const FiveTuple& key) { return *FindOrCreate(key).first; }

  // FindOrCreate for value types without a default constructor: on first
  // sight the record is placement-new'd from `args...`. Arguments are only
  // forwarded (and only evaluated into a T) on the miss path, so callers may
  // pass construction-time resources unconditionally.
  template <typename... Args>
  std::pair<T*, bool> FindOrEmplace(const FiveTuple& key, Args&&... args) {
    const uint64_t hash = key.Hash();
    uint32_t slot = ProbeFor(key, hash);
    if (slots_[slot].rec != kNilRec && slots_[slot].rec != kTombRec) {
      Record& r = RecordAt(slots_[slot].rec);
      r.referenced = true;
      return {r.value(), false};
    }
    if ((size_ + tombstones_ + 1) * 8 >= slots_.size() * 7) {
      Rehash(size_ * 2 >= slots_.size() ? slots_.size() * 2 : slots_.size());
      slot = ProbeFor(key, hash);
    }
    const uint32_t rec = AcquireRecord();
    Record& r = RecordAt(rec);
    ::new (static_cast<void*>(r.storage)) T(std::forward<Args>(args)...);
    r.key = key;
    r.referenced = true;
    LinkBack(rec);
    if (slots_[slot].rec == kTombRec) {
      --tombstones_;
    }
    slots_[slot] = Slot{hash, key, rec};
    ++size_;
    return {RecordAt(rec).value(), true};
  }

  // Starts pulling the key's home slot toward the cache without touching it.
  // Batched receive paths call this a few packets ahead of the Find(), so
  // the probe's first (usually only) line is in flight while earlier
  // packets are still being processed. A miss costs one wasted prefetch.
  void Prefetch(const FiveTuple& key) const {
    const size_t index = static_cast<size_t>(key.Hash()) & (slots_.size() - 1);
    __builtin_prefetch(static_cast<const void*>(&slots_[index]));
  }

  // Destroys the flow's state. Returns false if the key was absent.
  bool Erase(const FiveTuple& key) {
    const uint32_t slot = ProbeFor(key, key.Hash());
    const uint32_t rec = slots_[slot].rec;
    if (rec == kNilRec || rec == kTombRec) {
      return false;
    }
    slots_[slot].rec = kTombRec;
    ++tombstones_;
    Record& r = RecordAt(rec);
    Unlink(rec);
    r.value()->~T();
    free_records_.push_back(rec);
    --size_;
    return true;
  }

  // Destroys every entry. Slot and slab storage is retained for reuse.
  void Clear() {
    for (uint32_t rec = head_; rec != kNil;) {
      Record& r = RecordAt(rec);
      const uint32_t next = r.order_next;
      r.value()->~T();
      free_records_.push_back(rec);
      rec = next;
    }
    head_ = tail_ = clock_hand_ = kNil;
    size_ = 0;
    tombstones_ = 0;
    for (Slot& s : slots_) {
      s.rec = kNilRec;
    }
  }

  // Visits every flow in insertion order. `fn(const FiveTuple&, T&)`.
  // Erasing the currently visited entry from inside fn is allowed; erasing
  // any other entry is not.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (uint32_t rec = head_; rec != kNil;) {
      Record& r = RecordAt(rec);
      const uint32_t next = r.order_next;
      fn(static_cast<const FiveTuple&>(r.key), *r.value());
      rec = next;
    }
  }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (uint32_t rec = head_; rec != kNil;) {
      const Record& r = RecordAt(rec);
      const uint32_t next = r.order_next;
      fn(static_cast<const FiveTuple&>(r.key), *r.value());
      rec = next;
    }
  }

  // Second-chance clock sweep: advances the hand around the insertion ring,
  // clearing reference bits, and returns the key of the first entry whose
  // bit was already clear — the eviction candidate. Entries Find() touched
  // since the hand last passed survive one extra revolution. Returns
  // nullptr only when the table is empty. After a full revolution of set
  // bits the hand's starting entry has been cleared, so a candidate always
  // exists by the second pass.
  const FiveTuple* ClockCandidate() {
    if (size_ == 0) {
      return nullptr;
    }
    if (clock_hand_ == kNil) {
      clock_hand_ = head_;
    }
    for (;;) {
      Record& r = RecordAt(clock_hand_);
      if (!r.referenced) {
        return &r.key;
      }
      r.referenced = false;
      clock_hand_ = r.order_next != kNil ? r.order_next : head_;
    }
  }

  // Bytes of memory held by the table itself (slots, slabs, freelist) —
  // the bench/perf_scale "resident bytes per flow" numerator. Heap memory
  // owned by the T values (e.g. OOO-queue vectors) is not included.
  size_t resident_bytes() const {
    return slots_.capacity() * sizeof(Slot) + chunks_.size() * sizeof(Chunk) +
           chunks_.capacity() * sizeof(std::unique_ptr<Chunk>) +
           free_records_.capacity() * sizeof(uint32_t);
  }

 private:
  static constexpr size_t kMinSlots = 16;
  static constexpr uint32_t kNil = UINT32_MAX;
  static constexpr uint32_t kNilRec = UINT32_MAX;       // empty slot
  static constexpr uint32_t kTombRec = UINT32_MAX - 1;  // erased slot
  static constexpr size_t kChunkRecords = 64;

  // One probe unit: 32 bytes, two per cache line. Key and hash are here so
  // probing never touches the record slab.
  struct Slot {
    uint64_t hash = 0;
    FiveTuple key;
    uint32_t rec = kNilRec;
  };

  struct Record {
    alignas(T) unsigned char storage[sizeof(T)];
    FiveTuple key;
    uint32_t order_prev = kNil;
    uint32_t order_next = kNil;
    bool referenced = false;

    T* value() { return std::launder(reinterpret_cast<T*>(storage)); }
    const T* value() const { return std::launder(reinterpret_cast<const T*>(storage)); }
  };

  struct Chunk {
    Record records[kChunkRecords];
  };

  Record& RecordAt(uint32_t rec) {
    return chunks_[rec / kChunkRecords]->records[rec % kChunkRecords];
  }
  const Record& RecordAt(uint32_t rec) const {
    return chunks_[rec / kChunkRecords]->records[rec % kChunkRecords];
  }

  // Index of the slot holding `key`, or of the slot where it would be
  // inserted (the first tombstone seen, else the empty slot that ended the
  // probe).
  uint32_t ProbeFor(const FiveTuple& key, uint64_t hash) const {
    const size_t mask = slots_.size() - 1;
    size_t index = static_cast<size_t>(hash) & mask;
    size_t insert_at = SIZE_MAX;
    for (;;) {
      const Slot& s = slots_[index];
      if (s.rec == kNilRec) {
        return static_cast<uint32_t>(insert_at != SIZE_MAX ? insert_at : index);
      }
      if (s.rec == kTombRec) {
        if (insert_at == SIZE_MAX) {
          insert_at = index;
        }
      } else if (s.hash == hash && s.key == key) {
        return static_cast<uint32_t>(index);
      }
      index = (index + 1) & mask;
    }
  }

  uint32_t FindRecord(const FiveTuple& key) const {
    const uint32_t slot = ProbeFor(key, key.Hash());
    const uint32_t rec = slots_[slot].rec;
    return (rec == kNilRec || rec == kTombRec) ? kNil : rec;
  }

  uint32_t AcquireRecord() {
    if (!free_records_.empty()) {
      const uint32_t rec = free_records_.back();
      free_records_.pop_back();
      return rec;
    }
    const uint32_t rec = static_cast<uint32_t>(chunks_.size() * kChunkRecords);
    JUG_CHECK(rec < kTombRec);
    chunks_.push_back(std::make_unique<Chunk>());
    for (uint32_t i = static_cast<uint32_t>(kChunkRecords) - 1; i > 0; --i) {
      free_records_.push_back(rec + i);
    }
    return rec;
  }

  void LinkBack(uint32_t rec) {
    Record& r = RecordAt(rec);
    r.order_prev = tail_;
    r.order_next = kNil;
    if (tail_ != kNil) {
      RecordAt(tail_).order_next = rec;
    } else {
      head_ = rec;
    }
    tail_ = rec;
  }

  void Unlink(uint32_t rec) {
    Record& r = RecordAt(rec);
    if (clock_hand_ == rec) {
      clock_hand_ = r.order_next;  // may become kNil: next sweep restarts at head
    }
    if (r.order_prev != kNil) {
      RecordAt(r.order_prev).order_next = r.order_next;
    } else {
      head_ = r.order_next;
    }
    if (r.order_next != kNil) {
      RecordAt(r.order_next).order_prev = r.order_prev;
    } else {
      tail_ = r.order_prev;
    }
    r.order_prev = r.order_next = kNil;
    r.referenced = false;
  }

  // Rebuilds the slot array at `new_slots` capacity (a power of two),
  // clearing tombstones. Records are untouched — values never move.
  void Rehash(size_t new_slots) {
    std::vector<Slot> fresh(new_slots);
    const size_t mask = new_slots - 1;
    for (const Slot& s : slots_) {
      if (s.rec == kNilRec || s.rec == kTombRec) {
        continue;
      }
      size_t index = static_cast<size_t>(s.hash) & mask;
      while (fresh[index].rec != kNilRec) {
        index = (index + 1) & mask;
      }
      fresh[index] = s;
    }
    slots_ = std::move(fresh);
    tombstones_ = 0;
  }

  std::vector<Slot> slots_;
  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::vector<uint32_t> free_records_;
  uint32_t head_ = kNil;
  uint32_t tail_ = kNil;
  uint32_t clock_hand_ = kNil;
  size_t size_ = 0;
  size_t tombstones_ = 0;
};

}  // namespace juggler

#endif  // JUGGLER_SRC_GRO_FLOW_TABLE_H_
