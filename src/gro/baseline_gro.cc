#include "src/gro/baseline_gro.h"

namespace juggler {

TimeNs NoGro::Receive(PacketPtr packet) {
  ++stats_.packets_in;
  if (packet->payload_len > 0) {
    ++stats_.data_packets_in;
  } else {
    ++stats_.acks_in;
  }
  Deliver(ToSegment(*packet), FlushReason::kPollEnd);
  return costs_->gro_per_packet + costs_->gro_flush_per_segment;
}

TimeNs StandardGro::Receive(PacketPtr packet) {
  ++stats_.packets_in;
  TimeNs cost = costs_->gro_per_packet;
  if (DeliverDirectIfUnmergeable(packet)) {
    return cost + costs_->gro_flush_per_segment;
  }
  ++stats_.data_packets_in;

  SegmentBuilder& builder = held_[packet->flow];
  if (builder.empty()) {
    builder.Start(*packet);
    if (builder.needs_flush()) {
      Deliver(builder.Take(), FlushReason::kFlags);
      cost += costs_->gro_flush_per_segment;
    }
    return cost;
  }

  switch (builder.TryMerge(*packet, kMaxTsoPayload)) {
    case SegmentBuilder::MergeResult::kMerged:
      break;
    case SegmentBuilder::MergeResult::kMergedFinal:
      Deliver(builder.Take(), (packet->flags & (kFlagPsh | kFlagUrg)) != 0
                                  ? FlushReason::kFlags
                                  : FlushReason::kSizeLimit);
      cost += costs_->gro_flush_per_segment;
      break;
    case SegmentBuilder::MergeResult::kRefusedOoo:
      // Standard GRO assumes in-order arrival: any gap flushes the held
      // segment and restarts from the newcomer. This is exactly the batching
      // collapse §3 describes.
      ++stats_.ooo_packets;
      Deliver(builder.Take(), FlushReason::kOutOfOrder);
      cost += costs_->gro_flush_per_segment;
      builder.Start(*packet);
      break;
    case SegmentBuilder::MergeResult::kRefusedMeta:
      Deliver(builder.Take(), FlushReason::kMetaMismatch);
      cost += costs_->gro_flush_per_segment;
      builder.Start(*packet);
      break;
    case SegmentBuilder::MergeResult::kRefusedSize:
      Deliver(builder.Take(), FlushReason::kSizeLimit);
      cost += costs_->gro_flush_per_segment;
      builder.Start(*packet);
      break;
  }
  return cost;
}

TimeNs StandardGro::PollComplete() {
  TimeNs cost = 0;
  // Flows flush in creation order — deterministic for any shard count.
  held_.ForEach([&](const FiveTuple&, SegmentBuilder& builder) {
    if (!builder.empty()) {
      Deliver(builder.Take(), FlushReason::kPollEnd);
      cost += costs_->gro_flush_per_segment;
    }
  });
  held_.Clear();
  return cost;
}

TimeNs LinkedListGro::Receive(PacketPtr packet) {
  ++stats_.packets_in;
  // Chaining an sk_buff costs extra regardless of order — the cache-miss
  // penalty of Figure 3 (right) that makes this design 50% more expensive
  // even on in-order traffic (§3.1).
  TimeNs cost = costs_->gro_per_packet + costs_->linkedlist_chain_per_packet;
  if (DeliverDirectIfUnmergeable(packet)) {
    return cost + costs_->gro_flush_per_segment;
  }
  ++stats_.data_packets_in;

  Chain& chain = chains_[packet->flow];
  bool appended = false;
  if (!chain.runs.empty()) {
    SegmentBuilder& tail = chain.runs.back();
    switch (tail.TryMerge(*packet, kMaxTsoPayload)) {
      case SegmentBuilder::MergeResult::kMerged:
      case SegmentBuilder::MergeResult::kMergedFinal:
        appended = true;
        break;
      case SegmentBuilder::MergeResult::kRefusedOoo:
        ++stats_.ooo_packets;
        break;
      default:
        break;
    }
  }
  if (!appended) {
    // Start a new run in the chain; order stays as-arrived.
    chain.runs.emplace_back();
    chain.runs.back().Start(*packet);
  }
  chain.total_payload += packet->payload_len;
  if (chain.total_payload >= kMaxTsoPayload) {
    cost += FlushChain(&chain, FlushReason::kSizeLimit);
  }
  return cost;
}

TimeNs LinkedListGro::FlushChain(Chain* chain, FlushReason reason) {
  TimeNs cost = 0;
  for (auto& run : chain->runs) {
    if (!run.empty()) {
      Deliver(run.Take(), reason);
      cost += costs_->gro_flush_per_segment;
    }
  }
  chain->runs.clear();
  chain->total_payload = 0;
  return cost;
}

TimeNs LinkedListGro::PollComplete() {
  TimeNs cost = 0;
  chains_.ForEach(
      [&](const FiveTuple&, Chain& chain) { cost += FlushChain(&chain, FlushReason::kPollEnd); });
  chains_.Clear();
  return cost;
}

}  // namespace juggler
