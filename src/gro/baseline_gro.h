// Baseline GRO engines the paper compares against or discusses:
//
//   NoGro        — GRO disabled; every wire packet goes up individually.
//   StandardGro  — Linux GRO: merges in-sequence packets into a frags[]
//                  segment, flushes on any out-of-order arrival, flushes
//                  everything at poll completion (§3, Figure 2).
//   LinkedListGro— the §3.1 alternative: batch packets regardless of order by
//                  chaining sk_buffs; fixes batching but not ordering and
//                  costs ~50% more CPU per packet on in-order traffic.

#ifndef JUGGLER_SRC_GRO_BASELINE_GRO_H_
#define JUGGLER_SRC_GRO_BASELINE_GRO_H_

#include <vector>

#include "src/cpu/cost_model.h"
#include "src/gro/flow_table.h"
#include "src/gro/gro_engine.h"
#include "src/gro/segment_builder.h"

namespace juggler {

class NoGro : public GroEngine {
 public:
  explicit NoGro(const CpuCostModel* costs) : costs_(costs) {}

  TimeNs Receive(PacketPtr packet) override;
  TimeNs PollComplete() override { return 0; }
  std::string name() const override { return "no_gro"; }

 private:
  const CpuCostModel* costs_;
};

class StandardGro : public GroEngine {
 public:
  explicit StandardGro(const CpuCostModel* costs) : costs_(costs) {}

  TimeNs Receive(PacketPtr packet) override;
  TimeNs PollComplete() override;
  std::string name() const override { return "standard_gro"; }

 private:
  const CpuCostModel* costs_;
  FlowTable<SegmentBuilder> held_;
};

class LinkedListGro : public GroEngine {
 public:
  explicit LinkedListGro(const CpuCostModel* costs) : costs_(costs) {}

  TimeNs Receive(PacketPtr packet) override;
  TimeNs PollComplete() override;
  std::string name() const override { return "linkedlist_gro"; }

 private:
  struct Chain {
    // Chained runs in arrival order; non-contiguous runs coexist (Figure 3,
    // right). Delivered as-is at flush: ordering is TCP's problem.
    std::vector<SegmentBuilder> runs;
    uint32_t total_payload = 0;
  };

  TimeNs FlushChain(Chain* chain, FlushReason reason);

  const CpuCostModel* costs_;
  FlowTable<Chain> chains_;
};

}  // namespace juggler

#endif  // JUGGLER_SRC_GRO_BASELINE_GRO_H_
