// Presto-style GRO (He et al., SIGCOMM'15), the §6 comparison point.
//
// Presto also adds an out-of-order buffer to GRO, but differs from Juggler in
// the ways the paper calls out:
//   * it keeps state for every connection it has ever seen (no eviction, so
//     the flow table grows without bound — the memory-exhaustion concern of
//     §3.3; watch `flow_table_size()`),
//   * it is built for TSO-granularity reordering: out-of-order runs are only
//     reconciled when the gap fills or a coarse timeout passes at poll
//     completion; there are no fine-grained inseq/ofo timers, no build-up
//     phase and no loss-recovery handling.

#ifndef JUGGLER_SRC_GRO_PRESTO_GRO_H_
#define JUGGLER_SRC_GRO_PRESTO_GRO_H_

#include <map>

#include "src/cpu/cost_model.h"
#include "src/gro/flow_table.h"
#include "src/gro/gro_engine.h"
#include "src/gro/segment_builder.h"

namespace juggler {

struct PrestoGroConfig {
  // OOO runs older than this are flushed at poll completion.
  TimeNs ooo_flush_timeout = Ms(1);
};

class PrestoGro : public GroEngine {
 public:
  PrestoGro(const CpuCostModel* costs, const PrestoGroConfig& config)
      : costs_(costs), config_(config) {}

  TimeNs Receive(PacketPtr packet) override;
  TimeNs PollComplete() override;
  // Overload pressure only: Presto-as-published never evicts (the §3.3
  // memory-exhaustion concern this reproduction deliberately preserves), so
  // a brown-out is the one place the table gets a cap. Victims are chosen by
  // the flow table's second-chance clock; their held runs are flushed (in
  // serial order), never discarded. The cap persists — PollComplete keeps
  // enforcing it — until a later call changes it; 0 restores the engine's
  // nominal budget, which for Presto means "unbounded" again.
  TimeNs ApplyFlowCapPressure(size_t max_flows) override;
  std::string name() const override { return "presto_gro"; }

  size_t flow_table_size() const { return flows_.size(); }

 private:
  struct FlowState {
    bool has_expected = false;
    Seq expected = 0;      // next in-order byte
    SegmentBuilder inseq;  // accumulating in-order segment
    // OOO runs keyed by the run start's serial offset from ooo_base (the
    // flow's `expected` when the buffer last went non-empty). Offsets
    // compare correctly across the 2^32 sequence wrap; raw Seq keys would
    // sort a post-wrap run (small uint32_t) before a pre-wrap one, draining
    // and flushing runs out of serial order.
    std::map<uint32_t, SegmentBuilder> ooo;
    Seq ooo_base = 0;  // valid while ooo is non-empty
    TimeNs oldest_ooo_arrival = 0;
  };

  TimeNs DrainContiguous(FlowState* flow);
  TimeNs FlushInseq(FlowState* flow, FlushReason reason);
  // Flush everything a clock-chosen victim holds and erase it; repeats until
  // the table is at or under flow_cap_. No-op while flow_cap_ == 0.
  TimeNs EnforceFlowCap();

  const CpuCostModel* costs_;
  PrestoGroConfig config_;
  FlowTable<FlowState> flows_;
  size_t flow_cap_ = 0;  // 0 = unbounded (Presto-as-published)
};

}  // namespace juggler

#endif  // JUGGLER_SRC_GRO_PRESTO_GRO_H_
