#include "src/gro/gro_engine.h"

namespace juggler {

const char* FlushReasonName(FlushReason reason) {
  switch (reason) {
    case FlushReason::kSeqBeforeNext:
      return "seq_before_next";
    case FlushReason::kSizeLimit:
      return "size_limit";
    case FlushReason::kFlags:
      return "flags";
    case FlushReason::kMetaMismatch:
      return "meta_mismatch";
    case FlushReason::kInseqTimeout:
      return "inseq_timeout";
    case FlushReason::kOfoTimeout:
      return "ofo_timeout";
    case FlushReason::kPollEnd:
      return "poll_end";
    case FlushReason::kEviction:
      return "eviction";
    case FlushReason::kOutOfOrder:
      return "out_of_order";
    case FlushReason::kPureAck:
      return "pure_ack";
    case FlushReason::kReasonCount:
      break;
  }
  return "unknown";
}

void PublishGroStats(const GroStats& stats, const std::string& label,
                     MetricsRegistry* registry) {
  for (int i = 0; i < static_cast<int>(FlushReason::kReasonCount); ++i) {
    if (stats.flush_by_reason[i] == 0) continue;
    registry->AddCounter("gro.flush",
                         label + "/" + FlushReasonName(static_cast<FlushReason>(i)),
                         stats.flush_by_reason[i]);
  }
  registry->AddCounter("gro.packets_in", label, stats.packets_in);
  registry->AddCounter("gro.acks_in", label, stats.acks_in);
  registry->AddCounter("gro.data_packets_in", label, stats.data_packets_in);
  registry->AddCounter("gro.ooo_packets", label, stats.ooo_packets);
  registry->AddCounter("gro.segments_out", label, stats.segments_out);
  registry->AddCounter("gro.data_segments_out", label, stats.data_segments_out);
  registry->AddCounter("gro.mtus_out", label, stats.mtus_out);
  registry->AddCounter("gro.evictions", label, stats.evictions);
}

}  // namespace juggler
