#include "src/gro/gro_engine.h"

namespace juggler {

const char* FlushReasonName(FlushReason reason) {
  switch (reason) {
    case FlushReason::kSeqBeforeNext:
      return "seq_before_next";
    case FlushReason::kSizeLimit:
      return "size_limit";
    case FlushReason::kFlags:
      return "flags";
    case FlushReason::kMetaMismatch:
      return "meta_mismatch";
    case FlushReason::kInseqTimeout:
      return "inseq_timeout";
    case FlushReason::kOfoTimeout:
      return "ofo_timeout";
    case FlushReason::kPollEnd:
      return "poll_end";
    case FlushReason::kEviction:
      return "eviction";
    case FlushReason::kOutOfOrder:
      return "out_of_order";
    case FlushReason::kPureAck:
      return "pure_ack";
    case FlushReason::kReasonCount:
      break;
  }
  return "unknown";
}

Segment GroEngine::ToSegment(const Packet& p) {
  Segment s;
  s.flow = p.flow;
  s.seq = p.seq;
  s.payload_len = p.payload_len;
  s.mtu_count = p.payload_len > 0 ? 1 : 0;
  s.flags = p.flags;
  s.ack_seq = p.ack_seq;
  s.ack_rwnd = p.ack_rwnd;
  s.sack = p.sack;
  s.ece = p.ece;
  s.ce_mark = p.ce_mark;
  s.first_rx_time = p.nic_rx_time;
  s.last_rx_time = p.nic_rx_time;
  s.sent_time = p.sent_time;
  return s;
}

bool GroEngine::DeliverDirectIfUnmergeable(PacketPtr& packet) {
  if (packet->is_pure_ack()) {
    ++stats_.acks_in;
    Deliver(ToSegment(*packet), FlushReason::kPureAck);
    return true;
  }
  if ((packet->flags & (kFlagSyn | kFlagFin)) != 0) {
    Deliver(ToSegment(*packet), FlushReason::kFlags);
    return true;
  }
  return false;
}

}  // namespace juggler
