#include "src/gro/gro_engine.h"

namespace juggler {

const char* FlushReasonName(FlushReason reason) {
  switch (reason) {
    case FlushReason::kSeqBeforeNext:
      return "seq_before_next";
    case FlushReason::kSizeLimit:
      return "size_limit";
    case FlushReason::kFlags:
      return "flags";
    case FlushReason::kMetaMismatch:
      return "meta_mismatch";
    case FlushReason::kInseqTimeout:
      return "inseq_timeout";
    case FlushReason::kOfoTimeout:
      return "ofo_timeout";
    case FlushReason::kPollEnd:
      return "poll_end";
    case FlushReason::kEviction:
      return "eviction";
    case FlushReason::kOutOfOrder:
      return "out_of_order";
    case FlushReason::kPureAck:
      return "pure_ack";
    case FlushReason::kReasonCount:
      break;
  }
  return "unknown";
}

}  // namespace juggler
