// The Generic Receive Offload engine interface.
//
// A GroEngine sits where Figure 2 of the paper places GRO: the NAPI poll loop
// feeds it raw packets, and it delivers merged Segments up the stack. The
// interface mirrors the three entry points the kernel gives the layer:
//
//   Receive()      — one packet from the ring, inside a polling round
//   PollComplete() — the polling round finished (ring drained / budget hit)
//   OnTimer()      — the engine's high-resolution timer fired
//
// Each call returns the CPU cost (ns of RX-core time) the operation consumed;
// the NIC model charges that to the RX core so "core usage %" in the benches
// reflects what the engine actually did. Deliveries happen synchronously via
// the context's deliver callback; the NIC batches them behind the CPU charge.
//
// Engines are per-RX-queue objects, exactly as in the paper ("different RX
// queues operate independently and have their private data structures").

#ifndef JUGGLER_SRC_GRO_GRO_ENGINE_H_
#define JUGGLER_SRC_GRO_GRO_ENGINE_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/packet/packet.h"
#include "src/util/time.h"

namespace juggler {

// Why a segment was flushed up the stack — the rows of Table 2.
enum class FlushReason : int {
  kSeqBeforeNext = 0,   // likely retransmission
  kSizeLimit,           // merged segment reached 64KB
  kFlags,               // PSH/URG/SYN/FIN force delivery
  kMetaMismatch,        // TCP options / CE marks differ
  kInseqTimeout,        // in-sequence data held too long
  kOfoTimeout,          // missing packet presumed lost
  kPollEnd,             // standard GRO flush at poll completion
  kEviction,            // flow evicted from the gro_table
  kOutOfOrder,          // standard GRO: next packet not in sequence
  kPureAck,             // ACKs pass straight through
  kReasonCount,
};

const char* FlushReasonName(FlushReason reason);

struct GroStats {
  uint64_t packets_in = 0;
  uint64_t acks_in = 0;
  uint64_t data_packets_in = 0;
  uint64_t ooo_packets = 0;  // packets whose seq != the flow's expected next
  uint64_t segments_out = 0;
  uint64_t data_segments_out = 0;
  uint64_t mtus_out = 0;
  uint64_t evictions = 0;
  uint64_t flush_by_reason[static_cast<int>(FlushReason::kReasonCount)] = {};

  // Average MTUs per delivered data segment — the "batching extent" metric
  // of Figure 12.
  double AvgBatchingExtent() const {
    return data_segments_out == 0
               ? 0.0
               : static_cast<double>(mtus_out) / static_cast<double>(data_segments_out);
  }
};

class GroEngine {
 public:
  struct Context {
    // Current time (the NIC wires this to the event loop).
    std::function<TimeNs()> now;
    // Hand a merged segment up the stack.
    std::function<void(Segment)> deliver;
    // Arm (or re-arm) the engine's single high-resolution timer at an
    // absolute time; kNoTimer disarms it. The host calls OnTimer() when it
    // fires.
    std::function<void(TimeNs)> arm_timer;
  };

  static constexpr TimeNs kNoTimer = -1;

  virtual ~GroEngine() = default;

  // Virtual so decorating engines (e.g. the fault layer's JugglerAuditor)
  // can interpose their own context around an inner engine's.
  virtual void set_context(Context ctx) { ctx_ = std::move(ctx); }

  // Process one packet. Ownership transfers to the engine.
  virtual TimeNs Receive(PacketPtr packet) = 0;

  // A NAPI polling round completed.
  virtual TimeNs PollComplete() = 0;

  // The armed timer fired. Default: nothing (engines without timeouts).
  virtual TimeNs OnTimer() { return 0; }

  virtual std::string name() const = 0;

  const GroStats& stats() const { return stats_; }
  GroStats* mutable_stats() { return &stats_; }

 protected:
  TimeNs Now() const { return ctx_.now(); }

  void Deliver(Segment segment, FlushReason reason) {
    ++stats_.segments_out;
    ++stats_.flush_by_reason[static_cast<int>(reason)];
    if (segment.payload_len > 0) {
      ++stats_.data_segments_out;
      stats_.mtus_out += segment.mtu_count;
    }
    ctx_.deliver(std::move(segment));
  }

  void ArmTimer(TimeNs when) {
    if (ctx_.arm_timer) {
      ctx_.arm_timer(when);
    }
  }

  // Common fast path for packets GRO never merges (pure ACKs, SYN/FIN).
  // Returns true if the packet was handled.
  bool DeliverDirectIfUnmergeable(PacketPtr& packet);

  // Converts a single packet into a one-MTU segment.
  static Segment ToSegment(const Packet& p);

  Context ctx_;
  GroStats stats_;
};

}  // namespace juggler

#endif  // JUGGLER_SRC_GRO_GRO_ENGINE_H_
