// The Generic Receive Offload engine interface.
//
// A GroEngine sits where Figure 2 of the paper places GRO: the NAPI poll loop
// feeds it raw packets, and it delivers merged Segments up the stack. The
// interface mirrors the three entry points the kernel gives the layer:
//
//   Receive()      — one packet from the ring, inside a polling round
//   PollComplete() — the polling round finished (ring drained / budget hit)
//   OnTimer()      — the engine's high-resolution timer fired
//
// Each call returns the CPU cost (ns of RX-core time) the operation consumed;
// the NIC model charges that to the RX core so "core usage %" in the benches
// reflects what the engine actually did. Deliveries happen synchronously via
// the context's deliver callback; the NIC batches them behind the CPU charge.
//
// Engines are per-RX-queue objects, exactly as in the paper ("different RX
// queues operate independently and have their private data structures").

#ifndef JUGGLER_SRC_GRO_GRO_ENGINE_H_
#define JUGGLER_SRC_GRO_GRO_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/packet/packet.h"
#include "src/util/time.h"

namespace juggler {

// Why a segment was flushed up the stack — the rows of Table 2.
enum class FlushReason : int {
  kSeqBeforeNext = 0,   // likely retransmission
  kSizeLimit,           // merged segment reached 64KB
  kFlags,               // PSH/URG/SYN/FIN force delivery
  kMetaMismatch,        // TCP options / CE marks differ
  kInseqTimeout,        // in-sequence data held too long
  kOfoTimeout,          // missing packet presumed lost
  kPollEnd,             // standard GRO flush at poll completion
  kEviction,            // flow evicted from the gro_table
  kOutOfOrder,          // standard GRO: next packet not in sequence
  kPureAck,             // ACKs pass straight through
  kReasonCount,
};

const char* FlushReasonName(FlushReason reason);

struct GroStats {
  uint64_t packets_in = 0;
  uint64_t acks_in = 0;
  uint64_t data_packets_in = 0;
  uint64_t ooo_packets = 0;  // packets whose seq != the flow's expected next
  uint64_t segments_out = 0;
  uint64_t data_segments_out = 0;
  uint64_t mtus_out = 0;
  uint64_t evictions = 0;
  uint64_t flush_by_reason[static_cast<int>(FlushReason::kReasonCount)] = {};

  // Average MTUs per delivered data segment — the "batching extent" metric
  // of Figure 12.
  double AvgBatchingExtent() const {
    return data_segments_out == 0
               ? 0.0
               : static_cast<double>(mtus_out) / static_cast<double>(data_segments_out);
  }
};

// What a GRO engine asks of whatever hosts it (an RX queue, a test harness,
// a bench driver). A plain interface instead of per-callback std::functions:
// the engine calls through one vtable pointer and reads the clock with one
// load, which matters at one-to-several calls per received packet.
class GroHost {
 public:
  virtual ~GroHost() = default;

  // Hand a merged segment up the stack.
  virtual void GroDeliver(Segment segment) = 0;

  // Arm (or re-arm) the engine's single high-resolution timer at an
  // absolute time; GroEngine::kNoTimer disarms it. The host calls OnTimer()
  // when it fires.
  virtual void GroArmTimer(TimeNs when) = 0;
};

class GroEngine {
 public:
  struct Context {
    // The simulation clock (the NIC wires this to EventLoop::now_ptr();
    // harnesses point it at a local variable they advance by hand).
    const TimeNs* now = nullptr;
    // Receives deliveries and timer arm requests. Must outlive the engine.
    GroHost* host = nullptr;
    // Optional flight recorder for structured trace events; null means
    // tracing is off and the hooks reduce to one predictable branch.
    FlightRecorder* recorder = nullptr;
  };

  static constexpr TimeNs kNoTimer = -1;

  virtual ~GroEngine() = default;

  // Virtual so decorating engines (e.g. the fault layer's JugglerAuditor)
  // can interpose their own context around an inner engine's.
  virtual void set_context(Context ctx) { ctx_ = ctx; }

  // Process one packet. Ownership transfers to the engine.
  virtual TimeNs Receive(PacketPtr packet) = 0;

  // Process `count` packets harvested by one polling round, in array order.
  // MUST stay observably identical to calling Receive() on each packet in
  // turn — per-packet delivery order and trace events are digest-visible —
  // so overrides may only amortize dispatch overhead and prefetch flow
  // state ahead of use, never reorder or defer per-packet effects. Returns
  // the summed CPU cost.
  virtual TimeNs ReceiveBatch(PacketPtr* packets, size_t count) {
    TimeNs cost = 0;
    for (size_t i = 0; i < count; ++i) {
      cost += Receive(std::move(packets[i]));
    }
    return cost;
  }

  // A NAPI polling round completed.
  virtual TimeNs PollComplete() = 0;

  // The armed timer fired. Default: nothing (engines without timeouts).
  virtual TimeNs OnTimer() { return 0; }

  // Overload pressure: shrink the engine's flow-state budget to `max_flows`
  // and evict down to it now, flushing (never discarding) any held bytes.
  // Engines that keep persistent flow state override this with their own
  // eviction policy (Juggler uses the §4.3 order); engines whose state is
  // naturally bounded per poll round (standard/linked-list GRO clear their
  // tables at poll completion) keep the no-op. Returns the CPU cost of the
  // evictions, charged to the RX core like any other GRO work.
  virtual TimeNs ApplyFlowCapPressure(size_t max_flows) {
    (void)max_flows;
    return 0;
  }

  virtual std::string name() const = 0;

  const GroStats& stats() const { return stats_; }
  GroStats* mutable_stats() { return &stats_; }

 protected:
  TimeNs Now() const { return *ctx_.now; }

  void Deliver(Segment segment, FlushReason reason) {
    ++stats_.segments_out;
    ++stats_.flush_by_reason[static_cast<int>(reason)];
    if (segment.payload_len > 0) {
      ++stats_.data_segments_out;
      stats_.mtus_out += segment.mtu_count;
    }
    if (ctx_.recorder != nullptr) {
      ctx_.recorder->Record(Now(), TraceKind::kGroFlush, static_cast<uint64_t>(reason),
                            segment.payload_len, segment.flow.Hash());
    }
    ctx_.host->GroDeliver(std::move(segment));
  }

  void ArmTimer(TimeNs when) {
    if (ctx_.host != nullptr) {
      ctx_.host->GroArmTimer(when);
    }
  }

  // Common fast path for packets GRO never merges (pure ACKs, SYN/FIN).
  // Returns true if the packet was handled. Inline: engines call this once
  // per received packet before anything else.
  bool DeliverDirectIfUnmergeable(PacketPtr& packet) {
    if (packet->is_pure_ack()) {
      ++stats_.acks_in;
      Deliver(ToSegment(*packet), FlushReason::kPureAck);
      return true;
    }
    if ((packet->flags & (kFlagSyn | kFlagFin)) != 0) {
      Deliver(ToSegment(*packet), FlushReason::kFlags);
      return true;
    }
    return false;
  }

  // Converts a single packet into a one-MTU segment.
  static Segment ToSegment(const Packet& p) {
    Segment s;
    s.flow = p.flow;
    s.seq = p.seq;
    s.payload_len = p.payload_len;
    s.mtu_count = p.payload_len > 0 ? 1 : 0;
    s.flags = p.flags;
    s.ack_seq = p.ack_seq;
    s.ack_rwnd = p.ack_rwnd;
    s.sack = p.sack;
    s.ece = p.ece;
    s.ce_mark = p.ce_mark;
    s.first_rx_time = p.nic_rx_time;
    s.last_rx_time = p.nic_rx_time;
    s.sent_time = p.sent_time;
    return s;
  }

  Context ctx_;
  GroStats stats_;
};

// Snapshot a GroStats into `registry` under `label` (the engine instance,
// e.g. "juggler" or "receiver"): gro.flush counters labelled by Table-2
// reason plus the packet/segment totals.
void PublishGroStats(const GroStats& stats, const std::string& label,
                     MetricsRegistry* registry);

}  // namespace juggler

#endif  // JUGGLER_SRC_GRO_GRO_ENGINE_H_
