#include "src/gro/presto_gro.h"

#include "src/util/seq.h"

namespace juggler {

TimeNs PrestoGro::FlushInseq(FlowState* flow, FlushReason reason) {
  if (flow->inseq.empty()) {
    return 0;
  }
  Deliver(flow->inseq.Take(), reason);
  return costs_->gro_flush_per_segment;
}

TimeNs PrestoGro::DrainContiguous(FlowState* flow) {
  TimeNs cost = 0;
  while (!flow->ooo.empty()) {
    auto it = flow->ooo.begin();
    if (it->second.start_seq() != flow->expected) {
      break;
    }
    SegmentBuilder run = std::move(it->second);
    flow->ooo.erase(it);
    flow->expected = run.end_seq();
    if (flow->inseq.empty()) {
      flow->inseq = std::move(run);
    } else if (run.start_seq() == flow->inseq.end_seq() &&
               run.options_token() == flow->inseq.options_token()) {
      flow->inseq.Append(std::move(run));
    } else {
      cost += FlushInseq(flow, FlushReason::kMetaMismatch);
      flow->inseq = std::move(run);
    }
    if (flow->inseq.payload_len() >= kMaxTsoPayload || flow->inseq.needs_flush()) {
      cost += FlushInseq(flow, FlushReason::kSizeLimit);
    }
  }
  return cost;
}

TimeNs PrestoGro::Receive(PacketPtr packet) {
  ++stats_.packets_in;
  TimeNs cost = costs_->gro_per_packet;
  if (DeliverDirectIfUnmergeable(packet)) {
    return cost + costs_->gro_flush_per_segment;
  }
  ++stats_.data_packets_in;

  FlowState& flow = flows_[packet->flow];
  if (!flow.has_expected) {
    flow.has_expected = true;
    flow.expected = packet->seq;
  }

  if (SeqBefore(packet->seq, flow.expected)) {
    // Retransmission (or pre-history): straight up the stack.
    Deliver(ToSegment(*packet), FlushReason::kSeqBeforeNext);
    return cost + costs_->gro_flush_per_segment;
  }

  if (packet->seq == flow.expected) {
    if (flow.inseq.empty()) {
      flow.inseq.Start(*packet);
      flow.expected = packet->end_seq();
    } else {
      switch (flow.inseq.TryMerge(*packet, kMaxTsoPayload)) {
        case SegmentBuilder::MergeResult::kMerged:
        case SegmentBuilder::MergeResult::kMergedFinal:
          flow.expected = packet->end_seq();
          break;
        default:
          cost += FlushInseq(&flow, FlushReason::kMetaMismatch);
          flow.inseq.Start(*packet);
          flow.expected = packet->end_seq();
          break;
      }
    }
    cost += DrainContiguous(&flow);
    if (!flow.inseq.empty() &&
        (flow.inseq.payload_len() >= kMaxTsoPayload || flow.inseq.needs_flush())) {
      cost += FlushInseq(&flow, FlushReason::kSizeLimit);
    }
    return cost;
  }

  // Beyond the expected byte: buffer the run (flowcell arriving early).
  ++stats_.ooo_packets;
  cost += costs_->juggler_ooo_insert;
  if (flow.ooo.empty()) {
    flow.oldest_ooo_arrival = Now();
    flow.ooo_base = flow.expected;
  }
  // Serial offset from the buffer's base: every buffered run starts at or
  // after ooo_base and within the reordering window (<< 2^31), so the
  // offset is wrap-safe where the raw sequence number is not.
  const uint32_t offset = packet->seq - flow.ooo_base;
  // Try to extend the run that ends exactly at this packet's seq.
  auto next = flow.ooo.lower_bound(offset);
  if (next != flow.ooo.begin()) {
    auto prev = std::prev(next);
    if (prev->second.end_seq() == packet->seq &&
        prev->second.TryMerge(*packet, kMaxTsoPayload) !=
            SegmentBuilder::MergeResult::kRefusedOoo) {
      return cost;
    }
  }
  SegmentBuilder run;
  run.Start(*packet);
  flow.ooo.emplace(offset, std::move(run));
  return cost;
}

TimeNs PrestoGro::EnforceFlowCap() {
  TimeNs cost = 0;
  while (flow_cap_ != 0 && flows_.size() > flow_cap_) {
    // Copy the key out: Erase destroys the record that owns it.
    const FiveTuple key = *flows_.ClockCandidate();
    FlowState* flow = flows_.Find(key);
    cost += FlushInseq(flow, FlushReason::kEviction);
    for (auto& [offset, run] : flow->ooo) {
      flow->expected = SeqMax(flow->expected, run.end_seq());
      Deliver(run.Take(), FlushReason::kEviction);
      cost += costs_->gro_flush_per_segment;
    }
    ++stats_.evictions;
    flows_.Erase(key);
  }
  return cost;
}

TimeNs PrestoGro::ApplyFlowCapPressure(size_t max_flows) {
  flow_cap_ = max_flows;
  return EnforceFlowCap();
}

TimeNs PrestoGro::PollComplete() {
  TimeNs cost = 0;
  const TimeNs now = Now();
  flows_.ForEach([&](const FiveTuple&, FlowState& flow) {
    cost += FlushInseq(&flow, FlushReason::kPollEnd);
    if (!flow.ooo.empty() && now - flow.oldest_ooo_arrival >= config_.ooo_flush_timeout) {
      // Coarse timeout: give up on the gap, deliver runs as-is (offset
      // order == serial order, even across a sequence wrap).
      for (auto& [offset, run] : flow.ooo) {
        flow.expected = SeqMax(flow.expected, run.end_seq());
        Deliver(run.Take(), FlushReason::kOfoTimeout);
        cost += costs_->gro_flush_per_segment;
      }
      flow.ooo.clear();
    }
  });
  // Keep enforcing an active brown-out cap: flows created since the pressure
  // call would otherwise regrow the table without bound mid-window.
  cost += EnforceFlowCap();
  return cost;
}

}  // namespace juggler
