// Accumulates in-sequence packets into one Segment — the frags[]-array merge
// of Figure 3 (left). Shared by the GRO baselines and by Juggler's
// in-sequence path and OOO-queue runs.

#ifndef JUGGLER_SRC_GRO_SEGMENT_BUILDER_H_
#define JUGGLER_SRC_GRO_SEGMENT_BUILDER_H_

#include "src/packet/packet.h"
#include "src/util/seq.h"

namespace juggler {

class SegmentBuilder {
 public:
  enum class MergeResult {
    kMerged,          // appended; keep accumulating
    kMergedFinal,     // appended but the segment must flush now (PSH / size)
    kRefusedOoo,      // packet not contiguous with the segment tail
    kRefusedMeta,     // options token / CE mark mismatch (Table 2 row 4)
    kRefusedSize,     // merging would exceed max_payload
  };

  bool empty() const { return segment_.mtu_count == 0; }

  // Begin a new segment from `p`. Requires empty().
  void Start(const Packet& p) {
    segment_ = Segment{};
    segment_.flow = p.flow;
    segment_.seq = p.seq;
    segment_.payload_len = p.payload_len;
    segment_.mtu_count = 1;
    segment_.flags = p.flags;
    segment_.ack_seq = p.ack_seq;
    segment_.ack_rwnd = p.ack_rwnd;
    segment_.ce_mark = p.ce_mark;
    segment_.first_rx_time = p.nic_rx_time;
    segment_.last_rx_time = p.nic_rx_time;
    segment_.sent_time = p.sent_time;
    options_token_ = p.options_token;
    needs_flush_ = (p.flags & (kFlagPsh | kFlagUrg)) != 0;
  }

  // Try to append `p` at the tail. Only exact tail continuation merges;
  // anything else is the caller's problem (flush, buffer, ...).
  MergeResult TryMerge(const Packet& p, uint32_t max_payload) {
    if (p.seq != segment_.end_seq()) {
      return MergeResult::kRefusedOoo;
    }
    if (p.options_token != options_token_ || p.ce_mark != segment_.ce_mark) {
      return MergeResult::kRefusedMeta;
    }
    if (segment_.payload_len + p.payload_len > max_payload) {
      return MergeResult::kRefusedSize;
    }
    segment_.payload_len += p.payload_len;
    segment_.mtu_count += 1;
    segment_.flags |= p.flags;
    segment_.ack_seq = p.ack_seq;  // latest cumulative ACK wins
    segment_.ack_rwnd = p.ack_rwnd;
    if (p.nic_rx_time > segment_.last_rx_time) {
      segment_.last_rx_time = p.nic_rx_time;
    }
    const bool urgent = (p.flags & (kFlagPsh | kFlagUrg)) != 0;
    needs_flush_ = needs_flush_ || urgent;
    const bool full = segment_.payload_len >= max_payload;
    return (urgent || full) ? MergeResult::kMergedFinal : MergeResult::kMerged;
  }

  // True when the segment carries flags that demand immediate delivery.
  bool needs_flush() const { return needs_flush_; }

  Seq start_seq() const { return segment_.seq; }
  Seq end_seq() const { return segment_.end_seq(); }
  uint32_t payload_len() const { return segment_.payload_len; }
  uint32_t mtu_count() const { return segment_.mtu_count; }
  uint32_t options_token() const { return options_token_; }
  const Segment& segment() const { return segment_; }

  // Hand out the finished segment and reset to empty.
  Segment Take() {
    Segment out = segment_;
    segment_ = Segment{};
    needs_flush_ = false;
    return out;
  }

  // Batched tail extension: `mtus` contiguous packets totalling `bytes`,
  // each of which the caller guarantees would have merged via TryMerge with
  // matching metadata and no PSH/URG — kMerged, or (for a run parked off the
  // flush path, where "full" forces nothing) a final packet landing exactly
  // on the size cap, whose kMergedFinal performs these same updates. `ack`
  // and `rwnd` are the LAST packet's values (latest cumulative ACK wins) and
  // `flags` / `last_rx` the OR / max across the run — exactly what that
  // many individual TryMerge calls would have left behind. needs_flush is
  // untouched, which is why PSH/URG packets are the caller's problem.
  void ExtendTail(uint32_t bytes, uint32_t mtus, uint8_t flags, Seq ack, uint32_t rwnd,
                  TimeNs last_rx) {
    segment_.payload_len += bytes;
    segment_.mtu_count += mtus;
    segment_.flags |= flags;
    segment_.ack_seq = ack;
    segment_.ack_rwnd = rwnd;
    if (last_rx > segment_.last_rx_time) {
      segment_.last_rx_time = last_rx;
    }
  }

  // Merge `later` onto the tail of this builder. Caller guarantees
  // later.start_seq() == end_seq() and matching metadata.
  void Append(SegmentBuilder&& later) {
    segment_.payload_len += later.segment_.payload_len;
    segment_.mtu_count += later.segment_.mtu_count;
    segment_.flags |= later.segment_.flags;
    segment_.ack_seq = later.segment_.ack_seq;
    segment_.ack_rwnd = later.segment_.ack_rwnd;
    if (later.segment_.last_rx_time > segment_.last_rx_time) {
      segment_.last_rx_time = later.segment_.last_rx_time;
    }
    needs_flush_ = needs_flush_ || later.needs_flush_;
  }

 private:
  Segment segment_{};
  uint32_t options_token_ = 0;
  bool needs_flush_ = false;
};

}  // namespace juggler

#endif  // JUGGLER_SRC_GRO_SEGMENT_BUILDER_H_
