#include "src/stats/table_printer.h"

#include <algorithm>
#include <cstdio>

namespace juggler {

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t c = 0; c < cells.size(); ++c) {
      line += cells[c];
      line.append(widths[c] - cells[c].size() + 2, ' ');
    }
    while (!line.empty() && line.back() == ' ') {
      line.pop_back();
    }
    line += '\n';
    return line;
  };
  std::string out = emit_row(headers_);
  size_t rule = 0;
  for (size_t w : widths) {
    rule += w + 2;
  }
  out.append(rule - 2, '-');
  out += '\n';
  for (const auto& row : rows_) {
    out += emit_row(row);
  }
  return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace juggler
