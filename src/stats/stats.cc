#include "src/stats/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/util/logging.h"

namespace juggler {

PercentileSampler::PercentileSampler(size_t max_samples)
    : max_samples_(max_samples), rng_state_(0x9e3779b97f4a7c15ULL) {
  JUG_CHECK(max_samples_ > 0);
}

void PercentileSampler::Add(double value) {
  ++count_;
  sum_ += value;
  sum_sq_ += value * value;
  if (count_ == 1) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  dirty_ = true;
  if (samples_.size() < max_samples_) {
    samples_.push_back(value);
    return;
  }
  // Uniform reservoir: keep each of the `count_` samples with equal chance.
  rng_state_ ^= rng_state_ << 13;
  rng_state_ ^= rng_state_ >> 7;
  rng_state_ ^= rng_state_ << 17;
  const uint64_t slot = rng_state_ % count_;
  if (slot < samples_.size()) {
    samples_[slot] = value;
  }
}

double PercentileSampler::Percentile(double p) const {
  if (samples_.empty()) {
    return 0.0;
  }
  if (dirty_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    dirty_ = false;
  }
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

double PercentileSampler::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double PercentileSampler::StdDev() const {
  if (count_ < 2) {
    return 0.0;
  }
  const double n = static_cast<double>(count_);
  const double var = (sum_sq_ - sum_ * sum_ / n) / (n - 1);
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

double PercentileSampler::Min() const { return count_ == 0 ? 0.0 : min_; }
double PercentileSampler::Max() const { return count_ == 0 ? 0.0 : max_; }

void PercentileSampler::Clear() {
  samples_.clear();
  sorted_.clear();
  dirty_ = true;
  count_ = 0;
  sum_ = 0.0;
  sum_sq_ = 0.0;
  min_ = max_ = 0.0;
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  JUG_CHECK(hi > lo && bins > 0);
}

void Histogram::Add(double value) {
  double idx = (value - lo_) / width_;
  if (idx < 0.0) {
    idx = 0.0;
  }
  size_t bin = static_cast<size_t>(idx);
  if (bin >= counts_.size()) {
    bin = counts_.size() - 1;
  }
  ++counts_[bin];
  ++total_;
}

double Histogram::bin_lo(size_t i) const { return lo_ + width_ * static_cast<double>(i); }

double Histogram::CdfAt(double x) const {
  if (total_ == 0) {
    return 0.0;
  }
  uint64_t below = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (bin_lo(i) + width_ <= x + 1e-12) {
      below += counts_[i];
    }
  }
  return static_cast<double>(below) / static_cast<double>(total_);
}

std::string Histogram::ToString() const {
  std::string out;
  char line[128];
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) {
      continue;
    }
    std::snprintf(line, sizeof(line), "  [%8.2f, %8.2f): %lu\n", bin_lo(i), bin_lo(i) + width_,
                  static_cast<unsigned long>(counts_[i]));
    out += line;
  }
  return out;
}

TimeSeries::TimeSeries(TimeNs start, TimeNs bin_width, size_t bins)
    : start_(start), bin_width_(bin_width), sums_(bins, 0.0) {
  JUG_CHECK(bin_width > 0 && bins > 0);
}

void TimeSeries::Add(TimeNs when, double value) {
  if (when < start_) {
    return;
  }
  const size_t bin = static_cast<size_t>((when - start_) / bin_width_);
  if (bin < sums_.size()) {
    sums_[bin] += value;
  }
}

double TimeSeries::bin_rate(size_t i) const {
  return sums_[i] / (static_cast<double>(bin_width_) / kNsPerSec);
}

}  // namespace juggler
