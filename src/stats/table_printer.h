// Aligned plain-text table output for the bench harnesses. Every figure
// reproduction prints through this so the series the paper plots appear as
// readable, diffable rows.

#ifndef JUGGLER_SRC_STATS_TABLE_PRINTER_H_
#define JUGGLER_SRC_STATS_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace juggler {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  static std::string Num(double v, int precision = 2);

  // Renders the table with a header rule, column-aligned.
  std::string ToString() const;

  // Prints to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace juggler

#endif  // JUGGLER_SRC_STATS_TABLE_PRINTER_H_
