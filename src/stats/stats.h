// Measurement utilities: percentile samplers, histograms, binned time
// series. Everything the benches print flows through these so the output
// format is uniform across experiments.

#ifndef JUGGLER_SRC_STATS_STATS_H_
#define JUGGLER_SRC_STATS_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/time.h"

namespace juggler {

// Collects raw samples and answers percentile queries. If more than
// `max_samples` arrive, switches to uniform reservoir sampling so memory
// stays bounded on long runs.
class PercentileSampler {
 public:
  explicit PercentileSampler(size_t max_samples = 1 << 20);

  void Add(double value);

  // p in [0, 100]. Linear interpolation between order statistics.
  // Returns 0 when empty.
  double Percentile(double p) const;

  double Mean() const;
  double StdDev() const;
  double Min() const;
  double Max() const;
  size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }

  void Clear();

 private:
  size_t max_samples_;
  std::vector<double> samples_;
  mutable std::vector<double> sorted_;  // cache; rebuilt when dirty
  mutable bool dirty_ = true;
  size_t count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  uint64_t rng_state_;  // for reservoir replacement
};

// Fixed-bin histogram over [lo, hi); out-of-range values clamp to the edge
// bins. Used for active-list length distributions (Fig. 16).
class Histogram {
 public:
  Histogram(double lo, double hi, size_t bins);

  void Add(double value);

  uint64_t bin_count(size_t i) const { return counts_[i]; }
  size_t bins() const { return counts_.size(); }
  double bin_lo(size_t i) const;
  uint64_t total() const { return total_; }

  // Fraction of samples with value <= x.
  double CdfAt(double x) const;

  std::string ToString() const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

// Accumulates a value (e.g., bytes delivered) into fixed time bins; reports a
// rate series. Used for the Figure 1 throughput-vs-time plots.
class TimeSeries {
 public:
  TimeSeries(TimeNs start, TimeNs bin_width, size_t bins);

  void Add(TimeNs when, double value);

  size_t bins() const { return sums_.size(); }
  TimeNs bin_start(size_t i) const { return start_ + static_cast<TimeNs>(i) * bin_width_; }
  double bin_sum(size_t i) const { return sums_[i]; }

  // Bin sum divided by bin width in seconds — e.g., bytes -> bytes/sec.
  double bin_rate(size_t i) const;

 private:
  TimeNs start_;
  TimeNs bin_width_;
  std::vector<double> sums_;
};

}  // namespace juggler

#endif  // JUGGLER_SRC_STATS_STATS_H_
