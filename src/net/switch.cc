#include "src/net/switch.h"

#include <memory>

#include "src/util/logging.h"

namespace juggler {

void Switch::AddUplink(PacketSink* port, const Link* link) {
  uplinks_.push_back(port);
  uplink_links_.push_back(link);
  uint64_t seed = 0x9e3779b97f4a7c15ULL;
  for (char c : name_) {
    seed = seed * 131 + static_cast<unsigned char>(c);
  }
  balancer_ = std::make_unique<LoadBalancer>(uplink_policy_, uplinks_.size(), seed);
}

void Switch::Accept(PacketPtr packet) {
  auto it = routes_.find(packet->flow.dst_ip);
  if (it != routes_.end()) {
    ++forwarded_;
    it->second->Accept(std::move(packet));
    return;
  }
  if (!uplinks_.empty()) {
    ++forwarded_;
    size_t path;
    if (uplink_policy_ == LbPolicy::kFlowlet) {
      std::vector<int64_t> depths;
      depths.reserve(uplink_links_.size());
      bool have_probes = true;
      for (const Link* link : uplink_links_) {
        if (link == nullptr) {
          have_probes = false;
          break;
        }
        depths.push_back(link->queued_bytes());
      }
      path = balancer_->PickFlowletPath(*packet, have_probes ? depths : std::vector<int64_t>{});
    } else {
      path = balancer_->PickPath(*packet);
    }
    uplinks_[path]->Accept(std::move(packet));
    return;
  }
  ++no_route_;
  JUG_WARN("switch %s: no route for dst %u, dropping", name_.c_str(), packet->flow.dst_ip);
}

}  // namespace juggler
