// Uplink selection policies (§2.2, §5.3.2).
//
//   kEcmp      — hash the five-tuple: every packet of a flow takes one path.
//   kPerTso    — hash the five-tuple and the TSO burst id: Presto-style
//                flowcells, one path per 64KB chunk.
//   kPerPacket — spray each packet to a uniformly random uplink, the finest
//                (and most reordering-prone) granularity. Random rather than
//                round-robin: deterministic alternation would keep parallel
//                queues artificially symmetric and hide the transient
//                imbalance that causes real reordering.
//   kPerPacketRR — strict round-robin spraying, kept for comparison.

#ifndef JUGGLER_SRC_NET_LOAD_BALANCER_H_
#define JUGGLER_SRC_NET_LOAD_BALANCER_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "src/packet/packet.h"
#include "src/util/rng.h"
#include "src/util/time.h"

namespace juggler {

enum class LbPolicy {
  kEcmp,
  kPerTso,
  kPerPacket,
  kPerPacketRR,
  // CONGA-style flowlet switching (§2.2): a flow re-hashes to a new path
  // whenever the gap since its previous packet exceeds the flowlet gap —
  // bursts stay together, so almost no reordering reaches the end host.
  kFlowlet,
};

const char* LbPolicyName(LbPolicy policy);

class LoadBalancer {
 public:
  LoadBalancer(LbPolicy policy, size_t num_paths, uint64_t seed = 1)
      : policy_(policy), num_paths_(num_paths), rng_(seed) {}

  size_t PickPath(const Packet& p);

  // Flowlet-policy entry point with congestion feedback: a new flowlet is
  // steered to the least-loaded path (CONGA's congestion-aware choice);
  // within a flowlet the path is sticky. `queue_bytes[i]` is the current
  // occupancy of path i's output queue.
  size_t PickFlowletPath(const Packet& p, const std::vector<int64_t>& queue_bytes);

  LbPolicy policy() const { return policy_; }

  // Flowlet inactivity gap (kFlowlet only). CONGA uses ~500us; anything
  // larger than the path-delay difference avoids reordering.
  void set_flowlet_gap(TimeNs gap) { flowlet_gap_ = gap; }

 private:
  struct FlowletState {
    TimeNs last_seen = 0;
    size_t path = 0;
  };

  LbPolicy policy_;
  size_t num_paths_;
  Rng rng_;
  size_t rr_next_ = 0;
  TimeNs flowlet_gap_ = Us(500);
  std::unordered_map<FiveTuple, FlowletState, FiveTupleHash> flowlets_;
};

}  // namespace juggler

#endif  // JUGGLER_SRC_NET_LOAD_BALANCER_H_
