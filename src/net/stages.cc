#include "src/net/stages.h"

#include <memory>
#include <utility>

#include "src/sim/shard_mailbox.h"
#include "src/util/logging.h"

namespace juggler {

ReorderStage::ReorderStage(EventLoop* loop, std::vector<TimeNs> lane_delays, uint64_t seed,
                           PacketSink* sink)
    : loop_(loop), lane_delays_(std::move(lane_delays)), rng_(seed), sink_(sink) {
  JUG_CHECK(!lane_delays_.empty());
  lane_last_out_.resize(lane_delays_.size(), 0);
}

void ReorderStage::Accept(PacketPtr packet) {
  ++packets_;
  const size_t lane = static_cast<size_t>(rng_.NextBounded(lane_delays_.size()));
  const TimeNs now = loop_->now();
  TimeNs out = now + lane_delays_[lane];
  if (out < lane_last_out_[lane]) {
    out = lane_last_out_[lane];  // lanes are FIFOs
  }
  lane_last_out_[lane] = out;
  displacement_.Record(max_out_ > out ? static_cast<uint64_t>(max_out_ - out) : 0);
  if (out > max_out_) {
    max_out_ = out;
  }
  if (remote_ != nullptr) {
    // The destination domain replays the lane delay as envelope extra; no
    // local timer needed.
    remote_->Deliver(std::move(packet), out - now);
    return;
  }
  PacketSink* sink = sink_;
  loop_->ScheduleAt(out,
                    [sink, p = std::move(packet)]() mutable { sink->Accept(std::move(p)); });
}

void PublishReorderStats(const ReorderStage& stage, const std::string& label,
                         MetricsRegistry* registry) {
  registry->AddCounter("net.reorder.packets", label, stage.packets_through());
  registry->RecordHistogram("net.reorder.displacement_ns", label,
                            stage.displacement_histogram());
}

}  // namespace juggler
