#include "src/net/link.h"

#include <memory>
#include <utility>

#include "src/sim/shard_mailbox.h"
#include "src/util/logging.h"

namespace juggler {

Link::Link(EventLoop* loop, std::string name, const LinkConfig& config, PacketSink* sink)
    : loop_(loop),
      name_(std::move(name)),
      config_(config),
      sink_(sink),
      red_rng_(config.red_seed) {
  JUG_CHECK(config_.num_priorities >= 1);
  JUG_CHECK(config_.rate_bps > 0);
  if (config_.red) {
    // red_max_fill == red_min_fill would divide by zero in the ramp below.
    JUG_CHECK(config_.red_min_fill >= 0.0 && config_.red_min_fill <= 1.0);
    JUG_CHECK(config_.red_max_fill >= 0.0 && config_.red_max_fill <= 1.0);
    JUG_CHECK(config_.red_max_fill > config_.red_min_fill);
    JUG_CHECK(config_.red_pmax >= 0.0 && config_.red_pmax <= 1.0);
  }
  if (config_.ecn) {
    JUG_CHECK(config_.ecn_threshold_fill >= 0.0 && config_.ecn_threshold_fill <= 1.0);
  }
  queues_.resize(static_cast<size_t>(config_.num_priorities));
  queued_bytes_.resize(static_cast<size_t>(config_.num_priorities), 0);
}

void Link::SetDown() {
  if (down_) {
    return;
  }
  down_ = true;
  ++stats_.down_transitions;
}

void Link::SetUp() {
  if (!down_) {
    return;
  }
  down_ = false;
  StartNextIfIdle();
}

void Link::set_rate_bps(int64_t rate_bps) {
  JUG_CHECK(rate_bps > 0);
  config_.rate_bps = rate_bps;
}

void Link::Accept(PacketPtr packet) {
  if (down_) {
    ++stats_.down_drops;
    return;  // blackhole while the port is down
  }
  size_t level = static_cast<size_t>(packet->priority);
  if (level >= queues_.size()) {
    level = queues_.size() - 1;  // single-FIFO links ignore priority
  }
  const int64_t wire = packet->wire_bytes();
  if (config_.queue_limit_bytes > 0 && queued_bytes_[level] + wire > config_.queue_limit_bytes) {
    ++stats_.drops;
    return;  // drop-tail
  }
  if (config_.ecn && config_.queue_limit_bytes > 0 && packet->payload_len > 0) {
    const double fill = static_cast<double>(queued_bytes_[level]) /
                        static_cast<double>(config_.queue_limit_bytes);
    if (fill > config_.ecn_threshold_fill) {
      packet->ce_mark = true;
      ++stats_.ecn_marks;
    }
  }
  if (config_.red && config_.queue_limit_bytes > 0) {
    const double fill = static_cast<double>(queued_bytes_[level]) /
                        static_cast<double>(config_.queue_limit_bytes);
    if (fill > config_.red_min_fill) {
      const double ramp = (fill - config_.red_min_fill) /
                          (config_.red_max_fill - config_.red_min_fill);
      const double p = config_.red_pmax * (ramp > 1.0 ? 1.0 : ramp);
      if (red_rng_.NextBool(p)) {
        ++stats_.drops;
        ++stats_.red_drops;
        return;
      }
    }
  }
  queued_bytes_[level] += wire;
  total_queued_bytes_ += wire;
  if (total_queued_bytes_ > stats_.max_queue_bytes) {
    stats_.max_queue_bytes = total_queued_bytes_;
  }
  queues_[level].push_back(std::move(packet));
  StartNextIfIdle();
}

void Link::StartNextIfIdle() {
  if (transmitting_ || down_) {
    return;
  }
  for (size_t level = 0; level < queues_.size(); ++level) {
    if (queues_[level].empty()) {
      continue;
    }
    in_flight_ = std::move(queues_[level].front());
    queues_[level].pop_front();
    const int64_t wire = in_flight_->wire_bytes();
    queued_bytes_[level] -= wire;
    transmitting_ = true;
    loop_->Schedule(SerializationTime(wire, config_.rate_bps), [this] { OnTransmitDone(); });
    return;
  }
}

void Link::OnTransmitDone() {
  PacketPtr packet = std::move(in_flight_);
  const int64_t wire = packet->wire_bytes();
  total_queued_bytes_ -= wire;
  ++stats_.packets_tx;
  stats_.bytes_tx += static_cast<uint64_t>(wire);
  transmitting_ = false;
  if (remote_ != nullptr) {
    // The cross-shard crossing carries the propagation delay; no local timer.
    remote_->Deliver(std::move(packet), 0);
  } else if (config_.propagation_delay > 0) {
    // Hand the packet off after flight time; the move-only callback owns the
    // packet in flight (freed if the loop is destroyed first).
    PacketSink* sink = sink_;
    loop_->Schedule(config_.propagation_delay,
                    [sink, p = std::move(packet)]() mutable { sink->Accept(std::move(p)); });
  } else {
    sink_->Accept(std::move(packet));
  }
  StartNextIfIdle();
}

void PublishLinkStats(const LinkStats& stats, const std::string& label,
                      MetricsRegistry* registry) {
  registry->AddCounter("net.link.packets_tx", label, stats.packets_tx);
  registry->AddCounter("net.link.bytes_tx", label, stats.bytes_tx);
  registry->AddCounter("net.link.drops", label, stats.drops);
  registry->AddCounter("net.link.red_drops", label, stats.red_drops);
  registry->AddCounter("net.link.ecn_marks", label, stats.ecn_marks);
  registry->AddCounter("net.link.down_drops", label, stats.down_drops);
  registry->AddCounter("net.link.down_transitions", label, stats.down_transitions);
  registry->MaxGauge("net.link.max_queue_bytes", label,
                     static_cast<uint64_t>(stats.max_queue_bytes));
}

}  // namespace juggler
