// Inline pipeline stages: the NetFPGA-style reorder stage and a random-drop
// stage, composable in front of any sink.

#ifndef JUGGLER_SRC_NET_STAGES_H_
#define JUGGLER_SRC_NET_STAGES_H_

#include <vector>

#include "src/fault/fault_stage.h"
#include "src/net/packet_sink.h"
#include "src/obs/metrics.h"
#include "src/sim/event_loop.h"
#include "src/util/rng.h"
#include "src/util/time.h"

namespace juggler {

class RemoteEndpoint;

// Models the paper's NetFPGA-10G testbed switch (Figure 11): each inbound
// packet is hashed uniformly at random to one of N internal lanes; lane i
// adds a fixed delay. Order is preserved *within* a lane (each lane is a
// FIFO), so the reordering a receiver sees is exactly the delay difference
// across lanes — the paper's "Xµs reordering".
class ReorderStage : public PacketSink {
 public:
  ReorderStage(EventLoop* loop, std::vector<TimeNs> lane_delays, uint64_t seed, PacketSink* sink);

  void Accept(PacketPtr packet) override;

  // Sharded operation: emit into another shard domain's mailbox instead of
  // scheduling a local timer. The lane delay rides as the envelope's extra
  // on top of the endpoint's wire latency.
  void set_remote(RemoteEndpoint* remote) { remote_ = remote; }

  uint64_t packets_through() const { return packets_; }

  // Displacement a packet suffers relative to the latest egress time already
  // scheduled: 0 for a packet leaving last (in order), else how far (ns) it
  // jumps ahead of a predecessor — the in-path reordering signal of the
  // data-plane detection literature. Always-on: one compare + histogram add.
  const Log2Histogram& displacement_histogram() const { return displacement_; }

 private:
  EventLoop* loop_;
  std::vector<TimeNs> lane_delays_;
  std::vector<TimeNs> lane_last_out_;  // FIFO guarantee per lane
  Rng rng_;
  PacketSink* sink_;
  RemoteEndpoint* remote_ = nullptr;
  uint64_t packets_ = 0;
  Log2Histogram displacement_;
  TimeNs max_out_ = 0;  // latest egress time scheduled so far
};

// Snapshot a ReorderStage's displacement histogram into `registry`.
void PublishReorderStats(const ReorderStage& stage, const std::string& label,
                         MetricsRegistry* registry);

// Drops each packet independently with probability `drop_prob` (the 0.1%
// loss injection of Figure 14). Folded into the fault layer's FaultStage: a
// clockless stage with a uniform-drop timeline draws the same single
// Bernoulli trial per packet the standalone implementation did, so existing
// seeds reproduce the same drop pattern.
class DropStage : public FaultStage {
 public:
  DropStage(double drop_prob, uint64_t seed, PacketSink* sink)
      : FaultStage(/*loop=*/nullptr, "drop", FaultTimeline::UniformDrop(drop_prob), seed,
                   sink) {}
};

}  // namespace juggler

#endif  // JUGGLER_SRC_NET_STAGES_H_
