// A store-and-forward switch: static routes by destination IP, plus an
// optional default uplink group balanced by an LbPolicy. Output queueing is
// delegated to the Link attached to each port, so congestion, buffer
// build-up and drops happen where they do in a real switch.

#ifndef JUGGLER_SRC_NET_SWITCH_H_
#define JUGGLER_SRC_NET_SWITCH_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/net/link.h"
#include "src/net/load_balancer.h"
#include "src/net/packet_sink.h"

namespace juggler {

class Switch : public PacketSink {
 public:
  Switch(std::string name, LbPolicy uplink_policy)
      : name_(std::move(name)), uplink_policy_(uplink_policy) {}

  // Exact-match route: packets to `dst_ip` exit through `port`.
  void AddRoute(uint32_t dst_ip, PacketSink* port) { routes_[dst_ip] = port; }

  // Default route: packets with no exact match are balanced across these.
  // Pass `link` when the port is a Link so congestion-aware policies
  // (flowlet) can read its queue occupancy.
  void AddUplink(PacketSink* port, const Link* link = nullptr);

  void Accept(PacketPtr packet) override;

  uint64_t forwarded() const { return forwarded_; }
  uint64_t dropped_no_route() const { return no_route_; }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  LbPolicy uplink_policy_;
  std::unordered_map<uint32_t, PacketSink*> routes_;
  std::vector<PacketSink*> uplinks_;
  std::vector<const Link*> uplink_links_;  // nullable congestion probes
  std::unique_ptr<LoadBalancer> balancer_;
  uint64_t forwarded_ = 0;
  uint64_t no_route_ = 0;
};

}  // namespace juggler

#endif  // JUGGLER_SRC_NET_SWITCH_H_
