#include "src/net/load_balancer.h"

namespace juggler {

const char* LbPolicyName(LbPolicy policy) {
  switch (policy) {
    case LbPolicy::kEcmp:
      return "per-flow ECMP";
    case LbPolicy::kPerTso:
      return "per-TSO";
    case LbPolicy::kPerPacket:
      return "per-packet";
    case LbPolicy::kPerPacketRR:
      return "per-packet-rr";
    case LbPolicy::kFlowlet:
      return "flowlet";
  }
  return "unknown";
}

size_t LoadBalancer::PickPath(const Packet& p) {
  if (num_paths_ <= 1) {
    return 0;
  }
  switch (policy_) {
    case LbPolicy::kEcmp:
      return static_cast<size_t>(p.flow.Hash() % num_paths_);
    case LbPolicy::kPerTso: {
      // Flowcell hash: mix the flow hash with the burst id.
      uint64_t h = p.flow.Hash() ^ (p.tso_id * 0x9e3779b97f4a7c15ULL);
      h ^= h >> 29;
      return static_cast<size_t>(h % num_paths_);
    }
    case LbPolicy::kPerPacket:
      return static_cast<size_t>(rng_.NextBounded(num_paths_));
    case LbPolicy::kPerPacketRR: {
      const size_t path = rr_next_;
      rr_next_ = (rr_next_ + 1) % num_paths_;
      return path;
    }
    case LbPolicy::kFlowlet:
      // Without congestion feedback, new flowlets pick randomly.
      return PickFlowletPath(p, {});
  }
  return 0;
}

size_t LoadBalancer::PickFlowletPath(const Packet& p, const std::vector<int64_t>& queue_bytes) {
  // Uses the packet's send timestamp as the clock: flowlet detection only
  // needs inter-packet gaps, not absolute time.
  FlowletState& state = flowlets_[p.flow];
  if (state.last_seen == 0 || p.sent_time - state.last_seen > flowlet_gap_) {
    if (queue_bytes.size() == num_paths_) {
      // CONGA-style: steer the new flowlet to the least-congested path.
      size_t best = 0;
      for (size_t i = 1; i < queue_bytes.size(); ++i) {
        if (queue_bytes[i] < queue_bytes[best]) {
          best = i;
        }
      }
      state.path = best;
    } else {
      state.path = static_cast<size_t>(rng_.NextBounded(num_paths_));
    }
  }
  state.last_seen = p.sent_time;
  return state.path;
}

}  // namespace juggler
