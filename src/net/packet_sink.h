// The one-method interface every packet-forwarding element implements.
// Ownership of the packet transfers on Accept().

#ifndef JUGGLER_SRC_NET_PACKET_SINK_H_
#define JUGGLER_SRC_NET_PACKET_SINK_H_

#include "src/packet/packet.h"

namespace juggler {

class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void Accept(PacketPtr packet) = 0;
};

// Late-bound forwarding sink, for wiring cycles (host A's uplink ends at
// host B, whose uplink ends at host A). Set the target before traffic flows.
class LatchSink : public PacketSink {
 public:
  void set_target(PacketSink* target) { target_ = target; }

  void Accept(PacketPtr packet) override {
    if (target_ != nullptr) {
      target_->Accept(std::move(packet));
    }
  }

 private:
  PacketSink* target_ = nullptr;
};

}  // namespace juggler

#endif  // JUGGLER_SRC_NET_PACKET_SINK_H_
