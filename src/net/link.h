// Links and queues.
//
// A Link models a switch/NIC output port: a drop-tail buffer (optionally
// split into strict-priority levels, for the Figure 17 experiments), a
// serializer at a fixed bit rate, and a propagation delay. Packets that
// arrive while the port is busy queue; the queue occupancy is observable so
// benches can report buffer build-up.

#ifndef JUGGLER_SRC_NET_LINK_H_
#define JUGGLER_SRC_NET_LINK_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/net/packet_sink.h"
#include "src/obs/metrics.h"
#include "src/sim/event_loop.h"
#include "src/util/rng.h"
#include "src/util/time.h"

namespace juggler {

class RemoteEndpoint;

struct LinkConfig {
  int64_t rate_bps = 10 * kGbps;
  TimeNs propagation_delay = Us(1);
  // Drop-tail limit per priority level, in bytes of wire occupancy.
  // <= 0 means unbounded.
  int64_t queue_limit_bytes = 0;
  // Number of strict-priority levels (1 = plain FIFO, 2 = high/low as in the
  // bandwidth-guarantee experiments).
  int num_priorities = 1;
  // Random Early Detection: drop arriving packets with probability ramping
  // from 0 at `red_min_fill` of the queue limit to `red_pmax` at
  // `red_max_fill`. Desynchronizes flows and prevents the drop-tail capture
  // effect — the role ECN/WRED plays on real datacenter switch ports.
  bool red = false;
  double red_min_fill = 0.25;
  double red_max_fill = 0.9;
  double red_pmax = 0.06;
  uint64_t red_seed = 1;
  // DCTCP-style ECN: mark CE (instead of dropping) on packets that arrive
  // when the queue holds more than `ecn_threshold_fill` of the limit — the
  // step-marking-at-K scheme DCTCP relies on.
  bool ecn = false;
  double ecn_threshold_fill = 0.15;
};

struct LinkStats {
  uint64_t packets_tx = 0;
  uint64_t bytes_tx = 0;
  uint64_t drops = 0;
  uint64_t red_drops = 0;
  uint64_t ecn_marks = 0;
  uint64_t down_drops = 0;    // arrivals blackholed while the link was down
  uint64_t down_transitions = 0;
  int64_t max_queue_bytes = 0;
};

class Link : public PacketSink {
 public:
  Link(EventLoop* loop, std::string name, const LinkConfig& config, PacketSink* sink);

  void Accept(PacketPtr packet) override;

  // ---- failure modeling (fault-injection layer) ----
  //
  // SetDown() blackholes the port: arriving packets are dropped and the
  // serializer pauses after the in-flight frame drains; queued packets wait.
  // SetUp() resumes service. Both are idempotent. set_rate_bps /
  // set_queue_limit_bytes degrade the port at runtime (new values apply from
  // the next serialization / arrival), so load-balanced paths can flap or
  // brown-out mid-run.
  void SetDown();
  void SetUp();
  bool is_down() const { return down_; }
  void set_rate_bps(int64_t rate_bps);
  void set_queue_limit_bytes(int64_t limit) { config_.queue_limit_bytes = limit; }

  // Sharded operation: deliver serialized packets into another shard
  // domain's mailbox instead of the local sink. The endpoint's latency
  // stands in for the whole propagation delay (config_.propagation_delay is
  // not applied on top), and no local flight timer is scheduled — the
  // crossing itself is the flight.
  void set_remote(RemoteEndpoint* remote) { remote_ = remote; }

  int64_t queued_bytes() const { return total_queued_bytes_; }
  const LinkStats& stats() const { return stats_; }
  const std::string& name() const { return name_; }
  int64_t rate_bps() const { return config_.rate_bps; }
  int64_t queue_limit_bytes() const { return config_.queue_limit_bytes; }

 private:
  void StartNextIfIdle();
  void OnTransmitDone();

  EventLoop* loop_;
  std::string name_;
  LinkConfig config_;
  PacketSink* sink_;
  RemoteEndpoint* remote_ = nullptr;  // when set, replaces sink_ + flight timer
  bool down_ = false;

  // One FIFO per priority level; level 0 (kHigh) served first.
  std::vector<std::deque<PacketPtr>> queues_;
  std::vector<int64_t> queued_bytes_;
  int64_t total_queued_bytes_ = 0;
  bool transmitting_ = false;
  PacketPtr in_flight_;
  Rng red_rng_;
  LinkStats stats_;
};

// Snapshot a LinkStats into `registry` under `label` (the link's name).
void PublishLinkStats(const LinkStats& stats, const std::string& label,
                      MetricsRegistry* registry);

}  // namespace juggler

#endif  // JUGGLER_SRC_NET_LINK_H_
