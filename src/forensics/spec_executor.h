// Watchdogged execution + outcome classification for one ScenarioSpec.
//
// ExecuteSpec is the supervisor's unit of work: fork, run the spec's chaos
// scenario (differentially, with full invariant checking) in the child,
// stream a structured report back over a pipe, and classify whatever came
// back — or didn't — into a FailureSignature. The child is never trusted:
// it may report violations (the good case), throw, abort on a JUG_CHECK,
// trip a sanitizer, or wedge a barrier and hang until the watchdog SIGKILLs
// it. Classification precedence runs from least to most cooperative
// evidence: watchdog timeout, death by signal, nonzero exit, unparseable
// report, then the report's own contents (exception, digest divergence,
// invariant violations).

#ifndef JUGGLER_SRC_FORENSICS_SPEC_EXECUTOR_H_
#define JUGGLER_SRC_FORENSICS_SPEC_EXECUTOR_H_

#include <string>
#include <vector>

#include "src/forensics/failure_signature.h"
#include "src/forensics/scenario_spec.h"
#include "src/util/subprocess.h"

namespace juggler {

// What one in-process run of a spec observed; the child serializes this to
// the report pipe. Kept deliberately small — raw evidence, not verdicts.
struct SpecRunReport {
  bool ok = false;             // RunChaos's overall verdict
  bool completed = false;      // both engines delivered every byte
  bool streams_match = false;
  uint64_t violations = 0;     // both engines' violation count
  std::vector<std::string> violation_messages;
  uint64_t digest = 0;          // juggler engine digest (primary run)
  uint64_t digest_shard1 = 0;   // divergence oracle, when enabled
  uint64_t digest_shard2 = 0;
  bool diverged = false;
  std::string exception;        // what() of an escaped std::exception
  // Sharded-engine mailbox pressure, routed through the metrics registry so
  // repro bundles carry it (zero when the spec ran the legacy engine).
  uint64_t mailbox_hwm = 0;
  uint64_t mailbox_overflows = 0;
  // Application-workload evidence (all zero when the spec runs the classic
  // raw transfer): how hard the retry/dedup machinery actually worked.
  uint64_t app_issued = 0;
  uint64_t app_retries = 0;
  uint64_t app_timeouts = 0;
  uint64_t app_executions = 0;
  uint64_t app_duplicates_suppressed = 0;

  Json ToJson() const;
  static bool FromJson(const Json& json, SpecRunReport* out, std::string* error);
};

// Runs the spec in THIS process (the child side; also the replay fast
// path). Honors plant_wedge by spinning forever — callers other than the
// forked child must not pass wedged specs.
SpecRunReport RunSpecInProcess(const ScenarioSpec& spec);

// Re-runs the spec's Juggler engine in THIS process with full observability
// on (metrics + flight-recorder trace) and returns {"metrics":..., "trace":...}
// for attachment to a repro bundle. Best-effort: an escaped exception yields
// an object with an "error" member instead. Never call with plant_wedge or
// for crash/timeout signatures — the failure may take this process with it.
Json CollectSpecObs(const ScenarioSpec& spec);

struct ExecOptions {
  int timeout_ms = 30'000;  // wall-clock watchdog per child
};

struct SpecOutcome {
  FailureSignature signature;
  SpecRunReport report;  // valid when the child reported before dying
  ChildResult child;     // raw evidence (signal, stderr, wall clock)
};

SpecOutcome ExecuteSpec(const ScenarioSpec& spec, const ExecOptions& options);

}  // namespace juggler

#endif  // JUGGLER_SRC_FORENSICS_SPEC_EXECUTOR_H_
