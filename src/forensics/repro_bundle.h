// Repro bundles: a self-contained, replayable record of one failure.
//
// A bundle is one JSON file holding the (shrunk) ScenarioSpec, the
// FailureSignature it must reproduce, and free-text provenance notes. It is
// the unit of exchange between the fuzzer and a human: `fuzz_runner` writes
// one per distinct fingerprint, `replay_runner --bundle x.json` re-executes
// it (watchdogged, like the fuzzer did) and checks the observed signature
// against the recorded one — deterministic replay, not just "it crashed
// again".

#ifndef JUGGLER_SRC_FORENSICS_REPRO_BUNDLE_H_
#define JUGGLER_SRC_FORENSICS_REPRO_BUNDLE_H_

#include <string>

#include "src/forensics/failure_signature.h"
#include "src/forensics/scenario_spec.h"
#include "src/forensics/spec_executor.h"

namespace juggler {

struct ReproBundle {
  int version = 1;
  ScenarioSpec spec;
  FailureSignature signature;
  std::string notes;  // provenance: fuzz seed, spec index, shrink stats
  // Optional flight-recorder attachment ({"metrics":...,"trace":...} from
  // CollectSpecObs). Null when the failure mode made an in-process re-run
  // unsafe (crash, sanitizer abort, wedge) or collection was disabled.
  Json obs;

  Json ToJson() const;
  static bool FromJson(const Json& json, ReproBundle* out, std::string* error);
};

bool WriteBundleFile(const ReproBundle& bundle, const std::string& path, std::string* error);
bool ReadBundleFile(const std::string& path, ReproBundle* out, std::string* error);

struct ReplayResult {
  bool reproduced = false;       // observed fingerprint == recorded one
  FailureSignature observed;
  SpecOutcome outcome;           // full evidence from the replay child
};

// One watchdogged replay of the bundle's spec.
ReplayResult ReplayBundle(const ReproBundle& bundle, int timeout_ms);

}  // namespace juggler

#endif  // JUGGLER_SRC_FORENSICS_REPRO_BUNDLE_H_
