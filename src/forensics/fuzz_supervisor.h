// The self-driving chaos fuzzer: sample, execute, classify, shrink, bundle.
//
// RunFuzz is the whole loop in one call: draw `num_specs` random
// ScenarioSpecs from a seeded Rng, execute each in a watchdogged child,
// classify the outcome, dedup failures by signature fingerprint, shrink
// each *new* failure with the delta-debugging shrinker, and (optionally)
// write one repro bundle per distinct fingerprint. Everything downstream of
// the seed is deterministic — same seed, same specs, same findings — which
// is what lets a CI smoke test assert "N specs, zero findings" as a stable
// property rather than a coin flip.

#ifndef JUGGLER_SRC_FORENSICS_FUZZ_SUPERVISOR_H_
#define JUGGLER_SRC_FORENSICS_FUZZ_SUPERVISOR_H_

#include <string>
#include <vector>

#include "src/forensics/repro_bundle.h"
#include "src/forensics/scenario_spec.h"
#include "src/forensics/shrinker.h"
#include "src/forensics/spec_executor.h"

namespace juggler {

struct FuzzOptions {
  uint64_t seed = 1;
  int num_specs = 20;
  int timeout_ms = 30'000;   // watchdog per child
  int64_t time_budget_ms = 0;  // stop sampling once exceeded; 0 = none
  bool shrink = true;
  ShrinkOptions shrink_options;
  SampleLimits limits;
  std::string out_dir;  // bundles written here when non-empty
  bool verbose = false;  // per-spec progress on stdout
  // Test-only: force the planted Juggler accounting defect on in every
  // sampled spec, so the forensics pipeline can be validated end to end
  // against a bug with a known identity.
  bool plant_flush_skew = false;
  // Test-only: give every sampled spec an RPC workload whose retries mint
  // stale idempotency tokens (the app-layer planted defect). Specs are
  // steered onto link-flap fault pressure with a short attempt timeout so
  // retries actually fire — drop bursts alone are recovered by TCP fast
  // retransmit before any sane app timeout expires.
  bool plant_app_stale_token = false;
  // Test-only: run every sampled spec on the COREC receive driver with the
  // hand-off wedge plant armed (ScenarioSpec::plant_corec_wedge) — a
  // COREC-only stall-to-deadlock defect the pipeline must find, shrink
  // (keeping the corec axis; see Shrinker::SimplifyRxDriver) and replay.
  bool plant_corec_wedge = false;
  // Attach a flight-recorder snapshot (metrics + trace) to each written
  // bundle by re-running the shrunk spec in-process with observability on.
  // Only done for cooperative failure kinds (invariant violation, digest
  // divergence, exception) — a crash/timeout would take the fuzzer with it.
  bool attach_obs = true;
};

struct FuzzFinding {
  int spec_index = 0;           // which sampled spec hit it first
  ScenarioSpec spec;            // the original failing spec
  ScenarioSpec shrunk;          // minimized (== spec when shrinking is off)
  FailureSignature signature;
  int shrink_runs = 0;
  int shrink_accepted = 0;
  std::string bundle_path;      // set when a bundle was written
};

struct FuzzReport {
  int specs_run = 0;
  int failures = 0;  // failing specs before dedup
  std::vector<FuzzFinding> findings;  // one per distinct fingerprint
};

FuzzReport RunFuzz(const FuzzOptions& options);

}  // namespace juggler

#endif  // JUGGLER_SRC_FORENSICS_FUZZ_SUPERVISOR_H_
