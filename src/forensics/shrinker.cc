#include "src/forensics/shrinker.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace juggler {
namespace {

class Shrinker {
 public:
  Shrinker(const FailureSignature& target, const ShrinkOptions& options)
      : target_(target), options_(options) {}

  ShrinkResult Run(ScenarioSpec spec) {
    spec.Materialize();
    ShrinkResult result;
    result.spec = std::move(spec);
    result.signature = target_;
    bool progressed = true;
    while (progressed && !Exhausted()) {
      progressed = false;
      progressed |= DropFaultWindows(&result.spec);
      progressed |= DropFlapWindows(&result.spec);
      progressed |= DropOverloadWindows(&result.spec);
      progressed |= HalveWindowSpans(&result.spec);
      progressed |= HalveMagnitudes(&result.spec);
      progressed |= WeakenOverload(&result.spec);
      progressed |= SimplifyRxDriver(&result.spec);
      progressed |= ShrinkWorkload(&result.spec);
    }
    result.runs = runs_;
    result.accepted = accepted_;
    return result;
  }

 private:
  bool Exhausted() const { return runs_ >= options_.max_runs; }

  // Executes the candidate; true iff it still fails with the target
  // signature (an accept).
  bool StillFails(const ScenarioSpec& candidate) {
    ++runs_;
    ExecOptions exec;
    exec.timeout_ms = options_.timeout_ms;
    const SpecOutcome outcome = ExecuteSpec(candidate, exec);
    if (outcome.signature.fingerprint != target_.fingerprint) {
      return false;
    }
    ++accepted_;
    return true;
  }

  // Drop whole fault windows, one at a time, restarting after each accept
  // (indices shift). The loop is quadratic in windows but windows are few.
  bool DropFaultWindows(ScenarioSpec* spec) {
    bool any = false;
    bool again = true;
    while (again && !Exhausted()) {
      again = false;
      const auto& windows = spec->faults.windows();
      for (size_t skip = 0; skip < windows.size(); ++skip) {
        ScenarioSpec candidate = *spec;
        FaultTimeline pruned;
        for (size_t i = 0; i < windows.size(); ++i) {
          if (i != skip) {
            pruned.Add(windows[i].start, windows[i].end, windows[i].profile);
          }
        }
        candidate.faults = std::move(pruned);
        if (StillFails(candidate)) {
          *spec = std::move(candidate);
          any = again = true;
          break;
        }
        if (Exhausted()) {
          break;
        }
      }
    }
    return any;
  }

  bool DropFlapWindows(ScenarioSpec* spec) {
    bool any = false;
    bool again = true;
    while (again && !Exhausted()) {
      again = false;
      for (size_t skip = 0; skip < spec->flaps.size(); ++skip) {
        ScenarioSpec candidate = *spec;
        candidate.flaps.erase(candidate.flaps.begin() + static_cast<ptrdiff_t>(skip));
        if (StillFails(candidate)) {
          *spec = std::move(candidate);
          any = again = true;
          break;
        }
        if (Exhausted()) {
          break;
        }
      }
    }
    return any;
  }

  // Halve each surviving window's duration (fault windows from the end,
  // flap windows from up_at). One attempt per window per round.
  bool HalveWindowSpans(ScenarioSpec* spec) {
    bool any = false;
    for (size_t i = 0; i < spec->faults.windows().size() && !Exhausted(); ++i) {
      const auto& w = spec->faults.windows()[i];
      const TimeNs span = w.end - w.start;
      if (span <= Ms(1)) {
        continue;
      }
      ScenarioSpec candidate = *spec;
      FaultTimeline edited;
      for (size_t k = 0; k < spec->faults.windows().size(); ++k) {
        auto win = spec->faults.windows()[k];
        if (k == i) {
          win.end = win.start + span / 2;
        }
        edited.Add(win.start, win.end, win.profile);
      }
      candidate.faults = std::move(edited);
      if (StillFails(candidate)) {
        *spec = std::move(candidate);
        any = true;
      }
    }
    for (size_t i = 0; i < spec->flaps.size() && !Exhausted(); ++i) {
      const TimeNs span = spec->flaps[i].up_at - spec->flaps[i].down_at;
      if (span <= Ms(1)) {
        continue;
      }
      ScenarioSpec candidate = *spec;
      candidate.flaps[i].up_at = candidate.flaps[i].down_at + span / 2;
      if (StillFails(candidate)) {
        *spec = std::move(candidate);
        any = true;
      }
    }
    return any;
  }

  bool DropOverloadWindows(ScenarioSpec* spec) {
    bool any = false;
    bool again = true;
    while (again && !Exhausted()) {
      again = false;
      for (size_t skip = 0; skip < spec->overload_windows.size(); ++skip) {
        ScenarioSpec candidate = *spec;
        candidate.overload_windows.erase(candidate.overload_windows.begin() +
                                         static_cast<ptrdiff_t>(skip));
        if (StillFails(candidate)) {
          *spec = std::move(candidate);
          any = again = true;
          break;
        }
        if (Exhausted()) {
          break;
        }
      }
    }
    return any;
  }

  // Per overload window: halve the span, then the injection intensity
  // (flows, packets per flow), then relax a brown-out's severity toward
  // 100%. Finally try relaxing the global caps — a repro that still fails
  // with a deeper pool has nothing to do with the cap value.
  bool WeakenOverload(ScenarioSpec* spec) {
    bool any = false;
    auto try_edit = [&](auto edit) {
      if (Exhausted()) {
        return;
      }
      ScenarioSpec candidate = *spec;
      edit(&candidate);
      if (StillFails(candidate)) {
        *spec = std::move(candidate);
        any = true;
      }
    };
    for (size_t i = 0; i < spec->overload_windows.size(); ++i) {
      const OverloadWindow& w = spec->overload_windows[i];
      if (w.end - w.start > Ms(1)) {
        try_edit([i](ScenarioSpec* s) {
          OverloadWindow& e = s->overload_windows[i];
          e.end = e.start + (e.end - e.start) / 2;
        });
      }
      if (spec->overload_windows[i].flows > 1) {
        try_edit([i](ScenarioSpec* s) { s->overload_windows[i].flows /= 2; });
      }
      if (spec->overload_windows[i].packets_per_flow > 1) {
        try_edit([i](ScenarioSpec* s) { s->overload_windows[i].packets_per_flow /= 2; });
      }
      if (spec->overload_windows[i].kind == OverloadKind::kBrownout &&
          spec->overload_windows[i].cap_pct < 100) {
        try_edit([i](ScenarioSpec* s) {
          OverloadWindow& e = s->overload_windows[i];
          e.cap_pct = std::min<uint32_t>(100, e.cap_pct * 2);
        });
      }
    }
    if (!spec->overload_windows.empty() && spec->overload_pool_capacity != 0) {
      try_edit([](ScenarioSpec* s) { s->overload_pool_capacity *= 2; });
    }
    return any;
  }

  // Try the simpler receive architecture: a repro that still fails on the
  // classic RSS+NAPI driver has nothing to do with the COREC axis (and drops
  // the plant flag with it). A COREC-only failure rejects the candidate, so
  // the minimal repro keeps rx_driver=corec — exactly the evidence wanted.
  bool SimplifyRxDriver(ScenarioSpec* spec) {
    if (spec->rx_driver == RxDriverKind::kRss || Exhausted()) {
      return false;
    }
    ScenarioSpec candidate = *spec;
    candidate.rx_driver = RxDriverKind::kRss;
    candidate.plant_corec_wedge = false;
    if (StillFails(candidate)) {
      *spec = std::move(candidate);
      return true;
    }
    return false;
  }

  // Halve fault probabilities and delay magnitudes per window.
  bool HalveMagnitudes(ScenarioSpec* spec) {
    bool any = false;
    for (size_t i = 0; i < spec->faults.windows().size() && !Exhausted(); ++i) {
      const FaultProfile& p = spec->faults.windows()[i].profile;
      FaultProfile halved = p;
      halved.drop_prob = p.drop_prob / 2;
      halved.burst_prob = p.burst_prob / 2;
      halved.dup_prob = p.dup_prob / 2;
      halved.corrupt_prob = p.corrupt_prob / 2;
      halved.truncate_prob = p.truncate_prob / 2;
      halved.delay_prob = p.delay_prob / 2;
      if (halved.delay_max > halved.delay_min) {
        halved.delay_max = halved.delay_min + (halved.delay_max - halved.delay_min) / 2;
      }
      if (!p.any()) {
        continue;
      }
      ScenarioSpec candidate = *spec;
      FaultTimeline edited;
      for (size_t k = 0; k < spec->faults.windows().size(); ++k) {
        const auto& win = spec->faults.windows()[k];
        edited.Add(win.start, win.end, k == i ? halved : win.profile);
      }
      candidate.faults = std::move(edited);
      if (StillFails(candidate)) {
        *spec = std::move(candidate);
        any = true;
      }
    }
    return any;
  }

  // Halve the transfer and the time budget toward their floors.
  bool ShrinkWorkload(ScenarioSpec* spec) {
    bool any = false;
    if (spec->transfer_bytes / 2 >= options_.min_transfer_bytes && !Exhausted()) {
      ScenarioSpec candidate = *spec;
      candidate.transfer_bytes /= 2;
      if (StillFails(candidate)) {
        *spec = std::move(candidate);
        any = true;
      }
    }
    if (spec->time_limit / 2 >= options_.min_time_limit && !Exhausted()) {
      ScenarioSpec candidate = *spec;
      candidate.time_limit /= 2;
      if (StillFails(candidate)) {
        *spec = std::move(candidate);
        any = true;
      }
    }
    any |= ShrinkAppWorkload(spec);
    return any;
  }

  // Halve the app workload toward one session issuing one request, and
  // shrink the frame sizes — a minimal app-level repro is usually a single
  // request whose retry misbehaves.
  bool ShrinkAppWorkload(ScenarioSpec* spec) {
    if (!spec->app.enabled()) {
      return false;
    }
    bool any = false;
    auto try_edit = [&](auto edit) {
      if (Exhausted()) {
        return;
      }
      ScenarioSpec candidate = *spec;
      edit(&candidate.app);
      if (StillFails(candidate)) {
        *spec = std::move(candidate);
        any = true;
      }
    };
    if (spec->app.sessions > 1) {
      try_edit([](AppWorkloadOptions* a) { a->sessions = a->sessions / 2; });
    }
    if (spec->app.requests_per_session > 1) {
      try_edit([](AppWorkloadOptions* a) {
        a->requests_per_session = a->requests_per_session / 2;
      });
    }
    if (spec->app.response_bytes > 1'024) {
      try_edit([](AppWorkloadOptions* a) { a->response_bytes = a->response_bytes / 2; });
    }
    if (spec->app.chunk_bytes > 8'192) {
      try_edit([](AppWorkloadOptions* a) {
        a->chunk_bytes = a->chunk_bytes / 2;
        // Keep the chunk count, not the byte count: fewer bytes per chunk,
        // same number of retryable units.
        a->transfer_bytes_per_session = a->transfer_bytes_per_session / 2;
      });
    }
    if (spec->app.transfer_bytes_per_session > spec->app.chunk_bytes) {
      try_edit([](AppWorkloadOptions* a) {
        a->transfer_bytes_per_session =
            std::max(a->chunk_bytes, a->transfer_bytes_per_session / 2);
      });
    }
    // Retry-policy knobs: a minimal repro should not keep the full policy
    // that found the bug. Kill the jitter first (it is pure noise in a
    // repro), then walk attempts / backoff / deadline toward their floors.
    if (spec->app.retry.jitter_pct > 0) {
      try_edit([](AppWorkloadOptions* a) { a->retry.jitter_pct = 0; });
    }
    if (spec->app.retry.max_attempts > 1) {
      try_edit([](AppWorkloadOptions* a) {
        a->retry.max_attempts = std::max<uint32_t>(1, a->retry.max_attempts / 2);
      });
    }
    if (spec->app.retry.backoff_base > 0) {
      try_edit([](AppWorkloadOptions* a) {
        a->retry.backoff_base /= 2;
        a->retry.backoff_max = std::max(a->retry.backoff_base, a->retry.backoff_max / 2);
      });
    }
    if (spec->app.retry.deadline / 2 >= spec->app.retry.attempt_timeout) {
      try_edit([](AppWorkloadOptions* a) { a->retry.deadline /= 2; });
    }
    if (spec->app.retry.attempt_timeout > Ms(2)) {
      try_edit([](AppWorkloadOptions* a) {
        a->retry.attempt_timeout = std::max<TimeNs>(Ms(2), a->retry.attempt_timeout / 2);
        a->retry.deadline = std::max(a->retry.deadline, a->retry.attempt_timeout);
      });
    }
    return any;
  }

  const FailureSignature target_;
  const ShrinkOptions options_;
  int runs_ = 0;
  int accepted_ = 0;
};

}  // namespace

ShrinkResult ShrinkSpec(const ScenarioSpec& failing, const FailureSignature& target,
                        const ShrinkOptions& options) {
  return Shrinker(target, options).Run(failing);
}

}  // namespace juggler
