// ScenarioSpec: one chaos scenario, fully pinned, as a serializable value.
//
// The forensics layer treats "a run" as data: every knob that can change a
// run's outcome — topology parameters, NIC and GRO timeouts, the fault and
// flap timelines, the RNG seed, the shard count — lives in one struct that
// round-trips through JSON byte-stably. The fuzz supervisor samples specs,
// the executor runs them in watchdogged children, the shrinker rewrites
// their timelines event by event, and a repro bundle carries one verbatim.
//
// A spec whose override flags are off behaves exactly like the classic
// (family, seed) chaos recipe; Materialize() freezes the seed-derived
// schedules into explicit form so subsequent edits cannot perturb any other
// random draw.

#ifndef JUGGLER_SRC_FORENSICS_SCENARIO_SPEC_H_
#define JUGGLER_SRC_FORENSICS_SCENARIO_SPEC_H_

#include <cstdint>
#include <string>

#include "src/scenario/chaos_scenario.h"
#include "src/util/json.h"
#include "src/util/rng.h"

namespace juggler {

struct ScenarioSpec {
  // Identity + workload.
  uint64_t seed = 1;
  FaultFamily family = FaultFamily::kMixed;
  uint64_t transfer_bytes = 1'500'000;
  TimeNs time_limit = Ms(800);
  int num_windows = 3;

  // Topology / NIC knobs.
  int64_t link_rate_bps = 10 * kGbps;
  TimeNs base_delay = Us(5);
  TimeNs reorder_delay = Us(250);
  TimeNs int_coalesce = Us(125);

  // Juggler knobs (Table 2 timeouts, gro_table cap).
  TimeNs inseq_timeout = Us(52);
  TimeNs ofo_timeout = Us(300);
  uint64_t max_flows = 64;

  // Receive-path architecture, both hosts (kRss is the classic NAPI model;
  // the JSON key is emitted only when non-default so historical bundles
  // stay byte-identical).
  RxDriverKind rx_driver = RxDriverKind::kRss;

  // Execution shape. shards == 0 is the legacy single event loop.
  uint64_t shards = 0;
  uint64_t shard_mailbox_capacity = 0;
  // Oracle: additionally run the juggler engine at --shards 1 and
  // --shards 2 and require bit-identical digests (the sharded engine's
  // core determinism contract).
  bool check_shard_divergence = false;

  // Explicit timelines; when the flags are off the run derives both from
  // (family, seed) exactly as RunChaos always has.
  bool use_explicit_faults = false;
  FaultTimeline faults;
  bool use_explicit_flaps = false;
  std::vector<FlapWindow> flaps;

  // Overload pressure windows (always explicit — never seed-derived at run
  // time, so the shrinker edits them freely) plus the pool/ring caps in
  // force while any window is configured. Empty = overload machinery off.
  std::vector<OverloadWindow> overload_windows;
  uint64_t overload_pool_capacity = 8192;
  uint64_t overload_ring_capacity = 0;

  // Test-only planted defects, for validating the forensics pipeline
  // itself: a conservation-law off-by-one in the Juggler flush accounting,
  // and a child that wedges in an infinite loop (exercises the watchdog).
  bool plant_flush_skew = false;
  bool plant_wedge = false;
  // Planted COREC-only defect: permanently wedge the receiver's in-order
  // hand-off stage at its first out-of-order stall, so claimed packets never
  // reach GRO again and the stream integrity oracle fires. Implies the run
  // only fails under rx_driver == kCorec — the shrinker's SimplifyRxDriver
  // pass must therefore keep the corec axis in the minimal repro.
  bool plant_corec_wedge = false;

  // Application workload riding the run (kind == kNone is the classic raw
  // byte transfer). app.plant_stale_token is the app-layer planted defect:
  // retries mint fresh idempotency tokens, so the server executes the same
  // logical request twice and the auditor flags it.
  AppWorkloadOptions app;

  // Members this build did not recognize, preserved in document order and
  // re-emitted verbatim by ToJson(): repro bundles written by newer builds
  // keep replaying here without silently dropping their fields.
  Json extra = Json::Object();

  // The ChaosOptions this spec pins (audit always on — the auditor is the
  // primary failure oracle).
  ChaosOptions ToChaosOptions() const;

  // Freeze the (family, seed)-derived fault and flap schedules into the
  // explicit fields, so the shrinker's edits are self-contained. No-op for
  // already-explicit specs; the run is bit-identical either way.
  void Materialize();

  // Fault windows + flap windows currently in force (explicit or derived):
  // the "event count" the shrinker minimizes.
  size_t TimelineEvents() const;

  Json ToJson() const;
  static bool FromJson(const Json& json, ScenarioSpec* out, std::string* error);
};

// Bounds for sampled specs, chosen so a correct stack always completes the
// transfer inside time_limit (the fuzzer hunts bugs, not resource limits).
struct SampleLimits {
  uint64_t min_transfer_bytes = 400'000;
  uint64_t max_transfer_bytes = 2'000'000;
  int max_windows = 4;
  // Probability a sampled spec also runs the shard-divergence oracle
  // (roughly doubles that spec's cost).
  double shard_divergence_prob = 0.25;
  // Probability a sampled spec carries an application workload instead of
  // the raw transfer. App draws come from a stream derived from the spec's
  // own seed, so raising or lowering this never shifts the non-app fields
  // of any sampled spec.
  double app_prob = 0.3;
  // Probability a sampled spec carries overload pressure windows. Like the
  // app draws, overload draws come from their own seed-derived stream, so
  // this knob never shifts any other field of a sampled spec.
  double overload_prob = 0.25;
  // Probability a sampled spec runs the COREC receive driver instead of
  // RSS+NAPI. Drawn from its own seed-derived stream (pinned fuzz seeds
  // keep sampling the exact specs they always did).
  double corec_prob = 0.3;
};

// One random spec, every decision drawn from `rng`.
ScenarioSpec SampleScenarioSpec(Rng* rng, const SampleLimits& limits);

}  // namespace juggler

#endif  // JUGGLER_SRC_FORENSICS_SCENARIO_SPEC_H_
