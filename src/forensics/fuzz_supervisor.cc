#include "src/forensics/fuzz_supervisor.h"

#include <sys/stat.h>

#include <chrono>
#include <cstdio>
#include <utility>

#include "src/util/rng.h"

namespace juggler {
namespace {

std::string HexFingerprint(uint64_t fp) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(fp));
  return buf;
}

}  // namespace

FuzzReport RunFuzz(const FuzzOptions& options) {
  FuzzReport report;
  Rng rng(options.seed);
  if (!options.out_dir.empty()) {
    ::mkdir(options.out_dir.c_str(), 0755);  // EEXIST is fine
  }
  const auto start = std::chrono::steady_clock::now();
  auto elapsed_ms = [&start]() {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - start)
        .count();
  };

  for (int i = 0; i < options.num_specs; ++i) {
    if (options.time_budget_ms > 0 && elapsed_ms() >= options.time_budget_ms) {
      break;
    }
    ScenarioSpec spec = SampleScenarioSpec(&rng, options.limits);
    spec.plant_flush_skew = options.plant_flush_skew;
    if (options.plant_app_stale_token) {
      // Deterministic overrides, not samples: the stale-token bug only
      // manifests when an attempt times out and its retry reaches the
      // server, so pin link-flap pressure (2-12 ms blackholes) against an
      // attempt timeout it always outlasts.
      spec.family = FaultFamily::kLinkFlap;
      spec.app.kind = AppWorkloadKind::kRpc;
      spec.app.sessions = 2;
      spec.app.requests_per_session = 6;
      spec.app.response_bytes = 12'288;
      spec.app.retry.attempt_timeout = Ms(2);
      spec.app.plant_stale_token = true;
    }
    if (options.plant_corec_wedge) {
      // Deterministic overrides: the wedge only exists on the COREC driver,
      // and a raw bulk transfer makes the resulting stall a clean integrity
      // violation (app retries would muddy the signature).
      spec.rx_driver = RxDriverKind::kCorec;
      spec.plant_corec_wedge = true;
      spec.app = AppWorkloadOptions{};
    }
    ExecOptions exec;
    exec.timeout_ms = options.timeout_ms;
    const SpecOutcome outcome = ExecuteSpec(spec, exec);
    ++report.specs_run;
    if (options.verbose) {
      std::printf("  spec %3d: family=%s seed=%llu shards=%llu -> %s%s%s\n", i,
                  FaultFamilyName(spec.family), static_cast<unsigned long long>(spec.seed),
                  static_cast<unsigned long long>(spec.shards),
                  SignatureKindName(outcome.signature.kind),
                  outcome.signature.detail.empty() ? "" : ": ",
                  outcome.signature.detail.c_str());
    }
    if (!outcome.signature.failure()) {
      continue;
    }
    ++report.failures;
    bool known = false;
    for (const FuzzFinding& f : report.findings) {
      if (f.signature.fingerprint == outcome.signature.fingerprint) {
        known = true;
        break;
      }
    }
    if (known) {
      continue;
    }

    FuzzFinding finding;
    finding.spec_index = i;
    finding.spec = spec;
    finding.signature = outcome.signature;
    finding.shrunk = spec;
    if (options.shrink) {
      ShrinkOptions sopt = options.shrink_options;
      sopt.timeout_ms = options.timeout_ms;
      const ShrinkResult shrunk = ShrinkSpec(spec, outcome.signature, sopt);
      finding.shrunk = shrunk.spec;
      finding.shrink_runs = shrunk.runs;
      finding.shrink_accepted = shrunk.accepted;
    }
    if (!options.out_dir.empty()) {
      ReproBundle bundle;
      bundle.spec = finding.shrunk;
      bundle.signature = finding.signature;
      const SignatureKind kind = finding.signature.kind;
      const bool cooperative = kind == SignatureKind::kInvariantViolation ||
                               kind == SignatureKind::kDigestDivergence ||
                               kind == SignatureKind::kException;
      if (options.attach_obs && cooperative && !finding.shrunk.plant_wedge) {
        bundle.obs = CollectSpecObs(finding.shrunk);
      }
      bundle.notes = "fuzz seed " + std::to_string(options.seed) + ", spec #" +
                     std::to_string(i) + ", shrink " + std::to_string(finding.shrink_accepted) +
                     "/" + std::to_string(finding.shrink_runs) + " reductions";
      const std::string path =
          options.out_dir + "/bundle-" + HexFingerprint(finding.signature.fingerprint) + ".json";
      std::string error;
      if (WriteBundleFile(bundle, path, &error)) {
        finding.bundle_path = path;
      } else if (options.verbose) {
        std::printf("  bundle write failed: %s\n", error.c_str());
      }
    }
    report.findings.push_back(std::move(finding));
  }
  return report;
}

}  // namespace juggler
