// Delta-debugging shrinker: minimize a failing ScenarioSpec while
// preserving its FailureSignature.
//
// A raw fuzzer hit is a haystack — multiple fault windows, flap windows,
// megabytes of transfer. The shrinker runs a greedy ddmin-style loop over a
// fixed menu of reductions (drop a fault window, drop a flap window, halve
// a window's duration, halve its fault magnitudes, halve the transfer and
// the time budget), re-executing each candidate in a watchdogged child and
// keeping it iff the classified signature fingerprint still matches the
// target. Candidates that fail *differently* are rejected — the bundle must
// reproduce the failure that was found, not a cousin. Passes repeat until a
// full round accepts nothing or the run budget is spent.

#ifndef JUGGLER_SRC_FORENSICS_SHRINKER_H_
#define JUGGLER_SRC_FORENSICS_SHRINKER_H_

#include "src/forensics/scenario_spec.h"
#include "src/forensics/spec_executor.h"

namespace juggler {

struct ShrinkOptions {
  int timeout_ms = 30'000;  // per candidate child
  int max_runs = 200;       // total candidate executions
  uint64_t min_transfer_bytes = 200'000;
  TimeNs min_time_limit = Ms(100);
};

struct ShrinkResult {
  ScenarioSpec spec;           // minimized, timelines explicit
  FailureSignature signature;  // == the target (verified on every accept)
  int runs = 0;                // candidate executions spent
  int accepted = 0;            // reductions that kept the signature
};

// `failing` must reproduce `target` (the caller just observed it do so).
// Returns the smallest spec the budget found; worst case the materialized
// original.
ShrinkResult ShrinkSpec(const ScenarioSpec& failing, const FailureSignature& target,
                        const ShrinkOptions& options);

}  // namespace juggler

#endif  // JUGGLER_SRC_FORENSICS_SHRINKER_H_
