#include "src/forensics/repro_bundle.h"

#include <cstdio>
#include <utility>

namespace juggler {

Json ReproBundle::ToJson() const {
  Json j = Json::Object();
  j.Set("version", Json::Int(version));
  j.Set("signature", signature.ToJson());
  j.Set("spec", spec.ToJson());
  j.Set("notes", Json::Str(notes));
  if (!obs.is_null()) {
    j.Set("obs", obs);
  }
  return j;
}

bool ReproBundle::FromJson(const Json& json, ReproBundle* out, std::string* error) {
  if (!json.is_object()) {
    *error = "bundle: not an object";
    return false;
  }
  ReproBundle b;
  int64_t version = 1;
  if (!json.GetInt("version", &version) || !json.GetString("notes", &b.notes)) {
    *error = "bundle: field with wrong type";
    return false;
  }
  b.version = static_cast<int>(version);
  if (b.version != 1) {
    *error = "bundle: unsupported version " + std::to_string(b.version);
    return false;
  }
  const Json* sig = json.Find("signature");
  if (sig == nullptr || !FailureSignature::FromJson(*sig, &b.signature, error)) {
    if (sig == nullptr) {
      *error = "bundle: missing signature";
    }
    return false;
  }
  const Json* spec = json.Find("spec");
  if (spec == nullptr || !ScenarioSpec::FromJson(*spec, &b.spec, error)) {
    if (spec == nullptr) {
      *error = "bundle: missing spec";
    }
    return false;
  }
  if (const Json* obs = json.Find("obs")) {
    b.obs = *obs;  // optional: pre-observability bundles simply lack it
  }
  *out = std::move(b);
  return true;
}

bool WriteBundleFile(const ReproBundle& bundle, const std::string& path, std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    *error = "cannot open " + path + " for writing";
    return false;
  }
  const std::string text = bundle.ToJson().Dump(/*indent=*/2) + "\n";
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool ok = written == text.size() && std::fclose(f) == 0;
  if (!ok) {
    *error = "short write to " + path;
  }
  return ok;
}

bool ReadBundleFile(const std::string& path, ReproBundle* out, std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    *error = "cannot open " + path;
    return false;
  }
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  Json json;
  if (!Json::Parse(text, &json, error)) {
    *error = path + ": " + *error;
    return false;
  }
  return ReproBundle::FromJson(json, out, error);
}

ReplayResult ReplayBundle(const ReproBundle& bundle, int timeout_ms) {
  ReplayResult result;
  ExecOptions exec;
  exec.timeout_ms = timeout_ms;
  result.outcome = ExecuteSpec(bundle.spec, exec);
  result.observed = result.outcome.signature;
  result.reproduced = result.observed.fingerprint == bundle.signature.fingerprint;
  return result;
}

}  // namespace juggler
