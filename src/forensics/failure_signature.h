// FailureSignature: the classified identity of one failing run.
//
// The supervisor needs to answer two questions about every child it reaps:
// "did this fail, and is it the *same* failure I already have?". A signature
// is (kind, normalized detail, fingerprint): the kind is the taxonomy bucket
// (invariant violation, crash signal, sanitizer abort, deadlock timeout,
// digest divergence, ...), the detail is the first line of evidence with
// digit runs collapsed — byte counts, sequence numbers and timestamps vary
// between a raw repro and its shrunk form, the shape of the message does
// not — and the fingerprint is an FNV-1a over both, stable enough to dedup
// findings and to assert that a replayed bundle reproduces *this* failure.

#ifndef JUGGLER_SRC_FORENSICS_FAILURE_SIGNATURE_H_
#define JUGGLER_SRC_FORENSICS_FAILURE_SIGNATURE_H_

#include <cstdint>
#include <string>

#include "src/util/json.h"

namespace juggler {

enum class SignatureKind : int {
  kClean = 0,           // no failure
  kInvariantViolation,  // StreamIntegrityChecker / JugglerAuditor / incomplete
  kException,           // a std::exception escaped the run (EventLoopCallbackError)
  kCrashSignal,         // child died by signal (JUG_CHECK abort, segfault)
  kSanitizerAbort,      // ASan/TSan/UBSan report on stderr
  kDeadlockTimeout,     // watchdog SIGKILLed a wedged child
  kDigestDivergence,    // --shards 1 and --shards N digests disagree
  kAbnormalExit,        // nonzero exit or unparseable report, cause unknown
};

const char* SignatureKindName(SignatureKind kind);
bool ParseSignatureKind(const std::string& name, SignatureKind* out);

// Digit runs collapsed to '#' (so "in 152 vs out 153" == "in 7 vs out 8"),
// everything past the first line dropped, length capped.
std::string NormalizeDetail(const std::string& raw);

struct FailureSignature {
  SignatureKind kind = SignatureKind::kClean;
  std::string detail;        // already normalized
  uint64_t fingerprint = 0;  // FNV-1a over kind name + '\0' + detail

  bool failure() const { return kind != SignatureKind::kClean; }

  bool operator==(const FailureSignature& other) const {
    return kind == other.kind && detail == other.detail && fingerprint == other.fingerprint;
  }

  Json ToJson() const;
  static bool FromJson(const Json& json, FailureSignature* out, std::string* error);
};

// Builds a signature, normalizing `raw_detail` and computing the fingerprint.
FailureSignature MakeSignature(SignatureKind kind, const std::string& raw_detail);

}  // namespace juggler

#endif  // JUGGLER_SRC_FORENSICS_FAILURE_SIGNATURE_H_
