#include "src/forensics/failure_signature.h"

namespace juggler {
namespace {

constexpr size_t kMaxDetail = 200;

uint64_t Fnv1a(const std::string& kind_name, const std::string& detail) {
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](char c) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  };
  for (char c : kind_name) {
    mix(c);
  }
  mix('\0');
  for (char c : detail) {
    mix(c);
  }
  return h;
}

constexpr SignatureKind kAllKinds[] = {
    SignatureKind::kClean,          SignatureKind::kInvariantViolation,
    SignatureKind::kException,      SignatureKind::kCrashSignal,
    SignatureKind::kSanitizerAbort, SignatureKind::kDeadlockTimeout,
    SignatureKind::kDigestDivergence, SignatureKind::kAbnormalExit,
};

}  // namespace

const char* SignatureKindName(SignatureKind kind) {
  switch (kind) {
    case SignatureKind::kClean:
      return "clean";
    case SignatureKind::kInvariantViolation:
      return "invariant-violation";
    case SignatureKind::kException:
      return "exception";
    case SignatureKind::kCrashSignal:
      return "crash-signal";
    case SignatureKind::kSanitizerAbort:
      return "sanitizer-abort";
    case SignatureKind::kDeadlockTimeout:
      return "deadlock-timeout";
    case SignatureKind::kDigestDivergence:
      return "digest-divergence";
    case SignatureKind::kAbnormalExit:
      return "abnormal-exit";
  }
  return "?";
}

bool ParseSignatureKind(const std::string& name, SignatureKind* out) {
  for (SignatureKind k : kAllKinds) {
    if (name == SignatureKindName(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

std::string NormalizeDetail(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  bool in_digits = false;
  for (char c : raw) {
    if (c == '\n' || c == '\r') {
      break;  // first line only
    }
    if (c >= '0' && c <= '9') {
      if (!in_digits) {
        out.push_back('#');
        in_digits = true;
      }
      continue;
    }
    in_digits = false;
    out.push_back(c);
    if (out.size() >= kMaxDetail) {
      break;
    }
  }
  return out;
}

FailureSignature MakeSignature(SignatureKind kind, const std::string& raw_detail) {
  FailureSignature s;
  s.kind = kind;
  s.detail = NormalizeDetail(raw_detail);
  s.fingerprint = Fnv1a(SignatureKindName(kind), s.detail);
  return s;
}

Json FailureSignature::ToJson() const {
  Json j = Json::Object();
  j.Set("kind", Json::Str(SignatureKindName(kind)));
  j.Set("detail", Json::Str(detail));
  j.Set("fingerprint", Json::Uint(fingerprint));
  return j;
}

bool FailureSignature::FromJson(const Json& json, FailureSignature* out, std::string* error) {
  if (!json.is_object()) {
    *error = "signature: not an object";
    return false;
  }
  std::string kind_name = "clean";
  FailureSignature s;
  if (!json.GetString("kind", &kind_name) || !json.GetString("detail", &s.detail) ||
      !json.GetUint("fingerprint", &s.fingerprint)) {
    *error = "signature: field with wrong type";
    return false;
  }
  if (!ParseSignatureKind(kind_name, &s.kind)) {
    *error = "signature: unknown kind \"" + kind_name + "\"";
    return false;
  }
  *out = s;
  return true;
}

}  // namespace juggler
