#include "src/forensics/scenario_spec.h"

#include <utility>

#include "src/fault/fault_json.h"

namespace juggler {
namespace {

// Every key ToJson() can emit; FromJson preserves anything else verbatim
// in `extra` so future fields survive a round trip through this build.
bool IsKnownSpecKey(const std::string& key) {
  static const char* const kKnown[] = {
      "seed",
      "family",
      "transfer_bytes",
      "time_limit_ns",
      "num_windows",
      "link_rate_bps",
      "base_delay_ns",
      "reorder_delay_ns",
      "int_coalesce_ns",
      "inseq_timeout_ns",
      "ofo_timeout_ns",
      "max_flows",
      "shards",
      "shard_mailbox_capacity",
      "check_shard_divergence",
      "use_explicit_faults",
      "faults",
      "use_explicit_flaps",
      "flaps",
      "plant_flush_skew",
      "plant_wedge",
      "rx_driver",
      "plant_corec_wedge",
      "app_kind",
      "app_sessions",
      "app_requests_per_session",
      "app_request_bytes",
      "app_response_bytes",
      "app_chunk_bytes",
      "app_transfer_bytes",
      "app_issue_interval_ns",
      "app_attempt_timeout_ns",
      "app_deadline_ns",
      "app_max_attempts",
      "app_backoff_base_ns",
      "app_backoff_max_ns",
      "app_jitter_pct",
      "plant_stale_token",
      "overload",
      "overload_pool_capacity",
      "overload_ring_capacity",
  };
  for (const char* known : kKnown) {
    if (key == known) {
      return true;
    }
  }
  return false;
}

}  // namespace

ChaosOptions ScenarioSpec::ToChaosOptions() const {
  ChaosOptions opt;
  opt.seed = seed;
  opt.family = family;
  opt.transfer_bytes = transfer_bytes;
  opt.time_limit = time_limit;
  opt.reorder_delay = reorder_delay;
  opt.num_windows = num_windows;
  opt.audit = true;
  opt.shards = static_cast<size_t>(shards);
  opt.shard_mailbox_capacity = static_cast<size_t>(shard_mailbox_capacity);
  opt.link_rate_bps = link_rate_bps;
  opt.base_delay = base_delay;
  opt.int_coalesce = int_coalesce;
  opt.inseq_timeout = inseq_timeout;
  opt.ofo_timeout = ofo_timeout;
  opt.max_flows = static_cast<size_t>(max_flows);
  opt.use_explicit_faults = use_explicit_faults;
  opt.fault_override = faults;
  opt.use_explicit_flaps = use_explicit_flaps;
  opt.flap_override = flaps;
  opt.plant_flush_skew = plant_flush_skew;
  opt.rx_driver = rx_driver;
  // Depth 1: wedge at the very first out-of-order stall the hand-off sees.
  opt.plant_corec_wedge_depth = plant_corec_wedge ? 1 : 0;
  opt.overload.windows = overload_windows;
  opt.overload.pool_capacity = static_cast<size_t>(overload_pool_capacity);
  opt.overload.ring_capacity = static_cast<size_t>(overload_ring_capacity);
  opt.app = app;
  return opt;
}

void ScenarioSpec::Materialize() {
  const ChaosOptions opt = ToChaosOptions();
  if (!use_explicit_faults) {
    faults = DeriveChaosFaults(opt);
    use_explicit_faults = true;
  }
  if (!use_explicit_flaps) {
    flaps = DeriveChaosFlaps(opt);
    use_explicit_flaps = true;
  }
}

size_t ScenarioSpec::TimelineEvents() const {
  const ChaosOptions opt = ToChaosOptions();
  const size_t fault_windows =
      use_explicit_faults ? faults.windows().size() : DeriveChaosFaults(opt).windows().size();
  const size_t flap_windows =
      use_explicit_flaps ? flaps.size() : DeriveChaosFlaps(opt).size();
  return fault_windows + flap_windows + overload_windows.size();
}

Json ScenarioSpec::ToJson() const {
  Json j = Json::Object();
  j.Set("seed", Json::Uint(seed));
  j.Set("family", Json::Str(FaultFamilyName(family)));
  j.Set("transfer_bytes", Json::Uint(transfer_bytes));
  j.Set("time_limit_ns", Json::Int(time_limit));
  j.Set("num_windows", Json::Int(num_windows));
  j.Set("link_rate_bps", Json::Int(link_rate_bps));
  j.Set("base_delay_ns", Json::Int(base_delay));
  j.Set("reorder_delay_ns", Json::Int(reorder_delay));
  j.Set("int_coalesce_ns", Json::Int(int_coalesce));
  j.Set("inseq_timeout_ns", Json::Int(inseq_timeout));
  j.Set("ofo_timeout_ns", Json::Int(ofo_timeout));
  j.Set("max_flows", Json::Uint(max_flows));
  j.Set("shards", Json::Uint(shards));
  j.Set("shard_mailbox_capacity", Json::Uint(shard_mailbox_capacity));
  j.Set("check_shard_divergence", Json::Bool(check_shard_divergence));
  j.Set("use_explicit_faults", Json::Bool(use_explicit_faults));
  if (use_explicit_faults) {
    j.Set("faults", FaultTimelineToJson(faults));
  }
  j.Set("use_explicit_flaps", Json::Bool(use_explicit_flaps));
  if (use_explicit_flaps) {
    j.Set("flaps", FlapWindowsToJson(flaps));
  }
  if (plant_flush_skew) {
    j.Set("plant_flush_skew", Json::Bool(true));
  }
  if (plant_wedge) {
    j.Set("plant_wedge", Json::Bool(true));
  }
  // Driver key only when non-default: pre-COREC specs (and every rss spec)
  // re-serialize byte-identically.
  if (rx_driver != RxDriverKind::kRss) {
    j.Set("rx_driver", Json::Str(RxDriverKindName(rx_driver)));
  }
  if (plant_corec_wedge) {
    j.Set("plant_corec_wedge", Json::Bool(true));
  }
  // App-workload block only when one rides the run: specs written before
  // the app layer existed re-serialize byte-identically.
  if (app.enabled()) {
    j.Set("app_kind", Json::Str(AppWorkloadKindName(app.kind)));
    j.Set("app_sessions", Json::Uint(app.sessions));
    j.Set("app_requests_per_session", Json::Uint(app.requests_per_session));
    j.Set("app_request_bytes", Json::Uint(app.request_bytes));
    j.Set("app_response_bytes", Json::Uint(app.response_bytes));
    j.Set("app_chunk_bytes", Json::Uint(app.chunk_bytes));
    j.Set("app_transfer_bytes", Json::Uint(app.transfer_bytes_per_session));
    j.Set("app_issue_interval_ns", Json::Int(app.issue_interval));
    j.Set("app_attempt_timeout_ns", Json::Int(app.retry.attempt_timeout));
    j.Set("app_deadline_ns", Json::Int(app.retry.deadline));
    j.Set("app_max_attempts", Json::Uint(app.retry.max_attempts));
    j.Set("app_backoff_base_ns", Json::Int(app.retry.backoff_base));
    j.Set("app_backoff_max_ns", Json::Int(app.retry.backoff_max));
    j.Set("app_jitter_pct", Json::Uint(app.retry.jitter_pct));
    if (app.plant_stale_token) {
      j.Set("plant_stale_token", Json::Bool(true));
    }
  }
  // Overload block only when pressure windows ride the run, same contract
  // as the app block: pre-overload specs re-serialize byte-identically.
  if (!overload_windows.empty()) {
    j.Set("overload", OverloadWindowsToJson(overload_windows));
    j.Set("overload_pool_capacity", Json::Uint(overload_pool_capacity));
    j.Set("overload_ring_capacity", Json::Uint(overload_ring_capacity));
  }
  // Unknown members last, in the order the original document carried them.
  // One normalization pass later, re-serialization is a fixed point.
  for (const auto& member : extra.members()) {
    j.Set(member.first, member.second);
  }
  return j;
}

bool ScenarioSpec::FromJson(const Json& json, ScenarioSpec* out, std::string* error) {
  if (!json.is_object()) {
    *error = "spec: not an object";
    return false;
  }
  ScenarioSpec s;
  std::string family_name = FaultFamilyName(s.family);
  int64_t num_windows = s.num_windows;
  if (!json.GetUint("seed", &s.seed) || !json.GetString("family", &family_name) ||
      !json.GetUint("transfer_bytes", &s.transfer_bytes) ||
      !json.GetInt("time_limit_ns", &s.time_limit) || !json.GetInt("num_windows", &num_windows) ||
      !json.GetInt("link_rate_bps", &s.link_rate_bps) ||
      !json.GetInt("base_delay_ns", &s.base_delay) ||
      !json.GetInt("reorder_delay_ns", &s.reorder_delay) ||
      !json.GetInt("int_coalesce_ns", &s.int_coalesce) ||
      !json.GetInt("inseq_timeout_ns", &s.inseq_timeout) ||
      !json.GetInt("ofo_timeout_ns", &s.ofo_timeout) || !json.GetUint("max_flows", &s.max_flows) ||
      !json.GetUint("shards", &s.shards) ||
      !json.GetUint("shard_mailbox_capacity", &s.shard_mailbox_capacity) ||
      !json.GetBool("check_shard_divergence", &s.check_shard_divergence) ||
      !json.GetBool("use_explicit_faults", &s.use_explicit_faults) ||
      !json.GetBool("use_explicit_flaps", &s.use_explicit_flaps) ||
      !json.GetBool("plant_flush_skew", &s.plant_flush_skew) ||
      !json.GetBool("plant_wedge", &s.plant_wedge) ||
      !json.GetBool("plant_corec_wedge", &s.plant_corec_wedge)) {
    *error = "spec: field with wrong type";
    return false;
  }
  if (!ParseFaultFamily(family_name.c_str(), &s.family)) {
    *error = "spec: unknown family \"" + family_name + "\"";
    return false;
  }
  // Receive driver: absent-tolerant (pre-COREC specs carry no key).
  std::string rx_driver_name = RxDriverKindName(s.rx_driver);
  if (!json.GetString("rx_driver", &rx_driver_name)) {
    *error = "spec: rx_driver with wrong type";
    return false;
  }
  if (!ParseRxDriverKind(rx_driver_name, &s.rx_driver)) {
    *error = "spec: unknown rx_driver \"" + rx_driver_name + "\"";
    return false;
  }
  s.num_windows = static_cast<int>(num_windows);
  if (s.transfer_bytes == 0 || s.time_limit <= 0 || s.num_windows < 1 || s.link_rate_bps <= 0 ||
      s.base_delay <= 0 || s.reorder_delay < 0 || s.int_coalesce < 0 || s.inseq_timeout <= 0 ||
      s.ofo_timeout <= 0 || s.max_flows == 0) {
    *error = "spec: parameter out of range";
    return false;
  }
  if (const Json* f = json.Find("faults")) {
    if (!FaultTimelineFromJson(*f, &s.faults, error)) {
      return false;
    }
  }
  if (const Json* f = json.Find("flaps")) {
    if (!FlapWindowsFromJson(*f, &s.flaps, error)) {
      return false;
    }
  }
  // App workload: every field absent-tolerant (pre-app specs carry none).
  std::string app_kind_name = AppWorkloadKindName(s.app.kind);
  uint64_t app_sessions = s.app.sessions;
  uint64_t app_requests = s.app.requests_per_session;
  uint64_t app_max_attempts = s.app.retry.max_attempts;
  uint64_t app_jitter_pct = s.app.retry.jitter_pct;
  if (!json.GetString("app_kind", &app_kind_name) ||
      !json.GetUint("app_sessions", &app_sessions) ||
      !json.GetUint("app_requests_per_session", &app_requests) ||
      !json.GetUint("app_request_bytes", &s.app.request_bytes) ||
      !json.GetUint("app_response_bytes", &s.app.response_bytes) ||
      !json.GetUint("app_chunk_bytes", &s.app.chunk_bytes) ||
      !json.GetUint("app_transfer_bytes", &s.app.transfer_bytes_per_session) ||
      !json.GetInt("app_issue_interval_ns", &s.app.issue_interval) ||
      !json.GetInt("app_attempt_timeout_ns", &s.app.retry.attempt_timeout) ||
      !json.GetInt("app_deadline_ns", &s.app.retry.deadline) ||
      !json.GetUint("app_max_attempts", &app_max_attempts) ||
      !json.GetInt("app_backoff_base_ns", &s.app.retry.backoff_base) ||
      !json.GetInt("app_backoff_max_ns", &s.app.retry.backoff_max) ||
      !json.GetUint("app_jitter_pct", &app_jitter_pct) ||
      !json.GetBool("plant_stale_token", &s.app.plant_stale_token)) {
    *error = "spec: app field with wrong type";
    return false;
  }
  if (!ParseAppWorkloadKind(app_kind_name.c_str(), &s.app.kind)) {
    *error = "spec: unknown app_kind \"" + app_kind_name + "\"";
    return false;
  }
  s.app.sessions = static_cast<uint32_t>(app_sessions);
  s.app.requests_per_session = static_cast<uint32_t>(app_requests);
  s.app.retry.max_attempts = static_cast<uint32_t>(app_max_attempts);
  s.app.retry.jitter_pct = static_cast<uint32_t>(app_jitter_pct);
  if (s.app.enabled()) {
    if (s.app.sessions == 0 || s.app.request_bytes == 0 || s.app.response_bytes == 0 ||
        s.app.chunk_bytes == 0 || s.app.transfer_bytes_per_session == 0 ||
        s.app.issue_interval < 0 || s.app.retry.attempt_timeout <= 0 ||
        s.app.retry.deadline <= 0 || s.app.retry.max_attempts == 0 ||
        s.app.retry.backoff_base < 0 || s.app.retry.backoff_max < s.app.retry.backoff_base ||
        s.app.retry.jitter_pct > 100) {
      *error = "spec: app parameter out of range";
      return false;
    }
  }
  // Overload block: absent-tolerant like the app block.
  if (const Json* o = json.Find("overload")) {
    if (!OverloadWindowsFromJson(*o, &s.overload_windows, error)) {
      return false;
    }
  }
  if (!json.GetUint("overload_pool_capacity", &s.overload_pool_capacity) ||
      !json.GetUint("overload_ring_capacity", &s.overload_ring_capacity)) {
    *error = "spec: overload field with wrong type";
    return false;
  }
  for (const auto& member : json.members()) {
    if (!IsKnownSpecKey(member.first)) {
      s.extra.Set(member.first, member.second);
    }
  }
  *out = std::move(s);
  return true;
}

ScenarioSpec SampleScenarioSpec(Rng* rng, const SampleLimits& limits) {
  ScenarioSpec s;
  s.seed = rng->NextU64();
  // kMixed plus the five concrete families, equally weighted.
  const uint64_t pick = rng->NextBounded(kNumFaultFamilies + 1);
  s.family = pick == kNumFaultFamilies ? FaultFamily::kMixed : static_cast<FaultFamily>(pick);
  s.transfer_bytes =
      limits.min_transfer_bytes +
      rng->NextBounded(limits.max_transfer_bytes - limits.min_transfer_bytes + 1);
  s.num_windows = 1 + static_cast<int>(rng->NextBounded(static_cast<uint64_t>(limits.max_windows)));
  s.reorder_delay = rng->NextInRange(Us(100), Us(400));
  s.int_coalesce = rng->NextInRange(Us(60), Us(200));
  // inseq below ofo, ofo comfortably above the reorder delay the family
  // generators assume — the sampler explores timing, not configurations the
  // stack documents as unsupported.
  s.inseq_timeout = rng->NextInRange(Us(30), Us(90));
  s.ofo_timeout = s.reorder_delay + rng->NextInRange(Us(50), Us(300));
  s.max_flows = 8 + rng->NextBounded(57);  // [8, 64]
  if (rng->NextBool(0.3)) {
    s.shards = 1 + rng->NextBounded(4);  // sharded engine path
  }
  s.check_shard_divergence = rng->NextBool(limits.shard_divergence_prob);
  // App-workload draws come from a stream derived from the spec's own seed,
  // not from `rng`: adding (or later extending) them consumes nothing from
  // the main stream, so every pre-app pinned fuzz seed still samples the
  // exact same specs.
  Rng app_rng(s.seed ^ 0xA02B'DBF7'BB3C'0A7ULL);
  if (app_rng.NextBool(limits.app_prob)) {
    AppWorkloadOptions& a = s.app;
    a.kind = static_cast<AppWorkloadKind>(1 + app_rng.NextBounded(4));
    a.sessions = 1 + static_cast<uint32_t>(app_rng.NextBounded(3));            // [1, 3]
    a.requests_per_session = 2 + static_cast<uint32_t>(app_rng.NextBounded(8));  // [2, 9]
    a.request_bytes = 128 + app_rng.NextBounded(897);        // [128, 1024]
    a.response_bytes = 4'096 + app_rng.NextBounded(20'481);  // [4 KiB, 24 KiB]
    a.chunk_bytes = 16'384 + app_rng.NextBounded(49'153);    // [16 KiB, 64 KiB]
    // At most 3 chunks per session: sequential bulk sessions fit inside
    // time_limit even if every chunk runs to its 160 ms deadline.
    a.transfer_bytes_per_session = a.chunk_bytes * (1 + app_rng.NextBounded(3));
    a.issue_interval = app_rng.NextInRange(Ms(1), Ms(3));
    // Retry policy stays at the defaults: generous deadlines so a correct
    // stack always completes — the fuzzer hunts bugs, not resource limits.
  }
  // Receive-driver draw from its own seed-derived stream, like the app and
  // overload draws: pinned fuzz seeds keep sampling the exact specs they
  // always did, they just sometimes run them on the COREC driver now.
  Rng rxd_rng(s.seed ^ 0xC04E'C0DD'5EED'F00DULL);
  if (rxd_rng.NextBool(limits.corec_prob)) {
    s.rx_driver = RxDriverKind::kCorec;
  }
  // Overload draws come from their own seed-derived stream for the same
  // reason: a pinned fuzz seed samples the same non-overload fields whether
  // or not this build knows about overload windows.
  Rng ovl_rng(s.seed ^ 0x0B'E7D0'AD5E'ED11ULL);
  if (ovl_rng.NextBool(limits.overload_prob)) {
    s.overload_pool_capacity = 1'024 + ovl_rng.NextBounded(7'169);  // [1 Ki, 8 Ki]
    const int count = 1 + static_cast<int>(ovl_rng.NextBounded(2));
    // Sequential non-overlapping windows early in the run: pressure flares
    // and subsides while the transfer is in flight, and the tail of
    // time_limit is always pressure-free recovery time.
    TimeNs cursor = Ms(5) + ovl_rng.NextInRange(0, Ms(10));
    for (int i = 0; i < count; ++i) {
      OverloadWindow w;
      w.kind = static_cast<OverloadKind>(ovl_rng.NextBounded(3));
      w.start = cursor;
      w.end = w.start + ovl_rng.NextInRange(Ms(5), Ms(25));
      w.flows = 32 + static_cast<uint32_t>(ovl_rng.NextBounded(97));            // [32, 128]
      w.packets_per_flow = 2 + static_cast<uint32_t>(ovl_rng.NextBounded(5));   // [2, 6]
      w.burst_interval = ovl_rng.NextInRange(Us(100), Us(400));
      w.cap_pct = 10 + static_cast<uint32_t>(ovl_rng.NextBounded(41));          // [10, 50]
      s.overload_windows.push_back(w);
      cursor = w.end + ovl_rng.NextInRange(Ms(2), Ms(10));
    }
  }
  return s;
}

}  // namespace juggler
