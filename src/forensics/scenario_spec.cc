#include "src/forensics/scenario_spec.h"

#include <utility>

#include "src/fault/fault_json.h"

namespace juggler {

ChaosOptions ScenarioSpec::ToChaosOptions() const {
  ChaosOptions opt;
  opt.seed = seed;
  opt.family = family;
  opt.transfer_bytes = transfer_bytes;
  opt.time_limit = time_limit;
  opt.reorder_delay = reorder_delay;
  opt.num_windows = num_windows;
  opt.audit = true;
  opt.shards = static_cast<size_t>(shards);
  opt.shard_mailbox_capacity = static_cast<size_t>(shard_mailbox_capacity);
  opt.link_rate_bps = link_rate_bps;
  opt.base_delay = base_delay;
  opt.int_coalesce = int_coalesce;
  opt.inseq_timeout = inseq_timeout;
  opt.ofo_timeout = ofo_timeout;
  opt.max_flows = static_cast<size_t>(max_flows);
  opt.use_explicit_faults = use_explicit_faults;
  opt.fault_override = faults;
  opt.use_explicit_flaps = use_explicit_flaps;
  opt.flap_override = flaps;
  opt.plant_flush_skew = plant_flush_skew;
  return opt;
}

void ScenarioSpec::Materialize() {
  const ChaosOptions opt = ToChaosOptions();
  if (!use_explicit_faults) {
    faults = DeriveChaosFaults(opt);
    use_explicit_faults = true;
  }
  if (!use_explicit_flaps) {
    flaps = DeriveChaosFlaps(opt);
    use_explicit_flaps = true;
  }
}

size_t ScenarioSpec::TimelineEvents() const {
  const ChaosOptions opt = ToChaosOptions();
  const size_t fault_windows =
      use_explicit_faults ? faults.windows().size() : DeriveChaosFaults(opt).windows().size();
  const size_t flap_windows =
      use_explicit_flaps ? flaps.size() : DeriveChaosFlaps(opt).size();
  return fault_windows + flap_windows;
}

Json ScenarioSpec::ToJson() const {
  Json j = Json::Object();
  j.Set("seed", Json::Uint(seed));
  j.Set("family", Json::Str(FaultFamilyName(family)));
  j.Set("transfer_bytes", Json::Uint(transfer_bytes));
  j.Set("time_limit_ns", Json::Int(time_limit));
  j.Set("num_windows", Json::Int(num_windows));
  j.Set("link_rate_bps", Json::Int(link_rate_bps));
  j.Set("base_delay_ns", Json::Int(base_delay));
  j.Set("reorder_delay_ns", Json::Int(reorder_delay));
  j.Set("int_coalesce_ns", Json::Int(int_coalesce));
  j.Set("inseq_timeout_ns", Json::Int(inseq_timeout));
  j.Set("ofo_timeout_ns", Json::Int(ofo_timeout));
  j.Set("max_flows", Json::Uint(max_flows));
  j.Set("shards", Json::Uint(shards));
  j.Set("shard_mailbox_capacity", Json::Uint(shard_mailbox_capacity));
  j.Set("check_shard_divergence", Json::Bool(check_shard_divergence));
  j.Set("use_explicit_faults", Json::Bool(use_explicit_faults));
  if (use_explicit_faults) {
    j.Set("faults", FaultTimelineToJson(faults));
  }
  j.Set("use_explicit_flaps", Json::Bool(use_explicit_flaps));
  if (use_explicit_flaps) {
    j.Set("flaps", FlapWindowsToJson(flaps));
  }
  if (plant_flush_skew) {
    j.Set("plant_flush_skew", Json::Bool(true));
  }
  if (plant_wedge) {
    j.Set("plant_wedge", Json::Bool(true));
  }
  return j;
}

bool ScenarioSpec::FromJson(const Json& json, ScenarioSpec* out, std::string* error) {
  if (!json.is_object()) {
    *error = "spec: not an object";
    return false;
  }
  ScenarioSpec s;
  std::string family_name = FaultFamilyName(s.family);
  int64_t num_windows = s.num_windows;
  if (!json.GetUint("seed", &s.seed) || !json.GetString("family", &family_name) ||
      !json.GetUint("transfer_bytes", &s.transfer_bytes) ||
      !json.GetInt("time_limit_ns", &s.time_limit) || !json.GetInt("num_windows", &num_windows) ||
      !json.GetInt("link_rate_bps", &s.link_rate_bps) ||
      !json.GetInt("base_delay_ns", &s.base_delay) ||
      !json.GetInt("reorder_delay_ns", &s.reorder_delay) ||
      !json.GetInt("int_coalesce_ns", &s.int_coalesce) ||
      !json.GetInt("inseq_timeout_ns", &s.inseq_timeout) ||
      !json.GetInt("ofo_timeout_ns", &s.ofo_timeout) || !json.GetUint("max_flows", &s.max_flows) ||
      !json.GetUint("shards", &s.shards) ||
      !json.GetUint("shard_mailbox_capacity", &s.shard_mailbox_capacity) ||
      !json.GetBool("check_shard_divergence", &s.check_shard_divergence) ||
      !json.GetBool("use_explicit_faults", &s.use_explicit_faults) ||
      !json.GetBool("use_explicit_flaps", &s.use_explicit_flaps) ||
      !json.GetBool("plant_flush_skew", &s.plant_flush_skew) ||
      !json.GetBool("plant_wedge", &s.plant_wedge)) {
    *error = "spec: field with wrong type";
    return false;
  }
  if (!ParseFaultFamily(family_name.c_str(), &s.family)) {
    *error = "spec: unknown family \"" + family_name + "\"";
    return false;
  }
  s.num_windows = static_cast<int>(num_windows);
  if (s.transfer_bytes == 0 || s.time_limit <= 0 || s.num_windows < 1 || s.link_rate_bps <= 0 ||
      s.base_delay <= 0 || s.reorder_delay < 0 || s.int_coalesce < 0 || s.inseq_timeout <= 0 ||
      s.ofo_timeout <= 0 || s.max_flows == 0) {
    *error = "spec: parameter out of range";
    return false;
  }
  if (const Json* f = json.Find("faults")) {
    if (!FaultTimelineFromJson(*f, &s.faults, error)) {
      return false;
    }
  }
  if (const Json* f = json.Find("flaps")) {
    if (!FlapWindowsFromJson(*f, &s.flaps, error)) {
      return false;
    }
  }
  *out = std::move(s);
  return true;
}

ScenarioSpec SampleScenarioSpec(Rng* rng, const SampleLimits& limits) {
  ScenarioSpec s;
  s.seed = rng->NextU64();
  // kMixed plus the five concrete families, equally weighted.
  const uint64_t pick = rng->NextBounded(kNumFaultFamilies + 1);
  s.family = pick == kNumFaultFamilies ? FaultFamily::kMixed : static_cast<FaultFamily>(pick);
  s.transfer_bytes =
      limits.min_transfer_bytes +
      rng->NextBounded(limits.max_transfer_bytes - limits.min_transfer_bytes + 1);
  s.num_windows = 1 + static_cast<int>(rng->NextBounded(static_cast<uint64_t>(limits.max_windows)));
  s.reorder_delay = rng->NextInRange(Us(100), Us(400));
  s.int_coalesce = rng->NextInRange(Us(60), Us(200));
  // inseq below ofo, ofo comfortably above the reorder delay the family
  // generators assume — the sampler explores timing, not configurations the
  // stack documents as unsupported.
  s.inseq_timeout = rng->NextInRange(Us(30), Us(90));
  s.ofo_timeout = s.reorder_delay + rng->NextInRange(Us(50), Us(300));
  s.max_flows = 8 + rng->NextBounded(57);  // [8, 64]
  if (rng->NextBool(0.3)) {
    s.shards = 1 + rng->NextBounded(4);  // sharded engine path
  }
  s.check_shard_divergence = rng->NextBool(limits.shard_divergence_prob);
  return s;
}

}  // namespace juggler
