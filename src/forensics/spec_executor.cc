#include "src/forensics/spec_executor.h"

#include <utility>

namespace juggler {
namespace {

bool LooksLikeSanitizerReport(const std::string& stderr_text) {
  return stderr_text.find("AddressSanitizer") != std::string::npos ||
         stderr_text.find("ThreadSanitizer") != std::string::npos ||
         stderr_text.find("LeakSanitizer") != std::string::npos ||
         stderr_text.find("runtime error:") != std::string::npos;
}

// First line of stderr that carries information (JUG_CHECK / sanitizer
// headline), for signature detail.
std::string FirstInterestingLine(const std::string& text) {
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) {
      end = text.size();
    }
    if (end > start + 1) {
      return text.substr(start, end - start);
    }
    start = end + 1;
  }
  return "";
}

}  // namespace

Json SpecRunReport::ToJson() const {
  Json j = Json::Object();
  j.Set("ok", Json::Bool(ok));
  j.Set("completed", Json::Bool(completed));
  j.Set("streams_match", Json::Bool(streams_match));
  j.Set("violations", Json::Uint(violations));
  Json msgs = Json::Array();
  for (const std::string& m : violation_messages) {
    msgs.Push(Json::Str(m));
  }
  j.Set("violation_messages", std::move(msgs));
  j.Set("digest", Json::Uint(digest));
  j.Set("digest_shard1", Json::Uint(digest_shard1));
  j.Set("digest_shard2", Json::Uint(digest_shard2));
  j.Set("diverged", Json::Bool(diverged));
  j.Set("exception", Json::Str(exception));
  j.Set("mailbox_hwm", Json::Uint(mailbox_hwm));
  j.Set("mailbox_overflows", Json::Uint(mailbox_overflows));
  j.Set("app_issued", Json::Uint(app_issued));
  j.Set("app_retries", Json::Uint(app_retries));
  j.Set("app_timeouts", Json::Uint(app_timeouts));
  j.Set("app_executions", Json::Uint(app_executions));
  j.Set("app_duplicates_suppressed", Json::Uint(app_duplicates_suppressed));
  return j;
}

bool SpecRunReport::FromJson(const Json& json, SpecRunReport* out, std::string* error) {
  if (!json.is_object()) {
    *error = "report: not an object";
    return false;
  }
  SpecRunReport r;
  if (!json.GetBool("ok", &r.ok) || !json.GetBool("completed", &r.completed) ||
      !json.GetBool("streams_match", &r.streams_match) ||
      !json.GetUint("violations", &r.violations) || !json.GetUint("digest", &r.digest) ||
      !json.GetUint("digest_shard1", &r.digest_shard1) ||
      !json.GetUint("digest_shard2", &r.digest_shard2) || !json.GetBool("diverged", &r.diverged) ||
      !json.GetString("exception", &r.exception)) {
    *error = "report: field with wrong type";
    return false;
  }
  // Optional (absent in pre-observability / pre-app reports): GetUint
  // leaves the zero default in place when the key is missing.
  if (!json.GetUint("mailbox_hwm", &r.mailbox_hwm) ||
      !json.GetUint("mailbox_overflows", &r.mailbox_overflows) ||
      !json.GetUint("app_issued", &r.app_issued) ||
      !json.GetUint("app_retries", &r.app_retries) ||
      !json.GetUint("app_timeouts", &r.app_timeouts) ||
      !json.GetUint("app_executions", &r.app_executions) ||
      !json.GetUint("app_duplicates_suppressed", &r.app_duplicates_suppressed)) {
    *error = "report: field with wrong type";
    return false;
  }
  if (const Json* msgs = json.Find("violation_messages")) {
    if (!msgs->is_array()) {
      *error = "report: violation_messages not an array";
      return false;
    }
    for (const Json& m : msgs->items()) {
      r.violation_messages.push_back(m.AsString());
    }
  }
  *out = std::move(r);
  return true;
}

SpecRunReport RunSpecInProcess(const ScenarioSpec& spec) {
  SpecRunReport rep;
  if (spec.plant_wedge) {
    // Test-only: simulate a wedged child (stuck barrier, livelocked loop).
    // volatile makes the spin a side effect the compiler must keep.
    volatile uint64_t spin = 0;
    for (;;) {
      ++spin;
    }
  }
  ChaosOptions opt = spec.ToChaosOptions();
  // Metrics snapshotting happens after the run finishes, so turning it on
  // here cannot perturb the datapath or the digest; it is how the mailbox
  // pressure counters reach the report (and thence the bundle).
  opt.obs.metrics = true;
  try {
    const ChaosResult r = RunChaos(opt);
    rep.ok = r.ok;
    rep.completed = r.juggler.completed && r.baseline.completed;
    rep.streams_match = r.streams_match;
    rep.violations = r.juggler.violations + r.baseline.violations;
    for (const auto& res : {r.juggler, r.baseline}) {
      for (const std::string& m : res.violation_messages) {
        rep.violation_messages.push_back(res.engine + ": " + m);
      }
    }
    rep.digest = r.juggler.digest;
    rep.app_issued = r.juggler.app.issued;
    rep.app_retries = r.juggler.app.retries;
    rep.app_timeouts = r.juggler.app.timeouts;
    rep.app_executions = r.juggler.app.executions;
    rep.app_duplicates_suppressed = r.juggler.app.duplicates_suppressed;
    rep.mailbox_hwm = r.juggler.obs.metrics.GaugeValue("sim.mailbox_high_watermark", "");
    rep.mailbox_overflows =
        r.juggler.obs.metrics.CounterValue("sim.mailbox_overflow_drops", "");
    if (spec.check_shard_divergence) {
      ChaosOptions o1 = opt;
      o1.shards = 1;
      ChaosOptions o2 = opt;
      o2.shards = 2;
      rep.digest_shard1 = RunChaosEngine(o1, /*use_juggler=*/true).digest;
      rep.digest_shard2 = RunChaosEngine(o2, /*use_juggler=*/true).digest;
      rep.diverged = rep.digest_shard1 != rep.digest_shard2;
    }
  } catch (const std::exception& e) {
    rep.exception = e.what();
  }
  return rep;
}

Json CollectSpecObs(const ScenarioSpec& spec) {
  Json obs = Json::Object();
  ChaosOptions opt = spec.ToChaosOptions();
  opt.obs.metrics = true;
  opt.obs.trace = true;
  try {
    const ChaosEngineResult r = RunChaosEngine(opt, /*use_juggler=*/true);
    obs.Set("metrics", r.obs.MetricsJson());
    obs.Set("trace", r.obs.TraceJson(ChaosTraceNamer()));
  } catch (const std::exception& e) {
    obs.Set("error", Json::Str(e.what()));
  }
  return obs;
}

SpecOutcome ExecuteSpec(const ScenarioSpec& spec, const ExecOptions& options) {
  SpecOutcome out;
  out.child = RunChildWithWatchdog(
      [&spec](int report_fd) {
        const SpecRunReport rep = RunSpecInProcess(spec);
        WriteAll(report_fd, rep.ToJson().Dump());
      },
      options.timeout_ms);

  const ChildResult& c = out.child;
  if (!c.forked) {
    out.signature = MakeSignature(SignatureKind::kAbnormalExit, "fork failed: " + c.error);
    return out;
  }
  if (c.timed_out) {
    out.signature = MakeSignature(SignatureKind::kDeadlockTimeout,
                                  "watchdog killed child after " + std::to_string(c.wall_ms) +
                                      "ms: " + FirstInterestingLine(c.stderr_text));
    return out;
  }
  if (c.crashed()) {
    const SignatureKind kind = LooksLikeSanitizerReport(c.stderr_text)
                                   ? SignatureKind::kSanitizerAbort
                                   : SignatureKind::kCrashSignal;
    out.signature = MakeSignature(kind, "signal " + std::to_string(c.term_signal) + ": " +
                                            FirstInterestingLine(c.stderr_text));
    return out;
  }
  if (c.exited && c.exit_code != 0) {
    const SignatureKind kind = LooksLikeSanitizerReport(c.stderr_text)
                                   ? SignatureKind::kSanitizerAbort
                                   : SignatureKind::kAbnormalExit;
    out.signature = MakeSignature(kind, "exit " + std::to_string(c.exit_code) + ": " +
                                            FirstInterestingLine(c.stderr_text));
    return out;
  }
  Json report_json;
  std::string error;
  if (!Json::Parse(c.report, &report_json, &error) ||
      !SpecRunReport::FromJson(report_json, &out.report, &error)) {
    out.signature = MakeSignature(SignatureKind::kAbnormalExit, "bad report: " + error);
    return out;
  }
  if (!out.report.exception.empty()) {
    out.signature = MakeSignature(SignatureKind::kException, out.report.exception);
    return out;
  }
  if (out.report.diverged) {
    out.signature =
        MakeSignature(SignatureKind::kDigestDivergence, "shards=1 vs shards=2 digests differ");
    return out;
  }
  if (!out.report.ok || out.report.violations > 0) {
    const std::string detail = out.report.violation_messages.empty()
                                   ? (out.report.streams_match ? "run not ok" : "stream mismatch")
                                   : out.report.violation_messages.front();
    out.signature = MakeSignature(SignatureKind::kInvariantViolation, detail);
    return out;
  }
  out.signature = MakeSignature(SignatureKind::kClean, "");
  return out;
}

}  // namespace juggler
