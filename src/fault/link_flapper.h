// Link/path failure modeling: scheduled blackhole windows and rate
// brown-outs on a Link, so load-balanced paths can flap mid-run.
//
// A LinkFlapper owns a list of FlapWindows against one Link and schedules
// SetDown()/SetUp() (or a temporary rate/queue-limit degradation) on the
// event loop. Windows are fixed at Start(); randomized schedules come from
// MakeRandomWindows, which draws every parameter from a caller-seeded Rng —
// the fault layer's determinism contract.

#ifndef JUGGLER_SRC_FAULT_LINK_FLAPPER_H_
#define JUGGLER_SRC_FAULT_LINK_FLAPPER_H_

#include <cstdint>
#include <vector>

#include "src/net/link.h"
#include "src/sim/event_loop.h"
#include "src/util/rng.h"
#include "src/util/time.h"

namespace juggler {

struct FlapWindow {
  TimeNs down_at = 0;
  TimeNs up_at = 0;
  // 0: full blackhole (SetDown/SetUp). > 0: the link stays up but its rate
  // degrades to this value for the window (brown-out).
  int64_t degraded_rate_bps = 0;
  // <= 0: leave the queue limit alone; > 0: shrink it for the window.
  int64_t degraded_queue_limit_bytes = 0;
};

class LinkFlapper {
 public:
  LinkFlapper(EventLoop* loop, Link* link, std::vector<FlapWindow> windows);

  // Schedules every window. Call once, before (or while) traffic flows.
  void Start();

  uint64_t flaps_started() const { return flaps_started_; }
  uint64_t flaps_finished() const { return flaps_finished_; }
  size_t num_windows() const { return windows_.size(); }

  // `count` windows of length [min_down, max_down] placed uniformly in
  // [horizon/8, horizon), non-overlapping (later windows are pushed past
  // earlier ones). With `blackhole` false, windows degrade the rate to
  // between 5% and 50% of `full_rate_bps` instead of going down.
  static std::vector<FlapWindow> MakeRandomWindows(Rng* rng, TimeNs horizon, int count,
                                                   TimeNs min_down, TimeNs max_down,
                                                   bool blackhole, int64_t full_rate_bps);

 private:
  void Apply(const FlapWindow& w);
  void Restore(const FlapWindow& w);

  EventLoop* loop_;
  Link* link_;
  std::vector<FlapWindow> windows_;
  int64_t original_rate_bps_;
  int64_t original_queue_limit_bytes_;
  uint64_t flaps_started_ = 0;
  uint64_t flaps_finished_ = 0;
  bool started_ = false;
};

}  // namespace juggler

#endif  // JUGGLER_SRC_FAULT_LINK_FLAPPER_H_
