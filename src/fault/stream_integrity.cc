#include "src/fault/stream_integrity.h"

#include <utility>

#include "src/util/logging.h"

namespace juggler {

namespace {

constexpr uint64_t kFnvPrime = 1099511628211ULL;

// The synthetic content of stream byte `pos`: a fixed position-derived value,
// standing in for payload bytes the simulator doesn't carry.
inline uint8_t StreamByte(uint64_t pos) {
  return static_cast<uint8_t>((pos * 0x9E3779B97F4A7C15ULL) >> 56);
}

}  // namespace

StreamIntegrityChecker::StreamIntegrityChecker(std::string name, AuditLog* log)
    : name_(std::move(name)), log_(log) {
  JUG_CHECK(log_ != nullptr);
}

void StreamIntegrityChecker::Attach(TcpEndpoint* receiver) {
  JUG_CHECK(receiver != nullptr);
  receiver->set_on_deliver([this](uint64_t total) { OnDeliverTotal(total); });
  receiver->set_segment_tap([this](const Segment& s) { OnSegment(s); });
}

void StreamIntegrityChecker::OnDeliverTotal(uint64_t total_bytes) {
  ++deliver_callbacks_;
  // The callback fires only when the in-order point advances, so the total
  // must be strictly increasing — a repeat would be a double delivery, a
  // decrease would be rollback, and exceeding the expectation means bytes
  // the app never sent were conjured.
  if (total_bytes <= delivered_total_) {
    log_->Violation(name_, "delivery total not strictly increasing: " +
                               std::to_string(total_bytes) + " after " +
                               std::to_string(delivered_total_));
    // An anomalous delivery must never hash equal to a clean one.
    stream_digest_ = (stream_digest_ ^ 0xBADull) * kFnvPrime;
  }
  if (expected_bytes_ > 0 && total_bytes > expected_bytes_) {
    log_->Violation(name_, "delivered " + std::to_string(total_bytes) +
                               " bytes, more than the " +
                               std::to_string(expected_bytes_) + " sent");
  }
  // Fold the newly delivered in-order bytes into the stream digest.
  for (uint64_t pos = delivered_total_; pos < total_bytes; ++pos) {
    stream_digest_ = (stream_digest_ ^ StreamByte(pos)) * kFnvPrime;
  }
  delivered_total_ = total_bytes;
}

void StreamIntegrityChecker::OnSegment(const Segment& segment) {
  if (segment.payload_len == 0) {
    return;  // pure ACK
  }
  covered_.Insert(segment.seq, segment.end_seq());
}

bool StreamIntegrityChecker::FinalCheck() {
  const uint64_t before = log_->violations();
  if (delivered_total_ != expected_bytes_) {
    log_->Violation(name_, "final delivery total " + std::to_string(delivered_total_) +
                               " != expected " + std::to_string(expected_bytes_));
  }
  if (expected_bytes_ > 0) {
    // Coverage must be a single contiguous range [0, expected): any second
    // range means a hole GRO never surfaced.
    const auto& ranges = covered_.ranges();
    const bool contiguous = ranges.size() == 1 && ranges.front().first == 0 &&
                            ranges.front().second == Seq(expected_bytes_);
    if (!contiguous) {
      log_->Violation(name_, "segment coverage has gaps: " +
                                 std::to_string(ranges.size()) + " ranges, " +
                                 std::to_string(covered_.TotalBytes()) + " of " +
                                 std::to_string(expected_bytes_) + " bytes");
    }
  }
  return log_->violations() == before;
}

}  // namespace juggler
