// End-to-end stream integrity: every application byte delivered exactly
// once, in order, with no gaps — no matter what the fault layer did to the
// wire.
//
// A StreamIntegrityChecker attaches to the receiving TcpEndpoint and
// observes two planes:
//
//   * the app plane, via set_on_deliver: the cumulative in-order delivery
//     total must be strictly increasing (each callback announces progress),
//   * the GRO/TCP boundary, via set_segment_tap: the data segments GRO hands
//     up must, across the run, cover [0, expected_bytes) — a range GRO never
//     surfaced would be a silent gap, even if TCP's counters look right.
//
// Violations go to the shared AuditLog; FinalCheck() runs the end-of-run
// conditions (full delivery, full coverage).

#ifndef JUGGLER_SRC_FAULT_STREAM_INTEGRITY_H_
#define JUGGLER_SRC_FAULT_STREAM_INTEGRITY_H_

#include <cstdint>
#include <string>

#include "src/fault/audit_log.h"
#include "src/packet/packet.h"
#include "src/tcp/tcp_endpoint.h"
#include "src/util/seq_range_set.h"

namespace juggler {

class StreamIntegrityChecker {
 public:
  StreamIntegrityChecker(std::string name, AuditLog* log);

  // Installs the on_deliver and segment-tap observers on `receiver`.
  // Replaces any previously-set callbacks, so attach before (or instead of)
  // other consumers of those hooks.
  void Attach(TcpEndpoint* receiver);

  void set_expected_bytes(uint64_t bytes) { expected_bytes_ = bytes; }

  // Feed methods — Attach() wires these up, and unit tests drive them
  // directly to exercise the checker without a full stack.
  void OnDeliverTotal(uint64_t total_bytes);
  void OnSegment(const Segment& segment);

  // End-of-run conditions: final total == expected, segment coverage is one
  // contiguous range [0, expected). Returns true when no new violation was
  // recorded by this call.
  bool FinalCheck();

  uint64_t delivered_total() const { return delivered_total_; }
  uint64_t segment_bytes_covered() const { return covered_.TotalBytes(); }
  uint64_t deliver_callbacks() const { return deliver_callbacks_; }

  // FNV-1a fold over the position-derived content of every in-order byte the
  // app received, in delivery order, plus any delivery anomalies observed.
  // The simulator carries no payload bytes, so "content" is a fixed function
  // of stream position — with synthetic payloads this is exactly the hash a
  // real implementation would compute over the delivered byte stream. By
  // construction it is independent of chunking, poll boundaries and timing:
  // two runs agree iff they delivered the same contiguous prefix exactly
  // once — the cross-driver (RSS vs COREC) conformance oracle.
  uint64_t stream_digest() const { return stream_digest_; }

 private:
  std::string name_;
  AuditLog* log_;
  uint64_t expected_bytes_ = 0;
  uint64_t delivered_total_ = 0;
  uint64_t deliver_callbacks_ = 0;
  uint64_t stream_digest_ = 14695981039346656037ULL;  // FNV-1a offset basis
  // Byte ranges seen in data segments at the GRO/TCP boundary. Overlaps are
  // legal (retransmissions reach TCP); gaps at the end of the run are not.
  SeqRangeSet covered_;
};

}  // namespace juggler

#endif  // JUGGLER_SRC_FAULT_STREAM_INTEGRITY_H_
