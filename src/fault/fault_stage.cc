#include "src/fault/fault_stage.h"

#include <memory>
#include <utility>

#include "src/sim/shard_mailbox.h"
#include "src/util/logging.h"

namespace juggler {

FaultStage::FaultStage(EventLoop* loop, std::string name, FaultTimeline timeline, uint64_t seed,
                       PacketSink* sink)
    : loop_(loop), name_(std::move(name)), timeline_(std::move(timeline)), rng_(seed),
      sink_(sink) {
  JUG_CHECK(sink_ != nullptr);
  JUG_CHECK(loop_ != nullptr || !timeline_.needs_clock());
  for (const auto& w : timeline_.windows()) {
    JUG_CHECK(w.profile.burst_len_min >= 1);
    JUG_CHECK(w.profile.burst_len_max >= w.profile.burst_len_min);
    JUG_CHECK(w.profile.delay_max >= w.profile.delay_min && w.profile.delay_min >= 0);
  }
}

void FaultStage::Accept(PacketPtr packet) {
  ++stats_.packets_in;

  // An in-progress drop burst swallows packets regardless of window
  // boundaries — a burst models one physical event (buffer overrun, route
  // flap) that does not stop because a schedule window rolled over.
  if (burst_remaining_ > 0) {
    --burst_remaining_;
    ++stats_.drops;
    ++stats_.burst_drops;
    Trace(kFaultCodeBurstDrop, *packet);
    return;
  }

  const TimeNs now = loop_ != nullptr ? loop_->now() : 0;
  const FaultProfile* p = timeline_.ActiveAt(now);
  if (p == nullptr || !p->any()) {
    ++stats_.passed;
    Forward(std::move(packet));
    return;
  }

  // Fault decisions in a fixed order per packet (the determinism contract):
  // burst start, independent drop, corruption, truncation, duplication,
  // delay spike.
  if (p->burst_prob > 0 && rng_.NextBool(p->burst_prob)) {
    ++stats_.bursts_started;
    burst_remaining_ =
        static_cast<int>(rng_.NextInRange(p->burst_len_min, p->burst_len_max)) - 1;
    ++stats_.drops;
    ++stats_.burst_drops;
    Trace(kFaultCodeBurstDrop, *packet);
    return;
  }
  if (p->drop_prob > 0 && rng_.NextBool(p->drop_prob)) {
    ++stats_.drops;
    Trace(kFaultCodeDrop, *packet);
    return;
  }
  if (p->corrupt_prob > 0 && rng_.NextBool(p->corrupt_prob)) {
    // Flipped payload/header bits: the frame still travels (and occupies
    // downstream elements) but fails NIC checksum validation on arrival.
    packet->corrupted = true;
    ++stats_.corruptions;
    Trace(kFaultCodeCorrupt, *packet);
  }
  if (!packet->corrupted && packet->payload_len > 1 && p->truncate_prob > 0 &&
      rng_.NextBool(p->truncate_prob)) {
    // A cut-short frame: shorter on the wire from here on, and its FCS can
    // no longer match, so the NIC discards it too.
    packet->payload_len =
        1 + static_cast<uint32_t>(rng_.NextBounded(packet->payload_len - 1));
    packet->corrupted = true;
    ++stats_.truncations;
    Trace(kFaultCodeTruncate, *packet);
  }
  if (p->dup_prob > 0 && rng_.NextBool(p->dup_prob)) {
    // Identical copy, back to back — same id, same metadata, as a replayed
    // frame would be. Delivered after the original. Under pool pressure the
    // duplicate is shed (counted) and the original still forwards.
    PacketPtr dup = TryClonePacket(*packet);
    if (dup != nullptr) {
      ++stats_.duplicates;
      Trace(kFaultCodeDuplicate, *packet);
      Forward(std::move(packet));
      Forward(std::move(dup));
    } else {
      ++stats_.dup_pool_exhausted;
      Forward(std::move(packet));
    }
    return;
  }
  if (p->delay_prob > 0 && rng_.NextBool(p->delay_prob)) {
    const TimeNs spike = rng_.NextInRange(p->delay_min, p->delay_max);
    ++stats_.delayed;
    Trace(kFaultCodeDelay, *packet);
    if (remote_ != nullptr) {
      // The destination domain replays the spike as envelope extra.
      remote_->Deliver(std::move(packet), spike);
      return;
    }
    PacketSink* sink = sink_;
    loop_->Schedule(spike,
                    [sink, p = std::move(packet)]() mutable { sink->Accept(std::move(p)); });
    return;
  }
  ++stats_.passed;
  Forward(std::move(packet));
}

void FaultStage::Forward(PacketPtr packet) {
  if (remote_ != nullptr) {
    remote_->Deliver(std::move(packet), 0);
  } else {
    sink_->Accept(std::move(packet));
  }
}

void PublishFaultStats(const FaultStats& stats, const std::string& label,
                       MetricsRegistry* registry) {
  registry->AddCounter("fault.packets_in", label, stats.packets_in);
  registry->AddCounter("fault.drops", label, stats.drops);
  registry->AddCounter("fault.burst_drops", label, stats.burst_drops);
  registry->AddCounter("fault.bursts_started", label, stats.bursts_started);
  registry->AddCounter("fault.duplicates", label, stats.duplicates);
  registry->AddCounter("fault.dup_pool_exhausted", label, stats.dup_pool_exhausted);
  registry->AddCounter("fault.corruptions", label, stats.corruptions);
  registry->AddCounter("fault.truncations", label, stats.truncations);
  registry->AddCounter("fault.delayed", label, stats.delayed);
  registry->AddCounter("fault.passed", label, stats.passed);
}

}  // namespace juggler
