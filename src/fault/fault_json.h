// JSON round-trip for the fault layer's declarative schedules.
//
// A FaultTimeline (packet-fault windows) and a list of FlapWindows (link
// blackouts / brown-outs) are the mutable heart of a forensics ScenarioSpec:
// the fuzz supervisor samples them, the shrinker rewrites them event by
// event, and a repro bundle must carry them byte-exactly. Serialization
// lives here, next to the types, so the schema and the structs cannot drift
// apart silently.
//
// Schema notes: times are nanoseconds (integers), probabilities are doubles.
// FromJson validates the same preconditions FaultStage's constructor
// JUG_CHECKs (burst lengths, delay ordering), returning an error instead of
// aborting — a malformed bundle is user input, not a programming error.

#ifndef JUGGLER_SRC_FAULT_FAULT_JSON_H_
#define JUGGLER_SRC_FAULT_FAULT_JSON_H_

#include <string>
#include <vector>

#include "src/fault/fault_stage.h"
#include "src/fault/link_flapper.h"
#include "src/fault/overload.h"
#include "src/util/json.h"

namespace juggler {

Json FaultProfileToJson(const FaultProfile& profile);
bool FaultProfileFromJson(const Json& json, FaultProfile* out, std::string* error);

Json FaultTimelineToJson(const FaultTimeline& timeline);
bool FaultTimelineFromJson(const Json& json, FaultTimeline* out, std::string* error);

Json FlapWindowToJson(const FlapWindow& window);
bool FlapWindowFromJson(const Json& json, FlapWindow* out, std::string* error);

Json FlapWindowsToJson(const std::vector<FlapWindow>& windows);
bool FlapWindowsFromJson(const Json& json, std::vector<FlapWindow>* out, std::string* error);

Json OverloadWindowToJson(const OverloadWindow& window);
bool OverloadWindowFromJson(const Json& json, OverloadWindow* out, std::string* error);

Json OverloadWindowsToJson(const std::vector<OverloadWindow>& windows);
bool OverloadWindowsFromJson(const Json& json, std::vector<OverloadWindow>* out,
                             std::string* error);

}  // namespace juggler

#endif  // JUGGLER_SRC_FAULT_FAULT_JSON_H_
