#include "src/fault/fault_json.h"

#include <limits>

namespace juggler {

namespace {

bool SetError(std::string* error, const std::string& what) {
  if (error != nullptr) {
    *error = what;
  }
  return false;
}

// Emit only non-default fields? No: explicit every time. A spec is a value;
// a reader should not need the struct's defaults to know what ran.
Json TimeField(TimeNs t) { return Json::Int(t); }

}  // namespace

Json FaultProfileToJson(const FaultProfile& p) {
  Json j = Json::Object();
  j.Set("drop_prob", Json::Double(p.drop_prob));
  j.Set("burst_prob", Json::Double(p.burst_prob));
  j.Set("burst_len_min", Json::Int(p.burst_len_min));
  j.Set("burst_len_max", Json::Int(p.burst_len_max));
  j.Set("dup_prob", Json::Double(p.dup_prob));
  j.Set("corrupt_prob", Json::Double(p.corrupt_prob));
  j.Set("truncate_prob", Json::Double(p.truncate_prob));
  j.Set("delay_prob", Json::Double(p.delay_prob));
  j.Set("delay_min_ns", TimeField(p.delay_min));
  j.Set("delay_max_ns", TimeField(p.delay_max));
  return j;
}

bool FaultProfileFromJson(const Json& json, FaultProfile* out, std::string* error) {
  if (!json.is_object()) {
    return SetError(error, "fault profile must be an object");
  }
  FaultProfile p;
  int64_t burst_min = p.burst_len_min;
  int64_t burst_max = p.burst_len_max;
  int64_t delay_min = p.delay_min;
  int64_t delay_max = p.delay_max;
  if (!json.GetDouble("drop_prob", &p.drop_prob) ||
      !json.GetDouble("burst_prob", &p.burst_prob) ||
      !json.GetInt("burst_len_min", &burst_min) ||
      !json.GetInt("burst_len_max", &burst_max) || !json.GetDouble("dup_prob", &p.dup_prob) ||
      !json.GetDouble("corrupt_prob", &p.corrupt_prob) ||
      !json.GetDouble("truncate_prob", &p.truncate_prob) ||
      !json.GetDouble("delay_prob", &p.delay_prob) ||
      !json.GetInt("delay_min_ns", &delay_min) || !json.GetInt("delay_max_ns", &delay_max)) {
    return SetError(error, "fault profile has a wrong-typed field");
  }
  for (double prob : {p.drop_prob, p.burst_prob, p.dup_prob, p.corrupt_prob, p.truncate_prob,
                      p.delay_prob}) {
    if (prob < 0.0 || prob > 1.0) {
      return SetError(error, "fault profile probability outside [0, 1]");
    }
  }
  if (burst_min < 1 || burst_max < burst_min) {
    return SetError(error, "fault profile burst lengths invalid (need 1 <= min <= max)");
  }
  if (delay_min < 0 || delay_max < delay_min) {
    return SetError(error, "fault profile delay range invalid (need 0 <= min <= max)");
  }
  p.burst_len_min = static_cast<int>(burst_min);
  p.burst_len_max = static_cast<int>(burst_max);
  p.delay_min = delay_min;
  p.delay_max = delay_max;
  *out = p;
  return true;
}

Json FaultTimelineToJson(const FaultTimeline& timeline) {
  Json windows = Json::Array();
  for (const FaultTimeline::Window& w : timeline.windows()) {
    Json jw = Json::Object();
    jw.Set("start_ns", TimeField(w.start));
    // INT64_MAX means "open-ended"; serialize it as-is (exact in Json::Int).
    jw.Set("end_ns", TimeField(w.end));
    jw.Set("profile", FaultProfileToJson(w.profile));
    windows.Push(std::move(jw));
  }
  return windows;
}

bool FaultTimelineFromJson(const Json& json, FaultTimeline* out, std::string* error) {
  if (!json.is_array()) {
    return SetError(error, "fault timeline must be an array of windows");
  }
  FaultTimeline timeline;
  for (const Json& jw : json.items()) {
    if (!jw.is_object()) {
      return SetError(error, "fault window must be an object");
    }
    int64_t start = 0;
    int64_t end = std::numeric_limits<int64_t>::max();
    if (!jw.GetInt("start_ns", &start) || !jw.GetInt("end_ns", &end)) {
      return SetError(error, "fault window has a wrong-typed time");
    }
    if (start < 0 || end < start) {
      return SetError(error, "fault window times invalid (need 0 <= start <= end)");
    }
    FaultProfile profile;
    const Json* jp = jw.Find("profile");
    if (jp == nullptr || !FaultProfileFromJson(*jp, &profile, error)) {
      if (jp == nullptr) {
        return SetError(error, "fault window missing profile");
      }
      return false;
    }
    timeline.Add(start, end, profile);
  }
  *out = std::move(timeline);
  return true;
}

Json FlapWindowToJson(const FlapWindow& w) {
  Json j = Json::Object();
  j.Set("down_at_ns", TimeField(w.down_at));
  j.Set("up_at_ns", TimeField(w.up_at));
  j.Set("degraded_rate_bps", Json::Int(w.degraded_rate_bps));
  j.Set("degraded_queue_limit_bytes", Json::Int(w.degraded_queue_limit_bytes));
  return j;
}

bool FlapWindowFromJson(const Json& json, FlapWindow* out, std::string* error) {
  if (!json.is_object()) {
    return SetError(error, "flap window must be an object");
  }
  FlapWindow w;
  if (!json.GetInt("down_at_ns", &w.down_at) || !json.GetInt("up_at_ns", &w.up_at) ||
      !json.GetInt("degraded_rate_bps", &w.degraded_rate_bps) ||
      !json.GetInt("degraded_queue_limit_bytes", &w.degraded_queue_limit_bytes)) {
    return SetError(error, "flap window has a wrong-typed field");
  }
  if (w.down_at < 0 || w.up_at < w.down_at) {
    return SetError(error, "flap window times invalid (need 0 <= down_at <= up_at)");
  }
  if (w.degraded_rate_bps < 0) {
    return SetError(error, "flap window degraded rate must be >= 0");
  }
  *out = w;
  return true;
}

Json FlapWindowsToJson(const std::vector<FlapWindow>& windows) {
  Json arr = Json::Array();
  for (const FlapWindow& w : windows) {
    arr.Push(FlapWindowToJson(w));
  }
  return arr;
}

bool FlapWindowsFromJson(const Json& json, std::vector<FlapWindow>* out, std::string* error) {
  if (!json.is_array()) {
    return SetError(error, "flap windows must be an array");
  }
  std::vector<FlapWindow> windows;
  for (const Json& jw : json.items()) {
    FlapWindow w;
    if (!FlapWindowFromJson(jw, &w, error)) {
      return false;
    }
    windows.push_back(w);
  }
  *out = std::move(windows);
  return true;
}

Json OverloadWindowToJson(const OverloadWindow& w) {
  Json j = Json::Object();
  j.Set("start_ns", TimeField(w.start));
  j.Set("end_ns", TimeField(w.end));
  j.Set("kind", Json::Str(OverloadKindName(w.kind)));
  j.Set("flows", Json::Int(w.flows));
  j.Set("packets_per_flow", Json::Int(w.packets_per_flow));
  j.Set("burst_interval_ns", TimeField(w.burst_interval));
  j.Set("cap_pct", Json::Int(w.cap_pct));
  return j;
}

bool OverloadWindowFromJson(const Json& json, OverloadWindow* out, std::string* error) {
  if (!json.is_object()) {
    return SetError(error, "overload window must be an object");
  }
  OverloadWindow w;
  std::string kind;
  int64_t flows = w.flows;
  int64_t ppf = w.packets_per_flow;
  int64_t cap_pct = w.cap_pct;
  if (!json.GetInt("start_ns", &w.start) || !json.GetInt("end_ns", &w.end) ||
      !json.GetString("kind", &kind) || !json.GetInt("flows", &flows) ||
      !json.GetInt("packets_per_flow", &ppf) ||
      !json.GetInt("burst_interval_ns", &w.burst_interval) ||
      !json.GetInt("cap_pct", &cap_pct)) {
    return SetError(error, "overload window has a wrong-typed field");
  }
  if (!ParseOverloadKind(kind, &w.kind)) {
    return SetError(error, "overload window kind unknown: " + kind);
  }
  if (w.start < 0 || w.end < w.start) {
    return SetError(error, "overload window times invalid (need 0 <= start <= end)");
  }
  if (flows < 0 || ppf < 1 || w.burst_interval < 1) {
    return SetError(error, "overload window injection fields invalid");
  }
  if (cap_pct < 1 || cap_pct > 100) {
    return SetError(error, "overload window cap_pct outside [1, 100]");
  }
  w.flows = static_cast<uint32_t>(flows);
  w.packets_per_flow = static_cast<uint32_t>(ppf);
  w.cap_pct = static_cast<uint32_t>(cap_pct);
  *out = w;
  return true;
}

Json OverloadWindowsToJson(const std::vector<OverloadWindow>& windows) {
  Json arr = Json::Array();
  for (const OverloadWindow& w : windows) {
    arr.Push(OverloadWindowToJson(w));
  }
  return arr;
}

bool OverloadWindowsFromJson(const Json& json, std::vector<OverloadWindow>* out,
                             std::string* error) {
  if (!json.is_array()) {
    return SetError(error, "overload windows must be an array");
  }
  std::vector<OverloadWindow> windows;
  for (const Json& jw : json.items()) {
    OverloadWindow w;
    if (!OverloadWindowFromJson(jw, &w, error)) {
      return false;
    }
    windows.push_back(w);
  }
  *out = std::move(windows);
  return true;
}

}  // namespace juggler
