// Overload fault family + auditor: drive the stack to its resource limits
// and prove it degrades instead of dying.
//
// Three kinds of pressure, applied in timed windows (the same windowing idiom
// as FaultTimeline / link flaps):
//
//   kIncast   — synchronized bursts from a fixed set of ephemeral flows slam
//               the receiver's NIC ring and RX core (the many-senders,
//               one-receiver pattern; COREC's receive-side exhaustion).
//   kChurn    — every burst uses *fresh* five-tuples, so GRO flow tables see
//               a creation/eviction storm instead of queue pressure (§3.3's
//               state-exhaustion concern, aimed at the gro_table cap).
//   kBrownout — no traffic of its own: the window shrinks the capacity caps
//               (packet pool, NIC ring, GRO flow budget) to a percentage of
//               nominal mid-run and restores them at window end, so the
//               regular workload itself runs into the walls.
//
// Hard overload policy everywhere: refuse + count, never abort. The refusal
// points are exactly the TryAcquire callers — NicTx (data + ACK tail drops),
// FaultStage duplication, and this driver's own injector — plus the NicRx
// ring cap and the GRO flow caps, each with its own counter, so the
// OverloadAuditor can check conservation: every refused allocation shows up
// in exactly one published drop counter.
//
// Determinism: the driver runs on the receiver-side event loop with fixed
// tuple/sequence schedules (no RNG), and pool occupancy is reconciled only at
// deterministic points (see PacketPool::ReconcileRemoteReleases), so every
// counter here — and therefore the chaos digest — is shard-count invariant.

#ifndef JUGGLER_SRC_FAULT_OVERLOAD_H_
#define JUGGLER_SRC_FAULT_OVERLOAD_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/fault/audit_log.h"
#include "src/fault/fault_stage.h"
#include "src/nic/nic_rx.h"
#include "src/nic/nic_tx.h"
#include "src/obs/metrics.h"
#include "src/packet/packet.h"
#include "src/sim/event_loop.h"
#include "src/util/time.h"

namespace juggler {

enum class OverloadKind : int {
  kIncast = 0,
  kChurn = 1,
  kBrownout = 2,
};

const char* OverloadKindName(OverloadKind kind);
bool ParseOverloadKind(const std::string& name, OverloadKind* out);

// One timed pressure window. Injection fields apply to incast/churn; cap_pct
// applies to brown-outs.
struct OverloadWindow {
  TimeNs start = 0;
  TimeNs end = 0;
  OverloadKind kind = OverloadKind::kIncast;
  // Tuples per burst. Incast reuses the same tuples every burst (sequence
  // numbers advance, so GRO merges per-flow); churn draws fresh ones.
  uint32_t flows = 64;
  uint32_t packets_per_flow = 4;  // MTUs injected per tuple per burst
  TimeNs burst_interval = Us(200);
  // Brown-out severity: caps shrink to this percent of nominal (floor 1).
  uint32_t cap_pct = 25;

  bool operator==(const OverloadWindow&) const = default;
};

struct OverloadStats {
  uint64_t windows_started = 0;
  uint64_t windows_ended = 0;
  uint64_t bursts = 0;
  uint64_t injected_packets = 0;
  // Injections refused because the (capped) receiver pool was exhausted —
  // the storm itself is subject to the same overload policy it provokes.
  uint64_t inject_alloc_drops = 0;
  uint64_t churn_tuples = 0;  // distinct fresh tuples used by churn windows
  uint64_t brownouts = 0;
  uint64_t cap_restores = 0;
};

// Everything the driver and auditor touch, gathered by the chaos harness.
// All pointers are borrowed and must outlive both objects.
struct OverloadWiring {
  // Receiver-side loop: windows, bursts and cap changes are scheduled here,
  // so in sharded runs every mutation happens on the thread that owns the
  // receiver domain (no cross-thread cap writes).
  EventLoop* loop = nullptr;
  PacketSink* inject = nullptr;       // receiver NIC ingress (wire_in)
  PacketFactory* factory = nullptr;   // receiver-side factory
  RxDriver* receiver_nic = nullptr;
  const NicTxStats* sender_tx = nullptr;
  const NicTxStats* receiver_tx = nullptr;
  const FaultStats* fault = nullptr;  // optional (null = no fault stage)
  // Every pool the run allocates from; all are capped at pool_capacity for
  // the run. brownout_pool (an element of pools, or the single legacy TLS
  // pool) is the one brown-out windows shrink mid-run: the receiver-owned
  // pool, so the shrink happens on the thread that acquires from it.
  std::vector<PacketPool*> pools;
  PacketPool* brownout_pool = nullptr;
  uint32_t target_ip = 0;      // injected packets' destination
  size_t pool_capacity = 0;    // nominal cap applied to every pool (0 = none)
  size_t ring_capacity = 0;    // nominal ring cap (0 = keep NicRx config)
  size_t gro_flow_cap = 0;     // nominal GRO flow budget (for brown-out math)
  // Total executed events across all loops/domains — the forward-progress
  // signal the auditor watches for deadlock.
  std::function<uint64_t()> executed_events;
};

// Schedules the pressure windows and applies the capacity caps. Construct,
// then Start() once before the run loop; Teardown() after the run restores
// every pool's pre-run capacity (the legacy path shares the long-lived
// thread-local pool, which must not stay capped after the run).
class OverloadDriver {
 public:
  OverloadDriver(std::vector<OverloadWindow> windows, const OverloadWiring& wiring);

  void Start();
  void Teardown();

  const OverloadStats& stats() const { return stats_; }
  // Latest pressure-window end, or 0 when no windows are configured.
  TimeNs pressure_end() const;

 private:
  void BeginWindow(size_t index);
  void EndWindow(size_t index);
  void Burst(size_t index, uint64_t burst_index);
  void InjectOne(const FiveTuple& tuple, Seq seq);

  std::vector<OverloadWindow> windows_;
  OverloadWiring wiring_;
  OverloadStats stats_;
  std::vector<size_t> prior_capacity_;  // per wiring_.pools entry, for Teardown
  size_t nominal_ring_ = 0;
  uint32_t next_churn_ip_ = 0;
  bool started_ = false;
};

// Asserts the overload invariants without stopping the run: probes are taken
// from the main thread between engine steps (every loop quiescent), the
// final check after the drain. Violations land in the shared AuditLog and
// therefore in the chaos result/digest.
class OverloadAuditor {
 public:
  OverloadAuditor(std::string name, const OverloadWiring& wiring,
                  const std::vector<OverloadWindow>& windows, AuditLog* log);

  // Between-steps probe. `now` is the engine horizon just reached; `bytes`
  // the primary transfer's delivered byte count.
  void Probe(TimeNs now, uint64_t bytes);

  // After the run loop + drain. `transfer_complete` is the run's own success
  // oracle (raw byte transfer finished / app workload finished).
  void FinalCheck(TimeNs now, uint64_t bytes, bool transfer_complete,
                  const OverloadStats& driver);

  // Registry snapshot of the audited quantities (deltas, not raw pool
  // counters, so values are identical across runs and shard counts).
  void Publish(MetricsRegistry* registry) const;

  uint64_t probes() const { return probes_; }
  uint64_t peak_outstanding() const { return peak_outstanding_; }
  uint64_t pool_exhausted_delta() const;

  // Packets still outstanding across the wired pools, after the caller has
  // torn down all packet-holding state (ShardedEngine::ReleaseResidualPackets).
  // Anything nonzero is a leak — storage the stack lost track of.
  uint64_t MeasureLeakedPackets() const;

  // Pool occupancy must end at or under this once the transfer completed.
  static constexpr uint64_t kRecoveryWatermark = 256;

 private:
  struct PoolBaseline {
    uint64_t acquired = 0;
    uint64_t released = 0;
    uint64_t exhausted = 0;
  };

  uint64_t OutstandingDelta() const;

  std::string name_;
  OverloadWiring wiring_;
  AuditLog* log_;
  TimeNs pressure_end_ = 0;
  std::vector<PoolBaseline> base_;
  PoolBaseline sender_tx_base_;  // only .exhausted used (pool drop counters)
  uint64_t receiver_tx_drops_base_ = 0;
  uint64_t fault_dup_drops_base_ = 0;
  uint64_t probes_ = 0;
  uint64_t peak_outstanding_ = 0;
  uint64_t final_outstanding_ = 0;
  uint64_t final_exhausted_ = 0;
  uint64_t last_events_ = 0;
  uint64_t stall_probes_ = 0;  // consecutive probes with no events and no bytes
  TimeNs last_probe_now_ = -1;
  uint64_t last_bytes_ = 0;
  uint64_t bytes_at_recovery_start_ = 0;
  bool recovery_started_ = false;
  bool recovery_proven_ = false;
};

// Registry snapshot of the driver's counters under `label`.
void PublishOverloadStats(const OverloadStats& stats, const std::string& label,
                          MetricsRegistry* registry);

}  // namespace juggler

#endif  // JUGGLER_SRC_FAULT_OVERLOAD_H_
