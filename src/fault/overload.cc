#include "src/fault/overload.h"

#include <algorithm>
#include <utility>

#include "src/core/juggler.h"
#include "src/fault/juggler_auditor.h"
#include "src/util/logging.h"

namespace juggler {

const char* OverloadKindName(OverloadKind kind) {
  switch (kind) {
    case OverloadKind::kIncast:
      return "incast";
    case OverloadKind::kChurn:
      return "churn";
    case OverloadKind::kBrownout:
      return "brownout";
  }
  return "unknown";
}

bool ParseOverloadKind(const std::string& name, OverloadKind* out) {
  for (OverloadKind kind :
       {OverloadKind::kIncast, OverloadKind::kChurn, OverloadKind::kBrownout}) {
    if (name == OverloadKindName(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

OverloadDriver::OverloadDriver(std::vector<OverloadWindow> windows,
                               const OverloadWiring& wiring)
    : windows_(std::move(windows)), wiring_(wiring) {}

TimeNs OverloadDriver::pressure_end() const {
  TimeNs end = 0;
  for (const OverloadWindow& w : windows_) {
    end = std::max(end, w.end);
  }
  return end;
}

void OverloadDriver::Start() {
  JUG_CHECK(!started_);
  started_ = true;
  // Nominal caps for the whole run. Prior capacities are saved because the
  // legacy chaos path caps the long-lived thread-local pool, which must not
  // stay capped once this run is over.
  prior_capacity_.clear();
  for (PacketPool* pool : wiring_.pools) {
    prior_capacity_.push_back(pool->capacity());
    if (wiring_.pool_capacity != 0) {
      pool->set_capacity(wiring_.pool_capacity);
    }
  }
  nominal_ring_ = wiring_.ring_capacity != 0 ? wiring_.ring_capacity
                                             : wiring_.receiver_nic->config().ring_capacity;
  if (wiring_.ring_capacity != 0) {
    wiring_.receiver_nic->set_ring_capacity(wiring_.ring_capacity);
  }
  for (size_t i = 0; i < windows_.size(); ++i) {
    const OverloadWindow& w = windows_[i];
    if (w.end <= w.start) {
      continue;
    }
    wiring_.loop->ScheduleAt(w.start, [this, i] { BeginWindow(i); });
    wiring_.loop->ScheduleAt(w.end, [this, i] { EndWindow(i); });
  }
}

void OverloadDriver::Teardown() {
  for (size_t i = 0; i < wiring_.pools.size() && i < prior_capacity_.size(); ++i) {
    wiring_.pools[i]->set_capacity(prior_capacity_[i]);
  }
}

void OverloadDriver::BeginWindow(size_t index) {
  const OverloadWindow& w = windows_[index];
  ++stats_.windows_started;
  if (w.kind == OverloadKind::kBrownout) {
    ++stats_.brownouts;
    const uint32_t pct = std::clamp<uint32_t>(w.cap_pct, 1, 100);
    if (wiring_.pool_capacity != 0 && wiring_.brownout_pool != nullptr) {
      wiring_.brownout_pool->set_capacity(
          std::max<size_t>(1, wiring_.pool_capacity * pct / 100));
    }
    wiring_.receiver_nic->set_ring_capacity(std::max<size_t>(1, nominal_ring_ * pct / 100));
    if (wiring_.gro_flow_cap != 0) {
      wiring_.receiver_nic->ApplyGroFlowCap(
          std::max<size_t>(1, wiring_.gro_flow_cap * pct / 100));
    }
    return;
  }
  Burst(index, 0);
}

void OverloadDriver::EndWindow(size_t index) {
  const OverloadWindow& w = windows_[index];
  ++stats_.windows_ended;
  if (w.kind == OverloadKind::kBrownout) {
    ++stats_.cap_restores;
    if (wiring_.pool_capacity != 0 && wiring_.brownout_pool != nullptr) {
      wiring_.brownout_pool->set_capacity(wiring_.pool_capacity);
    }
    wiring_.receiver_nic->set_ring_capacity(nominal_ring_);
    if (wiring_.gro_flow_cap != 0) {
      wiring_.receiver_nic->ApplyGroFlowCap(0);  // 0 = engine nominal
    }
  }
}

void OverloadDriver::Burst(size_t index, uint64_t burst_index) {
  const OverloadWindow& w = windows_[index];
  if (wiring_.loop->now() >= w.end) {
    return;
  }
  ++stats_.bursts;
  for (uint32_t f = 0; f < w.flows; ++f) {
    FiveTuple tuple;
    Seq base_seq;
    if (w.kind == OverloadKind::kIncast) {
      // Stable tuples for the window: each burst continues the flow's byte
      // stream, so GRO sees sustained per-flow merging under ring pressure.
      tuple.src_ip = 0xAC100000u + static_cast<uint32_t>(index) * 0x10000u + f;
      tuple.src_port = static_cast<uint16_t>(40000 + index);
      base_seq = static_cast<Seq>((burst_index * w.packets_per_flow) * kMss);
    } else {
      // Churn: a never-before-seen tuple per (burst, f) — pure flow-creation
      // pressure on the gro_table.
      tuple.src_ip = 0xC0A80000u + next_churn_ip_++;
      tuple.src_port = 40001;
      base_seq = 0;
      ++stats_.churn_tuples;
    }
    tuple.dst_ip = wiring_.target_ip;
    tuple.dst_port = 9;  // discard: no local endpoint, segments land as strays
    for (uint32_t k = 0; k < w.packets_per_flow; ++k) {
      InjectOne(tuple, base_seq + static_cast<Seq>(k) * kMss);
    }
  }
  const TimeNs next = wiring_.loop->now() + w.burst_interval;
  if (next < w.end) {
    wiring_.loop->ScheduleAt(next, [this, index, burst_index] {
      Burst(index, burst_index + 1);
    });
  }
}

void OverloadDriver::InjectOne(const FiveTuple& tuple, Seq seq) {
  PacketPtr p = wiring_.factory->TryMake();
  if (p == nullptr) {
    // The storm is subject to the same cap it provokes: shed + count.
    ++stats_.inject_alloc_drops;
    return;
  }
  p->flow = tuple;
  p->seq = seq;
  p->payload_len = kMss;
  p->flags = kFlagAck;
  p->sent_time = wiring_.loop->now();
  ++stats_.injected_packets;
  wiring_.inject->Accept(std::move(p));
}

OverloadAuditor::OverloadAuditor(std::string name, const OverloadWiring& wiring,
                                 const std::vector<OverloadWindow>& windows, AuditLog* log)
    : name_(std::move(name)), wiring_(wiring), log_(log) {
  for (const OverloadWindow& w : windows) {
    pressure_end_ = std::max(pressure_end_, w.end);
  }
  // Baselines, not raw counters: the legacy path audits the long-lived
  // thread-local pool, whose lifetime counters accumulate across runs.
  for (PacketPool* pool : wiring_.pools) {
    pool->ReconcileRemoteReleases();
    base_.push_back(PoolBaseline{pool->acquired(), pool->released(), pool->exhausted()});
  }
  if (wiring_.sender_tx != nullptr) {
    sender_tx_base_.exhausted = wiring_.sender_tx->pool_exhausted_drops;
  }
  if (wiring_.receiver_tx != nullptr) {
    receiver_tx_drops_base_ = wiring_.receiver_tx->pool_exhausted_drops;
  }
  if (wiring_.fault != nullptr) {
    fault_dup_drops_base_ = wiring_.fault->dup_pool_exhausted;
  }
}

namespace {
int64_t OutstandingOf(PacketPool* pool, const uint64_t base_acquired,
                      const uint64_t base_released) {
  return static_cast<int64_t>(pool->acquired() - base_acquired) -
         static_cast<int64_t>(pool->released() - base_released);
}
}  // namespace

uint64_t OverloadAuditor::OutstandingDelta() const {
  int64_t total = 0;
  for (size_t i = 0; i < wiring_.pools.size(); ++i) {
    total += OutstandingOf(wiring_.pools[i], base_[i].acquired, base_[i].released);
  }
  return total > 0 ? static_cast<uint64_t>(total) : 0;
}

uint64_t OverloadAuditor::pool_exhausted_delta() const {
  uint64_t total = 0;
  for (size_t i = 0; i < wiring_.pools.size(); ++i) {
    total += wiring_.pools[i]->exhausted() - base_[i].exhausted;
  }
  return total;
}

void OverloadAuditor::Probe(TimeNs now, uint64_t bytes) {
  ++probes_;
  // Main thread, engine quiescent: folding the remote ledgers here is both
  // race-free and deterministic (every release up to `now` has completed).
  for (size_t i = 0; i < wiring_.pools.size(); ++i) {
    PacketPool* pool = wiring_.pools[i];
    pool->ReconcileRemoteReleases();
    const int64_t outstanding = OutstandingOf(pool, base_[i].acquired, base_[i].released);
    if (outstanding > 0 && static_cast<uint64_t>(outstanding) > peak_outstanding_) {
      peak_outstanding_ = static_cast<uint64_t>(outstanding);
    }
    // The hard cap: occupancy added by this run never exceeds the nominal
    // capacity (brown-outs shrink below nominal, so nominal bounds both).
    if (wiring_.pool_capacity != 0 &&
        outstanding > static_cast<int64_t>(wiring_.pool_capacity)) {
      log_->Violation(name_, "pool occupancy " + std::to_string(outstanding) +
                                 " exceeds capacity " +
                                 std::to_string(wiring_.pool_capacity));
    }
  }
  // Forward progress / no deadlock: a run that executes no events and moves
  // no bytes across several consecutive 10ms probe windows while the clock
  // still advances is wedged, pressure or not.
  const uint64_t events = wiring_.executed_events ? wiring_.executed_events() : 0;
  if (last_probe_now_ >= 0 && now > last_probe_now_) {
    if (events == last_events_ && bytes == last_bytes_) {
      ++stall_probes_;
      if (stall_probes_ == 5) {
        log_->Violation(name_, "no forward progress (no events, no bytes) across " +
                                   std::to_string(stall_probes_) + " probe windows at t=" +
                                   std::to_string(now) + "ns");
      }
    } else {
      stall_probes_ = 0;
    }
  }
  last_probe_now_ = now;
  last_events_ = events;
  if (!recovery_started_ && now >= pressure_end_) {
    recovery_started_ = true;
    bytes_at_recovery_start_ = last_bytes_;
  }
  if (recovery_started_ && bytes > bytes_at_recovery_start_) {
    recovery_proven_ = true;
  }
  last_bytes_ = bytes;
}

void OverloadAuditor::FinalCheck(TimeNs now, uint64_t bytes, bool transfer_complete,
                                 const OverloadStats& driver) {
  for (PacketPool* pool : wiring_.pools) {
    pool->ReconcileRemoteReleases();
  }
  final_outstanding_ = OutstandingDelta();
  final_exhausted_ = pool_exhausted_delta();

  // Every refused allocation must surface in exactly one published drop
  // counter. The TryAcquire call sites are closed: NIC transmit (both
  // hosts), fault duplication, and the overload injector.
  uint64_t visible = driver.inject_alloc_drops;
  if (wiring_.sender_tx != nullptr) {
    visible += wiring_.sender_tx->pool_exhausted_drops - sender_tx_base_.exhausted;
  }
  if (wiring_.receiver_tx != nullptr) {
    visible += wiring_.receiver_tx->pool_exhausted_drops - receiver_tx_drops_base_;
  }
  if (wiring_.fault != nullptr) {
    visible += wiring_.fault->dup_pool_exhausted - fault_dup_drops_base_;
  }
  if (visible != final_exhausted_) {
    log_->Violation(name_, "pool refusals not fully metrics-visible: " +
                               std::to_string(final_exhausted_) + " refused vs " +
                               std::to_string(visible) + " counted drops");
  }

  // Quiescence checks only make sense once the last overload window has
  // closed: mid-storm, pool occupancy and gro_table buffering are legitimate
  // transient state with timers still armed. The harness drains past
  // pressure_end() before calling FinalCheck, so this guard is defense in
  // depth for callers that finish early.
  const bool pressure_over = now >= pressure_end_;

  // Recovery contract, part 1: once the workload is done, occupancy is back
  // under the watermark (packets still riding late timers are allowed; a
  // population stuck above the watermark is not).
  if (pressure_over && transfer_complete && final_outstanding_ > kRecoveryWatermark) {
    log_->Violation(name_, "pool occupancy " + std::to_string(final_outstanding_) +
                               " still above recovery watermark " +
                               std::to_string(kRecoveryWatermark) + " after completion");
  }

  // Recovery contract, part 2: pressure ended and the transfer either
  // finished or at least delivered bytes afterwards — throughput restored.
  if (pressure_end_ > 0 && now >= pressure_end_ + Ms(5)) {
    const bool recovered = transfer_complete || recovery_proven_ || bytes > bytes_at_recovery_start_;
    if (!recovered) {
      log_->Violation(name_, "no bytes delivered after pressure ended at t=" +
                                 std::to_string(pressure_end_) + "ns");
    }
  }

  // Recovery contract, part 3: Juggler's gro_table holds no buffered bytes
  // once the drain has let every inseq/ofo timeout fire (held bytes after
  // that would be stranded forever). Baseline engines flush at poll end by
  // construction; Presto may legitimately hold runs (its documented gap).
  if (pressure_over && wiring_.receiver_nic != nullptr) {
    for (size_t q = 0; q < wiring_.receiver_nic->num_queues(); ++q) {
      GroEngine* engine = wiring_.receiver_nic->gro(q);
      Juggler* core = dynamic_cast<Juggler*>(engine);
      if (core == nullptr) {
        if (auto* audited = dynamic_cast<JugglerAuditor*>(engine)) {
          core = audited->inner();
        }
      }
      if (core == nullptr) {
        continue;
      }
      const Juggler::AuditView view = core->Audit();
      uint64_t held = 0;
      for (const auto& flow : view.flows) {
        held += flow.buffered_bytes;
      }
      if (held != 0) {
        log_->Violation(name_, "gro_table queue " + std::to_string(q) + " still holds " +
                                   std::to_string(held) + " buffered bytes after drain");
      }
    }
  }
}

uint64_t OverloadAuditor::MeasureLeakedPackets() const {
  for (PacketPool* pool : wiring_.pools) {
    pool->ReconcileRemoteReleases();
  }
  return OutstandingDelta();
}

void OverloadAuditor::Publish(MetricsRegistry* registry) const {
  registry->MaxGauge("overload.peak_pool_outstanding", name_, peak_outstanding_);
  registry->SetGauge("overload.final_pool_outstanding", name_, final_outstanding_);
  registry->AddCounter("overload.pool_exhausted", name_, final_exhausted_);
  registry->AddCounter("overload.probes", name_, probes_);
}

void PublishOverloadStats(const OverloadStats& stats, const std::string& label,
                          MetricsRegistry* registry) {
  registry->AddCounter("overload.windows_started", label, stats.windows_started);
  registry->AddCounter("overload.windows_ended", label, stats.windows_ended);
  registry->AddCounter("overload.bursts", label, stats.bursts);
  registry->AddCounter("overload.injected_packets", label, stats.injected_packets);
  registry->AddCounter("overload.inject_alloc_drops", label, stats.inject_alloc_drops);
  registry->AddCounter("overload.churn_tuples", label, stats.churn_tuples);
  registry->AddCounter("overload.brownouts", label, stats.brownouts);
  registry->AddCounter("overload.cap_restores", label, stats.cap_restores);
}

}  // namespace juggler
