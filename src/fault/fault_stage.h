// Deterministic, composable packet fault injection.
//
// A FaultStage sits anywhere a PacketSink fits (typically just before the
// receiving NIC) and subjects passing packets to the fault classes real
// datacenter receive paths see:
//
//   * independent drops and multi-packet drop bursts (switch buffer overrun,
//     brief route withdrawal),
//   * duplication (spanning-tree transients, NIC replays),
//   * payload/header corruption and frame truncation — the packet is marked
//     `corrupted` and discarded by the receiving NIC's checksum validation,
//     so the stack observes only the loss, as on real hardware,
//   * delay spikes (PFC pauses, deep-buffer excursions) that reorder the
//     packet past its successors.
//
// Faults are driven by a declarative FaultTimeline: time-windowed
// FaultProfiles, so pathologies can flare and subside mid-run. Determinism
// contract: every decision draws from the stage's own named, seeded Rng in a
// fixed per-packet order, so the same seed + timeline + arrival sequence
// reproduces the exact same fault pattern.

#ifndef JUGGLER_SRC_FAULT_FAULT_STAGE_H_
#define JUGGLER_SRC_FAULT_FAULT_STAGE_H_

#include <limits>
#include <string>
#include <vector>

#include "src/net/packet_sink.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/sim/event_loop.h"
#include "src/util/rng.h"
#include "src/util/time.h"

namespace juggler {

class RemoteEndpoint;

// Fault intensities active within one timeline window. All probabilities are
// per-packet Bernoulli trials; zero disables that fault class.
struct FaultProfile {
  double drop_prob = 0.0;      // independent single-packet drop
  double burst_prob = 0.0;     // probability a packet *starts* a drop burst
  int burst_len_min = 2;       // burst length drawn uniformly from this range
  int burst_len_max = 8;       // (includes the triggering packet)
  double dup_prob = 0.0;       // deliver the packet and an identical copy
  double corrupt_prob = 0.0;   // payload/header corruption -> NIC discards
  double truncate_prob = 0.0;  // frame truncation -> bad FCS -> NIC discards
  double delay_prob = 0.0;     // hold the packet for a delay spike
  TimeNs delay_min = Us(50);
  TimeNs delay_max = Us(500);

  bool any() const {
    return drop_prob > 0 || burst_prob > 0 || dup_prob > 0 || corrupt_prob > 0 ||
           truncate_prob > 0 || delay_prob > 0;
  }
};

// A declarative schedule of fault windows. Windows are [start, end) in
// simulation time; the *last* window containing `now` wins, so a broad
// background profile can be overlaid with sharper episodes.
class FaultTimeline {
 public:
  struct Window {
    TimeNs start = 0;
    TimeNs end = std::numeric_limits<TimeNs>::max();
    FaultProfile profile;
  };

  FaultTimeline() = default;

  // A single window covering all of time.
  static FaultTimeline Always(const FaultProfile& profile) {
    FaultTimeline t;
    t.Add(0, std::numeric_limits<TimeNs>::max(), profile);
    return t;
  }

  // Back-compat with the old DropStage: uniform independent drops, forever.
  static FaultTimeline UniformDrop(double drop_prob) {
    FaultProfile p;
    p.drop_prob = drop_prob;
    return Always(p);
  }

  void Add(TimeNs start, TimeNs end, const FaultProfile& profile) {
    windows_.push_back(Window{start, end, profile});
  }

  // The profile in force at `now`, or nullptr when no window covers it.
  const FaultProfile* ActiveAt(TimeNs now) const {
    const FaultProfile* active = nullptr;
    for (const Window& w : windows_) {
      if (now >= w.start && now < w.end) {
        active = &w.profile;
      }
    }
    return active;
  }

  // True when fault decisions depend on the clock (bounded windows or delay
  // spikes). A clockless stage (loop == nullptr) only supports timelines
  // where this is false.
  bool needs_clock() const {
    for (const Window& w : windows_) {
      if (w.start != 0 || w.end != std::numeric_limits<TimeNs>::max() ||
          w.profile.delay_prob > 0) {
        return true;
      }
    }
    return false;
  }

  bool empty() const { return windows_.empty(); }
  const std::vector<Window>& windows() const { return windows_; }

 private:
  std::vector<Window> windows_;
};

struct FaultStats {
  uint64_t packets_in = 0;
  uint64_t drops = 0;        // all dropped packets (independent + burst)
  uint64_t burst_drops = 0;  // subset of drops belonging to a burst
  uint64_t bursts_started = 0;
  uint64_t duplicates = 0;
  // Duplication faults skipped because the packet pool was at its capacity
  // cap (overload policy: shed the duplicate, forward the original).
  uint64_t dup_pool_exhausted = 0;
  uint64_t corruptions = 0;
  uint64_t truncations = 0;
  uint64_t delayed = 0;
  uint64_t passed = 0;  // forwarded immediately (corrupt-marked or not)
};

class FaultStage : public PacketSink {
 public:
  // `loop` may be nullptr iff `!timeline.needs_clock()` (static, window-free
  // profiles such as the DropStage compatibility mode).
  FaultStage(EventLoop* loop, std::string name, FaultTimeline timeline, uint64_t seed,
             PacketSink* sink);

  void Accept(PacketPtr packet) override;

  // Sharded operation: surviving packets (and duplicates) cross into another
  // shard domain's mailbox; a delay spike rides as envelope extra instead of
  // a local timer. Fault decisions and their RNG draw order are unchanged,
  // so the same seed produces the same fault pattern either way.
  void set_remote(RemoteEndpoint* remote) { remote_ = remote; }

  // Optional flight recorder: every applied fault emits a TraceKind::kFault
  // event. Null (the default) keeps tracing off the fault path.
  void set_recorder(FlightRecorder* recorder) { recorder_ = recorder; }

  const FaultStats& stats() const { return stats_; }
  const std::string& name() const { return name_; }

  // DropStage-compatible accessor.
  uint64_t drops() const { return stats_.drops; }

 private:
  // Immediate delivery to the local sink or the remote endpoint.
  void Forward(PacketPtr packet);

  // Trace hook: one line per applied fault, gated on recorder_.
  void Trace(int code, const Packet& p) {
    if (recorder_ != nullptr) {
      recorder_->Record(loop_ != nullptr ? loop_->now() : 0, TraceKind::kFault,
                        static_cast<uint64_t>(code), p.seq, p.payload_len);
    }
  }

  EventLoop* loop_;
  std::string name_;
  FaultTimeline timeline_;
  Rng rng_;
  PacketSink* sink_;
  RemoteEndpoint* remote_ = nullptr;
  FlightRecorder* recorder_ = nullptr;
  int burst_remaining_ = 0;
  FaultStats stats_;
};

// Snapshot a FaultStats into `registry` under `label` (the stage's name).
void PublishFaultStats(const FaultStats& stats, const std::string& label,
                       MetricsRegistry* registry);

}  // namespace juggler

#endif  // JUGGLER_SRC_FAULT_FAULT_STAGE_H_
