// Structural invariant auditing for Juggler's gro_table.
//
// JugglerAuditor is a GroEngine decorator: it forwards every call to an
// inner Juggler and, after each poll completion and timer callback, audits
// the engine's internal structure via Juggler::Audit():
//
//   * every table entry is linked on exactly one of the three lists, and
//     list lengths sum to the table size (no orphans, no double-links),
//   * the list an entry is physically on agrees with its phase
//     (build-up/active-merging -> active, post-merge -> inactive,
//     loss-recovery -> loss), per Figure 4,
//   * post-merge flows hold no buffered runs (the "safe to evict" claim),
//   * seq_next never moves backwards outside the build-up phase (§4.2.3),
//     tracked per flow generation so reincarnations after eviction are not
//     compared against their predecessors,
//   * byte conservation: buffered_bytes_in == buffered_bytes_out + bytes
//     currently held across all OOO queues (nothing leaks on eviction,
//     flush, or coalescing),
//   * the high-resolution timer is armed whenever any flow holds buffered
//     data (a pending deadline with no timer would strand bytes forever).
//
// Violations are recorded in the shared AuditLog; the run continues.

#ifndef JUGGLER_SRC_FAULT_JUGGLER_AUDITOR_H_
#define JUGGLER_SRC_FAULT_JUGGLER_AUDITOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "src/core/juggler.h"
#include "src/fault/audit_log.h"
#include "src/nic/nic_rx.h"

namespace juggler {

class JugglerAuditor : public GroEngine {
 public:
  JugglerAuditor(std::unique_ptr<Juggler> inner, AuditLog* log);

  // Interposes a pass-through context so the inner engine's deliveries and
  // timer arms reach the host unchanged.
  void set_context(Context ctx) override;

  TimeNs Receive(PacketPtr packet) override;
  TimeNs ReceiveBatch(PacketPtr* packets, size_t count) override;
  TimeNs PollComplete() override;
  TimeNs OnTimer() override;
  TimeNs ApplyFlowCapPressure(size_t max_flows) override;
  std::string name() const override { return "juggler+audit"; }

  Juggler* inner() { return inner_.get(); }
  uint64_t audits() const { return audits_; }

 private:
  void CheckInvariants(const char* when);

  std::unique_ptr<Juggler> inner_;
  AuditLog* log_;
  uint64_t audits_ = 0;
  // Last observed (generation, seq_next) per flow, for the monotonicity
  // check. Entries for evicted flows are dropped as they disappear from the
  // audit view.
  std::unordered_map<FiveTuple, std::pair<uint64_t, Seq>, FiveTupleHash> last_seq_next_;
};

// A Juggler factory whose engines are wrapped in auditors sharing `log`.
RxDriver::GroFactory MakeAuditedJugglerFactory(JugglerConfig config, AuditLog* log);

}  // namespace juggler

#endif  // JUGGLER_SRC_FAULT_JUGGLER_AUDITOR_H_
