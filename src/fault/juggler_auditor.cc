#include "src/fault/juggler_auditor.h"

#include <unordered_set>

#include "src/util/logging.h"
#include "src/util/seq.h"

namespace juggler {

namespace {
std::string FlowName(const FiveTuple& t) {
  return std::to_string(t.src_ip) + ":" + std::to_string(t.src_port) + ">" +
         std::to_string(t.dst_ip) + ":" + std::to_string(t.dst_port);
}
}  // namespace

JugglerAuditor::JugglerAuditor(std::unique_ptr<Juggler> inner, AuditLog* log)
    : inner_(std::move(inner)), log_(log) {
  JUG_CHECK(inner_ != nullptr && log_ != nullptr);
}

void JugglerAuditor::set_context(Context ctx) {
  ctx_ = ctx;
  inner_->set_context(ctx);
}

TimeNs JugglerAuditor::Receive(PacketPtr packet) {
  const TimeNs cost = inner_->Receive(std::move(packet));
  stats_ = inner_->stats();
  return cost;
}

TimeNs JugglerAuditor::ReceiveBatch(PacketPtr* packets, size_t count) {
  // Forwarded as a batch so the audited engine keeps its prefetch pipeline;
  // invariants are still checked only at poll/timer boundaries.
  const TimeNs cost = inner_->ReceiveBatch(packets, count);
  stats_ = inner_->stats();
  return cost;
}

TimeNs JugglerAuditor::PollComplete() {
  const TimeNs cost = inner_->PollComplete();
  stats_ = inner_->stats();
  CheckInvariants("poll");
  return cost;
}

TimeNs JugglerAuditor::OnTimer() {
  const TimeNs cost = inner_->OnTimer();
  stats_ = inner_->stats();
  CheckInvariants("timer");
  return cost;
}

TimeNs JugglerAuditor::ApplyFlowCapPressure(size_t max_flows) {
  const TimeNs cost = inner_->ApplyFlowCapPressure(max_flows);
  stats_ = inner_->stats();
  // Pressure evictions rewire all three lists at once — exactly when a
  // structural bug would slip in.
  CheckInvariants("flow_cap_pressure");
  return cost;
}

void JugglerAuditor::CheckInvariants(const char* when) {
  ++audits_;
  const Juggler::AuditView view = inner_->Audit();
  const std::string tag = std::string("juggler-audit/") + when;

  if (view.active_len + view.inactive_len + view.loss_len != view.table_size) {
    log_->Violation(tag, "list lengths " + std::to_string(view.active_len) + "+" +
                             std::to_string(view.inactive_len) + "+" +
                             std::to_string(view.loss_len) + " != table size " +
                             std::to_string(view.table_size));
  }

  uint64_t held_bytes = 0;
  bool any_buffered = false;
  std::unordered_set<FiveTuple, FiveTupleHash> live_keys;
  for (const auto& flow : view.flows) {
    live_keys.insert(flow.key);
    held_bytes += flow.buffered_bytes;
    if (flow.queue_runs > 0) {
      any_buffered = true;
    }

    if (flow.list == Juggler::ListId::kNone) {
      log_->Violation(tag, "flow " + FlowName(flow.key) + " linked on no list");
    } else {
      const Juggler::ListId want =
          flow.phase == FlowPhase::kPostMerge
              ? Juggler::ListId::kInactive
              : (flow.phase == FlowPhase::kLossRecovery ? Juggler::ListId::kLoss
                                                        : Juggler::ListId::kActive);
      if (flow.list != want) {
        log_->Violation(tag, "flow " + FlowName(flow.key) + " in phase " +
                                 FlowPhaseName(flow.phase) + " on list " +
                                 std::to_string(static_cast<int>(flow.list)));
      }
    }

    if (flow.phase == FlowPhase::kPostMerge && flow.queue_runs != 0) {
      log_->Violation(tag, "post-merge flow " + FlowName(flow.key) + " still buffers " +
                               std::to_string(flow.queue_runs) + " runs");
    }

    // seq_next monotonicity outside build-up (§4.2.3). Records are per
    // generation so a reincarnated flow starts a fresh history.
    if (flow.phase != FlowPhase::kBuildUp) {
      auto [it, inserted] =
          last_seq_next_.try_emplace(flow.key, flow.generation, flow.seq_next);
      if (!inserted) {
        if (it->second.first == flow.generation &&
            SeqBefore(flow.seq_next, it->second.second)) {
          log_->Violation(tag, "flow " + FlowName(flow.key) +
                                   " seq_next moved backwards: " +
                                   std::to_string(flow.seq_next) + " < " +
                                   std::to_string(it->second.second));
        }
        it->second = {flow.generation, flow.seq_next};
      }
    }
  }

  // Drop history for evicted flows so the map stays bounded by table size.
  std::erase_if(last_seq_next_,
                [&live_keys](const auto& kv) { return !live_keys.contains(kv.first); });

  if (view.buffered_bytes_in != view.buffered_bytes_out + held_bytes) {
    log_->Violation(tag, "byte conservation broken: in " +
                             std::to_string(view.buffered_bytes_in) + " != out " +
                             std::to_string(view.buffered_bytes_out) + " + held " +
                             std::to_string(held_bytes));
  }

  if (any_buffered && view.armed_deadline == kNoTimer) {
    log_->Violation(tag, "buffered data pending but no timer armed");
  }
}

RxDriver::GroFactory MakeAuditedJugglerFactory(JugglerConfig config, AuditLog* log) {
  return [config, log](const CpuCostModel* costs) -> std::unique_ptr<GroEngine> {
    return std::make_unique<JugglerAuditor>(std::make_unique<Juggler>(costs, config), log);
  };
}

}  // namespace juggler
