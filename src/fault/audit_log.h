// Violation collector shared by the fault layer's checkers.
//
// Checkers (StreamIntegrityChecker, JugglerAuditor) record invariant
// violations here instead of aborting, so a chaos soak can run a whole
// timeline to completion and report *every* violation, and so tests can
// assert that deliberately-broken runs are detected. The message list is
// bounded; the count is not.

#ifndef JUGGLER_SRC_FAULT_AUDIT_LOG_H_
#define JUGGLER_SRC_FAULT_AUDIT_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/logging.h"

namespace juggler {

class AuditLog {
 public:
  static constexpr size_t kMaxMessages = 64;

  void Violation(const std::string& where, const std::string& what) {
    ++violations_;
    if (messages_.size() < kMaxMessages) {
      messages_.push_back(where + ": " + what);
    }
    JUG_WARN("invariant violation [%s] %s", where.c_str(), what.c_str());
  }

  uint64_t violations() const { return violations_; }
  const std::vector<std::string>& messages() const { return messages_; }
  bool clean() const { return violations_ == 0; }

  // Fold another log's violations in, quietly (they were warned about when
  // first recorded). Used to merge per-shard-domain logs after the workers
  // join — checkers running on different domain threads write to separate
  // logs so the shared one needs no locking.
  void MergeFrom(const AuditLog& other) {
    violations_ += other.violations_;
    for (const std::string& m : other.messages_) {
      if (messages_.size() >= kMaxMessages) {
        break;
      }
      messages_.push_back(m);
    }
  }

  void Clear() {
    violations_ = 0;
    messages_.clear();
  }

 private:
  uint64_t violations_ = 0;
  std::vector<std::string> messages_;
};

}  // namespace juggler

#endif  // JUGGLER_SRC_FAULT_AUDIT_LOG_H_
