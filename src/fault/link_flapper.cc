#include "src/fault/link_flapper.h"

#include <algorithm>
#include <utility>

#include "src/util/logging.h"

namespace juggler {

LinkFlapper::LinkFlapper(EventLoop* loop, Link* link, std::vector<FlapWindow> windows)
    : loop_(loop), link_(link), windows_(std::move(windows)),
      original_rate_bps_(link->rate_bps()),
      original_queue_limit_bytes_(link->queue_limit_bytes()) {
  JUG_CHECK(loop_ != nullptr && link_ != nullptr);
  for (const FlapWindow& w : windows_) {
    JUG_CHECK(w.up_at > w.down_at);
    JUG_CHECK(w.degraded_rate_bps >= 0);
  }
}

void LinkFlapper::Start() {
  JUG_CHECK(!started_);
  started_ = true;
  for (const FlapWindow& w : windows_) {
    const TimeNs now = loop_->now();
    JUG_CHECK(w.down_at >= now);
    loop_->Schedule(w.down_at - now, [this, w] { Apply(w); });
    loop_->Schedule(w.up_at - now, [this, w] { Restore(w); });
  }
}

void LinkFlapper::Apply(const FlapWindow& w) {
  ++flaps_started_;
  if (w.degraded_rate_bps == 0) {
    link_->SetDown();
  } else {
    link_->set_rate_bps(w.degraded_rate_bps);
    if (w.degraded_queue_limit_bytes > 0) {
      link_->set_queue_limit_bytes(w.degraded_queue_limit_bytes);
    }
  }
}

void LinkFlapper::Restore(const FlapWindow& w) {
  ++flaps_finished_;
  if (w.degraded_rate_bps == 0) {
    link_->SetUp();
  } else {
    link_->set_rate_bps(original_rate_bps_);
    link_->set_queue_limit_bytes(original_queue_limit_bytes_);
  }
}

std::vector<FlapWindow> LinkFlapper::MakeRandomWindows(Rng* rng, TimeNs horizon, int count,
                                                       TimeNs min_down, TimeNs max_down,
                                                       bool blackhole, int64_t full_rate_bps) {
  JUG_CHECK(count >= 0 && horizon > 0 && min_down > 0 && max_down >= min_down);
  std::vector<FlapWindow> windows;
  windows.reserve(static_cast<size_t>(count));
  // Leave the first eighth of the run fault-free so connections establish.
  TimeNs cursor = horizon / 8;
  for (int i = 0; i < count; ++i) {
    const TimeNs len = rng->NextInRange(min_down, max_down);
    const TimeNs slack = horizon > cursor + len ? (horizon - cursor - len) / (count - i) : 0;
    const TimeNs start = cursor + (slack > 0 ? rng->NextBounded(static_cast<uint64_t>(slack)) : 0);
    FlapWindow w;
    w.down_at = start;
    w.up_at = start + len;
    if (!blackhole) {
      // Brown-out to 5%..50% of line rate.
      const int64_t lo = std::max<int64_t>(1, full_rate_bps / 20);
      const int64_t hi = std::max<int64_t>(lo, full_rate_bps / 2);
      w.degraded_rate_bps = rng->NextInRange(lo, hi);
    }
    windows.push_back(w);
    // Enforce a gap so the link (and TCP's RTO clock) can breathe between
    // consecutive windows.
    cursor = w.up_at + len;
  }
  return windows;
}

}  // namespace juggler
