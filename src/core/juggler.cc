#include "src/core/juggler.h"

#include <algorithm>
#include <unordered_map>

#include "src/util/logging.h"

namespace juggler {
namespace {

// Join run i with following runs while they are contiguous, metadata-equal
// and the merge stays under the segment cap.
void CoalesceForward(std::vector<SegmentBuilder>* queue, size_t i, uint32_t max_payload) {
  while (i + 1 < queue->size()) {
    SegmentBuilder& cur = (*queue)[i];
    SegmentBuilder& next = (*queue)[i + 1];
    if (cur.end_seq() != next.start_seq() || cur.options_token() != next.options_token() ||
        cur.segment().ce_mark != next.segment().ce_mark ||
        cur.payload_len() + next.payload_len() > max_payload) {
      return;
    }
    cur.Append(std::move(next));
    queue->erase(queue->begin() + static_cast<long>(i) + 1);
  }
}

// A run is "ready" to flush on the event-driven path when it carries urgent
// flags or has no room for another MTU (Table 2 rows 2-3).
bool RunReady(const SegmentBuilder& run, uint32_t max_payload) {
  return run.needs_flush() || run.payload_len() + kMss > max_payload;
}

}  // namespace

const char* FlowPhaseName(FlowPhase phase) {
  switch (phase) {
    case FlowPhase::kBuildUp:
      return "build_up";
    case FlowPhase::kActiveMerge:
      return "active_merge";
    case FlowPhase::kPostMerge:
      return "post_merge";
    case FlowPhase::kLossRecovery:
      return "loss_recovery";
  }
  return "unknown";
}

Juggler::Juggler(const CpuCostModel* costs, const JugglerConfig& config)
    : costs_(costs), config_(config), nominal_max_flows_(config.max_flows) {
  JUG_CHECK(config_.max_flows >= 1);
  JUG_CHECK(config_.inseq_timeout >= 0 && config_.ofo_timeout >= 0);
}

Juggler::FlowList* Juggler::ListFor(FlowPhase phase) {
  switch (phase) {
    case FlowPhase::kBuildUp:
    case FlowPhase::kActiveMerge:
      return &active_list_;
    case FlowPhase::kPostMerge:
      return &inactive_list_;
    case FlowPhase::kLossRecovery:
      return &loss_list_;
  }
  return &active_list_;
}

void Juggler::SetPhase(FlowEntry* entry, FlowPhase phase) {
  FlowList* from = ListFor(entry->phase);
  FlowList* to = ListFor(phase);
  if (from != to) {
    from->Remove(entry);
    to->PushBack(entry);
  }
  if (entry->phase != phase) {
    ++jstats_.phase_transitions[static_cast<int>(entry->phase)][static_cast<int>(phase)];
    if (ctx_.recorder != nullptr) {
      ctx_.recorder->Record(Now(), TraceKind::kPhase, static_cast<uint64_t>(entry->phase),
                            static_cast<uint64_t>(phase), entry->key.Hash());
    }
  }
  entry->phase = phase;
  jstats_.max_active_list_len = std::max(jstats_.max_active_list_len, active_list_.size());
  jstats_.max_inactive_list_len = std::max(jstats_.max_inactive_list_len, inactive_list_.size());
  jstats_.max_loss_list_len = std::max(jstats_.max_loss_list_len, loss_list_.size());
}

FlowEntry* Juggler::CreateEntry(const FiveTuple& tuple, TimeNs* cost) {
  if (table_.size() >= config_.max_flows) {
    *cost += EvictOne();
  }
  auto [entry, inserted] = table_.FindOrCreate(tuple);
  JUG_CHECK(inserted);
  entry->key = tuple;
  entry->phase = FlowPhase::kBuildUp;
  entry->flush_timestamp = Now();
  entry->generation = jstats_.flows_created + 1;
  active_list_.PushBack(entry);
  ++jstats_.flows_created;
  ++jstats_.phase_transitions[kFlowPhaseNone][static_cast<int>(FlowPhase::kBuildUp)];
  if (ctx_.recorder != nullptr) {
    ctx_.recorder->Record(Now(), TraceKind::kPhase, kFlowPhaseNone,
                          static_cast<uint64_t>(FlowPhase::kBuildUp), entry->key.Hash());
  }
  jstats_.max_active_list_len = std::max(jstats_.max_active_list_len, active_list_.size());
  return entry;
}

TimeNs Juggler::EvictOne() {
  if (FlowEntry* victim = inactive_list_.front()) {
    ++jstats_.evictions_inactive;
    return EvictEntry(victim);
  }
  if (FlowEntry* victim = active_list_.front()) {
    ++jstats_.evictions_active;
    return EvictEntry(victim);
  }
  if (FlowEntry* victim = loss_list_.front()) {
    ++jstats_.evictions_loss;
    return EvictEntry(victim);
  }
  return 0;
}

TimeNs Juggler::EvictEntry(FlowEntry* entry) {
  if (ctx_.recorder != nullptr) {
    uint64_t held = 0;
    for (const auto& run : entry->ooo_queue) {
      held += run.payload_len();
    }
    ctx_.recorder->Record(Now(), TraceKind::kEviction, static_cast<uint64_t>(entry->phase),
                          held, entry->key.Hash());
  }
  const TimeNs cost = FlushAll(entry, FlushReason::kEviction);
  ++stats_.evictions;
  ListFor(entry->phase)->Remove(entry);
  if (last_entry_ == entry) {
    last_entry_ = nullptr;
  }
  // Copy the key out: Erase destroys the entry that owns entry->key.
  const FiveTuple key = entry->key;
  table_.Erase(key);
  return cost;
}

TimeNs Juggler::FlushAll(FlowEntry* entry, FlushReason reason) {
  TimeNs cost = 0;
  for (auto& run : entry->ooo_queue) {
    entry->seq_next = run.end_seq();
    NoteFlushed(entry, reason, run.payload_len());
    Deliver(run.Take(), reason);
    cost += costs_->gro_flush_per_segment;
  }
  if (config_.debug_flush_accounting_skew && reason == FlushReason::kOfoTimeout &&
      !entry->ooo_queue.empty()) {
    ++jstats_.buffered_bytes_out;  // planted off-by-one (see JugglerConfig)
  }
  entry->ooo_queue.clear();
  return cost;
}

TimeNs Juggler::FlushPrefix(FlowEntry* entry, bool ready_only, FlushReason reason) {
  TimeNs cost = 0;
  bool flushed = false;
  auto& queue = entry->ooo_queue;
  while (!queue.empty() && queue.front().start_seq() == entry->seq_next) {
    SegmentBuilder& run = queue.front();
    const bool ready = RunReady(run, config_.max_segment_payload);
    if (ready_only && !ready) {
      break;
    }
    entry->seq_next = run.end_seq();
    const FlushReason r =
        ready_only ? (run.needs_flush() ? FlushReason::kFlags : FlushReason::kSizeLimit) : reason;
    NoteFlushed(entry, r, run.payload_len());
    Deliver(run.Take(), r);
    queue.erase(queue.begin());
    cost += costs_->gro_flush_per_segment;
    flushed = true;
  }
  if (flushed) {
    entry->flush_timestamp = Now();
    UpdatePhaseAfterFlush(entry);
  }
  return cost;
}

void Juggler::UpdatePhaseAfterFlush(FlowEntry* entry) {
  if (entry->phase == FlowPhase::kLossRecovery) {
    // Stays evict-averse until the hole at lost_seq fills (§4.2.5).
    return;
  }
  SetPhase(entry, entry->ooo_queue.empty() ? FlowPhase::kPostMerge : FlowPhase::kActiveMerge);
}

TimeNs Juggler::HandleOfoTimeout(FlowEntry* entry) {
  ++jstats_.ofo_timeout_events;
  const Seq hole = entry->seq_next;
  const TimeNs cost = FlushAll(entry, FlushReason::kOfoTimeout);
  entry->flush_timestamp = Now();
  if (entry->phase != FlowPhase::kLossRecovery) {
    // Best-effort: track only the FIRST missing packet (§4.2.5). Repeated
    // timeouts while already in loss recovery keep the original lost_seq —
    // the earliest hole fills soonest, releasing the flow back to the
    // active list promptly even when later holes are still open.
    entry->lost_seq = hole;
    ++jstats_.loss_recovery_entries;
    SetPhase(entry, FlowPhase::kLossRecovery);
  }
  return cost;
}

TimeNs Juggler::InsertPacket(FlowEntry* entry, const Packet& p, bool* duplicate) {
  *duplicate = false;
  auto& queue = entry->ooo_queue;
  const uint32_t max_payload = config_.max_segment_payload;
  TimeNs cost = 0;

  // In-order fast path: extend the tail of the in-sequence head run. This is
  // the path all in-order traffic takes, and it costs exactly what standard
  // GRO costs — no OOO machinery.
  if (!queue.empty() && queue.front().start_seq() == entry->seq_next &&
      p.seq == queue.front().end_seq()) {
    switch (queue.front().TryMerge(p, max_payload)) {
      case SegmentBuilder::MergeResult::kMerged:
      case SegmentBuilder::MergeResult::kMergedFinal:
        NoteEnqueued(entry, p.payload_len);
        CoalesceForward(&queue, 0, max_payload);
        return cost;
      default:
        break;  // metadata/size refusal: fall through to a fresh run
    }
  }
  if (queue.empty()) {
    if (p.seq != entry->seq_next) {
      cost += costs_->juggler_ooo_insert;
    }
    queue.emplace_back();
    queue.back().Start(p);
    NoteEnqueued(entry, p.payload_len);
    return cost;
  }

  // Search for the insert position from the tail: arriving packets carry
  // recent sequence numbers, so the right spot is almost always at or near
  // the back — O(1) in practice even when the queue holds many runs (§3.2).
  cost += costs_->juggler_ooo_insert;
  size_t idx = queue.size();  // insertion index among run starts
  while (idx > 0 && SeqAfter(queue[idx - 1].start_seq(), p.seq)) {
    --idx;
    cost += costs_->juggler_ooo_search_per_run;
  }
  if (idx > 0) {
    SegmentBuilder& prev = queue[idx - 1];  // prev.start <= p.seq
    if (SeqBefore(p.seq, prev.end_seq())) {
      // Overlaps buffered data: best-effort, let TCP deduplicate.
      *duplicate = true;
      ++jstats_.duplicate_packets;
      Deliver(ToSegment(p), FlushReason::kSeqBeforeNext);
      return cost + costs_->gro_flush_per_segment;
    }
    if (p.seq == prev.end_seq()) {
      switch (prev.TryMerge(p, max_payload)) {
        case SegmentBuilder::MergeResult::kMerged:
        case SegmentBuilder::MergeResult::kMergedFinal:
          NoteEnqueued(entry, p.payload_len);
          CoalesceForward(&queue, idx - 1, max_payload);
          return cost;
        default:
          break;  // metadata/size refusal: fresh run right after prev
      }
    }
  }
  if (idx < queue.size() && SeqAfter(p.end_seq(), queue[idx].start_seq())) {
    // Overlaps the following run.
    *duplicate = true;
    ++jstats_.duplicate_packets;
    Deliver(ToSegment(p), FlushReason::kSeqBeforeNext);
    return cost + costs_->gro_flush_per_segment;
  }
  SegmentBuilder fresh;
  fresh.Start(p);
  queue.insert(queue.begin() + static_cast<long>(idx), std::move(fresh));
  NoteEnqueued(entry, p.payload_len);
  CoalesceForward(&queue, idx, max_payload);
  return cost;
}

TimeNs Juggler::ReceiveBatch(PacketPtr* packets, size_t count) {
  // Warm the flow-table home slots of every distinct flow in the batch
  // before processing starts, so lookups probe lines already in flight.
  // Consecutive same-flow packets share one prefetch: within a run only the
  // first lookup probes at all (the rest hit the last_entry_ memo), while
  // cross-flow interleaves (Fig. 10, the perf_scale round-robin) get every
  // distinct flow's slot line warming in parallel before the first fold
  // touches it. Per-packet observable behavior is untouched — order, costs,
  // stats and trace events match the one-at-a-time path exactly.
  for (size_t i = 0; i < count; ++i) {
    if (i == 0 || !(packets[i]->flow == packets[i - 1]->flow)) {
      table_.Prefetch(packets[i]->flow);
    }
  }
  TimeNs cost = 0;
  size_t i = 0;
  while (i < count) {
    const size_t folded = TryFoldRun(packets + i, count - i, &cost);
    if (folded > 0) {
      i += folded;
      continue;
    }
    // Qualified call: static dispatch, so Receive() inlines into this loop
    // instead of re-entering the vtable per packet — the whole point of the
    // batch handoff. Decorators that override Receive() override
    // ReceiveBatch() too, so skipping the virtual hop loses nothing.
    cost += Juggler::Receive(std::move(packets[i]));
    ++i;
  }
  return cost;
}

size_t Juggler::TryFoldRun(PacketPtr* packets, size_t count, TimeNs* cost) {
  // Folds a leading run of ACK-only data packets from one flow, each
  // extending the tail of one existing OOO run, into a single ExtendTail
  // commit plus batched stats, cost and packet release. The hard rule: a
  // batch boundary is observably identical to back-to-back arrivals, so
  // every admission check below mirrors the exact path per-packet Receive()
  // takes — same lookup/memo decisions, same stats, same modeled CPU cost,
  // same (absent) trace events — and any packet that would do anything else
  // (create a flow, start a fresh run, flush, duplicate-deliver, cross a
  // metadata boundary) is left for the per-packet path.
  const Packet& first = *packets[0];
  if (first.flags != kFlagAck || first.payload_len == 0) {
    return 0;  // pure ACKs, SYN/FIN, PSH/URG: direct delivery or eager flush
  }
  // Resolve the entry with the same memo-then-probe decisions Receive()
  // makes: a memo hit skips both the probe and the table's clock-referenced
  // mark, so eviction candidate order stays identical.
  FlowEntry* entry = last_entry_;
  if (entry == nullptr || !(entry->key == first.flow)) {
    entry = table_.Find(first.flow);
    if (entry == nullptr) {
      return 0;  // flow creation: full path
    }
    last_entry_ = entry;
  }
  auto& queue = entry->ooo_queue;
  const size_t runs = queue.size();
  if (runs == 0) {
    return 0;  // post-merge reactivation / first packet of a fresh entry
  }
  // Locate the run whose tail the packet extends: the per-flow cursor (the
  // run this flow's previous fold extended) first, else the tail-ward scan
  // InsertPacket would make. Run end sequences are strictly increasing, so
  // at most one run can match.
  size_t j;
  if (entry->fold_run_hint < runs && queue[entry->fold_run_hint].end_seq() == first.seq) {
    j = entry->fold_run_hint;
  } else {
    size_t idx = runs;
    while (idx > 0 && SeqAfter(queue[idx - 1].start_seq(), first.seq)) {
      --idx;
    }
    if (idx == 0 || queue[idx - 1].end_seq() != first.seq) {
      return 0;  // front insert, fresh run, or overlap: full path
    }
    j = idx - 1;
  }
  // A packet landing exactly on the next run's start is a duplicate to
  // Receive() (its byte range overlaps that run), not a tail merge.
  const bool has_next = j + 1 < runs;
  const Seq next_start = has_next ? queue[j + 1].start_seq() : Seq{};
  if (has_next && !SeqAfter(next_start, first.seq)) {
    return 0;
  }
  const bool head_in_seq = j == 0 && queue.front().start_seq() == entry->seq_next;
  if (head_in_seq && queue.front().needs_flush()) {
    return 0;  // Receive()'s head path would flush right after the merge
  }
  if (!head_in_seq && queue.front().start_seq() == entry->seq_next &&
      RunReady(queue.front(), config_.max_segment_payload)) {
    return 0;  // an in-sequence ready head run flushes after every insert
  }

  SegmentBuilder& run = queue[j];
  const uint32_t token = run.options_token();
  const bool ce = run.segment().ce_mark;
  const uint32_t max_payload = config_.max_segment_payload;
  uint32_t payload = run.payload_len();
  Seq end = run.end_seq();
  uint32_t bytes = 0;
  uint32_t mtus = 0;
  uint8_t flags_or = 0;
  Seq ack_seq = 0;
  uint32_t ack_rwnd = 0;
  TimeNs last_rx = 0;
  size_t i = 0;
  while (i < count) {
    const Packet& p = *packets[i];
    if (!(p.flow == entry->key) || p.flags != kFlagAck || p.payload_len == 0 ||
        p.seq != end || p.options_token != token || p.ce_mark != ce) {
      break;
    }
    if (head_in_seq) {
      // Strict bound: after the merge the head must still not be
      // flush-ready (RunReady is payload + kMss > cap, and Receive()'s head
      // path flushes the moment it is), so the fold stops one MTU short of
      // the cap. Admitting right up to the cap would sail past the point
      // where per-packet delivery flushes — observable with sub-MSS
      // packets.
      if (payload + p.payload_len + kMss > max_payload) {
        break;
      }
    } else if (payload + p.payload_len > max_payload) {
      break;  // TryMerge would refuse (kRefusedSize)
    }
    payload += p.payload_len;
    end += p.payload_len;
    bytes += p.payload_len;
    ++mtus;
    flags_or |= p.flags;
    ack_seq = p.ack_seq;
    ack_rwnd = p.ack_rwnd;
    if (p.nic_rx_time > last_rx) {
      last_rx = p.nic_rx_time;
    }
    ++i;
    if (has_next && !SeqAfter(next_start, end)) {
      // The merged tail reached the next run's start: commit now so
      // CoalesceForward runs at exactly the packet where per-packet
      // delivery would have coalesced (possibly absorbing that run's
      // needs_flush flag and changing what flushes next).
      break;
    }
  }
  if (mtus == 0) {
    return 0;
  }
  run.ExtendTail(bytes, mtus, flags_or, ack_seq, ack_rwnd, last_rx);
  // Batched free: one pool load and one watermark check for the whole run,
  // instead of a deleter call per packet.
  PacketPool::ReleaseBatch(packets, i);
  stats_.packets_in += mtus;
  stats_.data_packets_in += mtus;
  jstats_.buffered_bytes_in += bytes;
  jstats_.enqueued_bytes_by_phase[static_cast<int>(entry->phase)] += bytes;
  TimeNs per_packet = costs_->gro_per_packet;
  if (!head_in_seq) {
    // Receive() classifies these as out-of-order and reaches the run via
    // InsertPacket's tail-ward scan: charge the identical insert + per-run
    // search cost it would have accumulated.
    stats_.ooo_packets += mtus;
    per_packet += costs_->juggler_ooo_insert +
                  static_cast<TimeNs>(runs - 1 - j) * costs_->juggler_ooo_search_per_run;
  }
  *cost += static_cast<TimeNs>(mtus) * per_packet;
  entry->fold_run_hint = static_cast<uint32_t>(j);
  CoalesceForward(&queue, j, max_payload);
  if (head_in_seq && RunReady(queue.front(), max_payload)) {
    *cost += FlushPrefix(entry, /*ready_only=*/true, FlushReason::kFlags);
  }
  return i;
}

TimeNs Juggler::Receive(PacketPtr packet) {
  ++stats_.packets_in;
  TimeNs cost = costs_->gro_per_packet;
  if (DeliverDirectIfUnmergeable(packet)) {
    return cost + costs_->gro_flush_per_segment;
  }
  ++stats_.data_packets_in;
  const Packet& p = *packet;

  FlowEntry* entry = nullptr;
  if (last_entry_ != nullptr && last_entry_->key == p.flow) {
    entry = last_entry_;
  } else {
    entry = table_.Find(p.flow);
    if (entry == nullptr) {
      // Initial phase (§4.2.1): create the entry, seed seq_next with this
      // packet's sequence number, enter build-up.
      entry = CreateEntry(p.flow, &cost);
      last_entry_ = entry;
      entry->seq_next = p.seq;
      bool duplicate = false;
      cost += InsertPacket(entry, p, &duplicate);
      cost += FlushPrefix(entry, /*ready_only=*/true, FlushReason::kFlags);
      return cost;
    }
    last_entry_ = entry;
  }

  // Head-run extension fast path: the packet continues the in-sequence run
  // at the head of the queue — what every in-order packet does in every
  // phase, so this skips the phase dispatch and position search below.
  // Post-merge flows hold no runs, so reactivation still takes the slow
  // path. A merge refusal (metadata/size) falls through unchanged.
  auto& queue = entry->ooo_queue;
  if (!queue.empty() && queue.front().start_seq() == entry->seq_next &&
      p.seq == queue.front().end_seq()) {
    const auto merged = queue.front().TryMerge(p, config_.max_segment_payload);
    if (merged == SegmentBuilder::MergeResult::kMerged ||
        merged == SegmentBuilder::MergeResult::kMergedFinal) {
      NoteEnqueued(entry, p.payload_len);
      CoalesceForward(&queue, 0, config_.max_segment_payload);
      if (RunReady(queue.front(), config_.max_segment_payload)) {
        cost += FlushPrefix(entry, /*ready_only=*/true, FlushReason::kFlags);
      }
      return cost;
    }
  }

  if (entry->phase == FlowPhase::kBuildUp) {
    // §4.2.2: seq_next may move backwards while we learn the true minimum.
    if (SeqBefore(p.seq, entry->seq_next)) {
      if (config_.enable_buildup_phase) {
        entry->seq_next = p.seq;
        ++jstats_.seq_next_backward_moves;
      } else {
        // Ablation: behave like active-merge from the first packet.
        Deliver(ToSegment(p), FlushReason::kSeqBeforeNext);
        return cost + costs_->gro_flush_per_segment;
      }
    }
    if (p.seq != entry->seq_next || !entry->ooo_queue.empty()) {
      const bool in_order = !entry->ooo_queue.empty() &&
                            entry->ooo_queue.front().start_seq() == entry->seq_next &&
                            p.seq == entry->ooo_queue.front().end_seq();
      if (!in_order) {
        ++stats_.ooo_packets;
      }
    }
    bool duplicate = false;
    cost += InsertPacket(entry, p, &duplicate);
    cost += FlushPrefix(entry, /*ready_only=*/true, FlushReason::kFlags);
    return cost;
  }

  if (SeqBefore(p.seq, entry->seq_next)) {
    // Table 2 row 1: before seq_next means already flushed — likely a
    // retransmission; never buffer it (Figure 6).
    Deliver(ToSegment(p), FlushReason::kSeqBeforeNext);
    cost += costs_->gro_flush_per_segment;
    if (entry->phase == FlowPhase::kLossRecovery && SeqBeforeEq(p.seq, entry->lost_seq) &&
        SeqAfter(p.end_seq(), entry->lost_seq)) {
      // The hole filled: back to the active list (Figure 7). Best-effort —
      // later holes need not have filled.
      ++jstats_.loss_recovery_exits;
      entry->flush_timestamp = Now();
      SetPhase(entry, FlowPhase::kActiveMerge);  // leave loss list first
      UpdatePhaseAfterFlush(entry);
    }
    return cost;
  }

  // New data at or past seq_next: buffer it.
  const bool in_order =
      (entry->ooo_queue.empty() && p.seq == entry->seq_next) ||
      (!entry->ooo_queue.empty() && entry->ooo_queue.front().start_seq() == entry->seq_next &&
       p.seq == entry->ooo_queue.front().end_seq());
  if (!in_order) {
    ++stats_.ooo_packets;
  }
  if (entry->phase == FlowPhase::kPostMerge) {
    // Reverse edge of §4.2.4: inactive flow becomes active again.
    SetPhase(entry, FlowPhase::kActiveMerge);
    entry->flush_timestamp = Now();
  }
  bool duplicate = false;
  cost += InsertPacket(entry, p, &duplicate);
  cost += FlushPrefix(entry, /*ready_only=*/true, FlushReason::kFlags);
  if (entry->phase == FlowPhase::kActiveMerge && entry->ooo_queue.empty()) {
    // Duplicate delivery may have left the queue empty with no flush.
    SetPhase(entry, FlowPhase::kPostMerge);
  }
  return cost;
}

TimeNs Juggler::CheckTimeouts() {
  TimeNs cost = 0;
  const TimeNs now = Now();
  FlowList* lists[] = {&active_list_, &loss_list_};
  for (FlowList* list : lists) {
    FlowEntry* entry = list->front();
    while (entry != nullptr) {
      FlowEntry* next = list->NextOf(entry);
      if (!entry->ooo_queue.empty()) {
        if (entry->ooo_queue.front().start_seq() == entry->seq_next &&
            now - entry->flush_timestamp >= config_.inseq_timeout) {
          ++jstats_.inseq_timeout_flushes;
          cost += FlushPrefix(entry, /*ready_only=*/false, FlushReason::kInseqTimeout);
        }
        if (!entry->ooo_queue.empty() &&
            entry->ooo_queue.front().start_seq() != entry->seq_next &&
            now - entry->flush_timestamp >= config_.ofo_timeout) {
          cost += HandleOfoTimeout(entry);
        }
      }
      entry = next;
    }
  }
  return cost;
}

TimeNs Juggler::FlowDeadline(const FlowEntry& entry) const {
  if (entry.ooo_queue.empty()) {
    return kNoTimer;
  }
  if (entry.ooo_queue.front().start_seq() == entry.seq_next) {
    return entry.flush_timestamp + config_.inseq_timeout;
  }
  return entry.flush_timestamp + config_.ofo_timeout;
}

void Juggler::RearmTimer() {
  TimeNs earliest = kNoTimer;
  FlowList* lists[] = {const_cast<FlowList*>(&active_list_), const_cast<FlowList*>(&loss_list_)};
  for (FlowList* list : lists) {
    for (FlowEntry* entry : *list) {
      const TimeNs deadline = FlowDeadline(*entry);
      if (deadline != kNoTimer && (earliest == kNoTimer || deadline < earliest)) {
        earliest = deadline;
      }
    }
  }
  if (earliest != armed_deadline_) {
    armed_deadline_ = earliest;
    ArmTimer(earliest);
  }
}

Juggler::AuditView Juggler::Audit() const {
  AuditView view;
  view.active_len = active_list_.size();
  view.inactive_len = inactive_list_.size();
  view.loss_len = loss_list_.size();
  view.table_size = table_.size();
  view.armed_deadline = armed_deadline_;
  view.buffered_bytes_in = jstats_.buffered_bytes_in;
  view.buffered_bytes_out = jstats_.buffered_bytes_out;

  // Physical list membership, discovered by walking the lists (not trusted
  // from entry->phase — the whole point is to catch disagreement).
  std::unordered_map<const FlowEntry*, ListId> membership;
  const FlowList* lists[] = {&active_list_, &inactive_list_, &loss_list_};
  const ListId ids[] = {ListId::kActive, ListId::kInactive, ListId::kLoss};
  for (int l = 0; l < 3; ++l) {
    for (const FlowEntry* entry : *const_cast<FlowList*>(lists[l])) {
      membership.emplace(entry, ids[l]);
    }
  }

  view.flows.reserve(table_.size());
  table_.ForEach([&](const FiveTuple& key, const FlowEntry& entry) {
    AuditView::Flow f;
    f.key = key;
    f.phase = entry.phase;
    auto it = membership.find(&entry);
    f.list = it == membership.end() ? ListId::kNone : it->second;
    f.generation = entry.generation;
    f.seq_next = entry.seq_next;
    f.lost_seq = entry.lost_seq;
    f.buffered_bytes = 0;
    for (const auto& run : entry.ooo_queue) {
      f.buffered_bytes += run.payload_len();
    }
    f.queue_runs = entry.ooo_queue.size();
    f.flush_timestamp = entry.flush_timestamp;
    view.flows.push_back(f);
  });
  return view;
}

std::vector<Juggler::FlowSnapshot> Juggler::DebugSnapshot() const {
  std::vector<FlowSnapshot> out;
  out.reserve(table_.size());
  const TimeNs now = ctx_.now != nullptr ? *ctx_.now : 0;
  table_.ForEach([&](const FiveTuple& key, const FlowEntry& entry) {
    out.push_back(FlowSnapshot{key, entry.phase, entry.seq_next, entry.lost_seq,
                               entry.ooo_queue.size(), now - entry.flush_timestamp});
  });
  return out;
}

TimeNs Juggler::PollComplete() {
  const TimeNs cost = CheckTimeouts();
  RearmTimer();
  return cost;
}

TimeNs Juggler::OnTimer() {
  armed_deadline_ = kNoTimer;
  const TimeNs cost = CheckTimeouts();
  RearmTimer();
  return cost;
}

TimeNs Juggler::ApplyFlowCapPressure(size_t max_flows) {
  config_.max_flows = max_flows < 1 ? nominal_max_flows_ : max_flows;
  TimeNs cost = 0;
  while (table_.size() > config_.max_flows) {
    ++jstats_.pressure_evictions;
    cost += EvictOne();
  }
  // Evictions may have removed the flows whose deadlines the armed timer was
  // tracking (or all of them).
  RearmTimer();
  return cost;
}

namespace {

const char* PhaseIndexName(int phase) {
  return phase == kFlowPhaseNone ? "none" : FlowPhaseName(static_cast<FlowPhase>(phase));
}

}  // namespace

void PublishJugglerStats(const JugglerStats& stats, const std::string& label,
                         MetricsRegistry* registry) {
  for (int from = 0; from <= kFlowPhaseCount; ++from) {
    for (int to = 0; to < kFlowPhaseCount; ++to) {
      if (stats.phase_transitions[from][to] == 0) continue;
      registry->AddCounter(
          "juggler.phase_transition",
          label + "/" + std::string(PhaseIndexName(from)) + "->" + PhaseIndexName(to),
          stats.phase_transitions[from][to]);
    }
  }
  for (int phase = 0; phase < kFlowPhaseCount; ++phase) {
    const char* name = PhaseIndexName(phase);
    if (stats.enqueued_bytes_by_phase[phase] != 0) {
      registry->AddCounter("juggler.enqueued_bytes", label + "/" + name,
                           stats.enqueued_bytes_by_phase[phase]);
    }
    if (stats.flushed_bytes_by_phase[phase] != 0) {
      registry->AddCounter("juggler.flushed_bytes", label + "/" + name,
                           stats.flushed_bytes_by_phase[phase]);
    }
  }
  registry->AddCounter("juggler.flows_created", label, stats.flows_created);
  registry->AddCounter("juggler.evictions_inactive", label, stats.evictions_inactive);
  registry->AddCounter("juggler.evictions_active", label, stats.evictions_active);
  registry->AddCounter("juggler.evictions_loss", label, stats.evictions_loss);
  registry->AddCounter("juggler.pressure_evictions", label, stats.pressure_evictions);
  registry->AddCounter("juggler.evicted_bytes", label, stats.evicted_bytes);
  registry->AddCounter("juggler.inseq_timeout_flushes", label, stats.inseq_timeout_flushes);
  registry->AddCounter("juggler.ofo_timeout_events", label, stats.ofo_timeout_events);
  registry->AddCounter("juggler.seq_next_backward_moves", label,
                       stats.seq_next_backward_moves);
  registry->AddCounter("juggler.loss_recovery_entries", label, stats.loss_recovery_entries);
  registry->AddCounter("juggler.loss_recovery_exits", label, stats.loss_recovery_exits);
  registry->AddCounter("juggler.duplicate_packets", label, stats.duplicate_packets);
  registry->AddCounter("juggler.buffered_bytes_in", label, stats.buffered_bytes_in);
  registry->AddCounter("juggler.buffered_bytes_out", label, stats.buffered_bytes_out);
  registry->MaxGauge("juggler.max_active_list_len", label, stats.max_active_list_len);
  registry->MaxGauge("juggler.max_inactive_list_len", label, stats.max_inactive_list_len);
  registry->MaxGauge("juggler.max_loss_list_len", label, stats.max_loss_list_len);
}

}  // namespace juggler
