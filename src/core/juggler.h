// Juggler: the paper's reordering-resilient GRO engine (§4).
//
// Juggler extends GRO with a per-RX-queue `gro_table` of flow entries. Each
// entry keeps an out-of-order queue of merged runs plus the state of §4.1:
//
//   flush_timestamp — last time this flow flushed packets up the stack
//   seq_next        — best guess of the largest sequence already flushed
//   lost_seq        — first missing byte when a loss was inferred
//
// A flow moves through the five phases of Figure 5 / Table 1 and is always a
// member of exactly one of three lists (Figure 4):
//
//   active list        — build-up + active-merging flows (not safe to evict)
//   inactive list      — post-merge flows (safe to evict: empty OOO queue)
//   loss-recovery list — flows that hit ofo_timeout (eviction would cause
//                        repeated timeouts, §4.3)
//
// Flush conditions are Table 2 verbatim: retransmissions (seq before
// seq_next) bypass the queue, full 64KB segments and PSH/URG flags flush
// eagerly, metadata mismatches split runs, and the two timeouts —
// inseq_timeout and ofo_timeout — are checked at poll completions and in one
// high-resolution timer callback per gro_table.
//
// On in-order traffic the fast path is byte-for-byte standard GRO: packets
// merge into the head run and no out-of-order machinery runs, so there is no
// extra CPU cost (§5.1.1).

#ifndef JUGGLER_SRC_CORE_JUGGLER_H_
#define JUGGLER_SRC_CORE_JUGGLER_H_

#include <cstdint>
#include <vector>

#include "src/cpu/cost_model.h"
#include "src/gro/flow_table.h"
#include "src/gro/gro_engine.h"
#include "src/gro/segment_builder.h"
#include "src/util/intrusive_list.h"
#include "src/util/seq.h"

namespace juggler {

struct JugglerConfig {
  // Max time partially-merged in-sequence data may be held (Table 2 row 5).
  // Rule of thumb (§5.2.1): the time to receive one max-size TSO segment at
  // line rate — 52µs at 10Gb/s, 13µs at 40Gb/s. The paper's default is 15µs.
  TimeNs inseq_timeout = Us(15);
  // Max time to wait for a missing packet before declaring it lost (Table 2
  // row 6). Set to the expected delay difference across paths minus the
  // interrupt-coalescing period (§5.2.1). The paper's default is 50µs.
  TimeNs ofo_timeout = Us(50);
  // Hard cap on gro_table entries (§3.3: strict upper limit against memory
  // exhaustion). §5.2.2 finds 8–64 suffices.
  size_t max_flows = 64;
  // GRO merge cap ("64KB" = 45 MTU payloads).
  uint32_t max_segment_payload = kMaxTsoPayload;
  // Remark 1 ablation: when false, seq_next is pinned to the first packet's
  // sequence number instead of learning a minimum during build-up.
  bool enable_buildup_phase = true;
  // Test-only planted defect for the failure-forensics harness: over-counts
  // buffered_bytes_out by one on every Table-2 row-6 (ofo_timeout) flush
  // that moved data, breaking the conservation law the auditor enforces.
  // Must stay false outside forensics tests.
  bool debug_flush_accounting_skew = false;
};

enum class FlowPhase : uint8_t {
  kBuildUp = 0,     // learning seq_next; it may move backwards (§4.2.2)
  kActiveMerge,     // merging + flushing; seq_next only moves forward (§4.2.3)
  kPostMerge,       // OOO queue empty; safe to evict (§4.2.4)
  kLossRecovery,    // ofo_timeout inferred a loss; evict-averse (§4.2.5)
};

const char* FlowPhaseName(FlowPhase phase);

// Pseudo-phase index for "no phase yet" in transition accounting and trace
// events: a flow's creation edge is recorded as none -> build_up.
inline constexpr int kFlowPhaseNone = 4;
inline constexpr int kFlowPhaseCount = 4;

// One gro_table entry (struct flow_entry in §4.1).
struct FlowEntry {
  FiveTuple key;
  FlowPhase phase = FlowPhase::kBuildUp;
  // Out-of-order queue: runs of merged contiguous packets, sorted by start
  // sequence. Contiguous same-metadata runs coalesce, so the queue stays as
  // short as the number of distinct holes + metadata boundaries.
  std::vector<SegmentBuilder> ooo_queue;
  TimeNs flush_timestamp = 0;
  Seq seq_next = 0;
  Seq lost_seq = 0;
  // Distinguishes reincarnations of the same five-tuple after eviction, so
  // auditors tracking per-flow history don't compare across generations.
  uint64_t generation = 0;
  // Per-flow run cursor for the batch fold: index into ooo_queue of the run
  // the last folded packet extended. Pure hint — validated (bounds + exact
  // tail match) before use, so stale values after flushes, coalesces or
  // inserts cost one failed compare, never correctness.
  uint32_t fold_run_hint = 0;
  IntrusiveListNode list_node;
};

struct JugglerStats {
  uint64_t flows_created = 0;
  uint64_t evictions_inactive = 0;
  uint64_t evictions_active = 0;
  uint64_t evictions_loss = 0;
  // Evictions forced by ApplyFlowCapPressure (a subset of the three above).
  uint64_t pressure_evictions = 0;
  uint64_t inseq_timeout_flushes = 0;
  uint64_t ofo_timeout_events = 0;
  uint64_t seq_next_backward_moves = 0;
  uint64_t loss_recovery_entries = 0;
  uint64_t loss_recovery_exits = 0;
  uint64_t duplicate_packets = 0;  // overlapped an existing buffered run
  size_t max_active_list_len = 0;
  size_t max_inactive_list_len = 0;
  size_t max_loss_list_len = 0;
  // Conservation-law counters for the invariant auditor: every payload byte
  // entering an OOO queue must leave it through a Deliver (in == out + held).
  uint64_t buffered_bytes_in = 0;
  uint64_t buffered_bytes_out = 0;
  // §4 phase machine accounting. phase_transitions[from][to] counts edges
  // actually taken (from = kFlowPhaseNone for creation); the by-phase byte
  // counters split the conservation law per phase: for each phase,
  // enqueued = flushed + evicted + held.
  uint64_t phase_transitions[kFlowPhaseCount + 1][kFlowPhaseCount] = {};
  uint64_t enqueued_bytes_by_phase[kFlowPhaseCount] = {};
  uint64_t flushed_bytes_by_phase[kFlowPhaseCount] = {};
  uint64_t evicted_bytes = 0;
};

class Juggler : public GroEngine {
 public:
  Juggler(const CpuCostModel* costs, const JugglerConfig& config);

  TimeNs Receive(PacketPtr packet) override;
  TimeNs ReceiveBatch(PacketPtr* packets, size_t count) override;
  TimeNs PollComplete() override;
  TimeNs OnTimer() override;
  // Overload pressure: lower the §3.3 hard cap and evict down to it
  // immediately, in the §4.3 order (0 restores the configured nominal cap).
  // Held bytes are flushed, never discarded, so the conservation law
  // survives brown-outs. The new cap persists — flows created under
  // pressure stay bounded by it until the next call changes it.
  TimeNs ApplyFlowCapPressure(size_t max_flows) override;
  std::string name() const override { return "juggler"; }

  const JugglerConfig& config() const { return config_; }
  const JugglerStats& juggler_stats() const { return jstats_; }

  // Instantaneous list lengths, for the Figure 15/16 experiments.
  size_t active_list_len() const { return active_list_.size(); }
  size_t inactive_list_len() const { return inactive_list_.size(); }
  size_t loss_list_len() const { return loss_list_.size(); }
  size_t flow_table_size() const { return table_.size(); }
  // Table-owned memory (slots + record slabs); bench/perf_scale divides this
  // by the flow count for the tracked bytes-per-flow figure.
  size_t flow_table_resident_bytes() const { return table_.resident_bytes(); }

  // Introspection for debugging and tooling: a snapshot of one flow entry.
  struct FlowSnapshot {
    FiveTuple key;
    FlowPhase phase;
    Seq seq_next;
    Seq lost_seq;
    size_t queue_runs;
    TimeNs since_flush;
  };
  std::vector<FlowSnapshot> DebugSnapshot() const;

  // Structural snapshot for the fault layer's invariant auditor: every table
  // entry annotated with the list it is physically linked on (found by
  // walking the three lists, independently of entry->phase, so list/phase
  // disagreement is observable), plus the engine-wide conservation counters.
  enum class ListId : int { kNone = -1, kActive = 0, kInactive = 1, kLoss = 2 };
  struct AuditView {
    struct Flow {
      FiveTuple key;
      FlowPhase phase;
      ListId list;          // list the entry was found on; kNone = orphaned
      uint64_t generation;
      Seq seq_next;
      Seq lost_seq;
      uint64_t buffered_bytes;  // payload held in the OOO queue
      size_t queue_runs;
      TimeNs flush_timestamp;
    };
    std::vector<Flow> flows;
    size_t active_len = 0;
    size_t inactive_len = 0;
    size_t loss_len = 0;
    size_t table_size = 0;
    TimeNs armed_deadline = kNoTimer;
    uint64_t buffered_bytes_in = 0;
    uint64_t buffered_bytes_out = 0;
  };
  AuditView Audit() const;

  TimeNs armed_deadline() const { return armed_deadline_; }

 private:
  using FlowList = IntrusiveList<FlowEntry, &FlowEntry::list_node>;

  FlowList* ListFor(FlowPhase phase);

  // Moves `entry` to the list matching `phase` and updates entry->phase.
  void SetPhase(FlowEntry* entry, FlowPhase phase);

  // Conservation accounting: every buffered-byte movement funnels through
  // these so the per-phase split (enqueued = flushed + evicted + held)
  // stays consistent with the engine-wide in/out counters.
  void NoteEnqueued(FlowEntry* entry, uint32_t bytes) {
    jstats_.buffered_bytes_in += bytes;
    jstats_.enqueued_bytes_by_phase[static_cast<int>(entry->phase)] += bytes;
  }
  void NoteFlushed(FlowEntry* entry, FlushReason reason, uint32_t bytes) {
    jstats_.buffered_bytes_out += bytes;
    if (reason == FlushReason::kEviction) {
      jstats_.evicted_bytes += bytes;
    } else {
      jstats_.flushed_bytes_by_phase[static_cast<int>(entry->phase)] += bytes;
    }
  }

  // Creates an entry for `tuple`, evicting if the table is full. Adds the
  // eviction cost to *cost. Never fails: the table has at least one entry to
  // evict when full (max_flows >= 1).
  FlowEntry* CreateEntry(const FiveTuple& tuple, TimeNs* cost);

  // §4.3 eviction order: inactive first, then FIFO from the active list,
  // then (last resort, to honor the strict memory bound) loss recovery.
  TimeNs EvictOne();
  TimeNs EvictEntry(FlowEntry* entry);

  // Inserts a data packet (seq >= seq_next, or build-up) into the OOO queue,
  // merging/coalescing runs. Returns CPU cost; sets *duplicate when the
  // packet overlapped an existing run and was delivered directly.
  TimeNs InsertPacket(FlowEntry* entry, const Packet& p, bool* duplicate);

  // Batch-fold fast path (see ReceiveBatch): folds a leading run of same-
  // flow ACK-only data packets, each extending the tail of one existing OOO
  // run, into a single ExtendTail commit plus batched stats/cost/release.
  // Returns the number of packets consumed (0 = not foldable; the caller
  // runs the per-packet path for packets[0]). Adds the exact per-packet CPU
  // cost Receive() would have charged to *cost.
  size_t TryFoldRun(PacketPtr* packets, size_t count, TimeNs* cost);

  // Flushes contiguous runs starting at seq_next. When `ready_only`, stops
  // at the first run that is neither full nor flagged; otherwise flushes the
  // whole contiguous prefix (timeout/eviction path).
  TimeNs FlushPrefix(FlowEntry* entry, bool ready_only, FlushReason reason);

  // Flushes the entire queue in sequence order (ofo_timeout / eviction).
  TimeNs FlushAll(FlowEntry* entry, FlushReason reason);

  // §4.2.5: ofo_timeout fired with a hole at the head.
  TimeNs HandleOfoTimeout(FlowEntry* entry);

  // Phase transition after a flush (Figure 5 edges out of build-up /
  // active-merging).
  void UpdatePhaseAfterFlush(FlowEntry* entry);

  // Timeout checks over the active and loss-recovery lists (§4.2.2: "checked
  // at the end of the polling interval and in one high resolution timer
  // callback per gro_table").
  TimeNs CheckTimeouts();

  // Earliest pending deadline of `entry`, or kNoTimer.
  TimeNs FlowDeadline(const FlowEntry& entry) const;

  void RearmTimer();

  const CpuCostModel* costs_;
  JugglerConfig config_;
  // The configured max_flows, so ApplyFlowCapPressure(0) can undo a
  // brown-out's shrink of config_.max_flows.
  const size_t nominal_max_flows_;
  JugglerStats jstats_;

  // Open-addressing table with slab-pinned entries: FlowEntry addresses are
  // stable for the entry's lifetime, which the intrusive phase lists and
  // last_entry_ memoization both rely on.
  FlowTable<FlowEntry> table_;
  // Memoizes the entry the last data packet hit. Datacenter RX queues see
  // long single-flow runs, so this turns the per-packet hash lookup into one
  // tuple compare on the common path. Pure memoization (entries are slab
  // pinned): invalidated only when its entry leaves the table.
  FlowEntry* last_entry_ = nullptr;
  FlowList active_list_;
  FlowList inactive_list_;
  FlowList loss_list_;
  TimeNs armed_deadline_ = kNoTimer;
};

// Snapshot a JugglerStats into `registry` under `label`: phase-transition
// counters labelled "from->to", eviction/list-occupancy gauges and the
// conservation byte counters.
void PublishJugglerStats(const JugglerStats& stats, const std::string& label,
                         MetricsRegistry* registry);

}  // namespace juggler

#endif  // JUGGLER_SRC_CORE_JUGGLER_H_
