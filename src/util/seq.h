// Wrap-safe 32-bit sequence-number arithmetic, in the style of the Linux
// kernel's before()/after() macros. TCP sequence numbers live in a modular
// 2^32 space; a plain `<` misbehaves once a connection transfers more than
// 4GB. All sequence comparisons in Juggler and in the TCP substrate must go
// through these helpers.

#ifndef JUGGLER_SRC_UTIL_SEQ_H_
#define JUGGLER_SRC_UTIL_SEQ_H_

#include <cstdint>

namespace juggler {

using Seq = uint32_t;

// True iff `a` is strictly before `b` in modular space. Valid as long as the
// two values are within 2^31 of each other, which holds for any window that
// fits in half the sequence space.
constexpr bool SeqBefore(Seq a, Seq b) { return static_cast<int32_t>(a - b) < 0; }

constexpr bool SeqAfter(Seq a, Seq b) { return SeqBefore(b, a); }

constexpr bool SeqBeforeEq(Seq a, Seq b) { return !SeqAfter(a, b); }

constexpr bool SeqAfterEq(Seq a, Seq b) { return !SeqBefore(a, b); }

// Modular distance from `from` to `to`; meaningful when `to` is not before
// `from` by more than 2^31.
constexpr int32_t SeqDelta(Seq from, Seq to) { return static_cast<int32_t>(to - from); }

constexpr Seq SeqMax(Seq a, Seq b) { return SeqAfter(a, b) ? a : b; }

constexpr Seq SeqMin(Seq a, Seq b) { return SeqBefore(a, b) ? a : b; }

// True iff seq lies in the half-open interval [lo, hi) in modular space.
constexpr bool SeqInRange(Seq seq, Seq lo, Seq hi) {
  return SeqAfterEq(seq, lo) && SeqBefore(seq, hi);
}

}  // namespace juggler

#endif  // JUGGLER_SRC_UTIL_SEQ_H_
