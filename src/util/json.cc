#include "src/util/json.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace juggler {

namespace {
const std::string kEmptyString;
}  // namespace

Json Json::Bool(bool v) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = v;
  return j;
}

Json Json::Int(int64_t v) {
  Json j;
  j.kind_ = Kind::kInt;
  j.int_ = v;
  return j;
}

Json Json::Uint(uint64_t v) {
  Json j;
  j.kind_ = Kind::kUint;
  j.uint_ = v;
  return j;
}

Json Json::Double(double v) {
  Json j;
  j.kind_ = Kind::kDouble;
  j.double_ = v;
  return j;
}

Json Json::Str(std::string v) {
  Json j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(v);
  return j;
}

Json Json::Array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::Object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

bool Json::AsBool(bool fallback) const {
  return kind_ == Kind::kBool ? bool_ : fallback;
}

int64_t Json::AsInt(int64_t fallback) const {
  switch (kind_) {
    case Kind::kInt:
      return int_;
    case Kind::kUint:
      return static_cast<int64_t>(uint_);
    case Kind::kDouble:
      return static_cast<int64_t>(double_);
    default:
      return fallback;
  }
}

uint64_t Json::AsUint(uint64_t fallback) const {
  switch (kind_) {
    case Kind::kInt:
      return int_ < 0 ? fallback : static_cast<uint64_t>(int_);
    case Kind::kUint:
      return uint_;
    case Kind::kDouble:
      return double_ < 0 ? fallback : static_cast<uint64_t>(double_);
    default:
      return fallback;
  }
}

double Json::AsDouble(double fallback) const {
  switch (kind_) {
    case Kind::kInt:
      return static_cast<double>(int_);
    case Kind::kUint:
      return static_cast<double>(uint_);
    case Kind::kDouble:
      return double_;
    default:
      return fallback;
  }
}

const std::string& Json::AsString() const {
  return kind_ == Kind::kString ? string_ : kEmptyString;
}

const Json* Json::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) {
    return nullptr;
  }
  for (const auto& [k, v] : members_) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

Json& Json::Set(std::string key, Json value) {
  if (kind_ == Kind::kNull) {
    kind_ = Kind::kObject;
  }
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::Push(Json value) {
  if (kind_ == Kind::kNull) {
    kind_ = Kind::kArray;
  }
  items_.push_back(std::move(value));
  return *this;
}

bool Json::GetBool(const std::string& key, bool* out) const {
  const Json* v = Find(key);
  if (v == nullptr) {
    return true;
  }
  if (v->kind_ != Kind::kBool) {
    return false;
  }
  *out = v->bool_;
  return true;
}

bool Json::GetInt(const std::string& key, int64_t* out) const {
  const Json* v = Find(key);
  if (v == nullptr) {
    return true;
  }
  if (!v->is_number()) {
    return false;
  }
  *out = v->AsInt();
  return true;
}

bool Json::GetUint(const std::string& key, uint64_t* out) const {
  const Json* v = Find(key);
  if (v == nullptr) {
    return true;
  }
  if (!v->is_number()) {
    return false;
  }
  *out = v->AsUint();
  return true;
}

bool Json::GetDouble(const std::string& key, double* out) const {
  const Json* v = Find(key);
  if (v == nullptr) {
    return true;
  }
  if (!v->is_number()) {
    return false;
  }
  *out = v->AsDouble();
  return true;
}

bool Json::GetString(const std::string& key, std::string* out) const {
  const Json* v = Find(key);
  if (v == nullptr) {
    return true;
  }
  if (v->kind_ != Kind::kString) {
    return false;
  }
  *out = v->string_;
  return true;
}

// ------------------------------------------------------------ serializing --

namespace {

void EscapeString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\b':
        out->append("\\b");
        break;
      case '\f':
        out->append("\\f");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

void Newline(std::string* out, int indent, int depth) {
  if (indent >= 0) {
    out->push_back('\n');
    out->append(static_cast<size_t>(indent) * static_cast<size_t>(depth), ' ');
  }
}

}  // namespace

void Json::DumpTo(std::string* out, int indent, int depth) const {
  char buf[40];
  switch (kind_) {
    case Kind::kNull:
      out->append("null");
      return;
    case Kind::kBool:
      out->append(bool_ ? "true" : "false");
      return;
    case Kind::kInt:
      std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(int_));
      out->append(buf);
      return;
    case Kind::kUint:
      std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(uint_));
      out->append(buf);
      return;
    case Kind::kDouble:
      // %.17g survives a parse round trip for every finite double.
      std::snprintf(buf, sizeof buf, "%.17g", double_);
      out->append(buf);
      return;
    case Kind::kString:
      EscapeString(string_, out);
      return;
    case Kind::kArray: {
      if (items_.empty()) {
        out->append("[]");
        return;
      }
      out->push_back('[');
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) {
          out->push_back(',');
        }
        Newline(out, indent, depth + 1);
        items_[i].DumpTo(out, indent, depth + 1);
      }
      Newline(out, indent, depth);
      out->push_back(']');
      return;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        out->append("{}");
        return;
      }
      out->push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) {
          out->push_back(',');
        }
        Newline(out, indent, depth + 1);
        EscapeString(members_[i].first, out);
        out->push_back(':');
        if (indent >= 0) {
          out->push_back(' ');
        }
        members_[i].second.DumpTo(out, indent, depth + 1);
      }
      Newline(out, indent, depth);
      out->push_back('}');
      return;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

// --------------------------------------------------------------- parsing --

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool Parse(Json* out, std::string* error) {
    SkipWs();
    if (!ParseValue(out, 0)) {
      if (error != nullptr) {
        *error = error_ + " at byte " + std::to_string(pos_);
      }
      return false;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      if (error != nullptr) {
        *error = "trailing characters at byte " + std::to_string(pos_);
      }
      return false;
    }
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool Fail(const char* what) {
    if (error_.empty()) {
      error_ = what;
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      ++pos_;
    }
  }

  bool Literal(const char* word, size_t len) {
    if (text_.size() - pos_ < len || text_.compare(pos_, len, word) != 0) {
      return Fail("invalid literal");
    }
    pos_ += len;
    return true;
  }

  bool ParseValue(Json* out, int depth) {
    if (depth > kMaxDepth) {
      return Fail("nesting too deep");
    }
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    switch (text_[pos_]) {
      case 'n':
        *out = Json::Null();
        return Literal("null", 4);
      case 't':
        *out = Json::Bool(true);
        return Literal("true", 4);
      case 'f':
        *out = Json::Bool(false);
        return Literal("false", 5);
      case '"': {
        std::string s;
        if (!ParseString(&s)) {
          return false;
        }
        *out = Json::Str(std::move(s));
        return true;
      }
      case '[':
        return ParseArray(out, depth);
      case '{':
        return ParseObject(out, depth);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseArray(Json* out, int depth) {
    ++pos_;  // '['
    *out = Json::Array();
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      Json item;
      SkipWs();
      if (!ParseValue(&item, depth + 1)) {
        return false;
      }
      out->Push(std::move(item));
      SkipWs();
      if (pos_ >= text_.size()) {
        return Fail("unterminated array");
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseObject(Json* out, int depth) {
    ++pos_;  // '{'
    *out = Json::Object();
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      std::string key;
      if (!ParseString(&key)) {
        return false;
      }
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':'");
      }
      ++pos_;
      SkipWs();
      Json value;
      if (!ParseValue(&value, depth + 1)) {
        return false;
      }
      out->Set(std::move(key), std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) {
        return Fail("unterminated object");
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  bool HexQuad(uint32_t* out) {
    if (text_.size() - pos_ < 4) {
      return Fail("truncated \\u escape");
    }
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Fail("bad hex digit in \\u escape");
      }
    }
    pos_ += 4;
    *out = v;
    return true;
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) {
        break;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          uint32_t cp = 0;
          if (!HexQuad(&cp)) {
            return false;
          }
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00-\uDFFF.
            if (text_.size() - pos_ < 2 || text_[pos_] != '\\' || text_[pos_ + 1] != 'u') {
              return Fail("unpaired surrogate");
            }
            pos_ += 2;
            uint32_t lo = 0;
            if (!HexQuad(&lo)) {
              return false;
            }
            if (lo < 0xDC00 || lo > 0xDFFF) {
              return Fail("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Fail("unpaired surrogate");
          }
          AppendUtf8(cp, out);
          break;
        }
        default:
          return Fail("bad escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(Json* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start || (text_[start] == '-' && pos_ == start + 1)) {
      return Fail("invalid number");
    }
    const std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    if (integral) {
      char* end = nullptr;
      if (token[0] == '-') {
        const long long v = std::strtoll(token.c_str(), &end, 10);
        if (errno != ERANGE && end != nullptr && *end == '\0') {
          *out = Json::Int(v);
          return true;
        }
      } else {
        const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
        if (errno != ERANGE && end != nullptr && *end == '\0') {
          *out = Json::Uint(v);
          return true;
        }
      }
      errno = 0;  // overflowed the 64-bit range: fall back to double
    }
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(d)) {
      return Fail("invalid number");
    }
    *out = Json::Double(d);
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace

bool Json::Parse(std::string_view text, Json* out, std::string* error) {
  return Parser(text).Parse(out, error);
}

}  // namespace juggler
