// A set of disjoint, sorted, wrap-safe [start, end) sequence ranges.
//
// Used on both sides of TCP: the receiver's out-of-order reassembly buffer
// (and the SACK blocks it advertises) and the sender's SACK scoreboard.
// All ranges must lie within half the sequence space of each other, which
// any window-limited TCP guarantees.

#ifndef JUGGLER_SRC_UTIL_SEQ_RANGE_SET_H_
#define JUGGLER_SRC_UTIL_SEQ_RANGE_SET_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/util/seq.h"

namespace juggler {

class SeqRangeSet {
 public:
  using Range = std::pair<Seq, Seq>;  // [start, end)

  // Insert [start, end), merging with overlapping/adjacent ranges.
  void Insert(Seq start, Seq end) {
    if (!SeqBefore(start, end)) {
      return;
    }
    auto it = ranges_.begin();
    while (it != ranges_.end() && SeqBefore(it->second, start)) {
      ++it;
    }
    while (it != ranges_.end() && SeqBeforeEq(it->first, end)) {
      start = SeqMin(start, it->first);
      end = SeqMax(end, it->second);
      it = ranges_.erase(it);
    }
    ranges_.insert(it, Range{start, end});
  }

  // Remove everything strictly before `floor` (clipping a straddling range).
  void ClipBelow(Seq floor) {
    auto it = ranges_.begin();
    while (it != ranges_.end()) {
      if (SeqBeforeEq(it->second, floor)) {
        it = ranges_.erase(it);
        continue;
      }
      if (SeqBefore(it->first, floor)) {
        it->first = floor;
      }
      return;  // sorted: the rest is at or past floor
    }
  }

  bool Covers(Seq seq) const {
    for (const Range& r : ranges_) {
      if (SeqInRange(seq, r.first, r.second)) {
        return true;
      }
      if (SeqBefore(seq, r.first)) {
        break;
      }
    }
    return false;
  }

  // The first uncovered gap at or after `from` that is followed by covered
  // data (i.e., a hole a SACK sender should retransmit). Returns false when
  // `from` is past all ranges.
  bool NextHole(Seq from, Seq* hole_start, Seq* hole_end) const {
    for (const Range& r : ranges_) {
      if (SeqBeforeEq(r.second, from)) {
        continue;
      }
      if (SeqAfter(r.first, from)) {
        *hole_start = from;
        *hole_end = r.first;
        return true;
      }
      from = r.second;  // inside or touching this range: skip past it
    }
    return false;
  }

  // If `from` lies inside a range, returns that range's end; otherwise
  // returns `from` unchanged. (One hop; ranges are disjoint and
  // non-adjacent, so a single hop lands on uncovered space.)
  Seq SkipCovered(Seq from) const {
    for (const Range& r : ranges_) {
      if (SeqInRange(from, r.first, r.second)) {
        return r.second;
      }
      if (SeqAfter(r.first, from)) {
        break;
      }
    }
    return from;
  }

  // Advance a cumulative cursor through any leading ranges it touches,
  // erasing them: the receiver's "drain reassembly buffer" step.
  Seq DrainFrom(Seq cursor) {
    while (!ranges_.empty() && SeqBeforeEq(ranges_.front().first, cursor)) {
      cursor = SeqMax(cursor, ranges_.front().second);
      ranges_.erase(ranges_.begin());
    }
    return cursor;
  }

  bool empty() const { return ranges_.empty(); }
  size_t size() const { return ranges_.size(); }
  void Clear() { ranges_.clear(); }

  Seq max_end() const { return ranges_.empty() ? 0 : ranges_.back().second; }

  uint64_t TotalBytes() const {
    uint64_t total = 0;
    for (const Range& r : ranges_) {
      total += static_cast<uint64_t>(SeqDelta(r.first, r.second));
    }
    return total;
  }

  const std::vector<Range>& ranges() const { return ranges_; }

 private:
  std::vector<Range> ranges_;
};

}  // namespace juggler

#endif  // JUGGLER_SRC_UTIL_SEQ_RANGE_SET_H_
