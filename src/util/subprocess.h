// Watchdogged child execution for the forensics layer.
//
// A fuzzed scenario can do anything — violate an invariant (detected,
// reported), trip a JUG_CHECK (SIGABRT), corrupt memory (sanitizer abort),
// or wedge a barrier in the sharded engine (hang forever). The supervisor
// therefore never runs a candidate scenario in its own process: it forks,
// runs the scenario in the child, and enforces a *wall-clock* watchdog —
// SIGKILL, not a polite signal, because a wedged std::barrier ignores polite.
//
// The child reports structured results over a dedicated pipe (`report_fd`),
// separate from stderr, which is captured too: sanitizer reports and
// JUG_CHECK messages land on stderr and are the only evidence a crashed
// child leaves behind. The parent reaps exactly the child it forked and
// never blocks longer than the timeout plus one drain pass.

#ifndef JUGGLER_SRC_UTIL_SUBPROCESS_H_
#define JUGGLER_SRC_UTIL_SUBPROCESS_H_

#include <functional>
#include <string>

namespace juggler {

struct ChildResult {
  bool forked = false;     // false: fork() itself failed (see error)
  bool timed_out = false;  // watchdog fired; the child was SIGKILLed
  bool exited = false;     // child terminated via _exit / main return
  int exit_code = 0;       // valid when exited
  int term_signal = 0;     // non-zero when the child died by a signal
  std::string report;      // everything the child wrote to report_fd
  std::string stderr_text; // captured child stderr (bounded)
  int64_t wall_ms = 0;     // child lifetime observed by the parent
  std::string error;       // parent-side failure description, if any

  // The child was killed by a signal it did not expect (anything other than
  // the watchdog's own SIGKILL).
  bool crashed() const { return term_signal != 0 && !timed_out; }
};

// Forks; the child runs `fn(report_fd)` and then _exit(0). `fn` writing to
// report_fd is the only supported output channel besides stderr (stdout is
// left alone but should stay unused — gtest owns it in test processes).
// The parent captures report + stderr, waits at most `timeout_ms`
// wall-clock milliseconds, SIGKILLs on expiry, and always reaps the child.
// An `fn` that throws terminates the child with exit code 97.
ChildResult RunChildWithWatchdog(const std::function<void(int report_fd)>& fn, int timeout_ms);

// Writes all of `data` to `fd`, retrying on EINTR / short writes. Returns
// false when the descriptor rejects the data (e.g. the parent died).
bool WriteAll(int fd, const std::string& data);

}  // namespace juggler

#endif  // JUGGLER_SRC_UTIL_SUBPROCESS_H_
