#include "src/util/subprocess.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <ctime>

namespace juggler {

namespace {

// Hard caps so a pathological child cannot balloon the parent. The report is
// structured JSON (small); stderr may carry a full sanitizer trace.
constexpr size_t kMaxReportBytes = 4u << 20;
constexpr size_t kMaxStderrBytes = 256u << 10;

void SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) {
    fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
}

// Drains whatever is readable from `fd` into *out (bounded). Returns false
// once the descriptor reaches EOF or errors terminally.
bool DrainInto(int fd, std::string* out, size_t cap) {
  char buf[4096];
  for (;;) {
    const ssize_t n = read(fd, buf, sizeof buf);
    if (n > 0) {
      if (out->size() < cap) {
        out->append(buf, buf + static_cast<size_t>(std::min<ssize_t>(
                               n, static_cast<ssize_t>(cap - out->size()))));
      }
      continue;
    }
    if (n == 0) {
      return false;  // EOF
    }
    if (errno == EINTR) {
      continue;
    }
    return errno == EAGAIN || errno == EWOULDBLOCK;
  }
}

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

bool WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = write(fd, data.data() + off, data.size() - off);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    return false;
  }
  return true;
}

ChildResult RunChildWithWatchdog(const std::function<void(int report_fd)>& fn, int timeout_ms) {
  ChildResult result;
  int report_pipe[2] = {-1, -1};
  int err_pipe[2] = {-1, -1};
  if (pipe(report_pipe) != 0 || pipe(err_pipe) != 0) {
    result.error = std::string("pipe: ") + std::strerror(errno);
    if (report_pipe[0] >= 0) {
      close(report_pipe[0]);
      close(report_pipe[1]);
    }
    return result;
  }

  const int64_t start_ms = NowMs();
  const pid_t pid = fork();
  if (pid < 0) {
    result.error = std::string("fork: ") + std::strerror(errno);
    close(report_pipe[0]);
    close(report_pipe[1]);
    close(err_pipe[0]);
    close(err_pipe[1]);
    return result;
  }

  if (pid == 0) {
    // Child. Route stderr into the capture pipe, close parent-side ends, run
    // the payload, and _exit without flushing inherited stdio buffers (the
    // parent owns those).
    close(report_pipe[0]);
    close(err_pipe[0]);
    dup2(err_pipe[1], STDERR_FILENO);
    close(err_pipe[1]);
    try {
      fn(report_pipe[1]);
    } catch (...) {
      _exit(97);
    }
    _exit(0);
  }

  // Parent.
  result.forked = true;
  close(report_pipe[1]);
  close(err_pipe[1]);
  SetNonBlocking(report_pipe[0]);
  SetNonBlocking(err_pipe[0]);

  const int64_t deadline_ms = start_ms + timeout_ms;
  bool report_open = true;
  bool err_open = true;
  bool killed = false;
  bool reaped = false;
  int status = 0;

  while (!reaped) {
    // Reap without blocking so a fast child ends the loop promptly.
    const pid_t w = waitpid(pid, &status, WNOHANG);
    if (w == pid) {
      reaped = true;
      break;
    }

    const int64_t now = NowMs();
    if (!killed && now >= deadline_ms) {
      kill(pid, SIGKILL);
      killed = true;
      result.timed_out = true;
    }

    struct pollfd fds[2];
    nfds_t nfds = 0;
    if (report_open) {
      fds[nfds++] = {report_pipe[0], POLLIN, 0};
    }
    if (err_open) {
      fds[nfds++] = {err_pipe[0], POLLIN, 0};
    }
    const int wait_ms =
        killed ? 20 : static_cast<int>(std::min<int64_t>(100, std::max<int64_t>(1, deadline_ms - now)));
    if (nfds > 0) {
      poll(fds, nfds, wait_ms);
    } else {
      struct timespec ts = {0, wait_ms * 1'000'000L};
      nanosleep(&ts, nullptr);
    }
    if (report_open) {
      report_open = DrainInto(report_pipe[0], &result.report, kMaxReportBytes);
    }
    if (err_open) {
      err_open = DrainInto(err_pipe[0], &result.stderr_text, kMaxStderrBytes);
    }
  }

  // Final drain: the child may have written right before exiting.
  if (report_open) {
    DrainInto(report_pipe[0], &result.report, kMaxReportBytes);
  }
  if (err_open) {
    DrainInto(err_pipe[0], &result.stderr_text, kMaxStderrBytes);
  }
  close(report_pipe[0]);
  close(err_pipe[0]);

  result.wall_ms = NowMs() - start_ms;
  if (WIFEXITED(status)) {
    result.exited = true;
    result.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    result.term_signal = WTERMSIG(status);
  }
  return result;
}

}  // namespace juggler
