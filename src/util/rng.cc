#include "src/util/rng.h"

#include <cmath>

namespace juggler {
namespace {

uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) {
    word = SplitMix64(&s);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Lemire's multiply-shift rejection method: unbiased and branch-light.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    const uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextExponential(double mean) {
  // Inverse CDF; guard the log argument away from zero.
  double u = NextDouble();
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(1.0 - u);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace juggler
