#include "src/util/logging.h"

namespace juggler {
namespace {

LogLevel g_log_level = LogLevel::kWarn;

}  // namespace

LogLevel GetLogLevel() { return g_log_level; }

void SetLogLevel(LogLevel level) { g_log_level = level; }

}  // namespace juggler
