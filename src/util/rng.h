// Deterministic random number generation.
//
// Every stochastic component takes an explicit Rng (or a seed) so whole
// experiments are reproducible run-to-run. The generator is xoshiro256**,
// seeded through SplitMix64 — fast, high quality, and trivially forkable so
// independent components can own independent streams.

#ifndef JUGGLER_SRC_UTIL_RNG_H_
#define JUGGLER_SRC_UTIL_RNG_H_

#include <cstdint>

namespace juggler {

class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  void Seed(uint64_t seed);

  // Uniform over the full 64-bit range.
  uint64_t NextU64();

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Exponential with the given mean (> 0). Used for Poisson arrivals.
  double NextExponential(double mean);

  // Bernoulli trial with success probability p.
  bool NextBool(double p);

  // A new, statistically independent generator derived from this one.
  Rng Fork();

 private:
  uint64_t state_[4];
};

}  // namespace juggler

#endif  // JUGGLER_SRC_UTIL_RNG_H_
