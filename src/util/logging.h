// Lightweight leveled logging and check macros.
//
// Logging is off by default (benches print their own tables); tests and
// debugging sessions raise the level. JUG_CHECK is always on — simulator
// invariant violations should abort loudly rather than corrupt results.

#ifndef JUGGLER_SRC_UTIL_LOGGING_H_
#define JUGGLER_SRC_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace juggler {

enum class LogLevel : int {
  kError = 0,
  kWarn = 1,
  kInfo = 2,
  kDebug = 3,
};

// Global threshold; messages above it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

}  // namespace juggler

#define JUG_LOG(level, ...)                                          \
  do {                                                               \
    if (static_cast<int>(level) <=                                   \
        static_cast<int>(::juggler::GetLogLevel())) {                \
      std::fprintf(stderr, "[%s:%d] ", __FILE__, __LINE__);          \
      std::fprintf(stderr, __VA_ARGS__);                             \
      std::fprintf(stderr, "\n");                                    \
    }                                                                \
  } while (0)

#define JUG_ERROR(...) JUG_LOG(::juggler::LogLevel::kError, __VA_ARGS__)
#define JUG_WARN(...) JUG_LOG(::juggler::LogLevel::kWarn, __VA_ARGS__)
#define JUG_INFO(...) JUG_LOG(::juggler::LogLevel::kInfo, __VA_ARGS__)
#define JUG_DEBUG(...) JUG_LOG(::juggler::LogLevel::kDebug, __VA_ARGS__)

#define JUG_CHECK(cond)                                                       \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "JUG_CHECK failed at %s:%d: %s\n", __FILE__,       \
                   __LINE__, #cond);                                          \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#endif  // JUGGLER_SRC_UTIL_LOGGING_H_
