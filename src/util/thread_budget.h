// Process-wide worker-thread budget.
//
// Every component that spins up worker threads — the sweep runner fanning
// out independent simulation points, the sharded engine fanning one large
// scenario across cores — draws from this one budget, so a chaos soak that
// runs parallel sweeps *of* sharded scenarios degrades gracefully instead of
// oversubscribing the machine: the outer layer takes what it needs, inner
// layers see what is left (never less than their own calling thread).
//
// The total is `JUGGLER_THREADS` when set (>=1), else the hardware
// concurrency. Acquire/Release count *concurrently executing* workers: a
// caller that parks while its pool drains should acquire only the pool size.

#ifndef JUGGLER_SRC_UTIL_THREAD_BUDGET_H_
#define JUGGLER_SRC_UTIL_THREAD_BUDGET_H_

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <thread>

namespace juggler {

class ThreadBudget {
 public:
  // Total concurrent workers the process should run: the JUGGLER_THREADS
  // env override when parseable and >= 1, else std::thread::hardware_concurrency
  // (itself clamped to >= 1). Re-read on every call so tests can setenv.
  static size_t Total() {
    if (const char* env = std::getenv("JUGGLER_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v >= 1) {
        return static_cast<size_t>(v);
      }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<size_t>(hw);
  }

  // Reserve up to `want` worker slots. Returns the grant, in [1, want] for
  // want >= 1: a caller can always run on its own thread, even when the
  // budget is exhausted by outer layers, so nested parallelism degrades to
  // sequential instead of deadlocking or oversubscribing further.
  static size_t Acquire(size_t want) {
    if (want == 0) {
      return 0;
    }
    const size_t total = Total();
    size_t used = in_use_.load(std::memory_order_relaxed);
    for (;;) {
      const size_t available = total > used ? total - used : 0;
      size_t grant = want < available ? want : available;
      if (grant == 0) {
        grant = 1;  // the caller's own thread
      }
      if (in_use_.compare_exchange_weak(used, used + grant, std::memory_order_relaxed)) {
        return grant;
      }
    }
  }

  // Return a previous grant (pass exactly what Acquire returned).
  static void Release(size_t granted) {
    in_use_.fetch_sub(granted, std::memory_order_relaxed);
  }

  // Currently reserved workers (diagnostics/tests).
  static size_t InUse() { return in_use_.load(std::memory_order_relaxed); }

 private:
  static inline std::atomic<size_t> in_use_{0};
};

}  // namespace juggler

#endif  // JUGGLER_SRC_UTIL_THREAD_BUDGET_H_
