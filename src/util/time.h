// Time representation for the whole library.
//
// All timestamps and durations are signed 64-bit nanosecond counts. A signed
// type keeps subtraction safe; 64 bits cover ~292 years, far beyond any
// simulation horizon. Link rates are expressed in bits per second.

#ifndef JUGGLER_SRC_UTIL_TIME_H_
#define JUGGLER_SRC_UTIL_TIME_H_

#include <cstdint>

namespace juggler {

using TimeNs = int64_t;

inline constexpr TimeNs kNsPerUs = 1'000;
inline constexpr TimeNs kNsPerMs = 1'000'000;
inline constexpr TimeNs kNsPerSec = 1'000'000'000;

constexpr TimeNs Us(int64_t us) { return us * kNsPerUs; }
constexpr TimeNs Ms(int64_t ms) { return ms * kNsPerMs; }
constexpr TimeNs Sec(int64_t s) { return s * kNsPerSec; }

constexpr double ToUs(TimeNs t) { return static_cast<double>(t) / kNsPerUs; }
constexpr double ToMs(TimeNs t) { return static_cast<double>(t) / kNsPerMs; }
constexpr double ToSec(TimeNs t) { return static_cast<double>(t) / kNsPerSec; }

// Time to serialize `bytes` onto a link of `rate_bps` bits per second.
// Rounds up so back-to-back packets never overlap.
constexpr TimeNs SerializationTime(int64_t bytes, int64_t rate_bps) {
  const int64_t bits = bytes * 8;
  return (bits * kNsPerSec + rate_bps - 1) / rate_bps;
}

// Achieved rate in bits per second for `bytes` transferred over `elapsed`.
constexpr double RateBps(int64_t bytes, TimeNs elapsed) {
  if (elapsed <= 0) {
    return 0.0;
  }
  return static_cast<double>(bytes) * 8.0 * kNsPerSec / static_cast<double>(elapsed);
}

constexpr double ToGbps(double bps) { return bps / 1e9; }

inline constexpr int64_t kGbps = 1'000'000'000;

}  // namespace juggler

#endif  // JUGGLER_SRC_UTIL_TIME_H_
