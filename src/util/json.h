// Minimal self-contained JSON value, parser and serializer.
//
// The forensics layer treats every scenario as a value: a ScenarioSpec or a
// repro bundle must survive a round trip through a file byte-exactly enough
// to replay deterministically. That rules out doubles-only number handling —
// RNG seeds are full-width uint64 — so Json keeps integers exact (int64 or
// uint64) and only falls back to double for genuine fractions. Object member
// order is preserved (vector of pairs, not a map), which keeps serialized
// specs diffable and Dump() deterministic.
//
// Scope: strict-enough RFC 8259 subset. UTF-8 passes through untouched;
// \uXXXX escapes decode to UTF-8 (surrogate pairs included). No comments, no
// trailing commas, no NaN/Inf.

#ifndef JUGGLER_SRC_UTIL_JSON_H_
#define JUGGLER_SRC_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace juggler {

class Json {
 public:
  enum class Kind : uint8_t { kNull, kBool, kInt, kUint, kDouble, kString, kArray, kObject };

  Json() = default;  // null
  static Json Null() { return Json(); }
  static Json Bool(bool v);
  static Json Int(int64_t v);
  static Json Uint(uint64_t v);
  static Json Double(double v);
  static Json Str(std::string v);
  static Json Array();
  static Json Object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kUint || kind_ == Kind::kDouble;
  }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_bool() const { return kind_ == Kind::kBool; }

  // Loose accessors: return `fallback` on kind mismatch. Numeric accessors
  // convert between the three numeric kinds (with the usual narrowing).
  bool AsBool(bool fallback = false) const;
  int64_t AsInt(int64_t fallback = 0) const;
  uint64_t AsUint(uint64_t fallback = 0) const;
  double AsDouble(double fallback = 0.0) const;
  const std::string& AsString() const;  // empty string on mismatch

  // Object access. Find returns nullptr when absent (or not an object).
  const Json* Find(const std::string& key) const;
  // Appends or replaces; turns a null value into an object first.
  Json& Set(std::string key, Json value);
  const std::vector<std::pair<std::string, Json>>& members() const { return members_; }

  // Array access. Push turns a null value into an array first.
  Json& Push(Json value);
  const std::vector<Json>& items() const { return items_; }
  size_t size() const { return kind_ == Kind::kArray ? items_.size() : members_.size(); }

  // Typed object-field helpers for FromJson-style code: fetch `key` and
  // store it into *out; absent keys leave *out unchanged and return true,
  // present-but-wrong-kind keys return false (a malformed document).
  bool GetBool(const std::string& key, bool* out) const;
  bool GetInt(const std::string& key, int64_t* out) const;
  bool GetUint(const std::string& key, uint64_t* out) const;
  bool GetDouble(const std::string& key, double* out) const;
  bool GetString(const std::string& key, std::string* out) const;

  // Serialize. indent < 0: compact one-liner. indent >= 0: pretty-printed
  // with that many spaces per level.
  std::string Dump(int indent = -1) const;

  // Parse `text` into *out. On failure returns false and describes the
  // problem (with byte offset) in *error when non-null.
  static bool Parse(std::string_view text, Json* out, std::string* error = nullptr);

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  int64_t int_ = 0;
  uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace juggler

#endif  // JUGGLER_SRC_UTIL_JSON_H_
