// Minimal intrusive doubly-linked list.
//
// Juggler's gro_table threads each flow entry through exactly one of three
// lists (active / inactive / loss-recovery) and moves entries between them on
// nearly every packet, so membership changes must be O(1) with no allocation.
// The element embeds an IntrusiveListNode and may be on at most one
// IntrusiveList at a time; the node knows whether it is linked, which lets
// callers assert the paper's "a flow is in exactly one list" invariant.
//
// The list does not own its elements; lifetime is managed by the container
// that allocated them (GroTable owns FlowEntry objects).

#ifndef JUGGLER_SRC_UTIL_INTRUSIVE_LIST_H_
#define JUGGLER_SRC_UTIL_INTRUSIVE_LIST_H_

#include <cassert>
#include <cstddef>

namespace juggler {

struct IntrusiveListNode {
  IntrusiveListNode* prev = nullptr;
  IntrusiveListNode* next = nullptr;

  bool linked() const { return prev != nullptr; }
};

// T must expose a public `IntrusiveListNode list_node;` member named by Hook.
template <typename T, IntrusiveListNode T::* Hook>
class IntrusiveList {
 public:
  IntrusiveList() {
    sentinel_.prev = &sentinel_;
    sentinel_.next = &sentinel_;
  }

  IntrusiveList(const IntrusiveList&) = delete;
  IntrusiveList& operator=(const IntrusiveList&) = delete;

  bool empty() const { return sentinel_.next == &sentinel_; }
  size_t size() const { return size_; }

  void PushBack(T* item) { InsertBefore(&sentinel_, item); }
  void PushFront(T* item) { InsertBefore(sentinel_.next, item); }

  T* front() const { return empty() ? nullptr : FromNode(sentinel_.next); }
  T* back() const { return empty() ? nullptr : FromNode(sentinel_.prev); }

  // Unlinks and returns the first element, or nullptr when empty.
  T* PopFront() {
    if (empty()) {
      return nullptr;
    }
    T* item = front();
    Remove(item);
    return item;
  }

  void Remove(T* item) {
    IntrusiveListNode* node = &(item->*Hook);
    assert(node->linked());
    node->prev->next = node->next;
    node->next->prev = node->prev;
    node->prev = nullptr;
    node->next = nullptr;
    --size_;
  }

  static bool IsLinked(const T* item) { return (item->*Hook).linked(); }

  // Forward iteration; safe against removal of the *current* element only if
  // the caller advances first (use the NextOf helper for removal loops).
  class Iterator {
   public:
    explicit Iterator(IntrusiveListNode* node) : node_(node) {}
    T* operator*() const { return FromNode(node_); }
    Iterator& operator++() {
      node_ = node_->next;
      return *this;
    }
    bool operator!=(const Iterator& other) const { return node_ != other.node_; }

   private:
    IntrusiveListNode* node_;
  };

  Iterator begin() { return Iterator(sentinel_.next); }
  Iterator end() { return Iterator(&sentinel_); }

  // The element after `item`, or nullptr at the tail. Lets callers iterate
  // while unlinking elements.
  T* NextOf(T* item) const {
    IntrusiveListNode* node = (item->*Hook).next;
    return node == &sentinel_ ? nullptr : FromNode(node);
  }

 private:
  static T* FromNode(IntrusiveListNode* node) {
    // Recover the enclosing object from its embedded hook.
    const auto offset = reinterpret_cast<size_t>(&(static_cast<T*>(nullptr)->*Hook));
    return reinterpret_cast<T*>(reinterpret_cast<char*>(node) - offset);
  }

  void InsertBefore(IntrusiveListNode* pos, T* item) {
    IntrusiveListNode* node = &(item->*Hook);
    assert(!node->linked());
    node->prev = pos->prev;
    node->next = pos;
    pos->prev->next = node;
    pos->prev = node;
    ++size_;
  }

  IntrusiveListNode sentinel_;
  size_t size_ = 0;
};

}  // namespace juggler

#endif  // JUGGLER_SRC_UTIL_INTRUSIVE_LIST_H_
