// A vector-backed FIFO for small trivially-destructible elements.
//
// std::deque is the obvious container for a push-back/pop-front queue, but
// libstdc++'s deque allocates its map block plus one 512-byte node the
// moment it is constructed — even when it never holds an element. With one
// queue per TCP endpoint that hidden allocation dominates bytes-per-flow at
// the 1M-connection scale point. FlatFifo keeps elements in a single
// contiguous vector with a popped-prefix head index: an empty queue owns no
// heap at all, and a drained queue rewinds to reuse its buffer.
//
// pop_front is O(1) (bump the head index); the dead prefix is reclaimed
// when the queue drains, or slid down when it exceeds both a fixed floor
// and half the buffer — so memory is bounded by 2x the high-water live
// count, amortized O(1) per operation.

#ifndef JUGGLER_SRC_UTIL_FLAT_FIFO_H_
#define JUGGLER_SRC_UTIL_FLAT_FIFO_H_

#include <cstddef>
#include <utility>
#include <vector>

namespace juggler {

template <typename T>
class FlatFifo {
 public:
  bool empty() const { return head_ == items_.size(); }
  size_t size() const { return items_.size() - head_; }

  const T& front() const { return items_[head_]; }
  T& front() { return items_[head_]; }

  void push_back(const T& value) { items_.push_back(value); }

  template <typename... Args>
  void emplace_back(Args&&... args) {
    items_.emplace_back(std::forward<Args>(args)...);
  }

  void pop_front() {
    ++head_;
    if (head_ == items_.size()) {
      items_.clear();
      head_ = 0;
    } else if (head_ > kSlideFloor && head_ * 2 > items_.size()) {
      items_.erase(items_.begin(), items_.begin() + static_cast<ptrdiff_t>(head_));
      head_ = 0;
    }
  }

  void clear() {
    items_.clear();
    head_ = 0;
  }

  // Releases the buffer entirely (clear() keeps capacity for reuse).
  void shrink() {
    items_ = std::vector<T>();
    head_ = 0;
  }

 private:
  static constexpr size_t kSlideFloor = 64;

  std::vector<T> items_;
  size_t head_ = 0;
};

}  // namespace juggler

#endif  // JUGGLER_SRC_UTIL_FLAT_FIFO_H_
