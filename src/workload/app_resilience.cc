#include "src/workload/app_resilience.h"

#include <algorithm>
#include <cstring>

#include "src/util/logging.h"

namespace juggler {

const char* AppWorkloadKindName(AppWorkloadKind kind) {
  switch (kind) {
    case AppWorkloadKind::kNone:
      return "none";
    case AppWorkloadKind::kRpc:
      return "rpc";
    case AppWorkloadKind::kBulkTransfer:
      return "bulk-transfer";
    case AppWorkloadKind::kIncast:
      return "incast";
    case AppWorkloadKind::kReplication:
      return "replication";
  }
  return "?";
}

bool ParseAppWorkloadKind(const char* name, AppWorkloadKind* out) {
  static constexpr AppWorkloadKind kAll[] = {
      AppWorkloadKind::kNone, AppWorkloadKind::kRpc, AppWorkloadKind::kBulkTransfer,
      AppWorkloadKind::kIncast, AppWorkloadKind::kReplication,
  };
  for (AppWorkloadKind k : kAll) {
    if (std::strcmp(name, AppWorkloadKindName(k)) == 0) {
      *out = k;
      return true;
    }
  }
  return false;
}

const char* RequestOutcomeName(RequestOutcome outcome) {
  switch (outcome) {
    case RequestOutcome::kPending:
      return "pending";
    case RequestOutcome::kOk:
      return "ok";
    case RequestOutcome::kTimeout:
      return "timeout";
    case RequestOutcome::kAborted:
      return "aborted";
  }
  return "?";
}

void AppStats::MergeFrom(const AppStats& other) {
  issued += other.issued;
  ok += other.ok;
  timeouts += other.timeouts;
  aborted += other.aborted;
  attempts += other.attempts;
  retries += other.retries;
  duplicate_responses += other.duplicate_responses;
  executions += other.executions;
  duplicates_suppressed += other.duplicates_suppressed;
  forced_terminal += other.forced_terminal;
  latency_us.MergeFrom(other.latency_us);
}

void PublishAppStats(const AppStats& stats, const std::string& label,
                     MetricsRegistry* registry) {
  registry->AddCounter("app.issued", label, stats.issued);
  registry->AddCounter("app.ok", label, stats.ok);
  registry->AddCounter("app.timeouts", label, stats.timeouts);
  registry->AddCounter("app.aborted", label, stats.aborted);
  registry->AddCounter("app.attempts", label, stats.attempts);
  registry->AddCounter("app.retries", label, stats.retries);
  registry->AddCounter("app.duplicate_responses", label, stats.duplicate_responses);
  registry->AddCounter("app.executions", label, stats.executions);
  registry->AddCounter("app.duplicates_suppressed", label, stats.duplicates_suppressed);
  registry->AddCounter("app.forced_terminal", label, stats.forced_terminal);
  if (stats.latency_us.count > 0) {
    registry->RecordHistogram("app.latency_us", label, stats.latency_us);
  }
}

// ------------------------------------------------------- AppIntegrityAuditor

void AppIntegrityAuditor::OnIssue(uint64_t request_id) {
  std::lock_guard<std::mutex> lock(mu_);
  requests_[request_id];  // creates the pending record
}

void AppIntegrityAuditor::OnAttempt(uint64_t request_id, uint64_t token) {
  std::lock_guard<std::mutex> lock(mu_);
  ++requests_[request_id].attempts;
  token_owner_[token] = request_id;
}

bool AppIntegrityAuditor::OnExecute(uint64_t token) {
  std::lock_guard<std::mutex> lock(mu_);
  ++executions_;
  auto it = token_owner_.find(token);
  if (it == token_owner_.end()) {
    ++unknown_token_executions_;
    return false;
  }
  ++requests_[it->second].executions;
  return true;
}

void AppIntegrityAuditor::OnServerDuplicate(uint64_t token) {
  std::lock_guard<std::mutex> lock(mu_);
  (void)token;
  ++duplicates_suppressed_;
}

void AppIntegrityAuditor::OnOutcome(uint64_t request_id, RequestOutcome outcome) {
  std::lock_guard<std::mutex> lock(mu_);
  requests_[request_id].outcome = outcome;
}

void AppIntegrityAuditor::OnDuplicateResponse(uint64_t request_id) {
  std::lock_guard<std::mutex> lock(mu_);
  (void)request_id;
  ++duplicate_responses_;
}

bool AppIntegrityAuditor::FinalCheck(AuditLog* log) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t before = log->violations();
  if (unknown_token_executions_ > 0) {
    log->Violation(name_, "executions for tokens no client sent: " +
                              std::to_string(unknown_token_executions_));
  }
  for (const auto& [id, rec] : requests_) {
    if (rec.outcome == RequestOutcome::kPending) {
      log->Violation(name_, "request " + std::to_string(id) + " hung without terminal outcome");
    }
    if (rec.outcome == RequestOutcome::kOk && rec.executions == 0) {
      log->Violation(name_, "request " + std::to_string(id) +
                                " completed ok but never executed (at-least-once broken)");
    }
    if (rec.executions > 1) {
      log->Violation(name_, "duplicate execution: request " + std::to_string(id) +
                                " executed " + std::to_string(rec.executions) +
                                " times (dedup missed a retry)");
    }
  }
  return log->violations() == before;
}

uint64_t AppIntegrityAuditor::executions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return executions_;
}

uint64_t AppIntegrityAuditor::duplicates_suppressed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return duplicates_suppressed_;
}

// ------------------------------------------------------------------ AppServer

AppServer::AppServer(const AppWorkloadOptions& options, FrameChannel* in, FrameChannel* out,
                     AppIntegrityAuditor* auditor, FlightRecorder* recorder,
                     const TimeNs* clock)
    : options_(options), out_(out), auditor_(auditor), recorder_(recorder), clock_(clock) {
  in->set_on_frame([this](const FrameHeader& h) { OnFrame(h); });
}

void AppServer::OnFrame(const FrameHeader& header) {
  if (header.kind != FrameKind::kRequest && header.kind != FrameKind::kChunk) {
    return;  // a response echoed back would be a wiring bug; ignore quietly
  }
  const bool is_chunk = header.kind == FrameKind::kChunk;
  FrameHeader reply = header;
  reply.kind = is_chunk ? FrameKind::kChunkAck : FrameKind::kResponse;
  const uint64_t reply_bytes = is_chunk ? 128 : options_.response_bytes;
  auto [it, fresh] = seen_.emplace(header.token, header);
  if (fresh) {
    auditor_->OnExecute(header.token);
    ++stats_.executions;
    if (recorder_ != nullptr) {
      recorder_->Record(*clock_, TraceKind::kAppEvent, kAppCodeExecute, header.request_id,
                        header.token);
    }
  } else {
    // Idempotency token already executed: suppress, answer from the table.
    auditor_->OnServerDuplicate(header.token);
    ++stats_.duplicates_suppressed;
    if (recorder_ != nullptr) {
      recorder_->Record(*clock_, TraceKind::kAppEvent, kAppCodeDupSuppressed, header.request_id,
                        header.token);
    }
  }
  out_->SendFrame(std::max<uint64_t>(reply_bytes, 1), reply);
}

// ---------------------------------------------------------- AppClientSession

AppClientSession::AppClientSession(EventLoop* loop, const AppWorkloadOptions& options,
                                   uint32_t session_index, FrameChannel* out,
                                   AppIntegrityAuditor* auditor, FlightRecorder* recorder,
                                   uint64_t seed)
    : loop_(loop),
      options_(options),
      session_(session_index),
      out_(out),
      auditor_(auditor),
      recorder_(recorder),
      rng_(seed * 0x9e3779b97f4a7c15ULL + session_index + 1) {
  total_to_issue_ = options_.RequestsPerSession();
}

void AppClientSession::Start() {
  if (total_to_issue_ == 0) {
    return;
  }
  if (sequential()) {
    Issue(0);  // chunk 1..n-1 follow on completion (or group commit)
    return;
  }
  for (uint64_t k = 0; k < total_to_issue_; ++k) {
    // Incast: every session fires wave k at the same instant, producing the
    // fan-in burst. RPC: sessions are staggered by a small prime offset.
    const TimeNs stagger =
        options_.kind == AppWorkloadKind::kIncast ? 0 : Us(137) * static_cast<int64_t>(session_);
    loop_->Schedule(static_cast<TimeNs>(k) * options_.issue_interval + stagger,
                    [this, k] { Issue(k); });
  }
}

void AppClientSession::Issue(uint64_t index) {
  if (degraded_) {
    return;
  }
  Request req;
  req.id = MakeRequestId(index);
  req.chunk = index;
  req.issue_time = loop_->now();
  req.deadline_abs = req.issue_time + options_.retry.deadline;
  auto [it, fresh] = requests_.emplace(req.id, req);
  JUG_CHECK(fresh);
  ++issued_count_;
  ++stats_.issued;
  auditor_->OnIssue(req.id);
  Trace(kAppCodeIssue, it->second);
  Attempt(&it->second);
}

void AppClientSession::Attempt(Request* req) {
  ++req->attempt;
  ++stats_.attempts;
  if (req->attempt > 1) {
    ++stats_.retries;
    Trace(kAppCodeRetry, *req);
  }
  const uint64_t token = MakeToken(req->id, req->attempt);
  auditor_->OnAttempt(req->id, token);
  FrameHeader h;
  h.token = token;
  h.request_id = req->id;
  h.session = session_;
  h.kind = sequential() ? FrameKind::kChunk : FrameKind::kRequest;
  h.attempt = req->attempt;
  h.arg = req->chunk;
  out_->SendFrame(std::max<uint64_t>(
                      sequential() ? options_.chunk_bytes : options_.request_bytes, 1),
                  h);
  const TimeNs budget = std::min(options_.retry.attempt_timeout,
                                 std::max<TimeNs>(req->deadline_abs - loop_->now(), 1));
  const uint64_t id = req->id;
  req->timer = loop_->Schedule(budget, [this, id] { OnAttemptTimeout(id); });
}

void AppClientSession::OnAttemptTimeout(uint64_t request_id) {
  auto it = requests_.find(request_id);
  if (it == requests_.end() || it->second.outcome != RequestOutcome::kPending) {
    return;
  }
  Request* req = &it->second;
  req->timer = kInvalidTimerId;
  if (loop_->now() >= req->deadline_abs) {
    Terminal(req, RequestOutcome::kTimeout);
    return;
  }
  if (req->attempt >= options_.retry.max_attempts) {
    Terminal(req, RequestOutcome::kAborted);
    return;
  }
  // Exponential backoff with seeded, deterministic jitter, then retry —
  // capped so a retry never fires past the deadline (the deadline check
  // above converts that case into an explicit Timeout).
  TimeNs backoff = options_.retry.backoff_base;
  for (uint32_t i = 1; i + 1 < req->attempt && backoff < options_.retry.backoff_max; ++i) {
    backoff *= 2;
  }
  backoff = std::min(backoff, options_.retry.backoff_max);
  if (options_.retry.jitter_pct > 0) {
    const double u = rng_.NextDouble() * 2.0 - 1.0;  // [-1, 1)
    backoff += static_cast<TimeNs>(static_cast<double>(backoff) *
                                   (static_cast<double>(options_.retry.jitter_pct) / 100.0) * u);
  }
  backoff = std::max<TimeNs>(backoff, Us(1));
  const TimeNs fire_at = std::min(loop_->now() + backoff, req->deadline_abs);
  const uint64_t id = req->id;
  req->timer = loop_->ScheduleAt(fire_at, [this, id] {
    auto iter = requests_.find(id);
    if (iter == requests_.end() || iter->second.outcome != RequestOutcome::kPending) {
      return;
    }
    if (loop_->now() >= iter->second.deadline_abs) {
      iter->second.timer = kInvalidTimerId;
      Terminal(&iter->second, RequestOutcome::kTimeout);
      return;
    }
    Attempt(&iter->second);
  });
}

void AppClientSession::OnResponseFrame(const FrameHeader& header) {
  auto it = requests_.find(header.request_id);
  if (it == requests_.end()) {
    return;  // response for a request another session owns: wiring bug, ignore
  }
  Request* req = &it->second;
  if (req->outcome != RequestOutcome::kPending) {
    // The server re-answered a suppressed duplicate, or the response beat a
    // deadline by arriving after the request went terminal. Graceful: count
    // it, never resurrect the request.
    ++stats_.duplicate_responses;
    auditor_->OnDuplicateResponse(req->id);
    Trace(kAppCodeDupResponse, *req);
    return;
  }
  stats_.latency_us.Record(static_cast<uint64_t>(ToUs(loop_->now() - req->issue_time)));
  Terminal(req, RequestOutcome::kOk);
}

void AppClientSession::Terminal(Request* req, RequestOutcome outcome) {
  JUG_CHECK(req->outcome == RequestOutcome::kPending);
  req->outcome = outcome;
  if (req->timer != kInvalidTimerId) {
    loop_->Cancel(req->timer);
    req->timer = kInvalidTimerId;
  }
  auditor_->OnOutcome(req->id, outcome);
  switch (outcome) {
    case RequestOutcome::kOk:
      ++stats_.ok;
      Trace(kAppCodeOk, *req);
      break;
    case RequestOutcome::kTimeout:
      ++stats_.timeouts;
      Trace(kAppCodeTimeout, *req);
      break;
    case RequestOutcome::kAborted:
      ++stats_.aborted;
      Trace(kAppCodeAbort, *req);
      break;
    case RequestOutcome::kPending:
      break;
  }
  if (!sequential()) {
    return;
  }
  const bool chunk_ok = outcome == RequestOutcome::kOk;
  if (options_.kind == AppWorkloadKind::kReplication) {
    if (!chunk_ok) {
      degraded_ = true;
    }
    if (on_chunk_done_) {
      on_chunk_done_(req->chunk, chunk_ok);
    }
    return;
  }
  // Plain bulk transfer: resume with the next chunk, or degrade — the
  // remaining chunks are abandoned explicitly rather than retried forever.
  if (!chunk_ok) {
    degraded_ = true;
    return;
  }
  if (issued_count_ < total_to_issue_) {
    Issue(req->chunk + 1);
  }
}

void AppClientSession::ReleaseChunk(uint64_t chunk) {
  if (degraded_) {
    return;
  }
  if (chunk + 1 < total_to_issue_ && issued_count_ == chunk + 1) {
    Issue(chunk + 1);
  }
}

bool AppClientSession::Done() const {
  for (const auto& [id, req] : requests_) {
    if (req.outcome == RequestOutcome::kPending) {
      return false;
    }
  }
  if (degraded_) {
    return true;  // issuance abandoned; everything issued is terminal
  }
  return issued_count_ == total_to_issue_;
}

void AppClientSession::ForceFinish() {
  degraded_ = true;
  for (auto& [id, req] : requests_) {
    if (req.outcome == RequestOutcome::kPending) {
      ++stats_.forced_terminal;
      Terminal(&req, RequestOutcome::kAborted);
    }
  }
}

void AppClientSession::Trace(int code, const Request& req) {
  if (recorder_ != nullptr) {
    recorder_->Record(loop_->now(), TraceKind::kAppEvent, static_cast<uint64_t>(code), req.id,
                      MakeToken(req.id, std::max(req.attempt, 1u)));
  }
}

}  // namespace juggler
