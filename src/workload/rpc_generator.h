// Open-loop Poisson RPC generation (§5.3.2): messages of a fixed size arrive
// with exponential inter-arrival times and are multiplexed uniformly at
// random across a set of message streams (the paper's 8 long-lived sessions
// per client-server pair). Open-loop means arrivals never wait for
// completions, so queueing delay shows up in completion times.

#ifndef JUGGLER_SRC_WORKLOAD_RPC_GENERATOR_H_
#define JUGGLER_SRC_WORKLOAD_RPC_GENERATOR_H_

#include <vector>

#include "src/sim/event_loop.h"
#include "src/util/rng.h"
#include "src/workload/message_stream.h"

namespace juggler {

struct RpcGeneratorConfig {
  uint64_t message_bytes = 1'000'000;
  double messages_per_sec = 1000.0;
  uint64_t seed = 7;
  TimeNs stop_time = Sec(1);  // no arrivals after this
};

class OpenLoopRpcGenerator {
 public:
  OpenLoopRpcGenerator(EventLoop* loop, const RpcGeneratorConfig& config,
                       std::vector<MessageStream*> streams);

  void Start();

  uint64_t generated() const { return generated_; }

 private:
  void ScheduleNext();
  void Fire();

  EventLoop* loop_;
  RpcGeneratorConfig config_;
  std::vector<MessageStream*> streams_;
  Rng rng_;
  uint64_t generated_ = 0;
};

}  // namespace juggler

#endif  // JUGGLER_SRC_WORKLOAD_RPC_GENERATOR_H_
