#include "src/workload/frame_channel.h"

#include <vector>

#include "src/util/logging.h"

namespace juggler {

void FrameChannel::SendFrame(uint64_t bytes, FrameHeader header) {
  JUG_CHECK(bytes >= 1);  // a zero-byte frame has no position in the stream
  header.bytes = bytes;
  {
    std::lock_guard<std::mutex> lock(mu_);
    enqueued_bytes_ += bytes;
    ledger_.push_back(Pending{enqueued_bytes_, header});
    ++frames_sent_;
  }
  if (sender_ != nullptr) {
    sender_->Send(bytes);
  }
}

void FrameChannel::OnDeliverTotal(uint64_t total_bytes) {
  // Pop under the lock, invoke outside it: on_frame may send a response
  // through another channel, and lock-free callbacks keep the two sides'
  // mutexes from ever nesting.
  std::vector<FrameHeader> done;
  {
    std::lock_guard<std::mutex> lock(mu_);
    while (!ledger_.empty() && ledger_.front().end_offset <= total_bytes) {
      done.push_back(ledger_.front().header);
      ledger_.pop_front();
      ++frames_delivered_;
    }
  }
  for (const FrameHeader& h : done) {
    if (on_frame_) {
      on_frame_(h);
    }
  }
}

}  // namespace juggler
