// Framed messaging over one direction of a simulated TCP connection.
//
// The TCP substrate carries (sequence, length) accounting, not payload
// bytes, so application protocols cannot put headers on the wire. A
// FrameChannel gives them the next best thing: the sender records each
// frame's header out of band, keyed by the frame's end offset in the byte
// stream, and the receiving side pops headers in order as TCP's in-order
// delivery point sweeps past them. Because TCP delivers every byte exactly
// once and in order, the pop sequence at the receiver is exactly the send
// sequence — the ledger behaves like a lossless FIFO header channel riding
// the (possibly retransmitted, reordered, faulted) wire.
//
// Thread safety: under the sharded engine the sending side and the
// delivering side live in different shard domains, so the ledger is mutex
// protected. Determinism is unaffected — pops are driven by the delivery
// total, which is causally ordered by the TCP stream itself.

#ifndef JUGGLER_SRC_WORKLOAD_FRAME_CHANNEL_H_
#define JUGGLER_SRC_WORKLOAD_FRAME_CHANNEL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>

#include "src/tcp/tcp_endpoint.h"

namespace juggler {

// What a frame means to the application protocols in app_resilience.h.
enum class FrameKind : uint8_t {
  kRequest = 0,   // RPC request (client -> server)
  kResponse = 1,  // RPC response (server -> client)
  kChunk = 2,     // bulk-transfer chunk (client -> server)
  kChunkAck = 3,  // application-level chunk acknowledgement
};

struct FrameHeader {
  uint64_t token = 0;       // idempotency token; retries reuse it (when correct)
  uint64_t request_id = 0;  // logical request identity, stable across retries
  uint32_t session = 0;     // which session/connection issued it
  FrameKind kind = FrameKind::kRequest;
  uint32_t attempt = 1;     // 1-based attempt number of the sending side
  uint64_t arg = 0;         // chunk index for kChunk/kChunkAck
  uint64_t bytes = 0;       // frame payload length (set by SendFrame)
};

class FrameChannel {
 public:
  // `sender` queues the frame's bytes; the owner must wire the *peer*
  // endpoint's on_deliver to OnDeliverTotal (possibly multiplexed with an
  // integrity checker — set_on_deliver replaces, it does not chain).
  // A null sender keeps the ledger without a wire: unit tests drive
  // OnDeliverTotal by hand to simulate delivery.
  explicit FrameChannel(TcpEndpoint* sender) : sender_(sender) {}

  // Invoked, in send order, once a frame is fully delivered in order at the
  // receiver. Runs on the delivering side's event-loop thread.
  void set_on_frame(std::function<void(const FrameHeader&)> cb) { on_frame_ = std::move(cb); }

  // Queues `bytes` (>= 1) on the TCP sender and records the header.
  void SendFrame(uint64_t bytes, FrameHeader header);

  // Feed with the receiving endpoint's cumulative in-order delivery total.
  void OnDeliverTotal(uint64_t total_bytes);

  uint64_t frames_sent() const { return frames_sent_; }
  uint64_t frames_delivered() const { return frames_delivered_; }

 private:
  struct Pending {
    uint64_t end_offset;  // stream offset one past the frame's last byte
    FrameHeader header;
  };

  TcpEndpoint* sender_;
  std::function<void(const FrameHeader&)> on_frame_;
  std::mutex mu_;
  std::deque<Pending> ledger_;
  uint64_t enqueued_bytes_ = 0;
  uint64_t frames_sent_ = 0;
  uint64_t frames_delivered_ = 0;
};

}  // namespace juggler

#endif  // JUGGLER_SRC_WORKLOAD_FRAME_CHANNEL_H_
