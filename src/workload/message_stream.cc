#include "src/workload/message_stream.h"

namespace juggler {

MessageStream::MessageStream(EventLoop* loop, TcpEndpoint* sender, TcpEndpoint* receiver,
                             PercentileSampler* latency_us)
    : loop_(loop), sender_(sender), latency_us_(latency_us) {
  receiver->set_on_deliver([this](uint64_t total) { OnDelivered(total); });
}

void MessageStream::SendMessage(uint64_t bytes) {
  if (closed_) {
    return;
  }
  if (bytes == 0) {
    // Nothing rides the wire, so no delivery callback will ever advance past
    // this message's (empty) extent: complete it on the spot.
    ++sent_;
    ++completed_;
    if (latency_us_ != nullptr) {
      latency_us_->Add(0.0);
    }
    return;
  }
  enqueued_bytes_ += bytes;
  pending_.push_back(Pending{enqueued_bytes_, loop_->now()});
  ++sent_;
  sender_->Send(bytes);
}

void MessageStream::Close() { closed_ = true; }

void MessageStream::OnDelivered(uint64_t total_bytes) {
  if (closed_) {
    ++late_deliveries_;
    return;
  }
  while (!pending_.empty() && pending_.front().end_offset <= total_bytes) {
    if (latency_us_ != nullptr) {
      latency_us_->Add(ToUs(loop_->now() - pending_.front().enqueue_time));
    }
    pending_.pop_front();
    ++completed_;
  }
}

}  // namespace juggler
