// Message framing over a TCP byte stream, and RPC completion timing.
//
// The paper's RPC workloads are one-way messages multiplexed over long-lived
// TCP connections; a message completes when its last byte is delivered
// in-order at the receiver. MessageStream tracks message boundaries as byte
// offsets in the stream (deterministic, since TCP delivers in order) and
// samples completion latency.
//
// Edge cases the chaos/fuzz layers exercise: zero-length messages complete
// immediately (nothing rides the wire, so no delivery can mark them), and a
// Close()d stream ignores — but counts — deliveries that arrive afterwards
// (retransmissions draining after the application went away).

#ifndef JUGGLER_SRC_WORKLOAD_MESSAGE_STREAM_H_
#define JUGGLER_SRC_WORKLOAD_MESSAGE_STREAM_H_

#include <deque>

#include "src/sim/event_loop.h"
#include "src/stats/stats.h"
#include "src/tcp/tcp_endpoint.h"

namespace juggler {

class MessageStream {
 public:
  // `sender` queues bytes; `receiver` is the peer endpoint whose in-order
  // delivery marks completion. Completion times (µs) go to `latency_us` if
  // non-null.
  MessageStream(EventLoop* loop, TcpEndpoint* sender, TcpEndpoint* receiver,
                PercentileSampler* latency_us);

  // Zero-length messages complete immediately with zero latency.
  void SendMessage(uint64_t bytes);

  // The application side is done: further deliveries no longer complete
  // messages (they are counted as late), and sends are dropped. The stream
  // stays attached to the endpoint so the late deliveries are observable.
  void Close();

  uint64_t sent() const { return sent_; }
  uint64_t completed() const { return completed_; }
  // Messages enqueued but not yet fully delivered.
  uint64_t outstanding() const { return sent_ - completed_; }
  bool closed() const { return closed_; }
  // Delivery callbacks that arrived after Close().
  uint64_t late_deliveries() const { return late_deliveries_; }

 private:
  void OnDelivered(uint64_t total_bytes);

  struct Pending {
    uint64_t end_offset;  // stream offset one past the message's last byte
    TimeNs enqueue_time;
  };

  EventLoop* loop_;
  TcpEndpoint* sender_;
  PercentileSampler* latency_us_;
  std::deque<Pending> pending_;
  uint64_t enqueued_bytes_ = 0;
  uint64_t sent_ = 0;
  uint64_t completed_ = 0;
  bool closed_ = false;
  uint64_t late_deliveries_ = 0;
};

}  // namespace juggler

#endif  // JUGGLER_SRC_WORKLOAD_MESSAGE_STREAM_H_
