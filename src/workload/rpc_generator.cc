#include "src/workload/rpc_generator.h"

#include "src/util/logging.h"

namespace juggler {

OpenLoopRpcGenerator::OpenLoopRpcGenerator(EventLoop* loop, const RpcGeneratorConfig& config,
                                           std::vector<MessageStream*> streams)
    : loop_(loop), config_(config), streams_(std::move(streams)), rng_(config.seed) {
  JUG_CHECK(!streams_.empty());
  JUG_CHECK(config_.messages_per_sec > 0.0);
}

void OpenLoopRpcGenerator::Start() { ScheduleNext(); }

void OpenLoopRpcGenerator::ScheduleNext() {
  const double gap_sec = rng_.NextExponential(1.0 / config_.messages_per_sec);
  const TimeNs gap = static_cast<TimeNs>(gap_sec * kNsPerSec);
  const TimeNs when = loop_->now() + (gap > 0 ? gap : 1);
  if (when > config_.stop_time) {
    return;
  }
  loop_->ScheduleAt(when, [this] { Fire(); });
}

void OpenLoopRpcGenerator::Fire() {
  const size_t pick = static_cast<size_t>(rng_.NextBounded(streams_.size()));
  streams_[pick]->SendMessage(config_.message_bytes);
  ++generated_;
  ScheduleNext();
}

}  // namespace juggler
