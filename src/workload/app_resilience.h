// Application-layer resilience: RPC and resumable bulk-transfer protocols
// with real client-side state machines, riding the simulated TCP endpoints.
//
// The paper evaluates Juggler up to TCP throughput and latency, but real
// datacenter traffic is RPCs and storage transfers whose *own* timeout and
// retry logic interacts with reordering-induced spurious retransmits. This
// layer supplies that traffic:
//
//   * AppClientSession — per-request deadlines, bounded retry budgets,
//     exponential backoff with seeded deterministic jitter, idempotency
//     tokens reused across retries, and graceful degradation: every request
//     ends in an explicit Ok / Timeout / Aborted outcome, never a hang.
//   * AppServer — executes requests at-most-once effectively: a token seen
//     before is suppressed as a duplicate and answered from the dedup
//     table, exactly like an idempotent storage or RPC server.
//   * AppIntegrityAuditor — the oracle. At-least-once for completed
//     requests, effective exactly-once for executions, terminal outcomes
//     for everything issued. Violations go to the shared AuditLog, the same
//     channel StreamIntegrityChecker uses, so the chaos/fuzz machinery
//     treats app-level bugs exactly like byte-stream bugs.
//
// Everything is deterministic given a seed; under the sharded engine the
// client and server sides run in different shard domains, so the auditor is
// mutex protected (all of its updates commute — per-token and per-request
// counts — which keeps digests shard-count invariant).

#ifndef JUGGLER_SRC_WORKLOAD_APP_RESILIENCE_H_
#define JUGGLER_SRC_WORKLOAD_APP_RESILIENCE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/fault/audit_log.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/sim/event_loop.h"
#include "src/util/rng.h"
#include "src/workload/frame_channel.h"

namespace juggler {

enum class AppWorkloadKind : int {
  kNone = 0,         // no app layer: the classic raw bulk byte transfer
  kRpc,              // open-loop request/response over per-session streams
  kBulkTransfer,     // resumable chunked transfer with app-level acks
  kIncast,           // synchronized request waves fanning responses in
  kReplication,      // chunk committed only when every replica session acked
};

const char* AppWorkloadKindName(AppWorkloadKind kind);
bool ParseAppWorkloadKind(const char* name, AppWorkloadKind* out);

struct RetryPolicy {
  TimeNs attempt_timeout = Ms(8);  // per attempt, from its send
  TimeNs deadline = Ms(160);       // per request, from issue
  uint32_t max_attempts = 5;
  TimeNs backoff_base = Ms(2);     // doubles per retry, capped below
  TimeNs backoff_max = Ms(40);
  uint32_t jitter_pct = 20;        // +/- percent of the backoff, seeded
};

struct AppWorkloadOptions {
  AppWorkloadKind kind = AppWorkloadKind::kNone;
  uint32_t sessions = 2;                 // connections (replicas for kReplication)
  uint32_t requests_per_session = 8;     // rpc/incast request count
  uint64_t request_bytes = 512;
  uint64_t response_bytes = 16'384;
  uint64_t chunk_bytes = 65'536;         // bulk/replication chunk size
  uint64_t transfer_bytes_per_session = 262'144;
  TimeNs issue_interval = Ms(2);         // arrival spacing (waves for incast)
  RetryPolicy retry;
  // Planted bug for validating the forensics pipeline end to end: retries
  // mint a FRESH idempotency token instead of reusing the request's, so the
  // server's dedup table cannot recognize the duplicate and executes the
  // request twice — which the auditor reports as a violation.
  bool plant_stale_token = false;

  bool enabled() const { return kind != AppWorkloadKind::kNone; }
  // Chunks a bulk/replication session carries (ceiling division).
  uint64_t ChunksPerSession() const {
    return (transfer_bytes_per_session + chunk_bytes - 1) / chunk_bytes;
  }
  // Logical requests per session this workload issues when nothing fails.
  uint64_t RequestsPerSession() const {
    return (kind == AppWorkloadKind::kBulkTransfer || kind == AppWorkloadKind::kReplication)
               ? ChunksPerSession()
               : requests_per_session;
  }
};

enum class RequestOutcome : int {
  kPending = 0,
  kOk,        // response arrived within deadline and budget
  kTimeout,   // deadline passed
  kAborted,   // retry budget exhausted, upstream chunk failed, or run ended
};

const char* RequestOutcomeName(RequestOutcome outcome);

// Aggregated application counters: the digest and metrics source. All
// counters are final sums, so merging is order-insensitive.
struct AppStats {
  uint64_t issued = 0;
  uint64_t ok = 0;
  uint64_t timeouts = 0;
  uint64_t aborted = 0;
  uint64_t attempts = 0;
  uint64_t retries = 0;               // attempts beyond the first
  uint64_t duplicate_responses = 0;   // responses after the request went terminal
  uint64_t executions = 0;            // server-side first-time executions
  uint64_t duplicates_suppressed = 0; // server-side dedup hits
  uint64_t forced_terminal = 0;       // requests still pending at run end (hung)
  Log2Histogram latency_us;           // issue -> Ok completion

  void MergeFrom(const AppStats& other);
};

// Snapshot into `registry` under `label` ("client"/"server" by convention).
void PublishAppStats(const AppStats& stats, const std::string& label,
                     MetricsRegistry* registry);

// Trace codes for TraceKind::kAppEvent `a` arguments.
inline constexpr int kAppCodeIssue = 0;
inline constexpr int kAppCodeRetry = 1;
inline constexpr int kAppCodeOk = 2;
inline constexpr int kAppCodeTimeout = 3;
inline constexpr int kAppCodeAbort = 4;
inline constexpr int kAppCodeDupResponse = 5;
inline constexpr int kAppCodeExecute = 6;
inline constexpr int kAppCodeDupSuppressed = 7;
// Decoded by AppEventCodeName() in src/obs/flight_recorder.h.

// The at-least-once / duplicate-detection oracle. Clients register every
// issued request and every attempt's token; the server reports executions
// by token. FinalCheck (main thread, after the run) verifies:
//
//   * every issued request reached a terminal outcome (no hangs),
//   * every Ok request executed at least once (at-least-once),
//   * no logical request executed more than once (effective exactly-once —
//     the server's dedup must have caught every retry's duplicate),
//   * no execution for a token no client ever sent.
class AppIntegrityAuditor {
 public:
  explicit AppIntegrityAuditor(std::string name) : name_(std::move(name)) {}

  void OnIssue(uint64_t request_id);
  void OnAttempt(uint64_t request_id, uint64_t token);
  // Server saw `token` for the first time and executed. Returns false if the
  // token maps to no known request (recorded; flagged in FinalCheck).
  bool OnExecute(uint64_t token);
  void OnServerDuplicate(uint64_t token);
  void OnOutcome(uint64_t request_id, RequestOutcome outcome);
  void OnDuplicateResponse(uint64_t request_id);

  // End-of-run oracle; appends violations to `log`. Returns true when clean.
  bool FinalCheck(AuditLog* log);

  uint64_t executions() const;
  uint64_t duplicates_suppressed() const;

 private:
  struct Record {
    uint64_t attempts = 0;
    uint64_t executions = 0;
    RequestOutcome outcome = RequestOutcome::kPending;
  };

  std::string name_;
  mutable std::mutex mu_;
  std::map<uint64_t, Record> requests_;        // by request_id (ordered: FinalCheck determinism)
  std::map<uint64_t, uint64_t> token_owner_;   // token -> request_id
  uint64_t unknown_token_executions_ = 0;
  uint64_t duplicate_responses_ = 0;
  uint64_t executions_ = 0;
  uint64_t duplicates_suppressed_ = 0;
};

// The server half of one connection: executes requests/chunks arriving on
// `in`, answers on `out`, and deduplicates by idempotency token. Lives on
// the serving host's event-loop thread.
class AppServer {
 public:
  AppServer(const AppWorkloadOptions& options, FrameChannel* in, FrameChannel* out,
            AppIntegrityAuditor* auditor, FlightRecorder* recorder, const TimeNs* clock);

  const AppStats& stats() const { return stats_; }

 private:
  void OnFrame(const FrameHeader& header);

  AppWorkloadOptions options_;
  FrameChannel* out_;
  AppIntegrityAuditor* auditor_;
  FlightRecorder* recorder_;
  const TimeNs* clock_;
  std::map<uint64_t, FrameHeader> seen_;  // token -> original request header
  AppStats stats_;
};

// The client half of one session: issues the session's requests (or chunks)
// and drives each through the deadline/backoff/retry state machine. Lives
// on the client host's event-loop thread.
class AppClientSession {
 public:
  // For kReplication the harness supplies `on_chunk_done(chunk, ok)`; the
  // session then waits for ReleaseChunk before issuing the next chunk.
  AppClientSession(EventLoop* loop, const AppWorkloadOptions& options, uint32_t session_index,
                   FrameChannel* out, AppIntegrityAuditor* auditor, FlightRecorder* recorder,
                   uint64_t seed);

  // Schedules the session's issue timeline. Call once, before running.
  void Start();

  // Wire to the response channel's on_frame (client thread).
  void OnResponseFrame(const FrameHeader& header);

  // Replication coupling: invoked (client thread) when this session's
  // current chunk reaches a terminal outcome.
  void set_on_chunk_done(std::function<void(uint64_t chunk, bool ok)> cb) {
    on_chunk_done_ = std::move(cb);
  }
  // Replication coupling: the group committed `chunk`; issue the next one.
  void ReleaseChunk(uint64_t chunk);

  // Stop issuing new requests (a replica's chunk failed terminally, or the
  // run is winding down). Already-issued requests still run to terminal.
  void AbortRemaining() { degraded_ = true; }

  // All issued requests terminal AND nothing left to issue.
  bool Done() const;

  // Force every still-pending request to kAborted and cancel timers. Main
  // thread, after the engine has drained. Counts forced_terminal.
  void ForceFinish();

  const AppStats& stats() const { return stats_; }
  uint32_t session_index() const { return session_; }

 private:
  struct Request {
    uint64_t id = 0;
    uint64_t chunk = 0;  // bulk/replication chunk index
    uint32_t attempt = 0;
    TimeNs issue_time = 0;
    TimeNs deadline_abs = 0;
    RequestOutcome outcome = RequestOutcome::kPending;
    TimerId timer = kInvalidTimerId;
  };

  bool sequential() const {
    return options_.kind == AppWorkloadKind::kBulkTransfer ||
           options_.kind == AppWorkloadKind::kReplication;
  }
  uint64_t MakeRequestId(uint64_t index) const {
    return (static_cast<uint64_t>(session_) << 32) | index;
  }
  // Correct protocol: one token per logical request, reused verbatim by
  // every retry so the server's dedup table recognizes duplicates. The
  // planted bug derives the token from the attempt number instead.
  uint64_t MakeToken(uint64_t request_id, uint32_t attempt) const {
    return (request_id << 8) | (options_.plant_stale_token ? attempt : 1u);
  }

  void Issue(uint64_t index);
  void Attempt(Request* req);
  void OnAttemptTimeout(uint64_t request_id);
  void Terminal(Request* req, RequestOutcome outcome);
  void Trace(int code, const Request& req);

  EventLoop* loop_;
  AppWorkloadOptions options_;
  uint32_t session_;
  FrameChannel* out_;
  AppIntegrityAuditor* auditor_;
  FlightRecorder* recorder_;
  Rng rng_;
  std::function<void(uint64_t, bool)> on_chunk_done_;
  std::map<uint64_t, Request> requests_;  // by request_id
  uint64_t total_to_issue_ = 0;
  uint64_t issued_count_ = 0;
  bool degraded_ = false;  // a chunk failed: remaining chunks abort unissued
  AppStats stats_;
};

}  // namespace juggler

#endif  // JUGGLER_SRC_WORKLOAD_APP_RESILIENCE_H_
