#include "src/qos/priority_controller.h"

#include <algorithm>

namespace juggler {

PriorityController::PriorityController(EventLoop* loop, const PriorityControllerConfig& config,
                                       TcpEndpoint* connection)
    : loop_(loop), config_(config), connection_(connection), rng_(config.seed) {}

void PriorityController::Start() {
  running_ = true;
  last_bytes_acked_ = connection_->bytes_acked();
  connection_->set_priority_marker([this] { return Mark(); });
  loop_->Schedule(config_.update_period, [this] { Update(); });
}

void PriorityController::Update() {
  if (!running_) {
    return;
  }
  const uint64_t acked = connection_->bytes_acked();
  const double sample_bps =
      RateBps(static_cast<int64_t>(acked - last_bytes_acked_), config_.update_period);
  last_bytes_acked_ = acked;
  // Smooth the per-period sample: ACK arrivals are bursty at sub-RTT scale.
  rate_estimate_bps_ =
      (1.0 - config_.ewma_alpha) * rate_estimate_bps_ + config_.ewma_alpha * sample_bps;
  const double rt = static_cast<double>(config_.target_rate_bps) /
                    static_cast<double>(config_.line_rate_bps);
  const double rm = rate_estimate_bps_ / static_cast<double>(config_.line_rate_bps);
  p_ = std::clamp(p_ + config_.alpha * (rt - rm), 0.0, 1.0);
  loop_->Schedule(config_.update_period, [this] { Update(); });
}

Priority PriorityController::Mark() {
  return rng_.NextBool(p_) ? Priority::kHigh : Priority::kLow;
}

}  // namespace juggler
