// Bandwidth guarantees by dynamic packet prioritization (§2.1, §5.3.1).
//
// The controller marks each outgoing packet of a flow high-priority with
// probability p, adapting p once per update period with the paper's control
// law, Eq. (1):
//
//     p <- p + alpha * (Rt - Rm)
//
// where Rt is the target (guaranteed) rate and Rm the measured rate, both
// normalized to the line rate. When the flow runs below its guarantee, p
// rises, more of its packets jump the low-priority queue, and its rate
// recovers — entirely passively, with no rate limiting or hypervisor layer.
// The mechanism only works if the receiver tolerates the reordering that
// mixed-priority queueing induces; that is what Juggler provides.

#ifndef JUGGLER_SRC_QOS_PRIORITY_CONTROLLER_H_
#define JUGGLER_SRC_QOS_PRIORITY_CONTROLLER_H_

#include "src/sim/event_loop.h"
#include "src/tcp/tcp_endpoint.h"
#include "src/util/rng.h"

namespace juggler {

struct PriorityControllerConfig {
  double alpha = 0.1;
  int64_t target_rate_bps = 20 * kGbps;
  int64_t line_rate_bps = 40 * kGbps;  // normalization for Rt and Rm
  // The paper measures the achieved rate "for every ACK received"; a short
  // period approximates that per-ACK cadence. A fast loop keeps priorities
  // genuinely mixed around the equilibrium p — which is exactly what makes
  // the scheme reorder packets and require Juggler.
  TimeNs update_period = Us(50);
  // Rate estimate smoothing (EWMA weight of the newest sample). The default
  // of 1.0 uses raw per-period samples, as the paper's per-ACK measurement
  // does; the resulting control noise keeps p exploring below 1.0.
  double ewma_alpha = 1.0;
  uint64_t seed = 42;
};

class PriorityController {
 public:
  PriorityController(EventLoop* loop, const PriorityControllerConfig& config,
                     TcpEndpoint* connection);

  // Installs the per-packet marker on the connection and begins the update
  // loop. Call once.
  void Start();
  void Stop() { running_ = false; }

  double p() const { return p_; }

 private:
  void Update();
  Priority Mark();

  EventLoop* loop_;
  PriorityControllerConfig config_;
  TcpEndpoint* connection_;
  Rng rng_;
  double p_ = 0.0;  // all flows start at lowest priority (§5.3.1)
  double rate_estimate_bps_ = 0.0;
  uint64_t last_bytes_acked_ = 0;
  bool running_ = false;
};

}  // namespace juggler

#endif  // JUGGLER_SRC_QOS_PRIORITY_CONTROLLER_H_
