// pFabric-style dynamic prioritization (§2.1): raise a flow's network
// priority as it nears completion, approximating Shortest Remaining
// Processing Time scheduling with the two priority levels our switches
// offer. Like the bandwidth-guarantee controller, this deliberately changes
// a flow's priority mid-stream — mixing queueing delays and reordering its
// packets — which is exactly the flexibility Juggler exists to make safe.

#ifndef JUGGLER_SRC_QOS_SRPT_PRIORITIZER_H_
#define JUGGLER_SRC_QOS_SRPT_PRIORITIZER_H_

#include "src/tcp/tcp_endpoint.h"

namespace juggler {

class SrptPrioritizer {
 public:
  // Packets go out high-priority once the connection's remaining backlog
  // drops below `threshold_bytes` — short flows (and the tails of long
  // flows) jump the queues.
  SrptPrioritizer(TcpEndpoint* connection, uint64_t threshold_bytes)
      : connection_(connection), threshold_bytes_(threshold_bytes) {
    connection_->set_priority_marker([this] { return Mark(); });
  }

  Priority Mark() const {
    return connection_->backlog_bytes() < threshold_bytes_ ? Priority::kHigh : Priority::kLow;
  }

 private:
  TcpEndpoint* connection_;
  uint64_t threshold_bytes_;
};

}  // namespace juggler

#endif  // JUGGLER_SRC_QOS_SRPT_PRIORITIZER_H_
