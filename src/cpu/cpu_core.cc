#include "src/cpu/cpu_core.h"

#include <utility>

#include "src/util/logging.h"

namespace juggler {

void CpuCore::Submit(TimeNs cost, EventLoop::Callback done) {
  JUG_CHECK(cost >= 0);
  const TimeNs now = loop_->now();
  const TimeNs start = free_at_ > now ? free_at_ : now;
  free_at_ = start + cost;
  busy_ns_ += cost;
  loop_->ScheduleAt(free_at_, std::move(done));
}

TimeNs CpuCore::backlog_ns() const {
  const TimeNs now = loop_->now();
  return free_at_ > now ? free_at_ - now : 0;
}

}  // namespace juggler
