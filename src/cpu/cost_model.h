// Calibrated per-operation CPU costs for the receive path.
//
// The absolute values are not the point — the paper ran on Xeons we don't
// have. What matters is the structure: per-packet costs dominate the RX core,
// per-segment costs dominate the application core, so the segment rate (set
// by GRO batching extent) decides whether the app core saturates. Defaults
// are calibrated so a fully-batched 20Gb/s flow lands near the paper's
// baseline core usage and the vanilla-with-reordering case saturates with
// roughly the paper's ~35% throughput loss (§5.1.1).

#ifndef JUGGLER_SRC_CPU_COST_MODEL_H_
#define JUGGLER_SRC_CPU_COST_MODEL_H_

#include <cstdint>

#include "src/util/time.h"

namespace juggler {

struct CpuCostModel {
  // ---- RX core (driver + GRO softirq) ----
  // Ring/DMA/driver work per wire packet.
  TimeNs driver_per_packet = 150;
  // GRO flow lookup + in-sequence merge per packet (standard GRO and
  // Juggler's fast path alike).
  TimeNs gro_per_packet = 70;
  // Handing one merged segment up the stack (netfilter entry, skb fixups).
  TimeNs gro_flush_per_segment = 500;
  // Fixed cost to enter a NAPI polling session (IRQ + softirq entry).
  TimeNs napi_poll_overhead = 2000;
  // Cost per re-poll round while staying in polling mode (ring re-check).
  TimeNs napi_repoll_overhead = 150;
  // Juggler: extra work when a packet takes the out-of-order path (queue
  // insert, run merge). Charged only for packets that actually go through
  // the OOO queue, so in-order traffic costs exactly what standard GRO does.
  TimeNs juggler_ooo_insert = 40;
  // Juggler: per run traversed while searching the OOO queue for the insert
  // position.
  TimeNs juggler_ooo_search_per_run = 15;
  // Linked-list GRO (§3.1 alternative): chaining sk_buffs defeats the frags[]
  // cache locality; extra cost per packet merged into a chain. Calibrated to
  // the paper's "50% more CPU" on in-order traffic.
  TimeNs linkedlist_chain_per_packet = 110;

  // ---- Application core (TCP + socket + app) ----
  // Calibrated against two anchors from the paper: (a) a fully-batched flow
  // saturates one app core near 25Gb/s (the Fig. 18 ceiling / the footnote
  // that one core cannot take 40Gb/s), and (b) under reordering the vanilla
  // stack sees ~15x more segments (~3-MTU average batches) and saturates
  // around a 35% throughput loss from 20Gb/s (§5.1.1). Solving both gives
  // ~0.30ns per payload byte and ~1.37us per segment+ACK.
  // TCP segment processing, socket queueing, app wakeup — per segment.
  TimeNs tcp_per_segment = 1000;
  // Copy-to-user and checksum touch — per payload byte.
  double tcp_per_byte = 0.30;
  // Building and sending one ACK.
  TimeNs ack_tx = 370;

  // ---- Sender side ----
  // Processing one incoming ACK at the sender.
  TimeNs ack_rx = 600;
  // Cutting and pushing one TSO burst to the NIC.
  TimeNs tso_send = 1500;

  TimeNs AppSegmentCost(uint32_t payload_len) const {
    return tcp_per_segment + static_cast<TimeNs>(tcp_per_byte * payload_len);
  }
};

}  // namespace juggler

#endif  // JUGGLER_SRC_CPU_COST_MODEL_H_
