// CPU core model.
//
// A CpuCore is a non-preemptive FIFO server on the event loop: work items are
// submitted with a cost (nanoseconds of core time) and a completion callback.
// Items start in submission order as the core frees up; the core tracks total
// busy time so experiments can report utilisation over a window, exactly the
// "core usage %" metric in Figures 9, 10 and 12 of the paper.
//
// This is the coupling point between batching and throughput: every segment
// GRO delivers costs app-core time before the receiver ACKs it and frees
// receive-window space, so a saturated core throttles TCP the same way it
// does on real hardware.

#ifndef JUGGLER_SRC_CPU_CPU_CORE_H_
#define JUGGLER_SRC_CPU_CPU_CORE_H_

#include <string>

#include "src/sim/event_loop.h"
#include "src/util/time.h"

namespace juggler {

class CpuCore {
 public:
  CpuCore(EventLoop* loop, std::string name) : loop_(loop), name_(std::move(name)) {}

  CpuCore(const CpuCore&) = delete;
  CpuCore& operator=(const CpuCore&) = delete;

  // Enqueue `cost` ns of work; `done` fires when the work completes. Because
  // the server is FIFO and non-preemptive, completions preserve submission
  // order — required so TCP segments are processed in delivery order.
  void Submit(TimeNs cost, EventLoop::Callback done);

  // Core time consumed since construction (monotone).
  TimeNs busy_ns() const { return busy_ns_; }

  // Work submitted but not yet completed, in ns of core time. This is the
  // queueing backlog; receivers use it for receive-window backpressure.
  TimeNs backlog_ns() const;

  const std::string& name() const { return name_; }

 private:
  EventLoop* loop_;
  std::string name_;
  TimeNs free_at_ = 0;   // absolute time the core finishes all queued work
  TimeNs busy_ns_ = 0;
};

// Snapshot helper: utilisation of a core over a measurement window.
class CpuUsageMeter {
 public:
  explicit CpuUsageMeter(const CpuCore* core) : core_(core) { Reset(0); }

  void Reset(TimeNs now) {
    window_start_ = now;
    busy_at_start_ = core_->busy_ns();
  }

  // Fraction of the window [reset, now] the core was busy, in [0, 1].
  double Utilization(TimeNs now) const {
    const TimeNs window = now - window_start_;
    if (window <= 0) {
      return 0.0;
    }
    const double busy = static_cast<double>(core_->busy_ns() - busy_at_start_);
    const double frac = busy / static_cast<double>(window);
    return frac > 1.0 ? 1.0 : frac;
  }

 private:
  const CpuCore* core_;
  TimeNs window_start_ = 0;
  TimeNs busy_at_start_ = 0;
};

}  // namespace juggler

#endif  // JUGGLER_SRC_CPU_CPU_CORE_H_
