// Packet and segment representations.
//
// Packets are metadata-only: the simulator never materialises payload bytes,
// it tracks (sequence, length) ranges exactly as GRO and TCP reason about
// them. A Packet models one wire MTU (or a pure ACK); a Segment models the
// sk_buff handed up the stack by GRO — one contiguous byte range plus the
// count of MTUs merged into it (the frags[] array of Figure 3).
//
// Allocation: packets are recycled through a freelist-backed PacketPool, one
// per thread, behind a custom unique_ptr deleter. The simulator allocates one
// Packet per simulated MTU — hundreds of millions per long bench — so the
// steady state must not touch the allocator. PacketPtr stays 8 bytes (the
// deleter is stateless: it returns storage to its thread's pool), lifetime is
// safe by construction (the pool outlives every object that can hold a
// packet on its thread), and each sweep-runner worker gets a private pool, so
// recycling needs no locks.

#ifndef JUGGLER_SRC_PACKET_PACKET_H_
#define JUGGLER_SRC_PACKET_PACKET_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "src/util/seq.h"
#include "src/util/time.h"

namespace juggler {

// Wire constants. An MTU-sized frame carries kMss payload bytes; every frame
// additionally occupies kPerPacketWireOverhead bytes of link time (Ethernet
// header + CRC + preamble + inter-frame gap + IP/TCP headers).
inline constexpr uint32_t kMtuBytes = 1500;
inline constexpr uint32_t kMss = 1448;
inline constexpr uint32_t kPerPacketWireOverhead = 90;

// Maximum TSO burst / GRO merge size: 45 MTUs' worth of payload ("64KB").
inline constexpr uint32_t kMaxTsoPayload = 45 * kMss;

enum class Priority : uint8_t {
  kHigh = 0,
  kLow = 1,
};

struct FiveTuple {
  uint32_t src_ip = 0;
  uint32_t dst_ip = 0;
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint8_t protocol = 6;  // TCP

  bool operator==(const FiveTuple&) const = default;

  // The reverse direction (for ACKs and server->client traffic).
  FiveTuple Reversed() const {
    return FiveTuple{dst_ip, src_ip, dst_port, src_port, protocol};
  }

  uint64_t Hash() const {
    // Mix the fields through a 64-bit finalizer; used for RSS and ECMP.
    uint64_t h = (static_cast<uint64_t>(src_ip) << 32) | dst_ip;
    h ^= (static_cast<uint64_t>(src_port) << 48) | (static_cast<uint64_t>(dst_port) << 32) |
         protocol;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ULL;
    h ^= h >> 33;
    return h;
  }
};

struct FiveTupleHash {
  size_t operator()(const FiveTuple& t) const { return static_cast<size_t>(t.Hash()); }
};

// TCP flag bits relevant to GRO flush decisions (Table 2 of the paper).
enum TcpFlag : uint8_t {
  kFlagAck = 1 << 0,
  kFlagPsh = 1 << 1,
  kFlagUrg = 1 << 2,
  kFlagSyn = 1 << 3,
  kFlagFin = 1 << 4,
};

// SACK option carried on ACKs: up to 3 [start, end) blocks of received but
// not-yet-cumulatively-acked data.
struct SackBlocks {
  uint8_t count = 0;
  Seq start[3] = {};
  Seq end[3] = {};

  void Add(Seq s, Seq e) {
    if (count < 3) {
      start[count] = s;
      end[count] = e;
      ++count;
    }
  }
};

class PacketPool;

// Cache-line aligned: at 112 bytes of simulation state plus two pool-
// management pointers a Packet fills exactly two lines, so the recycle-reset
// and per-field writes never straddle a third line.
struct alignas(64) Packet {
  uint64_t id = 0;  // globally unique, for tracing
  FiveTuple flow;

  Seq seq = 0;               // first payload byte
  uint32_t payload_len = 0;  // 0 for a pure ACK
  uint8_t flags = 0;
  Seq ack_seq = 0;        // cumulative ACK carried (valid when kFlagAck set)
  uint32_t ack_rwnd = 0;  // advertised receive window on ACKs
  SackBlocks sack;        // SACK option (pure ACKs)
  bool ece = false;       // ECN echo on ACKs (DCTCP feedback)

  // Mergeability metadata: GRO only merges packets whose options token and
  // CE mark match (Table 2: "differs in TCP options, CE marks, etc").
  uint32_t options_token = 0;
  bool ce_mark = false;

  // Set by fault injection when the frame's payload/header was corrupted (or
  // the frame truncated) in flight. The receiving NIC's checksum validation
  // discards such frames before they reach the driver, exactly as real
  // hardware drops bad-FCS frames — the stack only ever sees the loss.
  bool corrupted = false;

  Priority priority = Priority::kLow;

  // Per-TSO load balancing (Presto-style flowcells): all MTUs cut from one
  // TSO burst share a tso_id and hash to the same path.
  uint64_t tso_id = 0;

  TimeNs sent_time = 0;    // left the sender's TCP
  TimeNs nic_rx_time = 0;  // arrived at the receiving NIC ring

  // Pool management, not simulation state: the pool whose storage this is
  // (releases route back to it from any thread), and the intrusive link used
  // while the storage sits on that pool's cross-thread return stack. Both
  // are maintained by PacketPool/ClonePacket; simulation code must treat
  // them as opaque.
  PacketPool* pool_origin = nullptr;
  Packet* pool_next = nullptr;

  bool is_pure_ack() const { return payload_len == 0 && (flags & kFlagAck) != 0; }
  Seq end_seq() const { return seq + payload_len; }
  uint32_t wire_bytes() const { return payload_len + kPerPacketWireOverhead; }
};

// Returns a released Packet's storage to the calling thread's PacketPool.
// Stateless so PacketPtr is pointer-sized.
struct PacketDeleter {
  void operator()(Packet* p) const noexcept;
};

using PacketPtr = std::unique_ptr<Packet, PacketDeleter>;

// Freelist of Packet storage. All packets allocated through a pool — from
// any PacketFactory, test helper or clone — recycle through that same pool,
// so steady-state traffic performs zero allocations. Storage is plain `new
// Packet`, individually owned, so the freelist may also absorb packets that
// were constructed outside the pool.
//
// Threading: by default every thread has its own pool (ThreadLocal) and
// packets recycle through whichever pool is ambient on the releasing thread
// — the pre-sharding behavior, safe across thread teardown because such
// packets carry no origin pointer. A pool constructed with
// CrossThreadReturnTag (the sharded engine owns one per shard domain)
// additionally stamps every packet it hands out with its own address:
// releases on the owning worker take the same lock-free fast path, while a
// release on any *other* thread — sharded scenarios hand packets between
// workers through mailboxes — pushes onto the origin's MPSC return stack (a
// Treiber stack threaded through Packet::pool_next), which the origin drains
// wholesale when its local freelist runs dry. So cross-shard traffic still
// recycles instead of leaking allocations out of one pool and piling them up
// in another. Lifetime contract for stamped pools only: the pool must
// outlive every packet it allocated; the engine guarantees this by shutting
// down all event loops (freeing in-flight packets) before any pool dies.
class PacketPool {
 public:
  // Tag selecting cross-thread-return stamping (see class comment).
  struct CrossThreadReturnTag {};

  PacketPool() = default;
  explicit PacketPool(CrossThreadReturnTag) : origin_stamp_(this) {}
  // The thread's pool. The cached pointer is trivially-initialized TLS, so
  // the hot path is one thread-relative load — no init-guard check, no call
  // into the TU that owns the pool (this accessor runs twice per simulated
  // packet).
  static PacketPool& ThreadLocal() {
    PacketPool* pool = tls_pool_;
    if (pool == nullptr) [[unlikely]] {
      pool = &CreateForThread();
    }
    return *pool;
  }

  // Deleter entry point. Unstamped packets (the common, non-sharded case)
  // recycle through whichever pool is ambient on the releasing thread, or
  // are freed outright when that pool is already gone (releases during
  // thread teardown). Stamped packets go back to their origin: the lock-free
  // local path when the origin is ambient here, the cross-thread return
  // stack otherwise.
  static void ReleaseToThreadPool(Packet* p) noexcept {
    PacketPool* origin = p->pool_origin;
    if (origin == nullptr) [[likely]] {
      PacketPool* pool = tls_pool_;
      if (pool != nullptr) [[likely]] {
        pool->Release(p);
      } else {
        delete p;
      }
    } else if (origin == tls_pool_) {
      origin->Release(p);
    } else {
      origin->ReleaseRemote(p);
    }
  }

  // Repoints the calling thread's pool (returning the previous one, possibly
  // null). Shard workers run each domain against that domain's own pool, so
  // allocations made while a domain executes are stamped with — and recycle
  // through — the domain pool regardless of which worker thread ran it.
  static PacketPool* SwapThreadPool(PacketPool* pool) noexcept {
    PacketPool* prev = tls_pool_;
    tls_pool_ = pool;
    return prev;
  }

  ~PacketPool();

  // Capacity-checked acquire: returns null (and counts the refusal) instead
  // of allocating when the pool is at its cap. This is the overload-policy
  // entry point — callers that can shed load (NIC transmit, fault
  // duplication, storm injectors) use it and surface the refusal as a typed
  // drop counter; infallible Acquire stays available for paths that must not
  // fail. A cap of 0 (the default) means unbounded, so uncapped pools behave
  // byte-for-byte as before.
  //
  // The occupancy test uses outstanding(), which deliberately counts remote
  // (cross-shard) releases only up to the last ReconcileRemoteReleases()
  // snapshot — see that method for why. The transient overcount only makes
  // the cap conservative, never violated.
  Packet* TryAcquire() {
    if (capacity_ != 0 && outstanding() >= capacity_) [[unlikely]] {
      ++exhausted_;
      return nullptr;
    }
    return Acquire();
  }

  // Pops recycled storage (or allocates) and resets it to default state.
  // Only `acquired_` is maintained inline; the allocator-miss count lives on
  // the cold branch so the steady state pays one counter update per packet.
  Packet* Acquire() {
    ++acquired_;
    if (free_.empty()) {
      DrainRemote();
      if (free_.empty()) {
        ++fresh_;
        Packet* p = new Packet;
        p->pool_origin = origin_stamp_;
        return p;
      }
    }
    Packet* p = free_.back();
    free_.pop_back();
    // Recycled storage must look freshly constructed. Copying a static
    // zeroed image lowers to straight-line vector loads/stores; a memset
    // call of exactly two cache lines picks x86 rep-stos, whose startup
    // latency dwarfs the stores themselves (measured ~25% of the whole GRO
    // datapath). Three fixups restore the non-zero defaults; packet_test
    // pins the equivalence against a default-constructed Packet.
    alignas(64) static constexpr unsigned char kZeroImage[sizeof(Packet)] = {};
    std::memcpy(static_cast<void*>(p), kZeroImage, sizeof(Packet));
    p->flow.protocol = 6;
    p->priority = Priority::kLow;
    p->pool_origin = origin_stamp_;
    return p;
  }

  // Local-origin release: the inlined fast path on every packet free. One
  // freelist push plus one compare against the compaction watermark; the
  // compaction itself (and the cross-thread Treiber path below) stays
  // out-of-line so this inlines to a handful of instructions at call sites.
  void Release(Packet* p) noexcept {
    ++released_local_;
    free_.push_back(p);
    if (free_.size() >= compact_watermark_) [[unlikely]] {
      CompactFreeList();
    }
  }

  // Batch release for a folded run: one thread-local pool load and one
  // watermark check hoisted out of the loop, instead of per packet. Consumes
  // (nulls) every non-null PacketPtr in [ptrs, ptrs + n); null entries are
  // skipped, so callers may hand over a partially consumed batch.
  static void ReleaseBatch(PacketPtr* ptrs, size_t n) noexcept {
    PacketPool* pool = tls_pool_;
    for (size_t i = 0; i < n; ++i) {
      Packet* p = ptrs[i].release();
      if (p == nullptr) {
        continue;
      }
      PacketPool* origin = p->pool_origin;
      if (origin == nullptr) [[likely]] {
        if (pool != nullptr) [[likely]] {
          ++pool->released_local_;
          pool->free_.push_back(p);
        } else {
          delete p;
        }
      } else if (origin == pool) {
        ++pool->released_local_;
        pool->free_.push_back(p);
      } else {
        origin->ReleaseRemote(p);
      }
    }
    if (pool != nullptr && pool->free_.size() >= pool->compact_watermark_) [[unlikely]] {
      pool->CompactFreeList();
    }
  }

  // Cross-thread release: push onto the origin pool's lock-free return stack
  // (Treiber MPSC — many releasing threads, one draining owner). The CAS
  // releases the packet's contents to the owner's acquire in DrainRemote.
  // Out-of-line: the cross-shard path is cold next to local recycling, and
  // keeping it out keeps the inlined Release small.
  void ReleaseRemote(Packet* p) noexcept;

  // Frees the freelist's storage (keeps stats). Outstanding packets are
  // unaffected; they re-enter the (now empty) freelist when released.
  void Trim();

  // --- Bounded-resource operation (overload resilience) ---------------------
  //
  // Occupancy is tracked as (acquired - released), never by freelist size:
  // the freelist holds *storage*, occupancy is about *live packets*. The
  // remote-release half of the ledger is a plain atomic counter bumped by
  // ReleaseRemote, but it is folded into the occupancy view only at
  // ReconcileRemoteReleases() — called at points that are deterministic in
  // simulation structure (the sharded engine's post-barrier inject phase,
  // or a quiescent main-thread probe), never at wall-clock-dependent moments
  // like DrainRemote. That keeps outstanding(), and therefore every
  // TryAcquire verdict and drop counter derived from it, identical for any
  // worker count — the property the overload digests rely on.

  // Hard cap on live packets from this pool; 0 = unbounded (default).
  void set_capacity(size_t capacity) noexcept { capacity_ = capacity; }
  size_t capacity() const { return capacity_; }

  // Folds remote (cross-thread) releases into the occupancy view. Owner
  // thread only, and only when every release that should be visible has a
  // happens-before edge to the caller (barrier or quiescence).
  void ReconcileRemoteReleases() noexcept {
    remote_released_seen_ = remote_released_.load(std::memory_order_acquire);
  }

  // Live packets as of the last reconcile: acquired minus released. May
  // transiently overcount by releases still unseen on the remote stack.
  // Computed signed and clamped at zero: a packet acquired from one pool but
  // released into this pool's ledger (an unstamped allocation freed on a
  // thread whose ambient pool is this one) makes released exceed acquired,
  // and an unsigned wrap would read as "infinitely full" — turning a small
  // bookkeeping skew into a permanent allocation refusal.
  uint64_t outstanding() const {
    const int64_t live = static_cast<int64_t>(acquired_) -
                         static_cast<int64_t>(released_local_) -
                         static_cast<int64_t>(remote_released_seen_);
    return live > 0 ? static_cast<uint64_t>(live) : 0;
  }

  // TryAcquire refusals (the pool's contribution to tail-drop counters).
  uint64_t exhausted() const { return exhausted_; }
  uint64_t released() const { return released_local_ + remote_released_seen_; }

  uint64_t acquired() const { return acquired_; }
  // Acquisitions served from the freelist rather than the allocator.
  uint64_t recycled() const { return acquired_ - fresh_; }
  size_t free_size() const { return free_.size(); }
  // Storage freed by watermark compaction (not by Trim), and the current
  // watermark — observability for the bounded-growth guarantee.
  uint64_t compact_freed() const { return compact_freed_; }
  size_t compact_watermark() const { return compact_watermark_; }

 private:
  // Cold path: constructs the calling thread's pool and caches its address.
  static PacketPool& CreateForThread();

  // Claims the whole cross-thread return stack in one exchange and moves it
  // onto the local freelist. Cold: runs only when the freelist is empty.
  void DrainRemote() {
    Packet* p = remote_free_.exchange(nullptr, std::memory_order_acquire);
    while (p != nullptr) {
      Packet* next = p->pool_next;
      p->pool_next = nullptr;
      free_.push_back(p);
      p = next;
    }
  }

  // Watermark compaction (cold; see Release). When the freelist reaches the
  // watermark, measure the demand since the last decision (acquisitions
  // served): a fully cycling freelist just doubles the watermark so busy
  // steady states stop re-deriving, while storage beyond recent demand — a
  // release storm with nobody acquiring — is freed down to max(floor/2,
  // demand). Each trim is O(watermark) deletes after >= watermark/2 pushes,
  // so the amortized cost per release is O(1), and after any storm the
  // retained freelist is bounded by ~2x the floor-or-demand, never by the
  // storm's size.
  void CompactFreeList() noexcept;
  static constexpr size_t kCompactFloor = 4096;

  // constinit: provably no dynamic initialization, so access compiles to a
  // bare thread-relative load instead of a call to the TLS init wrapper.
  static constinit thread_local PacketPool* tls_pool_;

  std::vector<Packet*> free_;
  std::atomic<Packet*> remote_free_{nullptr};  // cross-thread return stack
  // What Acquire writes into Packet::pool_origin: `this` for engine-owned
  // (CrossThreadReturnTag) pools, null for thread-ambient ones.
  PacketPool* const origin_stamp_ = nullptr;
  uint64_t acquired_ = 0;
  uint64_t fresh_ = 0;  // acquisitions that had to hit the allocator
  // Overload-resilience ledger (see the block comment above set_capacity).
  size_t capacity_ = 0;            // 0 = unbounded
  uint64_t released_local_ = 0;    // owner-thread releases
  uint64_t remote_released_seen_ = 0;  // remote releases folded at reconcile
  uint64_t exhausted_ = 0;             // TryAcquire refusals at the cap
  std::atomic<uint64_t> remote_released_{0};
  size_t compact_watermark_ = kCompactFloor;
  uint64_t compact_last_acquired_ = 0;
  uint64_t compact_freed_ = 0;
};

inline void PacketDeleter::operator()(Packet* p) const noexcept {
  PacketPool::ReleaseToThreadPool(p);
}

// A default-initialized packet from the calling thread's pool.
inline PacketPtr AllocPacket() { return PacketPtr(PacketPool::ThreadLocal().Acquire()); }

// A pooled copy of `src` (used for duplication faults and test fixtures).
// Only simulation state is copied: the clone keeps its own storage's pool
// bookkeeping, not the source's.
inline PacketPtr ClonePacket(const Packet& src) {
  PacketPtr p = AllocPacket();
  PacketPool* origin = p->pool_origin;
  *p = src;
  p->pool_origin = origin;
  p->pool_next = nullptr;
  return p;
}

// Capacity-checked clone: null when the thread's pool is at its cap. Fault
// duplication uses this so an exhausted pool sheds the duplicate instead of
// blowing past the cap (the original is untouched either way).
inline PacketPtr TryClonePacket(const Packet& src) {
  Packet* raw = PacketPool::ThreadLocal().TryAcquire();
  if (raw == nullptr) {
    return nullptr;
  }
  PacketPtr p(raw);
  PacketPool* origin = p->pool_origin;
  *p = src;
  p->pool_origin = origin;
  p->pool_next = nullptr;
  return p;
}

// Allocates packets with unique ids. One factory per experiment keeps id
// assignment deterministic; storage comes from the thread's PacketPool.
class PacketFactory {
 public:
  PacketPtr Make() {
    PacketPtr p = AllocPacket();
    p->id = next_id_++;
    return p;
  }

  // Capacity-checked Make: null when the thread's pool refuses the
  // allocation. Ids are only consumed on success, so the id sequence of the
  // packets that *do* exist is independent of how many refusals interleaved.
  PacketPtr TryMake() {
    Packet* raw = PacketPool::ThreadLocal().TryAcquire();
    if (raw == nullptr) {
      return nullptr;
    }
    PacketPtr p(raw);
    p->id = next_id_++;
    return p;
  }

  uint64_t allocated() const { return next_id_; }

 private:
  uint64_t next_id_ = 0;
};

// The unit GRO delivers up the stack: one contiguous in-order byte range
// assembled from `mtu_count` wire packets, plus the metadata TCP needs.
struct Segment {
  FiveTuple flow;
  Seq seq = 0;
  uint32_t payload_len = 0;
  uint32_t mtu_count = 0;
  uint8_t flags = 0;
  Seq ack_seq = 0;
  uint32_t ack_rwnd = 0;
  SackBlocks sack;
  bool ece = false;
  bool ce_mark = false;
  TimeNs first_rx_time = 0;  // earliest constituent packet arrival
  TimeNs last_rx_time = 0;   // latest constituent packet arrival
  TimeNs sent_time = 0;      // sent_time of the first constituent packet

  Seq end_seq() const { return seq + payload_len; }
};

}  // namespace juggler

#endif  // JUGGLER_SRC_PACKET_PACKET_H_
