#include "src/packet/packet.h"

namespace juggler {

static_assert(kMss + kPerPacketWireOverhead > kMtuBytes,
              "wire frame must cover the MTU plus framing overhead");
static_assert(std::is_trivially_copyable_v<Packet>,
              "Packet reset in PacketPool::Acquire relies on trivial copyability");
static_assert(sizeof(Packet) == 128,
              "simulation state plus pool bookkeeping must fill exactly two cache lines");

constinit thread_local PacketPool* PacketPool::tls_pool_ = nullptr;

PacketPool& PacketPool::CreateForThread() {
  // One pool per thread: sweep-runner workers each recycle privately, and
  // the pool lives until thread exit, past any simulation state that could
  // still hold packets.
  thread_local PacketPool pool;
  tls_pool_ = &pool;
  return pool;
}

PacketPool::~PacketPool() {
  DrainRemote();  // storage parked on the return stack is ours to free
  for (Packet* p : free_) {
    delete p;
  }
  if (tls_pool_ == this) {
    tls_pool_ = nullptr;  // later releases on this thread free directly
  }
}

void PacketPool::Trim() {
  DrainRemote();
  for (Packet* p : free_) {
    delete p;
  }
  free_.clear();
}

}  // namespace juggler
