#include "src/packet/packet.h"

namespace juggler {

static_assert(kMss + kPerPacketWireOverhead > kMtuBytes,
              "wire frame must cover the MTU plus framing overhead");
static_assert(std::is_trivially_copyable_v<Packet>,
              "Packet reset in PacketPool::Acquire relies on trivial copyability");

constinit thread_local PacketPool* PacketPool::tls_pool_ = nullptr;

PacketPool& PacketPool::CreateForThread() {
  // One pool per thread: sweep-runner workers each recycle privately, and
  // the pool lives until thread exit, past any simulation state that could
  // still hold packets.
  thread_local PacketPool pool;
  tls_pool_ = &pool;
  return pool;
}

PacketPool::~PacketPool() {
  for (Packet* p : free_) {
    delete p;
  }
  if (tls_pool_ == this) {
    tls_pool_ = nullptr;  // later releases on this thread free directly
  }
}

void PacketPool::Trim() {
  for (Packet* p : free_) {
    delete p;
  }
  free_.clear();
}

}  // namespace juggler
