#include "src/packet/packet.h"

// Packet and Segment are header-only value types; this translation unit
// exists to anchor the jug_packet library.

namespace juggler {

static_assert(kMss + kPerPacketWireOverhead > kMtuBytes,
              "wire frame must cover the MTU plus framing overhead");

}  // namespace juggler
