#include "src/packet/packet.h"

#include <algorithm>

namespace juggler {

static_assert(kMss + kPerPacketWireOverhead > kMtuBytes,
              "wire frame must cover the MTU plus framing overhead");
static_assert(std::is_trivially_copyable_v<Packet>,
              "Packet reset in PacketPool::Acquire relies on trivial copyability");
static_assert(sizeof(Packet) == 128,
              "simulation state plus pool bookkeeping must fill exactly two cache lines");

constinit thread_local PacketPool* PacketPool::tls_pool_ = nullptr;

PacketPool& PacketPool::CreateForThread() {
  // One pool per thread: sweep-runner workers each recycle privately, and
  // the pool lives until thread exit, past any simulation state that could
  // still hold packets.
  thread_local PacketPool pool;
  tls_pool_ = &pool;
  return pool;
}

PacketPool::~PacketPool() {
  DrainRemote();  // storage parked on the return stack is ours to free
  for (Packet* p : free_) {
    delete p;
  }
  if (tls_pool_ == this) {
    tls_pool_ = nullptr;  // later releases on this thread free directly
  }
}

void PacketPool::Trim() {
  DrainRemote();
  for (Packet* p : free_) {
    delete p;
  }
  free_.clear();
  compact_watermark_ = kCompactFloor;
  compact_last_acquired_ = acquired_;
}

void PacketPool::ReleaseRemote(Packet* p) noexcept {
  Packet* head = remote_free_.load(std::memory_order_relaxed);
  do {
    p->pool_next = head;
  } while (!remote_free_.compare_exchange_weak(head, p, std::memory_order_release,
                                               std::memory_order_relaxed));
  // Ledger half of the release. The owner folds this in only at its next
  // reconcile point, so occupancy stays deterministic even though the push
  // above races freely with the owner's drain.
  remote_released_.fetch_add(1, std::memory_order_release);
}

void PacketPool::CompactFreeList() noexcept {
  const uint64_t demand = acquired_ - compact_last_acquired_;
  compact_last_acquired_ = acquired_;
  if (demand >= free_.size()) {
    // The whole freelist turned over since the last decision: this is a busy
    // steady state, not a storm. Raise the bar so the derivation stops
    // firing; nothing is freed.
    compact_watermark_ = free_.size() * 2;
    return;
  }
  const size_t keep =
      std::max<size_t>(kCompactFloor / 2, static_cast<size_t>(demand));
  if (keep < free_.size()) {
    for (size_t i = keep; i < free_.size(); ++i) {
      delete free_[i];
    }
    compact_freed_ += free_.size() - keep;
    free_.resize(keep);
  }
  compact_watermark_ = std::max(kCompactFloor, keep * 2);
}

}  // namespace juggler
