#include "src/sim/event_loop.h"

#include <limits>
#include <utility>

#include "src/util/logging.h"

namespace juggler {

TimerId EventLoop::ScheduleAt(TimeNs when, Callback cb) {
  JUG_CHECK(when >= now_);
  const TimerId id = next_id_++;
  queue_.push(Event{when, next_order_++, id, std::move(cb)});
  cancelled_capable_ids_.insert(id);
  return id;
}

void EventLoop::Cancel(TimerId id) {
  if (id == kInvalidTimerId) {
    return;
  }
  cancelled_capable_ids_.erase(id);
}

bool EventLoop::RunOne(TimeNs deadline) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (top.when > deadline) {
      return false;
    }
    // Lazily skip cancelled events.
    if (!cancelled_capable_ids_.contains(top.id)) {
      queue_.pop();
      continue;
    }
    JUG_CHECK(top.when >= now_);
    now_ = top.when;
    cancelled_capable_ids_.erase(top.id);
    // Move the callback out before popping; the callback may schedule more
    // events (mutating the queue) so it must not run while `top` is aliased.
    Callback cb = std::move(const_cast<Event&>(top).cb);
    queue_.pop();
    ++executed_;
    cb();
    return true;
  }
  return false;
}

void EventLoop::Run() {
  stopped_ = false;
  while (!stopped_ && RunOne(std::numeric_limits<TimeNs>::max())) {
  }
}

void EventLoop::RunUntil(TimeNs deadline) {
  stopped_ = false;
  while (!stopped_ && RunOne(deadline)) {
  }
  if (now_ < deadline && !stopped_) {
    now_ = deadline;
  }
}

uint64_t EventLoop::RunSteps(uint64_t max_events) {
  stopped_ = false;
  uint64_t ran = 0;
  while (ran < max_events && !stopped_ && RunOne(std::numeric_limits<TimeNs>::max())) {
    ++ran;
  }
  return ran;
}

}  // namespace juggler
