#include "src/sim/event_loop.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "src/util/logging.h"

namespace juggler {

TimerId EventLoop::ScheduleAt(TimeNs when, Callback cb) {
  JUG_CHECK(when >= now_);
  const TimerId id = next_id_++;
  heap_.push_back(Event{when, next_order_++, id, std::move(cb)});
  std::push_heap(heap_.begin(), heap_.end(), EventLater{});
  pending_ids_.insert(id);
  return id;
}

void EventLoop::Cancel(TimerId id) {
  if (id == kInvalidTimerId) {
    return;
  }
  if (pending_ids_.erase(id) > 0) {
    ++dead_in_heap_;
    MaybeCompact();
  }
}

void EventLoop::MaybeCompact() {
  // Compact only once dead entries both dominate the heap and are numerous
  // enough that the O(n) rebuild amortises to O(1) per cancellation.
  if (dead_in_heap_ < 1024 || dead_in_heap_ * 2 < heap_.size()) {
    return;
  }
  std::erase_if(heap_, [this](const Event& e) { return !pending_ids_.contains(e.id); });
  std::make_heap(heap_.begin(), heap_.end(), EventLater{});
  dead_in_heap_ = 0;
}

bool EventLoop::RunOne(TimeNs deadline) {
  while (!heap_.empty()) {
    if (heap_.front().when > deadline) {
      return false;
    }
    std::pop_heap(heap_.begin(), heap_.end(), EventLater{});
    Event event = std::move(heap_.back());
    heap_.pop_back();
    // Lazily skip cancelled events.
    if (!pending_ids_.contains(event.id)) {
      JUG_CHECK(dead_in_heap_ > 0);
      --dead_in_heap_;
      continue;
    }
    JUG_CHECK(event.when >= now_);
    now_ = event.when;
    pending_ids_.erase(event.id);
    ++executed_;
    event.cb();
    return true;
  }
  return false;
}

void EventLoop::Run() {
  stopped_ = false;
  while (!stopped_ && RunOne(std::numeric_limits<TimeNs>::max())) {
  }
}

void EventLoop::RunUntil(TimeNs deadline) {
  stopped_ = false;
  while (!stopped_ && RunOne(deadline)) {
  }
  if (now_ < deadline && !stopped_) {
    now_ = deadline;
  }
}

uint64_t EventLoop::RunSteps(uint64_t max_events) {
  stopped_ = false;
  uint64_t ran = 0;
  while (ran < max_events && !stopped_ && RunOne(std::numeric_limits<TimeNs>::max())) {
    ++ran;
  }
  return ran;
}

}  // namespace juggler
