#include "src/sim/event_loop.h"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>

#include "src/util/logging.h"

namespace juggler {

TimerId EventLoop::ScheduleAt(TimeNs when, Callback cb) {
  JUG_CHECK(when >= now_);
  uint32_t index;
  if (free_slots_.empty()) {
    index = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
  } else {
    index = free_slots_.back();
    free_slots_.pop_back();
  }
  TimerSlot& slot = slots_[index];
  slot.armed = true;
  slot.cb = std::move(cb);
  ++live_timers_;
  const TimerId id = MakeId(index, slot.generation);
  heap_.push_back(Event{when, next_order_++, id});
  std::push_heap(heap_.begin(), heap_.end(), EventLater{});
  return id;
}

void EventLoop::Cancel(TimerId id) {
  if (id == kInvalidTimerId) {
    return;
  }
  const uint32_t index = SlotIndexOf(id);
  if (index >= slots_.size() || slots_[index].generation != GenerationOf(id) ||
      !slots_[index].armed) {
    return;  // already fired, already cancelled, or never valid
  }
  slots_[index].cb.Reset();  // free captured resources at cancel time
  ReleaseSlot(index);
  ++dead_in_heap_;
  MaybeCompact();
}

void EventLoop::MaybeCompact() {
  // Compact only once dead entries both dominate the heap and are numerous
  // enough that the O(n) rebuild amortises to O(1) per cancellation.
  if (dead_in_heap_ < 1024 || dead_in_heap_ * 2 < heap_.size()) {
    return;
  }
  std::erase_if(heap_, [this](const Event& e) { return !IsLive(e.id); });
  std::make_heap(heap_.begin(), heap_.end(), EventLater{});
  dead_in_heap_ = 0;
}

TimeNs EventLoop::next_event_time() {
  while (!heap_.empty() && !IsLive(heap_.front().id)) {
    std::pop_heap(heap_.begin(), heap_.end(), EventLater{});
    heap_.pop_back();
    JUG_CHECK(dead_in_heap_ > 0);
    --dead_in_heap_;
  }
  return heap_.empty() ? kNoEvent : heap_.front().when;
}

void EventLoop::Shutdown() {
  heap_.clear();
  free_slots_.clear();
  for (uint32_t index = 0; index < slots_.size(); ++index) {
    TimerSlot& slot = slots_[index];
    if (slot.armed) {
      slot.cb.Reset();
      slot.armed = false;
      ++slot.generation;
    }
    free_slots_.push_back(index);
  }
  live_timers_ = 0;
  dead_in_heap_ = 0;
}

bool EventLoop::RunOne(TimeNs deadline) {
  while (!heap_.empty()) {
    if (heap_.front().when > deadline) {
      return false;
    }
    std::pop_heap(heap_.begin(), heap_.end(), EventLater{});
    const Event event = heap_.back();
    heap_.pop_back();
    // Lazily skip cancelled events.
    if (!IsLive(event.id)) {
      JUG_CHECK(dead_in_heap_ > 0);
      --dead_in_heap_;
      continue;
    }
    JUG_CHECK(event.when >= now_);
    now_ = event.when;
    const uint32_t index = SlotIndexOf(event.id);
    TimerCallback cb = std::move(slots_[index].cb);
    ReleaseSlot(index);
    ++executed_;
    // Zero cost unless a callback actually throws (table-based EH); the
    // annotation turns an anonymous what() into a located failure.
    try {
      cb();
    } catch (const EventLoopCallbackError&) {
      throw;  // already annotated by a nested loop
    } catch (const std::exception& e) {
      throw EventLoopCallbackError(
          "event-loop callback threw at t=" + std::to_string(now_) + "ns (event #" +
          std::to_string(executed_) + ", " + std::to_string(live_timers_) +
          " pending timers): " + e.what());
    }
    return true;
  }
  return false;
}

void EventLoop::Run() {
  stopped_ = false;
  while (!stopped_ && RunOne(std::numeric_limits<TimeNs>::max())) {
  }
}

void EventLoop::RunUntil(TimeNs deadline) {
  stopped_ = false;
  while (!stopped_ && RunOne(deadline)) {
  }
  if (now_ < deadline && !stopped_) {
    now_ = deadline;
  }
}

uint64_t EventLoop::RunSteps(uint64_t max_events) {
  stopped_ = false;
  uint64_t ran = 0;
  while (ran < max_events && !stopped_ && RunOne(std::numeric_limits<TimeNs>::max())) {
    ++ran;
  }
  return ran;
}

}  // namespace juggler
