#include "src/sim/event_loop.h"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>

#include "src/util/logging.h"

namespace juggler {

TimerId EventLoop::CommitDue(TimeNs when, TimerId id) {
  due_.push_back(Event{when, next_order_++, id});
  std::push_heap(due_.begin(), due_.end(), EventLater{});
  return id;
}

void EventLoop::DrainStaged() {
  for (const Event& e : staged_) {
    TimerSlot& slot = slots_[SlotIndexOf(e.id)];
    if (slot.generation != GenerationOf(e.id)) {
      // Cancelled out of the middle of the staging array.
      --dead_entries_;
      continue;
    }
    FileEvent(e, slot);
  }
  staged_.clear();
}

size_t EventLoop::pending_events() const {
  size_t total = staged_.size() + due_.size() + overflow_.size();
  for (int level = 0; level < kWheelLevels; ++level) {
    uint64_t occ = occupied_[level];
    while (occ != 0) {
      total += buckets_[level][__builtin_ctzll(occ)].size();
      occ &= occ - 1;
    }
  }
  return total;
}

void EventLoop::MaybeCompact() {
  // Compact only once dead entries both dominate the pending set and are
  // numerous enough that the O(n) sweep amortises to O(1) per cancellation.
  // The caller gated on compact_threshold_, so the O(buckets) total
  // derivation runs rarely; when the dead share is still a minority, push
  // the watermark to the earliest point it could reach half.
  const size_t total = pending_events();
  if (dead_entries_ * 2 < total) {
    // Re-check once dead could have caught up to the current live count.
    compact_threshold_ = total - dead_entries_;
    return;
  }
  const auto sweep = [this](std::vector<Event>& vec) {
    std::erase_if(vec, [this](const Event& e) { return !IsLive(e.id); });
  };
  sweep(staged_);
  for (int level = 0; level < kWheelLevels; ++level) {
    uint64_t occ = occupied_[level];
    while (occ != 0) {
      const int bucket = __builtin_ctzll(occ);
      occ &= occ - 1;
      sweep(buckets_[level][bucket]);
      if (buckets_[level][bucket].empty()) {
        occupied_[level] &= ~(1ULL << bucket);
      }
    }
  }
  sweep(overflow_);
  sweep(due_);
  std::make_heap(due_.begin(), due_.end(), EventLater{});
  dead_entries_ = 0;
  compact_threshold_ = kCompactFloor;
}

void EventLoop::PruneDueFront() {
  while (!due_.empty() && !IsLive(due_.front().id)) {
    std::pop_heap(due_.begin(), due_.end(), EventLater{});
    due_.pop_back();
    --dead_entries_;
  }
}

bool EventLoop::HarvestNext(TimeNs limit) {
  // The lowest occupied level holds the globally earliest wheel events:
  // every level-l event expires before every event of any level above it
  // (its expiry agrees with wheel_time_ on all digits > l; a higher-level
  // event exceeds wheel_time_ in one of those digits).
  int level = -1;
  for (int l = 0; l < kWheelLevels; ++l) {
    if (occupied_[l] != 0) {
      level = l;
      break;
    }
  }
  if (level < 0) {
    // Wheel empty: fall back to the overflow list (expiries that were beyond
    // the top level's span). Prune dead entries, find the earliest live
    // expiry, and re-bucket everything relative to it — entries still too
    // far out simply land back in overflow.
    if (overflow_.empty()) {
      return false;
    }
    TimeNs min_when = kNoEvent;
    size_t kept = 0;
    for (size_t r = 0; r < overflow_.size(); ++r) {
      if (!IsLive(overflow_[r].id)) {
        --dead_entries_;
        continue;
      }
      overflow_[kept++] = overflow_[r];
      min_when = std::min(min_when, overflow_[r].when);
    }
    overflow_.resize(kept);
    if (kept == 0 || min_when > limit) {
      return false;
    }
    wheel_time_ = min_when;
    std::vector<Event> pending;
    pending.swap(overflow_);
    for (const Event& e : pending) {
      FileEvent(e, slots_[SlotIndexOf(e.id)]);
    }
    return true;
  }

  const int bucket = __builtin_ctzll(occupied_[level]);
  const int shift = level * kWheelLevelBits;
  const uint64_t upper = static_cast<uint64_t>(wheel_time_) >> (shift + kWheelLevelBits);
  const TimeNs slot_start = static_cast<TimeNs>(
      ((upper << kWheelLevelBits) | static_cast<uint64_t>(bucket)) << shift);
  if (slot_start > limit) {
    return false;
  }
  occupied_[level] &= ~(1ULL << bucket);
  std::vector<Event>& vec = buckets_[level][bucket];
  wheel_time_ = slot_start;
  // Re-file the bucket against the advanced base: a level-1 bucket drains
  // straight into the due heap (its whole span is the new base's level-0
  // window); a higher bucket cascades into strictly lower levels. FileEvent
  // never targets the bucket being drained, so iterating it is safe.
  for (const Event& e : vec) {
    TimerSlot& slot = slots_[SlotIndexOf(e.id)];
    if (slot.generation != GenerationOf(e.id)) {
      --dead_entries_;
      continue;
    }
    FileEvent(e, slot);
  }
  vec.clear();
  return true;
}

TimeNs EventLoop::next_event_time() {
  DrainStaged();
  for (;;) {
    PruneDueFront();
    if (!due_.empty()) {
      return due_.front().when;
    }
    if (!HarvestNext(kNoEvent)) {
      return kNoEvent;
    }
  }
}

void EventLoop::Shutdown() {
  staged_.clear();
  due_.clear();
  for (int level = 0; level < kWheelLevels; ++level) {
    for (int bucket = 0; bucket < kWheelSlots; ++bucket) {
      buckets_[level][bucket].clear();
    }
    occupied_[level] = 0;
  }
  overflow_.clear();
  free_slots_.clear();
  for (uint32_t index = 0; index < slots_.size(); ++index) {
    TimerSlot& slot = slots_[index];
    if ((slot.generation & 1) != 0) {  // armed
      slot.cb.Reset();
      ++slot.generation;
    }
    free_slots_.push_back(index);
  }
  dead_entries_ = 0;
  compact_threshold_ = kCompactFloor;
}

bool EventLoop::RunOne(TimeNs deadline) {
  if (!staged_.empty()) {
    DrainStaged();
  }
  for (;;) {
    if (due_.empty()) {
      if (!HarvestNext(deadline)) {
        return false;
      }
      continue;
    }
    // Every wheel entry expires after wheel_time_|63, and every due entry at
    // or before it, so the due front is the global minimum — no harvest
    // needed. The liveness check is fused into the pop: one slot load serves
    // both the dead-entry skip and the callback fetch.
    const Event event = due_.front();
    const uint32_t index = SlotIndexOf(event.id);
    TimerSlot& slot = slots_[index];
    if (slot.generation != GenerationOf(event.id)) {
      std::pop_heap(due_.begin(), due_.end(), EventLater{});
      due_.pop_back();
      --dead_entries_;
      continue;
    }
    if (event.when > deadline) {
      return false;
    }
    std::pop_heap(due_.begin(), due_.end(), EventLater{});
    due_.pop_back();
    JUG_CHECK(event.when >= now_);
    now_ = event.when;
    TimerCallback cb = std::move(slot.cb);
    ReleaseSlot(index);
    ++executed_;
    // Zero cost unless a callback actually throws (table-based EH); the
    // annotation turns an anonymous what() into a located failure.
    try {
      cb();
    } catch (const EventLoopCallbackError&) {
      throw;  // already annotated by a nested loop
    } catch (const std::exception& e) {
      throw EventLoopCallbackError(
          "event-loop callback threw at t=" + std::to_string(now_) + "ns (event #" +
          std::to_string(executed_) + ", " +
          std::to_string(slots_.size() - free_slots_.size()) +
          " pending timers): " + e.what());
    }
    return true;
  }
}

void EventLoop::Run() {
  stopped_ = false;
  while (!stopped_ && RunOne(std::numeric_limits<TimeNs>::max())) {
  }
}

void EventLoop::RunUntil(TimeNs deadline) {
  stopped_ = false;
  while (!stopped_ && RunOne(deadline)) {
  }
  if (now_ < deadline && !stopped_) {
    now_ = deadline;
  }
}

uint64_t EventLoop::RunSteps(uint64_t max_events) {
  stopped_ = false;
  uint64_t ran = 0;
  while (ran < max_events && !stopped_ && RunOne(std::numeric_limits<TimeNs>::max())) {
    ++ran;
  }
  return ran;
}

}  // namespace juggler
