// Conservative parallel discrete-event engine: one large scenario, many
// cores, zero rollback.
//
// The scenario is split into *domains* — fixed partitions (one host, one
// switch) that each own a private EventLoop, PacketPool and PacketFactory.
// The only coupling between domains is a wire crossing with a fixed minimum
// latency, registered via Connect(); the smallest such latency is the
// engine's *lookahead* L. Execution proceeds in windows:
//
//   1. m  = min over all domains of the next pending event time.
//   2. Every domain runs independently (in parallel) up to
//      window_end = min(deadline, m + L). No event executed in this window
//      can affect another domain before window_end: a packet emitted at
//      local time t >= m crosses the wire no earlier than t + L >= m + L.
//   3. Barrier. Each domain drains its inbound mailboxes and schedules the
//      arrivals (all >= window_end by the argument above — checked) into its
//      own loop. Barrier. Repeat.
//
// Determinism is by construction, not by tie-breaking heuristics: the domain
// graph, the window sequence (a function of global event times and L only)
// and each domain's intra-window execution are all independent of how many
// worker threads multiplex the domains. `shards=N` therefore changes wall
// clock and nothing else — byte-identical digests for N=1 and N=8. Equal
// arrival timestamps order by (inbound-mailbox registration order, push
// order) via the destination loop's FIFO tie-break, which is the
// (timestamp, source shard, sequence) ordering in concrete form.
//
// Threading: worker 0 is the calling thread; W-1 helpers are spawned per
// Run() (W is the shard knob clamped by ThreadBudget and the domain count).
// Domains are assigned statically (index mod W). Three barrier crossings per
// window separate (round publication) -> run -> inject; all cross-thread
// data (mailboxes, loops read for `m`) is touched only on the correct side
// of a barrier, so the engine needs no locks and runs TSan-clean. While a
// worker executes a domain, that domain's pool is made thread-ambient
// (PacketPool::SwapThreadPool), so allocations stamp the domain pool and
// cross-shard releases recycle back to it through the return stack.
//
// Teardown: ~ShardedEngine frees mailbox contents, then Shutdown()s every
// loop (freeing packets riding timers), and only then lets the domain pools
// die — satisfying the stamped-pool lifetime contract even for packets that
// crossed domains.

#ifndef JUGGLER_SRC_SIM_SHARDED_ENGINE_H_
#define JUGGLER_SRC_SIM_SHARDED_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/packet/packet.h"
#include "src/sim/event_loop.h"
#include "src/sim/shard_mailbox.h"
#include "src/util/time.h"

namespace juggler {

// One partition of the scenario: a private event loop, packet pool (stamped
// for cross-thread return) and id-assigning factory. Components of this
// domain are constructed against loop()/factory() exactly as they would be
// against a scenario-wide loop.
class ShardDomain {
 public:
  explicit ShardDomain(std::string name) : name_(std::move(name)) {}

  EventLoop& loop() { return loop_; }
  PacketFactory& factory() { return factory_; }
  PacketPool& pool() { return pool_; }
  const std::string& name() const { return name_; }
  uint64_t executed_events() const { return loop_.executed_events(); }

 private:
  friend class ShardedEngine;

  std::string name_;
  // Pool declared before the loop: the loop (which may still reference pool
  // storage until Shutdown) is destroyed first.
  PacketPool pool_{PacketPool::CrossThreadReturnTag{}};
  EventLoop loop_;
  PacketFactory factory_;
  std::vector<ShardMailbox*> inbound_;  // registration order = tie-break order
  uint64_t injected_ = 0;               // packets received from other domains
};

struct ShardedEngineStats {
  uint64_t windows = 0;          // lookahead rounds executed
  uint64_t crossings = 0;        // packets handed between domains
  size_t workers = 0;            // actual worker threads used by last Run()
  TimeNs lookahead = 0;          // 0 when no cross-domain links exist
  // Mailbox pressure across all (src, dst) pairs: the deepest any one
  // buffer ever got, and how many envelopes hit the capacity fuse. Nonzero
  // overflow means the run shed cross-shard packets — visible degradation
  // instead of unbounded growth behind a stuck consumer.
  size_t mailbox_high_watermark = 0;
  uint64_t mailbox_overflow_drops = 0;
  // Wall-clock nanoseconds each worker spent blocked on barriers (imbalance
  // indicator); index 0 is the calling thread.
  std::vector<uint64_t> barrier_wait_ns;
};

class ShardedEngine {
 public:
  // `shards` is the requested worker count; the effective count is clamped
  // to [1, domains] and to the process ThreadBudget at Run() time.
  explicit ShardedEngine(size_t shards);
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  // Topology construction (single-threaded, before Run).
  ShardDomain* AddDomain(std::string name);

  // Register a wire crossing from `src` to `dst` with the given minimum
  // latency (> 0); returns the endpoint producers in `src` write to. The
  // engine's lookahead is the minimum latency over all crossings.
  RemoteEndpoint* Connect(ShardDomain* src, ShardDomain* dst, TimeNs latency);

  // Per-pair mailbox capacity, applied to existing and future crossings.
  // 0 restores ShardMailbox::kDefaultCapacity. Call before Run().
  void set_mailbox_capacity(size_t capacity);

  // Run every domain to `deadline` under the window protocol; afterwards
  // each domain's loop sits at now() == deadline, exactly like RunUntil.
  void Run(TimeNs deadline);

  // Frees every packet still parked in mailboxes or riding loop timers, and
  // reconciles each pool's remote-release ledger — the destructor's teardown
  // sequence, exposed so overload audits can measure pool occupancy *after*
  // all in-flight storage has drained (a nonzero remainder is a true leak).
  // Idempotent; the engine must not be Run() again afterwards.
  void ReleaseResidualPackets();

  size_t domain_count() const { return domains_.size(); }
  ShardDomain* domain(size_t i) { return domains_[i].get(); }
  const ShardedEngineStats& stats() const { return stats_; }

 private:
  // Publishes the next window (or the stop flag) into window_end_/stop_.
  // Called by worker 0 only, while all other workers are parked.
  void PrepareRound();
  void RunPhase(size_t worker, size_t num_workers);
  void InjectPhase(size_t worker, size_t num_workers);
  void RunSingleThreaded();
  void RunMultiThreaded(size_t num_workers);

  static constexpr TimeNs kNoLookahead = INT64_MAX;

  const size_t requested_shards_;
  size_t mailbox_capacity_ = 0;  // 0 = ShardMailbox default
  std::vector<std::unique_ptr<ShardDomain>> domains_;
  std::vector<std::unique_ptr<ShardMailbox>> mailboxes_;
  std::vector<std::unique_ptr<RemoteEndpoint>> endpoints_;
  TimeNs lookahead_ = kNoLookahead;

  // Per-Run() round state. Written by worker 0 in PrepareRound, read by all
  // workers after the round-publication barrier.
  TimeNs deadline_ = 0;
  TimeNs window_end_ = 0;
  bool stop_ = false;
  bool final_round_pending_ = false;

  ShardedEngineStats stats_;
};

// Snapshot the engine's worker-invariant stats into `registry`: windows,
// crossings, lookahead, mailbox pressure, per-domain executed-event counts.
// Deliberately excludes `workers` and `barrier_wait_ns` — those depend on
// the worker count / wall clock, and published metrics must stay
// byte-identical across --shards=N.
void PublishShardedEngineStats(ShardedEngine* engine, MetricsRegistry* registry);

}  // namespace juggler

#endif  // JUGGLER_SRC_SIM_SHARDED_ENGINE_H_
