// Cross-shard packet handoff for the sharded engine.
//
// A ShardMailbox is the single-producer/single-consumer channel between one
// ordered (source domain, destination domain) pair. During a lookahead
// window's run phase the source domain's worker appends envelopes; after the
// barrier, the destination domain's worker drains them and schedules the
// arrivals into its own EventLoop. Exactly one thread touches the mailbox in
// each phase and the engine's barrier orders the phases, so the buffer needs
// no atomics — the synchronization lives in the barrier, which is what makes
// the whole handoff TSan-clean and cheap (a plain vector push per crossing).
//
// A RemoteEndpoint is the producer-side façade a pipeline stage (Link,
// ReorderStage, FaultStage) writes to instead of calling a local PacketSink:
// it stamps each packet with its absolute arrival time — source-domain now,
// plus the remainder of the wire's propagation delay that the crossing
// stands in for, plus any stage-specific extra (reorder lane offset, fault
// delay spike). The endpoint's `latency` must be > 0: it is the lower bound
// the engine's conservative lookahead is derived from, so a packet emitted
// at local time t can only ever arrive at t + latency, strictly inside the
// *next* window — the no-causality-violation invariant of a conservative
// parallel DES.

#ifndef JUGGLER_SRC_SIM_SHARD_MAILBOX_H_
#define JUGGLER_SRC_SIM_SHARD_MAILBOX_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/net/packet_sink.h"
#include "src/packet/packet.h"
#include "src/util/logging.h"
#include "src/util/time.h"

namespace juggler {

// One packet crossing shard domains: the packet, when it arrives in the
// destination domain's clock, and which sink there receives it.
struct ShardEnvelope {
  PacketPtr packet;
  TimeNs arrival = 0;
  PacketSink* sink = nullptr;
};

// SPSC buffer for one (source domain, destination domain) pair. The engine's
// window barrier separates the producer's Push calls from the consumer's
// Drain, so no internal locking is needed (see file comment).
//
// The buffer is bounded: a wedged or slow consumer must degrade visibly (a
// rising high watermark, then counted overflow drops that TCP treats as
// wire loss) instead of growing the producer's memory without bound. The
// default capacity is far above what any healthy window crosses — at the
// default it acts as a memory fuse, not a throttle — and overflow_drops /
// high_watermark are surfaced through ShardedEngineStats so `chaos_runner
// --shards` prints them.
class ShardMailbox {
 public:
  // ~24MB of envelopes per pair at the fuse point; a healthy NetFPGA window
  // crosses a few hundred.
  static constexpr size_t kDefaultCapacity = 1u << 20;

  // `capacity` == 0 restores the default. Safe to call between windows; the
  // engine applies it from the construction thread before Run().
  void set_capacity(size_t capacity) {
    capacity_ = capacity == 0 ? kDefaultCapacity : capacity;
  }
  size_t capacity() const { return capacity_; }

  void Push(PacketPtr packet, TimeNs arrival, PacketSink* sink) {
    if (buffer_.size() >= capacity_) {
      // Dropping the PacketPtr recycles the packet like any other wire
      // loss; the producer keeps running and the counter tells the story.
      ++overflow_drops_;
      return;
    }
    buffer_.push_back(ShardEnvelope{std::move(packet), arrival, sink});
    if (buffer_.size() > high_watermark_) {
      high_watermark_ = buffer_.size();
    }
  }

  bool empty() const { return buffer_.empty(); }

  // Envelopes rejected because the buffer sat at capacity.
  uint64_t overflow_drops() const { return overflow_drops_; }
  // Largest batch ever buffered between one window's run and inject phases.
  size_t high_watermark() const { return high_watermark_; }

  // The consumer takes the whole batch; capacity is kept so steady-state
  // windows re-use the same storage.
  std::vector<ShardEnvelope>& buffer() { return buffer_; }

  void Clear() { buffer_.clear(); }

 private:
  std::vector<ShardEnvelope> buffer_;
  size_t capacity_ = kDefaultCapacity;
  size_t high_watermark_ = 0;
  uint64_t overflow_drops_ = 0;
};

// Producer-side delivery target for a stage whose next element lives in
// another shard domain. Holds the mailbox toward that domain, the arrival
// sink within it, the source domain's clock, and the wire latency this
// crossing stands in for.
//
// Doubles as a PacketSink so stages that only know how to Accept() (the tail
// of a chain) can point straight at it; stages that add their own offset
// (reorder lane delay, fault delay spike) call Deliver(packet, extra)
// directly.
class RemoteEndpoint : public PacketSink {
 public:
  // `latency` is the share of the wire's propagation delay carried by the
  // crossing itself; must be > 0 (it lower-bounds the engine's lookahead).
  RemoteEndpoint(ShardMailbox* mailbox, const TimeNs* src_now, TimeNs latency)
      : mailbox_(mailbox), src_now_(src_now), latency_(latency) {
    JUG_CHECK(mailbox_ != nullptr);
    JUG_CHECK(src_now_ != nullptr);
    JUG_CHECK(latency_ > 0);
  }

  // Where the packet lands in the destination domain. Settable after
  // construction because topology builders wire cycles (LatchSink-style).
  void set_sink(PacketSink* sink) { sink_ = sink; }

  TimeNs latency() const { return latency_; }

  // Enqueue `packet` to arrive at src-now + latency + extra. `extra` >= 0 is
  // the stage's own contribution on top of the wire crossing.
  void Deliver(PacketPtr packet, TimeNs extra) {
    JUG_CHECK(sink_ != nullptr);
    JUG_CHECK(extra >= 0);
    mailbox_->Push(std::move(packet), *src_now_ + latency_ + extra, sink_);
  }

  void Accept(PacketPtr packet) override { Deliver(std::move(packet), 0); }

 private:
  ShardMailbox* mailbox_;
  const TimeNs* src_now_;
  PacketSink* sink_ = nullptr;
  TimeNs latency_;
};

}  // namespace juggler

#endif  // JUGGLER_SRC_SIM_SHARD_MAILBOX_H_
