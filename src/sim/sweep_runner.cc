#include "src/sim/sweep_runner.h"

namespace juggler {

size_t SweepWorkerCount(size_t num_points, size_t num_threads) {
  size_t workers = num_threads != 0 ? num_threads : ThreadBudget::Total();
  if (workers == 0) {
    workers = 1;
  }
  if (workers > num_points) {
    workers = num_points;
  }
  return workers;
}

}  // namespace juggler
