// Small-buffer-optimized, move-only callable for the simulation hot path.
//
// std::function<void()> requires copyable callables and heap-allocates any
// capture bigger than its tiny inline buffer (16 bytes on libstdc++). Nearly
// every callback in this tree captures `this` plus a couple of pointers or
// flags — 24 to 40 bytes — so each timer schedule paid one allocation, and
// packets crossing a propagation delay had to ride in a shared_ptr holder
// just to make the lambda copyable.
//
// TimerCallback fixes both: callables up to kInlineCapacity bytes live
// inline (no allocation), and move-only captures (PacketPtr!) are fine.
// Oversized callables still work through a heap fallback, so no call site
// ever has to care.
//
// Hot-path notes: the whole object is 56 bytes, so the EventLoop's timer
// slot (generation tag + location + callback) fits one cache line.
// Emplace() lets the event loop construct a callable straight into its slot
// — the schedule path never materialises a temporary TimerCallback and
// never moves one. Trivially-destructible captures (almost every
// schedule/cancel in a run: `this` plus PODs) carry a null destroy hook, so
// cancelling one is a test-and-branch, not an indirect call.

#ifndef JUGGLER_SRC_SIM_INLINE_CALLBACK_H_
#define JUGGLER_SRC_SIM_INLINE_CALLBACK_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace juggler {

class TimerCallback {
 public:
  // 48 bytes covers every capture in the tree today; bigger ones fall back
  // to the heap transparently.
  static constexpr size_t kInlineCapacity = 48;

  TimerCallback() noexcept = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, TimerCallback> &&
                                        std::is_invocable_r_v<void, D&>>>
  // NOLINTNEXTLINE(google-explicit-constructor): implicit like std::function.
  TimerCallback(F&& f) {
    EmplaceImpl<F, D>(std::forward<F>(f));
  }

  // Construct a callable in place over whatever was held before. The event
  // loop uses this to build the capture directly inside a timer slot.
  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, TimerCallback> &&
                                        std::is_invocable_r_v<void, D&>>>
  void Emplace(F&& f) {
    Reset();
    EmplaceImpl<F, D>(std::forward<F>(f));
  }

  TimerCallback(TimerCallback&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(other.buf_, buf_);
      other.ops_ = nullptr;
    }
  }

  TimerCallback& operator=(TimerCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(other.buf_, buf_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  TimerCallback(const TimerCallback&) = delete;
  TimerCallback& operator=(const TimerCallback&) = delete;

  ~TimerCallback() { Reset(); }

  void operator()() { ops_->invoke(buf_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  // Destroys the held callable (releasing any resources it captured). A
  // null destroy hook marks a trivially-destructible capture: dropping it is
  // free.
  void Reset() noexcept {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) {
        ops_->destroy(buf_);
      }
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    // Move-construct from `from` into `to`, destroying the source object.
    void (*relocate)(void* from, void* to) noexcept;
    // Null when destruction is a no-op.
    void (*destroy)(void* storage) noexcept;
  };

  template <typename F, typename D>
  void EmplaceImpl(F&& f) {
    if constexpr (sizeof(D) <= kInlineCapacity && alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  template <typename D>
  static D* Stored(void* storage) noexcept {
    return std::launder(reinterpret_cast<D*>(storage));
  }

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* s) { (*Stored<D>(s))(); },
      [](void* from, void* to) noexcept {
        D* src = Stored<D>(from);
        ::new (to) D(std::move(*src));
        src->~D();
      },
      std::is_trivially_destructible_v<D>
          ? nullptr
          : +[](void* s) noexcept { Stored<D>(s)->~D(); },
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* s) { (**Stored<D*>(s))(); },
      [](void* from, void* to) noexcept { ::new (to) D*(*Stored<D*>(from)); },
      [](void* s) noexcept { delete *Stored<D*>(s); },
  };

  alignas(std::max_align_t) std::byte buf_[kInlineCapacity];
  const Ops* ops_ = nullptr;
};

}  // namespace juggler

#endif  // JUGGLER_SRC_SIM_INLINE_CALLBACK_H_
