// Parallel sweep execution for independent simulation points.
//
// Bench sweeps are embarrassingly parallel: each (parameter, seed) point
// builds its own SimWorld, runs it to completion, and reduces to a small
// result struct — no state is shared between points. RunSweep executes those
// points on a worker-thread pool and returns the results in point-index
// order, so callers print tables exactly as the sequential loop did.
//
// Determinism: a point function must build everything it simulates locally
// (its own EventLoop, factories, RNGs seeded from the point index). Worker
// threads claim points dynamically, so WHICH thread runs a point varies
// between invocations — but since each point is self-contained and packet
// recycling is per-thread (PacketPool::ThreadLocal), a point's result is a
// pure function of its index. Same inputs, same results, any thread count.

#ifndef JUGGLER_SRC_SIM_SWEEP_RUNNER_H_
#define JUGGLER_SRC_SIM_SWEEP_RUNNER_H_

#include <atomic>
#include <cstddef>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "src/util/thread_budget.h"

namespace juggler {

// Worker count used when `num_threads` is 0: the process thread budget
// (JUGGLER_THREADS override, else hardware concurrency), bounded so a sweep
// of N points never spawns idle threads.
size_t SweepWorkerCount(size_t num_points, size_t num_threads);

// Runs `point_fn(i)` for i in [0, num_points) across `num_threads` workers
// (0 = one per budgeted thread) and returns the results indexed by point.
// The worker count is drawn from the shared ThreadBudget, so a sweep whose
// points themselves run sharded scenarios degrades to fewer inner workers
// instead of oversubscribing. `point_fn` must be callable concurrently from
// multiple threads; the calling thread is worker 0, so with one worker
// everything runs inline.
template <typename PointFn>
auto RunSweep(size_t num_points, PointFn&& point_fn, size_t num_threads = 0)
    -> std::vector<decltype(point_fn(size_t{0}))> {
  using Result = decltype(point_fn(size_t{0}));
  std::vector<std::optional<Result>> slots(num_points);
  const size_t workers =
      ThreadBudget::Acquire(SweepWorkerCount(num_points, num_threads));

  std::atomic<size_t> next{0};
  auto drain = [&] {
    // Dynamic claiming: long points (high fault rates, slow convergence)
    // don't stall a statically assigned partner.
    for (size_t i = next.fetch_add(1, std::memory_order_relaxed); i < num_points;
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      slots[i].emplace(point_fn(i));
    }
  };

  if (workers <= 1) {
    drain();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (size_t w = 1; w < workers; ++w) {
      pool.emplace_back(drain);
    }
    drain();
    for (auto& t : pool) {
      t.join();
    }
  }
  ThreadBudget::Release(workers);

  std::vector<Result> results;
  results.reserve(num_points);
  for (auto& slot : slots) {
    results.push_back(std::move(*slot));
  }
  return results;
}

}  // namespace juggler

#endif  // JUGGLER_SRC_SIM_SWEEP_RUNNER_H_
