#include "src/sim/sharded_engine.h"

#include <barrier>
#include <chrono>
#include <thread>
#include <utility>

#include "src/util/logging.h"
#include "src/util/thread_budget.h"

namespace juggler {

ShardedEngine::ShardedEngine(size_t shards) : requested_shards_(shards < 1 ? 1 : shards) {}

ShardedEngine::~ShardedEngine() { ReleaseResidualPackets(); }

void ShardedEngine::ReleaseResidualPackets() {
  // Free packets parked in mailboxes, then packets riding timers in any
  // loop, before the domain pools (where all that storage returns) die.
  // Releases from a loop Shutdown land on the owning pool directly (this is
  // the owning thread), or on a sibling pool's remote stack when the packet
  // crossed domains — so reconcile every pool's ledger afterwards, on this
  // one thread, once all releases have happened.
  for (auto& mailbox : mailboxes_) {
    mailbox->Clear();
  }
  for (auto& domain : domains_) {
    PacketPool* prev = PacketPool::SwapThreadPool(&domain->pool_);
    domain->loop_.Shutdown();
    PacketPool::SwapThreadPool(prev);
  }
  for (auto& domain : domains_) {
    domain->pool_.ReconcileRemoteReleases();
  }
}

ShardDomain* ShardedEngine::AddDomain(std::string name) {
  domains_.push_back(std::make_unique<ShardDomain>(std::move(name)));
  return domains_.back().get();
}

RemoteEndpoint* ShardedEngine::Connect(ShardDomain* src, ShardDomain* dst, TimeNs latency) {
  JUG_CHECK(src != nullptr && dst != nullptr);
  JUG_CHECK(src != dst);  // intra-domain traffic never needs a mailbox
  JUG_CHECK(latency > 0);
  mailboxes_.push_back(std::make_unique<ShardMailbox>());
  ShardMailbox* mailbox = mailboxes_.back().get();
  mailbox->set_capacity(mailbox_capacity_);
  dst->inbound_.push_back(mailbox);
  endpoints_.push_back(
      std::make_unique<RemoteEndpoint>(mailbox, src->loop_.now_ptr(), latency));
  if (latency < lookahead_) {
    lookahead_ = latency;
  }
  return endpoints_.back().get();
}

void ShardedEngine::set_mailbox_capacity(size_t capacity) {
  mailbox_capacity_ = capacity;
  for (auto& mailbox : mailboxes_) {
    mailbox->set_capacity(capacity);
  }
}

void ShardedEngine::PrepareRound() {
  if (final_round_pending_) {
    stop_ = true;
    return;
  }
  TimeNs m = EventLoop::kNoEvent;
  for (auto& domain : domains_) {
    const TimeNs t = domain->loop_.next_event_time();
    if (t < m) {
      m = t;
    }
  }
  if (m == EventLoop::kNoEvent || m >= deadline_) {
    // Nothing (left) before the deadline: one final window pins every clock
    // to the deadline and executes any events at exactly the deadline; such
    // events can only emit arrivals >= deadline + lookahead, so the round
    // after this one stops.
    window_end_ = deadline_;
    final_round_pending_ = true;
  } else if (lookahead_ == kNoLookahead || lookahead_ >= deadline_ - m) {
    window_end_ = deadline_;
  } else {
    window_end_ = m + lookahead_;
  }
  ++stats_.windows;
}

void ShardedEngine::RunPhase(size_t worker, size_t num_workers) {
  for (size_t i = worker; i < domains_.size(); i += num_workers) {
    ShardDomain* domain = domains_[i].get();
    // Make the domain's pool thread-ambient while its events run, so
    // allocations stamp — and recycle through — the domain pool no matter
    // which worker executes it.
    PacketPool* prev = PacketPool::SwapThreadPool(&domain->pool_);
    domain->loop_.RunUntil(window_end_);
    PacketPool::SwapThreadPool(prev);
  }
}

void ShardedEngine::InjectPhase(size_t worker, size_t num_workers) {
  for (size_t i = worker; i < domains_.size(); i += num_workers) {
    ShardDomain* domain = domains_[i].get();
    // Deterministic reconcile point for the pool's remote-release ledger:
    // the barrier before this phase orders every ReleaseRemote performed
    // during the window behind this fold, and which releases those are is a
    // property of the window schedule, not of worker interleaving. Occupancy
    // (and so every capacity verdict next window) is identical for any
    // worker count.
    domain->pool_.ReconcileRemoteReleases();
    EventLoop& loop = domain->loop_;
    for (ShardMailbox* mailbox : domain->inbound_) {
      for (ShardEnvelope& env : mailbox->buffer()) {
        // The conservative invariant: nothing emitted inside a window may
        // arrive before the window's end. An arrival exactly at the horizon
        // is legal — it executes in the next window (loop now() == end, and
        // ScheduleAt accepts when == now).
        JUG_CHECK(env.arrival >= window_end_);
        ++domain->injected_;
        loop.ScheduleAt(env.arrival,
                        [sink = env.sink, p = std::move(env.packet)]() mutable {
                          sink->Accept(std::move(p));
                        });
      }
      mailbox->Clear();
    }
  }
}

void ShardedEngine::RunSingleThreaded() {
  for (;;) {
    PrepareRound();
    if (stop_) {
      return;
    }
    RunPhase(0, 1);
    InjectPhase(0, 1);
  }
}

void ShardedEngine::RunMultiThreaded(size_t num_workers) {
  std::barrier<> barrier(static_cast<std::ptrdiff_t>(num_workers));
  stats_.barrier_wait_ns.assign(num_workers, 0);
  // Distinct vector elements: each worker writes only its own slot.
  auto wait = [&](size_t worker) {
    const auto start = std::chrono::steady_clock::now();
    barrier.arrive_and_wait();
    stats_.barrier_wait_ns[worker] += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
  };
  // Worker 0 (the calling thread) additionally computes each round while the
  // helpers are parked at the round-publication barrier; the barrier pair
  // around every phase supplies all the happens-before edges the shared
  // state (round parameters, loops, mailboxes) needs.
  auto body = [&](size_t worker) {
    for (;;) {
      if (worker == 0) {
        PrepareRound();
      }
      wait(worker);  // round published
      if (stop_) {
        return;
      }
      RunPhase(worker, num_workers);
      wait(worker);  // every domain reached window_end_
      InjectPhase(worker, num_workers);
      wait(worker);  // every mailbox drained
    }
  };
  std::vector<std::thread> helpers;
  helpers.reserve(num_workers - 1);
  for (size_t worker = 1; worker < num_workers; ++worker) {
    helpers.emplace_back(body, worker);
  }
  body(0);
  for (std::thread& t : helpers) {
    t.join();
  }
}

void ShardedEngine::Run(TimeNs deadline) {
  JUG_CHECK(!domains_.empty());
  deadline_ = deadline;
  stop_ = false;
  final_round_pending_ = false;
  size_t want = requested_shards_;
  if (want > domains_.size()) {
    want = domains_.size();
  }
  const size_t workers = ThreadBudget::Acquire(want);
  stats_.workers = workers;
  stats_.lookahead = lookahead_ == kNoLookahead ? 0 : lookahead_;
  if (workers <= 1) {
    stats_.barrier_wait_ns.assign(1, 0);
    RunSingleThreaded();
  } else {
    RunMultiThreaded(workers);
  }
  ThreadBudget::Release(workers);
  stats_.crossings = 0;
  for (auto& domain : domains_) {
    stats_.crossings += domain->injected_;
  }
  stats_.mailbox_high_watermark = 0;
  stats_.mailbox_overflow_drops = 0;
  for (auto& mailbox : mailboxes_) {
    if (mailbox->high_watermark() > stats_.mailbox_high_watermark) {
      stats_.mailbox_high_watermark = mailbox->high_watermark();
    }
    stats_.mailbox_overflow_drops += mailbox->overflow_drops();
  }
}

void PublishShardedEngineStats(ShardedEngine* engine, MetricsRegistry* registry) {
  const ShardedEngineStats& stats = engine->stats();
  registry->AddCounter("sim.windows", "", stats.windows);
  registry->AddCounter("sim.crossings", "", stats.crossings);
  registry->SetGauge("sim.lookahead_ns", "", static_cast<uint64_t>(stats.lookahead));
  registry->MaxGauge("sim.mailbox_high_watermark", "", stats.mailbox_high_watermark);
  registry->AddCounter("sim.mailbox_overflow_drops", "", stats.mailbox_overflow_drops);
  for (size_t i = 0; i < engine->domain_count(); ++i) {
    ShardDomain* d = engine->domain(i);
    registry->AddCounter("sim.executed_events", d->name(), d->executed_events());
  }
}

}  // namespace juggler
