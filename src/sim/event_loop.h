// Discrete-event simulation core.
//
// A single EventLoop drives an experiment: components schedule callbacks at
// absolute or relative times; Run() executes them in time order. Two events
// at the same timestamp fire in scheduling order (a monotonically increasing
// tie-break id), which makes every experiment deterministic.
//
// Hot-path layout (the loop executes one event per simulated packet or more,
// so per-operation constants decide every experiment's wall clock):
//
//  * Callbacks are TimerCallback (small-buffer optimized, move-only): a
//    capture up to 48 bytes costs no allocation, and move-only captures
//    (PacketPtr) are allowed, so packets ride timers directly instead of in
//    shared_ptr holders.
//  * Timer identity is a generation-tagged slot: TimerId packs (generation,
//    slot index). Schedule/Cancel/fire touch a flat slot vector — no hash
//    set insert/erase per timer as the old `pending_ids_` design did. A
//    slot's generation bumps on every release, so a stale id (cancelled or
//    already fired) simply fails the generation match.
//  * Heap entries are 24-byte PODs ({when, order, id}); the callback stays
//    in the slot, so heap sift operations move trivial values only.
//
// Timers are cancellable: Schedule() returns a TimerId and Cancel() releases
// the slot immediately (the callback's resources are freed at cancel time);
// the heap entry is discarded lazily when popped. So that long soak runs
// stay bounded, the loop tracks how many dead entries the heap holds and
// compacts it in place once they dominate: components that arm-and-cancel
// timers millions of times (TCP RTO, GRO hrtimers) cost O(live timers)
// memory, not O(cancellations).

#ifndef JUGGLER_SRC_SIM_EVENT_LOOP_H_
#define JUGGLER_SRC_SIM_EVENT_LOOP_H_

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "src/sim/inline_callback.h"
#include "src/util/time.h"

namespace juggler {

// Thrown by Run()/RunUntil()/RunSteps() when a scheduled callback throws a
// std::exception: the original what() annotated with where the loop stood —
// simulated time, executed-event count, pending live timers — so failure
// forensics gets a located failure instead of a bare message. The loop
// itself stays consistent (the firing timer's slot was already released), so
// a caller that catches may keep running.
class EventLoopCallbackError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Packs (generation << 32 | slot index + 1); 0 is never a valid id.
using TimerId = uint64_t;
inline constexpr TimerId kInvalidTimerId = 0;

class EventLoop {
 public:
  using Callback = TimerCallback;

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  TimeNs now() const { return now_; }

  // Stable address of the simulation clock, for components that read the
  // time on every packet (the GRO context): one load, no call.
  const TimeNs* now_ptr() const { return &now_; }

  // Schedule `cb` to run `delay` (>= 0) after the current time.
  TimerId Schedule(TimeNs delay, Callback cb) { return ScheduleAt(now_ + delay, std::move(cb)); }

  // Schedule `cb` at absolute time `when` (>= now()).
  TimerId ScheduleAt(TimeNs when, Callback cb);

  // Cancel a pending timer. Cancelling an already-fired or invalid id is a
  // no-op, which keeps call sites simple ("cancel whatever might be armed").
  void Cancel(TimerId id);

  bool IsPending(TimerId id) const {
    const uint32_t index = SlotIndexOf(id);
    return index < slots_.size() && slots_[index].generation == GenerationOf(id) &&
           slots_[index].armed;
  }

  // Timestamp of the earliest live (not cancelled) pending event, or
  // kNoEvent when the queue is empty. Prunes dead heap-front entries as a
  // side effect, so repeated calls stay O(1) amortised. The sharded engine
  // polls this between lookahead windows to size the next window.
  static constexpr TimeNs kNoEvent = INT64_MAX;
  TimeNs next_event_time();

  // Drops every pending event and live timer, freeing captured resources
  // (packets riding timers) immediately. now() is unchanged. Used by owners
  // that must tear down multiple interlinked loops in a controlled order —
  // the sharded engine releases all in-flight packets back to their origin
  // pools before any pool is destroyed.
  void Shutdown();

  // Run until the event queue drains.
  void Run();

  // Run events with time <= `deadline`; afterwards now() == deadline even if
  // the queue drained early, so rate computations use the full window.
  void RunUntil(TimeNs deadline);

  // Run at most `max_events` events (testing aid). Returns events executed.
  uint64_t RunSteps(uint64_t max_events);

  // Heap entries, including not-yet-reclaimed cancelled ones.
  size_t pending_events() const { return heap_.size(); }
  // Live (schedulable, not cancelled, not fired) timer ids.
  size_t pending_timer_ids() const { return live_timers_; }
  uint64_t executed_events() const { return executed_; }

  // Request that Run()/RunUntil() return after the current event completes.
  void Stop() { stopped_ = true; }

 private:
  // Trivial heap entry: the callback stays in its slot so sift operations
  // move 24 bytes, not a callable.
  struct Event {
    TimeNs when;
    uint64_t order;  // tie-break: FIFO among equal timestamps
    TimerId id;
  };

  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.order > b.order;
    }
  };

  struct TimerSlot {
    uint32_t generation = 1;
    bool armed = false;
    TimerCallback cb;
  };

  static uint32_t SlotIndexOf(TimerId id) { return static_cast<uint32_t>(id) - 1; }
  static uint32_t GenerationOf(TimerId id) { return static_cast<uint32_t>(id >> 32); }
  static TimerId MakeId(uint32_t index, uint32_t generation) {
    return (static_cast<TimerId>(generation) << 32) | (index + 1);
  }

  // True when the heap entry's id still names a live timer.
  bool IsLive(TimerId id) const {
    const uint32_t index = SlotIndexOf(id);
    return slots_[index].generation == GenerationOf(id) && slots_[index].armed;
  }

  // Frees `index` for reuse; the generation bump invalidates outstanding
  // ids (the not-yet-popped heap entry, stale handles held by components).
  void ReleaseSlot(uint32_t index) {
    TimerSlot& slot = slots_[index];
    slot.armed = false;
    ++slot.generation;
    free_slots_.push_back(index);
    --live_timers_;
  }

  // Pops and runs one event; returns false when the queue is empty or the
  // next event is after `deadline`.
  bool RunOne(TimeNs deadline);

  // Rebuilds the heap without dead (cancelled) entries once they outnumber
  // the live ones; amortised O(1) per cancellation.
  void MaybeCompact();

  // Binary heap ordered by EventLater (front = earliest event).
  std::vector<Event> heap_;
  std::vector<TimerSlot> slots_;
  std::vector<uint32_t> free_slots_;
  size_t live_timers_ = 0;
  size_t dead_in_heap_ = 0;  // cancelled entries still in heap_
  TimeNs now_ = 0;
  uint64_t next_order_ = 0;
  uint64_t executed_ = 0;
  bool stopped_ = false;
};

}  // namespace juggler

#endif  // JUGGLER_SRC_SIM_EVENT_LOOP_H_
