// Discrete-event simulation core.
//
// A single EventLoop drives an experiment: components schedule callbacks at
// absolute or relative times; Run() executes them in time order. Two events
// at the same timestamp fire in scheduling order (a monotonically increasing
// tie-break id), which makes every experiment deterministic.
//
// Hot-path layout (the loop executes one event per simulated packet or more,
// so per-operation constants decide every experiment's wall clock):
//
//  * Callbacks are TimerCallback (small-buffer optimized, move-only): a
//    capture up to 48 bytes costs no allocation, and move-only captures
//    (PacketPtr) are allowed, so packets ride timers directly instead of in
//    shared_ptr holders.
//  * Timer identity is a generation-tagged slot: TimerId packs (generation,
//    slot index). The generation's low bit doubles as the armed flag (odd =
//    armed), so liveness is a single 32-bit compare — no separate flag, no
//    hash set insert/erase per timer as the old `pending_ids_` design did. A
//    slot's generation bumps on arm and on release, so a stale id (cancelled
//    or already fired) simply fails the compare.
//  * Schedule does no ordering work for far-out timers. New events land in a
//    small staging array; the arm-then-cancel pattern TCP RTO re-arming and
//    GRO hrtimers hit millions of times cancels the entry it just staged, so
//    the schedule/cancel pair is two slot writes plus an array append/pop —
//    it never touches the wheel, the heap, or any comparison at all. The
//    staging array drains the next time the loop needs ordering (RunOne or
//    next_event_time), which never happens between an ACK's cancel and its
//    re-arm.
//  * Events that survive staging live in a hierarchical timer wheel, not a
//    binary heap. kWheelLevels levels of 64 buckets each bucket events by
//    the highest radix-64 digit in which their expiry differs from the
//    wheel's base time (`wheel_time_`), so filing is O(1): one clz, one
//    bucket append, one bitmap OR — no sift through a heap that mostly holds
//    far-future RTO and coalesce timers. Levels are visited in strict time
//    order (all level-l events expire before every level-(l+1) event), and a
//    bucket cascades toward the base as the wheel advances; events inside
//    the base's own 64ns span go straight to a small `due_` binary heap that
//    restores exact (when, order) execution order. The wheel changes *where
//    events wait*, never *when they fire* — digests are byte-identical to
//    the heap era. Expiries beyond the top level (> ~68.7 simulated seconds
//    out) wait in an overflow list that is re-bucketed when the wheel drains
//    to it.
//  * Wheel entries are 24-byte PODs ({when, order, id}); the callback stays
//    in the slot, so staging, bucket appends and cascades move trivial
//    values only.
//
// Timers are cancellable: Schedule() returns a TimerId and Cancel() releases
// the slot immediately (the callback's resources are freed at cancel time).
// Each timer slot remembers where its entry currently waits (staging array,
// wheel bucket, due heap, overflow): when the cancelled entry is still the
// newest there, Cancel pops it outright and no garbage is left behind.
// Entries cancelled out of the middle are skipped lazily when their
// container is drained, and once dead entries dominate the structures are
// compacted in place, so churn-heavy soaks cost O(live timers) memory, not
// O(cancellations).

#ifndef JUGGLER_SRC_SIM_EVENT_LOOP_H_
#define JUGGLER_SRC_SIM_EVENT_LOOP_H_

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/sim/inline_callback.h"
#include "src/util/logging.h"
#include "src/util/time.h"

namespace juggler {

// Thrown by Run()/RunUntil()/RunSteps() when a scheduled callback throws a
// std::exception: the original what() annotated with where the loop stood —
// simulated time, executed-event count, pending live timers — so failure
// forensics gets a located failure instead of a bare message. The loop
// itself stays consistent (the firing timer's slot was already released), so
// a caller that catches may keep running.
class EventLoopCallbackError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Packs (generation << 32 | slot index + 1); 0 is never a valid id.
using TimerId = uint64_t;
inline constexpr TimerId kInvalidTimerId = 0;

class EventLoop {
 public:
  using Callback = TimerCallback;

  // Wheel geometry: radix-64 digits, kWheelLevels of them. Level l holds
  // events whose expiry differs from wheel_time_ first in digit l, i.e.
  // deltas up to 64^(l+1) ticks of 1ns. Six levels span 64^6 ns ≈ 68.7
  // simulated seconds; farther expiries wait in the overflow list.
  static constexpr int kWheelLevelBits = 6;
  static constexpr int kWheelSlots = 1 << kWheelLevelBits;
  static constexpr int kWheelLevels = 6;

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  TimeNs now() const { return now_; }

  // Stable address of the simulation clock, for components that read the
  // time on every packet (the GRO context): one load, no call.
  const TimeNs* now_ptr() const { return &now_; }

  // Schedule a callable to run `delay` (>= 0) after the current time. The
  // template overloads construct the capture directly inside the timer slot
  // (TimerCallback::Emplace) — scheduling a lambda never materialises a
  // temporary callback object and never moves one.
  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, Callback>>>
  TimerId Schedule(TimeNs delay, F&& f) {
    return ScheduleAt(now_ + delay, std::forward<F>(f));
  }
  TimerId Schedule(TimeNs delay, Callback&& cb) { return ScheduleAt(now_ + delay, std::move(cb)); }

  // Schedule at absolute time `when` (>= now()). Defined inline below so
  // call sites inline it without LTO — Schedule is the single hottest call
  // in every experiment.
  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, Callback>>>
  TimerId ScheduleAt(TimeNs when, F&& f);
  TimerId ScheduleAt(TimeNs when, Callback&& cb);

  // Cancel a pending timer. Cancelling an already-fired or invalid id is a
  // no-op, which keeps call sites simple ("cancel whatever might be armed").
  void Cancel(TimerId id);

  bool IsPending(TimerId id) const {
    const uint32_t index = SlotIndexOf(id);
    return index < slots_.size() && slots_[index].generation == GenerationOf(id);
  }

  // Timestamp of the earliest live (not cancelled) pending event, or
  // kNoEvent when the queue is empty. Drains the staging array, prunes dead
  // entries and cascades wheel buckets as a side effect, so repeated calls
  // stay O(1) amortised. The sharded engine polls this between lookahead
  // windows to size the next window.
  static constexpr TimeNs kNoEvent = INT64_MAX;
  TimeNs next_event_time();

  // Drops every pending event and live timer, freeing captured resources
  // (packets riding timers) immediately. now() is unchanged. Used by owners
  // that must tear down multiple interlinked loops in a controlled order —
  // the sharded engine releases all in-flight packets back to their origin
  // pools before any pool is destroyed.
  void Shutdown();

  // Run until the event queue drains.
  void Run();

  // Run events with time <= `deadline`; afterwards now() == deadline even if
  // the queue drained early, so rate computations use the full window.
  void RunUntil(TimeNs deadline);

  // Run at most `max_events` events (testing aid). Returns events executed.
  uint64_t RunSteps(uint64_t max_events);

  // Pending event entries (staging + wheel + due heap + overflow), including
  // not-yet-reclaimed cancelled ones. Derived from container sizes — the
  // schedule/cancel hot path maintains no entry counter.
  size_t pending_events() const;
  // Live (schedulable, not cancelled, not fired) timer ids. Every armed
  // timer holds its slot off the free list, so the count is derived — no
  // counter on the hot path.
  size_t pending_timer_ids() const { return slots_.size() - free_slots_.size(); }
  uint64_t executed_events() const { return executed_; }

  // Request that Run()/RunUntil() return after the current event completes.
  void Stop() { stopped_ = true; }

 private:
  // Trivial event entry: the callback stays in its slot so staging, bucket
  // moves and due-heap sifts copy 24 bytes, not a callable.
  struct Event {
    TimeNs when;
    uint64_t order;  // tie-break: FIFO among equal timestamps
    TimerId id;
  };

  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.order > b.order;
    }
  };

  // Where a pending timer's Event entry currently lives, so Cancel can try
  // the pop-the-newest fast path. Updated on every drain/cascade.
  static constexpr uint8_t kLocDue = 0xFF;
  static constexpr uint8_t kLocOverflow = 0xFE;
  static constexpr uint8_t kLocStaged = 0xFD;

  struct TimerSlot {
    uint32_t generation = 0;  // low bit doubles as the armed flag: odd = armed
    uint8_t loc_level = 0;    // wheel level, or kLocStaged / kLocDue / kLocOverflow
    uint8_t loc_bucket = 0;   // bucket index within the level
    TimerCallback cb;
  };

  static uint32_t SlotIndexOf(TimerId id) { return static_cast<uint32_t>(id) - 1; }
  static uint32_t GenerationOf(TimerId id) { return static_cast<uint32_t>(id >> 32); }
  static TimerId MakeId(uint32_t index, uint32_t generation) {
    return (static_cast<TimerId>(generation) << 32) | (index + 1);
  }

  // True when the entry's id still names a live timer (armed generations are
  // odd, so a released slot can never match an outstanding id).
  bool IsLive(TimerId id) const {
    return slots_[SlotIndexOf(id)].generation == GenerationOf(id);
  }

  // Frees `index` for reuse; the generation bump (odd -> even) invalidates
  // outstanding ids (the not-yet-harvested wheel entry, stale handles held
  // by components).
  void ReleaseSlot(uint32_t index) {
    ++slots_[index].generation;
    free_slots_.push_back(index);
  }

  // Files `e` where it belongs relative to wheel_time_: the due heap when it
  // falls inside the wheel base's level-0 span (at or before wheel_time_|63
  // — one compare covers both "already due" and "fires within the current
  // 64ns window"), a wheel bucket of level >= 1 when within the wheel's
  // span, the overflow list otherwise. Records the location in the timer's
  // slot.
  void FileEvent(const Event& e, TimerSlot& slot);

  // Arms a freshly acquired slot and stages its entry.
  TimerId CommitSlot(TimeNs when, uint32_t index, TimerSlot& slot);

  // Staging-bypass tail of CommitSlot: files an immediately-due event into
  // the due heap. Out-of-line so the heap sift's code never inflates the
  // inlined schedule fast path (keeping it inline measured ~40% slower on
  // the churn microbenchmark purely from code growth).
  TimerId CommitDue(TimeNs when, TimerId id);

  // Pops a free slot (or grows the table). The caller installs the callback
  // and then calls CommitSlot.
  uint32_t AcquireSlot();

  // Moves staged events into their ordered homes (due heap / wheel /
  // overflow), dropping cancelled ones. Must run before any ordering
  // decision; RunOne and next_event_time call it on entry.
  void DrainStaged();

  // Moves the next occupied bucket (in global time order) toward the due
  // heap, advancing wheel_time_ and cascading higher-level buckets. Returns
  // false — without disturbing the wheel — when nothing is pending at or
  // before `limit`. One call makes one bucket (or the overflow list) of
  // progress; callers loop until the due heap holds a live entry.
  bool HarvestNext(TimeNs limit);

  // Drops dead entries from the front of the due heap.
  void PruneDueFront();

  // Pops and runs one event; returns false when the queue is empty or the
  // next event is after `deadline`.
  bool RunOne(TimeNs deadline);

  // Sweeps cancelled entries out of the staging array, every bucket, the
  // due heap and the overflow list once they outnumber the live ones;
  // amortised O(1) per cancellation. The live/dead ratio check needs the
  // total entry count, which is derived, so a watermark
  // (compact_threshold_) defers the derivation until the dead count could
  // plausibly dominate.
  void MaybeCompact();

  // Newly scheduled events, in scheduling order, not yet ordered by expiry.
  std::vector<Event> staged_;
  // Small binary heap ordered by EventLater (front = earliest event):
  // everything with expiry <= wheel_time_|63 — events harvested from the
  // wheel that are next to fire, plus events filed directly into the wheel
  // base's level-0 span. Wheel entries all expire strictly later, so
  // whenever due_ is non-empty its front is the global minimum.
  std::vector<Event> due_;
  // buckets_[l][s]: events whose expiry differs from wheel_time_ first in
  // radix-64 digit l, with digit value s. occupied_ mirrors non-emptiness.
  std::vector<Event> buckets_[kWheelLevels][kWheelSlots];
  uint64_t occupied_[kWheelLevels] = {};
  // Expiries beyond the top level's span; re-bucketed when the wheel drains.
  std::vector<Event> overflow_;
  // Radix base of the wheel: every wheel entry's expiry is > wheel_time_|63
  // (level-0 spans file straight into due_), and its level is the highest
  // radix-64 digit differing from wheel_time_. Advances monotonically as
  // buckets are harvested; may run ahead of now_ (harvest pulled a far
  // bucket while the loop idled), in which case events scheduled in between
  // simply wait in the due heap.
  TimeNs wheel_time_ = 0;

  std::vector<TimerSlot> slots_;
  std::vector<uint32_t> free_slots_;
  size_t dead_entries_ = 0;  // cancelled entries not yet reclaimed
  // Next dead_entries_ value at which MaybeCompact re-derives the total
  // entry count and re-decides; reset to the floor after each compaction.
  size_t compact_threshold_ = kCompactFloor;
  static constexpr size_t kCompactFloor = 1024;
  TimeNs now_ = 0;
  uint64_t next_order_ = 0;
  uint64_t executed_ = 0;
  bool stopped_ = false;
};

// --- inline hot path -------------------------------------------------------
// Schedule and Cancel are the two most frequent operations in any run; they
// live here so call sites inline them without needing LTO.

inline void EventLoop::FileEvent(const Event& e, TimerSlot& slot) {
  if (e.when <= (wheel_time_ | (kWheelSlots - 1))) {
    // Already due, or due within the wheel base's level-0 span: straight to
    // the due heap, no bucket hop, no later cascade.
    slot.loc_level = kLocDue;
    due_.push_back(e);
    std::push_heap(due_.begin(), due_.end(), EventLater{});
    return;
  }
  // Level >= 1 here: an expiry past wheel_time_|63 must differ from
  // wheel_time_ in some digit above 0.
  const uint64_t diff = static_cast<uint64_t>(e.when) ^ static_cast<uint64_t>(wheel_time_);
  const int level = (63 - __builtin_clzll(diff)) / kWheelLevelBits;
  if (level >= kWheelLevels) {
    slot.loc_level = kLocOverflow;
    overflow_.push_back(e);
    return;
  }
  const int bucket = static_cast<int>(
      (static_cast<uint64_t>(e.when) >> (level * kWheelLevelBits)) & (kWheelSlots - 1));
  slot.loc_level = static_cast<uint8_t>(level);
  slot.loc_bucket = static_cast<uint8_t>(bucket);
  buckets_[level][bucket].push_back(e);
  occupied_[level] |= 1ULL << bucket;
}

inline uint32_t EventLoop::AcquireSlot() {
  if (free_slots_.empty()) {
    const uint32_t index = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
    return index;
  }
  const uint32_t index = free_slots_.back();
  free_slots_.pop_back();
  return index;
}

inline TimerId EventLoop::CommitSlot(TimeNs when, uint32_t index, TimerSlot& slot) {
  const uint32_t generation = slot.generation + 1;  // odd: armed
  slot.generation = generation;
  const TimerId id = MakeId(index, generation);
  // Staging bypass: when the staging array is empty, peek at wheel_time_ and
  // file an immediately-due event (inside the wheel base's level-0 span)
  // straight into the due heap. This is the event-chain pattern — a callback
  // schedules its successor a tick out and RunOne drained staged_ on entry —
  // and it skips the stage-append + drain hop those events used to pay. The
  // bypass is legal regardless of staged_ contents (firing order is the
  // global (when, order) total order, independent of which container an
  // entry waits in), but it is *restricted* to an empty staging array so the
  // schedule/cancel churn pattern keeps its O(1) pop-the-newest guarantee:
  // churn arms land in staged_ as before (two slot writes plus an
  // append/pop), and the peek costs them one pointer compare.
  if (staged_.empty() && when <= (wheel_time_ | (kWheelSlots - 1))) {
    slot.loc_level = kLocDue;
    return CommitDue(when, id);
  }
  // Otherwise staged — even an event due this instant. Keeping the far-timer
  // schedule path branch-free (no due-heap sift) measured ~1.7x faster on
  // the churn microbenchmark than filing imminent events straight into the
  // due heap, and the drain files them there on the next ordering decision
  // anyway.
  slot.loc_level = kLocStaged;
  staged_.push_back(Event{when, next_order_++, id});
  return id;
}

template <typename F, typename>
inline TimerId EventLoop::ScheduleAt(TimeNs when, F&& f) {
  JUG_CHECK(when >= now_);
  const uint32_t index = AcquireSlot();
  TimerSlot& slot = slots_[index];
  slot.cb.Emplace(std::forward<F>(f));
  return CommitSlot(when, index, slot);
}

inline TimerId EventLoop::ScheduleAt(TimeNs when, Callback&& cb) {
  JUG_CHECK(when >= now_);
  const uint32_t index = AcquireSlot();
  TimerSlot& slot = slots_[index];
  slot.cb = std::move(cb);
  return CommitSlot(when, index, slot);
}

inline void EventLoop::Cancel(TimerId id) {
  if (id == kInvalidTimerId) {
    return;
  }
  const uint32_t index = SlotIndexOf(id);
  if (index >= slots_.size() || slots_[index].generation != GenerationOf(id)) {
    return;  // already fired, already cancelled, or never valid
  }
  TimerSlot& slot = slots_[index];
  slot.cb.Reset();  // free captured resources at cancel time
  const uint8_t level = slot.loc_level;
  const uint8_t bucket = slot.loc_bucket;
  ReleaseSlot(index);
  // Pop-the-newest fast path: the arm-then-cancel pattern (TCP RTO re-armed
  // by the next ACK, GRO hrtimers) cancels the entry it just staged, which
  // is still the newest in its container — pop it outright and leave no
  // garbage. due_ is a binary heap, but its back() is a leaf, so the same
  // trick holds whenever the entry didn't sift on insert.
  std::vector<Event>* vec;
  if (level == kLocStaged) {
    vec = &staged_;
  } else if (level == kLocDue) {
    vec = &due_;
  } else if (level == kLocOverflow) {
    vec = &overflow_;
  } else {
    vec = &buckets_[level][bucket];
  }
  if (!vec->empty() && vec->back().id == id) {
    vec->pop_back();
    if (level < kWheelLevels && vec->empty()) {
      occupied_[level] &= ~(1ULL << bucket);
    }
    return;
  }
  ++dead_entries_;
  if (dead_entries_ >= compact_threshold_) {
    MaybeCompact();
  }
}

}  // namespace juggler

#endif  // JUGGLER_SRC_SIM_EVENT_LOOP_H_
