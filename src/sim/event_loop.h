// Discrete-event simulation core.
//
// A single EventLoop drives an experiment: components schedule callbacks at
// absolute or relative times; Run() executes them in time order. Two events
// at the same timestamp fire in scheduling order (a monotonically increasing
// tie-break id), which makes every experiment deterministic.
//
// Timers are cancellable: Schedule() returns a TimerId and Cancel() marks the
// entry dead (lazy deletion — the heap entry is discarded when popped). So
// that long soak runs stay bounded, the loop tracks how many dead entries the
// heap holds and compacts it in place once they dominate: components that
// arm-and-cancel timers millions of times (TCP RTO, GRO hrtimers) cost O(live
// timers) memory, not O(cancellations).

#ifndef JUGGLER_SRC_SIM_EVENT_LOOP_H_
#define JUGGLER_SRC_SIM_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "src/util/time.h"

namespace juggler {

using TimerId = uint64_t;
inline constexpr TimerId kInvalidTimerId = 0;

class EventLoop {
 public:
  using Callback = std::function<void()>;

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  TimeNs now() const { return now_; }

  // Schedule `cb` to run `delay` (>= 0) after the current time.
  TimerId Schedule(TimeNs delay, Callback cb) { return ScheduleAt(now_ + delay, std::move(cb)); }

  // Schedule `cb` at absolute time `when` (>= now()).
  TimerId ScheduleAt(TimeNs when, Callback cb);

  // Cancel a pending timer. Cancelling an already-fired or invalid id is a
  // no-op, which keeps call sites simple ("cancel whatever might be armed").
  void Cancel(TimerId id);

  bool IsPending(TimerId id) const { return pending_ids_.contains(id); }

  // Run until the event queue drains.
  void Run();

  // Run events with time <= `deadline`; afterwards now() == deadline even if
  // the queue drained early, so rate computations use the full window.
  void RunUntil(TimeNs deadline);

  // Run at most `max_events` events (testing aid). Returns events executed.
  uint64_t RunSteps(uint64_t max_events);

  // Heap entries, including not-yet-reclaimed cancelled ones.
  size_t pending_events() const { return heap_.size(); }
  // Live (schedulable, not cancelled, not fired) timer ids.
  size_t pending_timer_ids() const { return pending_ids_.size(); }
  uint64_t executed_events() const { return executed_; }

  // Request that Run()/RunUntil() return after the current event completes.
  void Stop() { stopped_ = true; }

 private:
  struct Event {
    TimeNs when;
    uint64_t order;  // tie-break: FIFO among equal timestamps
    TimerId id;
    Callback cb;
  };

  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.order > b.order;
    }
  };

  // Pops and runs one event; returns false when the queue is empty or the
  // next event is after `deadline`.
  bool RunOne(TimeNs deadline);

  // Rebuilds the heap without dead (cancelled) entries once they outnumber
  // the live ones; amortised O(1) per cancellation.
  void MaybeCompact();

  // Binary heap ordered by EventLater (front = earliest event).
  std::vector<Event> heap_;
  std::unordered_set<TimerId> pending_ids_;  // ids scheduled and not yet fired/cancelled
  size_t dead_in_heap_ = 0;                  // cancelled entries still in heap_
  TimeNs now_ = 0;
  uint64_t next_order_ = 0;
  TimerId next_id_ = 1;
  uint64_t executed_ = 0;
  bool stopped_ = false;
};

}  // namespace juggler

#endif  // JUGGLER_SRC_SIM_EVENT_LOOP_H_
