// AppHarness: application-layer traffic mixes over a chaos testbed.
//
// Builds K connections between the testbed's two hosts and runs one of the
// app_resilience workloads over them:
//
//   rpc          — clients on host B issue open-loop requests; the (large)
//                  responses traverse the faulted/reordered A->B path that
//                  carries the GRO engine under test.
//   incast       — as rpc, but every session fires its wave at the same
//                  instant, so K responses fan in at B simultaneously.
//   bulk-transfer— clients on host A push chunked transfers A->B (the
//                  faulted path) with application-level acks riding back.
//   replication  — bulk chunks on K replica sessions; a chunk commits (and
//                  the next one is issued) only when EVERY replica acked it.
//
// Each direction of each connection gets a StreamIntegrityChecker (byte
// oracle) and the whole run shares one AppIntegrityAuditor (request
// oracle). Checkers that run on host A's shard domain write to a private
// AuditLog merged into the shared one after the workers join, so no checker
// ever races the B-side JugglerAuditor on the shared log.

#ifndef JUGGLER_SRC_SCENARIO_APP_TRAFFIC_H_
#define JUGGLER_SRC_SCENARIO_APP_TRAFFIC_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/fault/stream_integrity.h"
#include "src/scenario/host.h"
#include "src/workload/app_resilience.h"

namespace juggler {

struct AppHarnessWiring {
  Host* a = nullptr;                // testbed sender host (fault path source)
  Host* b = nullptr;                // testbed receiver host (GRO under test)
  EventLoop* a_loop = nullptr;
  EventLoop* b_loop = nullptr;
  FlightRecorder* a_rec = nullptr;  // may be null (tracing off)
  FlightRecorder* b_rec = nullptr;
  AuditLog* log = nullptr;          // shared log (B-side + main thread)
  std::string name;                 // checker prefix, e.g. the engine name
};

class AppHarness {
 public:
  AppHarness(const AppWorkloadOptions& options, const AppHarnessWiring& wiring, uint64_t seed);

  // Schedules every session's issue timeline. Call once before running.
  void Start();

  // All sessions have issued everything they ever will and every issued
  // request is terminal. Safe from the driving thread between engine
  // windows (the workers are quiesced there).
  bool Done() const;

  // After the engine has drained: force still-pending requests to Aborted
  // (counted as forced_terminal — the "hung requests" signal), run the
  // auditor and per-connection integrity finals, and merge the A-side log.
  void Finish();

  // True when no request had to be forced at Finish (zero hung requests).
  bool CompletedCleanly() const;

  // First connection, for the digest's TCP counter mixing.
  const EndpointPair& primary() const { return conns_.front()->pair; }

  AppStats client_totals() const;
  AppStats server_totals() const;
  // client + server merged: the digest source.
  AppStats totals() const;
  uint64_t frames_delivered() const;

  // App counters plus one per-connection TCP snapshot ("conn0/a_to_b", ...).
  void PublishMetrics(MetricsRegistry* registry) const;

 private:
  struct Conn {
    EndpointPair pair;
    std::unique_ptr<FrameChannel> c2s;  // client -> server (requests/chunks)
    std::unique_ptr<FrameChannel> s2c;  // server -> client (responses/acks)
    std::unique_ptr<StreamIntegrityChecker> check_at_a;  // B->A stream oracle
    std::unique_ptr<StreamIntegrityChecker> check_at_b;  // A->B stream oracle
    std::unique_ptr<AppServer> server;
    std::unique_ptr<AppClientSession> client;
  };

  bool client_on_b() const {
    return opt_.kind == AppWorkloadKind::kRpc || opt_.kind == AppWorkloadKind::kIncast;
  }
  void OnReplicationChunkDone(uint64_t chunk, bool ok);

  AppWorkloadOptions opt_;
  AppHarnessWiring w_;
  AppIntegrityAuditor auditor_;
  AuditLog a_side_log_;
  std::vector<std::unique_ptr<Conn>> conns_;
  // Replication commit tracking; touched only on the client host's thread.
  std::map<uint64_t, uint32_t> chunk_acks_;
  bool finished_ = false;
};

}  // namespace juggler

#endif  // JUGGLER_SRC_SCENARIO_APP_TRAFFIC_H_
