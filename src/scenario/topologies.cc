#include "src/scenario/topologies.h"

#include <string>

#include "src/util/logging.h"

namespace juggler {
namespace {

// Host IPs: 10.T.0.H encodes (ToR, host index).
uint32_t HostIp(uint32_t tor, uint32_t index) {
  return (10u << 24) | (tor << 16) | (index + 1);
}

}  // namespace

NetFpgaTestbed BuildNetFpga(SimWorld* world, NetFpgaOptions options) {
  NetFpgaTestbed t;
  EventLoop* loop = &world->loop;

  options.sender.ip = HostIp(0, 0);
  options.sender.name = "sender";
  options.receiver.ip = HostIp(1, 0);
  options.receiver.name = "receiver";

  LinkConfig host_link;
  host_link.rate_bps = options.link_rate_bps;
  host_link.propagation_delay = options.base_delay;
  host_link.queue_limit_bytes = options.host_link_queue_bytes;

  // Build back-to-front. The reverse (ACK) path ends at the sender, which
  // does not exist yet — latch it.
  LatchSink* to_sender = t.fabric.AddLatch();
  Link* rev_link = t.fabric.AddLink(loop, "rev", host_link, to_sender);
  t.rev_link = rev_link;
  t.receiver = t.fabric.AddHost(world, options.receiver, rev_link);

  // Forward pipeline: fwd_link -> reorder -> (drop) -> (fault) -> receiver
  // NIC. The fault stage sits nearest the NIC so its corruptions and delay
  // spikes hit after the topology's own reordering, like a last-hop fault.
  PacketSink* into_receiver = t.receiver->wire_in();
  if (!options.faults.empty()) {
    t.fault = t.fabric.AddFault(loop, "fault", options.faults, options.seed * 6151 + 29,
                                into_receiver);
    into_receiver = t.fault;
  }
  if (options.drop_prob > 0.0) {
    t.fabric.drops.push_back(
        std::make_unique<DropStage>(options.drop_prob, options.seed * 7919 + 13, into_receiver));
    t.drop = t.fabric.drops.back().get();
    into_receiver = t.drop;
  }
  t.fabric.reorders.push_back(std::make_unique<ReorderStage>(
      loop, std::vector<TimeNs>{0, options.reorder_delay}, options.seed, into_receiver));
  t.reorder = t.fabric.reorders.back().get();

  Link* fwd_link = t.fabric.AddLink(loop, "fwd", host_link, t.reorder);
  t.fwd_link = fwd_link;
  t.sender = t.fabric.AddHost(world, options.sender, fwd_link);
  to_sender->set_target(t.sender->wire_in());
  return t;
}

ShardedNetFpgaTestbed BuildShardedNetFpga(ShardedEngine* engine, const CpuCostModel* costs,
                                          NetFpgaOptions options) {
  ShardedNetFpgaTestbed t;
  JUG_CHECK(options.base_delay > 0);  // it is the engine's lookahead

  t.sender_domain = engine->AddDomain("sender");
  t.receiver_domain = engine->AddDomain("receiver");
  EventLoop* sloop = &t.sender_domain->loop();
  EventLoop* rloop = &t.receiver_domain->loop();

  options.sender.ip = HostIp(0, 0);
  options.sender.name = "sender";
  options.receiver.ip = HostIp(1, 0);
  options.receiver.name = "receiver";

  RemoteEndpoint* fwd_ep =
      engine->Connect(t.sender_domain, t.receiver_domain, options.base_delay);
  RemoteEndpoint* rev_ep =
      engine->Connect(t.receiver_domain, t.sender_domain, options.base_delay);

  // Flight time lives in the crossing, not in a local timer.
  LinkConfig host_link;
  host_link.rate_bps = options.link_rate_bps;
  host_link.propagation_delay = 0;
  host_link.queue_limit_bytes = options.host_link_queue_bytes;

  // Receiver side and its ACK path back to the (not yet built) sender.
  Link* rev_link = t.fabric.AddLink(rloop, "rev", host_link, rev_ep);
  rev_link->set_remote(rev_ep);
  t.rev_link = rev_link;
  t.receiver =
      t.fabric.AddHost(rloop, &t.receiver_domain->factory(), costs, options.receiver, rev_link);
  fwd_ep->set_sink(t.receiver->wire_in());

  // Forward pipeline, all in the sender domain, same element order and seeds
  // as BuildNetFpga: fwd_link -> reorder -> (drop) -> (fault) -> crossing ->
  // receiver NIC. Whichever stage ends the chain delivers through the
  // remote endpoint.
  PacketSink* into_receiver = fwd_ep;
  if (!options.faults.empty()) {
    t.fault = t.fabric.AddFault(sloop, "fault", options.faults, options.seed * 6151 + 29,
                                into_receiver);
    t.fault->set_remote(fwd_ep);
    into_receiver = t.fault;
  }
  if (options.drop_prob > 0.0) {
    t.fabric.drops.push_back(
        std::make_unique<DropStage>(options.drop_prob, options.seed * 7919 + 13, into_receiver));
    t.drop = t.fabric.drops.back().get();
    if (into_receiver == static_cast<PacketSink*>(fwd_ep)) {
      t.drop->set_remote(fwd_ep);
    }
    into_receiver = t.drop;
  }
  t.fabric.reorders.push_back(std::make_unique<ReorderStage>(
      sloop, std::vector<TimeNs>{0, options.reorder_delay}, options.seed, into_receiver));
  t.reorder = t.fabric.reorders.back().get();
  if (into_receiver == static_cast<PacketSink*>(fwd_ep)) {
    t.reorder->set_remote(fwd_ep);
  }

  Link* fwd_link = t.fabric.AddLink(sloop, "fwd", host_link, t.reorder);
  t.fwd_link = fwd_link;
  t.sender =
      t.fabric.AddHost(sloop, &t.sender_domain->factory(), costs, options.sender, fwd_link);
  rev_ep->set_sink(t.sender->wire_in());
  return t;
}

ClosTestbed BuildClos(SimWorld* world, ClosOptions options) {
  ClosTestbed t;
  EventLoop* loop = &world->loop;

  t.tor_a = t.fabric.AddSwitch("tor_a", options.lb);
  t.tor_b = t.fabric.AddSwitch("tor_b", options.lb);
  std::vector<Switch*> spines;
  for (size_t s = 0; s < options.num_spines; ++s) {
    // Spines route deterministically by destination ToR; no balancing.
    spines.push_back(t.fabric.AddSwitch("spine_" + std::to_string(s), LbPolicy::kEcmp));
  }

  LinkConfig fabric_link;
  fabric_link.rate_bps = options.fabric_link_rate_bps;
  fabric_link.propagation_delay = options.link_prop;
  fabric_link.queue_limit_bytes = options.switch_buffer_bytes;
  fabric_link.red = options.red;
  fabric_link.red_seed = options.seed * 977 + 5;
  fabric_link.ecn = options.ecn;
  fabric_link.ecn_threshold_fill = options.ecn_threshold_fill;

  // ToR uplinks and spine downlinks.
  std::vector<Link*> spine_to_a;
  std::vector<Link*> spine_to_b;
  for (size_t s = 0; s < options.num_spines; ++s) {
    Link* up_a = t.fabric.AddLink(loop, "torA->spine" + std::to_string(s), fabric_link, spines[s]);
    Link* up_b = t.fabric.AddLink(loop, "torB->spine" + std::to_string(s), fabric_link, spines[s]);
    t.tor_a->AddUplink(up_a, up_a);
    t.tor_b->AddUplink(up_b, up_b);
    t.tor_a_uplinks.push_back(up_a);
    t.tor_b_uplinks.push_back(up_b);
    spine_to_a.push_back(
        t.fabric.AddLink(loop, "spine" + std::to_string(s) + "->torA", fabric_link, t.tor_a));
    spine_to_b.push_back(
        t.fabric.AddLink(loop, "spine" + std::to_string(s) + "->torB", fabric_link, t.tor_b));
  }

  // Host->ToR "links" model the NIC + qdisc: the queue backs up under TCP
  // backpressure, shedding only at a bound far beyond any congestion-window
  // footprint. ToR->host downlinks are switch ports with drop-tail buffers.
  LinkConfig uplink_cfg;
  uplink_cfg.rate_bps = options.host_link_rate_bps;
  uplink_cfg.propagation_delay = options.link_prop;
  uplink_cfg.queue_limit_bytes = options.host_uplink_queue_bytes;
  LinkConfig downlink_cfg = uplink_cfg;
  downlink_cfg.queue_limit_bytes = options.switch_buffer_bytes;
  downlink_cfg.red = options.red;
  downlink_cfg.red_seed = options.seed * 613 + 3;
  downlink_cfg.ecn = options.ecn;
  downlink_cfg.ecn_threshold_fill = options.ecn_threshold_fill;

  auto build_side = [&](Switch* tor, uint32_t tor_id, std::vector<Host*>* out,
                        const std::vector<Link*>& spine_down) {
    for (size_t h = 0; h < options.hosts_per_tor; ++h) {
      HostConfig hc = options.host_template;
      hc.ip = HostIp(tor_id, static_cast<uint32_t>(h));
      hc.name = std::string(tor_id == 0 ? "srv" : "cli") + std::to_string(h);
      Link* uplink = t.fabric.AddLink(
          loop, hc.name + "->" + tor->name(), uplink_cfg, tor);
      Host* host = t.fabric.AddHost(world, hc, uplink);
      Link* downlink = t.fabric.AddLink(
          loop, tor->name() + "->" + hc.name, downlink_cfg, host->wire_in());
      tor->AddRoute(hc.ip, downlink);
      for (size_t s = 0; s < spine_down.size(); ++s) {
        spines[s]->AddRoute(hc.ip, spine_down[s]);
      }
      out->push_back(host);
    }
  };
  build_side(t.tor_a, 0, &t.left_hosts, spine_to_a);
  build_side(t.tor_b, 1, &t.right_hosts, spine_to_b);
  return t;
}

ShardedClosTestbed BuildShardedClos(ShardedEngine* engine, const CpuCostModel* costs,
                                    ClosOptions options) {
  ShardedClosTestbed t;
  JUG_CHECK(options.link_prop > 0);  // it is the engine's lookahead

  ShardDomain* tor_a_dom = engine->AddDomain("tor_a");
  ShardDomain* tor_b_dom = engine->AddDomain("tor_b");
  t.domains.push_back(tor_a_dom);
  t.domains.push_back(tor_b_dom);
  t.tor_a = t.fabric.AddSwitch("tor_a", options.lb);
  t.tor_b = t.fabric.AddSwitch("tor_b", options.lb);
  std::vector<Switch*> spines;
  std::vector<ShardDomain*> spine_doms;
  for (size_t s = 0; s < options.num_spines; ++s) {
    spines.push_back(t.fabric.AddSwitch("spine_" + std::to_string(s), LbPolicy::kEcmp));
    spine_doms.push_back(engine->AddDomain("spine_" + std::to_string(s)));
    t.domains.push_back(spine_doms.back());
  }

  // Every link's far end is in another domain, so every link delivers
  // through a crossing carrying link_prop; local flight timers are unused.
  LinkConfig fabric_link;
  fabric_link.rate_bps = options.fabric_link_rate_bps;
  fabric_link.propagation_delay = 0;
  fabric_link.queue_limit_bytes = options.switch_buffer_bytes;
  fabric_link.red = options.red;
  fabric_link.red_seed = options.seed * 977 + 5;
  fabric_link.ecn = options.ecn;
  fabric_link.ecn_threshold_fill = options.ecn_threshold_fill;

  // A link owned by `src_dom` whose serialized packets cross into `dst_dom`
  // and land at `target` there.
  auto add_crossing_link = [&](ShardDomain* src_dom, ShardDomain* dst_dom, std::string name,
                               const LinkConfig& config, PacketSink* target) {
    RemoteEndpoint* ep = engine->Connect(src_dom, dst_dom, options.link_prop);
    ep->set_sink(target);
    Link* link = t.fabric.AddLink(&src_dom->loop(), std::move(name), config, ep);
    link->set_remote(ep);
    return link;
  };

  // ToR uplinks (in the ToR's domain) and spine downlinks (in the spine's).
  std::vector<Link*> spine_to_a;
  std::vector<Link*> spine_to_b;
  for (size_t s = 0; s < options.num_spines; ++s) {
    Link* up_a = add_crossing_link(tor_a_dom, spine_doms[s], "torA->spine" + std::to_string(s),
                                   fabric_link, spines[s]);
    Link* up_b = add_crossing_link(tor_b_dom, spine_doms[s], "torB->spine" + std::to_string(s),
                                   fabric_link, spines[s]);
    t.tor_a->AddUplink(up_a, up_a);
    t.tor_b->AddUplink(up_b, up_b);
    t.tor_a_uplinks.push_back(up_a);
    t.tor_b_uplinks.push_back(up_b);
    spine_to_a.push_back(add_crossing_link(spine_doms[s], tor_a_dom,
                                           "spine" + std::to_string(s) + "->torA", fabric_link,
                                           t.tor_a));
    spine_to_b.push_back(add_crossing_link(spine_doms[s], tor_b_dom,
                                           "spine" + std::to_string(s) + "->torB", fabric_link,
                                           t.tor_b));
  }

  LinkConfig uplink_cfg;
  uplink_cfg.rate_bps = options.host_link_rate_bps;
  uplink_cfg.propagation_delay = 0;
  uplink_cfg.queue_limit_bytes = options.host_uplink_queue_bytes;
  LinkConfig downlink_cfg = uplink_cfg;
  downlink_cfg.queue_limit_bytes = options.switch_buffer_bytes;
  downlink_cfg.red = options.red;
  downlink_cfg.red_seed = options.seed * 613 + 3;
  downlink_cfg.ecn = options.ecn;
  downlink_cfg.ecn_threshold_fill = options.ecn_threshold_fill;

  auto build_side = [&](Switch* tor, ShardDomain* tor_dom, uint32_t tor_id,
                        std::vector<Host*>* out, const std::vector<Link*>& spine_down) {
    for (size_t h = 0; h < options.hosts_per_tor; ++h) {
      HostConfig hc = options.host_template;
      hc.ip = HostIp(tor_id, static_cast<uint32_t>(h));
      hc.name = std::string(tor_id == 0 ? "srv" : "cli") + std::to_string(h);
      ShardDomain* host_dom = engine->AddDomain(hc.name);
      t.domains.push_back(host_dom);
      Link* uplink =
          add_crossing_link(host_dom, tor_dom, hc.name + "->" + tor->name(), uplink_cfg, tor);
      Host* host =
          t.fabric.AddHost(&host_dom->loop(), &host_dom->factory(), costs, hc, uplink);
      Link* downlink = add_crossing_link(tor_dom, host_dom, tor->name() + "->" + hc.name,
                                         downlink_cfg, host->wire_in());
      tor->AddRoute(hc.ip, downlink);
      for (size_t s = 0; s < spine_down.size(); ++s) {
        spines[s]->AddRoute(hc.ip, spine_down[s]);
      }
      out->push_back(host);
    }
  };
  build_side(t.tor_a, tor_a_dom, 0, &t.left_hosts, spine_to_a);
  build_side(t.tor_b, tor_b_dom, 1, &t.right_hosts, spine_to_b);
  return t;
}

DumbbellTestbed BuildDumbbell(SimWorld* world, DumbbellOptions options) {
  DumbbellTestbed t;
  EventLoop* loop = &world->loop;

  Switch* tor_l = t.fabric.AddSwitch("tor_l", LbPolicy::kEcmp);
  Switch* s2 = t.fabric.AddSwitch("s2", LbPolicy::kEcmp);
  Switch* tor_r = t.fabric.AddSwitch("tor_r", LbPolicy::kEcmp);

  // All inter-switch links carry two strict-priority queues (Figure 17).
  LinkConfig prio_link;
  prio_link.rate_bps = options.link_rate_bps;
  prio_link.propagation_delay = options.link_prop;
  prio_link.queue_limit_bytes = options.switch_buffer_bytes;
  prio_link.num_priorities = 2;
  prio_link.red = options.red;
  // Deep-buffer ports run gentle RED: enough early dropping to keep the
  // competing flows desynchronized and fair, but a low ceiling so a flow
  // mixing a few percent of its packets into the congested low-priority
  // queue is not bled dry by drop probability.
  prio_link.red_min_fill = 0.3;
  prio_link.red_max_fill = 0.95;
  prio_link.red_pmax = 0.03;
  prio_link.red_seed = options.seed * 389 + 7;

  Link* l_to_s2 = t.fabric.AddLink(loop, "torL->s2", prio_link, s2);
  Link* s2_to_r = t.fabric.AddLink(loop, "s2->torR", prio_link, tor_r);
  Link* r_to_s2 = t.fabric.AddLink(loop, "torR->s2", prio_link, s2);
  Link* s2_to_l = t.fabric.AddLink(loop, "s2->torL", prio_link, tor_l);

  // NIC/qdisc uplinks shed only at a deep explicit bound; switch downlinks
  // are drop-tail at the switch buffer size.
  LinkConfig uplink_cfg;
  uplink_cfg.rate_bps = options.link_rate_bps;
  uplink_cfg.propagation_delay = options.link_prop;
  uplink_cfg.queue_limit_bytes = options.host_uplink_queue_bytes;
  LinkConfig downlink_cfg = uplink_cfg;
  downlink_cfg.queue_limit_bytes = options.switch_buffer_bytes;
  downlink_cfg.red = options.red;
  downlink_cfg.red_seed = options.seed * 241 + 9;

  auto add_host = [&](Switch* tor, uint32_t tor_id, uint32_t index, const char* name) {
    HostConfig hc = options.host_template;
    hc.ip = HostIp(tor_id, index);
    hc.name = name;
    Link* uplink = t.fabric.AddLink(loop, hc.name + "->" + tor->name(), uplink_cfg, tor);
    Host* host = t.fabric.AddHost(world, hc, uplink);
    Link* downlink =
        t.fabric.AddLink(loop, tor->name() + "->" + hc.name, downlink_cfg, host->wire_in());
    tor->AddRoute(hc.ip, downlink);
    return host;
  };

  t.sender1 = add_host(tor_l, 0, 0, "sender1");
  t.sender2 = add_host(tor_l, 0, 1, "sender2");
  t.receiver1 = add_host(tor_r, 1, 0, "receiver1");
  t.receiver2 = add_host(tor_r, 1, 1, "receiver2");

  // Cross-ToR routing through s2, both directions.
  for (Host* h : {t.receiver1, t.receiver2}) {
    tor_l->AddRoute(h->ip(), l_to_s2);
    s2->AddRoute(h->ip(), s2_to_r);
  }
  for (Host* h : {t.sender1, t.sender2}) {
    tor_r->AddRoute(h->ip(), r_to_s2);
    s2->AddRoute(h->ip(), s2_to_l);
  }
  return t;
}

}  // namespace juggler
