// Convenience GroEngine factories for wiring hosts. "Vanilla" in the benches
// means StandardGro (the unmodified Linux receive path); "Juggler" means the
// paper's engine with the given timeouts and table size.

#ifndef JUGGLER_SRC_SCENARIO_GRO_FACTORIES_H_
#define JUGGLER_SRC_SCENARIO_GRO_FACTORIES_H_

#include <memory>

#include "src/core/juggler.h"
#include "src/gro/baseline_gro.h"
#include "src/gro/presto_gro.h"
#include "src/nic/nic_rx.h"

namespace juggler {

inline RxDriver::GroFactory MakeJugglerFactory(JugglerConfig config = {}) {
  return [config](const CpuCostModel* costs) -> std::unique_ptr<GroEngine> {
    return std::make_unique<Juggler>(costs, config);
  };
}

inline RxDriver::GroFactory MakeStandardGroFactory() {
  return [](const CpuCostModel* costs) -> std::unique_ptr<GroEngine> {
    return std::make_unique<StandardGro>(costs);
  };
}

inline RxDriver::GroFactory MakeNoGroFactory() {
  return [](const CpuCostModel* costs) -> std::unique_ptr<GroEngine> {
    return std::make_unique<NoGro>(costs);
  };
}

inline RxDriver::GroFactory MakeLinkedListGroFactory() {
  return [](const CpuCostModel* costs) -> std::unique_ptr<GroEngine> {
    return std::make_unique<LinkedListGro>(costs);
  };
}

inline RxDriver::GroFactory MakePrestoGroFactory(PrestoGroConfig config = {}) {
  return [config](const CpuCostModel* costs) -> std::unique_ptr<GroEngine> {
    return std::make_unique<PrestoGro>(costs, config);
  };
}

}  // namespace juggler

#endif  // JUGGLER_SRC_SCENARIO_GRO_FACTORIES_H_
