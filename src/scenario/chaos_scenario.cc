#include "src/scenario/chaos_scenario.h"

#include <algorithm>
#include <cstring>
#include <functional>
#include <optional>
#include <utility>

#include "src/core/juggler.h"
#include "src/fault/audit_log.h"
#include "src/fault/juggler_auditor.h"
#include "src/fault/link_flapper.h"
#include "src/fault/stream_integrity.h"
#include "src/scenario/app_traffic.h"
#include "src/scenario/gro_factories.h"
#include "src/scenario/topologies.h"
#include "src/util/logging.h"
#include "src/util/rng.h"

namespace juggler {
namespace {

// FNV-1a, folded over every counter that must reproduce bit-identically.
struct Digest {
  uint64_t h = 1469598103934665603ULL;
  void Mix(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ULL;
    }
  }
};

FaultProfile DropBurstProfile(Rng* rng) {
  FaultProfile p;
  p.burst_prob = 0.002 + rng->NextDouble() * 0.004;
  p.burst_len_min = 2;
  p.burst_len_max = 2 + static_cast<int>(rng->NextBounded(5));
  p.drop_prob = rng->NextDouble() * 0.002;
  return p;
}

FaultProfile DuplicateProfile(Rng* rng) {
  FaultProfile p;
  p.dup_prob = 0.02 + rng->NextDouble() * 0.06;
  return p;
}

FaultProfile CorruptProfile(Rng* rng) {
  FaultProfile p;
  p.corrupt_prob = 0.005 + rng->NextDouble() * 0.01;
  p.truncate_prob = rng->NextDouble() * 0.005;
  return p;
}

FaultProfile DelaySpikeProfile(Rng* rng) {
  FaultProfile p;
  p.delay_prob = 0.01 + rng->NextDouble() * 0.03;
  p.delay_min = Us(100);
  p.delay_max = Us(100) + rng->NextInRange(Us(200), Us(700));
  return p;
}

// The transfer's line-rate duration, the anchor for fault and flap windows —
// anchoring to the (generous) time budget would schedule every fault after
// the last byte already landed.
TimeNs NominalTransferTime(const ChaosOptions& opt) {
  return static_cast<TimeNs>(static_cast<int64_t>(opt.transfer_bytes) * 8 * 1'000'000'000LL /
                             opt.link_rate_bps);
}

// The engine name a (stack, audit) combination reports and digests under.
std::string EngineName(const ChaosOptions& opt, StackKind stack) {
  switch (stack) {
    case StackKind::kJuggler:
      return opt.audit ? "juggler+audit" : "juggler";
    case StackKind::kVanilla:
      return "standard-gro";
    case StackKind::kPresto:
      return "presto-gro";
  }
  return "?";
}

// The NetFPGA options a chaos run uses, shared by the legacy and sharded
// execution paths so both subject packets to the same fault schedule.
NetFpgaOptions ChaosTestbedOptions(const ChaosOptions& opt, StackKind stack, AuditLog* log,
                                   FlightRecorder* sender_rec, FlightRecorder* receiver_rec) {
  NetFpgaOptions nopt;
  nopt.link_rate_bps = opt.link_rate_bps;
  nopt.base_delay = opt.base_delay;
  nopt.reorder_delay = opt.reorder_delay;
  nopt.seed = opt.seed * 2654435761ULL + static_cast<uint64_t>(opt.family);
  nopt.sender.rx.int_coalesce = opt.int_coalesce;
  nopt.sender.rx.recorder = sender_rec;
  nopt.sender.rx.per_packet_dispatch = opt.per_packet_dispatch;
  nopt.sender.rx.driver = opt.rx_driver;
  nopt.sender.gro_factory = MakeStandardGroFactory();
  nopt.receiver.rx.int_coalesce = opt.int_coalesce;
  nopt.receiver.rx.recorder = receiver_rec;
  nopt.receiver.rx.per_packet_dispatch = opt.per_packet_dispatch;
  nopt.receiver.rx.driver = opt.rx_driver;
  // The hand-off wedge plant targets the receiver: that is where the data
  // stream (and so the integrity oracle) lives.
  nopt.receiver.rx.debug_corec_wedge_depth = opt.plant_corec_wedge_depth;

  JugglerConfig jcfg;
  jcfg.inseq_timeout = opt.inseq_timeout;
  jcfg.ofo_timeout = opt.ofo_timeout;
  jcfg.max_flows = opt.max_flows;
  jcfg.debug_flush_accounting_skew = opt.plant_flush_skew;
  switch (stack) {
    case StackKind::kJuggler:
      nopt.receiver.gro_factory =
          opt.audit ? MakeAuditedJugglerFactory(jcfg, log) : MakeJugglerFactory(jcfg);
      break;
    case StackKind::kVanilla:
      nopt.receiver.gro_factory = MakeStandardGroFactory();
      break;
    case StackKind::kPresto:
      nopt.receiver.gro_factory = MakePrestoGroFactory();
      break;
  }

  nopt.faults = opt.use_explicit_faults ? opt.fault_override : DeriveChaosFaults(opt);
  return nopt;
}

// Link flaps: blackhole windows on the forward path, short relative to
// TCP's max RTO (200ms) so the sender always recovers. `loop` must be the
// loop `fwd_link` runs on.
std::unique_ptr<LinkFlapper> MaybeStartFlapper(const ChaosOptions& opt, EventLoop* loop,
                                               Link* fwd_link) {
  std::vector<FlapWindow> windows =
      opt.use_explicit_flaps ? opt.flap_override : DeriveChaosFlaps(opt);
  if (windows.empty()) {
    return nullptr;
  }
  auto flapper = std::make_unique<LinkFlapper>(loop, fwd_link, std::move(windows));
  flapper->Start();
  return flapper;
}

// Overload wiring shared by both execution paths. The differences are the
// loop/factory (receiver domain vs scenario-wide) and which pools get capped
// (both domain pools vs the single ambient thread-local pool).
OverloadWiring MakeOverloadWiring(const ChaosOptions& opt, EventLoop* loop,
                                  PacketFactory* factory, Host* sender, Host* receiver,
                                  FaultStage* fault, std::vector<PacketPool*> pools,
                                  PacketPool* brownout_pool,
                                  std::function<uint64_t()> executed_events) {
  OverloadWiring w;
  w.loop = loop;
  w.inject = receiver->wire_in();
  w.factory = factory;
  w.receiver_nic = receiver->nic_rx();
  w.sender_tx = &sender->nic_tx()->stats();
  w.receiver_tx = &receiver->nic_tx()->stats();
  w.fault = fault != nullptr ? &fault->stats() : nullptr;
  w.pools = std::move(pools);
  w.brownout_pool = brownout_pool;
  w.target_ip = receiver->ip();
  w.pool_capacity = opt.overload.pool_capacity;
  w.ring_capacity = opt.overload.ring_capacity;
  w.gro_flow_cap = opt.max_flows;
  w.executed_events = std::move(executed_events);
  return w;
}

// Per-layer metrics snapshot, taken after the run completes (and, on the
// sharded path, after the workers have joined — the registry needs no
// atomics). Everything published here is invariant across worker counts.
template <typename Testbed>
void PublishChaosMetrics(const Testbed* t, const EndpointPair* pair, LinkFlapper* flapper,
                         StackKind stack, const AppHarness* app, MetricsRegistry* m) {
  PublishNicRxStats(t->sender->nic_rx()->stats(), "sender", m);
  PublishNicRxStats(t->receiver->nic_rx()->stats(), "receiver", m);
  if (const CorecRxStats* cs = t->sender->nic_rx()->corec_stats()) {
    PublishCorecRxStats(*cs, "sender", m);
  }
  if (const CorecRxStats* cs = t->receiver->nic_rx()->corec_stats()) {
    PublishCorecRxStats(*cs, "receiver", m);
  }
  PublishNicTxStats(t->sender->nic_tx()->stats(), "sender", m);
  PublishNicTxStats(t->receiver->nic_tx()->stats(), "receiver", m);
  PublishGroStats(t->receiver->nic_rx()->TotalGroStats(),
                  stack == StackKind::kJuggler
                      ? "juggler"
                      : (stack == StackKind::kPresto ? "presto" : "baseline"),
                  m);
  for (size_t q = 0; q < t->receiver->nic_rx()->num_queues(); ++q) {
    GroEngine* engine = t->receiver->nic_rx()->gro(q);
    Juggler* juggler = dynamic_cast<Juggler*>(engine);
    if (juggler == nullptr) {
      if (auto* auditor = dynamic_cast<JugglerAuditor*>(engine)) {
        juggler = auditor->inner();
      }
    }
    if (juggler != nullptr) {
      PublishJugglerStats(juggler->juggler_stats(), "receiver", m);
    }
  }
  if (t->fault != nullptr) {
    PublishFaultStats(t->fault->stats(), t->fault->name(), m);
  }
  if (t->reorder != nullptr) {
    PublishReorderStats(*t->reorder, "netfpga", m);
  }
  if (t->fwd_link != nullptr) {
    PublishLinkStats(t->fwd_link->stats(), t->fwd_link->name(), m);
  }
  if (t->rev_link != nullptr) {
    PublishLinkStats(t->rev_link->stats(), t->rev_link->name(), m);
  }
  PublishTcpStats(pair->a_to_b->sender_stats(), pair->b_to_a->receiver_stats(), "a_to_b", m);
  PublishTcpStats(pair->b_to_a->sender_stats(), pair->a_to_b->receiver_stats(), "b_to_a", m);
  if (flapper != nullptr) {
    m->AddCounter("net.flaps", "", flapper->flaps_started());
  }
  if (app != nullptr) {
    app->PublishMetrics(m);
  }
}

// Result assembly + digest, identical for both execution paths (the testbed
// types expose the same member names). Exactly one of `integrity` (raw bulk
// transfer) and `app` (application workload) is non-null; for app runs the
// completion oracle is "no request was left hanging" and the auditor's
// FinalCheck (inside AppHarness::Finish) stands in for the byte total.
template <typename Testbed>
void FinishRun(const ChaosOptions& opt, Testbed* t, EndpointPair* pair, LinkFlapper* flapper,
               StreamIntegrityChecker* integrity, AppHarness* app, OverloadDriver* ovl,
               OverloadAuditor* ovl_audit, AuditLog* log, StackKind stack, TimeNs finish_time,
               ChaosEngineResult* r) {
  r->bytes_delivered = pair->b_to_a->bytes_delivered();
  r->finish_time = finish_time;
  if (app != nullptr) {
    app->Finish();
    r->app = app->totals();
    r->completed = r->app.forced_terminal == 0;
    if (!r->completed) {
      log->Violation(r->engine, "requests hung at run end: " +
                                    std::to_string(r->app.forced_terminal) + " of " +
                                    std::to_string(r->app.issued) + " issued");
    }
  } else {
    r->completed = r->bytes_delivered == opt.transfer_bytes;
    integrity->FinalCheck();
    if (!r->completed) {
      log->Violation(r->engine, "transfer incomplete: " + std::to_string(r->bytes_delivered) +
                                    " of " + std::to_string(opt.transfer_bytes) + " bytes");
    }
    // Chunk-independent stream identity: equal across receive drivers for
    // the same (seed, options). NOT mixed into the run digest.
    r->stream_digest = integrity->stream_digest();
  }
  // Overload finalization before the log is read: FinalCheck's violations
  // (conservation, recovery, drained tables) must count and digest.
  if (ovl_audit != nullptr) {
    ovl_audit->FinalCheck(finish_time, r->bytes_delivered, r->completed, ovl->stats());
    r->overload = ovl->stats();
    r->overload_probes = ovl_audit->probes();
    r->overload_peak_pool = ovl_audit->peak_outstanding();
    r->overload_pool_exhausted = ovl_audit->pool_exhausted_delta();
    r->overload_ring_drops = t->receiver->nic_rx()->stats().ring_drops;
  }
  r->violations = log->violations();
  r->violation_messages = log->messages();
  if (t->fault != nullptr) {
    r->faults = t->fault->stats();
  }
  if (flapper != nullptr) {
    r->flaps = flapper->flaps_started();
  }
  r->checksum_drops = t->receiver->nic_rx()->stats().checksum_drops;
  if (stack == StackKind::kJuggler && opt.audit) {
    for (size_t q = 0; q < t->receiver->nic_rx()->num_queues(); ++q) {
      if (auto* auditor = dynamic_cast<JugglerAuditor*>(t->receiver->nic_rx()->gro(q))) {
        r->audits += auditor->audits();
      }
    }
  }

  Digest d;
  d.Mix(r->bytes_delivered);
  d.Mix(static_cast<uint64_t>(r->finish_time));
  d.Mix(r->violations);
  d.Mix(r->checksum_drops);
  d.Mix(r->faults.packets_in);
  d.Mix(r->faults.drops);
  d.Mix(r->faults.duplicates);
  d.Mix(r->faults.corruptions);
  d.Mix(r->faults.truncations);
  d.Mix(r->faults.delayed);
  d.Mix(r->flaps);
  const GroStats gro = t->receiver->nic_rx()->TotalGroStats();
  d.Mix(gro.packets_in);
  d.Mix(gro.segments_out);
  d.Mix(gro.ooo_packets);
  const TcpSenderStats& snd = pair->a_to_b->sender_stats();
  d.Mix(snd.fast_retransmits);
  d.Mix(snd.rtos);
  d.Mix(snd.retransmitted_bytes);
  // App counters join the digest only for app runs, so every historical
  // raw-transfer digest stays bit-identical.
  if (app != nullptr) {
    d.Mix(r->app.issued);
    d.Mix(r->app.ok);
    d.Mix(r->app.timeouts);
    d.Mix(r->app.aborted);
    d.Mix(r->app.attempts);
    d.Mix(r->app.retries);
    d.Mix(r->app.duplicate_responses);
    d.Mix(r->app.executions);
    d.Mix(r->app.duplicates_suppressed);
    d.Mix(r->app.forced_terminal);
    d.Mix(app->frames_delivered());
  }
  // Overload counters join the digest only for overload runs (same gating
  // pattern as the app counters): every pre-overload digest stays
  // bit-identical, and an overload digest must reproduce across shard
  // counts. Raw pool lifetime counters stay OUT — the legacy thread-local
  // pool accumulates them across in-process runs; only deltas digest.
  if (ovl_audit != nullptr) {
    d.Mix(r->overload.windows_started);
    d.Mix(r->overload.windows_ended);
    d.Mix(r->overload.bursts);
    d.Mix(r->overload.injected_packets);
    d.Mix(r->overload.inject_alloc_drops);
    d.Mix(r->overload.churn_tuples);
    d.Mix(r->overload.brownouts);
    d.Mix(r->overload.cap_restores);
    d.Mix(r->overload_probes);
    d.Mix(r->overload_peak_pool);
    d.Mix(r->overload_pool_exhausted);
    d.Mix(r->overload_ring_drops);
    d.Mix(r->faults.dup_pool_exhausted);
    d.Mix(t->receiver->stray_segments());
    d.Mix(t->sender->nic_tx()->stats().pool_exhausted_drops);
    d.Mix(t->receiver->nic_tx()->stats().pool_exhausted_drops);
  }
  r->digest = d.h;

  // Observability snapshot last, strictly after the digest: metrics must
  // never enter it.
  r->obs.metrics_enabled = opt.obs.metrics;
  r->obs.trace_enabled = opt.obs.trace;
  if (opt.obs.metrics) {
    PublishChaosMetrics(t, pair, flapper, stack, app, &r->obs.metrics);
    if (ovl != nullptr) {
      PublishOverloadStats(ovl->stats(), r->engine, &r->obs.metrics);
      ovl_audit->Publish(&r->obs.metrics);
    }
  }
}

// Sharded execution: same scenario, same fault schedule, run on the
// conservative-lookahead engine with up to opt.shards workers.
ChaosEngineResult RunOneEngineSharded(const ChaosOptions& opt, StackKind stack) {
  ChaosEngineResult r;
  r.engine = EngineName(opt, stack);

  // One flight recorder per shard domain, so workers write without any
  // synchronization: sender-domain components (NIC, fault stage) record as
  // shard 0, receiver-domain as shard 1. Declared before the engine so they
  // outlive everything holding a pointer.
  std::vector<std::unique_ptr<FlightRecorder>> recorders;
  if (opt.obs.trace) {
    recorders.push_back(std::make_unique<FlightRecorder>(0, opt.obs.trace_capacity));
    recorders.push_back(std::make_unique<FlightRecorder>(1, opt.obs.trace_capacity));
  }
  FlightRecorder* sender_rec = opt.obs.trace ? recorders[0].get() : nullptr;
  FlightRecorder* receiver_rec = opt.obs.trace ? recorders[1].get() : nullptr;

  AuditLog log;
  NetFpgaOptions nopt = ChaosTestbedOptions(opt, stack, &log, sender_rec, receiver_rec);

  // Declared before the testbed: the fabric's teardown releases packets
  // back into the engine's domain pools.
  ShardedEngine engine(opt.shards);
  engine.set_mailbox_capacity(opt.shard_mailbox_capacity);
  CpuCostModel costs;
  // Held in an optional so overload runs can tear the fabric down early and
  // measure leaked packets while the engine (and its pools) still live.
  std::optional<ShardedNetFpgaTestbed> t_opt(BuildShardedNetFpga(&engine, &costs, nopt));
  ShardedNetFpgaTestbed& t = *t_opt;
  if (t.fault != nullptr) {
    t.fault->set_recorder(sender_rec);  // the fault stage runs sender-side
  }

  std::unique_ptr<LinkFlapper> flapper =
      MaybeStartFlapper(opt, &t.sender_domain->loop(), t.fwd_link);

  std::unique_ptr<OverloadDriver> ovl;
  std::unique_ptr<OverloadAuditor> ovl_audit;
  if (opt.overload.enabled()) {
    CheckLinksBounded({t.fwd_link, t.rev_link}, r.engine, &log);
    ShardedEngine* eng = &engine;
    OverloadWiring w = MakeOverloadWiring(
        opt, &t.receiver_domain->loop(), &t.receiver_domain->factory(), t.sender, t.receiver,
        t.fault, {&t.sender_domain->pool(), &t.receiver_domain->pool()},
        &t.receiver_domain->pool(), [eng] {
          uint64_t total = 0;
          for (size_t i = 0; i < eng->domain_count(); ++i) {
            total += eng->domain(i)->executed_events();
          }
          return total;
        });
    ovl = std::make_unique<OverloadDriver>(opt.overload.windows, w);
    ovl->Start();
    ovl_audit =
        std::make_unique<OverloadAuditor>(r.engine + "/overload", w, opt.overload.windows, &log);
  }

  // Setup-phase sends (connection setup, the initial congestion window)
  // execute synchronously on this thread, before any worker runs. Stamp
  // their allocations with a domain pool for the duration: an unstamped
  // packet released later on a worker would bump that domain pool's release
  // ledger with no matching acquire, skewing the occupancy view the
  // overload capacity caps key off.
  struct PoolStamp {
    PacketPool* prev;
    explicit PoolStamp(PacketPool* pool) : prev(PacketPool::SwapThreadPool(pool)) {}
    ~PoolStamp() { PacketPool::SwapThreadPool(prev); }
  };

  std::unique_ptr<StreamIntegrityChecker> integrity;
  std::unique_ptr<AppHarness> app;
  EndpointPair pair;
  TimeNs now = 0;
  if (opt.app.enabled()) {
    AppHarnessWiring wiring;
    wiring.a = t.sender;
    wiring.b = t.receiver;
    wiring.a_loop = &t.sender_domain->loop();
    wiring.b_loop = &t.receiver_domain->loop();
    wiring.a_rec = sender_rec;
    wiring.b_rec = receiver_rec;
    wiring.log = &log;
    wiring.name = r.engine;
    {
      PoolStamp stamp(&t.sender_domain->pool());
      app = std::make_unique<AppHarness>(opt.app, wiring, opt.seed * 1000003ULL + 7);
      pair = app->primary();
      app->Start();
    }
    while (now < opt.time_limit && !app->Done()) {
      now += Ms(10);
      engine.Run(now);
      if (ovl_audit != nullptr) {
        ovl_audit->Probe(now, pair.b_to_a->bytes_delivered());
      }
    }
  } else {
    {
      PoolStamp stamp(&t.sender_domain->pool());
      pair = ConnectHosts(t.sender, t.receiver, 1000, 2000);
      integrity = std::make_unique<StreamIntegrityChecker>(r.engine + "/stream", &log);
      integrity->Attach(pair.b_to_a);
      integrity->set_expected_bytes(opt.transfer_bytes);
      pair.a_to_b->Send(opt.transfer_bytes);
    }
    while (now < opt.time_limit && pair.b_to_a->bytes_delivered() < opt.transfer_bytes) {
      now += Ms(10);
      engine.Run(now);
      if (ovl_audit != nullptr) {
        ovl_audit->Probe(now, pair.b_to_a->bytes_delivered());
      }
    }
  }
  // Let the tail drain (final ACKs, pending GRO flushes, late duplicates).
  // If the workload finished while overload windows were still open, keep
  // running until the last window closes and its flush timers fire — the
  // auditor's quiescence invariants only hold after pressure ends.
  now += Ms(5);
  if (ovl != nullptr) {
    now = std::max(now, ovl->pressure_end() + Ms(5));
  }
  engine.Run(now);

  FinishRun(opt, &t, &pair, flapper.get(), integrity.get(), app.get(), ovl.get(),
            ovl_audit.get(), &log, stack, now, &r);

  const ShardedEngineStats& es = engine.stats();
  r.shard_workers = es.workers;
  r.shard_windows = es.windows;
  r.shard_crossings = es.crossings;
  r.shard_barrier_wait_ns = es.barrier_wait_ns;
  r.shard_mailbox_hwm = es.mailbox_high_watermark;
  r.shard_mailbox_overflows = es.mailbox_overflow_drops;
  for (size_t i = 0; i < engine.domain_count(); ++i) {
    r.shard_names.push_back(engine.domain(i)->name());
    r.shard_events.push_back(engine.domain(i)->executed_events());
  }
  if (opt.obs.metrics) {
    PublishShardedEngineStats(&engine, &r.obs.metrics);
  }
  if (opt.obs.trace) {
    std::vector<const FlightRecorder*> recs;
    for (const auto& rec : recorders) {
      recs.push_back(rec.get());
      r.obs.trace_dropped += rec->dropped();
    }
    r.obs.events = MergeTraces(recs);
  }
  // The no-leak proof: destroy everything that can hold a packet (fabric
  // teardown returns link/ring/GRO-held storage; ReleaseResidualPackets
  // frees mailbox contents and timer-riding packets), then any outstanding
  // remainder across the domain pools is storage the stack lost track of.
  if (ovl_audit != nullptr) {
    ovl->Teardown();
    app.reset();
    integrity.reset();
    flapper.reset();
    pair = EndpointPair{};
    t_opt.reset();
    engine.ReleaseResidualPackets();
    r.overload_pool_leaked = static_cast<int64_t>(ovl_audit->MeasureLeakedPackets());
  }
  return r;
}

}  // namespace

// Satellite of the overload family: a run that applies overload pressure
// against links with no queue bound would hide every queue-growth pathology
// inside an infinitely elastic buffer — flag it as a setup bug.
void CheckLinksBounded(std::initializer_list<const Link*> links, const std::string& engine,
                       AuditLog* log) {
  for (const Link* link : links) {
    if (link != nullptr && link->queue_limit_bytes() <= 0) {
      log->Violation(engine + "/overload", "link " + link->name() +
                                               " has no queue bound while overload faults "
                                               "are active");
    }
  }
}

ChaosEngineResult RunChaosEngine(const ChaosOptions& opt, bool use_juggler) {
  return RunChaosEngineStack(opt, use_juggler ? StackKind::kJuggler : StackKind::kVanilla);
}

ChaosEngineResult RunChaosEngineStack(const ChaosOptions& opt, StackKind stack) {
  if (opt.shards >= 1) {
    return RunOneEngineSharded(opt, stack);
  }
  ChaosEngineResult r;
  r.engine = EngineName(opt, stack);

  // Legacy single-loop execution: one recorder (shard 0) covers everything.
  std::unique_ptr<FlightRecorder> recorder;
  if (opt.obs.trace) {
    recorder = std::make_unique<FlightRecorder>(0, opt.obs.trace_capacity);
  }

  SimWorld world;
  AuditLog log;
  NetFpgaOptions nopt =
      ChaosTestbedOptions(opt, stack, &log, recorder.get(), recorder.get());

  NetFpgaTestbed t = BuildNetFpga(&world, nopt);
  if (t.fault != nullptr) {
    t.fault->set_recorder(recorder.get());
  }

  std::unique_ptr<LinkFlapper> flapper =
      MaybeStartFlapper(opt, &world.loop, t.fwd_link);

  std::unique_ptr<OverloadDriver> ovl;
  std::unique_ptr<OverloadAuditor> ovl_audit;
  if (opt.overload.enabled()) {
    CheckLinksBounded({t.fwd_link, t.rev_link}, r.engine, &log);
    // One ambient thread-local pool serves the whole legacy world; the
    // driver's Teardown() must restore its capacity — it outlives the run.
    EventLoop* loop = &world.loop;
    OverloadWiring w = MakeOverloadWiring(
        opt, loop, &world.factory, t.sender, t.receiver, t.fault,
        {&PacketPool::ThreadLocal()}, &PacketPool::ThreadLocal(),
        [loop] { return loop->executed_events(); });
    ovl = std::make_unique<OverloadDriver>(opt.overload.windows, w);
    ovl->Start();
    ovl_audit =
        std::make_unique<OverloadAuditor>(r.engine + "/overload", w, opt.overload.windows, &log);
  }

  std::unique_ptr<StreamIntegrityChecker> integrity;
  std::unique_ptr<AppHarness> app;
  EndpointPair pair;
  if (opt.app.enabled()) {
    AppHarnessWiring wiring;
    wiring.a = t.sender;
    wiring.b = t.receiver;
    wiring.a_loop = &world.loop;
    wiring.b_loop = &world.loop;
    wiring.a_rec = recorder.get();
    wiring.b_rec = recorder.get();
    wiring.log = &log;
    wiring.name = r.engine;
    app = std::make_unique<AppHarness>(opt.app, wiring, opt.seed * 1000003ULL + 7);
    pair = app->primary();
    app->Start();
    while (world.loop.now() < opt.time_limit && !app->Done()) {
      world.loop.RunUntil(world.loop.now() + Ms(10));
      if (ovl_audit != nullptr) {
        ovl_audit->Probe(world.loop.now(), pair.b_to_a->bytes_delivered());
      }
    }
  } else {
    pair = ConnectHosts(t.sender, t.receiver, 1000, 2000);
    integrity = std::make_unique<StreamIntegrityChecker>(r.engine + "/stream", &log);
    integrity->Attach(pair.b_to_a);
    integrity->set_expected_bytes(opt.transfer_bytes);
    pair.a_to_b->Send(opt.transfer_bytes);
    while (world.loop.now() < opt.time_limit &&
           pair.b_to_a->bytes_delivered() < opt.transfer_bytes) {
      world.loop.RunUntil(world.loop.now() + Ms(10));
      if (ovl_audit != nullptr) {
        ovl_audit->Probe(world.loop.now(), pair.b_to_a->bytes_delivered());
      }
    }
  }
  // Let the tail drain (final ACKs, pending GRO flushes, late duplicates).
  // As on the sharded path: run past the last overload window before the
  // auditor asserts quiescence.
  TimeNs drain_until = world.loop.now() + Ms(5);
  if (ovl != nullptr) {
    drain_until = std::max(drain_until, ovl->pressure_end() + Ms(5));
  }
  world.loop.RunUntil(drain_until);

  FinishRun(opt, &t, &pair, flapper.get(), integrity.get(), app.get(), ovl.get(),
            ovl_audit.get(), &log, stack, world.loop.now(), &r);
  if (ovl != nullptr) {
    // Un-cap the long-lived thread-local pool; the leak measurement stays
    // sharded-only (the legacy world cannot be torn down before `t` dies).
    ovl->Teardown();
  }
  if (opt.obs.trace) {
    r.obs.trace_dropped = recorder->dropped();
    r.obs.events = MergeTraces({recorder.get()});
  }
  return r;
}

namespace {

const char* TraceFlushReasonName(int reason) {
  if (reason < 0 || reason >= static_cast<int>(FlushReason::kReasonCount)) {
    return "unknown";
  }
  return FlushReasonName(static_cast<FlushReason>(reason));
}

const char* TracePhaseName(int phase) {
  if (phase == kFlowPhaseNone) {
    return "none";
  }
  if (phase < 0 || phase >= kFlowPhaseCount) {
    return "unknown";
  }
  return FlowPhaseName(static_cast<FlowPhase>(phase));
}

}  // namespace

TraceNamer ChaosTraceNamer() {
  TraceNamer namer;
  namer.flush_reason = TraceFlushReasonName;
  namer.phase = TracePhaseName;
  return namer;
}

const char* FaultFamilyName(FaultFamily family) {
  switch (family) {
    case FaultFamily::kDropBurst:
      return "drop-burst";
    case FaultFamily::kDuplicate:
      return "duplicate";
    case FaultFamily::kCorrupt:
      return "corrupt";
    case FaultFamily::kDelaySpike:
      return "delay-spike";
    case FaultFamily::kLinkFlap:
      return "link-flap";
    case FaultFamily::kMixed:
      return "mixed";
  }
  return "?";
}

bool ParseFaultFamily(const char* name, FaultFamily* out) {
  static constexpr FaultFamily kParseable[] = {
      FaultFamily::kDropBurst, FaultFamily::kDuplicate, FaultFamily::kCorrupt,
      FaultFamily::kDelaySpike, FaultFamily::kLinkFlap, FaultFamily::kMixed,
  };
  for (FaultFamily f : kParseable) {
    if (std::strcmp(name, FaultFamilyName(f)) == 0) {
      *out = f;
      return true;
    }
  }
  return false;
}

FaultTimeline MakeChaosTimeline(FaultFamily family, uint64_t seed, TimeNs horizon,
                                int num_windows) {
  JUG_CHECK(num_windows >= 1 && horizon > 0);
  Rng rng(seed * 6364136223846793005ULL + 1442695040888963407ULL +
          static_cast<uint64_t>(family));
  FaultTimeline timeline;
  if (family == FaultFamily::kLinkFlap) {
    return timeline;  // link flaps are scheduled on the Link, not per packet
  }
  // Windows tile [horizon/32, horizon] with jittered boundaries and ~20%
  // gaps between them: connection establishment stays clean, faults flare
  // and subside across the bulk of the transfer (whose duration is
  // congestion-limited and engine-dependent, hence the wide span), and
  // everything after `horizon` is fault-free recovery time.
  const TimeNs lo = horizon / 32;
  const TimeNs span = (horizon - lo) / num_windows;
  for (int i = 0; i < num_windows; ++i) {
    const TimeNs wlo = lo + span * i;
    const TimeNs start = wlo + rng.NextBounded(static_cast<uint64_t>(span / 8));
    const TimeNs end = wlo + span - span / 8 - rng.NextBounded(static_cast<uint64_t>(span / 8));
    FaultFamily f = family;
    if (family == FaultFamily::kMixed) {
      f = static_cast<FaultFamily>(rng.NextBounded(4));  // packet families only
    }
    FaultProfile p;
    switch (f) {
      case FaultFamily::kDropBurst:
        p = DropBurstProfile(&rng);
        break;
      case FaultFamily::kDuplicate:
        p = DuplicateProfile(&rng);
        break;
      case FaultFamily::kCorrupt:
        p = CorruptProfile(&rng);
        break;
      case FaultFamily::kDelaySpike:
        p = DelaySpikeProfile(&rng);
        break;
      default:
        break;
    }
    timeline.Add(start, end, p);
  }
  return timeline;
}

FaultTimeline DeriveChaosFaults(const ChaosOptions& options) {
  if (options.family == FaultFamily::kLinkFlap) {
    return FaultTimeline();  // flaps are scheduled on the Link, not per packet
  }
  // 12x the line-rate duration: the transfer is congestion-limited (more so
  // for the baseline engine under reordering), so faults must stay active
  // across the real, much longer, delivery timeline.
  return MakeChaosTimeline(options.family, options.seed,
                           /*horizon=*/NominalTransferTime(options) * 12, options.num_windows);
}

std::vector<FlapWindow> DeriveChaosFlaps(const ChaosOptions& options) {
  if (options.family != FaultFamily::kLinkFlap && options.family != FaultFamily::kMixed) {
    return {};
  }
  // Blackhole windows on the forward path, short relative to TCP's max RTO
  // (200ms) so the sender always recovers.
  Rng flap_rng(options.seed * 40503 + 271);
  const bool blackhole = options.family == FaultFamily::kLinkFlap || flap_rng.NextBool(0.5);
  return LinkFlapper::MakeRandomWindows(
      &flap_rng, /*horizon=*/NominalTransferTime(options),
      /*count=*/options.family == FaultFamily::kLinkFlap ? 3 : 1,
      /*min_down=*/Ms(2), /*max_down=*/Ms(12), blackhole, options.link_rate_bps);
}

ChaosResult RunChaos(const ChaosOptions& options) {
  ChaosResult result;
  result.juggler = RunChaosEngine(options, /*use_juggler=*/true);
  result.baseline = RunChaosEngine(options, /*use_juggler=*/false);
  if (options.app.enabled()) {
    // App workloads put engine-dependent byte totals on the wire (retries
    // are timing dependent), so the raw byte comparison does not apply; the
    // per-engine auditor + hung-request oracles already ran.
    result.streams_match = true;
  } else {
    // The two engines must agree on the application byte stream. Totals
    // plus each run's own integrity check (contiguity, exactly-once) make
    // the comparison: identical totals of identical contiguous prefixes are
    // the identical stream. The stream digest folds the same facts plus any
    // delivery anomalies, so it must agree whenever the totals do.
    result.streams_match =
        result.juggler.bytes_delivered == result.baseline.bytes_delivered &&
        result.juggler.stream_digest == result.baseline.stream_digest;
  }
  result.ok = result.juggler.completed && result.baseline.completed &&
              result.juggler.violations == 0 && result.baseline.violations == 0 &&
              result.streams_match;
  return result;
}

const char* StackKindName(StackKind stack) {
  switch (stack) {
    case StackKind::kJuggler:
      return "juggler";
    case StackKind::kVanilla:
      return "vanilla";
    case StackKind::kPresto:
      return "presto";
  }
  return "?";
}

bool ParseStackKind(const char* name, StackKind* out) {
  static constexpr StackKind kParseable[] = {
      StackKind::kJuggler,
      StackKind::kVanilla,
      StackKind::kPresto,
  };
  for (StackKind s : kParseable) {
    if (std::strcmp(name, StackKindName(s)) == 0) {
      *out = s;
      return true;
    }
  }
  return false;
}

}  // namespace juggler

