// Experiment topologies from the paper's evaluation:
//
//   NetFpgaTestbed — Figure 11: two hosts through a switch that hashes each
//                    packet uniformly onto one of two delay lanes (precisely
//                    controlled reordering), with optional random drops.
//   ClosTestbed    — Figure 19: two ToRs, two spines, N hosts per ToR, ToR
//                    uplinks balanced per-flow / per-TSO / per-packet.
//   DumbbellTestbed— Figure 17: two senders and two receivers across a
//                    two-priority 40Gb/s interconnect, for the bandwidth
//                    guarantee experiments.
//
// A SimWorld owns the event loop, packet factory and CPU cost model; a
// Fabric owns every network component so benches keep a single object alive.

#ifndef JUGGLER_SRC_SCENARIO_TOPOLOGIES_H_
#define JUGGLER_SRC_SCENARIO_TOPOLOGIES_H_

#include <memory>
#include <vector>

#include "src/fault/fault_stage.h"
#include "src/net/link.h"
#include "src/net/stages.h"
#include "src/net/switch.h"
#include "src/scenario/host.h"
#include "src/sim/event_loop.h"
#include "src/sim/sharded_engine.h"

namespace juggler {

struct SimWorld {
  EventLoop loop;
  PacketFactory factory;
  CpuCostModel costs;
};

// Owns network components; hosts/switches/links stay valid for its lifetime.
struct Fabric {
  std::vector<std::unique_ptr<Switch>> switches;
  std::vector<std::unique_ptr<Link>> links;
  std::vector<std::unique_ptr<Host>> hosts;
  std::vector<std::unique_ptr<ReorderStage>> reorders;
  std::vector<std::unique_ptr<DropStage>> drops;
  std::vector<std::unique_ptr<FaultStage>> faults;
  std::vector<std::unique_ptr<LatchSink>> latches;

  LatchSink* AddLatch() {
    latches.push_back(std::make_unique<LatchSink>());
    return latches.back().get();
  }
  FaultStage* AddFault(EventLoop* loop, std::string name, FaultTimeline timeline, uint64_t seed,
                       PacketSink* sink) {
    faults.push_back(std::make_unique<FaultStage>(loop, std::move(name), std::move(timeline),
                                                  seed, sink));
    return faults.back().get();
  }
  Switch* AddSwitch(std::string name, LbPolicy uplink_policy) {
    switches.push_back(std::make_unique<Switch>(std::move(name), uplink_policy));
    return switches.back().get();
  }
  Link* AddLink(EventLoop* loop, std::string name, const LinkConfig& config, PacketSink* sink) {
    links.push_back(std::make_unique<Link>(loop, std::move(name), config, sink));
    return links.back().get();
  }
  Host* AddHost(SimWorld* world, const HostConfig& config, PacketSink* wire_out) {
    hosts.push_back(
        std::make_unique<Host>(&world->loop, &world->factory, &world->costs, config, wire_out));
    return hosts.back().get();
  }
  // Sharded variant: the host runs on a shard domain's loop and factory
  // instead of a scenario-wide SimWorld's.
  Host* AddHost(EventLoop* loop, PacketFactory* factory, const CpuCostModel* costs,
                const HostConfig& config, PacketSink* wire_out) {
    hosts.push_back(std::make_unique<Host>(loop, factory, costs, config, wire_out));
    return hosts.back().get();
  }
};

// ---------------------------------------------------------------- NetFPGA --

struct NetFpgaOptions {
  int64_t link_rate_bps = 10 * kGbps;
  TimeNs base_delay = Us(5);      // lane 0 delay (fabric latency)
  TimeNs reorder_delay = Us(500);  // lane 1 extra delay: "τ µs reordering"
  double drop_prob = 0.0;          // applied receiver-side, before the NIC
  // Drop-tail bound on both host links. Deep enough (milliseconds at line
  // rate) that normal runs never touch it — TCP's in-flight ceiling is
  // max_cwnd = 3MB — but finite, so overload storms hit a wall instead of
  // an infinitely elastic buffer. <= 0 restores the old unbounded queues
  // (chaos runs flag that as a setup bug when overload faults are active).
  int64_t host_link_queue_bytes = 16'000'000;
  // Fault-injection schedule applied receiver-side, nearest the NIC (after
  // the reorder and legacy drop stages). Empty = no fault stage.
  FaultTimeline faults;
  uint64_t seed = 1;
  HostConfig sender;
  HostConfig receiver;
};

struct NetFpgaTestbed {
  Fabric fabric;
  Host* sender = nullptr;
  Host* receiver = nullptr;
  DropStage* drop = nullptr;
  ReorderStage* reorder = nullptr;
  FaultStage* fault = nullptr;   // set when options.faults is non-empty
  Link* fwd_link = nullptr;      // sender -> receiver data path
  Link* rev_link = nullptr;      // receiver -> sender ACK path
};

NetFpgaTestbed BuildNetFpga(SimWorld* world, NetFpgaOptions options);

// The same testbed partitioned into two shard domains (sender side, receiver
// side) for the ShardedEngine. Element order, seeds and packet arrival times
// at either NIC match BuildNetFpga exactly; the wire's propagation delay is
// carried by the cross-domain crossing instead of a local flight timer, so
// the mid-pipeline stages run `base_delay` earlier on their local clocks.
// `engine` and `costs` must outlive the returned testbed (declare them
// first: the fabric's teardown releases packets into the engine's pools).
struct ShardedNetFpgaTestbed {
  Fabric fabric;
  ShardDomain* sender_domain = nullptr;
  ShardDomain* receiver_domain = nullptr;
  Host* sender = nullptr;
  Host* receiver = nullptr;
  DropStage* drop = nullptr;
  ReorderStage* reorder = nullptr;
  FaultStage* fault = nullptr;
  Link* fwd_link = nullptr;
  Link* rev_link = nullptr;
};

ShardedNetFpgaTestbed BuildShardedNetFpga(ShardedEngine* engine, const CpuCostModel* costs,
                                          NetFpgaOptions options);

// ------------------------------------------------------------------- Clos --

struct ClosOptions {
  size_t hosts_per_tor = 8;
  size_t num_spines = 2;
  int64_t host_link_rate_bps = 40 * kGbps;
  int64_t fabric_link_rate_bps = 40 * kGbps;
  TimeNs link_prop = Us(1);
  int64_t switch_buffer_bytes = 1'000'000;
  LbPolicy lb = LbPolicy::kPerPacket;
  // Host->ToR "NIC + qdisc" uplinks: backs up under TCP backpressure, and
  // only sheds when pushed far beyond any congestion-window footprint.
  int64_t host_uplink_queue_bytes = 16'000'000;
  // Early random drops on switch ports (the ECN/WRED role); keeps competing
  // flows desynchronized and fair.
  bool red = true;
  // CE-mark instead of growing deep queues (pair with TcpConfig::dctcp).
  bool ecn = false;
  double ecn_threshold_fill = 0.1;
  uint64_t seed = 1;
  // Per-host config template; ip/name are assigned by the builder.
  HostConfig host_template;
};

struct ClosTestbed {
  Fabric fabric;
  std::vector<Host*> left_hosts;   // under ToR A ("servers")
  std::vector<Host*> right_hosts;  // under ToR B ("clients")
  Switch* tor_a = nullptr;
  Switch* tor_b = nullptr;
  std::vector<Link*> tor_a_uplinks;
  std::vector<Link*> tor_b_uplinks;
};

ClosTestbed BuildClos(SimWorld* world, ClosOptions options);

// The Clos fabric partitioned one-domain-per-host plus one domain per
// switch (each switch is pinned with its outbound links, which it drives
// synchronously). Every link whose far end lives in another domain crosses
// through a mailbox with latency = link_prop, so the engine's lookahead is
// the fabric's propagation delay. `engine` and `costs` must outlive the
// returned testbed.
struct ShardedClosTestbed {
  Fabric fabric;
  std::vector<Host*> left_hosts;
  std::vector<Host*> right_hosts;
  Switch* tor_a = nullptr;
  Switch* tor_b = nullptr;
  std::vector<Link*> tor_a_uplinks;
  std::vector<Link*> tor_b_uplinks;
  // Domains: [tor_a, tor_b, spines..., left hosts..., right hosts...].
  std::vector<ShardDomain*> domains;
};

ShardedClosTestbed BuildShardedClos(ShardedEngine* engine, const CpuCostModel* costs,
                                    ClosOptions options);

// --------------------------------------------------------------- Dumbbell --

struct DumbbellOptions {
  int64_t link_rate_bps = 40 * kGbps;
  TimeNs link_prop = Us(1);
  // Deep-buffer interconnect (the spine-tier chassis switches of §2.2, e.g.
  // Arista 7500 class): the low-priority queue can hold ~400us at 40G, so
  // mixing priorities produces severe reordering.
  int64_t switch_buffer_bytes = 2'000'000;
  // Host->ToR "NIC + qdisc" uplinks (see ClosOptions::host_uplink_queue_bytes).
  int64_t host_uplink_queue_bytes = 16'000'000;
  bool red = true;
  uint64_t seed = 1;
  HostConfig host_template;
};

struct DumbbellTestbed {
  Fabric fabric;
  Host* sender1 = nullptr;    // the flow with the bandwidth guarantee
  Host* sender2 = nullptr;    // the antagonists
  Host* receiver1 = nullptr;
  Host* receiver2 = nullptr;
};

DumbbellTestbed BuildDumbbell(SimWorld* world, DumbbellOptions options);

}  // namespace juggler

#endif  // JUGGLER_SRC_SCENARIO_TOPOLOGIES_H_
