#include "src/scenario/host.h"

#include <utility>

#include "src/util/logging.h"

namespace juggler {

Host::Host(EventLoop* loop, PacketFactory* factory, const CpuCostModel* costs,
           const HostConfig& config, PacketSink* wire_out)
    : loop_(loop), factory_(factory), costs_(costs), config_(config) {
  JUG_CHECK(config_.gro_factory != nullptr);
  JUG_CHECK(config_.num_app_cores >= 1);
  for (size_t i = 0; i < config_.num_app_cores; ++i) {
    app_cores_.push_back(
        std::make_unique<CpuCore>(loop, config_.name + "/app" + std::to_string(i)));
  }
  pending_per_core_.resize(config_.num_app_cores, 0);
  nic_tx_ = std::make_unique<NicTx>(loop, factory, config_.tx, wire_out);
  nic_rx_ = MakeRxDriver(loop, costs, config_.rx, config_.gro_factory, this);
}

TcpEndpoint* Host::CreateEndpoint(const FiveTuple& local) {
  JUG_CHECK(local.src_ip == config_.ip);
  auto [endpoint, created] =
      endpoints_.FindOrEmplace(local, loop_, config_.tcp, local, nic_tx_.get());
  JUG_CHECK(created);
  // Receive-window backpressure reflects the backlog of the core this
  // flow's segments are processed on.
  const size_t core = AppCoreIndex(local.Reversed());
  endpoint->set_rwnd_pressure([this, core] { return pending_per_core_[core]; });
  return endpoint;
}

void Host::OnSegment(Segment segment) {
  // Charge app-core time: TCP processing + copy for data, ACK handling for
  // pure ACKs. The segment reaches the endpoint only after the core gets to
  // it — the coupling that turns segment-rate explosions into throughput
  // collapse (§5.1.1).
  const TimeNs cost = segment.payload_len == 0
                          ? costs_->ack_rx
                          : costs_->AppSegmentCost(segment.payload_len) + costs_->ack_tx;
  const size_t core = AppCoreIndex(segment.flow);
  pending_rx_bytes_ += segment.payload_len;
  pending_per_core_[core] += segment.payload_len;
  app_cores_[core]->Submit(cost, [this, core, segment = std::move(segment)] {
    pending_rx_bytes_ -= segment.payload_len;
    pending_per_core_[core] -= segment.payload_len;
    Demux(segment);
  });
}

void Host::OnSegmentBatch(Segment* segments, size_t count) {
  for (size_t i = 0; i < count; ++i) {
    Host::OnSegment(std::move(segments[i]));  // qualified: no per-segment vcall
  }
}

void Host::Demux(const Segment& segment) {
  // Inbound segments carry the sender's tuple; our endpoint owns the mirror.
  TcpEndpoint* endpoint = endpoints_.Find(segment.flow.Reversed());
  if (endpoint == nullptr) {
    ++stray_segments_;
    JUG_DEBUG("%s: stray segment for unknown flow", config_.name.c_str());
    return;
  }
  endpoint->OnSegment(segment);
}

EndpointPair ConnectHosts(Host* a, Host* b, uint16_t src_port, uint16_t dst_port) {
  FiveTuple forward;
  forward.src_ip = a->ip();
  forward.dst_ip = b->ip();
  forward.src_port = src_port;
  forward.dst_port = dst_port;
  EndpointPair pair;
  pair.a_to_b = a->CreateEndpoint(forward);
  pair.b_to_a = b->CreateEndpoint(forward.Reversed());
  return pair;
}

}  // namespace juggler
