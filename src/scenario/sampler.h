// Periodic sampling helper: runs a callback every `period` until the event
// queue drains or `stop_time` passes. Used to sample Juggler's active-list
// length (Figs. 15/16), queue occupancies, and CPU meters.

#ifndef JUGGLER_SRC_SCENARIO_SAMPLER_H_
#define JUGGLER_SRC_SCENARIO_SAMPLER_H_

#include <functional>
#include <utility>

#include "src/sim/event_loop.h"

namespace juggler {

class PeriodicTask {
 public:
  PeriodicTask(EventLoop* loop, TimeNs period, TimeNs stop_time, std::function<void()> fn)
      : loop_(loop), period_(period), stop_time_(stop_time), fn_(std::move(fn)) {
    Arm();
  }

 private:
  void Arm() {
    const TimeNs next = loop_->now() + period_;
    if (next > stop_time_) {
      return;
    }
    loop_->ScheduleAt(next, [this] {
      fn_();
      Arm();
    });
  }

  EventLoop* loop_;
  TimeNs period_;
  TimeNs stop_time_;
  std::function<void()> fn_;
};

}  // namespace juggler

#endif  // JUGGLER_SRC_SCENARIO_SAMPLER_H_
