#include "src/scenario/app_traffic.h"

#include <utility>

#include "src/util/logging.h"

namespace juggler {

AppHarness::AppHarness(const AppWorkloadOptions& options, const AppHarnessWiring& wiring,
                       uint64_t seed)
    : opt_(options), w_(wiring), auditor_(wiring.name + "/app") {
  JUG_CHECK(opt_.enabled());
  JUG_CHECK(opt_.sessions >= 1);
  JUG_CHECK(w_.a != nullptr && w_.b != nullptr);
  JUG_CHECK(w_.a_loop != nullptr && w_.b_loop != nullptr);
  JUG_CHECK(w_.log != nullptr);

  const bool on_b = client_on_b();
  for (uint32_t i = 0; i < opt_.sessions; ++i) {
    auto conn = std::make_unique<Conn>();
    conn->pair = ConnectHosts(w_.a, w_.b, static_cast<uint16_t>(1000 + i),
                              static_cast<uint16_t>(2000 + i));

    // The client->server channel rides whichever endpoint the client host
    // owns; for rpc/incast that is B's (so the big responses come back over
    // the faulted A->B path), for bulk/replication it is A's (so the chunks
    // themselves take the faulted path).
    TcpEndpoint* client_ep = on_b ? conn->pair.b_to_a : conn->pair.a_to_b;
    TcpEndpoint* server_ep = on_b ? conn->pair.a_to_b : conn->pair.b_to_a;
    conn->c2s = std::make_unique<FrameChannel>(client_ep);
    conn->s2c = std::make_unique<FrameChannel>(server_ep);

    const std::string prefix = w_.name + "/conn" + std::to_string(i);
    // Byte oracles, one per direction. The A-side checker runs on host A's
    // shard domain, so it writes the harness-private log.
    conn->check_at_a = std::make_unique<StreamIntegrityChecker>(prefix + "/at_a", &a_side_log_);
    conn->check_at_b = std::make_unique<StreamIntegrityChecker>(prefix + "/at_b", w_.log);

    // Deliveries at host A (endpoint a_to_b's receiver half) pop the channel
    // whose *sender* is b_to_a, and vice versa. set_on_deliver replaces, so
    // multiplex checker + channel by hand.
    FrameChannel* delivered_at_a = on_b ? conn->c2s.get() : conn->s2c.get();
    FrameChannel* delivered_at_b = on_b ? conn->s2c.get() : conn->c2s.get();
    StreamIntegrityChecker* at_a = conn->check_at_a.get();
    StreamIntegrityChecker* at_b = conn->check_at_b.get();
    conn->pair.a_to_b->set_segment_tap([at_a](const Segment& s) { at_a->OnSegment(s); });
    conn->pair.a_to_b->set_on_deliver([at_a, delivered_at_a](uint64_t total) {
      at_a->OnDeliverTotal(total);
      delivered_at_a->OnDeliverTotal(total);
    });
    conn->pair.b_to_a->set_segment_tap([at_b](const Segment& s) { at_b->OnSegment(s); });
    conn->pair.b_to_a->set_on_deliver([at_b, delivered_at_b](uint64_t total) {
      at_b->OnDeliverTotal(total);
      delivered_at_b->OnDeliverTotal(total);
    });

    EventLoop* client_loop = on_b ? w_.b_loop : w_.a_loop;
    EventLoop* server_loop = on_b ? w_.a_loop : w_.b_loop;
    FlightRecorder* client_rec = on_b ? w_.b_rec : w_.a_rec;
    FlightRecorder* server_rec = on_b ? w_.a_rec : w_.b_rec;

    conn->server = std::make_unique<AppServer>(opt_, conn->c2s.get(), conn->s2c.get(), &auditor_,
                                               server_rec, server_loop->now_ptr());
    const uint64_t session_seed = seed ^ (0x9E3779B97F4A7C15ULL * (i + 1));
    conn->client = std::make_unique<AppClientSession>(client_loop, opt_, i, conn->c2s.get(),
                                                      &auditor_, client_rec, session_seed);
    AppClientSession* client = conn->client.get();
    conn->s2c->set_on_frame([client](const FrameHeader& h) { client->OnResponseFrame(h); });
    if (opt_.kind == AppWorkloadKind::kReplication) {
      client->set_on_chunk_done(
          [this](uint64_t chunk, bool ok) { OnReplicationChunkDone(chunk, ok); });
    }
    conns_.push_back(std::move(conn));
  }
}

void AppHarness::Start() {
  for (auto& conn : conns_) {
    conn->client->Start();
  }
}

bool AppHarness::Done() const {
  for (const auto& conn : conns_) {
    if (!conn->client->Done()) {
      return false;
    }
  }
  return true;
}

void AppHarness::OnReplicationChunkDone(uint64_t chunk, bool ok) {
  // All replica clients live on the same host thread, so plain state is
  // safe. A failed chunk on any replica degrades the whole group: no
  // replica issues further chunks (already-issued requests still finish).
  if (finished_) {
    return;
  }
  if (!ok) {
    for (auto& conn : conns_) {
      conn->client->AbortRemaining();
    }
    return;
  }
  const uint32_t acks = ++chunk_acks_[chunk];
  if (acks == opt_.sessions) {
    for (auto& conn : conns_) {
      conn->client->ReleaseChunk(chunk);
    }
  }
}

void AppHarness::Finish() {
  JUG_CHECK(!finished_);
  finished_ = true;
  for (auto& conn : conns_) {
    conn->client->ForceFinish();
  }
  auditor_.FinalCheck(w_.log);
  for (auto& conn : conns_) {
    // Expected byte totals are workload-dependent (retries inflate them), so
    // the end-of-run byte oracle is coverage-shaped: whatever TCP delivered
    // must have been surfaced by GRO as one contiguous gap-free range.
    conn->check_at_a->set_expected_bytes(conn->pair.a_to_b->bytes_delivered());
    conn->check_at_a->FinalCheck();
    conn->check_at_b->set_expected_bytes(conn->pair.b_to_a->bytes_delivered());
    conn->check_at_b->FinalCheck();
  }
  w_.log->MergeFrom(a_side_log_);
}

bool AppHarness::CompletedCleanly() const {
  return client_totals().forced_terminal == 0;
}

AppStats AppHarness::client_totals() const {
  AppStats total;
  for (const auto& conn : conns_) {
    total.MergeFrom(conn->client->stats());
  }
  return total;
}

AppStats AppHarness::server_totals() const {
  AppStats total;
  for (const auto& conn : conns_) {
    total.MergeFrom(conn->server->stats());
  }
  return total;
}

AppStats AppHarness::totals() const {
  AppStats total = client_totals();
  total.MergeFrom(server_totals());
  return total;
}

uint64_t AppHarness::frames_delivered() const {
  uint64_t total = 0;
  for (const auto& conn : conns_) {
    total += conn->c2s->frames_delivered() + conn->s2c->frames_delivered();
  }
  return total;
}

void AppHarness::PublishMetrics(MetricsRegistry* registry) const {
  PublishAppStats(client_totals(), "client", registry);
  PublishAppStats(server_totals(), "server", registry);
  for (size_t i = 0; i < conns_.size(); ++i) {
    const std::string prefix = "conn" + std::to_string(i);
    conns_[i]->pair.a_to_b->PublishStats(prefix + "/a_to_b", registry);
    conns_[i]->pair.b_to_a->PublishStats(prefix + "/b_to_a", registry);
  }
}

}  // namespace juggler
