// An end host: NIC RX (with a pluggable GRO engine per queue), NIC TX, one
// application core, and a demultiplexer from merged segments to TCP
// endpoints. This is the receive path of Figure 2 assembled end to end:
//
//   wire -> NicRx ring -> NAPI poll -> GroEngine -> [RX core charge]
//        -> Host::OnSegment -> [app core charge] -> TcpEndpoint -> app
//
// Receive-window backpressure: bytes sitting in the app-core queue count
// against every local connection's advertised window, so a saturated
// application core throttles senders instead of growing unbounded queues.

#ifndef JUGGLER_SRC_SCENARIO_HOST_H_
#define JUGGLER_SRC_SCENARIO_HOST_H_

#include <memory>
#include <string>
#include <vector>

#include "src/cpu/cost_model.h"
#include "src/cpu/cpu_core.h"
#include "src/gro/flow_table.h"
#include "src/nic/nic_rx.h"
#include "src/nic/nic_tx.h"
#include "src/sim/event_loop.h"
#include "src/tcp/tcp_endpoint.h"

namespace juggler {

struct HostConfig {
  uint32_t ip = 0;
  NicRxConfig rx;
  NicTxConfig tx;
  TcpConfig tcp;
  RxDriver::GroFactory gro_factory;
  // Application cores. Flows are pinned to cores by hash (as a real host
  // pins one flow's RX queue + application thread to one core), so a single
  // flow is always bounded by one core — the paper's ~25Gb/s per-core
  // ceiling — while different flows can use different cores.
  size_t num_app_cores = 1;
  std::string name = "host";
};

class Host : public SegmentSink {
 public:
  // `wire_out` is where this host's NIC transmits (its uplink).
  Host(EventLoop* loop, PacketFactory* factory, const CpuCostModel* costs,
       const HostConfig& config, PacketSink* wire_out);

  // Where the network delivers packets destined to this host.
  PacketSink* wire_in() { return nic_rx_.get(); }

  // Creates a local endpoint transmitting with `local` (src must be this
  // host's IP) and registers it for demux of inbound segments.
  TcpEndpoint* CreateEndpoint(const FiveTuple& local);

  // SegmentSink: a merged segment from the NIC, still on the RX core clock.
  void OnSegment(Segment segment) override;
  // Batch form: one virtual hop per poll round; per-segment handling (app
  // core charge, backpressure accounting, demux order) is identical.
  void OnSegmentBatch(Segment* segments, size_t count) override;

  // The receive-path driver (RSS+NAPI or COREC, per config.rx.driver).
  RxDriver* nic_rx() { return nic_rx_.get(); }
  NicTx* nic_tx() { return nic_tx_.get(); }
  // The app core a given inbound flow is pinned to; no-arg form returns
  // core 0 (the only core in single-core configurations).
  CpuCore* app_core() { return app_cores_[0].get(); }
  CpuCore* app_core_for(const FiveTuple& inbound_flow) {
    return app_cores_[AppCoreIndex(inbound_flow)].get();
  }
  uint64_t pending_rx_bytes() const { return pending_rx_bytes_; }
  uint64_t stray_segments() const { return stray_segments_; }
  size_t endpoint_count() const { return endpoints_.size(); }
  // Table-owned bytes for the endpoint slab (bench/perf_scale's TCP
  // bytes-per-connection numerator). TcpEndpoint values live inline in the
  // slab records, so this covers the TCP blocks themselves; heap owned by
  // their members (SACK scoreboards, RTT FIFO) is lazy and zero for idle
  // connections.
  size_t endpoint_table_bytes() const { return endpoints_.resident_bytes(); }
  uint32_t ip() const { return config_.ip; }
  const std::string& name() const { return config_.name; }
  const TcpConfig& tcp_config() const { return config_.tcp; }

 private:
  void Demux(const Segment& segment);

  size_t AppCoreIndex(const FiveTuple& inbound_flow) const {
    return static_cast<size_t>(inbound_flow.Hash() >> 7) % app_cores_.size();
  }

  EventLoop* loop_;
  PacketFactory* factory_;
  const CpuCostModel* costs_;
  HostConfig config_;
  std::vector<std::unique_ptr<CpuCore>> app_cores_;
  std::vector<uint64_t> pending_per_core_;
  std::unique_ptr<NicTx> nic_tx_;
  std::unique_ptr<RxDriver> nic_rx_;
  // Keyed by the *local* endpoint tuple; inbound segments carry the peer's
  // tuple and are looked up reversed. FlowTable, not unordered_map of
  // unique_ptrs: endpoints live inline in pinned 64-record slabs (no
  // per-endpoint node + control-block allocations, no pointer chase on
  // demux), which is what keeps bytes-per-connection flat to the 1M-flow
  // bench point. Slab pinning gives the same address stability the
  // unique_ptr indirection used to provide.
  FlowTable<TcpEndpoint> endpoints_;
  uint64_t pending_rx_bytes_ = 0;
  uint64_t stray_segments_ = 0;
};

// Creates a connected endpoint pair: `a_to_b` on host `a` sending to `b`,
// and the mirror endpoint on `b`.
struct EndpointPair {
  TcpEndpoint* a_to_b;
  TcpEndpoint* b_to_a;
};
EndpointPair ConnectHosts(Host* a, Host* b, uint16_t src_port, uint16_t dst_port);

}  // namespace juggler

#endif  // JUGGLER_SRC_SCENARIO_HOST_H_
