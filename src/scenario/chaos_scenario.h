// Randomized fault soak: Juggler vs the baseline stack, differentially.
//
// A ChaosScenario composes a seeded random fault timeline from one of five
// fault families (drop bursts, duplication, corruption, delay spikes, link
// flaps — or a mix), runs the same bulk transfer through the NetFPGA
// topology twice — once with Juggler (wrapped in the invariant auditor) and
// once with standard GRO — and checks that
//
//   * both runs complete the transfer with zero invariant violations
//     (StreamIntegrityChecker + JugglerAuditor feed a shared AuditLog), and
//   * both engines hand TCP the identical application byte stream: same
//     final total, contiguous, exactly once. Whatever the wire did, the two
//     stacks must agree on the bytes.
//
// Every random decision descends from ChaosOptions::seed, so a failing
// (family, seed) pair is a complete reproduction recipe; the per-run digest
// makes "same seed => bit-identical run" checkable.

#ifndef JUGGLER_SRC_SCENARIO_CHAOS_SCENARIO_H_
#define JUGGLER_SRC_SCENARIO_CHAOS_SCENARIO_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "src/fault/audit_log.h"
#include "src/fault/fault_stage.h"
#include "src/fault/link_flapper.h"
#include "src/fault/overload.h"
#include "src/net/link.h"
#include "src/nic/rx_driver.h"
#include "src/obs/obs.h"
#include "src/util/time.h"
#include "src/workload/app_resilience.h"

namespace juggler {

enum class FaultFamily : int {
  kDropBurst = 0,
  kDuplicate,
  kCorrupt,
  kDelaySpike,
  kLinkFlap,
  kMixed,
};
constexpr int kNumFaultFamilies = 5;  // kMixed is a combination, not a family

const char* FaultFamilyName(FaultFamily family);

// Inverse of FaultFamilyName (accepts "mixed" too). False on unknown names.
bool ParseFaultFamily(const char* name, FaultFamily* out);

// Which receive stack a chaos run puts under test. kJuggler and kVanilla
// are the historical pair RunChaos compares differentially; kPresto (the
// linked-list Presto-paper GRO variant) is reachable through
// RunChaosEngineStack for stack-matrix soaks.
enum class StackKind : int {
  kJuggler = 0,
  kVanilla,
  kPresto,
};

const char* StackKindName(StackKind stack);
bool ParseStackKind(const char* name, StackKind* out);

struct ChaosOptions {
  uint64_t seed = 1;
  FaultFamily family = FaultFamily::kMixed;
  uint64_t transfer_bytes = 1'500'000;
  // Wall-clock budget per engine run. Fault windows occupy the first half;
  // the second half is clean so TCP can always recover and finish.
  TimeNs time_limit = Ms(800);
  TimeNs reorder_delay = Us(250);
  int num_windows = 3;
  // Wrap Juggler in the structural invariant auditor.
  bool audit = true;
  // Shard-parallel execution. 0 = the legacy single event loop (bit-for-bit
  // the historical behavior). N >= 1 runs the scenario on the ShardedEngine
  // with up to N worker threads; every N >= 1 produces byte-identical
  // digests (the worker count only changes which thread runs which domain),
  // but sharded digests may differ from shards=0 because mid-pipeline
  // stages observe clocks shifted by the wire's propagation delay.
  size_t shards = 0;
  // Per-(src,dst) shard-mailbox capacity; 0 = ShardMailbox default fuse.
  size_t shard_mailbox_capacity = 0;
  // Dispatch each NIC poll round to GRO packet-by-packet instead of as one
  // batch (NicRxConfig::per_packet_dispatch, both hosts). Digests must be
  // bit-identical either way — determinism regression tests flip this to
  // pin the batched fold path to per-packet semantics.
  bool per_packet_dispatch = false;
  // Receive-path architecture, both hosts (NicRxConfig::driver). The run
  // digest is per-driver (poll/flush timing legitimately differs), but the
  // TCP-level stream digest must be byte-identical across drivers for every
  // stack — the rx_conformance matrix pins that.
  RxDriverKind rx_driver = RxDriverKind::kRss;
  // COREC fault plant (forensics tests only): wedge the receiver's in-order
  // hand-off stage the first time >= this many completed claim slots park
  // behind an incomplete head window (NicRxConfig::debug_corec_wedge_depth).
  // 0 = off. Meaningless under rx_driver == kRss.
  size_t plant_corec_wedge_depth = 0;

  // ---- Forensics knobs. Every default reproduces the historical run
  // ---- bit-for-bit; the fuzzer samples these, and a repro bundle pins them.
  int64_t link_rate_bps = 10 * kGbps;
  TimeNs base_delay = Us(5);        // lane-0 fabric latency
  TimeNs int_coalesce = Us(125);    // NIC interrupt coalescing, both hosts
  TimeNs inseq_timeout = Us(52);    // Juggler Table-2 row 5
  TimeNs ofo_timeout = Us(300);     // Juggler Table-2 row 6
  size_t max_flows = 64;            // gro_table hard cap

  // When set, the explicit timelines replace the family-derived random
  // schedules entirely — the shrinker edits these without re-deriving
  // anything from the seed, which is what makes a minimized bundle stable.
  bool use_explicit_faults = false;
  FaultTimeline fault_override;
  bool use_explicit_flaps = false;
  std::vector<FlapWindow> flap_override;

  // Enables the planted conservation-law defect in the Juggler config (see
  // JugglerConfig::debug_flush_accounting_skew). Forensics tests only.
  bool plant_flush_skew = false;

  // Overload pressure riding the run: timed incast / churn / brown-out
  // windows plus hard capacity caps on every packet pool (and optionally the
  // receiver ring). Empty windows = overload machinery fully off — caps
  // unset, no driver, no auditor, digests bit-identical to before.
  struct OverloadOptions {
    std::vector<OverloadWindow> windows;
    // Hard cap applied to every packet pool for the run (0 = uncapped).
    size_t pool_capacity = 8192;
    // Receiver NIC ring cap for the run (0 = keep NicRxConfig's default).
    size_t ring_capacity = 0;
    bool enabled() const { return !windows.empty(); }
  };
  OverloadOptions overload;

  // Application workload riding the testbed. kNone (the default) keeps the
  // classic raw bulk transfer; any other kind replaces it with the
  // app_resilience traffic mix (AppHarness), whose auditor and hung-request
  // check become the run's completion oracle.
  AppWorkloadOptions app;

  // Observability: what this run collects (metrics snapshot, flight-recorder
  // trace). Off by default — the datapath then carries only the untaken
  // null-recorder branches.
  ObsConfig obs;
};

struct ChaosEngineResult {
  std::string engine;
  bool completed = false;
  uint64_t bytes_delivered = 0;
  TimeNs finish_time = 0;
  uint64_t violations = 0;
  std::vector<std::string> violation_messages;
  FaultStats faults;            // zeroes for the link-flap family
  uint64_t flaps = 0;           // link-flap family only
  uint64_t checksum_drops = 0;  // corrupted frames the NIC discarded
  uint64_t audits = 0;          // structural audits performed (Juggler only)
  // Application counters (client + server merged); all zero for raw runs.
  // For app runs these join the digest, and `completed` means "zero hung
  // requests" instead of "all bytes delivered".
  AppStats app;
  // Overload-run observables (all zero when ChaosOptions::overload is off;
  // when on, these join the digest and must be shard-count invariant).
  OverloadStats overload;            // driver counters
  uint64_t overload_probes = 0;      // auditor probes taken
  uint64_t overload_peak_pool = 0;   // peak pool occupancy delta observed
  uint64_t overload_pool_exhausted = 0;  // refused allocations (all pools)
  uint64_t overload_ring_drops = 0;      // receiver ring tail drops
  // Packets still outstanding after full teardown (sharded runs only;
  // -1 = not measured). Zero is the no-leak proof.
  int64_t overload_pool_leaked = -1;
  // FNV-1a over the run's observable counters: same seed + options must
  // reproduce this bit-identically.
  uint64_t digest = 0;
  // TCP-level stream digest (raw transfers only; 0 for app runs): an FNV-1a
  // fold over the position-derived content of every byte the receiver's TCP
  // handed the application, in order, plus any delivery anomalies the
  // integrity checker observed. Unlike `digest` it is independent of poll
  // boundaries, flush timing and chunking, so it must be byte-identical
  // across receive drivers (RSS vs COREC) for the same (seed, options) —
  // that equality is the rx-conformance oracle. Deliberately NOT mixed into
  // `digest` so historical digests stay bit-identical.
  uint64_t stream_digest = 0;
  // Sharded-engine execution detail (all zero/empty when shards == 0).
  // Deliberately outside the digest: windows and crossings are shard-count
  // invariant anyway, workers and barrier waits are not meant to be.
  size_t shard_workers = 0;
  uint64_t shard_windows = 0;
  uint64_t shard_crossings = 0;
  std::vector<std::string> shard_names;           // one per domain
  std::vector<uint64_t> shard_events;             // executed events per domain
  std::vector<uint64_t> shard_barrier_wait_ns;    // per worker
  size_t shard_mailbox_hwm = 0;                   // deepest per-pair buffer
  uint64_t shard_mailbox_overflows = 0;           // envelopes shed at the fuse
  // What ObsConfig asked for. Everything here is shard-count invariant
  // (worker-dependent stats are deliberately excluded) and stays OUT of the
  // digest — observability must never perturb reproducibility checks.
  ObsReport obs;
};

struct ChaosResult {
  ChaosEngineResult juggler;
  ChaosEngineResult baseline;
  // Both engines delivered the identical byte stream. Raw runs only: app
  // workloads legitimately put different byte totals on the wire per engine
  // (retry traffic is timing dependent), so for them this is vacuously true
  // and the per-engine auditor + hung-request oracles carry the comparison.
  bool streams_match = false;
  bool ok = false;  // completed + zero violations + streams_match
};

// Overload satellite check: links with no queue bound while overload faults
// are active would hide queue-growth pathologies inside an infinitely
// elastic buffer — each one is flagged as a setup bug on `log`.
void CheckLinksBounded(std::initializer_list<const Link*> links, const std::string& engine,
                       AuditLog* log);

// The seeded random fault schedule for `family`: `num_windows` windows
// placed in [horizon/8, horizon/2]. (The link-flap family has no packet
// timeline — RunChaos drives a LinkFlapper instead.)
FaultTimeline MakeChaosTimeline(FaultFamily family, uint64_t seed, TimeNs horizon,
                                int num_windows);

// The exact schedules a (family, seed) chaos run derives internally, in
// explicit form — what RunChaos applies when the override flags are off.
// The forensics shrinker materializes these once, then edits events freely
// without disturbing any other seed-derived randomness.
FaultTimeline DeriveChaosFaults(const ChaosOptions& options);
std::vector<FlapWindow> DeriveChaosFlaps(const ChaosOptions& options);

ChaosResult RunChaos(const ChaosOptions& options);

// One engine's half of RunChaos: the bulk transfer (or app workload) under
// the configured fault schedule, with invariant checking, returning the
// full per-run result (digest included). The forensics executor calls this
// directly so it can run the same spec at different shard counts and diff
// the digests.
ChaosEngineResult RunChaosEngine(const ChaosOptions& options, bool use_juggler);

// Same run against an arbitrary stack (RunChaosEngine is the kJuggler /
// kVanilla special case): the stack-matrix soaks drive
// {juggler, vanilla, presto} x workload through this.
ChaosEngineResult RunChaosEngineStack(const ChaosOptions& options, StackKind stack);

// The TraceNamer that decodes chaos-run trace events with the repo's own
// Table-2 flush-reason and §4 phase names (phase 4 decodes to "none").
TraceNamer ChaosTraceNamer();

}  // namespace juggler

#endif  // JUGGLER_SRC_SCENARIO_CHAOS_SCENARIO_H_
