// Randomized fault soak: Juggler vs the baseline stack, differentially.
//
// A ChaosScenario composes a seeded random fault timeline from one of five
// fault families (drop bursts, duplication, corruption, delay spikes, link
// flaps — or a mix), runs the same bulk transfer through the NetFPGA
// topology twice — once with Juggler (wrapped in the invariant auditor) and
// once with standard GRO — and checks that
//
//   * both runs complete the transfer with zero invariant violations
//     (StreamIntegrityChecker + JugglerAuditor feed a shared AuditLog), and
//   * both engines hand TCP the identical application byte stream: same
//     final total, contiguous, exactly once. Whatever the wire did, the two
//     stacks must agree on the bytes.
//
// Every random decision descends from ChaosOptions::seed, so a failing
// (family, seed) pair is a complete reproduction recipe; the per-run digest
// makes "same seed => bit-identical run" checkable.

#ifndef JUGGLER_SRC_SCENARIO_CHAOS_SCENARIO_H_
#define JUGGLER_SRC_SCENARIO_CHAOS_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/fault/fault_stage.h"
#include "src/util/time.h"

namespace juggler {

enum class FaultFamily : int {
  kDropBurst = 0,
  kDuplicate,
  kCorrupt,
  kDelaySpike,
  kLinkFlap,
  kMixed,
};
constexpr int kNumFaultFamilies = 5;  // kMixed is a combination, not a family

const char* FaultFamilyName(FaultFamily family);

struct ChaosOptions {
  uint64_t seed = 1;
  FaultFamily family = FaultFamily::kMixed;
  uint64_t transfer_bytes = 1'500'000;
  // Wall-clock budget per engine run. Fault windows occupy the first half;
  // the second half is clean so TCP can always recover and finish.
  TimeNs time_limit = Ms(800);
  TimeNs reorder_delay = Us(250);
  int num_windows = 3;
  // Wrap Juggler in the structural invariant auditor.
  bool audit = true;
  // Shard-parallel execution. 0 = the legacy single event loop (bit-for-bit
  // the historical behavior). N >= 1 runs the scenario on the ShardedEngine
  // with up to N worker threads; every N >= 1 produces byte-identical
  // digests (the worker count only changes which thread runs which domain),
  // but sharded digests may differ from shards=0 because mid-pipeline
  // stages observe clocks shifted by the wire's propagation delay.
  size_t shards = 0;
};

struct ChaosEngineResult {
  std::string engine;
  bool completed = false;
  uint64_t bytes_delivered = 0;
  TimeNs finish_time = 0;
  uint64_t violations = 0;
  std::vector<std::string> violation_messages;
  FaultStats faults;            // zeroes for the link-flap family
  uint64_t flaps = 0;           // link-flap family only
  uint64_t checksum_drops = 0;  // corrupted frames the NIC discarded
  uint64_t audits = 0;          // structural audits performed (Juggler only)
  // FNV-1a over the run's observable counters: same seed + options must
  // reproduce this bit-identically.
  uint64_t digest = 0;
  // Sharded-engine execution detail (all zero/empty when shards == 0).
  // Deliberately outside the digest: windows and crossings are shard-count
  // invariant anyway, workers and barrier waits are not meant to be.
  size_t shard_workers = 0;
  uint64_t shard_windows = 0;
  uint64_t shard_crossings = 0;
  std::vector<std::string> shard_names;           // one per domain
  std::vector<uint64_t> shard_events;             // executed events per domain
  std::vector<uint64_t> shard_barrier_wait_ns;    // per worker
};

struct ChaosResult {
  ChaosEngineResult juggler;
  ChaosEngineResult baseline;
  bool streams_match = false;  // both engines delivered the identical stream
  bool ok = false;             // completed + zero violations + streams_match
};

// The seeded random fault schedule for `family`: `num_windows` windows
// placed in [horizon/8, horizon/2]. (The link-flap family has no packet
// timeline — RunChaos drives a LinkFlapper instead.)
FaultTimeline MakeChaosTimeline(FaultFamily family, uint64_t seed, TimeNs horizon,
                                int num_windows);

ChaosResult RunChaos(const ChaosOptions& options);

}  // namespace juggler

#endif  // JUGGLER_SRC_SCENARIO_CHAOS_SCENARIO_H_
