#include "src/obs/metrics.h"

#include <algorithm>

#include "src/stats/table_printer.h"

namespace juggler {

void MetricsRegistry::AddCounter(const std::string& family, const std::string& label,
                                 uint64_t delta) {
  counters_[{family, label}] += delta;
}

void MetricsRegistry::SetGauge(const std::string& family, const std::string& label,
                               uint64_t value) {
  gauges_[{family, label}] = value;
}

void MetricsRegistry::MaxGauge(const std::string& family, const std::string& label,
                               uint64_t value) {
  uint64_t& slot = gauges_[{family, label}];
  slot = std::max(slot, value);
}

void MetricsRegistry::RecordHistogram(const std::string& family, const std::string& label,
                                      const Log2Histogram& h) {
  histograms_[{family, label}].MergeFrom(h);
}

uint64_t MetricsRegistry::CounterValue(const std::string& family, const std::string& label,
                                       uint64_t fallback) const {
  auto it = counters_.find({family, label});
  return it == counters_.end() ? fallback : it->second;
}

uint64_t MetricsRegistry::GaugeValue(const std::string& family, const std::string& label,
                                     uint64_t fallback) const {
  auto it = gauges_.find({family, label});
  return it == gauges_.end() ? fallback : it->second;
}

const Log2Histogram* MetricsRegistry::FindHistogram(const std::string& family,
                                                    const std::string& label) const {
  auto it = histograms_.find({family, label});
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  for (const auto& [key, v] : other.counters_) counters_[key] += v;
  for (const auto& [key, v] : other.gauges_) {
    uint64_t& slot = gauges_[key];
    slot = std::max(slot, v);
  }
  for (const auto& [key, h] : other.histograms_) histograms_[key].MergeFrom(h);
}

namespace {

std::string JoinKey(const MetricsRegistry::Key& key) {
  return key.second.empty() ? key.first : key.first + "/" + key.second;
}

}  // namespace

Json MetricsRegistry::ToJson() const {
  Json out = Json::Object();
  Json counters = Json::Object();
  for (const auto& [key, v] : counters_) counters.Set(JoinKey(key), Json::Uint(v));
  Json gauges = Json::Object();
  for (const auto& [key, v] : gauges_) gauges.Set(JoinKey(key), Json::Uint(v));
  Json histos = Json::Object();
  for (const auto& [key, h] : histograms_) {
    Json entry = Json::Object();
    entry.Set("count", Json::Uint(h.count));
    entry.Set("sum", Json::Uint(h.sum));
    int last = -1;
    for (int i = 0; i < Log2Histogram::kBuckets; ++i) {
      if (h.buckets[i] != 0) last = i;
    }
    Json buckets = Json::Array();
    for (int i = 0; i <= last; ++i) buckets.Push(Json::Uint(h.buckets[i]));
    entry.Set("buckets", std::move(buckets));
    histos.Set(JoinKey(key), std::move(entry));
  }
  out.Set("counters", std::move(counters));
  out.Set("gauges", std::move(gauges));
  out.Set("histograms", std::move(histos));
  return out;
}

std::string MetricsRegistry::ToTable() const {
  TablePrinter table({"metric", "kind", "value"});
  for (const auto& [key, v] : counters_) {
    table.AddRow({JoinKey(key), "counter", std::to_string(v)});
  }
  for (const auto& [key, v] : gauges_) {
    table.AddRow({JoinKey(key), "gauge", std::to_string(v)});
  }
  for (const auto& [key, h] : histograms_) {
    table.AddRow({JoinKey(key), "histogram",
                  "n=" + std::to_string(h.count) + " sum=" + std::to_string(h.sum)});
  }
  return table.ToString();
}

}  // namespace juggler
