#include "src/obs/flight_recorder.h"

#include <algorithm>
#include <cstdio>

namespace juggler {

const char* TraceKindName(TraceKind kind) {
  switch (kind) {
    case TraceKind::kGroFlush: return "gro_flush";
    case TraceKind::kPhase: return "phase";
    case TraceKind::kEviction: return "eviction";
    case TraceKind::kNicInterrupt: return "nic_interrupt";
    case TraceKind::kNicCoalesceArm: return "nic_coalesce_arm";
    case TraceKind::kNapiBudget: return "napi_budget";
    case TraceKind::kFault: return "fault";
    case TraceKind::kAppEvent: return "app";
    case TraceKind::kCorecClaim: return "corec_claim";
    case TraceKind::kCorecCommit: return "corec_commit";
    case TraceKind::kCorecHandoff: return "corec_handoff";
    case TraceKind::kCorecStall: return "corec_stall";
    case TraceKind::kKindCount: break;
  }
  return "unknown";
}

const char* AppEventCodeName(int code) {
  // Mirrors the kAppCode* constants in src/workload/app_resilience.h.
  switch (code) {
    case 0: return "issue";
    case 1: return "retry";
    case 2: return "ok";
    case 3: return "timeout";
    case 4: return "abort";
    case 5: return "dup_response";
    case 6: return "execute";
    case 7: return "dup_suppressed";
  }
  return "unknown";
}

const char* FaultCodeName(int code) {
  switch (code) {
    case kFaultCodeDrop: return "drop";
    case kFaultCodeBurstDrop: return "burst_drop";
    case kFaultCodeCorrupt: return "corrupt";
    case kFaultCodeTruncate: return "truncate";
    case kFaultCodeDuplicate: return "duplicate";
    case kFaultCodeDelay: return "delay";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(uint32_t shard, size_t capacity)
    : shard_(shard), ring_(capacity == 0 ? 1 : capacity) {}

std::vector<TraceEvent> FlightRecorder::Snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  const size_t start = (head_ + ring_.size() - size_) % ring_.size();
  for (size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::vector<TraceEvent> MergeTraces(const std::vector<const FlightRecorder*>& recorders) {
  std::vector<TraceEvent> all;
  for (const FlightRecorder* r : recorders) {
    if (r == nullptr) continue;
    std::vector<TraceEvent> part = r->Snapshot();
    all.insert(all.end(), part.begin(), part.end());
  }
  std::sort(all.begin(), all.end(), [](const TraceEvent& a, const TraceEvent& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.shard != b.shard) return a.shard < b.shard;
    return a.seq < b.seq;
  });
  return all;
}

namespace {

const char* NameOrNumber(const char* (*fn)(int), int v, char* buf, size_t buf_len) {
  if (fn != nullptr) return fn(v);
  std::snprintf(buf, buf_len, "%d", v);
  return buf;
}

Json EventArgs(const TraceEvent& e, const TraceNamer& namer) {
  char buf[32];
  Json args = Json::Object();
  args.Set("t_ns", Json::Int(e.time));
  switch (e.kind) {
    case TraceKind::kGroFlush:
      args.Set("reason",
               Json::Str(NameOrNumber(namer.flush_reason, (int)e.a, buf, sizeof(buf))));
      args.Set("payload_len", Json::Uint(e.b));
      args.Set("flow", Json::Uint(e.c));
      break;
    case TraceKind::kPhase:
      args.Set("from", Json::Str(NameOrNumber(namer.phase, (int)e.a, buf, sizeof(buf))));
      args.Set("to", Json::Str(NameOrNumber(namer.phase, (int)e.b, buf, sizeof(buf))));
      args.Set("flow", Json::Uint(e.c));
      break;
    case TraceKind::kEviction:
      args.Set("phase", Json::Str(NameOrNumber(namer.phase, (int)e.a, buf, sizeof(buf))));
      args.Set("held_bytes", Json::Uint(e.b));
      args.Set("flow", Json::Uint(e.c));
      break;
    case TraceKind::kNicInterrupt:
      args.Set("queue", Json::Uint(e.a));
      args.Set("ring_depth", Json::Uint(e.b));
      break;
    case TraceKind::kNicCoalesceArm:
      args.Set("queue", Json::Uint(e.a));
      args.Set("delay_ns", Json::Uint(e.b));
      break;
    case TraceKind::kNapiBudget:
      args.Set("queue", Json::Uint(e.a));
      args.Set("ring_left", Json::Uint(e.b));
      break;
    case TraceKind::kFault:
      args.Set("fault", Json::Str(FaultCodeName((int)e.a)));
      args.Set("seq", Json::Uint(e.b));
      args.Set("payload_len", Json::Uint(e.c));
      break;
    case TraceKind::kAppEvent:
      args.Set("event", Json::Str(AppEventCodeName((int)e.a)));
      args.Set("request", Json::Uint(e.b));
      args.Set("token", Json::Uint(e.c));
      break;
    case TraceKind::kCorecClaim:
    case TraceKind::kCorecCommit:
      args.Set("consumer", Json::Uint(e.a));
      args.Set("window", Json::Uint(e.b));
      args.Set("first_seq", Json::Uint(e.c));
      break;
    case TraceKind::kCorecHandoff:
      args.Set("run", Json::Uint(e.a));
      args.Set("slots_left", Json::Uint(e.b));
      break;
    case TraceKind::kCorecStall:
      args.Set("parked", Json::Uint(e.a));
      args.Set("slot_depth", Json::Uint(e.b));
      break;
    case TraceKind::kKindCount:
      break;
  }
  return args;
}

const char* EventCategory(TraceKind kind) {
  switch (kind) {
    case TraceKind::kGroFlush:
    case TraceKind::kPhase:
    case TraceKind::kEviction:
      return "gro";
    case TraceKind::kNicInterrupt:
    case TraceKind::kNicCoalesceArm:
    case TraceKind::kNapiBudget:
    case TraceKind::kCorecClaim:
    case TraceKind::kCorecCommit:
    case TraceKind::kCorecHandoff:
    case TraceKind::kCorecStall:
      return "nic";
    case TraceKind::kFault:
      return "fault";
    case TraceKind::kAppEvent:
      return "app";
    case TraceKind::kKindCount:
      break;
  }
  return "sim";
}

}  // namespace

Json TraceToJson(const std::vector<TraceEvent>& events, uint64_t dropped,
                 const TraceNamer& namer) {
  Json out = Json::Object();
  Json items = Json::Array();
  for (const TraceEvent& e : events) {
    Json ev = Json::Object();
    ev.Set("name", Json::Str(TraceKindName(e.kind)));
    ev.Set("cat", Json::Str(EventCategory(e.kind)));
    ev.Set("ph", Json::Str("i"));
    ev.Set("ts", Json::Int(e.time / 1000));  // chrome://tracing wants microseconds
    ev.Set("pid", Json::Int(1));
    ev.Set("tid", Json::Int(e.shard));
    ev.Set("s", Json::Str("t"));
    ev.Set("args", EventArgs(e, namer));
    items.Push(std::move(ev));
  }
  out.Set("traceEvents", std::move(items));
  out.Set("displayTimeUnit", Json::Str("ns"));
  Json other = Json::Object();
  other.Set("generator", Json::Str("juggler-flight-recorder"));
  other.Set("build", Json::Str(__VERSION__));
  other.Set("dropped_events", Json::Uint(dropped));
  out.Set("otherData", std::move(other));
  return out;
}

bool WriteTraceFile(const std::string& path, const Json& trace, std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  const std::string text = trace.Dump(1);
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  if (!ok && error != nullptr) *error = "short write to " + path;
  return ok;
}

}  // namespace juggler
