// Per-run observability switchboard: ObsConfig selects what a run collects,
// ObsReport carries what it collected. Both are plumbed through
// ChaosOptions/ChaosEngineResult so every runner (chaos, replay, fuzz) and
// test sees the same shapes.

#ifndef JUGGLER_SRC_OBS_OBS_H_
#define JUGGLER_SRC_OBS_OBS_H_

#include <cstdint>
#include <vector>

#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/util/json.h"

namespace juggler {

struct ObsConfig {
  bool metrics = false;  // snapshot per-layer stats into a MetricsRegistry
  bool trace = false;    // attach FlightRecorders to the datapath hooks
  size_t trace_capacity = 1u << 16;  // ring capacity per shard domain
};

struct ObsReport {
  bool metrics_enabled = false;
  bool trace_enabled = false;
  MetricsRegistry metrics;
  std::vector<TraceEvent> events;  // merged, sorted by (time, shard, seq)
  uint64_t trace_dropped = 0;

  Json MetricsJson() const { return metrics.ToJson(); }
  Json TraceJson(const TraceNamer& namer) const {
    return TraceToJson(events, trace_dropped, namer);
  }
};

}  // namespace juggler

#endif  // JUGGLER_SRC_OBS_OBS_H_
