// Per-layer metrics: counters, gauges and log2-bucket histograms keyed by
// (family, label). Zero overhead when disabled: nothing on the datapath
// touches a registry — each layer keeps its existing plain-uint64 stats
// struct and a free Publish*Stats() function snapshots those counters into
// the registry after the run (for the sharded engine, after the workers have
// joined, so the registry itself never needs atomics and stays TSan-clean).
//
// Determinism: the registry stores entries in ordered maps and serializes
// through src/util/json (ordered members), so ToJson().Dump() is
// byte-identical for identical metric values — the property the shard
// invariance tests assert across --shards={1,2,8}.

#ifndef JUGGLER_SRC_OBS_METRICS_H_
#define JUGGLER_SRC_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "src/util/json.h"

namespace juggler {

// Fixed-size power-of-two histogram: value v lands in bucket 0 when v == 0,
// otherwise bucket 1 + floor(log2(v)) (so bucket 1 is [1,1], bucket 2 is
// [2,3], bucket 3 is [4,7], ...). POD-cheap enough to embed always-on in a
// datapath stage (one branch, one increment, one add per sample).
struct Log2Histogram {
  static constexpr int kBuckets = 64;

  uint64_t buckets[kBuckets] = {};
  uint64_t count = 0;
  uint64_t sum = 0;

  void Record(uint64_t v) {
    int b = 0;
    if (v != 0) {
      b = 64 - __builtin_clzll(v);  // 1 + floor(log2 v)
      if (b >= kBuckets) b = kBuckets - 1;
    }
    ++buckets[b];
    ++count;
    sum += v;
  }

  void MergeFrom(const Log2Histogram& other) {
    for (int i = 0; i < kBuckets; ++i) buckets[i] += other.buckets[i];
    count += other.count;
    sum += other.sum;
  }
};

// Registry of labelled metrics. Families are dotted paths ("gro.flush"),
// labels distinguish instances within a family ("juggler/size_limit").
class MetricsRegistry {
 public:
  using Key = std::pair<std::string, std::string>;  // (family, label)

  // Counters accumulate across AddCounter calls (and MergeFrom).
  void AddCounter(const std::string& family, const std::string& label, uint64_t delta);
  // Gauges are last-write-wins; MaxGauge keeps the maximum seen instead.
  void SetGauge(const std::string& family, const std::string& label, uint64_t value);
  void MaxGauge(const std::string& family, const std::string& label, uint64_t value);
  void RecordHistogram(const std::string& family, const std::string& label,
                       const Log2Histogram& h);

  // Lookups for tests and report extraction; `fallback` when absent.
  uint64_t CounterValue(const std::string& family, const std::string& label,
                        uint64_t fallback = 0) const;
  uint64_t GaugeValue(const std::string& family, const std::string& label,
                      uint64_t fallback = 0) const;
  const Log2Histogram* FindHistogram(const std::string& family, const std::string& label) const;

  // Counters add, gauges take the max (they are high-watermarks here),
  // histograms merge bucketwise.
  void MergeFrom(const MetricsRegistry& other);

  bool empty() const { return counters_.empty() && gauges_.empty() && histograms_.empty(); }

  // Deterministic serialization: sorted by (family, label); histograms emit
  // count/sum plus only the trailing non-zero bucket prefix.
  Json ToJson() const;

  // Human dump through the stats table printer (family | label | value).
  std::string ToTable() const;

 private:
  std::map<Key, uint64_t> counters_;
  std::map<Key, uint64_t> gauges_;
  std::map<Key, Log2Histogram> histograms_;
};

}  // namespace juggler

#endif  // JUGGLER_SRC_OBS_METRICS_H_
