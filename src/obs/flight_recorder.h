// FlightRecorder: a fixed-capacity ring buffer of structured trace events,
// one recorder per shard domain so the datapath writes without any
// synchronization (the sharded engine's barrier discipline guarantees a
// domain's events are written by exactly one worker at a time; merging
// happens on the calling thread after the workers join).
//
// Events carry a (time, shard, seq) triple; MergeTraces sorts by it, which
// makes the exported Chrome-trace JSON byte-identical across --shards=N.
// Export reuses src/util/json and the resulting file loads directly into
// chrome://tracing or https://ui.perfetto.dev.

#ifndef JUGGLER_SRC_OBS_FLIGHT_RECORDER_H_
#define JUGGLER_SRC_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/json.h"
#include "src/util/time.h"

namespace juggler {

enum class TraceKind : uint8_t {
  kGroFlush = 0,       // a=FlushReason, b=payload bytes, c=flow hash
  kPhase = 1,          // a=from phase (4 = none/creation), b=to phase, c=flow hash
  kEviction = 2,       // a=phase at eviction, b=held bytes, c=flow hash
  kNicInterrupt = 3,   // a=queue index, b=ring depth at fire
  kNicCoalesceArm = 4, // a=queue index, b=coalesce delay ns
  kNapiBudget = 5,     // a=queue index, b=ring depth left over
  kFault = 6,          // a=fault code (see kFaultCodeName), b=packet seq, c=payload bytes
  kAppEvent = 7,       // a=app code (see AppCodeName), b=request id, c=idempotency token
  kCorecClaim = 8,     // a=consumer index, b=window size, c=first ring seq
  kCorecCommit = 9,    // a=consumer index, b=window size, c=first ring seq
  kCorecHandoff = 10,  // a=run length, b=claim slots left behind the run
  kCorecStall = 11,    // a=completed slots parked behind the hole, b=slot depth
  kKindCount = 12,
};

const char* TraceKindName(TraceKind kind);

// Codes for TraceKind::kFault `a` arguments (FaultStage outcomes).
inline constexpr int kFaultCodeDrop = 0;
inline constexpr int kFaultCodeBurstDrop = 1;
inline constexpr int kFaultCodeCorrupt = 2;
inline constexpr int kFaultCodeTruncate = 3;
inline constexpr int kFaultCodeDuplicate = 4;
inline constexpr int kFaultCodeDelay = 5;
const char* FaultCodeName(int code);

// Decoder for TraceKind::kAppEvent `a` arguments; the codes themselves live
// in src/workload/app_resilience.h (obs stays below the workload layer).
const char* AppEventCodeName(int code);

struct TraceEvent {
  TimeNs time = 0;
  uint32_t shard = 0;
  uint32_t seq = 0;  // per-recorder monotone tiebreaker
  TraceKind kind = TraceKind::kGroFlush;
  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t c = 0;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(uint32_t shard, size_t capacity = 1u << 16);

  void Record(TimeNs time, TraceKind kind, uint64_t a = 0, uint64_t b = 0, uint64_t c = 0) {
    TraceEvent& e = ring_[head_];
    e.time = time;
    e.shard = shard_;
    e.seq = seq_++;
    e.kind = kind;
    e.a = a;
    e.b = b;
    e.c = c;
    head_ = (head_ + 1) % ring_.size();
    if (size_ < ring_.size()) {
      ++size_;
    } else {
      ++dropped_;  // overwrote the oldest event
    }
  }

  uint32_t shard() const { return shard_; }
  uint64_t recorded() const { return seq_; }
  uint64_t dropped() const { return dropped_; }

  // Events currently held, oldest first.
  std::vector<TraceEvent> Snapshot() const;

 private:
  uint32_t shard_;
  std::vector<TraceEvent> ring_;
  size_t head_ = 0;
  size_t size_ = 0;
  uint32_t seq_ = 0;
  uint64_t dropped_ = 0;
};

// Decoder callbacks so the exporter can print domain-specific names without
// obs depending on gro/core. Null members fall back to numeric strings.
struct TraceNamer {
  const char* (*flush_reason)(int) = nullptr;
  const char* (*phase)(int) = nullptr;  // phase 4 should decode to "none"
};

// Merge per-shard snapshots into one stream sorted by (time, shard, seq).
std::vector<TraceEvent> MergeTraces(const std::vector<const FlightRecorder*>& recorders);

// Chrome-trace ("Trace Event Format") JSON. Instant events, pid 1, tid =
// shard, ts in integer microseconds with the exact nanosecond kept in
// args.t_ns. `dropped` reports ring overwrites in otherData.
Json TraceToJson(const std::vector<TraceEvent>& events, uint64_t dropped,
                 const TraceNamer& namer);

// Writes Dump(1) of TraceToJson to `path`; false on I/O failure.
bool WriteTraceFile(const std::string& path, const Json& trace, std::string* error);

}  // namespace juggler

#endif  // JUGGLER_SRC_OBS_FLIGHT_RECORDER_H_
