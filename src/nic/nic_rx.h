// Receive-side NIC model: RSS steering, per-queue rings, interrupt
// moderation, and the NAPI poll loop that feeds a GroEngine (Figure 2).
//
// Mechanisms that matter for the paper's results, all modelled explicitly:
//
//  * Interrupt moderation: interrupts are rate-limited to one per
//    `int_coalesce_ns` per queue. At line rate this batches ~100 packets per
//    interrupt (the "interrupt coalescing acts as an additional reordering
//    buffer" effect behind the τ−τ₀ thresholds of Figs. 13/14); at low load
//    the first packet fires immediately, so RPC latency is not inflated.
//  * NAPI polling: an interrupt starts a poll; each poll drains the ring
//    through the GRO engine and calls PollComplete(). If packets arrived
//    while the RX core was busy processing, polling continues without a new
//    interrupt — NAPI's polling mode under load.
//  * CPU charging: driver + GRO costs are charged to the queue's RX core;
//    merged segments reach the host only after that work completes, so RX
//    core saturation delays delivery (and ring overflow drops packets).
//  * GRO timers: the engine's high-resolution timer runs through the same
//    RX-core path as polls.

#ifndef JUGGLER_SRC_NIC_NIC_RX_H_
#define JUGGLER_SRC_NIC_NIC_RX_H_

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "src/nic/rx_driver.h"

namespace juggler {

class NicRx : public RxDriver {
 public:
  // NAPI stays in polling mode at most this long before completing the
  // session ("up to a brief interval of time (at most 2 milliseconds)").
  static constexpr TimeNs kMaxPollSession = Ms(2);

  NicRx(EventLoop* loop, const CpuCostModel* costs, const NicRxConfig& config,
        const GroFactory& gro_factory, SegmentSink* sink);
  ~NicRx() override;

  // Packet arriving from the wire.
  void Accept(PacketPtr packet) override;

  size_t num_queues() const override { return queues_.size(); }
  CpuCore* rx_core(size_t q) override { return &queues_[q]->core; }
  GroEngine* gro(size_t q) override { return queues_[q]->gro.get(); }
  const NicRxStats& stats() const override { return stats_; }

  // Sum of GRO stats across queues.
  GroStats TotalGroStats() const override;

  const NicRxConfig& config() const override { return config_; }

  // Overload-resilience knobs (memory brown-outs shrink these mid-run).
  // Shrinking the ring does not evict already-queued packets; it only tail-
  // drops new arrivals until polls drain the ring under the new cap.
  void set_ring_capacity(size_t capacity) override {
    config_.ring_capacity = capacity < 1 ? 1 : capacity;
  }

  // Propagate a flow-table pressure cap to every queue's GRO engine, through
  // the RX cores (same path as GRO timers) so evicted segments are delivered
  // and charged exactly like any other GRO work.
  void ApplyGroFlowCap(size_t max_flows) override;

 private:
  // Each queue is its engine's GroHost: deliveries buffer into the queue's
  // pending list and timer arming goes through the owning NicRx's loop.
  struct RxQueue : public GroHost {
    NicRx* nic;
    size_t index;
    std::deque<PacketPtr> ring;
    std::unique_ptr<GroEngine> gro;
    CpuCore core;
    std::vector<PacketPtr> batch;           // one poll round's ring harvest
    std::vector<Segment> pending_segments;  // collected during a GRO call
    TimeNs last_interrupt = -(1LL << 60);   // long ago: first packet fires now
    TimeNs session_start = 0;               // start of the current polling session
    bool interrupt_pending = false;
    bool polling = false;
    TimerId gro_timer = kInvalidTimerId;

    RxQueue(NicRx* n, EventLoop* loop, size_t i)
        : nic(n), index(i), core(loop, "rx_core_" + std::to_string(i)) {}

    void GroDeliver(Segment segment) override {
      pending_segments.push_back(std::move(segment));
    }
    void GroArmTimer(TimeNs when) override;
  };

  void ScheduleInterrupt(RxQueue* q);
  void FireInterrupt(RxQueue* q);
  void StartPoll(RxQueue* q, bool session_entry);
  void DoPoll(RxQueue* q, bool session_entry);
  void EndSession(RxQueue* q);
  void OnGroTimer(RxQueue* q);
  void DeliverPending(RxQueue* q);

  EventLoop* loop_;
  const CpuCostModel* costs_;
  NicRxConfig config_;
  SegmentSink* sink_;
  std::vector<std::unique_ptr<RxQueue>> queues_;
  NicRxStats stats_;
};

}  // namespace juggler

#endif  // JUGGLER_SRC_NIC_NIC_RX_H_
