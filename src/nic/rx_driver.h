// Receive-path driver seam: the abstract surface every NIC RX architecture
// implements, plus the shared configuration and stats types.
//
// Two drivers live behind this seam today:
//
//  * NicRx (rx_driver = kRss): RSS multi-queue rings + interrupt moderation +
//    the NAPI poll loop (nic_rx.h) — the paper's testbed model.
//  * CorecRx (rx_driver = kCorec): a COREC-style concurrent non-blocking
//    single-queue driver (corec_rx.h) — one shared descriptor ring, per-
//    consumer claim/commit windows that may complete out of order, and an
//    in-order hand-off stage that feeds the same batched GRO path.
//
// The seam exists so the chaos/fuzz/overload matrices can run every stack
// against every receive architecture and assert the TCP-level stream is
// byte-identical — the driver axis is a regression oracle, not a demo.

#ifndef JUGGLER_SRC_NIC_RX_DRIVER_H_
#define JUGGLER_SRC_NIC_RX_DRIVER_H_

#include <functional>
#include <memory>
#include <string>

#include "src/cpu/cost_model.h"
#include "src/cpu/cpu_core.h"
#include "src/gro/gro_engine.h"
#include "src/net/packet_sink.h"
#include "src/sim/event_loop.h"

namespace juggler {

// Receives merged segments from the NIC (still on the RX core clock); the
// host implementation forwards them to the app core and TCP.
class SegmentSink {
 public:
  virtual ~SegmentSink() = default;
  virtual void OnSegment(Segment segment) = 0;

  // Every segment one RX-core work item made visible, in delivery order.
  // Equivalent to OnSegment() on each in turn; hosts override to pay one
  // virtual hop per poll round instead of one per segment.
  virtual void OnSegmentBatch(Segment* segments, size_t count) {
    for (size_t i = 0; i < count; ++i) {
      OnSegment(std::move(segments[i]));
    }
  }
};

// Which receive-path architecture a host instantiates.
enum class RxDriverKind {
  kRss = 0,    // RSS multi-queue + NAPI (NicRx)
  kCorec = 1,  // concurrent single-queue claim/commit driver (CorecRx)
};

const char* RxDriverKindName(RxDriverKind kind);
// Returns true and sets *out on "rss" / "corec"; false otherwise.
bool ParseRxDriverKind(const std::string& name, RxDriverKind* out);

struct NicRxConfig {
  // Driver architecture; every other knob below applies to both drivers
  // unless noted.
  RxDriverKind driver = RxDriverKind::kRss;
  size_t num_queues = 1;  // RSS only; COREC always has one shared ring
  // Minimum spacing between interrupts per queue (τ₀; 125µs in the paper's
  // testbed, §5.2.1).
  TimeNs int_coalesce = Us(125);
  size_t ring_capacity = 4096;
  // NAPI budget: packets per poll round. The engine's PollComplete (GRO
  // flush / timeout checks) runs at the end of every round, as the kernel's
  // polling loop does.
  size_t napi_budget = 64;
  // >= 0 forces all packets to one queue (the paper aims all flows at a
  // single RX queue in the CPU experiments); -1 uses RSS hashing. RSS only.
  int force_queue = -1;
  // Hand each poll round to the GRO engine packet-by-packet (Receive) instead
  // of as one batch (ReceiveBatch). The two must be observably identical —
  // same segments, costs, and stats — so this exists only as the reference
  // arm of determinism regression tests; leave it off everywhere else.
  bool per_packet_dispatch = false;
  // COREC: number of concurrent consumer cores claiming descriptor windows
  // off the shared ring.
  size_t corec_consumers = 4;
  // COREC: maximum descriptors one consumer claims per window. 32 keeps the
  // per-window bookkeeping amortized near RSS+NAPI's per-poll overhead (the
  // perf_core corec gate) while staying small enough that mixed-size windows
  // — and therefore genuine out-of-order commits — still occur under bursts.
  size_t corec_claim_window = 32;
  // COREC fault plant (tests/fuzzer only): when > 0, the in-order hand-off
  // stage wedges permanently the first time it observes `depth` or more
  // completed slots parked behind an incomplete head window — claimed
  // packets are never handed to GRO again, so the transfer stalls and the
  // integrity auditors fire. 0 disables the plant.
  size_t debug_corec_wedge_depth = 0;
  // Optional flight recorder handed to the GRO engines and the interrupt
  // path; null leaves tracing off.
  FlightRecorder* recorder = nullptr;
};

struct NicRxStats {
  uint64_t packets_in = 0;
  uint64_t ring_drops = 0;
  uint64_t checksum_drops = 0;  // corrupted frames discarded at validation
  uint64_t interrupts = 0;
  uint64_t polls = 0;
  uint64_t coalesce_arms = 0;           // interrupt armed behind the τ₀ spacing
  uint64_t napi_budget_exhausted = 0;   // poll rounds that hit napi_budget
  uint64_t ring_high_watermark = 0;     // deepest any queue's ring ever got
};

// COREC-specific counters (claim/commit windows and the in-order hand-off).
struct CorecRxStats {
  uint64_t claims = 0;            // descriptor windows claimed by consumers
  uint64_t claimed_packets = 0;   // descriptors moved ring -> claim slots
  uint64_t commits = 0;           // windows committed (marked complete)
  uint64_t ooo_commits = 0;       // commits while an earlier window was open
  uint64_t handoff_runs = 0;      // contiguous completed runs handed to GRO
  uint64_t handoff_stalls = 0;    // hand-off blocked: completed slots behind
                                  // an incomplete head window
  uint64_t ooo_depth_max = 0;     // max completed slots parked behind a hole
  uint64_t claim_occupancy_hwm = 0;  // deepest the claim-slot window ever got
  uint64_t wedged = 0;            // 1 if the debug wedge plant fired
};

// Abstract receive-path driver. Owns the RX cores and the GRO engine(s),
// accepts packets from the wire, and delivers merged segments to `sink`
// after charging driver + GRO costs to an RX core.
class RxDriver : public PacketSink {
 public:
  using GroFactory = std::function<std::unique_ptr<GroEngine>(const CpuCostModel*)>;

  ~RxDriver() override = default;

  virtual size_t num_queues() const = 0;
  virtual CpuCore* rx_core(size_t q) = 0;
  virtual GroEngine* gro(size_t q) = 0;
  virtual const NicRxStats& stats() const = 0;
  // Sum of GRO stats across queues.
  virtual GroStats TotalGroStats() const = 0;
  virtual const NicRxConfig& config() const = 0;

  // Overload-resilience knobs (memory brown-outs shrink these mid-run).
  // Shrinking the ring does not evict already-queued packets; it only tail-
  // drops new arrivals until the driver drains under the new cap.
  virtual void set_ring_capacity(size_t capacity) = 0;

  // Propagate a flow-table pressure cap to every GRO engine, through the RX
  // cores (same path as GRO timers) so evicted segments are delivered and
  // charged exactly like any other GRO work.
  virtual void ApplyGroFlowCap(size_t max_flows) = 0;

  // Non-null only for the COREC driver.
  virtual const CorecRxStats* corec_stats() const { return nullptr; }
};

// Instantiate the driver named by `config.driver`.
std::unique_ptr<RxDriver> MakeRxDriver(EventLoop* loop, const CpuCostModel* costs,
                                       const NicRxConfig& config,
                                       const RxDriver::GroFactory& gro_factory,
                                       SegmentSink* sink);

// Snapshot a NicRxStats into `registry` under `label` (e.g. "receiver").
void PublishNicRxStats(const NicRxStats& stats, const std::string& label,
                       MetricsRegistry* registry);

// Snapshot the COREC claim/commit/hand-off counters. Like every Publish*,
// these feed the metrics registry only — never the run digest.
void PublishCorecRxStats(const CorecRxStats& stats, const std::string& label,
                         MetricsRegistry* registry);

}  // namespace juggler

#endif  // JUGGLER_SRC_NIC_RX_DRIVER_H_
