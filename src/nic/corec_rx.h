// COREC-style concurrent non-blocking single-queue RX driver (arXiv:2401.12815).
//
// Where the RSS model (nic_rx.h) gives each queue its own ring and one NAPI
// poller, COREC shares ONE descriptor ring among N concurrent consumer cores:
//
//   wire -> shared ring -> claim windows (N consumers, concurrent)
//        -> out-of-order completion slots -> in-order hand-off -> GRO -> host
//
//  * Claim: an idle consumer atomically claims up to `corec_claim_window`
//    contiguous descriptors off the ring head (a claim window). Claiming
//    charges the consumer core the NAPI entry/re-poll overhead plus the
//    per-packet driver cost for the window.
//  * Commit: when the consumer core finishes its window it commits — every
//    slot in the window is marked complete. Because windows have different
//    sizes (a consumer claims whatever is on the ring, capped at the window
//    limit), later-claimed smaller windows routinely finish before earlier
//    larger ones: commits are genuinely out of order.
//  * Hand-off: a dedicated hand-off stage walks the completion slots in ring
//    order and feeds each maximal contiguous completed run to the GRO engine
//    as one batch (ReceiveBatch + PollComplete — one poll round), then
//    delivers the merged segments. Completed slots parked behind an
//    incomplete head window stall (counted; depth recorded) until the head
//    commits. This is the rule that makes the driver conform: GRO sees
//    packets in exactly the ring order, so the TCP-level stream is
//    byte-identical to the single-queue RSS driver for every GRO stack.
//
// Determinism contract: consumers are ordinary `CpuCore` FIFOs on the shared
// event loop; claims are made in consumer-index order at interrupt/commit
// edges, so the whole claim/commit/hand-off schedule is a deterministic
// function of arrivals. Only flush-boundary timing differs from RSS — stream
// content and ordering do not.

#ifndef JUGGLER_SRC_NIC_COREC_RX_H_
#define JUGGLER_SRC_NIC_COREC_RX_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/nic/rx_driver.h"

namespace juggler {

class CorecRx : public RxDriver {
 public:
  CorecRx(EventLoop* loop, const CpuCostModel* costs, const NicRxConfig& config,
          const GroFactory& gro_factory, SegmentSink* sink);
  ~CorecRx() override;

  // Packet arriving from the wire.
  void Accept(PacketPtr packet) override;

  // One logical queue: the shared ring. rx_core(0) is the hand-off core —
  // the core whose clock merged segments leave on, which is what callers
  // (overload auditor, tests) use it for.
  size_t num_queues() const override { return 1; }
  CpuCore* rx_core(size_t) override { return &handoff_core_; }
  GroEngine* gro(size_t) override { return gro_.get(); }
  const NicRxStats& stats() const override { return stats_; }
  GroStats TotalGroStats() const override { return gro_->stats(); }
  const NicRxConfig& config() const override { return config_; }

  void set_ring_capacity(size_t capacity) override {
    config_.ring_capacity = capacity < 1 ? 1 : capacity;
  }

  void ApplyGroFlowCap(size_t max_flows) override;

  const CorecRxStats* corec_stats() const override { return &corec_stats_; }

  // True once the debug wedge plant fired (tests only).
  bool wedged() const { return wedged_; }

 private:
  // One consumer: a CPU core that claims a window, processes it, commits.
  struct Consumer {
    CpuCore core;
    bool busy = false;
    uint64_t first_seq = 0;  // ring sequence of the window's first slot
    size_t count = 0;        // window size
    Consumer(EventLoop* loop, size_t i)
        : core(loop, "corec_consumer_" + std::to_string(i)) {}
  };

  // A claimed descriptor awaiting in-order hand-off.
  struct Slot {
    PacketPtr packet;
    uint32_t consumer = 0;
    bool done = false;
  };

  void ScheduleInterrupt();
  void FireInterrupt();
  // Hand idle consumers claim windows, in consumer-index order, until the
  // ring is empty or every consumer is busy. `session_entry` charges the
  // interrupt-driven NAPI entry overhead instead of the re-poll overhead.
  void KickIdleConsumers(bool session_entry);
  void Claim(size_t consumer_index, bool session_entry);
  void Commit(size_t consumer_index);
  // Walk the completion slots from the head; feed each maximal contiguous
  // completed run to GRO (one poll round per run) on the hand-off core.
  void Handoff();
  void GroDispatch();
  void OnGroTimer();
  void DeliverPending();
  bool AnyConsumerBusy() const;

  // GroHost surface for the single shared GRO engine.
  struct HandoffHost : public GroHost {
    CorecRx* nic = nullptr;
    void GroDeliver(Segment segment) override;
    void GroArmTimer(TimeNs when) override;
  };

  EventLoop* loop_;
  const CpuCostModel* costs_;
  NicRxConfig config_;
  SegmentSink* sink_;
  HandoffHost host_;
  std::unique_ptr<GroEngine> gro_;
  CpuCore handoff_core_;
  std::vector<std::unique_ptr<Consumer>> consumers_;

  std::deque<PacketPtr> ring_;  // shared descriptor ring (unclaimed)
  std::deque<Slot> slots_;      // claimed descriptors, ring order
  uint64_t slots_base_ = 0;     // ring sequence of slots_.front()
  uint64_t next_claim_seq_ = 0;

  // Completed runs awaiting GRO on the hand-off core, oldest first.
  std::deque<std::vector<PacketPtr>> handoff_queue_;
  std::vector<Segment> pending_segments_;

  TimeNs last_interrupt_ = -(1LL << 60);  // long ago: first packet fires now
  bool interrupt_pending_ = false;
  bool wedged_ = false;
  TimerId gro_timer_ = kInvalidTimerId;

  NicRxStats stats_;
  CorecRxStats corec_stats_;
};

}  // namespace juggler

#endif  // JUGGLER_SRC_NIC_COREC_RX_H_
