#include "src/nic/rx_driver.h"

#include "src/nic/corec_rx.h"
#include "src/nic/nic_rx.h"

namespace juggler {

const char* RxDriverKindName(RxDriverKind kind) {
  switch (kind) {
    case RxDriverKind::kRss: return "rss";
    case RxDriverKind::kCorec: return "corec";
  }
  return "unknown";
}

bool ParseRxDriverKind(const std::string& name, RxDriverKind* out) {
  if (name == "rss") {
    *out = RxDriverKind::kRss;
    return true;
  }
  if (name == "corec") {
    *out = RxDriverKind::kCorec;
    return true;
  }
  return false;
}

std::unique_ptr<RxDriver> MakeRxDriver(EventLoop* loop, const CpuCostModel* costs,
                                       const NicRxConfig& config,
                                       const RxDriver::GroFactory& gro_factory,
                                       SegmentSink* sink) {
  switch (config.driver) {
    case RxDriverKind::kCorec:
      return std::make_unique<CorecRx>(loop, costs, config, gro_factory, sink);
    case RxDriverKind::kRss:
      break;
  }
  return std::make_unique<NicRx>(loop, costs, config, gro_factory, sink);
}

void PublishCorecRxStats(const CorecRxStats& stats, const std::string& label,
                         MetricsRegistry* registry) {
  registry->AddCounter("nic.corec_claims", label, stats.claims);
  registry->AddCounter("nic.corec_claimed_packets", label, stats.claimed_packets);
  registry->AddCounter("nic.corec_commits", label, stats.commits);
  registry->AddCounter("nic.corec_ooo_commits", label, stats.ooo_commits);
  registry->AddCounter("nic.corec_handoff_runs", label, stats.handoff_runs);
  registry->AddCounter("nic.corec_handoff_stalls", label, stats.handoff_stalls);
  registry->AddCounter("nic.corec_wedged", label, stats.wedged);
  registry->MaxGauge("nic.corec_ooo_depth_max", label, stats.ooo_depth_max);
  registry->MaxGauge("nic.corec_claim_occupancy_hwm", label, stats.claim_occupancy_hwm);
}

}  // namespace juggler
