#include "src/nic/corec_rx.h"

#include <utility>

#include "src/util/logging.h"

namespace juggler {

CorecRx::CorecRx(EventLoop* loop, const CpuCostModel* costs, const NicRxConfig& config,
                 const GroFactory& gro_factory, SegmentSink* sink)
    : loop_(loop),
      costs_(costs),
      config_(config),
      sink_(sink),
      handoff_core_(loop, "corec_handoff") {
  JUG_CHECK(config_.corec_consumers >= 1);
  JUG_CHECK(config_.corec_claim_window >= 1);
  host_.nic = this;
  gro_ = gro_factory(costs);
  GroEngine::Context ctx;
  ctx.now = loop->now_ptr();
  ctx.host = &host_;
  ctx.recorder = config_.recorder;
  gro_->set_context(ctx);
  for (size_t i = 0; i < config_.corec_consumers; ++i) {
    consumers_.push_back(std::make_unique<Consumer>(loop, i));
  }
}

CorecRx::~CorecRx() = default;

void CorecRx::HandoffHost::GroDeliver(Segment segment) {
  nic->pending_segments_.push_back(std::move(segment));
}

void CorecRx::HandoffHost::GroArmTimer(TimeNs when) {
  EventLoop* loop = nic->loop_;
  loop->Cancel(nic->gro_timer_);
  nic->gro_timer_ = kInvalidTimerId;
  if (when == GroEngine::kNoTimer) {
    return;
  }
  const TimeNs at = when > loop->now() ? when : loop->now();
  nic->gro_timer_ = loop->ScheduleAt(at, [n = nic] {
    n->gro_timer_ = kInvalidTimerId;
    n->OnGroTimer();
  });
}

bool CorecRx::AnyConsumerBusy() const {
  for (const auto& c : consumers_) {
    if (c->busy) return true;
  }
  return false;
}

void CorecRx::Accept(PacketPtr packet) {
  ++stats_.packets_in;
  if (packet->corrupted) {
    // Hardware checksum/FCS validation: bad frames never reach the ring.
    ++stats_.checksum_drops;
    return;
  }
  if (ring_.size() >= config_.ring_capacity) {
    ++stats_.ring_drops;
    return;
  }
  packet->nic_rx_time = loop_->now();
  ring_.push_back(std::move(packet));
  if (ring_.size() > stats_.ring_high_watermark) {
    stats_.ring_high_watermark = ring_.size();
  }
  // Consumers in polling mode re-claim at commit without a new interrupt;
  // only an idle driver needs the (moderated) interrupt to wake up.
  if (!AnyConsumerBusy() && !interrupt_pending_) {
    ScheduleInterrupt();
  }
}

void CorecRx::ScheduleInterrupt() {
  interrupt_pending_ = true;
  const TimeNs earliest = last_interrupt_ + config_.int_coalesce;
  const TimeNs at = earliest > loop_->now() ? earliest : loop_->now();
  ++stats_.coalesce_arms;
  if (config_.recorder != nullptr) {
    config_.recorder->Record(loop_->now(), TraceKind::kNicCoalesceArm, 0,
                             static_cast<uint64_t>(at - loop_->now()));
  }
  loop_->ScheduleAt(at, [this] { FireInterrupt(); });
}

void CorecRx::FireInterrupt() {
  ++stats_.interrupts;
  if (config_.recorder != nullptr) {
    config_.recorder->Record(loop_->now(), TraceKind::kNicInterrupt, 0, ring_.size());
  }
  last_interrupt_ = loop_->now();
  interrupt_pending_ = false;
  KickIdleConsumers(/*session_entry=*/true);
}

void CorecRx::KickIdleConsumers(bool session_entry) {
  for (size_t i = 0; i < consumers_.size(); ++i) {
    if (ring_.empty()) {
      return;
    }
    if (!consumers_[i]->busy) {
      Claim(i, session_entry);
    }
  }
}

void CorecRx::Claim(size_t consumer_index, bool session_entry) {
  Consumer* c = consumers_[consumer_index].get();
  size_t n = ring_.size();
  if (n > config_.corec_claim_window) {
    n = config_.corec_claim_window;
  }
  c->busy = true;
  c->first_seq = next_claim_seq_;
  c->count = n;
  for (size_t k = 0; k < n; ++k) {
    Slot slot;
    slot.packet = std::move(ring_.front());
    ring_.pop_front();
    slot.consumer = static_cast<uint32_t>(consumer_index);
    slots_.push_back(std::move(slot));
  }
  next_claim_seq_ += n;
  ++corec_stats_.claims;
  corec_stats_.claimed_packets += n;
  if (slots_.size() > corec_stats_.claim_occupancy_hwm) {
    corec_stats_.claim_occupancy_hwm = slots_.size();
  }
  if (config_.recorder != nullptr) {
    config_.recorder->Record(loop_->now(), TraceKind::kCorecClaim, consumer_index, n,
                             c->first_seq);
  }
  TimeNs cost = session_entry ? costs_->napi_poll_overhead : costs_->napi_repoll_overhead;
  cost += static_cast<TimeNs>(n) * costs_->driver_per_packet;
  c->core.Submit(cost, [this, consumer_index] { Commit(consumer_index); });
}

void CorecRx::Commit(size_t consumer_index) {
  Consumer* c = consumers_[consumer_index].get();
  const size_t offset = static_cast<size_t>(c->first_seq - slots_base_);
  // An earlier window is still open iff some other consumer is busy on a
  // lower first_seq — every not-done slot before ours belongs to exactly one
  // such consumer, so scanning the (few) consumers beats scanning the slots.
  bool behind_open_window = false;
  for (const auto& other : consumers_) {
    if (other->busy && other.get() != c && other->first_seq < c->first_seq) {
      behind_open_window = true;
      break;
    }
  }
  for (size_t k = 0; k < c->count; ++k) {
    slots_[offset + k].done = true;
  }
  ++corec_stats_.commits;
  if (behind_open_window) {
    ++corec_stats_.ooo_commits;
  }
  if (config_.recorder != nullptr) {
    config_.recorder->Record(loop_->now(), TraceKind::kCorecCommit, consumer_index,
                             c->count, c->first_seq);
  }
  c->busy = false;
  c->count = 0;
  Handoff();
  KickIdleConsumers(/*session_entry=*/false);
}

void CorecRx::Handoff() {
  if (wedged_) {
    return;  // planted fault: claimed packets never reach GRO again
  }
  if (!slots_.empty() && !slots_.front().done) {
    // Head window still open: completed slots behind it are parked until it
    // commits — the in-order rule that keeps GRO input in ring order.
    uint64_t parked = 0;
    for (const Slot& s : slots_) {
      if (s.done) ++parked;
    }
    if (parked > 0) {
      ++corec_stats_.handoff_stalls;
      if (parked > corec_stats_.ooo_depth_max) {
        corec_stats_.ooo_depth_max = parked;
      }
      if (config_.recorder != nullptr) {
        config_.recorder->Record(loop_->now(), TraceKind::kCorecStall, parked,
                                 slots_.size());
      }
      if (config_.debug_corec_wedge_depth > 0 &&
          parked >= config_.debug_corec_wedge_depth) {
        wedged_ = true;
        corec_stats_.wedged = 1;
      }
    }
    return;
  }
  std::vector<PacketPtr> run;
  run.reserve(slots_.size());
  while (!slots_.empty() && slots_.front().done) {
    run.push_back(std::move(slots_.front().packet));
    slots_.pop_front();
    ++slots_base_;
  }
  if (run.empty()) {
    return;
  }
  ++corec_stats_.handoff_runs;
  ++stats_.polls;  // each hand-off run is one GRO poll round
  if (config_.recorder != nullptr) {
    config_.recorder->Record(loop_->now(), TraceKind::kCorecHandoff, run.size(),
                             slots_.size());
  }
  handoff_queue_.push_back(std::move(run));
  handoff_core_.Submit(0, [this] { GroDispatch(); });
}

void CorecRx::GroDispatch() {
  JUG_CHECK(!handoff_queue_.empty());
  std::vector<PacketPtr> run = std::move(handoff_queue_.front());
  handoff_queue_.pop_front();
  TimeNs cost = 0;
  if (config_.per_packet_dispatch) [[unlikely]] {
    // Reference arm for determinism tests: must be observably identical to
    // the batched hand-off below.
    for (PacketPtr& p : run) {
      cost += gro_->Receive(std::move(p));
    }
  } else {
    cost += gro_->ReceiveBatch(run.data(), run.size());
  }
  cost += gro_->PollComplete();
  handoff_core_.Submit(cost, [this] { DeliverPending(); });
}

void CorecRx::OnGroTimer() {
  handoff_core_.Submit(0, [this] {
    const TimeNs cost = gro_->OnTimer();
    handoff_core_.Submit(cost, [this] { DeliverPending(); });
  });
}

void CorecRx::ApplyGroFlowCap(size_t max_flows) {
  handoff_core_.Submit(0, [this, max_flows] {
    const TimeNs cost = gro_->ApplyFlowCapPressure(max_flows);
    handoff_core_.Submit(cost, [this] { DeliverPending(); });
  });
}

void CorecRx::DeliverPending() {
  if (pending_segments_.empty()) {
    return;
  }
  sink_->OnSegmentBatch(pending_segments_.data(), pending_segments_.size());
  pending_segments_.clear();
}

}  // namespace juggler
